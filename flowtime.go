// Package flowtime is a library implementation of FlowTime (Hu, Li, Chen,
// Ke — "FlowTime: Dynamic Scheduling of Deadline-Aware Workflows and
// Ad-hoc Jobs", IEEE ICDCS 2018): a cluster scheduler that meets the
// deadlines of recurring data-analytics workflows while simultaneously
// minimizing the average turnaround time of best-effort ad-hoc jobs.
//
// The library has three layers, all usable independently:
//
//   - Workload modelling: Workflow DAGs of jobs with resource estimates
//     (NewWorkflow, Job, AdHoc) and deadline decomposition into per-job
//     windows (Decompose).
//   - Scheduling: the FlowTime scheduler (NewScheduler) and the paper's
//     baselines (NewEDF, NewFIFO, NewFair, NewCORA, NewMorpheus), all
//     implementing the Scheduler interface.
//   - Simulation: a slot-quantized cluster simulator (Simulate) that
//     executes any Scheduler against a workload and reports per-job,
//     per-workflow, and ad-hoc outcomes (Summarize).
//
// A minimal end-to-end use:
//
//	w := flowtime.NewWorkflow("daily-etl", 0, 2*time.Hour)
//	extract := w.AddJob(flowtime.Job{Name: "extract", Tasks: 16,
//		TaskDuration: 3 * time.Minute, TaskDemand: flowtime.NewResources(1, 2048)})
//	load := w.AddJob(flowtime.Job{Name: "load", Tasks: 8,
//		TaskDuration: 5 * time.Minute, TaskDemand: flowtime.NewResources(2, 4096)})
//	w.AddDep(extract, load)
//
//	res, err := flowtime.Simulate(flowtime.SimConfig{
//		SlotDur:   10 * time.Second,
//		Horizon:   1000,
//		Capacity:  flowtime.ConstantCapacity(flowtime.NewResources(64, 128*1024)),
//		Scheduler: flowtime.NewScheduler(flowtime.DefaultSchedulerConfig()),
//		Workflows: []*flowtime.Workflow{w},
//	})
//
// See the examples directory for complete programs.
package flowtime

import (
	"time"

	"flowtime/internal/core"
	"flowtime/internal/deadline"
	"flowtime/internal/metrics"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/sim"
	"flowtime/internal/workflow"
)

// Resource model.
type (
	// Resources is a multi-dimensional resource amount (vcores, memory).
	Resources = resource.Vector
	// ResourceKind identifies one resource dimension.
	ResourceKind = resource.Kind
)

// Resource kinds.
const (
	VCores   = resource.VCores
	MemoryMB = resource.MemoryMB
)

// NewResources builds a resource vector from vcores and memory (MiB).
func NewResources(vcores, memoryMB int64) Resources {
	return resource.New(vcores, memoryMB)
}

// Workload model.
type (
	// Job is one node of a workflow DAG.
	Job = workflow.Job
	// Workflow is a deadline-aware DAG of jobs.
	Workflow = workflow.Workflow
	// AdHoc is a best-effort job with no deadline.
	AdHoc = workflow.AdHoc
)

// NewWorkflow returns an empty workflow with the given identity, submit
// time and deadline (both offsets from the simulation epoch).
func NewWorkflow(id string, submit, deadlineAt time.Duration) *Workflow {
	return workflow.New(id, submit, deadlineAt)
}

// Deadline decomposition (paper §IV).
type (
	// DecomposeOptions tunes Decompose.
	DecomposeOptions = deadline.Options
	// Decomposition is the result of Decompose.
	Decomposition = deadline.Result
	// Window is one job's scheduling window.
	Window = deadline.Window
)

// Decompose splits a workflow's deadline into per-job windows using the
// paper's resource-demand-proportional strategy (with critical-path
// fallback).
func Decompose(w *Workflow, opts DecomposeOptions) (*Decomposition, error) {
	return deadline.Decompose(w, opts)
}

// Scheduling.
type (
	// Scheduler is the per-slot scheduling interface.
	Scheduler = sched.Scheduler
	// SchedulerConfig tunes the FlowTime scheduler.
	SchedulerConfig = core.Config
	// JobState is the scheduler-visible state of a live job.
	JobState = sched.JobState
	// AssignContext is the input to one scheduling decision.
	AssignContext = sched.AssignContext
	// ClusterView exposes the cluster to schedulers.
	ClusterView = sched.ClusterView
	// History holds prior-run observations for the Morpheus baseline.
	History = sched.History
)

// DefaultSchedulerConfig returns the paper's FlowTime settings (60s
// deadline slack).
func DefaultSchedulerConfig() SchedulerConfig {
	return core.DefaultConfig()
}

// NewScheduler returns the FlowTime scheduler (paper §V: deadline
// decomposition + lexicographic min-max LP co-scheduling).
func NewScheduler(cfg SchedulerConfig) Scheduler {
	return core.New(cfg)
}

// Baseline schedulers from the paper's evaluation.
var (
	// NewFIFO returns the FIFO baseline.
	NewFIFO = func() Scheduler { return sched.NewFIFO() }
	// NewFair returns the max-min fair baseline.
	NewFair = func() Scheduler { return sched.NewFair() }
	// NewEDF returns the earliest-deadline-first baseline.
	NewEDF = func() Scheduler { return sched.NewEDF() }
	// NewCORA returns the utility min-max baseline (Huang et al. 2015).
	NewCORA = func() Scheduler { return sched.NewCORA() }
)

// NewMorpheus returns the history-inference baseline (Jyothi et al. 2016).
func NewMorpheus(history History) Scheduler {
	return sched.NewMorpheus(history)
}

// Simulation.
type (
	// SimConfig describes one simulation run.
	SimConfig = sim.Config
	// SimResult is the outcome of a run.
	SimResult = sim.Result
	// JobOutcome is one deadline job's result.
	JobOutcome = sim.JobOutcome
	// WorkflowOutcome is one workflow's result.
	WorkflowOutcome = sim.WorkflowOutcome
	// AdHocOutcome is one ad-hoc job's result.
	AdHocOutcome = sim.AdHocOutcome
	// Summary condenses a run into the paper's metrics.
	Summary = metrics.Summary
)

// ConstantCapacity returns a capacity function for a fixed-size cluster.
func ConstantCapacity(c Resources) func(slot int64) Resources {
	return func(int64) Resources { return c }
}

// Simulate executes a workload under a scheduler.
func Simulate(cfg SimConfig) (*SimResult, error) {
	return sim.Run(cfg)
}

// Summarize computes deadline-miss and turnaround metrics from a run.
func Summarize(algorithm string, res *SimResult) Summary {
	return metrics.Summarize(algorithm, res)
}
