// Differential equivalence harness for the plan-diff streaming path.
//
// The streaming protocol (core.Config.StreamPlans, internal/plan) lets a
// resource manager journal plan *changes* instead of wholesale plans.
// Its correctness claim is strict: applying the emitted diff sequence to
// an empty plan must reconstruct, bit for bit, the plan the scheduler
// would have published wholesale. DiffEquiv checks that claim from the
// outside on every scheduling decision of a full pipeline run:
//
//   - a diff-streaming FlowTime and an independent wholesale reference
//     are driven with identical AssignContexts;
//   - every emitted diff is round-tripped through the journal codec and
//     applied to an externally accumulated shadow plan;
//   - after every decision, shadow ≡ streaming live plan ≡ wholesale
//     reference plan (allocations, windows, θ, and revision), and both
//     schedulers granted identically;
//   - periodically the shadow is torn down and rebuilt from its last
//     checkpoint plus the journaled diffs — the RM crash-recovery and
//     follower-replication path — and must come back identical.
//
// Any divergence is sticky and aborts the run with slot context.
package oracle

import (
	"fmt"

	"flowtime/internal/core"
	"flowtime/internal/plan"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/sim"
)

// DiffEquiv is a sched.Scheduler wrapper asserting diff/wholesale plan
// equivalence after every Assign. Zero value is not usable; construct
// with NewDiffEquiv.
type DiffEquiv struct {
	stream    *core.FlowTime // grants come from this instance
	wholesale *core.FlowTime // independent reference, identical inputs

	applied  *plan.Plan // shadow plan rebuilt purely from emitted diffs
	snapshot *plan.Plan // last recovery checkpoint of the shadow
	journal  [][]byte   // encoded diffs since the checkpoint

	// replayEvery simulates a crash-recovery rebuild (checkpoint +
	// journal replay) every that many decisions; 0 disables.
	replayEvery int
	steps       int
	diffs       int
	err         error
}

// NewDiffEquiv builds the harness around two FlowTime instances with
// the given config. replayEvery > 0 additionally exercises the
// checkpoint-plus-journal recovery rebuild every that many decisions.
func NewDiffEquiv(cfg core.Config, replayEvery int) *DiffEquiv {
	scfg := cfg
	scfg.StreamPlans = true
	wcfg := cfg
	wcfg.StreamPlans = true
	return &DiffEquiv{
		stream:      core.New(scfg),
		wholesale:   core.New(wcfg),
		applied:     plan.Empty(),
		snapshot:    plan.Empty(),
		replayEvery: replayEvery,
	}
}

// Name implements sched.Scheduler.
func (d *DiffEquiv) Name() string { return "FlowTime+diffequiv" }

// Err returns the first divergence observed, or nil.
func (d *DiffEquiv) Err() error { return d.err }

// Diffs returns how many diffs the harness applied — a run that never
// emitted one proved nothing.
func (d *DiffEquiv) Diffs() int { return d.diffs }

// Assign implements sched.Scheduler: both instances decide on the same
// context, then every equivalence property is checked.
func (d *DiffEquiv) Assign(ctx sched.AssignContext) (map[string]resource.Vector, error) {
	if d.err != nil {
		return nil, d.err
	}
	d.steps++
	grants, err := d.stream.Assign(ctx)
	if err != nil {
		return nil, err
	}
	ref, err := d.wholesale.Assign(cloneCtx(ctx))
	if err != nil {
		return nil, fmt.Errorf("wholesale reference at slot %d: %w", ctx.Now, err)
	}
	if err := d.check(ctx.Now, grants, ref); err != nil {
		d.err = fmt.Errorf("diff/wholesale divergence at slot %d (decision %d): %w", ctx.Now, d.steps, err)
		return nil, d.err
	}
	return grants, nil
}

// check applies pending diffs to the shadow plan and asserts every
// equivalence property for this decision.
func (d *DiffEquiv) check(now int64, grants, ref map[string]resource.Vector) error {
	if err := equalGrants(grants, ref); err != nil {
		return fmt.Errorf("grant divergence between identical schedulers: %w", err)
	}
	for i, diff := range d.stream.TakePlanDiffs() {
		// Round-trip through the journal codec exactly as the RM would.
		payload, err := plan.EncodeDiff(diff)
		if err != nil {
			return fmt.Errorf("diff %d: encode: %w", i, err)
		}
		decoded, err := plan.DecodeDiff(payload)
		if err != nil {
			return fmt.Errorf("diff %d: decode: %w", i, err)
		}
		next, err := plan.Apply(d.applied, decoded)
		if err != nil {
			return fmt.Errorf("diff %d (rev %d->%d): apply: %w", i, decoded.BaseRev, decoded.NewRev, err)
		}
		if err := next.Validate(); err != nil {
			return fmt.Errorf("diff %d produced an invalid plan: %w", i, err)
		}
		d.applied = next
		d.journal = append(d.journal, payload)
		d.diffs++
	}
	// Discard the reference's diffs; only its live plan matters.
	d.wholesale.TakePlanDiffs()

	live := d.stream.LivePlan()
	if d.applied.Rev != live.Rev {
		return fmt.Errorf("shadow at rev %d, streaming live plan at rev %d", d.applied.Rev, live.Rev)
	}
	if err := plan.Equal(d.applied, live); err != nil {
		return fmt.Errorf("diff-applied shadow != streaming live plan: %w", err)
	}
	whole := d.wholesale.LivePlan()
	if d.applied.Rev != whole.Rev {
		return fmt.Errorf("shadow at rev %d, wholesale reference at rev %d", d.applied.Rev, whole.Rev)
	}
	if err := plan.Equal(d.applied, whole); err != nil {
		return fmt.Errorf("diff-applied shadow != wholesale plan: %w", err)
	}
	if d.replayEvery > 0 && d.steps%d.replayEvery == 0 {
		if err := d.recover(); err != nil {
			return err
		}
	}
	return nil
}

// recover rebuilds the shadow from the last checkpoint plus the journal
// — the same reconstruction an RM performs after a crash or a follower
// performs from shipped WAL records — and checkpoints on success.
func (d *DiffEquiv) recover() error {
	rebuilt := d.snapshot.Clone()
	for i, payload := range d.journal {
		decoded, err := plan.DecodeDiff(payload)
		if err != nil {
			return fmt.Errorf("recovery replay: journal entry %d: %w", i, err)
		}
		next, err := plan.Apply(rebuilt, decoded)
		if err != nil {
			return fmt.Errorf("recovery replay: journal entry %d (rev %d->%d): %w",
				i, decoded.BaseRev, decoded.NewRev, err)
		}
		rebuilt = next
	}
	if rebuilt.Rev != d.applied.Rev {
		return fmt.Errorf("recovery rebuilt rev %d, live shadow at rev %d", rebuilt.Rev, d.applied.Rev)
	}
	if err := plan.Equal(rebuilt, d.applied); err != nil {
		return fmt.Errorf("checkpoint+journal recovery diverges from live shadow: %w", err)
	}
	if n := len(d.journal); n > 0 {
		// A stale diff must be refused, never silently re-applied: replaying
		// the oldest journal entry onto the recovered plan cannot chain.
		stale, err := plan.DecodeDiff(d.journal[0])
		if err != nil {
			return fmt.Errorf("recovery replay: reread journal entry 0: %w", err)
		}
		if stale.NewRev <= rebuilt.Rev {
			if _, err := plan.Apply(rebuilt, stale); err == nil {
				return fmt.Errorf("stale diff (rev %d->%d) re-applied onto rev %d without error",
					stale.BaseRev, stale.NewRev, rebuilt.Rev)
			}
		}
	}
	d.snapshot = rebuilt.Clone()
	d.journal = nil
	return nil
}

// cloneCtx copies the mutable parts of an AssignContext so the two
// scheduler instances cannot alias each other's view.
func cloneCtx(ctx sched.AssignContext) sched.AssignContext {
	out := ctx
	out.Jobs = append([]sched.JobState(nil), ctx.Jobs...)
	return out
}

// equalGrants compares two grant maps exactly.
func equalGrants(a, b map[string]resource.Vector) error {
	if len(a) != len(b) {
		return fmt.Errorf("grant count %d vs %d", len(a), len(b))
	}
	for id, ga := range a {
		gb, ok := b[id]
		if !ok {
			return fmt.Errorf("job %s granted %v by one instance, nothing by the other", id, ga)
		}
		if ga != gb {
			return fmt.Errorf("job %s granted %v vs %v", id, ga, gb)
		}
	}
	return nil
}

// CheckDiffEquivalence runs a full pipeline scenario through the
// harness: FlowTime grants drive the simulator (with the per-slot
// invariant checker armed and optional fault injection), and every
// decision's diff/wholesale equivalence is asserted. A scenario with
// workflows that never emits a single diff fails: it proved nothing.
func CheckDiffEquivalence(sc *Scenario, faults *sim.FaultInjection) error {
	h := NewDiffEquiv(core.DefaultConfig(), 7)
	capacity := sc.Capacity
	res, err := sim.Run(sim.Config{
		SlotDur:    sc.SlotDur,
		Horizon:    sc.Horizon,
		Capacity:   func(int64) resource.Vector { return capacity },
		Scheduler:  h,
		Workflows:  sc.Workflows,
		AdHoc:      sc.AdHoc,
		Faults:     faults,
		Invariants: true,
	})
	if err != nil {
		return err
	}
	if herr := h.Err(); herr != nil {
		return herr
	}
	if res.InvariantSlots != res.Slots {
		return fmt.Errorf("invariant checker covered %d of %d slots", res.InvariantSlots, res.Slots)
	}
	if h.Diffs() == 0 && len(sc.Workflows)+len(sc.AdHoc) > 0 {
		return fmt.Errorf("harness never saw a plan diff over %d slots with %d workflows and %d ad-hoc jobs",
			res.Slots, len(sc.Workflows), len(sc.AdHoc))
	}
	return nil
}

// ShrinkScenario greedily minimizes a failing scenario: drop whole
// workflows and ad-hoc jobs, then halve the horizon, keeping every
// reduction for which fails still reports failure. fails must be
// deterministic.
func ShrinkScenario(sc *Scenario, fails func(*Scenario) bool) *Scenario {
	cur := cloneScenario(sc)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(cur.Workflows); i++ {
			cand := cloneScenario(cur)
			cand.Workflows = append(cand.Workflows[:i:i], cand.Workflows[i+1:]...)
			cand.Regimes = append(cand.Regimes[:i:i], cand.Regimes[i+1:]...)
			if fails(cand) {
				cur, changed = cand, true
				i--
			}
		}
		for i := 0; i < len(cur.AdHoc); i++ {
			cand := cloneScenario(cur)
			cand.AdHoc = append(cand.AdHoc[:i:i], cand.AdHoc[i+1:]...)
			if fails(cand) {
				cur, changed = cand, true
				i--
			}
		}
		if h := cur.Horizon / 2; h >= 8 {
			cand := cloneScenario(cur)
			cand.Horizon = h
			if fails(cand) {
				cur, changed = cand, true
			}
		}
	}
	return cur
}

// cloneScenario shallow-copies the scenario with fresh slices, so
// shrink candidates never alias each other.
func cloneScenario(sc *Scenario) *Scenario {
	out := *sc
	out.Workflows = append(out.Workflows[:0:0], out.Workflows...)
	out.AdHoc = append(out.AdHoc[:0:0], out.AdHoc...)
	out.Regimes = append(out.Regimes[:0:0], out.Regimes...)
	return &out
}
