package oracle

import (
	"math/rand"
	"testing"

	"flowtime/internal/sim"
)

// diffEquivSeeds is the sweep size for TestDiffWholesaleEquivalence.
// The acceptance bar for the streaming protocol is zero divergence over
// at least 50 seeded scenarios including chaos runs.
const diffEquivSeeds = 60

// diffEquivFaults returns the chaos config for a sweep index: every
// third seed runs with runtime jitter and stragglers, which drive
// estimate revisions and replan storms — the diff-heaviest regime.
func diffEquivFaults(seed int64) *sim.FaultInjection {
	if seed%3 != 1 {
		return nil
	}
	return &sim.FaultInjection{Seed: seed, RuntimeJitter: 0.3, StragglerFrac: 0.2, StragglerFactor: 3}
}

// TestDiffWholesaleEquivalence sweeps seeded pipeline scenarios through
// the differential harness: on every scheduling decision the externally
// diff-reconstructed plan must equal both the streaming scheduler's
// live plan and an independent wholesale reference, grants must match
// exactly, and periodic checkpoint+journal recovery rebuilds must come
// back identical. Failures are shrunk to a minimal scenario first.
func TestDiffWholesaleEquivalence(t *testing.T) {
	for seed := int64(0); seed < diffEquivSeeds; seed++ {
		sc, err := GenScenario(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("seed %d: GenScenario: %v", seed, err)
		}
		faults := diffEquivFaults(seed)
		err = CheckDiffEquivalence(sc, faults)
		if err == nil {
			continue
		}
		min := ShrinkScenario(sc, func(c *Scenario) bool {
			return CheckDiffEquivalence(c, faults) != nil
		})
		t.Fatalf("seed %d (chaos=%v): %v\nminimal reproducer: %d workflows (%v), %d ad-hoc, horizon %d",
			seed, faults != nil, err, len(min.Workflows), min.Regimes, len(min.AdHoc), min.Horizon)
	}
}

// TestShrinkScenarioMinimizes sanity-checks the scenario reducer on a
// synthetic failure predicate: "fails whenever any workflow remains"
// must shrink to exactly one workflow (dropping the last one makes the
// predicate pass, so it must be kept) and a minimal horizon.
func TestShrinkScenarioMinimizes(t *testing.T) {
	sc, err := GenScenario(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatalf("GenScenario: %v", err)
	}
	if len(sc.Workflows) < 2 {
		t.Skipf("seed drew %d workflows, need >= 2", len(sc.Workflows))
	}
	min := ShrinkScenario(sc, func(c *Scenario) bool { return len(c.Workflows) >= 1 })
	if len(min.Workflows) != 1 || len(min.Regimes) != 1 {
		t.Fatalf("shrunk to %d workflows / %d regimes, want 1 / 1", len(min.Workflows), len(min.Regimes))
	}
	if len(min.AdHoc) != 0 {
		t.Fatalf("shrunk scenario kept %d ad-hoc jobs, want 0", len(min.AdHoc))
	}
	if min.Horizon >= sc.Horizon {
		t.Fatalf("shrink never reduced the horizon: %d -> %d", sc.Horizon, min.Horizon)
	}
}
