package oracle

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"flowtime/internal/deadline"
	"flowtime/internal/lp"
	"flowtime/internal/resource"
	"flowtime/internal/workload"
)

func TestCrossCheckKnownFractionalOptimum(t *testing.T) {
	// One job, demand 3, two slots of capacity 2: the LP spreads 1.5+1.5
	// (max level 0.75) while the best integral split is 2+1 (max level
	// 1.0). The harness must accept the fractional optimum.
	in := Instance{Caps: []int64{2, 2}, Jobs: []Job{{Demand: 3, Rel: 0, Dl: 2, Cap: 2}}}
	res, err := SolveLP(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("expected feasible")
	}
	if m := lp.MaxLevel(res.Levels); math.Abs(m-0.75) > Tol {
		t.Fatalf("max level %g, want 0.75", m)
	}
	if err := CrossCheck(in, Tol); err != nil {
		t.Fatal(err)
	}
}

func TestCrossCheckKnownInfeasible(t *testing.T) {
	cases := []Instance{
		// Demand exceeds cap x window.
		{Caps: []int64{5}, Jobs: []Job{{Demand: 3, Rel: 0, Dl: 1, Cap: 2}}},
		// Positive demand confined to a zero-capacity slot.
		{Caps: []int64{0, 4}, Jobs: []Job{{Demand: 1, Rel: 0, Dl: 1, Cap: 1}}},
	}
	for i, in := range cases {
		res, err := SolveLP(in)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Feasible {
			t.Fatalf("case %d: expected infeasible", i)
		}
		if err := CrossCheck(in, Tol); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

func TestCrossCheckRandomSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		in := GenInstance(rng)
		if err := CrossCheck(in, Tol); err != nil {
			t.Fatalf("instance %d: %v\ninstance: %+v", i, err, in)
		}
	}
}

func TestCheckSolutionLargeInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	feasible := 0
	for i := 0; i < 60; i++ {
		in := GenLargeInstance(rng)
		res, err := SolveLP(in)
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if !res.Feasible {
			continue
		}
		feasible++
		if err := CheckSolution(in, res, Tol); err != nil {
			t.Fatalf("instance %d: %v\ninstance: %+v", i, err, in)
		}
	}
	if feasible == 0 {
		t.Fatal("generator produced no feasible large instances")
	}
}

// TestMutationSmokeTest is the harness's self-test: deliberately corrupt
// a correct solver answer in the ways a solver bug would (shift mass out
// of a window, break a demand row, misreport a level) and require the
// oracle to reject every mutant. DESIGN.md §11 documents this as the
// evidence that the oracle has teeth.
func TestMutationSmokeTest(t *testing.T) {
	in := Instance{
		Caps: []int64{3, 2, 4},
		Jobs: []Job{
			{Demand: 4, Rel: 0, Dl: 2, Cap: 3},
			{Demand: 5, Rel: 0, Dl: 3, Cap: 2},
		},
	}
	solve := func() *LPResult {
		res, err := SolveLP(in)
		if err != nil || !res.Feasible {
			t.Fatalf("solve: %v feasible=%v", err, res != nil && res.Feasible)
		}
		if err := CheckSolution(in, res, Tol); err != nil {
			t.Fatalf("pristine solution rejected: %v", err)
		}
		return res
	}

	mutants := []struct {
		name   string
		mutate func(*LPResult)
		want   string
	}{
		{"level misreported", func(r *LPResult) { r.Levels[0] += 0.25 }, "recomputed"},
		{"allocation outside window", func(r *LPResult) {
			r.Alloc[0][2] += 1 // job 0's window is [0,2)
			r.Alloc[0][0] -= 1
		}, "outside window"},
		{"demand row broken", func(r *LPResult) { r.Alloc[1][1] += 0.5 }, ""},
		{"cap exceeded", func(r *LPResult) {
			r.Alloc[0][0] += 2.5
			r.Alloc[0][1] -= 2.5
		}, ""},
		{"negative allocation", func(r *LPResult) {
			r.Alloc[1][0] -= 10
			r.Alloc[1][1] += 10
		}, ""},
	}
	for _, m := range mutants {
		res := solve()
		m.mutate(res)
		err := CheckSolution(in, res, Tol)
		if err == nil {
			t.Fatalf("mutant %q not caught", m.name)
		}
		if m.want != "" && !strings.Contains(err.Error(), m.want) {
			t.Fatalf("mutant %q: error %q does not mention %q", m.name, err, m.want)
		}
	}

	// A sub-optimal (but interior-valid) solver must be caught by the
	// optimality cross-checks: fake a solver that piles everything as
	// early as possible instead of flattening.
	greedy := func() *LPResult {
		res := &LPResult{Feasible: true, GroupSlot: in.GroupSlots()}
		res.Alloc = make([][]float64, len(in.Jobs))
		load := make([]float64, len(in.Caps))
		for ji, job := range in.Jobs {
			res.Alloc[ji] = make([]float64, len(in.Caps))
			left := float64(job.Demand)
			for s := job.Rel; s < job.Dl && left > 0; s++ {
				x := math.Min(left, float64(job.Cap))
				res.Alloc[ji][s] = x
				load[s] += x
				left -= x
			}
		}
		for _, s := range res.GroupSlot {
			res.Levels = append(res.Levels, load[s]/float64(in.Caps[s]))
		}
		return res
	}
	gr := greedy()
	if err := CheckSolution(in, gr, Tol); err != nil {
		t.Fatalf("greedy mutant should be interior-valid, got %v", err)
	}
	theta, _, err := MinMaxLevelByCuts(in)
	if err != nil {
		t.Fatal(err)
	}
	if m := lp.MaxLevel(gr.Levels); m <= theta+Tol {
		t.Fatalf("test broken: greedy max level %g not worse than optimum %g", m, theta)
	}
}

func TestMetamorphicRelationsRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 120; i++ {
		in := GenInstance(rng)
		if err := CheckScaleInvariance(in, 1+int64(rng.Intn(4)), Tol); err != nil {
			t.Fatalf("instance %d: %v\ninstance: %+v", i, err, in)
		}
		if err := CheckPermutationInvariance(in, rng, Tol); err != nil {
			t.Fatalf("instance %d: %v\ninstance: %+v", i, err, in)
		}
		t0 := rng.Int63n(int64(len(in.Caps)))
		if err := CheckSplitSlot(in, t0, Tol); err != nil {
			t.Fatalf("instance %d: %v\ninstance: %+v", i, err, in)
		}
	}
}

func TestDecompositionOracleRandomWorkflows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	opts := deadline.Options{Slot: 10 * time.Second, ClusterCap: resource.New(40, 80_000)}
	byMethod := map[deadline.Method]int{}
	for i := 0; i < 150; i++ {
		sc, err := GenScenario(rng)
		if err != nil {
			t.Fatal(err)
		}
		for wi, wf := range sc.Workflows {
			res, err := deadline.Decompose(wf, opts)
			if err != nil {
				continue // undecomposable (window < 1 slot); sim admits best-effort
			}
			byMethod[res.Method]++
			if err := CheckDecomposition(wf, opts, res); err != nil {
				t.Fatalf("scenario %d wf %d (%s regime): %v", i, wi, sc.Regimes[wi], err)
			}
		}
	}
	if byMethod[deadline.ResourceDemand] == 0 || byMethod[deadline.CriticalPath] == 0 {
		t.Fatalf("generator did not exercise both methods: %v", byMethod)
	}
}

func TestDecompositionOracleForcedCriticalPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opts := deadline.Options{
		Slot: 10 * time.Second, ClusterCap: resource.New(40, 80_000), ForceCriticalPath: true,
	}
	checked := 0
	for i := 0; i < 30; i++ {
		sc, err := GenScenario(rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, wf := range sc.Workflows {
			res, err := deadline.Decompose(wf, opts)
			if err != nil {
				continue
			}
			if res.Method != deadline.CriticalPath {
				t.Fatalf("forced critical path, got %v", res.Method)
			}
			if err := CheckDecomposition(wf, opts, res); err != nil {
				t.Fatalf("scenario %d: %v", i, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no workflow decomposed")
	}
}

func TestShrinkMinimizes(t *testing.T) {
	in := Instance{
		Caps: []int64{3, 0, 2, 4},
		Jobs: []Job{
			{Demand: 6, Rel: 0, Dl: 4, Cap: 2},
			{Demand: 4, Rel: 1, Dl: 3, Cap: 3},
			{Demand: 2, Rel: 2, Dl: 4, Cap: 1},
		},
	}
	// Failure predicate: total demand of jobs windowed over slot 2 is at
	// least 4 (a stand-in for "oracle disagrees").
	fails := func(c Instance) bool {
		var d int64
		for _, j := range c.Jobs {
			if j.Rel <= 2 && j.Dl > 2 {
				d += j.Demand
			}
		}
		return len(c.Caps) > 2 && d >= 4
	}
	if !fails(in) {
		t.Fatal("test broken: seed instance does not fail")
	}
	out := Shrink(in, fails)
	if !fails(out) {
		t.Fatal("shrink returned a passing instance")
	}
	var total int64
	for _, j := range out.Jobs {
		total += j.Demand
	}
	if total > 4 || len(out.Caps) > 3 {
		t.Fatalf("shrink left a non-minimal instance: %+v", out)
	}
}

func TestGenScenarioDeterministic(t *testing.T) {
	a, err := GenScenario(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenScenario(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Workflows) != len(b.Workflows) || len(a.AdHoc) != len(b.AdHoc) {
		t.Fatalf("scenario shape differs: %d/%d wf, %d/%d adhoc",
			len(a.Workflows), len(b.Workflows), len(a.AdHoc), len(b.AdHoc))
	}
	for i := range a.Workflows {
		if a.Workflows[i].Deadline != b.Workflows[i].Deadline ||
			a.Workflows[i].NumJobs() != b.Workflows[i].NumJobs() {
			t.Fatalf("workflow %d differs between identical seeds", i)
		}
	}
	// Regimes span the space over a modest seed sweep.
	seen := map[DeadlineRegime]bool{}
	shapes := map[workload.Shape]bool{}
	_ = shapes
	for s := int64(0); s < 40; s++ {
		sc, err := GenScenario(rand.New(rand.NewSource(s)))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range sc.Regimes {
			seen[r] = true
		}
	}
	for _, r := range []DeadlineRegime{RegimeTight, RegimeLoose, RegimeInfeasible} {
		if !seen[r] {
			t.Fatalf("regime %v never generated", r)
		}
	}
}
