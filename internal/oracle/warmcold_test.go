package oracle

import (
	"math"
	"math/rand"
	"testing"

	"flowtime/internal/lp"
)

// TestWarmColdEquivalence sweeps seeded instances through the production
// pipeline twice — the default warm incremental path and the legacy
// cold clone-per-round path — and requires both to agree on feasibility
// and on the sorted level vector, with each allocation independently
// passing the interior checker. This is the differential gate for the
// warm-start machinery: a basis-reuse bug that shifts the optimum cannot
// pass it by being self-consistent.
func TestWarmColdEquivalence(t *testing.T) {
	const cases = 60
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < cases; i++ {
		var in Instance
		if i%3 == 0 {
			in = GenLargeInstance(rng)
		} else {
			in = GenInstance(rng)
		}

		warm, err := SolveLPWithOptions(in, lp.MinMaxOptions{})
		if err != nil {
			t.Fatalf("case %d: warm: %v\ninstance: %+v", i, err, in)
		}
		cold, err := SolveLPWithOptions(in, lp.MinMaxOptions{DisableWarmStart: true})
		if err != nil {
			t.Fatalf("case %d: cold: %v\ninstance: %+v", i, err, in)
		}
		// Third arm: the same warm pipeline on the legacy DENSE basis
		// inverse. The sparse LU core (default) and the dense reference
		// must be interchangeable through the whole pipeline.
		dense, err := SolveLPWithOptions(in, lp.MinMaxOptions{Solve: lp.SolveOptions{DenseBasis: true}})
		if err != nil {
			t.Fatalf("case %d: dense: %v\ninstance: %+v", i, err, in)
		}

		if warm.Feasible != cold.Feasible || warm.Feasible != dense.Feasible {
			t.Fatalf("case %d: warm feasible=%v, cold feasible=%v, dense feasible=%v\ninstance: %+v",
				i, warm.Feasible, cold.Feasible, dense.Feasible, in)
		}
		if !warm.Feasible {
			continue
		}
		ws, cs := lp.SortedDescending(warm.Levels), lp.SortedDescending(cold.Levels)
		ds := lp.SortedDescending(dense.Levels)
		for gi := range ws {
			if math.Abs(ws[gi]-cs[gi]) > Tol {
				t.Fatalf("case %d: sorted level %d: warm %.9g, cold %.9g\ninstance: %+v",
					i, gi, ws[gi], cs[gi], in)
			}
			if math.Abs(ws[gi]-ds[gi]) > Tol {
				t.Fatalf("case %d: sorted level %d: sparse %.9g, dense %.9g\ninstance: %+v",
					i, gi, ws[gi], ds[gi], in)
			}
		}
		if err := CheckSolution(in, warm, Tol); err != nil {
			t.Fatalf("case %d: warm allocation rejected: %v\ninstance: %+v", i, err, in)
		}
		if err := CheckSolution(in, cold, Tol); err != nil {
			t.Fatalf("case %d: cold allocation rejected: %v\ninstance: %+v", i, err, in)
		}
		if err := CheckSolution(in, dense, Tol); err != nil {
			t.Fatalf("case %d: dense allocation rejected: %v\ninstance: %+v", i, err, in)
		}
	}
}
