package oracle

import (
	"fmt"
	"math"

	"flowtime/internal/lp"
)

// maxBruteForceLeaves bounds the enumeration so a mis-sized instance
// fails loudly instead of hanging the test run.
const maxBruteForceLeaves = 4 << 20

// BFResult is the outcome of BruteForce.
type BFResult struct {
	// Feasible reports whether any integral allocation places every unit
	// of demand inside its window under the per-slot job caps (slot
	// capacities do not bound allocation here, exactly as in the LP: the
	// lexicographic θ may exceed 1 under overload; only zero-capacity
	// slots are hard).
	Feasible bool
	// BestSkyline is the lexicographically smallest descending-sorted
	// normalized skyline over the instance's group slots, across every
	// feasible integral allocation. Nil when infeasible.
	BestSkyline []float64
	// Enumerated is the number of complete allocations visited.
	Enumerated int64
}

// BruteForce enumerates every integral allocation of the instance and
// returns the best achievable skyline. Exactness of the feasibility
// verdict: the feasible region is a transportation polytope with
// integral data, so it is nonempty iff it contains an integral point —
// the integral enumeration decides feasibility of the LP's region
// exactly, not approximately. The skyline is exact only over integral
// points; the LP optimum may be fractional and strictly better, so
// callers compare with LexLess (LP ⪯ brute force), not equality.
func BruteForce(in Instance) (*BFResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	groupSlots := in.GroupSlots()
	load := make([]int64, len(in.Caps))
	res := &BFResult{}

	var rec func(ji int) error
	rec = func(ji int) error {
		if ji == len(in.Jobs) {
			res.Enumerated++
			if res.Enumerated > maxBruteForceLeaves {
				return fmt.Errorf("oracle: brute force exceeded %d leaves; instance too large", int64(maxBruteForceLeaves))
			}
			sky := make([]float64, len(groupSlots))
			for gi, t := range groupSlots {
				sky[gi] = float64(load[t]) / float64(in.Caps[t])
			}
			sky = lp.SortedDescending(sky)
			if !res.Feasible || lp.LexLess(sky, res.BestSkyline, 0) {
				res.Feasible = true
				res.BestSkyline = sky
			}
			return nil
		}
		job := in.Jobs[ji]
		// Distribute job.Demand over [Rel, Dl) with per-slot x ≤ Cap and
		// x = 0 on zero-capacity slots.
		var place func(t, left int64) error
		place = func(t, left int64) error {
			if t == job.Dl {
				if left != 0 {
					return nil // dead branch: demand does not fit
				}
				return rec(ji + 1)
			}
			hi := job.Cap
			if in.Caps[t] == 0 {
				hi = 0
			}
			// Prune: the remaining slots must be able to absorb what is left.
			rest := int64(0)
			for u := t + 1; u < job.Dl; u++ {
				if in.Caps[u] > 0 {
					rest += job.Cap
				}
			}
			for x := int64(0); x <= hi && x <= left; x++ {
				if left-x > rest {
					continue
				}
				load[t] += x
				if err := place(t+1, left-x); err != nil {
					return err
				}
				load[t] -= x
			}
			return nil
		}
		return place(job.Rel, job.Demand)
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return res, nil
}

// MinMaxLevelByCuts computes the exact optimal first level θ* — the
// minimized maximum normalized load — by enumerating every source/sink
// cut of the instance's transportation network, a derivation completely
// independent of the simplex solver. The network is: source → job j with
// capacity Demand_j; job j → slot t (t in j's window, Caps[t] > 0) with
// capacity Cap_j; slot t → sink with capacity θ·Caps[t]. By max-flow
// min-cut, demand D routes iff for every A ⊆ jobs and B ⊆ group slots:
//
//	θ · Σ_{t∈B} Caps[t]  ≥  Σ_{j∈A} Demand_j − Σ_{j∈A, t∈win_j∖B} Cap_j
//
// so θ* is the maximum of the right-hand side over cuts with a positive
// denominator, and the instance is infeasible iff some cut with an empty
// denominator has a positive right-hand side. Exponential in jobs+slots;
// small instances only.
func MinMaxLevelByCuts(in Instance) (theta float64, feasible bool, err error) {
	if err := in.Validate(); err != nil {
		return 0, false, err
	}
	groupSlots := in.GroupSlots()
	if len(in.Jobs) > 8 || len(groupSlots) > 12 {
		return 0, false, fmt.Errorf("oracle: cut enumeration needs ≤8 jobs and ≤12 group slots, got %d/%d", len(in.Jobs), len(groupSlots))
	}
	inB := make([]bool, len(in.Caps))
	feasible = true
	for aMask := 0; aMask < 1<<len(in.Jobs); aMask++ {
		var demandA int64
		for ji := range in.Jobs {
			if aMask&(1<<ji) != 0 {
				demandA += in.Jobs[ji].Demand
			}
		}
		for bMask := 0; bMask < 1<<len(groupSlots); bMask++ {
			var capB int64
			for gi, t := range groupSlots {
				inB[t] = bMask&(1<<gi) != 0
				if inB[t] {
					capB += in.Caps[t]
				}
			}
			// Edges from jobs in A to slots outside B stay uncut and carry
			// up to Cap_j each (zero-capacity slots carry nothing).
			escape := int64(0)
			for ji, job := range in.Jobs {
				if aMask&(1<<ji) == 0 {
					continue
				}
				for t := job.Rel; t < job.Dl; t++ {
					if in.Caps[t] > 0 && !inB[t] {
						escape += job.Cap
					}
				}
			}
			need := demandA - escape
			for gi, t := range groupSlots {
				_ = gi
				inB[t] = false
			}
			if need <= 0 {
				continue
			}
			if capB == 0 {
				feasible = false
				continue
			}
			if th := float64(need) / float64(capB); th > theta {
				theta = th
			}
		}
	}
	if !feasible {
		return 0, false, nil
	}
	if math.IsInf(theta, 0) || math.IsNaN(theta) {
		return 0, false, fmt.Errorf("oracle: cut enumeration produced %v", theta)
	}
	return theta, true, nil
}
