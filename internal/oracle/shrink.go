package oracle

// Shrink greedily minimizes a failing instance while the predicate
// keeps failing (fails must return true on the input). It tries, in
// deterministic order: dropping a job, halving then decrementing a
// job's demand, lowering a job's parallelism cap, dropping a slot, and
// lowering a slot's capacity; it restarts after every accepted step and
// stops at a fixed point. The result is the smallest instance this
// greedy walk can reach that still fails — the thing to paste into a
// regression test.
func Shrink(in Instance, fails func(Instance) bool) Instance {
	if !fails(in) {
		return in
	}
	cur := clone(in)
	for iter := 0; iter < 10_000; iter++ {
		if next, ok := shrinkStep(cur, fails); ok {
			cur = next
			continue
		}
		break
	}
	return cur
}

func shrinkStep(cur Instance, fails func(Instance) bool) (Instance, bool) {
	// Drop a job.
	for j := range cur.Jobs {
		c := clone(cur)
		c.Jobs = append(c.Jobs[:j], c.Jobs[j+1:]...)
		if fails(c) {
			return c, true
		}
	}
	// Reduce a job's demand: halve first (fast), then decrement.
	for j := range cur.Jobs {
		if cur.Jobs[j].Demand > 1 {
			c := clone(cur)
			c.Jobs[j].Demand /= 2
			if fails(c) {
				return c, true
			}
		}
		if cur.Jobs[j].Demand > 0 {
			c := clone(cur)
			c.Jobs[j].Demand--
			if fails(c) {
				return c, true
			}
		}
	}
	// Lower a job's parallelism cap.
	for j := range cur.Jobs {
		if cur.Jobs[j].Cap > 0 {
			c := clone(cur)
			c.Jobs[j].Cap--
			if fails(c) {
				return c, true
			}
		}
	}
	// Drop a slot (windows shift left; jobs whose window collapses go too).
	for t := int64(0); t < int64(len(cur.Caps)); t++ {
		if len(cur.Caps) == 1 {
			break
		}
		c := Instance{Caps: make([]int64, 0, len(cur.Caps)-1)}
		for u, cap := range cur.Caps {
			if int64(u) != t {
				c.Caps = append(c.Caps, cap)
			}
		}
		for _, job := range cur.Jobs {
			if job.Rel > t {
				job.Rel--
			}
			if job.Dl > t {
				job.Dl--
			}
			if job.Rel < job.Dl {
				c.Jobs = append(c.Jobs, job)
			}
		}
		if fails(c) {
			return c, true
		}
	}
	// Lower a slot's capacity.
	for t := range cur.Caps {
		if cur.Caps[t] > 0 {
			c := clone(cur)
			c.Caps[t]--
			if fails(c) {
				return c, true
			}
		}
	}
	return cur, false
}

func clone(in Instance) Instance {
	return Instance{
		Caps: append([]int64(nil), in.Caps...),
		Jobs: append([]Job(nil), in.Jobs...),
	}
}
