package oracle

import (
	"fmt"
	"time"

	"flowtime/internal/deadline"
	"flowtime/internal/workflow"
)

// CheckDecomposition asserts the paper's Stage-1 invariants on a
// Decompose result, recomputing every quantity (antichain sets, minimum
// runtimes, slack) from the workflow itself rather than trusting the
// decomposer's intermediates:
//
//   - every window nests inside the slot-aligned workflow window
//     [ws, ws + totalSlots·slot] and is aligned to whole slots;
//   - the method matches the paper's rule: resource-demand when the
//     recomputed slack is non-negative, critical-path fallback otherwise
//     (or when forced);
//   - resource-demand results exactly partition the workflow window into
//     per-set windows in topological order, give every set at least its
//     minimum runtime, distribute exactly the total slack, and report
//     Sets that partition the jobs into true antichains;
//   - precedence is preserved: strictly (pred deadline ≤ succ release)
//     for resource-demand; weakly (release and deadline monotone along
//     edges) for the critical-path fallback, whose slot rounding under
//     very tight windows can legally overlap adjacent windows.
func CheckDecomposition(w *workflow.Workflow, opts deadline.Options, res *deadline.Result) error {
	if err := w.Validate(); err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	if res == nil {
		return fmt.Errorf("oracle: nil decomposition result")
	}
	n := w.NumJobs()
	if len(res.Windows) != n {
		return fmt.Errorf("oracle: %d windows for %d jobs", len(res.Windows), n)
	}
	totalSlots := int64((w.Deadline - w.Submit) / opts.Slot)
	horizon := w.Submit + time.Duration(totalSlots)*opts.Slot

	for i, win := range res.Windows {
		if win.Release < w.Submit || win.Deadline > horizon || win.Release >= win.Deadline {
			return fmt.Errorf("oracle: job %d window [%v, %v) escapes workflow window [%v, %v)",
				i, win.Release, win.Deadline, w.Submit, horizon)
		}
		if (win.Release-w.Submit)%opts.Slot != 0 || (win.Deadline-w.Submit)%opts.Slot != 0 {
			return fmt.Errorf("oracle: job %d window [%v, %v) not slot-aligned (slot %v)",
				i, win.Release, win.Deadline, opts.Slot)
		}
	}

	// Recompute the method decision independently.
	sets, err := w.DAG().AntichainSets()
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	minrt := make([]int64, n)
	for i := 0; i < n; i++ {
		mr := w.Job(i).MinRuntimeSlots(opts.Slot, opts.ClusterCap)
		if mr < 0 {
			return fmt.Errorf("oracle: job %d does not fit the cluster", i)
		}
		minrt[i] = mr
	}
	setMinrt := make([]int64, len(sets))
	var sumMinrt int64
	for k, set := range sets {
		for _, i := range set {
			if minrt[i] > setMinrt[k] {
				setMinrt[k] = minrt[i]
			}
		}
		sumMinrt += setMinrt[k]
	}
	slack := totalSlots - sumMinrt

	wantMethod := deadline.ResourceDemand
	if opts.ForceCriticalPath || slack < 0 {
		wantMethod = deadline.CriticalPath
	}
	if res.Method != wantMethod {
		return fmt.Errorf("oracle: method %v, recomputed slack %d demands %v", res.Method, slack, wantMethod)
	}

	// Precedence along every DAG edge.
	for u := 0; u < n; u++ {
		for _, v := range w.DAG().Successors(u) {
			wu, wv := res.Windows[u], res.Windows[v]
			if res.Method == deadline.ResourceDemand {
				if wu.Deadline > wv.Release {
					return fmt.Errorf("oracle: edge %d->%d: pred deadline %v after succ release %v",
						u, v, wu.Deadline, wv.Release)
				}
			} else if wu.Release > wv.Release || wu.Deadline > wv.Deadline {
				return fmt.Errorf("oracle: edge %d->%d: windows [%v,%v) -> [%v,%v) not monotone",
					u, v, wu.Release, wu.Deadline, wv.Release, wv.Deadline)
			}
		}
	}

	if res.Method != deadline.ResourceDemand {
		return nil
	}

	// Resource-demand specifics: Sets must match the recomputed antichain
	// sets, every set shares one window, the per-set windows exactly
	// partition the workflow window, and the widths account for every
	// slot of slack.
	if len(res.Sets) != len(sets) {
		return fmt.Errorf("oracle: %d sets reported, %d recomputed", len(res.Sets), len(sets))
	}
	seen := make([]bool, n)
	cursor := w.Submit
	var distributed int64
	for k, set := range res.Sets {
		if len(set) == 0 {
			return fmt.Errorf("oracle: set %d empty", k)
		}
		win := res.Windows[set[0]]
		for _, i := range set {
			if i < 0 || i >= n || seen[i] {
				return fmt.Errorf("oracle: set %d holds invalid or duplicate job %d", k, i)
			}
			seen[i] = true
			if res.Windows[i] != win {
				return fmt.Errorf("oracle: set %d jobs disagree on window: %v vs %v", k, res.Windows[i], win)
			}
		}
		if win.Release != cursor {
			return fmt.Errorf("oracle: set %d starts at %v, previous set ended at %v", k, win.Release, cursor)
		}
		widthSlots := int64((win.Deadline - win.Release) / opts.Slot)
		if widthSlots < setMinrt[k] {
			return fmt.Errorf("oracle: set %d width %d slots below minimum runtime %d", k, widthSlots, setMinrt[k])
		}
		distributed += widthSlots - setMinrt[k]
		cursor = win.Deadline

		// Antichain: no member may reach another through the DAG.
		inSet := make(map[int]bool, len(set))
		for _, i := range set {
			inSet[i] = true
		}
		for _, i := range set {
			stack := append([]int(nil), w.DAG().Successors(i)...)
			visited := make(map[int]bool)
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if visited[v] {
					continue
				}
				visited[v] = true
				if inSet[v] {
					return fmt.Errorf("oracle: set %d not an antichain: %d reaches %d", k, i, v)
				}
				stack = append(stack, w.DAG().Successors(v)...)
			}
		}
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("oracle: job %d missing from sets", i)
		}
	}
	if cursor != horizon {
		return fmt.Errorf("oracle: sets end at %v, workflow window ends at %v", cursor, horizon)
	}
	if distributed != slack {
		return fmt.Errorf("oracle: distributed slack %d, total slack %d", distributed, slack)
	}
	return nil
}
