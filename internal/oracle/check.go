package oracle

import (
	"fmt"
	"math"

	"flowtime/internal/lp"
)

// Tol is the default absolute tolerance for cross-checks. The solver
// freezes levels at 1e-6 resolution, so checks compare coarser than that.
const Tol = 1e-5

// CheckSolution verifies an LP result from the interior: every
// allocation respects its variable bounds and window, demand rows hold
// exactly (within tol), zero-capacity slots carry nothing, and the
// reported levels equal the skyline recomputed from the allocation.
// It is independent of how the solution was produced, so it scales to
// instances far beyond brute-force reach.
func CheckSolution(in Instance, res *LPResult, tol float64) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if !res.Feasible {
		return fmt.Errorf("oracle: CheckSolution on infeasible result")
	}
	if len(res.Alloc) != len(in.Jobs) {
		return fmt.Errorf("oracle: alloc has %d jobs, instance has %d", len(res.Alloc), len(in.Jobs))
	}
	load := make([]float64, len(in.Caps))
	for ji, job := range in.Jobs {
		row := res.Alloc[ji]
		if int64(len(row)) != int64(len(in.Caps)) {
			return fmt.Errorf("oracle: job %d alloc has %d slots, instance has %d", ji, len(row), len(in.Caps))
		}
		var sum float64
		for t, x := range row {
			t64 := int64(t)
			switch {
			case x < -tol:
				return fmt.Errorf("oracle: job %d slot %d negative allocation %g", ji, t, x)
			case x > float64(job.Cap)+tol:
				return fmt.Errorf("oracle: job %d slot %d allocation %g exceeds cap %d", ji, t, x, job.Cap)
			case x > tol && (t64 < job.Rel || t64 >= job.Dl):
				return fmt.Errorf("oracle: job %d slot %d allocation %g outside window [%d, %d)", ji, t, x, job.Rel, job.Dl)
			case x > tol && in.Caps[t] == 0:
				return fmt.Errorf("oracle: job %d slot %d allocation %g on zero-capacity slot", ji, t, x)
			}
			sum += x
			load[t] += x
		}
		if math.Abs(sum-float64(job.Demand)) > tol*float64(len(row)+1) {
			return fmt.Errorf("oracle: job %d allocated %g, demand %d", ji, sum, job.Demand)
		}
	}
	groupSlots := in.GroupSlots()
	if len(res.GroupSlot) != len(groupSlots) {
		return fmt.Errorf("oracle: result has %d groups, instance defines %d", len(res.GroupSlot), len(groupSlots))
	}
	recomputed := make([]float64, len(groupSlots))
	for gi, t := range groupSlots {
		if res.GroupSlot[gi] != t {
			return fmt.Errorf("oracle: group %d maps to slot %d, expected %d", gi, res.GroupSlot[gi], t)
		}
		recomputed[gi] = load[t] / float64(in.Caps[t])
	}
	if len(res.Levels) != len(recomputed) {
		return fmt.Errorf("oracle: result reports %d levels for %d groups", len(res.Levels), len(recomputed))
	}
	for gi, lv := range res.Levels {
		if math.Abs(lv-recomputed[gi]) > tol {
			return fmt.Errorf("oracle: group %d (slot %d) reported level %g, recomputed %g",
				gi, groupSlots[gi], lv, recomputed[gi])
		}
	}
	return nil
}

// CrossCheck runs the full differential battery on a small instance:
//
//  1. Feasibility triple agreement — the LP, the integral brute force,
//     and the min-cut condition must all return the same verdict.
//  2. Interior check — the LP allocation satisfies every constraint and
//     its reported levels match the recomputed skyline (CheckSolution).
//  3. First level exact — the LP's max level equals θ* from independent
//     cut enumeration.
//  4. Lexicographic optimality bound — the LP's sorted skyline is no
//     worse than the best integral skyline (the LP relaxation can only
//     do better, never worse).
//
// Returns nil when every check passes.
func CrossCheck(in Instance, tol float64) error {
	lpRes, err := SolveLP(in)
	if err != nil {
		return fmt.Errorf("oracle: solver error: %w", err)
	}
	bf, err := BruteForce(in)
	if err != nil {
		return fmt.Errorf("oracle: brute force error: %w", err)
	}
	if lpRes.Feasible != bf.Feasible {
		return fmt.Errorf("oracle: feasibility disagreement: LP=%v brute-force=%v", lpRes.Feasible, bf.Feasible)
	}
	if len(in.GroupSlots()) > 0 {
		_, cutFeasible, err := MinMaxLevelByCuts(in)
		if err != nil {
			return fmt.Errorf("oracle: cut enumeration error: %w", err)
		}
		if cutFeasible != lpRes.Feasible {
			return fmt.Errorf("oracle: feasibility disagreement: LP=%v min-cut=%v", lpRes.Feasible, cutFeasible)
		}
	}
	if !lpRes.Feasible {
		return nil
	}
	if err := CheckSolution(in, lpRes, tol); err != nil {
		return err
	}
	if len(lpRes.Levels) == 0 {
		return nil
	}
	theta, _, err := MinMaxLevelByCuts(in)
	if err != nil {
		return fmt.Errorf("oracle: cut enumeration error: %w", err)
	}
	maxLv := lp.MaxLevel(lpRes.Levels)
	if math.Abs(maxLv-theta) > tol {
		return fmt.Errorf("oracle: LP max level %g, min-cut optimum %g", maxLv, theta)
	}
	lpSorted := lp.SortedDescending(lpRes.Levels)
	if lp.LexLess(bf.BestSkyline, lpSorted, tol) {
		return fmt.Errorf("oracle: integral skyline %v lexicographically beats LP skyline %v",
			bf.BestSkyline, lpSorted)
	}
	return nil
}
