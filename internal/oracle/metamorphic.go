package oracle

import (
	"fmt"
	"math"
	"math/rand"

	"flowtime/internal/lp"
)

// Scale returns the instance with every capacity, demand, and
// parallelism cap multiplied by k. The normalized skyline is invariant
// under this transformation, which is the first metamorphic relation.
func Scale(in Instance, k int64) Instance {
	out := Instance{Caps: make([]int64, len(in.Caps)), Jobs: make([]Job, len(in.Jobs))}
	for t, c := range in.Caps {
		out.Caps[t] = c * k
	}
	for j, job := range in.Jobs {
		job.Demand *= k
		job.Cap *= k
		out.Jobs[j] = job
	}
	return out
}

// PermuteJobs returns the instance with the job order shuffled. The LP
// is symmetric in job order, so the skyline must not change.
func PermuteJobs(in Instance, rng *rand.Rand) Instance {
	out := Instance{Caps: append([]int64(nil), in.Caps...), Jobs: append([]Job(nil), in.Jobs...)}
	rng.Shuffle(len(out.Jobs), func(a, b int) {
		out.Jobs[a], out.Jobs[b] = out.Jobs[b], out.Jobs[a]
	})
	return out
}

// SplitSlot returns the instance with slot t duplicated: a new slot of
// identical capacity is inserted right after t, and every window that
// extends past t stretches to cover the copy. Any original allocation
// remains valid (place the old slot-t allocation in the first copy), so
// a feasible instance stays feasible and the optimal max level cannot
// increase. The reverse does not hold — the copy adds headroom, so an
// infeasible instance may legally become feasible.
func SplitSlot(in Instance, t int64) Instance {
	out := Instance{Caps: make([]int64, 0, len(in.Caps)+1), Jobs: make([]Job, len(in.Jobs))}
	for u, c := range in.Caps {
		out.Caps = append(out.Caps, c)
		if int64(u) == t {
			out.Caps = append(out.Caps, c)
		}
	}
	for j, job := range in.Jobs {
		if job.Rel > t {
			job.Rel++
		}
		if job.Dl > t {
			job.Dl++
		}
		out.Jobs[j] = job
	}
	return out
}

// CheckScaleInvariance asserts the scale relation: solving k·instance
// yields the same feasibility verdict and the same sorted normalized
// skyline as the original.
func CheckScaleInvariance(in Instance, k int64, tol float64) error {
	if k < 1 {
		return fmt.Errorf("oracle: scale factor %d, want >= 1", k)
	}
	base, err := SolveLP(in)
	if err != nil {
		return err
	}
	scaled, err := SolveLP(Scale(in, k))
	if err != nil {
		return err
	}
	return compareRelation("scale", base, scaled, tol, true)
}

// CheckPermutationInvariance asserts the permutation relation: job
// order must not affect feasibility or the skyline.
func CheckPermutationInvariance(in Instance, rng *rand.Rand, tol float64) error {
	base, err := SolveLP(in)
	if err != nil {
		return err
	}
	perm, err := SolveLP(PermuteJobs(in, rng))
	if err != nil {
		return err
	}
	return compareRelation("permute", base, perm, tol, true)
}

// CheckSplitSlot asserts the slot-split relation: duplicating a slot
// must keep a feasible instance feasible and must not worsen the max
// level.
func CheckSplitSlot(in Instance, t int64, tol float64) error {
	if t < 0 || t >= int64(len(in.Caps)) {
		return fmt.Errorf("oracle: split slot %d out of range", t)
	}
	base, err := SolveLP(in)
	if err != nil {
		return err
	}
	split, err := SolveLP(SplitSlot(in, t))
	if err != nil {
		return err
	}
	return compareRelation("split", base, split, tol, false)
}

// compareRelation checks the relation's feasibility contract and, when
// exact is true, that the sorted skylines match level by level;
// otherwise only that the transformed max level did not get worse.
// Exact relations are bijections, so feasibility must agree both ways;
// relaxed relations (split) only add headroom, so they must preserve
// feasibility but may repair infeasibility.
func compareRelation(name string, base, other *LPResult, tol float64, exact bool) error {
	if exact && base.Feasible != other.Feasible {
		return fmt.Errorf("oracle: %s relation changed feasibility: %v -> %v", name, base.Feasible, other.Feasible)
	}
	if base.Feasible && !other.Feasible {
		return fmt.Errorf("oracle: %s relation lost feasibility", name)
	}
	if !base.Feasible {
		return nil
	}
	if exact {
		a := lp.SortedDescending(base.Levels)
		b := lp.SortedDescending(other.Levels)
		if len(a) != len(b) {
			return fmt.Errorf("oracle: %s relation changed group count: %d -> %d", name, len(a), len(b))
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > tol {
				return fmt.Errorf("oracle: %s relation changed skyline at rank %d: %g -> %g", name, i, a[i], b[i])
			}
		}
		return nil
	}
	if len(base.Levels) == 0 {
		return nil
	}
	if mb, mo := lp.MaxLevel(base.Levels), lp.MaxLevel(other.Levels); mo > mb+tol {
		return fmt.Errorf("oracle: %s relation worsened max level: %g -> %g", name, mb, mo)
	}
	return nil
}
