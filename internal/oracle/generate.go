package oracle

import (
	"fmt"
	"math/rand"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/workflow"
	"flowtime/internal/workload"
)

// GenInstance draws a small single-kind instance sized for the
// brute-force and min-cut oracles: at most 4 slots and 3 jobs, with
// occasional zero-capacity slots and windows that deliberately include
// infeasible demand levels. Deterministic in the rng.
func GenInstance(rng *rand.Rand) Instance {
	nSlots := 1 + rng.Intn(4)
	caps := make([]int64, nSlots)
	for t := range caps {
		if rng.Intn(6) == 0 {
			caps[t] = 0 // occasionally a dead slot (maintenance / node loss)
		} else {
			caps[t] = 1 + rng.Int63n(4)
		}
	}
	nJobs := 1 + rng.Intn(3)
	jobs := make([]Job, nJobs)
	for j := range jobs {
		rel := rng.Int63n(int64(nSlots))
		dl := rel + 1 + rng.Int63n(int64(nSlots)-rel)
		jobs[j] = Job{
			Demand: rng.Int63n(7), // 0..6, zero demand included on purpose
			Rel:    rel,
			Dl:     dl,
			Cap:    1 + rng.Int63n(4),
		}
	}
	return Instance{Caps: caps, Jobs: jobs}
}

// GenLargeInstance draws an instance far beyond brute-force reach, for
// the interior-feasibility checker: up to 40 slots and 12 jobs with
// demands calibrated so both feasible and infeasible instances occur.
func GenLargeInstance(rng *rand.Rand) Instance {
	nSlots := 5 + rng.Intn(36)
	caps := make([]int64, nSlots)
	for t := range caps {
		if rng.Intn(10) == 0 {
			caps[t] = 0
		} else {
			caps[t] = 1 + rng.Int63n(50)
		}
	}
	nJobs := 1 + rng.Intn(12)
	jobs := make([]Job, nJobs)
	for j := range jobs {
		rel := rng.Int63n(int64(nSlots))
		dl := rel + 1 + rng.Int63n(int64(nSlots)-rel)
		cap := 1 + rng.Int63n(30)
		// Demand around cap x window so tight and impossible cases appear.
		maxD := cap * (dl - rel)
		jobs[j] = Job{
			Demand: rng.Int63n(maxD + maxD/2 + 2),
			Rel:    rel,
			Dl:     dl,
			Cap:    cap,
		}
	}
	return Instance{Caps: caps, Jobs: jobs}
}

// DeadlineRegime classifies how tight a generated workflow's deadline is.
type DeadlineRegime int

// Deadline regimes for GenScenario.
const (
	// RegimeTight leaves little slack above the critical path.
	RegimeTight DeadlineRegime = iota
	// RegimeLoose mimics the paper's production traces (factor >> 1).
	RegimeLoose
	// RegimeInfeasible sets the deadline below the critical path, forcing
	// the critical-path fallback or best-effort admission.
	RegimeInfeasible
)

// String names the regime.
func (r DeadlineRegime) String() string {
	switch r {
	case RegimeTight:
		return "tight"
	case RegimeLoose:
		return "loose"
	case RegimeInfeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("regime(%d)", int(r))
	}
}

// Scenario is one full-pipeline verification scenario: a cluster, a
// workflow mix across deadline regimes, and an ad-hoc arrival stream.
type Scenario struct {
	SlotDur   time.Duration
	Horizon   int64
	Capacity  resource.Vector
	Workflows []*workflow.Workflow
	AdHoc     []workflow.AdHoc
	// Regimes[i] is the deadline regime of Workflows[i].
	Regimes []DeadlineRegime
}

// GenScenario draws a deterministic scenario: 1-3 workflows over the
// DAG shapes the paper evaluates (chains, fan-out/fan-in, diamonds,
// random antichains), each in a tight, loose, or infeasible deadline
// regime, plus a Poisson ad-hoc stream. Deterministic in the rng.
func GenScenario(rng *rand.Rand) (*Scenario, error) {
	sc := &Scenario{
		SlotDur:  10 * time.Second,
		Horizon:  720, // 2 simulated hours
		Capacity: resource.New(40, 80_000),
	}
	shapes := []workload.Shape{
		workload.ShapeChain, workload.ShapeFanOut, workload.ShapeDiamond, workload.ShapeRandom,
	}
	nWF := 1 + rng.Intn(3)
	for i := 0; i < nWF; i++ {
		regime := DeadlineRegime(rng.Intn(3))
		var factor float64
		switch regime {
		case RegimeTight:
			factor = 1.2 + rng.Float64()*0.8
		case RegimeLoose:
			factor = 3 + rng.Float64()*5
		case RegimeInfeasible:
			factor = 0.3 + rng.Float64()*0.6
		}
		wf, err := workload.GenerateWorkflow(rng, workload.WorkflowSpec{
			ID:             fmt.Sprintf("wf-%d", i),
			Shape:          shapes[rng.Intn(len(shapes))],
			Jobs:           4 + rng.Intn(5),
			Submit:         time.Duration(rng.Int63n(60)) * 10 * time.Second,
			DeadlineFactor: factor,
		})
		if err != nil {
			return nil, fmt.Errorf("oracle: %w", err)
		}
		sc.Workflows = append(sc.Workflows, wf)
		sc.Regimes = append(sc.Regimes, regime)
	}
	if rng.Intn(4) != 0 { // most scenarios mix in ad-hoc load
		ahs, err := workload.GenerateAdHoc(rng, workload.AdHocSpec{
			Count:            1 + rng.Intn(6),
			MeanInterarrival: 2 * time.Minute,
			Start:            time.Duration(rng.Int63n(30)) * 10 * time.Second,
			MinTasks:         1, MaxTasks: 8,
			MinTaskDur: 20 * time.Second, MaxTaskDur: 3 * time.Minute,
			Demand: resource.New(1, 1024),
		})
		if err != nil {
			return nil, fmt.Errorf("oracle: %w", err)
		}
		sc.AdHoc = ahs
	}
	return sc, nil
}
