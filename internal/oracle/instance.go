// Package oracle is the differential verification harness for FlowTime's
// algorithmic core. It provides independent reference implementations —
// brute-force enumeration and max-flow min-cut analysis on tiny
// instances, an interior-feasibility checker for instances of any size,
// and a decomposition-invariant checker — and cross-checks the production
// lp.LexMinMax solver and deadline.Decompose against them, so a silent
// regression in either cannot sail through tests that only compare the
// solver with itself.
//
// The instance model is deliberately one-dimensional: core.FlowTime runs
// the stage-B LP independently per resource kind (the kinds share no
// variables or constraints), so checking one kind at a time loses no
// generality.
package oracle

import (
	"errors"
	"fmt"

	"flowtime/internal/lp"
)

// Job is one deadline job projected onto a single resource kind.
type Job struct {
	// Demand is the work volume (resource-slots) to place in the window.
	Demand int64
	// Rel is the first slot of the window (inclusive).
	Rel int64
	// Dl is the end of the window (exclusive).
	Dl int64
	// Cap is the per-slot allocation ceiling (parallelism cap).
	Cap int64
}

// Instance is one single-kind scheduling instance: per-slot capacities
// and a set of windowed jobs. It mirrors exactly the model
// core.FlowTime.buildStageB hands to lp.LexMinMax.
type Instance struct {
	// Caps[t] is the capacity of slot t. Zero-capacity slots covered by a
	// window become hard "no allocation" slots, as in the production model.
	Caps []int64
	// Jobs are the windowed demands.
	Jobs []Job
}

// Validate checks the instance shape.
func (in Instance) Validate() error {
	n := int64(len(in.Caps))
	if n == 0 {
		return errors.New("oracle: instance with no slots")
	}
	for t, c := range in.Caps {
		if c < 0 {
			return fmt.Errorf("oracle: slot %d has negative capacity %d", t, c)
		}
	}
	for j, job := range in.Jobs {
		if job.Demand < 0 {
			return fmt.Errorf("oracle: job %d has negative demand %d", j, job.Demand)
		}
		if job.Cap < 0 {
			return fmt.Errorf("oracle: job %d has negative cap %d", j, job.Cap)
		}
		if job.Rel < 0 || job.Dl > n || job.Rel >= job.Dl {
			return fmt.Errorf("oracle: job %d window [%d, %d) invalid for %d slots", j, job.Rel, job.Dl, n)
		}
	}
	return nil
}

// GroupSlots returns the slots that form lexicographic load groups: the
// slots with positive capacity covered by at least one job window. This
// matches the group construction in core.FlowTime.buildStageB, which the
// skyline comparisons must mirror exactly.
func (in Instance) GroupSlots() []int64 {
	covered := make([]bool, len(in.Caps))
	for _, j := range in.Jobs {
		if j.Demand <= 0 {
			continue
		}
		for t := j.Rel; t < j.Dl; t++ {
			covered[t] = true
		}
	}
	var out []int64
	for t, c := range in.Caps {
		if covered[t] && c > 0 {
			out = append(out, int64(t))
		}
	}
	return out
}

// LPResult is the outcome of SolveLP.
type LPResult struct {
	// Feasible is false when the LP reported ErrInfeasible.
	Feasible bool
	// Alloc[j][t] is job j's allocation in slot t (zero outside windows).
	Alloc [][]float64
	// GroupSlot[g] is the slot index of load group g.
	GroupSlot []int64
	// Levels[g] is the normalized load of group g, as reported by the
	// solver (not recomputed).
	Levels []float64
	// Rounds is the number of min-θ rounds LexMinMax used.
	Rounds int
}

// SolveLP runs the production pipeline on the instance: it builds the
// stage-B model exactly as core.FlowTime.buildStageB does — a variable
// per (job, window slot) bounded by the job's cap, an exact-demand row
// per job, a load group per covered positive-capacity slot, and a
// hard ≤0 row per covered zero-capacity slot — and solves it with the
// exact (uncapped-rounds) lexicographic min-max.
func SolveLP(in Instance) (*LPResult, error) {
	return SolveLPWithOptions(in, lp.MinMaxOptions{})
}

// SolveLPWithOptions is SolveLP with explicit solver options, so the
// differential suite can run the same instance down both the warm
// incremental path and the cold clone-per-round path and compare.
func SolveLPWithOptions(in Instance, opts lp.MinMaxOptions) (*LPResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	model := lp.NewModel()
	nSlots := int64(len(in.Caps))
	vars := make([][]lp.Var, len(in.Jobs))
	slotTerms := make([][]lp.Term, nSlots)
	for ji, job := range in.Jobs {
		if job.Demand <= 0 {
			continue
		}
		n := job.Dl - job.Rel
		vs := make([]lp.Var, n)
		terms := make([]lp.Term, 0, n)
		for s := int64(0); s < n; s++ {
			v, err := model.NewVar("", 0, float64(job.Cap))
			if err != nil {
				return nil, fmt.Errorf("oracle: %w", err)
			}
			vs[s] = v
			terms = append(terms, lp.Term{Var: v, Coef: 1})
			slotTerms[job.Rel+s] = append(slotTerms[job.Rel+s], lp.Term{Var: v, Coef: 1})
		}
		vars[ji] = vs
		if err := model.AddConstraint(terms, lp.EQ, float64(job.Demand)); err != nil {
			return nil, fmt.Errorf("oracle: %w", err)
		}
	}

	var groups []lp.LoadGroup
	var groupSlot []int64
	for t := int64(0); t < nSlots; t++ {
		if len(slotTerms[t]) == 0 {
			continue
		}
		if in.Caps[t] <= 0 {
			if err := model.AddConstraint(slotTerms[t], lp.LE, 0); err != nil {
				return nil, fmt.Errorf("oracle: %w", err)
			}
			continue
		}
		groups = append(groups, lp.LoadGroup{Terms: slotTerms[t], Cap: float64(in.Caps[t])})
		groupSlot = append(groupSlot, t)
	}

	res := &LPResult{GroupSlot: groupSlot, Alloc: make([][]float64, len(in.Jobs))}
	for ji := range res.Alloc {
		res.Alloc[ji] = make([]float64, nSlots)
	}
	if len(groups) == 0 {
		// No load to flatten: the instance is feasible iff every job has
		// zero demand (any positive demand would have produced a group or
		// be pinned to zero-capacity slots by a ≤0 row).
		for _, job := range in.Jobs {
			if job.Demand > 0 {
				return res, nil // infeasible: demand with no usable slot
			}
		}
		res.Feasible = true
		return res, nil
	}

	mm, err := lp.LexMinMaxWithOptions(model, groups, opts)
	if errors.Is(err, lp.ErrInfeasible) {
		return res, nil
	}
	if err != nil {
		return nil, fmt.Errorf("oracle: lexminmax: %w", err)
	}
	res.Feasible = true
	res.Levels = mm.Levels
	res.Rounds = mm.Rounds
	for ji, vs := range vars {
		for s, v := range vs {
			res.Alloc[ji][in.Jobs[ji].Rel+int64(s)] = mm.Solution.Value(v)
		}
	}
	return res, nil
}
