package netchaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// virtualClock pins the injector's timeline for deterministic tests.
type virtualClock struct{ now atomic.Int64 }

func (c *virtualClock) set(d time.Duration) { c.now.Store(int64(d)) }
func (c *virtualClock) read() time.Duration { return time.Duration(c.now.Load()) }

func TestParseScript(t *testing.T) {
	script, err := ParseScript(`
		# a comment
		1s-3s partition rm->repl
		3s+   flap rm<->repl period=400ms duty=0.25
		0s+   latency agent->rm 10ms jitter=5ms
		2s+   drop *->rm p=0.3
		0s+   throttle rm->agent 4096
		500ms+ reset agent->rm p=0.1
		0s+   dup agent->rm p=0.2
	`)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if len(script) != 7 {
		t.Fatalf("parsed %d rules, want 7", len(script))
	}
	r := script[0]
	if r.Fault != Partition || r.From != "rm" || r.To != "repl" || r.Bidir ||
		r.Start != time.Second || r.End != 3*time.Second {
		t.Errorf("rule 0 = %+v, want 1s-3s partition rm->repl", r)
	}
	r = script[1]
	if r.Fault != Partition || !r.Bidir || r.Period != 400*time.Millisecond || r.Duty != 0.25 || r.End != 0 {
		t.Errorf("rule 1 = %+v, want open-ended bidirectional flap", r)
	}
	r = script[2]
	if r.Fault != Latency || r.Latency != 10*time.Millisecond || r.Jitter != 5*time.Millisecond {
		t.Errorf("rule 2 = %+v, want latency 10ms jitter 5ms", r)
	}
	if script[3].From != "*" || script[3].P != 0.3 {
		t.Errorf("rule 3 = %+v, want wildcard drop p=0.3", script[3])
	}
	if script[4].BytesPerSec != 4096 {
		t.Errorf("rule 4 = %+v, want throttle 4096", script[4])
	}

	for _, bad := range []string{
		"1s partition a->b",        // malformed window
		"1s-500ms partition a->b",  // end before start
		"0s+ explode a->b",         // unknown fault
		"0s+ partition ab",         // malformed link
		"0s+ drop a->b p=1.5",      // probability out of range
		"0s+ latency a->b",         // missing duration
		"0s+ throttle a->b",        // missing rate
		"0s+ partition a->b blorp", // stray argument
	} {
		if _, err := ParseScript(bad); err == nil {
			t.Errorf("ParseScript(%q) accepted, want error", bad)
		}
	}
}

func TestLoadScriptInline(t *testing.T) {
	script, err := LoadScript("0s-1s partition a->b; 1s+ latency a->b 5ms")
	if err != nil {
		t.Fatalf("LoadScript: %v", err)
	}
	if len(script) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(script))
	}
}

// TestDeterministicDecisions is the reproducibility contract: the same
// seed, script, and clock sequence produce the same fault sequence, and
// concurrent traffic on one link cannot perturb another link's stream.
func TestDeterministicDecisions(t *testing.T) {
	script, err := ParseScript(`
		0s+ drop a->b p=0.5
		0s+ reset b->a p=0.3
		0s+ latency a->b 1ms jitter=10ms
	`)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	run := func(seed int64, perturb bool) []Decision {
		inj := New(seed, script)
		clk := &virtualClock{}
		inj.SetClock(clk.read)
		var out []Decision
		for i := 0; i < 200; i++ {
			clk.set(time.Duration(i) * time.Millisecond)
			if perturb {
				// Traffic on an unrelated link must not shift a->b's stream.
				inj.Decide("x", "y")
			}
			out = append(out, inj.Decide("a", "b"))
			out = append(out, inj.Decide("b", "a"))
		}
		return out
	}
	base := run(42, false)
	again := run(42, false)
	perturbed := run(42, true)
	for i := range base {
		if base[i] != again[i] {
			t.Fatalf("decision %d differs across identical runs: %+v vs %+v", i, base[i], again[i])
		}
		if base[i] != perturbed[i] {
			t.Fatalf("decision %d perturbed by unrelated-link traffic: %+v vs %+v", i, base[i], perturbed[i])
		}
	}
	other := run(7, false)
	same := true
	for i := range base {
		if base[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 7 produced identical decision sequences")
	}
}

func TestRuleWindowsAndFlap(t *testing.T) {
	script, _ := ParseScript("1s-3s partition a->b\n4s+ flap a->b period=1s duty=0.5")
	inj := New(1, script)
	clk := &virtualClock{}
	inj.SetClock(clk.read)

	cases := []struct {
		at   time.Duration
		drop bool
	}{
		{500 * time.Millisecond, false},  // before the window
		{1500 * time.Millisecond, true},  // inside the partition
		{3 * time.Second, false},         // window closed (end-exclusive)
		{4100 * time.Millisecond, true},  // flap on-phase
		{4700 * time.Millisecond, false}, // flap off-phase
		{5200 * time.Millisecond, true},  // next period, on again
	}
	for _, c := range cases {
		clk.set(c.at)
		if got := inj.Decide("a", "b").Drop; got != c.drop {
			t.Errorf("at %v: drop=%v, want %v", c.at, got, c.drop)
		}
	}
	// The reverse direction is untouched by one-way rules.
	clk.set(1500 * time.Millisecond)
	if inj.Decide("b", "a").Drop {
		t.Error("one-way partition a->b dropped b->a traffic")
	}
}

// TestTransportFaults drives the RoundTripper wrapper against a real
// HTTP server: drops never reach it, resets reach it but fail the
// caller, response-direction partitions deliver the mutation and lose
// only the acknowledgement, and duplicates hit the server twice.
func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		_, _ = io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()

	do := func(script string, atT time.Duration) (int64, error) {
		sc, err := ParseScript(script)
		if err != nil {
			t.Fatalf("ParseScript: %v", err)
		}
		inj := New(99, sc)
		clk := &virtualClock{}
		inj.SetClock(clk.read)
		clk.set(atT)
		hc := &http.Client{Transport: &Transport{Injector: inj, From: "c", To: "s"}}
		before := hits.Load()
		resp, err := hc.Post(srv.URL, "text/plain", strings.NewReader("x"))
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
		return hits.Load() - before, err
	}

	if n, err := do("0s+ partition c->s", 0); err == nil || n != 0 {
		t.Errorf("request-direction partition: hits=%d err=%v, want 0 hits and an error", n, err)
	}
	if n, err := do("0s+ reset c->s p=1", 0); err == nil || n != 1 {
		t.Errorf("reset: hits=%d err=%v, want 1 hit and an error (delivered, ack lost)", n, err)
	}
	if n, err := do("0s+ partition s->c", 0); err == nil || n != 1 {
		t.Errorf("response-direction partition: hits=%d err=%v, want 1 hit and an error", n, err)
	}
	if n, err := do("0s+ dup c->s p=1", 0); err != nil || n != 2 {
		t.Errorf("dup: hits=%d err=%v, want 2 hits and success", n, err)
	}
	if n, err := do("0s-1s partition c->s", 2*time.Second); err != nil || n != 1 {
		t.Errorf("expired partition: hits=%d err=%v, want clean delivery", n, err)
	}
}

// TestProxyRelaysIntactUnderThrottle asserts the byte-stream contract:
// a throttled, latency-injected proxy still delivers the HTTP response
// — status, headers, body — unaltered.
func TestProxyRelaysIntactUnderThrottle(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"code":"overloaded"}`))
	}))
	defer srv.Close()

	sc, err := ParseScript("0s+ throttle c<->s 65536\n0s+ latency c->s 1ms")
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	proxy, err := NewProxy(New(5, sc), "c", "s", strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()

	resp, err := http.Get(proxy.URL())
	if err != nil {
		t.Fatalf("GET through proxy: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After %q did not survive the proxy, want \"7\"", ra)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != `{"code":"overloaded"}` {
		t.Errorf("body %q altered in transit", body)
	}
}

// TestProxyPartitionSeversConnections proves partitions kill both new
// and established connections, and that healing restores service.
func TestProxyPartitionSeversConnections(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()

	sc, _ := ParseScript("0s-1h partition c<->s")
	inj := New(3, sc)
	clk := &virtualClock{}
	inj.SetClock(clk.read)
	proxy, err := NewProxy(inj, "c", "s", strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()

	hc := &http.Client{Timeout: 2 * time.Second}
	clk.set(0)
	if resp, err := hc.Get(proxy.URL()); err == nil {
		resp.Body.Close()
		t.Fatal("request succeeded through an active partition")
	}
	// Heal the link: the same proxy serves cleanly again.
	clk.set(2 * time.Hour)
	resp, err := hc.Get(proxy.URL())
	if err != nil {
		t.Fatalf("request after heal: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d after heal, want 200", resp.StatusCode)
	}
}
