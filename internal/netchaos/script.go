package netchaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// ParseScript parses the textual scenario format, one rule per line:
//
//	<window> <fault> <link> [args...]
//
//	window:  2s-5s        active from 2s to 5s (scenario time)
//	         2s+          active from 2s, open-ended
//	fault:   partition | drop | reset | dup | latency | throttle | flap
//	link:    a->b         one direction
//	         a<->b        both directions
//	         *->rm        wildcard endpoint
//	args:    p=0.3              probability (drop, reset, dup)
//	         50ms                base latency (latency) or bytes/sec (throttle)
//	         jitter=20ms         uniform extra latency (latency)
//	         period=200ms        flap period (any rule; flap defaults 200ms)
//	         duty=0.5            active fraction of each period
//
// "flap" is a partition on a duty cycle: the link goes down for
// duty*period out of every period. Blank lines and #-comments are
// ignored. Example:
//
//	# sever the replication link mid-shipment, then let it flap
//	1s-3s partition rm->repl
//	3s+   flap rm<->repl period=400ms duty=0.5
//	0s+   latency agent->rm 10ms jitter=5ms
func ParseScript(text string) (Script, error) {
	var script Script
	for ln, line := range strings.Split(text, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("netchaos: line %d: want \"<window> <fault> <link> [args]\", got %q", ln+1, line)
		}
		r, err := parseRule(fields)
		if err != nil {
			return nil, fmt.Errorf("netchaos: line %d: %w", ln+1, err)
		}
		script = append(script, r)
	}
	return script, nil
}

// LoadScript parses an inline script, or the contents of a file when the
// argument starts with "@" (the CLI form: -chaos-net @scenario.txt).
func LoadScript(arg string) (Script, error) {
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, fmt.Errorf("netchaos: %w", err)
		}
		return ParseScript(string(data))
	}
	// Inline scripts separate rules with ";" so they fit in one flag.
	return ParseScript(strings.ReplaceAll(arg, ";", "\n"))
}

func parseRule(fields []string) (Rule, error) {
	var r Rule
	if err := parseWindow(fields[0], &r); err != nil {
		return r, err
	}

	kind := fields[1]
	switch kind {
	case "partition":
		r.Fault = Partition
	case "flap":
		r.Fault = Partition
		r.Period = 200 * time.Millisecond
		r.Duty = 0.5
	case "drop":
		r.Fault, r.P = Drop, 1
	case "reset":
		r.Fault, r.P = Reset, 1
	case "dup":
		r.Fault, r.P = Duplicate, 1
	case "latency":
		r.Fault = Latency
	case "throttle":
		r.Fault = Throttle
	default:
		return r, fmt.Errorf("unknown fault %q", kind)
	}

	if err := parseLink(fields[2], &r); err != nil {
		return r, err
	}

	for _, arg := range fields[3:] {
		if err := parseArg(arg, &r); err != nil {
			return r, err
		}
	}
	switch r.Fault {
	case Latency:
		if r.Latency <= 0 && r.Jitter <= 0 {
			return r, fmt.Errorf("latency rule needs a duration (e.g. 50ms)")
		}
	case Throttle:
		if r.BytesPerSec <= 0 {
			return r, fmt.Errorf("throttle rule needs a positive bytes/sec")
		}
	}
	return r, nil
}

func parseWindow(w string, r *Rule) error {
	if open := strings.HasSuffix(w, "+"); open {
		start, err := time.ParseDuration(strings.TrimSuffix(w, "+"))
		if err != nil {
			return fmt.Errorf("window %q: %w", w, err)
		}
		r.Start, r.End = start, 0
		return nil
	}
	// Durations never contain '-' (negative windows are meaningless
	// here), so the first dash splits start from end.
	i := strings.IndexByte(w, '-')
	if i < 0 {
		return fmt.Errorf("window %q: want START-END or START+", w)
	}
	start, err := time.ParseDuration(w[:i])
	if err != nil {
		return fmt.Errorf("window %q: %w", w, err)
	}
	end, err := time.ParseDuration(w[i+1:])
	if err != nil {
		return fmt.Errorf("window %q: %w", w, err)
	}
	if end <= start {
		return fmt.Errorf("window %q: end must be after start", w)
	}
	r.Start, r.End = start, end
	return nil
}

func parseLink(l string, r *Rule) error {
	if from, to, ok := strings.Cut(l, "<->"); ok {
		r.From, r.To, r.Bidir = from, to, true
	} else if from, to, ok := strings.Cut(l, "->"); ok {
		r.From, r.To = from, to
	} else {
		return fmt.Errorf("link %q: want a->b or a<->b", l)
	}
	if r.From == "" || r.To == "" {
		return fmt.Errorf("link %q: empty endpoint", l)
	}
	return nil
}

func parseArg(arg string, r *Rule) error {
	if key, val, ok := strings.Cut(arg, "="); ok {
		switch key {
		case "p":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil || p < 0 || p > 1 {
				return fmt.Errorf("p=%q: want a probability in [0,1]", val)
			}
			r.P = p
		case "jitter":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("jitter=%q: %w", val, err)
			}
			r.Jitter = d
		case "period":
			d, err := time.ParseDuration(val)
			if err != nil {
				return fmt.Errorf("period=%q: %w", val, err)
			}
			r.Period = d
		case "duty":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil || f <= 0 || f > 1 {
				return fmt.Errorf("duty=%q: want a fraction in (0,1]", val)
			}
			r.Duty = f
		default:
			return fmt.Errorf("unknown argument %q", arg)
		}
		return nil
	}
	// Positional argument: a duration for latency rules, bytes/sec for
	// throttle rules.
	switch r.Fault {
	case Latency:
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("latency %q: %w", arg, err)
		}
		r.Latency = d
	case Throttle:
		n, err := strconv.Atoi(arg)
		if err != nil {
			return fmt.Errorf("throttle %q: want bytes/sec", arg)
		}
		r.BytesPerSec = n
	default:
		return fmt.Errorf("unexpected argument %q for %s rule", arg, r.Fault)
	}
	return nil
}
