package netchaos

import (
	"net"
	"sync"
	"time"
)

// Proxy is a fault-injecting TCP proxy: clients connect to Addr() and
// the proxy relays the byte stream to the target, applying the script
// at connection granularity (partition and reset kill connections) and
// at chunk granularity (latency and throttling pace the stream). The
// proxy never alters bytes it relays, so application-layer artifacts —
// HTTP status codes, Retry-After headers, leader hints — survive every
// fault short of a severed connection; tests assert that coded-error
// plumbing is header-based, not connection-based.
type Proxy struct {
	inj            *Injector
	client, server string
	target         string
	ln             net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// NewProxy starts a proxy on a fresh loopback port forwarding to
// target. clientLabel and serverLabel name the two endpoints in the
// script (client->server judges inbound traffic, server->client the
// return path).
func NewProxy(inj *Injector, clientLabel, serverLabel, target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		inj:    inj,
		client: clientLabel,
		server: serverLabel,
		target: target,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
	}
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's address as an http:// base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Close stops accepting and severs every open connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	return p.ln.Close()
}

func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) serve() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		// Connection-level faults at accept: a partitioned or reset link
		// refuses the connection outright (the client sees a reset).
		d := p.inj.Decide(p.client, p.server)
		if d.Drop || d.Reset {
			_ = c.Close()
			continue
		}
		go p.handle(c, d.Delay)
	}
}

func (p *Proxy) handle(c net.Conn, connectDelay time.Duration) {
	if connectDelay > 0 {
		time.Sleep(connectDelay)
	}
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		_ = c.Close()
		return
	}
	if !p.track(c) || !p.track(up) {
		_ = c.Close()
		_ = up.Close()
		return
	}
	var wg sync.WaitGroup
	wg.Add(2)
	// Either direction failing (injected or real) severs the whole
	// connection, as a real middlebox reset would.
	sever := func() {
		_ = c.Close()
		_ = up.Close()
	}
	go func() {
		defer wg.Done()
		p.pipe(up, c, p.client, p.server, sever)
	}()
	go func() {
		defer wg.Done()
		p.pipe(c, up, p.server, p.client, sever)
	}()
	wg.Wait()
	p.untrack(c)
	p.untrack(up)
}

// pipe relays src -> dst, consulting the injector per chunk: an active
// partition or a reset draw kills the connection mid-stream, latency
// delays the chunk, and throttling paces it.
func (p *Proxy) pipe(dst, src net.Conn, from, to string, sever func()) {
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			d := p.inj.Decide(from, to)
			if d.Drop || d.Reset {
				sever()
				return
			}
			if d.Delay > 0 {
				time.Sleep(d.Delay)
			}
			if err := writeThrottled(dst, buf[:n], d.BytesPerSec); err != nil {
				sever()
				return
			}
		}
		if err != nil {
			sever()
			return
		}
	}
}

// writeThrottled writes b to dst, pacing at bps bytes/sec when bps > 0.
func writeThrottled(dst net.Conn, b []byte, bps int) error {
	if bps <= 0 {
		_, err := dst.Write(b)
		return err
	}
	const chunk = 1024
	for len(b) > 0 {
		n := chunk
		if n > len(b) {
			n = len(b)
		}
		if _, err := dst.Write(b[:n]); err != nil {
			return err
		}
		time.Sleep(time.Duration(float64(n) / float64(bps) * float64(time.Second)))
		b = b[n:]
	}
	return nil
}

// WrapListener shims a server-side listener with inbound fault
// injection — the ftrm -chaos-net path, where there is no separate
// proxy process. Connections arriving while the client->server
// direction is partitioned are closed immediately (the client sees a
// reset); established connections are judged per read/write.
func WrapListener(ln net.Listener, inj *Injector, clientLabel, serverLabel string) net.Listener {
	if inj == nil {
		return ln
	}
	return &chaosListener{Listener: ln, inj: inj, client: clientLabel, server: serverLabel}
}

type chaosListener struct {
	net.Listener
	inj            *Injector
	client, server string
}

func (l *chaosListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		d := l.inj.Decide(l.client, l.server)
		if d.Drop || d.Reset {
			_ = c.Close()
			continue
		}
		return &chaosConn{Conn: c, inj: l.inj, client: l.client, server: l.server}, nil
	}
}

// chaosConn applies the client->server direction to reads (inbound
// bytes) and server->client to writes (outbound bytes).
type chaosConn struct {
	net.Conn
	inj            *Injector
	client, server string
}

func (c *chaosConn) Read(p []byte) (int, error) {
	d := c.inj.Decide(c.client, c.server)
	if d.Drop || d.Reset {
		_ = c.Conn.Close()
		return 0, &FaultError{Link: c.client + "->" + c.server, Reason: "connection severed"}
	}
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	n, err := c.Conn.Read(p)
	if n > 0 && d.BytesPerSec > 0 {
		time.Sleep(time.Duration(float64(n) / float64(d.BytesPerSec) * float64(time.Second)))
	}
	return n, err
}

func (c *chaosConn) Write(p []byte) (int, error) {
	d := c.inj.Decide(c.server, c.client)
	if d.Drop || d.Reset {
		_ = c.Conn.Close()
		return 0, &FaultError{Link: c.server + "->" + c.client, Reason: "connection severed"}
	}
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	if d.BytesPerSec > 0 {
		n := 0
		for n < len(p) {
			end := n + 1024
			if end > len(p) {
				end = len(p)
			}
			w, err := c.Conn.Write(p[n:end])
			n += w
			if err != nil {
				return n, err
			}
			time.Sleep(time.Duration(float64(w) / float64(d.BytesPerSec) * float64(time.Second)))
		}
		return n, nil
	}
	return c.Conn.Write(p)
}
