package netchaos

import (
	"io"
	"net/http"
	"time"
)

// Transport wraps an http.RoundTripper with scripted fault injection.
// The request travels the From->To direction and the response travels
// To->From, each judged independently — so a one-way partition To->From
// delivers the mutation to the server and loses only the response,
// which is exactly the duplicate-inducing case retry logic must
// survive.
type Transport struct {
	// Injector decides the faults; nil passes everything through.
	Injector *Injector
	// From and To label this client and its peer in the script.
	From, To string
	// Base performs the real round trip; nil means http.DefaultTransport.
	Base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	ctx := req.Context()
	link := t.From + "->" + t.To

	d := t.Injector.Decide(t.From, t.To)
	if err := sleepCtx(ctx, d.Delay); err != nil {
		return nil, err
	}
	if d.Drop {
		return nil, &FaultError{Link: link, Reason: "request dropped"}
	}
	// A duplicated request is delivered twice; the first delivery's
	// response is discarded, mimicking a network-level retransmit. Only
	// requests with a replayable body can be duplicated.
	if d.Duplicate && (req.Body == nil || req.GetBody != nil) {
		dup := req.Clone(ctx)
		if req.GetBody != nil {
			body, err := req.GetBody()
			if err == nil {
				dup.Body = body
			}
		}
		if resp, err := base.RoundTrip(dup); err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
	}

	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.Reset {
		// The server processed the request; the sender sees a failure.
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, &FaultError{Link: link, Reason: "connection reset after delivery"}
	}

	rd := t.Injector.Decide(t.To, t.From)
	if rd.Drop || rd.Reset {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, &FaultError{Link: t.To + "->" + t.From, Reason: "response lost"}
	}
	if err := sleepCtx(ctx, rd.Delay); err != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
		return nil, err
	}
	if rd.BytesPerSec > 0 {
		resp.Body = &throttledBody{rc: resp.Body, bps: rd.BytesPerSec}
	}
	return resp, nil
}

// throttledBody paces reads at bps bytes per second.
type throttledBody struct {
	rc  io.ReadCloser
	bps int
}

func (t *throttledBody) Read(p []byte) (int, error) {
	n, err := t.rc.Read(p)
	if n > 0 && t.bps > 0 {
		time.Sleep(time.Duration(float64(n) / float64(t.bps) * float64(time.Second)))
	}
	return n, err
}

func (t *throttledBody) Close() error { return t.rc.Close() }
