// Package netchaos is a deterministic, scriptable network fault
// injector for the RM control plane. Everything FaultFS does below the
// syscall layer (internal/store), this package does for the network
// between agents, the RM, and the replication link: one-way and
// asymmetric partitions, latency distributions, message drops,
// duplicates, connection resets, byte throttling, and timed scenario
// scripts ("partition agent->rm from t=2s to t=5s, then flap").
//
// The injector is attached at three seams:
//
//   - Transport wraps an http.RoundTripper, faulting requests on the
//     from->to direction and responses on the to->from direction — so a
//     one-way partition can deliver a mutation and lose only its
//     acknowledgement, the nastiest retry case.
//   - Proxy is a TCP proxy (its own net.Listener) between a client and
//     a real server; faults act on the byte stream, so HTTP-level
//     artifacts (error codes, headers such as Retry-After, leader
//     hints) must survive intact — chaos tests assert exactly that.
//   - WrapListener shims a server's own net.Listener, faulting inbound
//     connections without a separate proxy process (ftrm -chaos-net).
//
// Determinism: an Injector takes a seed and a Script. All probabilistic
// decisions are drawn from per-link RNG streams derived from the seed
// and the link name, so concurrent traffic on link A never perturbs the
// decision sequence on link B, and the same seed + script + decision
// sequence reproduces the same fault sequence. Time-windowed rules read
// a clock that tests can replace with a virtual one (SetClock) to make
// the timeline itself reproducible.
package netchaos

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"time"
)

// FaultKind enumerates the injectable fault classes.
type FaultKind int

const (
	// Partition drops everything on the link while the rule is active.
	Partition FaultKind = iota
	// Drop loses each message independently with probability P.
	Drop
	// Reset delivers the message, then fails the link (connection reset
	// / response lost) with probability P.
	Reset
	// Duplicate re-delivers each message with probability P.
	Duplicate
	// Latency delays each message by Latency plus uniform Jitter.
	Latency
	// Throttle caps the link at BytesPerSec (slow reads/writes).
	Throttle
)

func (k FaultKind) String() string {
	switch k {
	case Partition:
		return "partition"
	case Drop:
		return "drop"
	case Reset:
		return "reset"
	case Duplicate:
		return "dup"
	case Latency:
		return "latency"
	case Throttle:
		return "throttle"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Rule is one scripted fault: a fault kind applied to a directed link
// during a time window, optionally flapping on a duty cycle.
type Rule struct {
	// From and To name the link's endpoints; "*" matches any label.
	From, To string
	// Bidir applies the rule in both directions (the "a<->b" form).
	Bidir bool
	// Start and End bound the active window, measured from the
	// injector's clock origin. End <= 0 means open-ended.
	Start, End time.Duration
	// Fault selects the fault class; the remaining fields parameterize it.
	Fault FaultKind
	// P is the per-message probability for Drop/Reset/Duplicate
	// (ignored by the other kinds; Partition is unconditional).
	P float64
	// Latency and Jitter parameterize Latency rules: each message is
	// delayed Latency plus a uniform draw from [0, Jitter].
	Latency, Jitter time.Duration
	// BytesPerSec caps throughput for Throttle rules.
	BytesPerSec int
	// Period and Duty make any rule flap: within each Period the rule
	// is active for the first Duty fraction and dormant for the rest.
	// Period 0 means always active inside the window.
	Period time.Duration
	Duty   float64
}

// matches reports whether the rule covers the from->to direction.
func (r *Rule) matches(from, to string) bool {
	if matchLabel(r.From, from) && matchLabel(r.To, to) {
		return true
	}
	return r.Bidir && matchLabel(r.From, to) && matchLabel(r.To, from)
}

func matchLabel(pat, s string) bool { return pat == "*" || pat == s }

// activeAt reports whether the rule is live at elapsed time now,
// accounting for the window and the flap duty cycle.
func (r *Rule) activeAt(now time.Duration) bool {
	if now < r.Start {
		return false
	}
	if r.End > 0 && now >= r.End {
		return false
	}
	if r.Period > 0 {
		duty := r.Duty
		if duty <= 0 || duty > 1 {
			duty = 0.5
		}
		phase := (now - r.Start) % r.Period
		return phase < time.Duration(duty*float64(r.Period))
	}
	return true
}

// Script is an ordered rule list; every active matching rule
// contributes to a decision (latencies add, throttles take the
// tightest cap, any partition wins).
type Script []Rule

// Decision is the injector's verdict for one message (or connection) on
// a directed link at one moment.
type Decision struct {
	// Drop loses the message before it reaches the peer.
	Drop bool
	// Reset delivers the message but fails the link afterwards: the
	// sender sees an error even though the peer processed the message.
	Reset bool
	// Duplicate re-delivers the message once.
	Duplicate bool
	// Delay postpones delivery.
	Delay time.Duration
	// BytesPerSec throttles the stream; 0 means unthrottled.
	BytesPerSec int
}

// Faulty reports whether the decision perturbs delivery at all.
func (d Decision) Faulty() bool {
	return d.Drop || d.Reset || d.Duplicate || d.Delay > 0 || d.BytesPerSec > 0
}

// Injector evaluates a Script against a seeded RNG and a clock. The
// zero value and a nil *Injector are inert (every decision is clean),
// so callers can thread an optional injector without nil checks.
type Injector struct {
	script Script
	seed   int64

	mu    sync.Mutex
	rngs  map[string]*rand.Rand
	start time.Time
	clock func() time.Duration
}

// New returns an injector over script whose probabilistic choices are
// derived from seed. The clock origin is the moment New is called.
func New(seed int64, script Script) *Injector {
	return &Injector{
		script: script,
		seed:   seed,
		rngs:   make(map[string]*rand.Rand),
		start:  time.Now(),
	}
}

// SetClock replaces the wall clock with a virtual one returning elapsed
// time since the scenario origin. Tests use it to pin the timeline.
func (in *Injector) SetClock(clock func() time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.clock = clock
}

// Restart moves the clock origin to now, replaying the script timeline
// from t=0.
func (in *Injector) Restart() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.start = time.Now()
}

func (in *Injector) elapsedLocked() time.Duration {
	if in.clock != nil {
		return in.clock()
	}
	return time.Since(in.start)
}

// linkRNG returns the per-link RNG stream, creating it deterministically
// from the seed and the link name on first use.
func (in *Injector) linkRNG(link string) *rand.Rand {
	r, ok := in.rngs[link]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(link))
		r = rand.New(rand.NewSource(in.seed ^ int64(h.Sum64())))
		in.rngs[link] = r
	}
	return r
}

// Decide evaluates the script for one message traveling from -> to at
// the current scenario time. Safe for concurrent use; a nil injector
// always answers a clean Decision.
func (in *Injector) Decide(from, to string) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	now := in.elapsedLocked()
	rng := in.linkRNG(from + "->" + to)
	var d Decision
	for i := range in.script {
		r := &in.script[i]
		if !r.matches(from, to) || !r.activeAt(now) {
			continue
		}
		switch r.Fault {
		case Partition:
			d.Drop = true
		case Drop:
			if rng.Float64() < r.P {
				d.Drop = true
			}
		case Reset:
			if rng.Float64() < r.P {
				d.Reset = true
			}
		case Duplicate:
			if rng.Float64() < r.P {
				d.Duplicate = true
			}
		case Latency:
			l := r.Latency
			if r.Jitter > 0 {
				l += time.Duration(rng.Int63n(int64(r.Jitter) + 1))
			}
			d.Delay += l
		case Throttle:
			if r.BytesPerSec > 0 && (d.BytesPerSec == 0 || r.BytesPerSec < d.BytesPerSec) {
				d.BytesPerSec = r.BytesPerSec
			}
		}
	}
	return d
}

// FaultError is the transport-level error surfaced for injected drops
// and resets. It implements net.Error (non-timeout, temporary) so
// callers treat it exactly like a real connection failure.
type FaultError struct {
	Link   string
	Reason string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("netchaos: %s on %s", e.Reason, e.Link)
}

// Timeout implements net.Error.
func (e *FaultError) Timeout() bool { return false }

// Temporary implements net.Error.
func (e *FaultError) Temporary() bool { return true }

// sleepCtx sleeps d, returning ctx.Err() if the context ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
