package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/sched"
)

// randomAssignContext draws a random slot-0 scheduling decision: a mix
// of deadline jobs (with decomposed windows of varying tightness) and
// ad-hoc jobs, on a 10-vcore cluster.
func randomAssignContext(rng *rand.Rand) sched.AssignContext {
	capVec := resource.New(10, 1000)
	horizon := int64(40)
	n := 1 + rng.Intn(6)
	jobs := make([]sched.JobState, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 {
			jobs = append(jobs, sched.JobState{
				ID:      fmt.Sprintf("ah-%d", i),
				Kind:    sched.AdHocJob,
				Ready:   true,
				Request: resource.New(1+rng.Int63n(4), 100*(1+rng.Int63n(4))),
			})
			continue
		}
		rel := rng.Int63n(horizon - 1)
		dl := rel + 1 + rng.Int63n(horizon-rel-1) + 1
		tasks := 1 + rng.Int63n(5)
		per := resource.New(1, 100)
		cap := per.Scale(tasks)
		est := cap.Scale(1 + rng.Int63n(4)) // 1-4 slots of full-parallel work
		jobs = append(jobs, sched.JobState{
			ID:           fmt.Sprintf("dl-%d", i),
			Kind:         sched.DeadlineJob,
			WorkflowID:   "wf",
			JobName:      fmt.Sprintf("j%d", i),
			Release:      time.Duration(rel) * 10 * time.Second,
			Deadline:     time.Duration(dl) * 10 * time.Second,
			EstRemaining: est,
			ParallelCap:  cap,
			MinSlots:     1,
			Request:      cap.Min(est),
			Ready:        rng.Intn(5) != 0,
		})
	}
	return sched.AssignContext{
		Now:     0,
		Changed: true,
		Jobs:    jobs,
		Cluster: sched.ClusterView{
			SlotDur: 10 * time.Second,
			Horizon: horizon,
			CapAt:   func(int64) resource.Vector { return capVec },
		},
	}
}

// TestQuickAssignSafety is a testing/quick driver over the production
// planner: for random job mixes, the grants FlowTime emits must respect
// cluster capacity, per-job parallelism, readiness, and release times —
// without relying on the simulator's defensive clamping.
func TestQuickAssignSafety(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := randomAssignContext(rng)
		grants, err := New(DefaultConfig()).Assign(ctx)
		if err != nil {
			t.Logf("seed %d: Assign: %v", seed, err)
			return false
		}
		var used resource.Vector
		byID := make(map[string]sched.JobState, len(ctx.Jobs))
		for _, j := range ctx.Jobs {
			byID[j.ID] = j
		}
		for id, g := range grants {
			j, ok := byID[id]
			if !ok {
				t.Logf("seed %d: grant to unknown job %s", seed, id)
				return false
			}
			if g.AnyNegative() {
				t.Logf("seed %d: negative grant %v to %s", seed, g, id)
				return false
			}
			if j.Kind == sched.DeadlineJob && !j.BestEffort && !g.IsZero() &&
				!g.FitsIn(j.ParallelCap) {
				t.Logf("seed %d: grant %v to %s exceeds parallel cap %v", seed, g, id, j.ParallelCap)
				return false
			}
			if !j.Ready && !g.IsZero() {
				t.Logf("seed %d: grant %v to blocked job %s", seed, g, id)
				return false
			}
			if j.Kind == sched.DeadlineJob && !g.IsZero() &&
				int64(j.Release/ctx.Cluster.SlotDur) > ctx.Now {
				t.Logf("seed %d: grant %v to %s before release %v", seed, g, id, j.Release)
				return false
			}
			used = used.Add(g)
		}
		if !used.FitsIn(ctx.Cluster.CapAt(ctx.Now)) {
			t.Logf("seed %d: total grants %v exceed capacity", seed, used)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAssignDeterminism: the Scheduler contract requires identical
// decisions for identical context sequences; a fresh planner on the same
// random context must always produce the same grants.
func TestQuickAssignDeterminism(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := randomAssignContext(rng)
		a, err1 := New(DefaultConfig()).Assign(ctx)
		b, err2 := New(DefaultConfig()).Assign(ctx)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if !reflect.DeepEqual(a, b) {
			t.Logf("seed %d: same context, different grants:\n%v\n%v", seed, a, b)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
