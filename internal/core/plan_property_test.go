package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"flowtime/internal/lp"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
)

// TestPlanPropertiesRandom fuzzes replan with random feasible-ish job
// mixes and checks the plan invariants the paper's formulation promises:
// demand conservation within windows (Eq. 2), per-slot capacity (Eq. 4),
// per-slot parallelism bounds (Eq. 5 with bounds), and integrality
// (Lemma 2).
func TestPlanPropertiesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2018))
	capacity := resource.New(32, 32*1024)
	cl := sched.ClusterView{
		SlotDur: slotDur,
		Horizon: 400,
		CapAt:   func(int64) resource.Vector { return capacity },
	}
	for trial := 0; trial < 30; trial++ {
		now := rng.Int63n(20)
		nJobs := 1 + rng.Intn(8)
		jobs := make([]sched.JobState, 0, nJobs)
		for i := 0; i < nJobs; i++ {
			rel := now + rng.Int63n(30)
			win := 2 + rng.Int63n(40)
			tasks := int64(1 + rng.Intn(12))
			perSlot := resource.New(tasks, tasks*512)
			durSlots := 1 + rng.Int63n(win)
			jobs = append(jobs, sched.JobState{
				ID:           fmt.Sprintf("j%02d", i),
				Kind:         sched.DeadlineJob,
				Release:      time.Duration(rel) * slotDur,
				Deadline:     time.Duration(rel+win) * slotDur,
				EstRemaining: perSlot.Scale(durSlots),
				ParallelCap:  perSlot,
				MinSlots:     durSlots,
				Request:      perSlot,
				Ready:        true,
			})
		}
		slack := time.Duration(rng.Intn(3)) * 30 * time.Second
		f := New(Config{Slack: slack, MaxLexRounds: 3})
		if _, err := f.Assign(sched.AssignContext{
			Now: now, Changed: true, Jobs: jobs, Cluster: cl,
		}); err != nil {
			t.Fatalf("trial %d: Assign: %v", trial, err)
		}

		// Invariants over the produced plan.
		planned := make(map[string]resource.Vector, len(jobs))
		var load []resource.Vector
		for _, j := range jobs {
			slots := f.plan[j.ID]
			if len(load) == 0 {
				load = make([]resource.Vector, len(slots))
			}
			relSlot := int64(j.Release / slotDur)
			dlSlot := int64(j.Deadline / slotDur)
			for off, g := range slots {
				if g.IsZero() {
					continue
				}
				abs := f.planFrom + int64(off)
				if abs < relSlot && relSlot > now {
					t.Errorf("trial %d: job %s granted %v before release (slot %d < %d)",
						trial, j.ID, g, abs, relSlot)
				}
				if abs >= dlSlot && dlSlot > now {
					t.Errorf("trial %d: job %s granted %v at/after deadline slot %d",
						trial, j.ID, g, dlSlot)
				}
				if !g.FitsIn(j.ParallelCap) {
					t.Errorf("trial %d: job %s slot grant %v exceeds parallel cap %v",
						trial, j.ID, g, j.ParallelCap)
				}
				planned[j.ID] = planned[j.ID].Add(g)
				load[off] = load[off].Add(g)
			}
		}
		for _, l := range load {
			if !l.FitsIn(capacity) {
				t.Errorf("trial %d: planned load %v exceeds capacity %v", trial, l, capacity)
			}
		}
		// Conservation: planned + deferred covers the demand exactly.
		for _, j := range jobs {
			got := planned[j.ID].Add(f.deferred[j.ID])
			if got != j.EstRemaining {
				t.Errorf("trial %d: job %s planned+deferred %v != demand %v",
					trial, j.ID, got, j.EstRemaining)
			}
		}
	}
}

// TestLexMinMaxLevelsMatchPlanPeak cross-checks the integral repair against
// the LP: the plan's peak normalized load must not exceed the lexmin
// optimum by more than the rounding granularity.
func TestLexMinMaxLevelsMatchPlanPeak(t *testing.T) {
	capacity := resource.New(20, 20*1024)
	cl := sched.ClusterView{
		SlotDur: slotDur,
		Horizon: 100,
		CapAt:   func(int64) resource.Vector { return capacity },
	}
	// Two jobs sharing a 10-slot window: demands 40+60=100 cores over 10
	// slots at 20 cores/slot -> perfectly flat lexmin level 0.5.
	jobs := []sched.JobState{
		dlJob("a", 0, 10, resource.New(40, 40*512), resource.New(10, 10*512)),
		dlJob("b", 0, 10, resource.New(60, 60*512), resource.New(12, 12*512)),
	}
	f := New(Config{Slack: 0, MaxLexRounds: 0})
	if _, err := f.Assign(sched.AssignContext{Now: 0, Changed: true, Jobs: jobs, Cluster: cl}); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	peak := 0.0
	for _, l := range f.PlannedLoad() {
		if s := l.DominantShare(capacity); s > peak {
			peak = s
		}
	}
	if peak > 0.5+0.06 { // one unit of rounding on 20 cores = 0.05
		t.Errorf("plan peak %.3f exceeds lexmin optimum 0.5 beyond rounding", peak)
	}
	_ = lp.Inf // keep the lp import for the documentation cross-reference
}
