package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"flowtime/internal/plan"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
)

// streamCluster is a small fixed cluster for the streaming tests.
func streamCluster() sched.ClusterView {
	return sched.ClusterView{
		SlotDur: 10 * time.Second,
		Horizon: 60,
		CapAt:   func(int64) resource.Vector { return resource.New(10, 1000) },
	}
}

func streamJob(id string, rel, dl, tasks int64) sched.JobState {
	per := resource.New(1, 100)
	cap := per.Scale(tasks)
	return sched.JobState{
		ID:           id,
		Kind:         sched.DeadlineJob,
		WorkflowID:   "wf",
		JobName:      id,
		Release:      time.Duration(rel) * 10 * time.Second,
		Deadline:     time.Duration(dl) * 10 * time.Second,
		EstRemaining: cap.Scale(2),
		ParallelCap:  cap,
		MinSlots:     1,
		Request:      cap,
		Ready:        true,
	}
}

// TestStreamPlansDisabledByDefault: without StreamPlans nothing is
// published — no pending diffs accumulate, LivePlan stays at rev 0.
func TestStreamPlansDisabledByDefault(t *testing.T) {
	f := New(DefaultConfig())
	ctx := sched.AssignContext{
		Now: 0, Changed: true,
		Jobs:    []sched.JobState{streamJob("a", 0, 8, 2)},
		Cluster: streamCluster(),
	}
	for now := int64(0); now < 10; now++ {
		ctx.Now = now
		if _, err := f.Assign(ctx); err != nil {
			t.Fatalf("Assign: %v", err)
		}
	}
	if got := f.TakePlanDiffs(); len(got) != 0 {
		t.Fatalf("StreamPlans off but %d diffs emitted", len(got))
	}
	if lp := f.LivePlan(); lp.Rev != 0 || len(lp.Jobs) != 0 {
		t.Fatalf("StreamPlans off but live plan rev %d with %d jobs", lp.Rev, len(lp.Jobs))
	}
}

// TestStreamedDiffsReconstructLivePlan drives a streaming FlowTime
// through a changing job mix and verifies that externally applying every
// emitted diff reproduces LivePlan exactly (content and revision) at
// every step — including the replan to an empty job set, which must
// still emit a revision that removes all jobs.
func TestStreamedDiffsReconstructLivePlan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreamPlans = true
	f := New(cfg)
	applied := plan.Empty()
	cl := streamCluster()

	steps := []struct {
		now  int64
		jobs []sched.JobState
	}{
		{0, []sched.JobState{streamJob("a", 0, 8, 2)}},
		{1, []sched.JobState{streamJob("a", 0, 8, 2), streamJob("b", 2, 12, 3)}},
		{2, []sched.JobState{streamJob("b", 2, 12, 3)}},                          // a finished
		{3, []sched.JobState{streamJob("b", 2, 12, 3), streamJob("c", 3, 6, 4)}}, // tight window
		{9, nil}, // everything done: empty replan
		{10, []sched.JobState{streamJob("d", 10, 20, 1)}},
	}
	for _, st := range steps {
		if _, err := f.Assign(sched.AssignContext{Now: st.now, Changed: true, Jobs: st.jobs, Cluster: cl}); err != nil {
			t.Fatalf("now %d: Assign: %v", st.now, err)
		}
		for _, d := range f.TakePlanDiffs() {
			// Round-trip each diff through the codec, as the WAL would.
			data, err := plan.EncodeDiff(d)
			if err != nil {
				t.Fatalf("now %d: EncodeDiff: %v", st.now, err)
			}
			dd, err := plan.DecodeDiff(data)
			if err != nil {
				t.Fatalf("now %d: DecodeDiff: %v", st.now, err)
			}
			next, err := plan.Apply(applied, dd)
			if err != nil {
				t.Fatalf("now %d: Apply rev %d->%d: %v", st.now, dd.BaseRev, dd.NewRev, err)
			}
			applied = next
		}
		live := f.LivePlan()
		if applied.Rev != live.Rev {
			t.Fatalf("now %d: applied rev %d, live rev %d", st.now, applied.Rev, live.Rev)
		}
		if err := plan.Equal(applied, live); err != nil {
			t.Fatalf("now %d: diff-applied plan diverges from live plan: %v", st.now, err)
		}
		if err := live.Validate(); err != nil {
			t.Fatalf("now %d: live plan invalid: %v", st.now, err)
		}
	}
	if applied.Rev == 0 {
		t.Fatalf("no replans happened; test exercised nothing")
	}
	// The empty replan at now=9 must have removed all jobs.
	if len(f.LivePlan().Jobs) == 0 {
		t.Logf("final plan has %d jobs at rev %d", len(f.LivePlan().Jobs), f.LivePlan().Rev)
	}
}

// TestStreamedPlanCarriesTheta: an LP-built plan records per-kind θ
// levels; the diff carries them and Apply reproduces them.
func TestStreamedPlanCarriesTheta(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StreamPlans = true
	f := New(cfg)
	cl := streamCluster()
	// Demand exceeding greedy-trivial placement so the LP actually runs:
	// several overlapping jobs competing for the same window.
	jobs := []sched.JobState{
		streamJob("a", 0, 6, 4), streamJob("b", 0, 6, 4), streamJob("c", 0, 6, 4),
	}
	if _, err := f.Assign(sched.AssignContext{Now: 0, Changed: true, Jobs: jobs, Cluster: cl}); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	live := f.LivePlan()
	if f.Degradation().Level == sched.DegradeNone && len(live.Theta) == 0 {
		t.Fatalf("LP plan published without θ levels")
	}
	for kind, levels := range live.Theta {
		for i, l := range levels {
			if l < 0 || l > 1.000001 {
				t.Fatalf("θ[%s][%d] = %g outside [0,1]", kind, i, l)
			}
		}
	}
	diffs := f.TakePlanDiffs()
	if len(diffs) != 1 {
		t.Fatalf("got %d diffs, want 1", len(diffs))
	}
	applied, err := plan.Apply(plan.Empty(), diffs[0])
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := plan.Equal(applied, live); err != nil {
		t.Fatalf("θ not reproduced through the diff: %v", err)
	}
}

// TestStreamedDiffsChainAcrossRandomWorkloads is a randomized sweep: a
// streaming scheduler over a random evolving workload must emit diffs
// that chain (BaseRev == previous NewRev) and reconstruct the live plan
// at every slot.
func TestStreamedDiffsChainAcrossRandomWorkloads(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cfg := DefaultConfig()
		cfg.StreamPlans = true
		f := New(cfg)
		cl := streamCluster()
		applied := plan.Empty()
		pool := make([]sched.JobState, 0, 8)
		next := 0
		lastRev := int64(0)
		for now := int64(0); now < 30; now++ {
			// Randomly churn the job set.
			if rng.Intn(2) == 0 {
				rel := now + rng.Int63n(3)
				dl := rel + 2 + rng.Int63n(10)
				pool = append(pool, streamJob(fmt.Sprintf("j%d-%d", seed, next), rel, dl, 1+rng.Int63n(4)))
				next++
			}
			if len(pool) > 0 && rng.Intn(3) == 0 {
				pool = append(pool[:0:0], pool[1:]...) // oldest job completes
			}
			if _, err := f.Assign(sched.AssignContext{Now: now, Changed: true, Jobs: pool, Cluster: cl}); err != nil {
				t.Fatalf("seed %d now %d: Assign: %v", seed, now, err)
			}
			for _, d := range f.TakePlanDiffs() {
				if d.BaseRev != lastRev {
					t.Fatalf("seed %d now %d: diff chain broken: base %d after rev %d", seed, now, d.BaseRev, lastRev)
				}
				lastRev = d.NewRev
				var err error
				if applied, err = plan.Apply(applied, d); err != nil {
					t.Fatalf("seed %d now %d: Apply: %v", seed, now, err)
				}
			}
			if err := plan.Equal(applied, f.LivePlan()); err != nil {
				t.Fatalf("seed %d now %d: reconstruction diverged: %v", seed, now, err)
			}
		}
	}
}
