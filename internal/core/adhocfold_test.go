package core

import (
	"testing"

	"flowtime/internal/resource"
	"flowtime/internal/sched"
)

// TestFoldAdHocDrainReservesCapacity drives the sched.AdHocFolder path
// end to end inside the scheduler: a drain fold must (a) not trip an
// urgent replan — it is batched as quality staleness — and (b) make the
// next replan plan deadline work against cluster capacity minus the
// reservations, while planCap keeps recording RAW capacity so the fold
// itself never looks like a cluster capacity change.
func TestFoldAdHocDrainReservesCapacity(t *testing.T) {
	f := New(Config{Slack: 0, MaxLexRounds: 4})
	capacity := resource.New(10, 1000)
	rem := resource.New(100, 10000) // 20-slot window, ~5 cores/slot flattened
	mk := func(now int64) sched.AssignContext {
		return sched.AssignContext{
			Now: now, Changed: true,
			Jobs:    []sched.JobState{dlJob("j", 0, 20, rem, capacity)},
			Cluster: view(capacity, 40),
		}
	}

	step := func(now int64) {
		t.Helper()
		grants, err := f.Assign(mk(now))
		if err != nil {
			t.Fatalf("Assign(%d): %v", now, err)
		}
		rem = rem.SubClamped(grants["j"])
	}

	step(0)
	if f.stats.Replans != 1 {
		t.Fatalf("initial Replans = %d, want 1", f.stats.Replans)
	}

	// The gate retires an epoch: 5 cores / 500 MB admitted at slots 0..9.
	consumed := make([]resource.Vector, 10)
	for i := range consumed {
		consumed[i] = resource.New(5, 500)
	}
	f.FoldAdHocDrain(0, consumed)
	if f.stats.AdHocFolds != 1 {
		t.Fatalf("AdHocFolds = %d, want 1", f.stats.AdHocFolds)
	}

	// Slots 1..4: the fold is quality staleness only — no replan before
	// the batching interval elapses.
	for now := int64(1); now < qualityReplanInterval; now++ {
		step(now)
		if f.stats.Replans != 1 {
			t.Fatalf("slot %d tripped replan %d — fold must not be urgent", now, f.stats.Replans)
		}
	}

	// Slot 5: the batched quality replan fires and folds the reservations.
	step(qualityReplanInterval)
	if f.stats.Replans != 2 {
		t.Fatalf("Replans = %d after interval, want 2 (batched fold)", f.stats.Replans)
	}
	// Reserved slots (abs 5..9 = plan offsets 0..4) leave the admitted
	// volume untouched; beyond them the full capacity is usable.
	free := capacity.Sub(resource.New(5, 500))
	for off := int64(0); off < 5 && off < int64(len(f.load)); off++ {
		if !f.load[off].FitsIn(free) {
			t.Errorf("plan offset %d load %v exceeds shaved capacity %v", off, f.load[off], free)
		}
	}
	// planCap must keep the RAW capacity — otherwise every later slot
	// would compare CapAt != planCap and trip an urgent replan.
	for off, pc := range f.planCap {
		if pc != capacity {
			t.Fatalf("planCap[%d] = %v, want raw capacity %v", off, pc, capacity)
		}
	}
	// And indeed the following slot must not replan again.
	step(qualityReplanInterval + 1)
	if f.stats.Replans != 2 {
		t.Fatalf("Replans = %d one slot after fold, want still 2", f.stats.Replans)
	}
	// The plan must still cover the whole remaining demand: demand 75 over
	// slots 5..19 under 5+5*... shaved capacity is feasible.
	var planned resource.Vector
	for _, g := range f.plan["j"] {
		planned = planned.Add(g)
	}
	if planned.Get(resource.VCores) == 0 {
		t.Fatal("no planned allocation after fold")
	}
}

// TestFoldAdHocDrainMergeAndTrim unit-tests the reservation bookkeeping:
// zero-slot trimming, cumulative overlap merging, and age-out.
func TestFoldAdHocDrainMergeAndTrim(t *testing.T) {
	f := New(DefaultConfig())

	// All-zero drains are dropped without marking staleness.
	f.FoldAdHocDrain(0, []resource.Vector{{}, {}})
	if f.stats.AdHocFolds != 0 || f.adhocStale {
		t.Fatalf("zero drain counted: folds=%d stale=%v", f.stats.AdHocFolds, f.adhocStale)
	}

	// Zero lead/tail slots are trimmed before storing.
	f.FoldAdHocDrain(3, []resource.Vector{{}, resource.New(2, 20), resource.New(1, 10), {}})
	if f.adhocFrom != 4 || len(f.adhocReserved) != 2 {
		t.Fatalf("after first fold: from=%d len=%d, want 4/2", f.adhocFrom, len(f.adhocReserved))
	}
	if !f.adhocStale {
		t.Fatal("fold did not mark quality staleness")
	}

	// An overlapping drain extends the range and ADDS on shared slots.
	f.FoldAdHocDrain(2, []resource.Vector{resource.New(4, 40), {}, resource.New(3, 30)})
	if f.adhocFrom != 2 || len(f.adhocReserved) != 4 {
		t.Fatalf("after merge: from=%d len=%d, want 2/4", f.adhocFrom, len(f.adhocReserved))
	}
	want := []resource.Vector{
		resource.New(4, 40), // slot 2
		{},                  // slot 3
		resource.New(5, 50), // slot 4: 2+3
		resource.New(1, 10), // slot 5
	}
	for i, w := range want {
		if f.adhocReservedAt(2+int64(i)) != w {
			t.Errorf("reserved[slot %d] = %v, want %v", 2+i, f.adhocReservedAt(2+int64(i)), w)
		}
	}
	if got := f.adhocReservedAt(6); !got.IsZero() {
		t.Errorf("reserved beyond range = %v, want zero", got)
	}

	// Age-out keeps only current-and-future slots.
	f.trimAdHocReserved(4)
	if f.adhocFrom != 4 || len(f.adhocReserved) != 2 {
		t.Fatalf("after trim(4): from=%d len=%d, want 4/2", f.adhocFrom, len(f.adhocReserved))
	}
	if f.adhocReservedAt(4) != resource.New(5, 50) || f.adhocReservedAt(5) != resource.New(1, 10) {
		t.Fatalf("trim shifted values: %v %v", f.adhocReservedAt(4), f.adhocReservedAt(5))
	}
	f.trimAdHocReserved(100)
	if len(f.adhocReserved) != 0 {
		t.Fatalf("trim past end left %d slots", len(f.adhocReserved))
	}
}
