// Package core implements the FlowTime scheduler — the paper's primary
// contribution (§V): after workflow deadlines have been decomposed into
// per-job windows, deadline jobs are placed by a linear program that
// lexicographically minimizes the normalized cluster usage skyline
// z[t][r]/C[t][r] (Eq. 1–5), so ad-hoc jobs arriving at any time find the
// most leftover capacity possible and start immediately.
//
// The scheduler is event-driven (paper §III): it rebuilds its multi-slot
// plan whenever the plan goes stale — a job arrived, finished early or
// late, or was blocked where the plan expected it to run — and serves
// per-slot grants from the plan otherwise. On-schedule completions do not
// trigger replans: the remaining plan is still optimal.
//
// Pipeline per replan, independently per resource kind (the formulation's
// kinds share no variables or constraints, so the lexicographic optimum
// decomposes):
//
//  1. Effective windows: each job's decomposed window, intersected with
//     [now, horizon) and tightened by the deadline slack (§VII-B.2);
//     overdue jobs get an as-soon-as-possible window.
//  2. Feasibility: a greedy earliest-deadline water-fill under hard
//     capacity proves most instances feasible outright; only when it
//     fails does a shortfall-minimizing LP decide what cannot fit (that
//     demand is deferred to the overdue path — it will miss, as it must,
//     but still completes).
//  3. LexMinMax: the paper's Eq. 1 objective over the feasible demand,
//     via the iterative realization of Lemma 1.
//  4. Integral repair: the fractional optimum is converted into integer
//     per-slot grants by cumulative-rounded budgets and
//     earliest-deadline-first water-filling — exactness is guaranteed by
//     the total unimodularity of the constraint structure (Lemma 2) plus
//     a final hard-cap sweep.
//
// The pipeline runs under a degradation ladder: when the LP cannot finish
// (solve budget tripped, numerical breakdown, infeasible or unbounded
// model, or even a panic), planning steps down — full lexicographic
// min-max → single min-θ round → LP-free greedy EDF water-fill — instead
// of failing the slot. Every plan is post-validated (allocations within
// windows, under caps, non-negative, demand-conserving) before it is
// served; a plan that fails validation is rebuilt at the greedy rung.
// Assign therefore never surfaces a solver error: the worst case is a
// valid but less load-balanced plan, with the active level and trip
// reason reported through Degradation().
//
// Grants left over after serving the plan go to overdue deadline jobs
// first and then to ad-hoc jobs in arrival order, fulfilling the paper's
// "schedule deadline work while minimally impacting ad-hoc jobs".
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"flowtime/internal/lp"
	"flowtime/internal/plan"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
)

// Config tunes the FlowTime scheduler.
type Config struct {
	// Slack is the deadline slack (paper §VII-B.2): the LP is asked to
	// finish each job this much before its true deadline. Default 60s
	// (the paper's empirical setting); zero disables.
	Slack time.Duration
	// MaxLexRounds caps the lexicographic refinement rounds per replan
	// and per resource kind (0 = exact). The maximum level — what ad-hoc
	// jobs feel first — is always exact; deeper levels are refined while
	// rounds remain.
	MaxLexRounds int
	// PlanSlots bounds the planning lookahead: jobs whose window opens
	// more than PlanSlots slots in the future are left out of the current
	// plan and picked up by a replan when their release arrives. The
	// paper's evaluation plans 100 slots (1000 s) ahead (§VII, Fig. 7).
	// 0 means unbounded.
	PlanSlots int64
	// Solve bounds every LP solve inside a replan (simplex pivot and
	// wall-clock budgets; see lp.SolveOptions). The zero value keeps the
	// solver defaults. A tripped budget never fails Assign: the planner
	// steps down its degradation ladder and emits a valid plan anyway.
	Solve lp.SolveOptions
	// StreamPlans makes every replan additionally publish a versioned
	// plan.Plan and emit a plan.Diff against the previous revision
	// (sched.PlanStreamer). Off by default: without a consumer draining
	// TakePlanDiffs the pending list would grow without bound.
	StreamPlans bool
}

// DefaultConfig returns the paper's settings: 60s slack, bounded rounds,
// 120-slot lookahead.
func DefaultConfig() Config {
	return Config{Slack: 60 * time.Second, MaxLexRounds: 4, PlanSlots: 120}
}

// FlowTime is the paper's scheduler. Create with New; it implements
// sched.Scheduler. Assign must be called once per slot (the plan cursor
// advances with ctx.Now relative to the slot the plan was built at).
type FlowTime struct {
	cfg Config

	plan     map[string][]resource.Vector
	planFrom int64
	load     []resource.Vector // planned deadline load per slot (diagnostics)
	// planRemaining tracks, per job, how much planned allocation lies at or
	// after the current slot; it is the staleness detector.
	planRemaining map[string]resource.Vector
	// deferred records demand the last replan could not fit within its
	// window (genuine shortfall); it does not count as staleness until
	// deferredRetry, bounding the replan rate under overload.
	deferred      map[string]resource.Vector
	deferredRetry int64
	// planCap records the capacity the plan assumed per slot, so live
	// capacity changes (node loss, maintenance dips) invalidate the plan.
	planCap []resource.Vector
	// planWindows are the effective windows the current plan was validated
	// against (diagnostics and tests).
	planWindows map[string]sched.PlanWindow

	// adhocReserved[i] is the capacity the ad-hoc admission gate has
	// already promised to admitted ad-hoc work at absolute slot
	// adhocFrom+i (sched.AdHocFolder). Replans plan deadline work against
	// cluster capacity minus these reservations; planCap keeps the raw
	// capacity so a fold never looks like a cluster capacity change.
	adhocFrom     int64
	adhocReserved []resource.Vector
	// adhocStale marks undrained gate admissions since the last replan;
	// it is a quality (batched) staleness signal, never an urgent one.
	adhocStale bool

	// live is the versioned published plan (StreamPlans only); pending
	// holds the diffs emitted since the last TakePlanDiffs drain.
	live    *plan.Plan
	pending []*plan.Diff

	stats   Stats
	degrade sched.DegradationStatus
}

// deferredRetryInterval is how many slots to wait before re-attempting to
// place deferred (shortfall) demand.
const deferredRetryInterval = 10

// Stats reports scheduler telemetry.
type Stats struct {
	// Replans is the number of plan rebuilds.
	Replans int
	// LPRounds is the total number of min-θ LPs solved.
	LPRounds int
	// StageASkipped counts replan-kind passes where the greedy water-fill
	// proved feasibility and the shortfall LP was skipped.
	StageASkipped int
	// ShortfallEvents counts replans where some demand could not fit
	// within its deadline window.
	ShortfallEvents int
	// SlackDropped counts replans where the deadline slack made the
	// instance jointly infeasible and was dropped for that plan (the
	// paper's slack is a preference, not a cause for deadline misses).
	SlackDropped int
	// AdHocFolds counts FoldAdHocDrain calls that carried non-zero
	// admitted volume (sched.AdHocFolder).
	AdHocFolds int
	// LP aggregates solver work across all LexMinMax attempts: pivot
	// counts, warm/cold starts, and wall time spent inside the solver.
	LP lp.SolveStats
}

var _ sched.Scheduler = (*FlowTime)(nil)

// New returns a FlowTime scheduler.
func New(cfg Config) *FlowTime {
	return &FlowTime{cfg: cfg}
}

// Name implements sched.Scheduler.
func (*FlowTime) Name() string { return "FlowTime" }

// Stats returns accumulated telemetry.
func (f *FlowTime) Stats() Stats { return f.stats }

// Degradation implements sched.DegradationReporter: the ladder level the
// current plan was built at, the last trip reason, and fallback counters.
func (f *FlowTime) Degradation() sched.DegradationStatus { return f.degrade }

var _ sched.DegradationReporter = (*FlowTime)(nil)

// PlannedLoad returns the planned deadline-work load for the slot offsets
// of the current plan (diagnostics and tests).
func (f *FlowTime) PlannedLoad() []resource.Vector {
	return append([]resource.Vector(nil), f.load...)
}

var _ sched.PlanStreamer = (*FlowTime)(nil)

// LivePlan implements sched.PlanStreamer: a snapshot of the current
// published plan. Before the first replan — and always when StreamPlans
// is off — it is the empty revision-0 plan.
func (f *FlowTime) LivePlan() *plan.Plan {
	if f.live == nil {
		return plan.Empty()
	}
	return f.live.Clone()
}

// TakePlanDiffs implements sched.PlanStreamer: the diffs emitted since
// the last drain, oldest first.
func (f *FlowTime) TakePlanDiffs() []*plan.Diff {
	out := f.pending
	f.pending = nil
	return out
}

var _ sched.AdHocFolder = (*FlowTime)(nil)

// FoldAdHocDrain implements sched.AdHocFolder: the admission gate retired
// a leftover epoch and reports the volume it admitted per slot. The
// volumes accumulate as per-slot capacity reservations that every later
// replan subtracts from the cluster capacity it plans against, so the
// admitted ad-hoc work reaches the LP as shaved load-row capacities (RHS
// deltas on the θ-model's rows) at the next batched quality replan — the
// gate never forces an urgent full rebuild, and the plan stops
// double-booking capacity the gate already promised away.
func (f *FlowTime) FoldAdHocDrain(from int64, consumed []resource.Vector) {
	lo, hi := 0, len(consumed)
	for lo < hi && consumed[lo].IsZero() {
		lo++
	}
	for hi > lo && consumed[hi-1].IsZero() {
		hi--
	}
	if lo == hi {
		return
	}
	from, consumed = from+int64(lo), consumed[lo:hi]
	if len(f.adhocReserved) == 0 {
		f.adhocFrom = from
		f.adhocReserved = append([]resource.Vector(nil), consumed...)
	} else {
		// Drains are cumulative (each reports one epoch's admissions):
		// overlapping slots add.
		start, end := f.adhocFrom, f.adhocFrom+int64(len(f.adhocReserved))
		if from < start {
			start = from
		}
		if e := from + int64(len(consumed)); e > end {
			end = e
		}
		merged := make([]resource.Vector, end-start)
		copy(merged[f.adhocFrom-start:], f.adhocReserved)
		for i, v := range consumed {
			j := from + int64(i) - start
			merged[j] = merged[j].Add(v)
		}
		f.adhocFrom, f.adhocReserved = start, merged
	}
	f.adhocStale = true
	f.stats.AdHocFolds++
}

// adhocReservedAt returns the capacity reserved for gate-admitted ad-hoc
// work at absolute slot abs (zero outside the reserved range).
func (f *FlowTime) adhocReservedAt(abs int64) resource.Vector {
	if i := abs - f.adhocFrom; i >= 0 && i < int64(len(f.adhocReserved)) {
		return f.adhocReserved[i]
	}
	return resource.Vector{}
}

// trimAdHocReserved ages out reservations for slots that have passed —
// the admitted volume they covered has been delivered (or lapsed) and
// must not constrain future plans.
func (f *FlowTime) trimAdHocReserved(now int64) {
	cut := now - f.adhocFrom
	if cut <= 0 || len(f.adhocReserved) == 0 {
		return
	}
	if cut >= int64(len(f.adhocReserved)) {
		f.adhocFrom, f.adhocReserved = 0, nil
		return
	}
	f.adhocReserved = append(f.adhocReserved[:0:0], f.adhocReserved[cut:]...)
	f.adhocFrom = now
}

// kindCapAt builds the planning capacity closure for one kind: cluster
// capacity at plan offset t minus the gate's ad-hoc reservations. planCap
// and planNeeds keep comparing raw cluster capacity, so folding a drain
// shaves what the LP may allocate without ever looking like a cluster
// capacity change (which would trip an urgent replan every slot).
func (f *FlowTime) kindCapAt(ctx sched.AssignContext, kind resource.Kind) func(int64) int64 {
	return func(t int64) int64 {
		abs := ctx.Now + t
		c := ctx.Cluster.CapAt(abs).Get(kind) - f.adhocReservedAt(abs).Get(kind)
		if c < 0 {
			c = 0
		}
		return c
	}
}

// publishPlan versions the replan's final output as the next live plan
// revision and, when streaming, emits the diff against the previous one.
// alloc slices are shared with the internal plan: they are immutable
// after the replan that built them.
func (f *FlowTime) publishPlan(from, nSlots int64, alloc map[string][]resource.Vector, windows map[string]sched.PlanWindow, theta map[string][]float64) {
	if !f.cfg.StreamPlans {
		return
	}
	if f.live == nil {
		f.live = plan.Empty()
	}
	next := &plan.Plan{
		Rev:    f.live.Rev + 1,
		From:   from,
		NSlots: nSlots,
		Theta:  theta,
	}
	if len(alloc) > 0 {
		next.Jobs = make(map[string]plan.Job, len(alloc))
		for id, slots := range alloc {
			w := windows[id]
			next.Jobs[id] = plan.Job{
				Window: plan.Window{Rel: w.RelSlot, Dl: w.DlSlot},
				Alloc:  slots,
			}
		}
	}
	f.pending = append(f.pending, plan.Compute(f.live, next))
	f.live = next
}

// qualityReplanInterval rate-limits replans whose only purpose is to
// reflow freed capacity (early completions): correctness never depends on
// them, so they are batched to at most one per interval.
const qualityReplanInterval = 5

// Assign implements sched.Scheduler.
func (f *FlowTime) Assign(ctx sched.AssignContext) (map[string]resource.Vector, error) {
	urgent, quality := f.planNeeds(ctx)
	if urgent || (quality && ctx.Now >= f.planFrom+qualityReplanInterval) {
		f.replan(ctx)
	}
	offset := ctx.Now - f.planFrom
	avail := ctx.Cluster.CapAt(ctx.Now)
	grants := make(map[string]resource.Vector, len(ctx.Jobs))

	// Serve the plan. The planned slice is consumed from planRemaining
	// whether or not the job could take it — a blocked job makes the plan
	// stale, which triggers a replan on the next slot.
	for _, j := range ctx.Jobs {
		if j.Kind != sched.DeadlineJob {
			continue
		}
		slots, ok := f.plan[j.ID]
		if !ok || offset < 0 || offset >= int64(len(slots)) {
			continue
		}
		slice := slots[offset]
		if slice.IsZero() {
			continue
		}
		f.planRemaining[j.ID] = f.planRemaining[j.ID].SubClamped(slice)
		if !j.Ready || j.Request.IsZero() {
			continue
		}
		want := slice.Min(j.Request)
		if g := grantIn(want, &avail); !g.IsZero() {
			grants[j.ID] = g
		}
	}

	// Overdue deadline jobs (deadline passed or demand deferred by the
	// shortfall stage) run best-effort ahead of ad-hoc jobs, earliest
	// deadline first.
	overdue := make([]sched.JobState, 0, 4)
	for _, j := range ctx.Jobs {
		if j.Kind != sched.DeadlineJob || !j.Ready || j.Request.IsZero() {
			continue
		}
		if int64(j.Deadline/ctx.Cluster.SlotDur) <= ctx.Now {
			overdue = append(overdue, j)
		}
	}
	sort.SliceStable(overdue, func(a, b int) bool {
		if overdue[a].Deadline != overdue[b].Deadline {
			return overdue[a].Deadline < overdue[b].Deadline
		}
		return overdue[a].ID < overdue[b].ID
	})
	for _, j := range overdue {
		got := grants[j.ID]
		want := j.Request.SubClamped(got)
		if g := grantIn(want, &avail); !g.IsZero() {
			grants[j.ID] = got.Add(g)
		}
	}

	// Revision backlog: demand discovered beyond the plan (upward estimate
	// revisions when a job outlives its estimate) runs from leftover
	// capacity ahead of ad-hoc work, earliest deadline first, until the
	// next quality replan folds it into the skyline.
	backlog := make([]sched.JobState, 0, 4)
	for _, j := range ctx.Jobs {
		if j.Kind != sched.DeadlineJob || !j.Ready || j.Request.IsZero() {
			continue
		}
		covered := f.planRemaining[j.ID].Add(f.deferred[j.ID])
		if !j.EstRemaining.FitsIn(covered) {
			backlog = append(backlog, j)
		}
	}
	sort.SliceStable(backlog, func(a, b int) bool {
		if backlog[a].Deadline != backlog[b].Deadline {
			return backlog[a].Deadline < backlog[b].Deadline
		}
		return backlog[a].ID < backlog[b].ID
	})
	for _, j := range backlog {
		got := grants[j.ID]
		unplanned := j.EstRemaining.SubClamped(f.planRemaining[j.ID]).SubClamped(f.deferred[j.ID])
		want := unplanned.Min(j.Request.SubClamped(got))
		if g := grantIn(want, &avail); !g.IsZero() {
			grants[j.ID] = got.Add(g)
		}
	}

	// Ad-hoc jobs take all remaining capacity in arrival order (paper
	// §II-B: "the remaining resources can be used by the ad-hoc jobs").
	adhoc := make([]sched.JobState, 0, len(ctx.Jobs))
	for _, j := range ctx.Jobs {
		if j.Kind == sched.AdHocJob && j.Ready && !j.Request.IsZero() {
			adhoc = append(adhoc, j)
		}
	}
	sort.SliceStable(adhoc, func(a, b int) bool {
		if adhoc[a].Arrived != adhoc[b].Arrived {
			return adhoc[a].Arrived < adhoc[b].Arrived
		}
		return adhoc[a].ID < adhoc[b].ID
	})
	for _, j := range adhoc {
		if g := grantIn(j.Request, &avail); !g.IsZero() {
			grants[j.ID] = g
		}
	}
	return grants, nil
}

// planNeeds classifies why the current plan no longer matches reality.
// urgent: a live deadline job needs more than the plan still holds for it
// (new arrival, underestimate, blocked grants), the capacity profile
// changed, or deferred demand is due for a retry — replanning affects
// correctness. quality: planned work refers to a job that is gone or
// finished early — capacity is worth reflowing, but the plan stays valid.
func (f *FlowTime) planNeeds(ctx sched.AssignContext) (urgent, quality bool) {
	if f.plan == nil {
		return true, false
	}
	if f.deferredRetry > 0 && ctx.Now >= f.deferredRetry {
		// Time to retry placing demand the last plan could not fit.
		return true, false
	}
	if off := ctx.Now - f.planFrom; off >= 0 && off < int64(len(f.planCap)) {
		if ctx.Cluster.CapAt(ctx.Now) != f.planCap[off] {
			// The capacity profile changed under the plan (node loss or
			// recovery); the skyline must be re-flattened.
			return true, false
		}
	}
	live := make(map[string]bool, len(ctx.Jobs))
	for _, j := range ctx.Jobs {
		if j.Kind != sched.DeadlineJob || j.BestEffort {
			continue
		}
		if j.EstRemaining.IsZero() {
			continue
		}
		live[j.ID] = true
		rem := f.planRemaining[j.ID].Add(f.deferred[j.ID])
		if !j.EstRemaining.FitsIn(rem) {
			if !f.planKnown(j.ID) {
				if int64(j.Release/ctx.Cluster.SlotDur) > ctx.Now {
					// Beyond the planning lookahead: picked up by the
					// replan that fires when its release arrives.
					continue
				}
				// A new arrival with an open window needs a plan now.
				return true, quality
			}
			// A planned job revised its estimate upward (or a blocked slot
			// wasted its slice): the backlog stage in Assign feeds it from
			// leftover capacity immediately; folding it into the plan is a
			// quality matter.
			quality = true
		}
	}
	for id, rem := range f.planRemaining {
		if !rem.IsZero() && !live[id] {
			quality = true
		}
	}
	if f.adhocStale {
		// Undrained gate admissions: correctness is unaffected (the gate
		// already holds that capacity), so fold them at the next batched
		// quality replan instead of forcing one now.
		quality = true
	}
	return false, quality
}

func (f *FlowTime) planKnown(id string) bool {
	_, ok := f.plan[id]
	return ok
}

func grantIn(request resource.Vector, avail *resource.Vector) resource.Vector {
	g := request.Min(*avail)
	*avail = avail.Sub(g)
	return g
}

// planJob is the per-job working state during a replan.
type planJob struct {
	state   sched.JobState
	relSlot int64 // inclusive, absolute
	dlSlot  int64 // exclusive, absolute
}

// replan rebuilds the multi-slot plan with the per-kind LP pipeline under
// the degradation ladder. It cannot fail: any solver trouble steps the
// ladder down toward the LP-free greedy rung, and the resulting plan is
// validated before it is served.
func (f *FlowTime) replan(ctx sched.AssignContext) {
	f.stats.Replans++
	f.planFrom = ctx.Now
	f.trimAdHocReserved(ctx.Now)
	f.adhocStale = false
	f.plan = make(map[string][]resource.Vector)
	f.planRemaining = make(map[string]resource.Vector)
	f.deferred = make(map[string]resource.Vector)
	f.deferredRetry = 0
	f.load = nil
	f.planCap = nil
	f.planWindows = nil

	slackSlots := int64(0)
	if f.cfg.Slack > 0 {
		slackSlots = int64(f.cfg.Slack / ctx.Cluster.SlotDur)
	}

	jobs, order, nSlots := f.computeWindows(ctx, slackSlots)
	if len(jobs) == 0 {
		f.degrade.Level, f.degrade.Reason = sched.DegradeNone, ""
		// An empty plan is still a revision: the consumer must learn that
		// every previously planned job is gone.
		f.publishPlan(ctx.Now, 0, nil, nil, nil)
		return
	}

	// Deadline slack is a preference, not a feasibility constraint: if the
	// slack-tightened windows cannot jointly host the demand, plan against
	// the true windows instead (paper §VII-B.2 introduces slack to absorb
	// estimation error, not to manufacture misses).
	if slackSlots > 0 && !f.feasibleUnderWindows(ctx, jobs, order, nSlots) {
		f.stats.SlackDropped++
		jobs, order, nSlots = f.computeWindows(ctx, 0)
	}

	f.load = make([]resource.Vector, nSlots)
	f.planCap = make([]resource.Vector, nSlots)
	for t := int64(0); t < nSlots; t++ {
		f.planCap[t] = ctx.Cluster.CapAt(ctx.Now + t)
	}
	alloc := make(map[string][]resource.Vector, len(jobs))
	for _, pj := range jobs {
		alloc[pj.state.ID] = make([]resource.Vector, nSlots)
	}

	level, reason := sched.DegradeNone, ""
	theta := make(map[string][]float64, resource.NumKinds)
	for _, kind := range resource.Kinds() {
		lvl, why := f.replanKind(ctx, kind, jobs, order, alloc, nSlots, theta)
		if lvl > level {
			level = lvl
		}
		if why != "" {
			reason = why
		}
	}
	if len(theta) == 0 {
		theta = nil
	}

	// Post-validate before the plan is served. An invalid plan — which the
	// pipeline should never produce, but numerics are numerics — is
	// rebuilt at the greedy rung, which is valid by construction.
	windows := make(map[string]sched.PlanWindow, len(jobs))
	for _, pj := range jobs {
		windows[pj.state.ID] = sched.PlanWindow{
			RelSlot:     pj.relSlot,
			DlSlot:      pj.dlSlot,
			ParallelCap: pj.state.ParallelCap,
			Demand:      pj.state.EstRemaining,
		}
	}
	capAt := func(abs int64) resource.Vector { return f.planCap[abs-ctx.Now] }
	if err := sched.ValidatePlan(alloc, ctx.Now, windows, capAt); err != nil {
		f.degrade.InvalidPlans++
		level, reason = sched.DegradeGreedy, "plan validation: "+err.Error()
		theta = nil // the LP skyline was discarded with the invalid plan
		alloc = f.rebuildGreedy(ctx, jobs, order, nSlots)
		if err := sched.ValidatePlan(alloc, ctx.Now, windows, capAt); err != nil {
			// Unreachable by construction; planning nothing is still safe —
			// every job is then served by the overdue/backlog stages.
			alloc = make(map[string][]resource.Vector)
			reason = "greedy plan validation: " + err.Error()
		}
	}

	f.degrade.Level, f.degrade.Reason = level, reason
	switch level {
	case sched.DegradeMinMax:
		f.degrade.MinMaxFallbacks++
	case sched.DegradeGreedy:
		f.degrade.GreedyFallbacks++
	}

	f.planWindows = windows
	f.plan = alloc
	anyDeferred := false
	for id, slots := range alloc {
		var total resource.Vector
		for _, g := range slots {
			total = total.Add(g)
		}
		f.planRemaining[id] = total
	}
	for _, pj := range jobs {
		if d := pj.state.EstRemaining.SubClamped(f.planRemaining[pj.state.ID]); !d.IsZero() {
			f.deferred[pj.state.ID] = d
			anyDeferred = true
		}
	}
	if anyDeferred {
		f.deferredRetry = ctx.Now + deferredRetryInterval
	}
	f.publishPlan(ctx.Now, nSlots, alloc, windows, theta)
}

// computeWindows collects live deadline jobs with their effective windows
// under the given slack, plus the shared EDF processing order and the plan
// length in slots.
func (f *FlowTime) computeWindows(ctx sched.AssignContext, slackSlots int64) ([]*planJob, []*planJob, int64) {
	jobs := make([]*planJob, 0, len(ctx.Jobs))
	maxDl := ctx.Now + 1
	for _, j := range ctx.Jobs {
		if j.Kind != sched.DeadlineJob || j.EstRemaining.IsZero() || j.BestEffort {
			// Best-effort jobs (infeasible decompositions) are excluded from
			// the joint LP; the backlog stage in Assign serves them from
			// leftover capacity ahead of ad-hoc work.
			continue
		}
		pj := &planJob{state: j}
		pj.relSlot = int64(j.Release / ctx.Cluster.SlotDur)
		if pj.relSlot < ctx.Now {
			pj.relSlot = ctx.Now
		}
		pj.dlSlot = int64(j.Deadline/ctx.Cluster.SlotDur) - slackSlots
		if pj.dlSlot <= pj.relSlot {
			pj.dlSlot = pj.relSlot + 1
		}
		if pj.dlSlot <= ctx.Now {
			// Overdue: finish as soon as possible.
			minS := j.MinSlots
			if minS < 1 {
				minS = 1
			}
			pj.relSlot, pj.dlSlot = ctx.Now, ctx.Now+minS
		}
		if f.cfg.PlanSlots > 0 && pj.relSlot >= ctx.Now+f.cfg.PlanSlots {
			// Beyond the lookahead: planStale fires a replan when the
			// job's release arrives.
			continue
		}
		if pj.dlSlot > maxDl {
			maxDl = pj.dlSlot
		}
		jobs = append(jobs, pj)
	}
	if len(jobs) == 0 {
		return nil, nil, 0
	}

	horizon := maxDl
	if horizon > ctx.Cluster.Horizon {
		horizon = ctx.Cluster.Horizon
	}
	if horizon <= ctx.Now {
		horizon = ctx.Now + 1
	}
	for _, pj := range jobs {
		if pj.dlSlot > horizon {
			pj.dlSlot = horizon
		}
		if pj.relSlot >= pj.dlSlot {
			pj.relSlot = pj.dlSlot - 1
		}
	}

	order := make([]*planJob, len(jobs))
	copy(order, jobs)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].dlSlot != order[b].dlSlot {
			return order[a].dlSlot < order[b].dlSlot
		}
		return order[a].state.ID < order[b].state.ID
	})
	return jobs, order, horizon - ctx.Now
}

// feasibleUnderWindows reports whether every kind's demand fits within the
// jobs' current windows (greedy check; false negatives only make the plan
// fall back to true windows, which is safe).
func (f *FlowTime) feasibleUnderWindows(ctx sched.AssignContext, jobs, order []*planJob, nSlots int64) bool {
	for _, kind := range resource.Kinds() {
		demand := make(map[*planJob]int64, len(jobs))
		for _, pj := range jobs {
			if d := pj.state.EstRemaining.Get(kind); d > 0 {
				demand[pj] = d
			}
		}
		if len(demand) == 0 {
			continue
		}
		if !greedyFeasible(order, demand, f.kindCapAt(ctx, kind), kind, ctx.Now, nSlots) {
			return false
		}
	}
	return true
}

// replanKind runs the feasibility + lexmin + repair pipeline for one
// resource kind and writes integral grants into alloc. Solver failures
// never propagate: the ladder steps down — full lexicographic → single
// min-θ round → LP-free greedy water-fill — and the rung used plus the
// trip reason (if any) are returned. When an LP rung succeeds, the
// lexicographic θ levels it reached are recorded under the kind's name
// in theta (the greedy rung has no θ and records nothing).
func (f *FlowTime) replanKind(ctx sched.AssignContext, kind resource.Kind, jobs, order []*planJob, alloc map[string][]resource.Vector, nSlots int64, theta map[string][]float64) (sched.DegradeLevel, string) {
	// Demands and caps for this kind.
	demand := make(map[*planJob]int64, len(jobs))
	for _, pj := range jobs {
		if d := pj.state.EstRemaining.Get(kind); d > 0 {
			demand[pj] = d
		}
	}
	if len(demand) == 0 {
		return sched.DegradeNone, ""
	}
	capAt := f.kindCapAt(ctx, kind)

	level, reason := sched.DegradeNone, ""
	trip := func(to sched.DegradeLevel, stage string, err error) {
		level = to
		reason = fmt.Sprintf("%v %s: %s", kind, stage, tripCause(err))
	}

	// Feasibility precheck: greedy EDF water-fill under hard caps. If all
	// demand places, the instance is feasible and the shortfall LP is
	// unnecessary. A shortfall-LP failure skips straight to the greedy
	// rung: without a trustworthy shortfall split, any stage-B plan would
	// be built on infeasible demand.
	shortfall := make(map[*planJob]int64)
	if !greedyFeasible(order, demand, capAt, kind, ctx.Now, nSlots) {
		short, err := f.shortfallLP(ctx, kind, jobs, demand, capAt, nSlots)
		if err != nil {
			trip(sched.DegradeGreedy, "shortfall LP", err)
		} else {
			shortfall = short
			if len(shortfall) > 0 {
				f.stats.ShortfallEvents++
			}
		}
	} else {
		f.stats.StageASkipped++
	}

	// Stage B: lexicographic min-max LP over the feasible demand. The
	// model is built once; only the LexMinMax attempt is retried with
	// fewer rounds as the ladder steps down.
	var (
		model     *lp.Model
		groups    []lp.LoadGroup
		groupSlot []int64
	)
	if level < sched.DegradeGreedy {
		var err error
		model, groups, groupSlot, err = f.buildStageB(ctx, kind, jobs, demand, shortfall, capAt, nSlots)
		if err != nil {
			trip(sched.DegradeGreedy, "stage B model", err)
		}
	}
	// One workspace for the whole ladder: when an attempt trips the budget
	// and the ladder retries with fewer rounds, the retry warm-starts from
	// the θ-model and basis the failed attempt built instead of paying a
	// second cold start on the same instance.
	lexWS := &lp.LexWorkspace{}
	for level < sched.DegradeGreedy {
		rounds := f.cfg.MaxLexRounds
		if level == sched.DegradeMinMax {
			// One min-θ round: optimal peak level, no deeper flattening.
			rounds = 1
		}
		res, err := f.lexAttempt(model, groups, rounds, lexWS)
		if err != nil {
			trip(level+1, "stage B", err)
			continue
		}
		f.stats.LPRounds += res.Rounds
		f.stats.LP.Add(res.Stats)
		f.degrade.LPWarmStarts += int64(res.Stats.WarmStarts)
		f.degrade.LPColdStarts += int64(res.Stats.ColdStarts)
		if theta != nil {
			levels := make([]float64, len(res.Levels))
			for i, l := range res.Levels {
				if l > 0 { // clamp numeric noise; θ is a normalized load
					levels[i] = l
				}
			}
			theta[kind.String()] = levels
		}

		// Integral repair: budgets by cumulative rounding of the LP skyline,
		// EDF water-fill within budgets, then a hard-cap sweep.
		lpLoad := make([]float64, nSlots)
		for gi, g := range groups {
			load := 0.0
			for _, tm := range g.Terms {
				load += tm.Coef * res.Solution.Value(tm.Var)
			}
			lpLoad[groupSlot[gi]] = load
		}
		remaining := make(map[*planJob]int64, len(jobs))
		for pj, d := range demand {
			if left := d - shortfall[pj]; left > 0 {
				remaining[pj] = left
			}
		}
		cum := 0.0
		budgetUsed := int64(0)
		for t := int64(0); t < nSlots; t++ {
			cum += lpLoad[t]
			budget := int64(cum+0.5) - budgetUsed
			if c := capAt(t); budget > c {
				budget = c
			}
			budgetUsed += f.fillSlot(order, remaining, alloc, kind, t, ctx.Now, budget)
		}
		for t := int64(0); t < nSlots; t++ {
			f.fillSlot(order, remaining, alloc, kind, t, ctx.Now, capAt(t)-f.load[t].Get(kind))
		}
		// Any demand still left could not fit in windows at all; it is
		// served by the overdue path at run time.
		return level, reason
	}

	// Bottom rung: deterministic EDF water-fill under hard caps. No LP, no
	// failure mode; whatever cannot fit in-window is deferred and served
	// by the overdue path, exactly like a shortfall.
	f.greedyPlanKind(ctx, kind, order, demand, alloc, nSlots)
	return sched.DegradeGreedy, reason
}

// lexAttempt runs one LexMinMax under the configured solve budget,
// converting panics into errors so a solver bug degrades the plan instead
// of killing the scheduling slot.
func (f *FlowTime) lexAttempt(model *lp.Model, groups []lp.LoadGroup, rounds int, lw *lp.LexWorkspace) (res *lp.MinMaxResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("core: lexminmax panic: %v", r)
		}
	}()
	return lp.LexMinMaxWithOptions(model, groups, lp.MinMaxOptions{MaxRounds: rounds, Solve: f.cfg.Solve, Workspace: lw})
}

// tripCause compresses a solver error into a short ladder-trip label.
func tripCause(err error) string {
	switch {
	case errors.Is(err, lp.ErrIterationLimit):
		return "iteration budget exceeded"
	case errors.Is(err, lp.ErrTimeLimit):
		return "time budget exceeded"
	case errors.Is(err, lp.ErrNumerical):
		return "numerical instability"
	case errors.Is(err, lp.ErrInfeasible):
		return "infeasible"
	case errors.Is(err, lp.ErrUnbounded):
		return "unbounded"
	default:
		return err.Error()
	}
}

// buildStageB constructs the stage-B model for one kind: per-(job, slot)
// allocation variables bounded by the parallelism cap, exact-demand rows,
// and one load group per slot with positive capacity.
func (f *FlowTime) buildStageB(ctx sched.AssignContext, kind resource.Kind, jobs []*planJob, demand, shortfall map[*planJob]int64, capAt func(int64) int64, nSlots int64) (*lp.Model, []lp.LoadGroup, []int64, error) {
	model := lp.NewModel()
	vars := make(map[*planJob][]lp.Var, len(jobs))
	for _, pj := range jobs {
		d := demand[pj] - shortfall[pj]
		if d <= 0 {
			continue
		}
		n := pj.dlSlot - pj.relSlot
		vs := make([]lp.Var, n)
		terms := make([]lp.Term, 0, n)
		hi := float64(pj.state.ParallelCap.Get(kind))
		for s := int64(0); s < n; s++ {
			v, err := model.NewVar("", 0, hi)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("core: replan: %w", err)
			}
			vs[s] = v
			terms = append(terms, lp.Term{Var: v, Coef: 1})
		}
		vars[pj] = vs
		if err := model.AddConstraint(terms, lp.EQ, float64(d)); err != nil {
			return nil, nil, nil, fmt.Errorf("core: replan: %w", err)
		}
	}

	// Walk jobs in their deterministic slice order, not the vars map:
	// term order decides the simplex's summation order, and the plan
	// stream's equivalence oracle holds two instances to bitwise-equal θ.
	slotTerms := make([][]lp.Term, nSlots)
	for _, pj := range jobs {
		vs, ok := vars[pj]
		if !ok {
			continue
		}
		for s, v := range vs {
			t := pj.relSlot - ctx.Now + int64(s)
			slotTerms[t] = append(slotTerms[t], lp.Term{Var: v, Coef: 1})
		}
	}
	var groups []lp.LoadGroup
	groupSlot := make([]int64, 0, nSlots)
	for t := int64(0); t < nSlots; t++ {
		if len(slotTerms[t]) == 0 {
			continue
		}
		c := capAt(t)
		if c <= 0 {
			if err := model.AddConstraint(slotTerms[t], lp.LE, 0); err != nil {
				return nil, nil, nil, fmt.Errorf("core: replan: %w", err)
			}
			continue
		}
		groups = append(groups, lp.LoadGroup{Terms: slotTerms[t], Cap: float64(c)})
		groupSlot = append(groupSlot, t)
	}
	return model, groups, groupSlot, nil
}

// greedyPlanKind is the ladder's bottom rung for one kind: EDF water-fill
// of the full demand under hard caps, honoring load already placed.
func (f *FlowTime) greedyPlanKind(ctx sched.AssignContext, kind resource.Kind, order []*planJob, demand map[*planJob]int64, alloc map[string][]resource.Vector, nSlots int64) {
	remaining := make(map[*planJob]int64, len(demand))
	for pj, d := range demand {
		remaining[pj] = d
	}
	capAt := f.kindCapAt(ctx, kind)
	for t := int64(0); t < nSlots; t++ {
		f.fillSlot(order, remaining, alloc, kind, t, ctx.Now, capAt(t)-f.load[t].Get(kind))
	}
}

// rebuildGreedy discards all placed allocation and rebuilds the whole
// plan at the greedy rung (used when post-validation rejects a plan).
func (f *FlowTime) rebuildGreedy(ctx sched.AssignContext, jobs, order []*planJob, nSlots int64) map[string][]resource.Vector {
	f.load = make([]resource.Vector, nSlots)
	alloc := make(map[string][]resource.Vector, len(jobs))
	for _, pj := range jobs {
		alloc[pj.state.ID] = make([]resource.Vector, nSlots)
	}
	for _, kind := range resource.Kinds() {
		demand := make(map[*planJob]int64, len(jobs))
		for _, pj := range jobs {
			if d := pj.state.EstRemaining.Get(kind); d > 0 {
				demand[pj] = d
			}
		}
		if len(demand) == 0 {
			continue
		}
		f.greedyPlanKind(ctx, kind, order, demand, alloc, nSlots)
	}
	return alloc
}

// greedyFeasible reports whether the EDF water-fill can place every unit
// of demand within its window under hard caps. A true result proves
// feasibility; a false result is decided properly by the shortfall LP.
func greedyFeasible(order []*planJob, demand map[*planJob]int64, capAt func(int64) int64, kind resource.Kind, now, nSlots int64) bool {
	remaining := make(map[*planJob]int64, len(demand))
	total := int64(0)
	for pj, d := range demand {
		remaining[pj] = d
		total += d
	}
	for t := int64(0); t < nSlots && total > 0; t++ {
		budget := capAt(t)
		if budget <= 0 {
			continue
		}
		abs := now + t
		for _, pj := range order {
			rem := remaining[pj]
			if rem <= 0 || abs < pj.relSlot || abs >= pj.dlSlot {
				continue
			}
			g := pj.state.ParallelCap.Get(kind)
			if g > rem {
				g = rem
			}
			if g > budget {
				g = budget
			}
			if g <= 0 {
				continue
			}
			remaining[pj] = rem - g
			total -= g
			budget -= g
			if budget == 0 {
				break
			}
		}
	}
	return total == 0
}

// shortfallLP solves the stage-A feasibility LP for one kind: minimize
// total shortfall subject to windows, rate caps and hard capacity.
// Returns the integral shortfall per job.
func (f *FlowTime) shortfallLP(ctx sched.AssignContext, kind resource.Kind, jobs []*planJob, demand map[*planJob]int64, capAt func(int64) int64, nSlots int64) (map[*planJob]int64, error) {
	model := lp.NewModel()
	shortVars := make(map[*planJob]lp.Var, len(jobs))
	slotTerms := make([][]lp.Term, nSlots)
	var obj []lp.Term
	for _, pj := range jobs {
		d := demand[pj]
		if d <= 0 {
			continue
		}
		n := pj.dlSlot - pj.relSlot
		terms := make([]lp.Term, 0, n+1)
		hi := float64(pj.state.ParallelCap.Get(kind))
		for s := int64(0); s < n; s++ {
			v, err := model.NewVar("", 0, hi)
			if err != nil {
				return nil, fmt.Errorf("core: shortfall: %w", err)
			}
			terms = append(terms, lp.Term{Var: v, Coef: 1})
			t := pj.relSlot - ctx.Now + int64(s)
			slotTerms[t] = append(slotTerms[t], lp.Term{Var: v, Coef: 1})
		}
		sv, err := model.NewVar("", 0, float64(d))
		if err != nil {
			return nil, fmt.Errorf("core: shortfall: %w", err)
		}
		shortVars[pj] = sv
		terms = append(terms, lp.Term{Var: sv, Coef: 1})
		if err := model.AddConstraint(terms, lp.EQ, float64(d)); err != nil {
			return nil, fmt.Errorf("core: shortfall: %w", err)
		}
		obj = append(obj, lp.Term{Var: sv, Coef: 1})
	}
	for t := int64(0); t < nSlots; t++ {
		if len(slotTerms[t]) == 0 {
			continue
		}
		c := capAt(t)
		if c < 0 {
			c = 0
		}
		if err := model.AddConstraint(slotTerms[t], lp.LE, float64(c)); err != nil {
			return nil, fmt.Errorf("core: shortfall: %w", err)
		}
	}
	if err := model.SetObjective(obj); err != nil {
		return nil, fmt.Errorf("core: shortfall: %w", err)
	}
	sol, _, err := model.SolveWithOptions(f.cfg.Solve)
	if err != nil {
		return nil, fmt.Errorf("core: shortfall (%v): %w", kind, err)
	}
	out := make(map[*planJob]int64)
	for pj, sv := range shortVars {
		// Round up so the remaining demand is certainly feasible.
		if s := int64(sol.Value(sv) + 0.999999); s > 0 {
			if s > demand[pj] {
				s = demand[pj]
			}
			out[pj] = s
		}
	}
	return out, nil
}

// fillSlot grants up to budget units of kind at slot offset t (absolute
// slot now+t) to jobs in EDF order whose windows cover the slot, updating
// remaining, alloc and the load skyline. Returns units granted.
func (f *FlowTime) fillSlot(order []*planJob, remaining map[*planJob]int64, alloc map[string][]resource.Vector, kind resource.Kind, t, now, budget int64) int64 {
	if budget <= 0 {
		return 0
	}
	granted := int64(0)
	abs := now + t
	for _, pj := range order {
		rem := remaining[pj]
		if rem <= 0 || abs < pj.relSlot || abs >= pj.dlSlot {
			continue
		}
		slots := alloc[pj.state.ID]
		have := slots[t].Get(kind)
		g := pj.state.ParallelCap.Get(kind) - have
		if g > rem {
			g = rem
		}
		if g > budget-granted {
			g = budget - granted
		}
		if g <= 0 {
			continue
		}
		slots[t] = slots[t].With(kind, have+g)
		remaining[pj] = rem - g
		f.load[t] = f.load[t].With(kind, f.load[t].Get(kind)+g)
		granted += g
		if granted >= budget {
			break
		}
	}
	return granted
}
