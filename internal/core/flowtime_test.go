package core

import (
	"testing"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/sched"
)

const slotDur = 10 * time.Second

func view(capacity resource.Vector, horizon int64) sched.ClusterView {
	return sched.ClusterView{
		SlotDur: slotDur,
		Horizon: horizon,
		CapAt:   func(int64) resource.Vector { return capacity },
	}
}

func dlJob(id string, release, deadlineSlots int64, volume, capV resource.Vector) sched.JobState {
	return sched.JobState{
		ID:           id,
		Kind:         sched.DeadlineJob,
		WorkflowID:   "wf",
		JobName:      id,
		Release:      time.Duration(release) * slotDur,
		Deadline:     time.Duration(deadlineSlots) * slotDur,
		EstRemaining: volume,
		ParallelCap:  capV,
		MinSlots:     1,
		Request:      capV.Min(volume),
		Ready:        true,
	}
}

func adhoc(id string, arrived time.Duration, request resource.Vector) sched.JobState {
	return sched.JobState{
		ID: id, Kind: sched.AdHocJob, Arrived: arrived, Request: request, Ready: true,
	}
}

func TestNameAndConfig(t *testing.T) {
	f := New(DefaultConfig())
	if f.Name() != "FlowTime" {
		t.Errorf("Name = %q", f.Name())
	}
	if DefaultConfig().Slack != 60*time.Second {
		t.Errorf("default slack = %v, want 60s (the paper's setting)", DefaultConfig().Slack)
	}
}

func TestFlattensLooseJobAcrossWindow(t *testing.T) {
	// One job: volume 100 cores over a 100-slot window on a 10-core
	// cluster. The lexmin plan must run it at ~1 core/slot, leaving ~9
	// cores/slot to ad-hoc work — the essence of Fig. 1(b).
	f := New(Config{Slack: 0, MaxLexRounds: 8})
	job := dlJob("j", 0, 100, resource.New(100, 10000), resource.New(10, 1000))
	ctx := sched.AssignContext{
		Now: 0, Changed: true,
		Jobs:    []sched.JobState{job, adhoc("a", 0, resource.New(10, 1000))},
		Cluster: view(resource.New(10, 1000), 200),
	}
	grants, err := f.Assign(ctx)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	jg := grants["j"]
	if jg.Get(resource.VCores) > 2 {
		t.Errorf("deadline job granted %v in slot 0, want ~1 core (flattened)", jg)
	}
	ag := grants["a"]
	if ag.Get(resource.VCores) < 8 {
		t.Errorf("ad-hoc granted %v, want ~9 cores of leftover", ag)
	}
}

func TestPlanMeetsDemandByDeadline(t *testing.T) {
	// Three jobs with staggered windows; summing the plan must cover each
	// job's demand within its window.
	f := New(Config{Slack: 0})
	jobs := []sched.JobState{
		dlJob("a", 0, 10, resource.New(40, 4000), resource.New(8, 800)),
		dlJob("b", 5, 20, resource.New(60, 6000), resource.New(10, 1000)),
		dlJob("c", 10, 30, resource.New(30, 3000), resource.New(5, 500)),
	}
	ctx := sched.AssignContext{
		Now: 0, Changed: true, Jobs: jobs,
		Cluster: view(resource.New(10, 1000), 40),
	}
	if _, err := f.Assign(ctx); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	for _, j := range jobs {
		var got resource.Vector
		plan := f.plan[j.ID]
		rel := int64(j.Release / slotDur)
		dl := int64(j.Deadline / slotDur)
		for t0, g := range plan {
			if g.IsZero() {
				continue
			}
			if int64(t0) < rel || int64(t0) >= dl {
				t.Errorf("job %s allocated %v at slot %d outside window [%d, %d)", j.ID, g, t0, rel, dl)
			}
			if !g.FitsIn(j.ParallelCap) {
				t.Errorf("job %s slot %d grant %v exceeds parallel cap %v", j.ID, t0, g, j.ParallelCap)
			}
			got = got.Add(g)
		}
		if got != j.EstRemaining {
			t.Errorf("job %s planned %v, want exactly %v", j.ID, got, j.EstRemaining)
		}
	}
	// Planned load never exceeds capacity.
	for t0, l := range f.load {
		if !l.FitsIn(resource.New(10, 1000)) {
			t.Errorf("slot %d planned load %v exceeds capacity", t0, l)
		}
	}
}

func TestPlanIsIntegral(t *testing.T) {
	// Lemma 2 (total unimodularity) + integral repair: grants are integers
	// by construction (resource.Vector is integer-typed), and they must
	// conserve demand exactly even when the LP optimum is fractional
	// (demand 7 over 3 slots).
	f := New(Config{Slack: 0})
	job := dlJob("j", 0, 3, resource.New(7, 700), resource.New(10, 1000))
	ctx := sched.AssignContext{
		Now: 0, Changed: true, Jobs: []sched.JobState{job},
		Cluster: view(resource.New(10, 1000), 10),
	}
	if _, err := f.Assign(ctx); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	var total resource.Vector
	for _, g := range f.plan["j"] {
		total = total.Add(g)
	}
	if total != job.EstRemaining {
		t.Errorf("plan total = %v, want %v", total, job.EstRemaining)
	}
}

func TestSlackShiftsWorkEarlier(t *testing.T) {
	// With 60s (6-slot) slack, a job whose window is [0, 10) must be fully
	// served by slot 4.
	f := New(Config{Slack: 60 * time.Second})
	job := dlJob("j", 0, 10, resource.New(20, 2000), resource.New(10, 1000))
	ctx := sched.AssignContext{
		Now: 0, Changed: true, Jobs: []sched.JobState{job},
		Cluster: view(resource.New(10, 1000), 20),
	}
	if _, err := f.Assign(ctx); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	var before, after resource.Vector
	for t0, g := range f.plan["j"] {
		if t0 < 4 {
			before = before.Add(g)
		} else {
			after = after.Add(g)
		}
	}
	if !after.IsZero() {
		t.Errorf("slack ignored: %v allocated at/after the slacked deadline", after)
	}
	if before != job.EstRemaining {
		t.Errorf("allocated %v before slacked deadline, want %v", before, job.EstRemaining)
	}
}

func TestOverdueJobServedBestEffort(t *testing.T) {
	// Deadline already passed: the job must still be fed (ahead of ad-hoc).
	f := New(Config{Slack: 0})
	job := dlJob("late", 0, 5, resource.New(30, 3000), resource.New(10, 1000))
	ctx := sched.AssignContext{
		Now: 8, Changed: true,
		Jobs:    []sched.JobState{job, adhoc("a", 0, resource.New(10, 1000))},
		Cluster: view(resource.New(10, 1000), 50),
	}
	grants, err := f.Assign(ctx)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if g := grants["late"]; g.Get(resource.VCores) < 10 {
		t.Errorf("overdue job granted %v, want the full cluster before ad-hoc", g)
	}
	if g := grants["a"]; !g.IsZero() {
		t.Errorf("ad-hoc granted %v while an overdue deadline job is starving", g)
	}
}

func TestInfeasibleDemandDegradesGracefully(t *testing.T) {
	// Demand beyond any feasible schedule within the window: FlowTime must
	// not error; the shortfall path schedules what fits and the rest runs
	// overdue.
	f := New(Config{Slack: 0})
	job := dlJob("big", 0, 4, resource.New(1000, 100000), resource.New(10, 1000))
	job.Request = resource.New(10, 1000)
	ctx := sched.AssignContext{
		Now: 0, Changed: true, Jobs: []sched.JobState{job},
		Cluster: view(resource.New(10, 1000), 50),
	}
	grants, err := f.Assign(ctx)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if g := grants["big"]; g.Get(resource.VCores) != 10 {
		t.Errorf("grant = %v, want full capacity for the doomed job", g)
	}
	if f.Stats().ShortfallEvents == 0 {
		t.Error("ShortfallEvents = 0, want > 0 (per-kind shortfalls recorded)")
	}
}

func TestNotReadyJobNotGranted(t *testing.T) {
	f := New(Config{Slack: 0})
	blocked := dlJob("blocked", 0, 10, resource.New(20, 2000), resource.New(10, 1000))
	blocked.Ready = false
	ctx := sched.AssignContext{
		Now: 0, Changed: true, Jobs: []sched.JobState{blocked},
		Cluster: view(resource.New(10, 1000), 20),
	}
	grants, err := f.Assign(ctx)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if g := grants["blocked"]; !g.IsZero() {
		t.Errorf("blocked job granted %v", g)
	}
}

func TestPlanReusedWhileOnSchedule(t *testing.T) {
	// A job consuming exactly its planned grants must never force a
	// replan; a new arrival must.
	f := New(Config{Slack: 0})
	job := dlJob("j", 0, 20, resource.New(40, 4000), resource.New(10, 1000))
	cl := view(resource.New(10, 1000), 40)

	for now := int64(0); now < 4; now++ {
		grants, err := f.Assign(sched.AssignContext{
			Now: now, Changed: now == 0, Jobs: []sched.JobState{job}, Cluster: cl,
		})
		if err != nil {
			t.Fatalf("Assign(%d): %v", now, err)
		}
		job.EstRemaining = job.EstRemaining.SubClamped(grants["j"])
		job.Request = job.ParallelCap.Min(job.EstRemaining)
	}
	if got := f.Stats().Replans; got != 1 {
		t.Errorf("Replans = %d, want 1 (on-schedule consumption must reuse the plan)", got)
	}

	newcomer := dlJob("k", 4, 30, resource.New(20, 2000), resource.New(10, 1000))
	if _, err := f.Assign(sched.AssignContext{
		Now: 4, Changed: true, Jobs: []sched.JobState{job, newcomer}, Cluster: cl,
	}); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if got := f.Stats().Replans; got != 2 {
		t.Errorf("Replans = %d, want 2 after an arrival", got)
	}
}

func TestEmptyContext(t *testing.T) {
	f := New(DefaultConfig())
	grants, err := f.Assign(sched.AssignContext{
		Now: 0, Changed: true,
		Cluster: view(resource.New(10, 1000), 10),
	})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if len(grants) != 0 {
		t.Errorf("grants = %v, want empty", grants)
	}
}

func TestAdHocFIFOOverLeftovers(t *testing.T) {
	f := New(Config{Slack: 0})
	ctx := sched.AssignContext{
		Now: 0, Changed: true,
		Jobs: []sched.JobState{
			adhoc("second", 20*time.Second, resource.New(8, 800)),
			adhoc("first", 0, resource.New(8, 800)),
		},
		Cluster: view(resource.New(10, 1000), 10),
	}
	grants, err := f.Assign(ctx)
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if g := grants["first"]; g != resource.New(8, 800) {
		t.Errorf("first grant = %v, want full request", g)
	}
	if g := grants["second"]; g != resource.New(2, 200) {
		t.Errorf("second grant = %v, want leftover <2,200>", g)
	}
}

func TestReplanOnLiveCapacityChange(t *testing.T) {
	// The capacity *function* changes between slots (a node died), unlike
	// a profile step known in advance: the plan must go stale.
	f := New(Config{Slack: 0, MaxLexRounds: 2})
	job := dlJob("j", 0, 30, resource.New(60, 6000), resource.New(10, 1000))
	capacity := resource.New(20, 2000)
	mk := func(now int64) sched.AssignContext {
		return sched.AssignContext{
			Now: now, Changed: now == 0, Jobs: []sched.JobState{job},
			Cluster: sched.ClusterView{
				SlotDur: slotDur,
				Horizon: 100,
				CapAt:   func(int64) resource.Vector { return capacity },
			},
		}
	}
	grants, err := f.Assign(mk(0))
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	job.EstRemaining = job.EstRemaining.SubClamped(grants["j"])
	if got := f.Stats().Replans; got != 1 {
		t.Fatalf("Replans = %d, want 1", got)
	}

	capacity = resource.New(8, 800) // a node died
	if _, err := f.Assign(mk(1)); err != nil {
		t.Fatalf("Assign after capacity drop: %v", err)
	}
	if got := f.Stats().Replans; got != 2 {
		t.Errorf("Replans = %d, want 2 (live capacity change must replan)", got)
	}
	// The new plan must respect the reduced capacity.
	for off, l := range f.PlannedLoad() {
		if !l.FitsIn(capacity) {
			t.Errorf("plan slot %d load %v exceeds reduced capacity %v", off, l, capacity)
		}
	}
}
