package core

import (
	"testing"

	"flowtime/internal/resource"
	"flowtime/internal/sched"
)

func mkPlanJob(id string, rel, dl, tasks int64) *planJob {
	return &planJob{
		state: sched.JobState{
			ID:          id,
			Kind:        sched.DeadlineJob,
			ParallelCap: resource.New(tasks, tasks*100),
		},
		relSlot: rel,
		dlSlot:  dl,
	}
}

func TestGreedyFeasibleExactFit(t *testing.T) {
	// Two jobs sharing a 4-slot window, total demand exactly 4*cap.
	a := mkPlanJob("a", 0, 4, 10)
	b := mkPlanJob("b", 0, 4, 10)
	order := []*planJob{a, b}
	demand := map[*planJob]int64{a: 20, b: 20}
	capAt := func(int64) int64 { return 10 }
	if !greedyFeasible(order, demand, capAt, resource.VCores, 0, 4) {
		t.Error("exact-fit instance reported infeasible")
	}
	demand[b] = 21 // one unit over
	if greedyFeasible(order, demand, capAt, resource.VCores, 0, 4) {
		t.Error("overfull instance reported feasible")
	}
}

func TestGreedyFeasibleRespectsWindows(t *testing.T) {
	// Job pinned to slot 0 with demand beyond its one-slot window.
	a := mkPlanJob("a", 0, 1, 4)
	order := []*planJob{a}
	if greedyFeasible(order, map[*planJob]int64{a: 5}, func(int64) int64 { return 100 },
		resource.VCores, 0, 10) {
		t.Error("demand beyond parallel cap x window reported feasible")
	}
	if !greedyFeasible(order, map[*planJob]int64{a: 4}, func(int64) int64 { return 100 },
		resource.VCores, 0, 10) {
		t.Error("exact per-window fit reported infeasible")
	}
}

func TestGreedyFeasibleEDFOrderMatters(t *testing.T) {
	// Tight job (deadline slot 1) must be served first even though the
	// loose job appears earlier in no particular order — the caller sorts
	// EDF; verify the sorted order succeeds.
	tight := mkPlanJob("tight", 0, 1, 10)
	loose := mkPlanJob("loose", 0, 2, 10)
	demand := map[*planJob]int64{tight: 10, loose: 10}
	capAt := func(int64) int64 { return 10 }
	if !greedyFeasible([]*planJob{tight, loose}, demand, capAt, resource.VCores, 0, 2) {
		t.Error("EDF order failed on a feasible instance")
	}
}

func TestFillSlotBudgetAndCaps(t *testing.T) {
	f := New(Config{})
	f.load = make([]resource.Vector, 3)
	a := mkPlanJob("a", 0, 3, 4) // cap 4/slot
	b := mkPlanJob("b", 0, 3, 4)
	alloc := map[string][]resource.Vector{
		"a": make([]resource.Vector, 3),
		"b": make([]resource.Vector, 3),
	}
	remaining := map[*planJob]int64{a: 6, b: 6}

	granted := f.fillSlot([]*planJob{a, b}, remaining, alloc, resource.VCores, 0, 0, 7)
	if granted != 7 {
		t.Errorf("granted = %d, want 7 (budget-bound)", granted)
	}
	if got := alloc["a"][0].Get(resource.VCores); got != 4 {
		t.Errorf("job a slot 0 = %d, want 4 (parallel cap)", got)
	}
	if got := alloc["b"][0].Get(resource.VCores); got != 3 {
		t.Errorf("job b slot 0 = %d, want 3 (budget leftover)", got)
	}
	if remaining[a] != 2 || remaining[b] != 3 {
		t.Errorf("remaining = %d, %d; want 2, 3", remaining[a], remaining[b])
	}
	if f.load[0].Get(resource.VCores) != 7 {
		t.Errorf("load = %d, want 7", f.load[0].Get(resource.VCores))
	}

	// Zero or negative budgets are no-ops.
	if g := f.fillSlot([]*planJob{a}, remaining, alloc, resource.VCores, 1, 0, 0); g != 0 {
		t.Errorf("zero budget granted %d", g)
	}
	if g := f.fillSlot([]*planJob{a}, remaining, alloc, resource.VCores, 1, 0, -5); g != 0 {
		t.Errorf("negative budget granted %d", g)
	}
}

func TestShortfallLPFindsMinimum(t *testing.T) {
	f := New(Config{})
	cl := view(resource.New(10, 1000), 100)
	// Window of 2 slots, cap 10: at most 20 units can be placed; demand 26
	// means shortfall exactly 6.
	pj := mkPlanJob("j", 0, 2, 13)
	pj.state.EstRemaining = resource.New(26, 2600)
	ctx := sched.AssignContext{Now: 0, Cluster: cl}
	short, err := f.shortfallLP(ctx, resource.VCores, []*planJob{pj},
		map[*planJob]int64{pj: 26}, func(int64) int64 { return 10 }, 2)
	if err != nil {
		t.Fatalf("shortfallLP: %v", err)
	}
	if got := short[pj]; got != 6 {
		t.Errorf("shortfall = %d, want 6", got)
	}
}
