package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"flowtime/internal/lp"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
)

// twoJobMix is a feasible two-job instance whose stage-B LP needs many
// pivots, so a 1-pivot budget reliably trips the ladder.
func twoJobMix() []sched.JobState {
	return []sched.JobState{
		dlJob("a", 0, 10, resource.New(40, 40*512), resource.New(10, 10*512)),
		dlJob("b", 0, 10, resource.New(60, 60*512), resource.New(12, 12*512)),
	}
}

func TestLadderStepsDownToGreedyOnIterationBudget(t *testing.T) {
	capacity := resource.New(20, 20*1024)
	f := New(Config{Slack: 0, MaxLexRounds: 3, Solve: lp.SolveOptions{MaxIter: 1}})
	jobs := twoJobMix()
	grants, err := f.Assign(sched.AssignContext{
		Now: 0, Changed: true, Jobs: jobs, Cluster: view(capacity, 100),
	})
	if err != nil {
		t.Fatalf("Assign: %v (solver budget trips must never fail Assign)", err)
	}

	d := f.Degradation()
	if d.Level != sched.DegradeGreedy {
		t.Errorf("Level = %v, want greedy", d.Level)
	}
	if d.GreedyFallbacks < 1 {
		t.Errorf("GreedyFallbacks = %d, want >= 1", d.GreedyFallbacks)
	}
	if d.Reason == "" {
		t.Error("Reason empty after a tripped budget")
	}
	if !d.Degraded() {
		t.Error("Degraded() = false after a greedy fallback")
	}

	// Regression for the zero-grant-slot bug: a one-shot solver failure
	// must not leave slot 0 empty while demand and capacity exist.
	var total resource.Vector
	for _, g := range grants {
		total = total.Add(g)
	}
	if total.IsZero() {
		t.Fatal("zero grants in slot 0 despite demand and capacity (solver failure leaked)")
	}

	// The degraded plan must still satisfy every plan invariant.
	capAt := func(int64) resource.Vector { return capacity }
	if err := sched.ValidatePlan(f.plan, f.planFrom, f.planWindows, capAt); err != nil {
		t.Errorf("greedy plan fails validation: %v", err)
	}
	// Conservation: the whole demand fits the window, so nothing defers.
	for _, j := range jobs {
		var planned resource.Vector
		for _, g := range f.plan[j.ID] {
			planned = planned.Add(g)
		}
		if got := planned.Add(f.deferred[j.ID]); got != j.EstRemaining {
			t.Errorf("job %s planned+deferred %v != demand %v", j.ID, got, j.EstRemaining)
		}
	}
}

func TestLadderStepsDownOnTimeBudget(t *testing.T) {
	capacity := resource.New(20, 20*1024)
	f := New(Config{Slack: 0, MaxLexRounds: 3, Solve: lp.SolveOptions{MaxTime: time.Nanosecond}})
	grants, err := f.Assign(sched.AssignContext{
		Now: 0, Changed: true, Jobs: twoJobMix(), Cluster: view(capacity, 100),
	})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if got := f.Degradation().Level; got != sched.DegradeGreedy {
		t.Errorf("Level = %v, want greedy", got)
	}
	if len(grants) == 0 {
		t.Error("no grants under a tripped time budget")
	}
}

func TestLadderRecoversAtNextReplan(t *testing.T) {
	// Trip the ladder once, then replan with default budgets: the level
	// must return to full while the fallback counters keep their history.
	capacity := resource.New(20, 20*1024)
	f := New(Config{Slack: 0, MaxLexRounds: 3, Solve: lp.SolveOptions{MaxIter: 1}})
	cl := view(capacity, 100)
	if _, err := f.Assign(sched.AssignContext{Now: 0, Changed: true, Jobs: twoJobMix(), Cluster: cl}); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if f.Degradation().Level != sched.DegradeGreedy {
		t.Fatalf("Level = %v, want greedy after trip", f.Degradation().Level)
	}
	f.cfg.Solve = lp.SolveOptions{}
	// New arrival forces an urgent replan.
	jobs := append(twoJobMix(), dlJob("c", 1, 9, resource.New(10, 10*512), resource.New(5, 5*512)))
	if _, err := f.Assign(sched.AssignContext{Now: 1, Changed: true, Jobs: jobs, Cluster: cl}); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	d := f.Degradation()
	if d.Level != sched.DegradeNone {
		t.Errorf("Level = %v, want full after budgets restored", d.Level)
	}
	if d.GreedyFallbacks < 1 {
		t.Errorf("GreedyFallbacks = %d, want history preserved", d.GreedyFallbacks)
	}
}

func TestDeferredDemandRetriedAfterInterval(t *testing.T) {
	// Demand 60 in a 3-slot window on a 10/slot cluster: 30 places, 30
	// defers. The deferred volume is served by the overdue path and the
	// planner must schedule exactly one retry replan, at now+10.
	capacity := resource.New(10, 1000)
	cl := view(capacity, 100)
	f := New(Config{Slack: 0, MaxLexRounds: 2})

	consumed := resource.Vector{}
	demand := resource.New(60, 6000)
	parCap := resource.New(20, 2000)
	for now := int64(0); now <= 10; now++ {
		var jobs []sched.JobState
		if est := demand.SubClamped(consumed); !est.IsZero() {
			j := dlJob("j", 0, 3, est, parCap)
			j.Request = parCap.Min(est)
			jobs = append(jobs, j)
		}
		grants, err := f.Assign(sched.AssignContext{
			Now: now, Changed: now == 0, Jobs: jobs, Cluster: cl,
		})
		if err != nil {
			t.Fatalf("slot %d: Assign: %v", now, err)
		}
		consumed = consumed.Add(grants["j"])

		switch now {
		case 0:
			if f.stats.Replans != 1 {
				t.Fatalf("slot 0: Replans = %d, want 1", f.stats.Replans)
			}
			if got := f.deferred["j"]; got != resource.New(30, 3000) {
				t.Fatalf("slot 0: deferred = %v, want <30, 3000>", got)
			}
			if f.deferredRetry != deferredRetryInterval {
				t.Fatalf("slot 0: deferredRetry = %d, want %d", f.deferredRetry, deferredRetryInterval)
			}
		case 5:
			if !demand.FitsIn(consumed) {
				t.Fatalf("slot 5: consumed %v, want full demand %v (overdue path serves deferral)", consumed, demand)
			}
		case 9:
			if f.stats.Replans != 1 {
				t.Fatalf("slot 9: Replans = %d, want still 1 (retry not due)", f.stats.Replans)
			}
		case 10:
			if f.stats.Replans != 2 {
				t.Fatalf("slot 10: Replans = %d, want 2 (deferred retry due)", f.stats.Replans)
			}
			if f.deferredRetry != 0 {
				t.Errorf("slot 10: deferredRetry = %d, want 0 (reset by replan)", f.deferredRetry)
			}
		}
	}
}

func TestBestEffortJobsExcludedFromPlanning(t *testing.T) {
	capacity := resource.New(10, 1000)
	cl := view(capacity, 100)
	f := New(Config{Slack: 0, MaxLexRounds: 2})

	normal := dlJob("a", 0, 10, resource.New(40, 4000), resource.New(10, 1000))
	be := dlJob("b", 0, 20, resource.New(5, 500), resource.New(5, 500))
	be.BestEffort = true

	grants, err := f.Assign(sched.AssignContext{
		Now: 0, Changed: true, Jobs: []sched.JobState{normal, be}, Cluster: cl,
	})
	if err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if _, ok := f.plan["b"]; ok {
		t.Error("best-effort job entered the joint plan")
	}
	if _, ok := f.planWindows["b"]; ok {
		t.Error("best-effort job has a plan window")
	}
	if _, ok := f.plan["a"]; !ok {
		t.Error("normal job missing from the plan")
	}
	// The best-effort job still runs, from leftover capacity.
	if g := grants["b"]; g.IsZero() {
		t.Error("best-effort job received nothing despite leftover capacity")
	}

	// An unplanned best-effort job must not trigger a replan loop.
	replans := f.stats.Replans
	normal.EstRemaining = normal.EstRemaining.SubClamped(grants["a"])
	be.EstRemaining = resource.New(5, 500) // still unplanned demand
	if _, err := f.Assign(sched.AssignContext{
		Now: 1, Jobs: []sched.JobState{normal, be}, Cluster: cl,
	}); err != nil {
		t.Fatalf("Assign: %v", err)
	}
	if f.stats.Replans != replans {
		t.Errorf("Replans = %d, want %d (best-effort demand is not staleness)", f.stats.Replans, replans)
	}
}

// TestPlanValidationProperty fuzzes Assign across ladder-relevant configs
// and checks every produced plan against the shared validator — the same
// check replan runs before serving a plan, exercised here end to end.
func TestPlanValidationProperty(t *testing.T) {
	configs := map[string]Config{
		"default":      DefaultConfig(),
		"tiny-budget":  {Slack: 0, MaxLexRounds: 3, Solve: lp.SolveOptions{MaxIter: 1}},
		"single-round": {Slack: 0, MaxLexRounds: 1},
		"tight-slack":  {Slack: 60 * time.Second, MaxLexRounds: 2},
	}
	capacity := resource.New(16, 16*1024)
	cl := view(capacity, 300)
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 15; trial++ {
				now := rng.Int63n(10)
				nJobs := 1 + rng.Intn(6)
				jobs := make([]sched.JobState, 0, nJobs)
				for i := 0; i < nJobs; i++ {
					rel := now + rng.Int63n(20)
					win := 2 + rng.Int63n(30)
					tasks := int64(1 + rng.Intn(8))
					perSlot := resource.New(tasks, tasks*512)
					jobs = append(jobs, dlJob(fmt.Sprintf("j%02d", i), rel, rel+win,
						perSlot.Scale(1+rng.Int63n(win)), perSlot))
				}
				f := New(cfg)
				if _, err := f.Assign(sched.AssignContext{
					Now: now, Changed: true, Jobs: jobs, Cluster: cl,
				}); err != nil {
					t.Fatalf("trial %d: Assign: %v", trial, err)
				}
				capAt := func(int64) resource.Vector { return capacity }
				if err := sched.ValidatePlan(f.plan, f.planFrom, f.planWindows, capAt); err != nil {
					t.Fatalf("trial %d: plan fails validation: %v", trial, err)
				}
				if n := f.Degradation().InvalidPlans; n != 0 {
					t.Fatalf("trial %d: InvalidPlans = %d, want 0 (pipeline emitted an invalid plan)", trial, n)
				}
			}
		})
	}
}
