package core
