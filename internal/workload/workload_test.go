package workload

import (
	"math/rand"
	"testing"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/workflow"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestShapeString(t *testing.T) {
	shapes := map[Shape]string{
		ShapeChain: "chain", ShapeFanOut: "fanout", ShapeDiamond: "diamond",
		ShapeMontage: "montage", ShapeEpigenomics: "epigenomics", ShapeRandom: "random",
		ShapeCyberShake: "cybershake", ShapeSipht: "sipht",
		Shape(0): "shape(0)",
	}
	for s, want := range shapes {
		if got := s.String(); got != want {
			t.Errorf("Shape(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestGenerateWorkflowAllShapes(t *testing.T) {
	r := rng()
	for _, shape := range []Shape{ShapeChain, ShapeFanOut, ShapeDiamond, ShapeMontage, ShapeEpigenomics, ShapeRandom, ShapeCyberShake, ShapeSipht} {
		t.Run(shape.String(), func(t *testing.T) {
			for _, jobs := range []int{6, 12, 18, 30} {
				w, err := GenerateWorkflow(r, WorkflowSpec{
					ID:             shape.String(),
					Shape:          shape,
					Jobs:           jobs,
					Submit:         time.Minute,
					DeadlineFactor: 2,
				})
				if err != nil {
					t.Fatalf("GenerateWorkflow(%v, %d): %v", shape, jobs, err)
				}
				if w.NumJobs() != jobs {
					t.Errorf("NumJobs = %d, want %d", w.NumJobs(), jobs)
				}
				if err := w.Validate(); err != nil {
					t.Errorf("generated workflow invalid: %v", err)
				}
				if w.Deadline <= w.Submit {
					t.Errorf("deadline %v not after submit %v", w.Deadline, w.Submit)
				}
			}
		})
	}
}

func TestGenerateWorkflowValidation(t *testing.T) {
	r := rng()
	if _, err := GenerateWorkflow(r, WorkflowSpec{ID: "x", Shape: ShapeChain, Jobs: 0, DeadlineFactor: 1}); err == nil {
		t.Error("zero jobs accepted")
	}
	if _, err := GenerateWorkflow(r, WorkflowSpec{ID: "x", Shape: ShapeChain, Jobs: 3, DeadlineFactor: 0}); err == nil {
		t.Error("zero deadline factor accepted")
	}
	if _, err := GenerateWorkflow(r, WorkflowSpec{ID: "x", Shape: ShapeFanOut, Jobs: 2, DeadlineFactor: 1}); err == nil {
		t.Error("fanout with 2 jobs accepted")
	}
	if _, err := GenerateWorkflow(r, WorkflowSpec{ID: "x", Shape: Shape(99), Jobs: 3, DeadlineFactor: 1}); err == nil {
		t.Error("unknown shape accepted")
	}
}

func TestGenerateWorkflowDeterministic(t *testing.T) {
	spec := WorkflowSpec{ID: "d", Shape: ShapeRandom, Jobs: 15, DeadlineFactor: 3}
	w1, err := GenerateWorkflow(rand.New(rand.NewSource(7)), spec)
	if err != nil {
		t.Fatalf("GenerateWorkflow: %v", err)
	}
	w2, err := GenerateWorkflow(rand.New(rand.NewSource(7)), spec)
	if err != nil {
		t.Fatalf("GenerateWorkflow: %v", err)
	}
	if w1.Deadline != w2.Deadline || w1.NumJobs() != w2.NumJobs() {
		t.Error("same seed produced different workflows")
	}
	for i := 0; i < w1.NumJobs(); i++ {
		if w1.Job(i) != w2.Job(i) {
			t.Fatalf("job %d differs across same-seed runs", i)
		}
	}
}

func TestGenerateAdHoc(t *testing.T) {
	jobs, err := GenerateAdHoc(rng(), AdHocSpec{
		Count:            50,
		MeanInterarrival: 30 * time.Second,
		MinTasks:         1, MaxTasks: 8,
		MinTaskDur: 10 * time.Second, MaxTaskDur: 60 * time.Second,
		Demand: resource.New(1, 512),
	})
	if err != nil {
		t.Fatalf("GenerateAdHoc: %v", err)
	}
	if len(jobs) != 50 {
		t.Fatalf("got %d jobs, want 50", len(jobs))
	}
	var prev time.Duration
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if j.Submit < prev {
			t.Fatalf("job %d submits at %v before previous %v", i, j.Submit, prev)
		}
		prev = j.Submit
	}

	if _, err := GenerateAdHoc(rng(), AdHocSpec{Count: -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := GenerateAdHoc(rng(), AdHocSpec{Count: 1}); err == nil {
		t.Error("zero interarrival accepted")
	}
	empty, err := GenerateAdHoc(rng(), AdHocSpec{Count: 0})
	if err != nil || len(empty) != 0 {
		t.Errorf("empty spec: %v, %v", empty, err)
	}
}

func TestInjectEstimationError(t *testing.T) {
	r := rng()
	w, err := GenerateWorkflow(r, WorkflowSpec{ID: "e", Shape: ShapeChain, Jobs: 10, DeadlineFactor: 2})
	if err != nil {
		t.Fatalf("GenerateWorkflow: %v", err)
	}
	if err := InjectEstimationError(r, w, 0.2, 0.2); err != nil {
		t.Fatalf("InjectEstimationError: %v", err)
	}
	for i := 0; i < w.NumJobs(); i++ {
		j := w.Job(i)
		ratio := float64(j.EffectiveTaskDuration()) / float64(j.TaskDuration)
		if ratio < 1.15 || ratio > 1.25 {
			t.Errorf("job %d ratio = %g, want ~1.2", i, ratio)
		}
	}
	if err := InjectEstimationError(r, w, 0.5, -0.5); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestSynthesizeHistory(t *testing.T) {
	r := rng()
	w, err := GenerateWorkflow(r, WorkflowSpec{ID: "h", Shape: ShapeDiamond, Jobs: 8, DeadlineFactor: 2})
	if err != nil {
		t.Fatalf("GenerateWorkflow: %v", err)
	}
	h, err := SynthesizeHistory(r, []*workflow.Workflow{w}, 5, 0.1)
	if err != nil {
		t.Fatalf("SynthesizeHistory: %v", err)
	}
	runs := h["h"]
	if len(runs) != 5 {
		t.Fatalf("got %d runs, want 5", len(runs))
	}
	dag := w.DAG()
	for ri, run := range runs {
		if len(run.Spans) != w.NumJobs() {
			t.Fatalf("run %d has %d spans, want %d", ri, len(run.Spans), w.NumJobs())
		}
		for v := 0; v < w.NumJobs(); v++ {
			span := run.Spans[w.Job(v).Name]
			if span.End <= span.Start {
				t.Fatalf("run %d job %d: empty span %+v", ri, v, span)
			}
			for _, p := range dag.Predecessors(v) {
				pspan := run.Spans[w.Job(p).Name]
				if span.Start < pspan.End {
					t.Fatalf("run %d: job %d starts %v before pred %d ends %v",
						ri, v, span.Start, p, pspan.End)
				}
			}
		}
	}
}

func TestRandomDAGWorkflow(t *testing.T) {
	r := rng()
	for _, tc := range []struct{ nodes, edges int }{{10, 20}, {50, 300}, {200, 6000}} {
		w, err := RandomDAGWorkflow(r, "r", tc.nodes, tc.edges, 24*time.Hour)
		if err != nil {
			t.Fatalf("RandomDAGWorkflow(%d, %d): %v", tc.nodes, tc.edges, err)
		}
		if w.NumJobs() != tc.nodes {
			t.Errorf("nodes = %d, want %d", w.NumJobs(), tc.nodes)
		}
		maxEdges := tc.nodes * (tc.nodes - 1) / 2
		wantEdges := tc.edges
		if wantEdges > maxEdges {
			wantEdges = maxEdges
		}
		if got := w.DAG().NumEdges(); got != wantEdges {
			t.Errorf("edges = %d, want %d", got, wantEdges)
		}
	}
	if _, err := RandomDAGWorkflow(r, "r", 0, 0, time.Hour); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestFig4Workload(t *testing.T) {
	wfs, adhoc, err := Fig4Workload(DefaultFig4Spec())
	if err != nil {
		t.Fatalf("Fig4Workload: %v", err)
	}
	if len(wfs) != 5 {
		t.Fatalf("got %d workflows, want 5", len(wfs))
	}
	totalJobs := 0
	for _, w := range wfs {
		totalJobs += w.NumJobs()
		if err := w.Validate(); err != nil {
			t.Errorf("workflow %s invalid: %v", w.ID, err)
		}
	}
	if totalJobs != 90 {
		t.Errorf("total deadline jobs = %d, want 90 (5 x 18, per the paper)", totalJobs)
	}
	if len(adhoc) != DefaultFig4Spec().AdHocCount {
		t.Errorf("ad-hoc = %d, want %d", len(adhoc), DefaultFig4Spec().AdHocCount)
	}
	if TotalWork(wfs, 10*time.Second).IsZero() {
		t.Error("TotalWork = 0")
	}
}

func TestPUMATemplatesSane(t *testing.T) {
	for _, tpl := range PUMATemplates() {
		if tpl.Name == "" || tpl.MinTasks < 1 || tpl.MaxTasks < tpl.MinTasks {
			t.Errorf("template %+v has invalid task bounds", tpl)
		}
		if tpl.MinTaskDur <= 0 || tpl.MaxTaskDur < tpl.MinTaskDur {
			t.Errorf("template %+v has invalid durations", tpl)
		}
		if tpl.Demand.IsZero() {
			t.Errorf("template %+v has zero demand", tpl)
		}
	}
}
