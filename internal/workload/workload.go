// Package workload generates the evaluation workloads of the paper:
// PUMA-benchmark-shaped jobs (Ahmad et al., "PUMA: Purdue MapReduce
// Benchmarks Suite"), scientific-workflow DAG shapes (Bharathi et al.,
// "Characterization of Scientific Workflows"), recurring deadline-aware
// workflows with loose deadlines (the paper's trace observation in §II-B:
// a 24-hour business deadline over a ~2-hour run), Poisson ad-hoc job
// streams, estimation-error injection, and synthetic prior-run histories
// for the Morpheus baseline.
//
// All generation is driven by a caller-provided *rand.Rand so runs are
// reproducible from a seed.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/workflow"
)

// JobTemplate describes one PUMA-style benchmark job class.
type JobTemplate struct {
	// Name is the benchmark name.
	Name string
	// MinTasks and MaxTasks bound the task count.
	MinTasks, MaxTasks int
	// MinTaskDur and MaxTaskDur bound the per-task duration.
	MinTaskDur, MaxTaskDur time.Duration
	// Demand is the per-task resource demand.
	Demand resource.Vector
}

// PUMATemplates returns the job classes used in the paper's testbed
// experiments (§VII-A): word-processing benchmarks over >= 10 GB inputs —
// InvertedIndex, SequenceCount, WordCount — plus SelfJoin on generated
// data, and the supporting Grep and TeraSort classes. Task counts and
// durations follow typical PUMA configurations on ~128 MB splits.
func PUMATemplates() []JobTemplate {
	return []JobTemplate{
		{Name: "InvertedIndex", MinTasks: 8, MaxTasks: 24, MinTaskDur: 40 * time.Second, MaxTaskDur: 120 * time.Second, Demand: resource.New(1, 2048)},
		{Name: "SequenceCount", MinTasks: 8, MaxTasks: 24, MinTaskDur: 60 * time.Second, MaxTaskDur: 180 * time.Second, Demand: resource.New(1, 3072)},
		{Name: "WordCount", MinTasks: 8, MaxTasks: 32, MinTaskDur: 30 * time.Second, MaxTaskDur: 90 * time.Second, Demand: resource.New(1, 1024)},
		{Name: "SelfJoin", MinTasks: 4, MaxTasks: 16, MinTaskDur: 40 * time.Second, MaxTaskDur: 150 * time.Second, Demand: resource.New(1, 2048)},
		{Name: "Grep", MinTasks: 4, MaxTasks: 16, MinTaskDur: 20 * time.Second, MaxTaskDur: 60 * time.Second, Demand: resource.New(1, 1024)},
		{Name: "TeraSort", MinTasks: 8, MaxTasks: 32, MinTaskDur: 50 * time.Second, MaxTaskDur: 200 * time.Second, Demand: resource.New(2, 4096)},
	}
}

// Shape selects a workflow DAG topology.
type Shape int

// Workflow shapes. Enums start at one.
const (
	// ShapeChain is a linear pipeline.
	ShapeChain Shape = iota + 1
	// ShapeFanOut is the paper's Fig. 3: source -> parallel stage -> sink.
	ShapeFanOut
	// ShapeDiamond is fork-join with two branches of stages.
	ShapeDiamond
	// ShapeMontage mimics the Montage astronomy workflow: wide ingest,
	// aggregation, wide re-projection, final assembly.
	ShapeMontage
	// ShapeEpigenomics mimics the Epigenomics pipeline: several parallel
	// chains merged at the end.
	ShapeEpigenomics
	// ShapeRandom is a random layered DAG.
	ShapeRandom
	// ShapeCyberShake mimics the CyberShake seismology workflow: two wide
	// parallel stages back to back, then a two-step reduction.
	ShapeCyberShake
	// ShapeSipht mimics the SIPHT bioinformatics workflow: many
	// independent two-job chains feeding one final analysis job.
	ShapeSipht
)

// String returns the shape name.
func (s Shape) String() string {
	switch s {
	case ShapeChain:
		return "chain"
	case ShapeFanOut:
		return "fanout"
	case ShapeDiamond:
		return "diamond"
	case ShapeMontage:
		return "montage"
	case ShapeEpigenomics:
		return "epigenomics"
	case ShapeRandom:
		return "random"
	case ShapeCyberShake:
		return "cybershake"
	case ShapeSipht:
		return "sipht"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// WorkflowSpec parameterizes GenerateWorkflow.
type WorkflowSpec struct {
	// ID is the workflow ID.
	ID string
	// Shape selects the topology.
	Shape Shape
	// Jobs is the total number of jobs; each shape arranges them its own
	// way. Must be >= 1 (>= 3 for shapes with distinguished source/sink).
	Jobs int
	// Submit is the workflow submission time.
	Submit time.Duration
	// DeadlineFactor stretches the deadline relative to the workflow's
	// sequential critical-path estimate: deadline = submit + factor x
	// critical-path duration. The paper's traces have very loose deadlines
	// (24h vs 2h run: factor ~12); its testbed uses tighter ones. Must be
	// > 0.
	DeadlineFactor float64
	// Templates are the job classes to draw from; defaults to
	// PUMATemplates().
	Templates []JobTemplate
}

// GenerateWorkflow builds a random workflow from the spec.
func GenerateWorkflow(rng *rand.Rand, spec WorkflowSpec) (*workflow.Workflow, error) {
	if spec.Jobs < 1 {
		return nil, fmt.Errorf("workload: %s: jobs = %d, want >= 1", spec.ID, spec.Jobs)
	}
	if spec.DeadlineFactor <= 0 {
		return nil, fmt.Errorf("workload: %s: deadline factor %g, want > 0", spec.ID, spec.DeadlineFactor)
	}
	templates := spec.Templates
	if len(templates) == 0 {
		templates = PUMATemplates()
	}

	w := workflow.New(spec.ID, spec.Submit, spec.Submit+time.Hour) // placeholder deadline
	for i := 0; i < spec.Jobs; i++ {
		tpl := templates[rng.Intn(len(templates))]
		w.AddJob(sampleJob(rng, tpl, i))
	}
	if err := connect(rng, w, spec.Shape, spec.Jobs); err != nil {
		return nil, err
	}

	// Deadline = factor x estimated critical path (sequential task chains).
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", spec.ID, err)
	}
	weights := make([]float64, w.NumJobs())
	for i := 0; i < w.NumJobs(); i++ {
		weights[i] = w.Job(i).TaskDuration.Seconds()
	}
	_, _, cp, err := w.DAG().LongestPath(weights)
	if err != nil {
		return nil, fmt.Errorf("workload: %s: %w", spec.ID, err)
	}
	w.Deadline = spec.Submit + time.Duration(spec.DeadlineFactor*cp*float64(time.Second))
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %s: %w", spec.ID, err)
	}
	return w, nil
}

func sampleJob(rng *rand.Rand, tpl JobTemplate, idx int) workflow.Job {
	tasks := tpl.MinTasks
	if tpl.MaxTasks > tpl.MinTasks {
		tasks += rng.Intn(tpl.MaxTasks - tpl.MinTasks + 1)
	}
	dur := tpl.MinTaskDur
	if tpl.MaxTaskDur > tpl.MinTaskDur {
		dur += time.Duration(rng.Int63n(int64(tpl.MaxTaskDur - tpl.MinTaskDur + 1)))
	}
	return workflow.Job{
		Name:         fmt.Sprintf("%s-%d", tpl.Name, idx),
		Tasks:        tasks,
		TaskDuration: dur.Round(time.Second),
		TaskDemand:   tpl.Demand,
	}
}

// connect wires the workflow's dependency edges per shape.
func connect(rng *rand.Rand, w *workflow.Workflow, shape Shape, n int) error {
	switch shape {
	case ShapeChain:
		for i := 1; i < n; i++ {
			w.AddDep(i-1, i)
		}
	case ShapeFanOut:
		if n < 3 {
			return fmt.Errorf("workload: fanout needs >= 3 jobs, got %d", n)
		}
		for i := 1; i < n-1; i++ {
			w.AddDep(0, i)
			w.AddDep(i, n-1)
		}
	case ShapeDiamond:
		if n < 4 {
			return fmt.Errorf("workload: diamond needs >= 4 jobs, got %d", n)
		}
		mid := n - 2
		left := mid / 2
		prev := 0
		for i := 1; i <= left; i++ { // left branch chain
			w.AddDep(prev, i)
			prev = i
		}
		w.AddDep(prev, n-1)
		prev = 0
		for i := left + 1; i <= mid; i++ { // right branch chain
			w.AddDep(prev, i)
			prev = i
		}
		w.AddDep(prev, n-1)
	case ShapeMontage:
		if n < 5 {
			return fmt.Errorf("workload: montage needs >= 5 jobs, got %d", n)
		}
		// Layers: ingest (40%), aggregate (1), reproject (rest), final (1).
		ingest := n * 2 / 5
		if ingest < 1 {
			ingest = 1
		}
		agg := ingest
		reprojStart := agg + 1
		final := n - 1
		for i := 0; i < ingest; i++ {
			w.AddDep(i, agg)
		}
		for i := reprojStart; i < final; i++ {
			w.AddDep(agg, i)
			w.AddDep(i, final)
		}
		if reprojStart >= final { // degenerate small case
			w.AddDep(agg, final)
		}
	case ShapeEpigenomics:
		if n < 3 {
			return fmt.Errorf("workload: epigenomics needs >= 3 jobs, got %d", n)
		}
		// k parallel chains of equal length joined by a sink.
		k := 3
		if n-1 < k {
			k = n - 1
		}
		sink := n - 1
		body := n - 1
		per := body / k
		node := 0
		for c := 0; c < k; c++ {
			length := per
			if c < body%k {
				length++
			}
			prev := -1
			for i := 0; i < length; i++ {
				if prev >= 0 {
					w.AddDep(prev, node)
				}
				prev = node
				node++
			}
			if prev >= 0 {
				w.AddDep(prev, sink)
			}
		}
	case ShapeCyberShake:
		if n < 6 {
			return fmt.Errorf("workload: cybershake needs >= 6 jobs, got %d", n)
		}
		// Stage A (wide) -> stage B (wide, pairwise) -> gather -> final.
		body := n - 2
		aWidth := body / 2
		gather, final := n-2, n-1
		for i := 0; i < aWidth; i++ {
			b := aWidth + i
			if b >= body {
				b = body - 1
			}
			w.AddDep(i, b)
			w.AddDep(b, gather)
		}
		for b := aWidth; b < body; b++ {
			w.AddDep(b, gather)
		}
		w.AddDep(gather, final)
	case ShapeSipht:
		if n < 3 {
			return fmt.Errorf("workload: sipht needs >= 3 jobs, got %d", n)
		}
		// Independent two-job chains feeding one final analysis.
		final := n - 1
		for i := 0; i+1 < final; i += 2 {
			w.AddDep(i, i+1)
			w.AddDep(i+1, final)
		}
		if (final)%2 == 1 { // odd leftover job feeds final directly
			w.AddDep(final-1, final)
		}
	case ShapeRandom:
		// Layered random DAG: 2-5 layers, edges only forward between
		// adjacent layers, each node gets >= 1 parent (except layer 0).
		layers := 2 + rng.Intn(4)
		if layers > n {
			layers = n
		}
		layerOf := make([]int, n)
		for i := range layerOf {
			layerOf[i] = i * layers / n
		}
		for i := 0; i < n; i++ {
			if layerOf[i] == 0 {
				continue
			}
			parents := 0
			for j := 0; j < n; j++ {
				if layerOf[j] == layerOf[i]-1 && rng.Float64() < 0.4 {
					w.AddDep(j, i)
					parents++
				}
			}
			if parents == 0 {
				// Guarantee connectivity: pick one parent from the layer.
				var cands []int
				for j := 0; j < n; j++ {
					if layerOf[j] == layerOf[i]-1 {
						cands = append(cands, j)
					}
				}
				w.AddDep(cands[rng.Intn(len(cands))], i)
			}
		}
	default:
		return fmt.Errorf("workload: unknown shape %v", shape)
	}
	return nil
}

// AdHocSpec parameterizes GenerateAdHoc: a Poisson arrival stream of
// best-effort jobs.
type AdHocSpec struct {
	// Count is the number of jobs.
	Count int
	// MeanInterarrival is the mean of the exponential interarrival time.
	MeanInterarrival time.Duration
	// Start offsets the first arrival.
	Start time.Duration
	// MinTasks/MaxTasks, MinTaskDur/MaxTaskDur, Demand bound the true job
	// sizes (unknown to schedulers).
	MinTasks, MaxTasks     int
	MinTaskDur, MaxTaskDur time.Duration
	Demand                 resource.Vector
}

// GenerateAdHoc builds a Poisson ad-hoc stream.
func GenerateAdHoc(rng *rand.Rand, spec AdHocSpec) ([]workflow.AdHoc, error) {
	if spec.Count < 0 {
		return nil, fmt.Errorf("workload: ad-hoc count %d, want >= 0", spec.Count)
	}
	if spec.Count > 0 && spec.MeanInterarrival <= 0 {
		return nil, fmt.Errorf("workload: mean interarrival %v, want > 0", spec.MeanInterarrival)
	}
	out := make([]workflow.AdHoc, 0, spec.Count)
	at := spec.Start
	for i := 0; i < spec.Count; i++ {
		gap := time.Duration(rng.ExpFloat64() * float64(spec.MeanInterarrival))
		at += gap
		tasks := spec.MinTasks
		if spec.MaxTasks > spec.MinTasks {
			tasks += rng.Intn(spec.MaxTasks - spec.MinTasks + 1)
		}
		dur := spec.MinTaskDur
		if spec.MaxTaskDur > spec.MinTaskDur {
			dur += time.Duration(rng.Int63n(int64(spec.MaxTaskDur - spec.MinTaskDur + 1)))
		}
		out = append(out, workflow.AdHoc{
			ID:           fmt.Sprintf("ah-%03d", i),
			Submit:       at.Round(time.Second),
			Tasks:        tasks,
			TaskDuration: dur.Round(time.Second),
			TaskDemand:   spec.Demand,
		})
	}
	return out, nil
}

// InjectEstimationError sets each job's actual task duration to estimate x
// factor, where factor is drawn uniformly from [1+lo, 1+hi]. Negative lo
// with positive hi mixes over- and under-estimation; (0.2, 0.2) makes every
// job run 20% longer than estimated. The paper studies both directions
// (§III-A).
func InjectEstimationError(rng *rand.Rand, w *workflow.Workflow, lo, hi float64) error {
	if hi < lo {
		return fmt.Errorf("workload: error range [%g, %g] inverted", lo, hi)
	}
	for i := 0; i < w.NumJobs(); i++ {
		f := 1 + lo + rng.Float64()*(hi-lo)
		if f < 0.05 {
			f = 0.05
		}
		est := w.Job(i).TaskDuration
		actual := time.Duration(float64(est) * f).Round(time.Second)
		if actual <= 0 {
			actual = time.Second
		}
		if err := w.SetActualTaskDuration(i, actual); err != nil {
			return fmt.Errorf("workload: %w", err)
		}
	}
	return nil
}

// SynthesizeHistory fabricates prior-run observations for Morpheus: for
// each workflow, runs sequential-wave estimates through the DAG and
// perturbs each job's span by the given relative jitter.
func SynthesizeHistory(rng *rand.Rand, wfs []*workflow.Workflow, runs int, jitter float64) (sched.History, error) {
	h := make(sched.History, len(wfs))
	for _, w := range wfs {
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		order, err := w.DAG().TopoOrder()
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		for r := 0; r < runs; r++ {
			spans := make(map[string]sched.JobSpan, w.NumJobs())
			end := make([]time.Duration, w.NumJobs())
			for _, v := range order {
				start := time.Duration(0)
				for _, p := range w.DAG().Predecessors(v) {
					if end[p] > start {
						start = end[p]
					}
				}
				base := w.Job(v).TaskDuration
				f := 1 + (rng.Float64()*2-1)*jitter
				if f < 0.1 {
					f = 0.1
				}
				dur := time.Duration(float64(base) * f)
				end[v] = start + dur
				spans[w.Job(v).Name] = sched.JobSpan{Start: start, End: end[v]}
			}
			h[w.ID] = append(h[w.ID], sched.PriorRun{Spans: spans})
		}
	}
	return h, nil
}

// RandomDAGWorkflow builds a uniformly random DAG with the exact number of
// nodes and approximately the requested number of edges, used by the
// Fig. 6 decomposition-scalability experiment (10-200 nodes, up to 6000
// edges).
func RandomDAGWorkflow(rng *rand.Rand, id string, nodes, edges int, deadline time.Duration) (*workflow.Workflow, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("workload: nodes = %d, want >= 1", nodes)
	}
	maxEdges := nodes * (nodes - 1) / 2
	if edges > maxEdges {
		edges = maxEdges
	}
	w := workflow.New(id, 0, deadline)
	tpl := PUMATemplates()
	for i := 0; i < nodes; i++ {
		w.AddJob(sampleJob(rng, tpl[rng.Intn(len(tpl))], i))
	}
	// Sample forward edges (a < b keeps it acyclic) without replacement,
	// Floyd-style, bounded by the requested count.
	type pair struct{ a, b int }
	chosen := make(map[pair]bool, edges)
	for len(chosen) < edges {
		a := rng.Intn(nodes - 1)
		b := a + 1 + rng.Intn(nodes-a-1)
		p := pair{a, b}
		if chosen[p] {
			continue
		}
		chosen[p] = true
		w.AddDep(a, b)
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return w, nil
}

// Fig4Spec parameterizes the paper's main testbed workload (§VII-A): 5
// workflows x 18 jobs = 90 deadline-aware jobs plus an ad-hoc stream.
type Fig4Spec struct {
	// Seed drives all randomness.
	Seed int64
	// Workflows is the number of workflows (paper: 5).
	Workflows int
	// JobsPerWorkflow is the number of jobs per workflow (paper: 18).
	JobsPerWorkflow int
	// DeadlineFactor stretches deadlines over critical paths.
	DeadlineFactor float64
	// AdHocCount is the number of ad-hoc jobs.
	AdHocCount int
	// AdHocMeanGap is the mean interarrival of ad-hoc jobs.
	AdHocMeanGap time.Duration
}

// DefaultFig4Spec returns the paper's configuration scaled to the
// simulated cluster.
func DefaultFig4Spec() Fig4Spec {
	return Fig4Spec{
		Seed:            20180701,
		Workflows:       5,
		JobsPerWorkflow: 18,
		DeadlineFactor:  4.5,
		AdHocCount:      60,
		AdHocMeanGap:    40 * time.Second,
	}
}

// Fig4Workload materializes the workload for the paper's Fig. 4
// experiment.
func Fig4Workload(spec Fig4Spec) ([]*workflow.Workflow, []workflow.AdHoc, error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	shapes := []Shape{ShapeFanOut, ShapeDiamond, ShapeMontage, ShapeEpigenomics, ShapeRandom}
	wfs := make([]*workflow.Workflow, 0, spec.Workflows)
	for i := 0; i < spec.Workflows; i++ {
		submit := time.Duration(i) * 2 * time.Minute
		w, err := GenerateWorkflow(rng, WorkflowSpec{
			ID:             fmt.Sprintf("wf-%d", i),
			Shape:          shapes[i%len(shapes)],
			Jobs:           spec.JobsPerWorkflow,
			Submit:         submit,
			DeadlineFactor: spec.DeadlineFactor,
		})
		if err != nil {
			return nil, nil, err
		}
		wfs = append(wfs, w)
	}
	// Ad-hoc jobs are wide and short — interactive scans and joins that
	// want a large slice of the cluster at once (the workloads the paper's
	// introduction motivates). Width is what separates the schedulers: a
	// fair share or an EDF leftover throttles a wide job hard, while
	// FlowTime's flattened deadline skyline leaves it most of the cluster.
	adhoc, err := GenerateAdHoc(rng, AdHocSpec{
		Count:            spec.AdHocCount,
		MeanInterarrival: spec.AdHocMeanGap,
		MinTasks:         8,
		MaxTasks:         32,
		MinTaskDur:       20 * time.Second,
		MaxTaskDur:       90 * time.Second,
		Demand:           resource.New(1, 2048),
	})
	if err != nil {
		return nil, nil, err
	}
	return wfs, adhoc, nil
}

// TotalWork returns the summed estimated volume of a set of workflows, for
// sizing clusters in tests and benchmarks.
func TotalWork(wfs []*workflow.Workflow, slot time.Duration) resource.Vector {
	var total resource.Vector
	for _, w := range wfs {
		for i := 0; i < w.NumJobs(); i++ {
			total = total.Add(w.Job(i).Volume(slot))
		}
	}
	return total
}

var _ = math.MaxFloat64 // keep math imported for future tuning knobs
