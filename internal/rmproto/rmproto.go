// Package rmproto defines the JSON wire protocol of the miniature
// YARN-like resource manager (see internal/rmserver): node registration
// and heartbeats, workload submission, and status reporting. The paper
// deployed FlowTime inside YARN's resource manager; this protocol stands
// in for that integration surface.
package rmproto

import (
	"fmt"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/trace"
)

// Resources is the wire form of a resource vector.
type Resources struct {
	VCores   int64 `json:"vcores"`
	MemoryMB int64 `json:"memory_mb"`
}

// FromVector converts an internal vector to wire form.
func FromVector(v resource.Vector) Resources {
	return Resources{
		VCores:   v.Get(resource.VCores),
		MemoryMB: v.Get(resource.MemoryMB),
	}
}

// ToVector converts wire form to an internal vector.
func (r Resources) ToVector() resource.Vector {
	return resource.New(r.VCores, r.MemoryMB)
}

// Validate checks non-negativity.
func (r Resources) Validate() error {
	if r.VCores < 0 || r.MemoryMB < 0 {
		return fmt.Errorf("rmproto: negative resources %+v", r)
	}
	return nil
}

// RegisterNodeRequest announces a node manager to the resource manager.
type RegisterNodeRequest struct {
	NodeID   string    `json:"node_id"`
	Capacity Resources `json:"capacity"`
}

// RegisterNodeResponse acknowledges registration.
type RegisterNodeResponse struct {
	// HeartbeatMs is the interval the node should heartbeat at.
	HeartbeatMs int64 `json:"heartbeat_ms"`
}

// Quantum is one slot-sized work lease: the node runs the lease for one
// scheduling slot and reports it completed on its next heartbeat. Slot
// leases rather than task-length containers keep the protocol aligned
// with the paper's slot-based formulation (§V).
type Quantum struct {
	ID    string    `json:"id"`
	JobID string    `json:"job_id"`
	Grant Resources `json:"grant"`
	// DeadlineSlot is the RM slot by which the lease must be confirmed;
	// past it the RM reclaims the lease and requeues its volume. Zero
	// means the RM has lease expiry disabled.
	DeadlineSlot int64 `json:"deadline_slot,omitempty"`
}

// HeartbeatRequest reports node liveness and completed quanta.
type HeartbeatRequest struct {
	NodeID    string   `json:"node_id"`
	Completed []string `json:"completed,omitempty"`
}

// HeartbeatResponse carries new work for the node.
type HeartbeatResponse struct {
	Launch []Quantum `json:"launch,omitempty"`
}

// SubmitWorkflowRequest submits one deadline-aware workflow, reusing the
// trace schema.
type SubmitWorkflowRequest struct {
	Workflow trace.WorkflowRecord `json:"workflow"`
}

// SubmitAdHocRequest submits one ad-hoc job.
type SubmitAdHocRequest struct {
	Job trace.AdHocRecord `json:"job"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	Accepted bool   `json:"accepted"`
	ID       string `json:"id"`
	// BestEffort is true when the workflow was admitted without a
	// feasible deadline decomposition (admission control): its jobs run
	// from leftover capacity and the deadline is not guaranteed.
	BestEffort bool `json:"best_effort,omitempty"`
}

// JobStatus reports one job's state.
type JobStatus struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"` // "deadline" or "adhoc"
	WorkflowID string `json:"workflow_id,omitempty"`
	State      string `json:"state"` // "pending", "running", "completed"
	// Delivered and Total expose the job's confirmed volume against its
	// required volume, so exactly-once delivery is externally checkable
	// (a double-counted confirm would show Delivered > Total).
	Delivered Resources `json:"delivered"`
	Total     Resources `json:"total"`
	// DeadlineSec and CompletedSec are offsets from the RM epoch.
	DeadlineSec  int64 `json:"deadline_sec,omitempty"`
	CompletedSec int64 `json:"completed_sec,omitempty"`
	Missed       bool  `json:"missed,omitempty"`
	// BestEffort marks jobs admitted without a feasible decomposition.
	BestEffort bool `json:"best_effort,omitempty"`
}

// StatusResponse is the cluster status snapshot.
type StatusResponse struct {
	// Slot is the RM's current scheduling slot.
	Slot int64 `json:"slot"`
	// Nodes is the number of live node managers.
	Nodes int `json:"nodes"`
	// Capacity is the current total cluster capacity.
	Capacity Resources `json:"capacity"`
	// Jobs lists all known jobs.
	Jobs []JobStatus `json:"jobs"`
	// Draining is true once a drain has begun: the RM stops issuing new
	// leases and waits for in-flight quanta to confirm or expire.
	Draining bool `json:"draining,omitempty"`
	// OutstandingLeases is the number of issued-but-unconfirmed quanta.
	OutstandingLeases int `json:"outstanding_leases"`
	// Faults carries the RM's fault-tolerance counters.
	Faults FaultCounters `json:"faults"`
	// Degradation is the scheduler's planner-ladder telemetry, present
	// only when the scheduler maintains a degradation ladder (FlowTime).
	Degradation *DegradationStatus `json:"degradation,omitempty"`
	// Recovery summarizes the crash recovery the RM performed at startup;
	// present only when the RM started from a state directory.
	Recovery *RecoveryStatus `json:"recovery,omitempty"`
	// Durability carries WAL/snapshot counters; present only when the RM
	// runs with a state store attached.
	Durability *DurabilityStatus `json:"durability,omitempty"`
	// Replication reports the RM's role in a primary/follower pair;
	// present only when the RM runs with a state store attached.
	Replication *ReplicationStatus `json:"replication,omitempty"`
	// Plan reports the RM's durable live plan (streamed from the
	// scheduler as diffs; see internal/plan); present when the scheduler
	// streams plans or a plan was recovered from the store.
	Plan *PlanStatus `json:"plan,omitempty"`
	// Overload reports admission-control and load-shedding state;
	// present whenever overload protection is enabled (the default).
	Overload *OverloadStatus `json:"overload,omitempty"`
	// Watchdog reports the liveness watchdogs (stuck ticks, replication
	// lag); present whenever any watchdog is armed.
	Watchdog *WatchdogStatus `json:"watchdog,omitempty"`
}

// PlanStatus reports the RM's durable live plan: the scheduler's
// multi-slot plan, reconstructed from journaled diffs.
type PlanStatus struct {
	// Rev is the live plan's revision (0 before the first replan).
	Rev int64 `json:"rev"`
	// From and NSlots bound the plan window in absolute slots.
	From   int64 `json:"from"`
	NSlots int64 `json:"n_slots"`
	// Jobs is the number of jobs holding allocations in the plan.
	Jobs int `json:"jobs"`
	// DiffsApplied and Rebases mirror the plan fault counters: diffs
	// applied transactionally, and wholesale rebases after a broken
	// revision chain (typically one per crash recovery).
	DiffsApplied int64 `json:"diffs_applied"`
	Rebases      int64 `json:"rebases"`
	// AdHoc reports the lock-free ad-hoc admission gate; present only
	// when the gate is enabled.
	AdHoc *AdHocQueueStatus `json:"adhoc,omitempty"`
}

// AdHocQueueStatus reports the ad-hoc admission gate's counters.
type AdHocQueueStatus struct {
	Admitted int64 `json:"admitted"`
	Rejected int64 `json:"rejected"`
	Rebases  int64 `json:"rebases"`
	// Rev is the plan revision the gate's current leftover profile was
	// built from (-1 before the first plan).
	Rev int64 `json:"rev"`
}

// OverloadStatus reports the RM's admission-control state: how much is
// queued right now and what has been shed, by reason, since start.
type OverloadStatus struct {
	// ShedTotal counts requests rejected with CodeOverloaded.
	ShedTotal int64 `json:"shed_total"`
	// ShedByReason breaks ShedTotal down: "queue_full" (the bounded
	// admission queue overflowed), "queue_timeout" (the request would
	// have waited past the deadline-aware budget), "priority" (a
	// submission was sacrificed while confirms were queued).
	ShedByReason map[string]int64 `json:"shed_by_reason,omitempty"`
	// QueueDepth is the number of requests currently waiting for an
	// admission slot, across all classes.
	QueueDepth int64 `json:"queue_depth"`
	// SubmitInflight and ConfirmInflight are the currently-admitted
	// request counts per priority class.
	SubmitInflight  int64 `json:"submit_inflight"`
	ConfirmInflight int64 `json:"confirm_inflight"`
	// RetryAfterMs is the backoff hint currently handed to shed clients.
	RetryAfterMs int64 `json:"retry_after_ms"`
}

// WatchdogStatus reports the RM's liveness watchdogs.
type WatchdogStatus struct {
	// Trips counts watchdog incidents by kind ("stuck_tick",
	// "repl_lag"). A trip is latched once per excursion, not per check.
	Trips map[string]int64 `json:"trips,omitempty"`
	// StuckTick is true while the tick watchdog considers the slot
	// clock wedged; LastTickAgoMs is how long ago the last successful
	// tick ran (-1 before the first tick).
	StuckTick     bool  `json:"stuck_tick,omitempty"`
	LastTickAgoMs int64 `json:"last_tick_ago_ms"`
	// ReplLagExceeded is true while the replication-lag watchdog is
	// tripping (primary role, follower seen, lag over threshold).
	ReplLagExceeded bool `json:"repl_lag_exceeded,omitempty"`
}

// ReplicationStatus reports one RM's position in a replicated pair.
type ReplicationStatus struct {
	// Role is "primary" or "follower"; RoleCode is 1 or 0 for metrics.
	Role     string `json:"role"`
	RoleCode int    `json:"role_code"`
	// Epoch is the leadership epoch. Every promotion increments it; a
	// node presenting a higher epoch fences the current primary.
	Epoch int64 `json:"epoch"`
	// Fenced is true on a deposed primary that has rejected leadership:
	// it refuses all mutations until restarted as a replica.
	Fenced bool `json:"fenced,omitempty"`
	// LeaderURL is where this node believes the leader is (followers and
	// fenced primaries only).
	LeaderURL string `json:"leader_url,omitempty"`
	// Watermark is this node's own durable stream position.
	Watermark ReplWatermark `json:"watermark"`
	// Follower* report the primary's view of its follower (primary role
	// only, after the follower's first ship request).
	FollowerSeen      bool          `json:"follower_seen,omitempty"`
	FollowerWatermark ReplWatermark `json:"follower_watermark,omitempty"`
	// LagRecords/LagBytes are how far the follower trails the primary's
	// stream head (0 when no follower has checked in).
	LagRecords int64 `json:"lag_records"`
	LagBytes   int64 `json:"lag_bytes"`
}

// ReplWatermark is the wire form of a store watermark: a snapshot
// generation plus the count of WAL records (and framed bytes) of that
// generation already held.
type ReplWatermark struct {
	Gen     int64 `json:"gen"`
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
}

// ShipRequest is a follower's poll for the next log batch. Epoch is the
// follower's current leadership epoch — the fencing token: a primary
// that receives a request with a higher epoch knows it has been deposed
// and fences itself.
type ShipRequest struct {
	Epoch int64         `json:"epoch"`
	From  ReplWatermark `json:"from"`
	// MaxBytes caps the batch payload (0 = server default).
	MaxBytes int `json:"max_bytes,omitempty"`
	// FollowerURL is where the polling follower can be reached, so a
	// primary fenced by this request can point clients at it.
	FollowerURL string `json:"follower_url,omitempty"`
}

// ShipResponse carries one replication batch (the wire form of the
// store's ShipBatch), stamped with the primary's epoch so a follower
// rejects late batches from a deposed primary.
type ShipResponse struct {
	Epoch       int64         `json:"epoch"`
	SnapInstall bool          `json:"snap_install,omitempty"`
	Gen         int64         `json:"gen"`
	Snapshot    []byte        `json:"snapshot,omitempty"`
	FromSeq     int64         `json:"from_seq"`
	Records     [][]byte      `json:"records,omitempty"`
	Head        ReplWatermark `json:"head"`
}

// PromoteRequest asks a follower to take over as primary.
type PromoteRequest struct{}

// PromoteResponse acknowledges a promotion.
type PromoteResponse struct {
	Role  string `json:"role"`
	Epoch int64  `json:"epoch"`
	Slot  int64  `json:"slot"`
	// OrphanLeasesRequeued counts leases the promotion reclaimed (they
	// were bound to the old primary's node registrations).
	OrphanLeasesRequeued int `json:"orphan_leases_requeued"`
}

// FenceRequest tells a (deposed) primary that a higher epoch exists.
type FenceRequest struct {
	Epoch  int64  `json:"epoch"`
	Leader string `json:"leader,omitempty"`
}

// FenceResponse acknowledges a fence.
type FenceResponse struct {
	Fenced bool  `json:"fenced"`
	Epoch  int64 `json:"epoch"`
}

// RecoveryStatus summarizes the crash recovery performed at RM startup.
type RecoveryStatus struct {
	// Performed is true whenever the RM started with a state store, even
	// if the directory was empty.
	Performed bool `json:"performed"`
	// FromSnapshot is true when a snapshot was restored; SnapshotSlot is
	// the slot clock it captured.
	FromSnapshot bool  `json:"from_snapshot,omitempty"`
	SnapshotSlot int64 `json:"snapshot_slot,omitempty"`
	// RecordsReplayed is the number of WAL records replayed on top of the
	// snapshot (or the empty state).
	RecordsReplayed int `json:"records_replayed"`
	// WALTruncated is true when a torn or corrupt WAL tail was cut;
	// TruncatedBytes is how much was discarded.
	WALTruncated   bool  `json:"wal_truncated,omitempty"`
	TruncatedBytes int64 `json:"truncated_bytes,omitempty"`
	// OrphanLeasesRequeued counts in-flight leases reclaimed at recovery
	// (their node bindings died with the previous process).
	OrphanLeasesRequeued int `json:"orphan_leases_requeued,omitempty"`
	// StaleFilesRemoved counts leftover files from older generations or
	// interrupted rotations cleaned up at startup.
	StaleFilesRemoved int `json:"stale_files_removed,omitempty"`
	// Slot is the slot clock after recovery; Micros is how long recovery
	// took (store scan plus replay).
	Slot   int64 `json:"slot"`
	Micros int64 `json:"micros"`
}

// DurabilityStatus carries the state store's cumulative I/O counters.
type DurabilityStatus struct {
	FsyncPolicy       string `json:"fsync_policy"`
	Generation        int64  `json:"generation"`
	WALRecords        int64  `json:"wal_records"`
	WALBytes          int64  `json:"wal_bytes"`
	Fsyncs            int64  `json:"fsyncs"`
	FsyncTotalMicros  int64  `json:"fsync_total_micros"`
	FsyncMaxMicros    int64  `json:"fsync_max_micros"`
	Snapshots         int64  `json:"snapshots"`
	LastSnapshotBytes int    `json:"last_snapshot_bytes"`
}

// DegradationStatus is the wire form of sched.DegradationStatus.
type DegradationStatus struct {
	// Level is the ladder rung of the current plan ("full", "minmax",
	// "greedy"); LevelCode is its numeric form (0, 1, 2) for metrics.
	Level     string `json:"level"`
	LevelCode int    `json:"level_code"`
	// Reason is why the ladder last stepped down (empty at full).
	Reason          string `json:"reason,omitempty"`
	MinMaxFallbacks int64  `json:"minmax_fallbacks"`
	GreedyFallbacks int64  `json:"greedy_fallbacks"`
	InvalidPlans    int64  `json:"invalid_plans"`
	// LPWarmStarts and LPColdStarts count inner LP solves that reused a
	// kept simplex basis versus building one from scratch.
	LPWarmStarts int64 `json:"lp_warm_starts"`
	LPColdStarts int64 `json:"lp_cold_starts"`
}

// FaultCounters tallies control-plane fault handling since RM start.
type FaultCounters struct {
	// RequeuedQuanta counts leases reclaimed (node eviction, node
	// re-registration, or lease expiry) and returned to the job pool.
	RequeuedQuanta int64 `json:"requeued_quanta"`
	// ExpiredNodes counts node managers evicted for missed heartbeats.
	ExpiredNodes int64 `json:"expired_nodes"`
	// SchedulerPanics counts scheduler invocations that panicked and were
	// converted into no-grant slots.
	SchedulerPanics int64 `json:"scheduler_panics"`
	// StaleConfirms counts completion reports for quanta the RM no longer
	// tracks (already confirmed, requeued, or from a prior incarnation).
	StaleConfirms int64 `json:"stale_confirms"`
	// BestEffortAdmissions counts workflows admitted without a feasible
	// deadline decomposition (see SubmitResponse.BestEffort).
	BestEffortAdmissions int64 `json:"best_effort_admissions"`
	// PlanDiffsApplied counts plan diffs applied to the live plan;
	// PlanRebases counts wholesale rebases after a broken diff chain.
	PlanDiffsApplied int64 `json:"plan_diffs_applied,omitempty"`
	PlanRebases      int64 `json:"plan_rebases,omitempty"`
}

// DrainRequest asks the RM to stop issuing leases. With WaitMs > 0 the
// call blocks up to that long for in-flight quanta to confirm or expire.
type DrainRequest struct {
	WaitMs int64 `json:"wait_ms,omitempty"`
}

// DrainResponse reports drain progress.
type DrainResponse struct {
	Draining bool `json:"draining"`
	// Complete is true when no leases remain outstanding.
	Complete bool `json:"complete"`
	// OutstandingLeases is the number of still-unconfirmed quanta.
	OutstandingLeases int `json:"outstanding_leases"`
	// UnfinishedJobs lists jobs that have not completed, i.e. work that a
	// shutdown at this point would strand.
	UnfinishedJobs []string `json:"unfinished_jobs,omitempty"`
}

// Error is the wire form of an error response.
type Error struct {
	Message string `json:"error"`
	// Code is a machine-readable error class; see the Code* constants.
	Code string `json:"code,omitempty"`
	// Leader, set with CodeNotLeader, is the URL of the node the server
	// believes is the current leader (may be empty).
	Leader string `json:"leader,omitempty"`
	// RetryAfterMs, set with CodeOverloaded, is how long the client
	// should wait before retrying. It mirrors the HTTP Retry-After
	// header so the hint survives any transport that only preserves the
	// body (and vice versa).
	RetryAfterMs int64 `json:"retry_after_ms,omitempty"`
}

// Machine-readable error codes.
const (
	// CodeUnknownNode is returned to heartbeats from nodes the RM does not
	// know (never registered, expired, or the RM restarted). The node
	// agent should re-register and resume.
	CodeUnknownNode = "unknown_node"
	// CodeNotLeader is returned (with HTTP 503) to mutations sent to a
	// follower or a fenced ex-primary. The Leader field, when set, points
	// at the node to redirect to; agents rotate through their RM list
	// otherwise.
	CodeNotLeader = "not_leader"
	// CodeCommitFailed is returned (with HTTP 503) when the RM could not
	// make a mutation's WAL record durable. The mutation did not take
	// effect durably; clients should back off and retry rather than
	// hot-loop against a failing disk.
	CodeCommitFailed = "commit_failed"
	// CodeOverloaded is returned (with HTTP 503 + Retry-After) when the
	// RM sheds a request under overload: the admission queue is full,
	// the request would wait past its usefulness, or lower-priority
	// traffic is being sacrificed for confirms. The request did NOT take
	// effect; clients honor Retry-After and spend retry budget.
	CodeOverloaded = "overloaded"
)

// Heartbeat timing defaults.
const (
	// DefaultSlot is the RM's default scheduling slot.
	DefaultSlot = 10 * time.Second
)

// API paths.
const (
	PathRegister  = "/v1/nodes/register"
	PathHeartbeat = "/v1/nodes/heartbeat"
	PathWorkflows = "/v1/workflows"
	PathAdHoc     = "/v1/adhoc"
	PathStatus    = "/v1/status"
	PathTick      = "/v1/tick"
	PathDrain     = "/v1/drain"
	// Replication control plane (primary/follower pairs).
	PathShip    = "/repl/v1/ship"
	PathPromote = "/repl/v1/promote"
	PathFence   = "/repl/v1/fence"
)
