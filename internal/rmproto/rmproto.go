// Package rmproto defines the JSON wire protocol of the miniature
// YARN-like resource manager (see internal/rmserver): node registration
// and heartbeats, workload submission, and status reporting. The paper
// deployed FlowTime inside YARN's resource manager; this protocol stands
// in for that integration surface.
package rmproto

import (
	"fmt"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/trace"
)

// Resources is the wire form of a resource vector.
type Resources struct {
	VCores   int64 `json:"vcores"`
	MemoryMB int64 `json:"memory_mb"`
}

// FromVector converts an internal vector to wire form.
func FromVector(v resource.Vector) Resources {
	return Resources{
		VCores:   v.Get(resource.VCores),
		MemoryMB: v.Get(resource.MemoryMB),
	}
}

// ToVector converts wire form to an internal vector.
func (r Resources) ToVector() resource.Vector {
	return resource.New(r.VCores, r.MemoryMB)
}

// Validate checks non-negativity.
func (r Resources) Validate() error {
	if r.VCores < 0 || r.MemoryMB < 0 {
		return fmt.Errorf("rmproto: negative resources %+v", r)
	}
	return nil
}

// RegisterNodeRequest announces a node manager to the resource manager.
type RegisterNodeRequest struct {
	NodeID   string    `json:"node_id"`
	Capacity Resources `json:"capacity"`
}

// RegisterNodeResponse acknowledges registration.
type RegisterNodeResponse struct {
	// HeartbeatMs is the interval the node should heartbeat at.
	HeartbeatMs int64 `json:"heartbeat_ms"`
}

// Quantum is one slot-sized work lease: the node runs the lease for one
// scheduling slot and reports it completed on its next heartbeat. Slot
// leases rather than task-length containers keep the protocol aligned
// with the paper's slot-based formulation (§V).
type Quantum struct {
	ID    string    `json:"id"`
	JobID string    `json:"job_id"`
	Grant Resources `json:"grant"`
}

// HeartbeatRequest reports node liveness and completed quanta.
type HeartbeatRequest struct {
	NodeID    string   `json:"node_id"`
	Completed []string `json:"completed,omitempty"`
}

// HeartbeatResponse carries new work for the node.
type HeartbeatResponse struct {
	Launch []Quantum `json:"launch,omitempty"`
}

// SubmitWorkflowRequest submits one deadline-aware workflow, reusing the
// trace schema.
type SubmitWorkflowRequest struct {
	Workflow trace.WorkflowRecord `json:"workflow"`
}

// SubmitAdHocRequest submits one ad-hoc job.
type SubmitAdHocRequest struct {
	Job trace.AdHocRecord `json:"job"`
}

// SubmitResponse acknowledges a submission.
type SubmitResponse struct {
	Accepted bool   `json:"accepted"`
	ID       string `json:"id"`
}

// JobStatus reports one job's state.
type JobStatus struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"` // "deadline" or "adhoc"
	WorkflowID string `json:"workflow_id,omitempty"`
	State      string `json:"state"` // "pending", "running", "completed"
	// DeadlineSec and CompletedSec are offsets from the RM epoch.
	DeadlineSec  int64 `json:"deadline_sec,omitempty"`
	CompletedSec int64 `json:"completed_sec,omitempty"`
	Missed       bool  `json:"missed,omitempty"`
}

// StatusResponse is the cluster status snapshot.
type StatusResponse struct {
	// Slot is the RM's current scheduling slot.
	Slot int64 `json:"slot"`
	// Nodes is the number of live node managers.
	Nodes int `json:"nodes"`
	// Capacity is the current total cluster capacity.
	Capacity Resources `json:"capacity"`
	// Jobs lists all known jobs.
	Jobs []JobStatus `json:"jobs"`
}

// Error is the wire form of an error response.
type Error struct {
	Message string `json:"error"`
}

// Heartbeat timing defaults.
const (
	// DefaultSlot is the RM's default scheduling slot.
	DefaultSlot = 10 * time.Second
)

// API paths.
const (
	PathRegister  = "/v1/nodes/register"
	PathHeartbeat = "/v1/nodes/heartbeat"
	PathWorkflows = "/v1/workflows"
	PathAdHoc     = "/v1/adhoc"
	PathStatus    = "/v1/status"
	PathTick      = "/v1/tick"
)
