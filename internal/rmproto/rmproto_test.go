package rmproto

import (
	"encoding/json"
	"testing"

	"flowtime/internal/resource"
)

func TestResourcesRoundTrip(t *testing.T) {
	v := resource.New(8, 16384)
	wire := FromVector(v)
	if got := wire.ToVector(); got != v {
		t.Errorf("round trip = %v, want %v", got, v)
	}
	if err := wire.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := (Resources{VCores: -1}).Validate(); err == nil {
		t.Error("negative resources accepted")
	}
}

func TestWireJSONStability(t *testing.T) {
	// The wire format is part of the public protocol; field names must not
	// drift.
	q := Quantum{ID: "q-1", JobID: "wf/j#0", Grant: Resources{VCores: 2, MemoryMB: 4096}}
	raw, err := json.Marshal(q)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want := `{"id":"q-1","job_id":"wf/j#0","grant":{"vcores":2,"memory_mb":4096}}`
	if string(raw) != want {
		t.Errorf("wire JSON = %s, want %s", raw, want)
	}

	hb := HeartbeatRequest{NodeID: "n1", Completed: []string{"q-1"}}
	raw, err = json.Marshal(hb)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want = `{"node_id":"n1","completed":["q-1"]}`
	if string(raw) != want {
		t.Errorf("wire JSON = %s, want %s", raw, want)
	}
}

func TestFaultWireJSONStability(t *testing.T) {
	// Fault-tolerance additions are protocol surface too: lease deadlines
	// on quanta, drain responses, and coded errors must not drift.
	q := Quantum{ID: "q-1", JobID: "wf/j#0", Grant: Resources{VCores: 2, MemoryMB: 4096}, DeadlineSlot: 7}
	raw, err := json.Marshal(q)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want := `{"id":"q-1","job_id":"wf/j#0","grant":{"vcores":2,"memory_mb":4096},"deadline_slot":7}`
	if string(raw) != want {
		t.Errorf("wire JSON = %s, want %s", raw, want)
	}

	dr := DrainResponse{Draining: true, Complete: false, OutstandingLeases: 3, UnfinishedJobs: []string{"adhoc/q"}}
	raw, err = json.Marshal(dr)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want = `{"draining":true,"complete":false,"outstanding_leases":3,"unfinished_jobs":["adhoc/q"]}`
	if string(raw) != want {
		t.Errorf("wire JSON = %s, want %s", raw, want)
	}

	e := Error{Message: "unknown node", Code: CodeUnknownNode}
	raw, err = json.Marshal(e)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want = `{"error":"unknown node","code":"unknown_node"}`
	if string(raw) != want {
		t.Errorf("wire JSON = %s, want %s", raw, want)
	}
}
