package rmproto

import (
	"encoding/json"
	"testing"

	"flowtime/internal/resource"
)

func TestResourcesRoundTrip(t *testing.T) {
	v := resource.New(8, 16384)
	wire := FromVector(v)
	if got := wire.ToVector(); got != v {
		t.Errorf("round trip = %v, want %v", got, v)
	}
	if err := wire.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := (Resources{VCores: -1}).Validate(); err == nil {
		t.Error("negative resources accepted")
	}
}

func TestWireJSONStability(t *testing.T) {
	// The wire format is part of the public protocol; field names must not
	// drift.
	q := Quantum{ID: "q-1", JobID: "wf/j#0", Grant: Resources{VCores: 2, MemoryMB: 4096}}
	raw, err := json.Marshal(q)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want := `{"id":"q-1","job_id":"wf/j#0","grant":{"vcores":2,"memory_mb":4096}}`
	if string(raw) != want {
		t.Errorf("wire JSON = %s, want %s", raw, want)
	}

	hb := HeartbeatRequest{NodeID: "n1", Completed: []string{"q-1"}}
	raw, err = json.Marshal(hb)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	want = `{"node_id":"n1","completed":["q-1"]}`
	if string(raw) != want {
		t.Errorf("wire JSON = %s, want %s", raw, want)
	}
}
