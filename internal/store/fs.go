package store

import (
	"io"
	"os"
	"sort"
)

// FS abstracts the filesystem operations the store performs, so tests
// can run the durability paths against injected disk faults (see
// FaultFS) instead of only against process kills. Production uses OSFS.
//
// The interface is deliberately narrow: exactly the operations the WAL,
// snapshot, and recovery code paths need, nothing speculative.
type FS interface {
	// MkdirAll creates the state directory (and parents) if absent.
	MkdirAll(dir string) error
	// ReadDir lists the file names in dir (directories excluded).
	ReadDir(dir string) ([]string, error)
	// ReadFile reads the whole file at path.
	ReadFile(path string) ([]byte, error)
	// OpenAppend opens path for appending, creating it if absent. WAL
	// segments are written through handles from OpenAppend.
	OpenAppend(path string) (File, error)
	// Create opens path truncated for writing (snapshot temp files).
	Create(path string) (File, error)
	// Rename atomically moves oldpath to newpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts the file at path to size bytes (torn-tail repair).
	Truncate(path string, size int64) error
	// SyncDir fsyncs a directory so renames and creates in it are
	// durable.
	SyncDir(dir string) error
}

// File is one open store file: sequential writes, fsync, close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the production filesystem: direct OS calls.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
