package store

import (
	"errors"
	"fmt"
	"io/fs"
)

// Watermark identifies a position in a store's record stream: the
// snapshot generation plus how many records (and framed bytes) of that
// generation's WAL segment precede the position. A follower's watermark
// tells the primary exactly what to ship next; persisted frame counts
// survive restarts because they are recomputed from the segment files
// themselves during Open.
type Watermark struct {
	Gen     int64 `json:"gen"`
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
}

func (w Watermark) String() string {
	return fmt.Sprintf("gen %d rec %d (%d B)", w.Gen, w.Records, w.Bytes)
}

// Behind reports whether w is strictly behind head in the same stream.
func (w Watermark) Behind(head Watermark) bool {
	return w.Gen < head.Gen || (w.Gen == head.Gen && w.Records < head.Records)
}

// ShipBatch is one unit of primary→follower log shipping, produced by
// ShipFrom and consumed by Ingest. Two shapes:
//
//   - Incremental: SnapInstall false; Records are the WAL payloads of
//     generation Gen starting at index FromSeq.
//   - Snapshot install: SnapInstall true; the follower replaces its
//     entire state directory with Snapshot at generation Gen (Snapshot
//     nil means the empty state of generation 0), then applies Records
//     from index 0.
//
// Head is the shipper's own watermark at read time, for lag reporting.
type ShipBatch struct {
	SnapInstall bool      `json:"snap_install,omitempty"`
	Gen         int64     `json:"gen"`
	Snapshot    []byte    `json:"snapshot,omitempty"`
	FromSeq     int64     `json:"from_seq"`
	Records     [][]byte  `json:"records,omitempty"`
	Head        Watermark `json:"head"`
}

// Empty reports whether the batch carries nothing to apply.
func (b ShipBatch) Empty() bool { return !b.SnapInstall && len(b.Records) == 0 }

// ErrShipMismatch is returned by Ingest when a batch does not align
// with the follower store's current position (wrong generation or a
// sequence gap). The replicator recovers by re-reading its watermark
// and requesting a fresh batch — the primary responds with a snapshot
// install if the streams have truly diverged.
var ErrShipMismatch = errors.New("store: ship batch does not align with follower position")

// Watermark returns the store's current stream position: everything a
// fully caught-up follower would hold.
func (s *Store) Watermark() Watermark {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, bytes := s.w.watermark()
	return Watermark{Gen: s.gen, Records: rec, Bytes: bytes}
}

// ShipFrom reads the batch a follower at position `from` needs next, up
// to roughly maxBytes of record payload per call (at least one record
// is always included; maxBytes <= 0 selects 1 MiB). A follower on the
// current generation gets an incremental batch; a follower on another
// generation — or ahead of this store, which happens when a restarted
// primary lost an unsynced tail the follower had already received —
// gets a snapshot install that resets it to this store's stream.
func (s *Store) ShipFrom(from Watermark, maxBytes int) (ShipBatch, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ShipBatch{}, errors.New("store: closed")
	}
	headRec, headBytes := s.w.watermark()
	head := Watermark{Gen: s.gen, Records: headRec, Bytes: headBytes}

	if from.Gen == s.gen && from.Records == headRec {
		return ShipBatch{Gen: s.gen, FromSeq: from.Records, Head: head}, nil
	}

	// Read the active segment. Concurrent appends may leave a torn tail
	// in the read; DecodeAll's clean prefix is exactly the shippable set.
	payloads, err := s.readSegmentLocked(s.gen)
	if err != nil {
		return ShipBatch{}, err
	}

	if from.Gen == s.gen && from.Records <= int64(len(payloads)) {
		recs, n := capBatch(payloads[from.Records:], maxBytes)
		return ShipBatch{
			Gen:     s.gen,
			FromSeq: from.Records,
			Records: recs,
			Head:    head,
		}, n
	}

	// Generation mismatch or follower ahead: reset it with a snapshot
	// install at this store's generation.
	var snapshot []byte
	if s.gen > 0 {
		snapshot, err = readSnapshotFile(s.fs, snapPath(s.dir, s.gen))
		if err != nil {
			return ShipBatch{}, fmt.Errorf("store: ship snapshot gen %d: %w", s.gen, err)
		}
	}
	recs, n := capBatch(payloads, maxBytes)
	return ShipBatch{
		SnapInstall: true,
		Gen:         s.gen,
		Snapshot:    snapshot,
		FromSeq:     0,
		Records:     recs,
		Head:        head,
	}, n
}

// readSegmentLocked decodes the clean prefix of a generation's WAL
// segment. A missing file is the empty segment.
func (s *Store) readSegmentLocked(gen int64) ([][]byte, error) {
	raw, err := s.fs.ReadFile(walPath(s.dir, gen))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	payloads, _, _ := DecodeAll(raw)
	return payloads, nil
}

// capBatch truncates a payload slice to roughly maxBytes, always
// keeping at least one record so progress is guaranteed.
func capBatch(payloads [][]byte, maxBytes int) ([][]byte, error) {
	total := 0
	for i, p := range payloads {
		total += len(p) + frameHeaderLen
		if total > maxBytes && i > 0 {
			return payloads[:i], nil
		}
	}
	return payloads, nil
}

// Ingest applies one shipped batch to a follower store, making the
// records durable (the batch is fsynced before Ingest returns, so the
// watermark the follower reports never outruns its disk). A batch that
// does not align with the store's position returns ErrShipMismatch;
// already-held records within an otherwise aligned batch are skipped.
// The caller replays the newly ingested payloads into its own state
// machine after Ingest returns.
//
// Returns the payloads that were actually new (suffix of batch.Records)
// and the store's watermark after the batch.
func (s *Store) Ingest(batch ShipBatch) ([][]byte, Watermark, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, Watermark{}, errors.New("store: closed")
	}
	if batch.SnapInstall {
		if err := s.installSnapshotLocked(batch.Gen, batch.Snapshot); err != nil {
			return nil, Watermark{}, err
		}
	}
	if batch.Gen != s.gen {
		return nil, Watermark{}, fmt.Errorf("%w: batch gen %d, store gen %d", ErrShipMismatch, batch.Gen, s.gen)
	}
	cur, _ := s.w.watermark()
	recs := batch.Records
	from := batch.FromSeq
	if from < cur {
		overlap := cur - from
		if overlap >= int64(len(recs)) {
			recs = nil // every record already held
		} else {
			recs = recs[overlap:]
		}
		from = cur
	}
	if from != cur {
		return nil, Watermark{}, fmt.Errorf("%w: batch starts at %d, store holds %d records", ErrShipMismatch, batch.FromSeq, cur)
	}
	for _, p := range recs {
		if _, err := s.w.append(p); err != nil {
			return nil, Watermark{}, err
		}
	}
	if len(recs) > 0 {
		if err := s.w.syncNow(); err != nil {
			return nil, Watermark{}, err
		}
	}
	rec, bytes := s.w.watermark()
	return recs, Watermark{Gen: s.gen, Records: rec, Bytes: bytes}, nil
}

// installSnapshotLocked resets the store to a shipped snapshot at the
// given generation: the current segment is retired and removed (its
// records are not part of the shipped stream), the snapshot is written
// under the shipped generation, and a fresh WAL segment is opened for
// the records that follow. A crash mid-install leaves a directory Open
// can always recover: either the old generation's snapshot or the new
// one, never a half state.
func (s *Store) installSnapshotLocked(gen int64, snapshot []byte) error {
	old, oldGen := s.w, s.gen
	old.mu.Lock()
	s.prevRecords += old.records
	s.prevBytes += old.bytes
	s.prevFsyncs += old.fsyncs
	s.prevFsyncTotal += old.fsyncTotal
	if old.fsyncMax > s.prevFsyncMax {
		s.prevFsyncMax = old.fsyncMax
	}
	old.mu.Unlock()
	_ = old.close()
	_ = s.fs.Remove(walPath(s.dir, oldGen))
	if oldGen != gen {
		_ = s.fs.Remove(snapPath(s.dir, oldGen))
	}

	if gen > 0 {
		if err := writeSnapshotFile(s.fs, snapPath(s.dir, gen), snapshot); err != nil {
			return err
		}
	}
	nw, err := openWAL(s.fs, walPath(s.dir, gen), s.samples)
	if err != nil {
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		_ = nw.close()
		return err
	}
	s.w, s.gen = nw, gen
	s.snapshots++
	s.lastSnapLen = len(snapshot)
	return nil
}
