package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord feeds arbitrary bytes to the frame decoder: it must
// never panic, and whenever it claims success the decoded payload must
// re-encode to exactly the bytes it consumed (so a successful decode is
// always a faithful one, and corruption can only ever surface as an
// error, not as silently wrong data).
func FuzzDecodeRecord(f *testing.F) {
	good, _ := EncodeRecord([]byte("seed-payload"))
	f.Add(good)
	f.Add(good[:len(good)-3])                         // torn tail
	f.Add([]byte{})                                   // empty
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // insane length
	flipped := append([]byte(nil), good...)
	flipped[frameHeaderLen] ^= 1
	f.Add(flipped) // payload bit flip

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n < frameHeaderLen || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		reenc, eerr := EncodeRecord(payload)
		if eerr != nil {
			t.Fatalf("re-encode of decoded payload failed: %v", eerr)
		}
		if !bytes.Equal(reenc, data[:n]) {
			t.Fatalf("decode/encode not faithful: got %x want %x", reenc, data[:n])
		}
	})
}

// FuzzRoundTripWithCorruption round-trips a payload through the framing
// and then verifies that flipping any single byte of the frame is
// detected — the CRC must catch every 1-byte corruption.
func FuzzRoundTripWithCorruption(f *testing.F) {
	f.Add([]byte("hello"), uint16(0))
	f.Add([]byte{}, uint16(3))
	f.Add(bytes.Repeat([]byte{0xab}, 300), uint16(150))

	f.Fuzz(func(t *testing.T, payload []byte, flipAt uint16) {
		if len(payload) > 1<<16 {
			payload = payload[:1<<16]
		}
		frame, err := EncodeRecord(payload)
		if err != nil {
			t.Fatalf("EncodeRecord: %v", err)
		}
		got, n, err := DecodeRecord(frame)
		if err != nil || n != len(frame) || !bytes.Equal(got, payload) {
			t.Fatalf("clean round trip failed: n=%d err=%v", n, err)
		}
		bad := append([]byte(nil), frame...)
		i := int(flipAt) % len(bad)
		bad[i] ^= 0x01
		decoded, _, err := DecodeRecord(bad)
		if err == nil && bytes.Equal(decoded, payload) {
			// Only acceptable if the flip landed in the length prefix's
			// high bytes AND still decoded identical bytes — impossible:
			// a changed length changes the consumed region or the CRC
			// coverage, and a changed CRC/payload fails the checksum.
			t.Fatalf("1-byte corruption at %d went undetected", i)
		}
	})
}

// FuzzDecodeAll checks the multi-record scanner never panics and always
// reports a truncation offset inside the input.
func FuzzDecodeAll(f *testing.F) {
	a, _ := EncodeRecord([]byte("first"))
	b, _ := EncodeRecord([]byte("second"))
	f.Add(append(append([]byte{}, a...), b...))
	f.Add(append(append([]byte{}, a...), b[:4]...))

	f.Fuzz(func(t *testing.T, data []byte) {
		payloads, good, err := DecodeAll(data)
		if good < 0 || good > len(data) {
			t.Fatalf("good offset %d out of range [0,%d]", good, len(data))
		}
		if err == nil && good != len(data) {
			t.Fatalf("nil error but only %d of %d bytes consumed", good, len(data))
		}
		// The clean prefix must re-decode to the same payloads.
		re, regood, _ := DecodeAll(data[:good])
		if regood != good || len(re) != len(payloads) {
			t.Fatalf("prefix re-decode mismatch: %d/%d records, %d/%d bytes", len(re), len(payloads), regood, good)
		}
	})
}
