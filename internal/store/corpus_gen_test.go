package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestGenerateFuzzCorpus regenerates the checked-in seed corpora under
// testdata/fuzz/ for the three fuzz targets in this package. It is a
// no-op unless GEN_CORPUS=1 is set:
//
//	GEN_CORPUS=1 go test ./internal/store -run TestGenerateFuzzCorpus
//
// The seeds are crafted frames — valid records of several sizes, torn
// tails at every interesting offset, CRC and length corruptions, and
// multi-record streams — so that short CI fuzz bursts start from deep
// coverage instead of rediscovering the framing from zero.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") != "1" {
		t.Skip("set GEN_CORPUS=1 to regenerate testdata/fuzz seed corpora")
	}

	rec := func(payload []byte) []byte {
		frame, err := EncodeRecord(payload)
		if err != nil {
			t.Fatalf("EncodeRecord: %v", err)
		}
		return frame
	}
	small := rec([]byte("a"))
	empty := rec(nil)
	med := rec(bytes.Repeat([]byte{0x5a}, 100))
	jsonish := rec([]byte(`{"kind":"confirm","id":"q-0001","quanta":3}`))

	crcFlip := append([]byte(nil), small...)
	crcFlip[4] ^= 0xff
	lenFlip := append([]byte(nil), small...)
	lenFlip[0] ^= 0x02
	hugeLen := []byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4}

	writeCorpus(t, "FuzzDecodeRecord", [][]interface{}{
		{small},
		{empty},
		{med},
		{jsonish},
		{small[:frameHeaderLen-1]}, // torn inside the header
		{med[:frameHeaderLen+10]},  // torn inside the payload
		{crcFlip},
		{lenFlip},
		{hugeLen},
		{concat(small, med)}, // trailing bytes beyond one record
	})

	writeCorpus(t, "FuzzRoundTripWithCorruption", [][]interface{}{
		{[]byte(nil), uint16(0)},
		{[]byte("x"), uint16(4)}, // flip lands in the CRC
		{[]byte("payload"), uint16(0)},
		{bytes.Repeat([]byte{0x00}, 64), uint16(40)},
		{bytes.Repeat([]byte{0xff}, 257), uint16(9)},
		{[]byte(`{"kind":"submit"}`), uint16(2)},
	})

	writeCorpus(t, "FuzzDecodeAll", [][]interface{}{
		{[]byte(nil)},
		{small},
		{concat(small, med, jsonish)},
		{concat(small, med[:len(med)-1])}, // torn tail after a clean record
		{concat(empty, empty, empty)},
		{concat(jsonish, crcFlip, small)}, // corruption mid-stream
		{concat(small, hugeLen)},
	})
}

func concat(frames ...[]byte) []byte {
	var out []byte
	for _, f := range frames {
		out = append(out, f...)
	}
	return out
}

// writeCorpus writes one seed file per entry in the Go native fuzz
// corpus format ("go test fuzz v1"), one line per argument.
func writeCorpus(t *testing.T, target string, seeds [][]interface{}) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, args := range seeds {
		var buf bytes.Buffer
		buf.WriteString("go test fuzz v1\n")
		for _, a := range args {
			switch v := a.(type) {
			case []byte:
				fmt.Fprintf(&buf, "[]byte(%s)\n", strconv.Quote(string(v)))
			case uint16:
				fmt.Fprintf(&buf, "uint16(%d)\n", v)
			default:
				t.Fatalf("unsupported corpus arg type %T", a)
			}
		}
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d seeds to %s", len(seeds), dir)
}
