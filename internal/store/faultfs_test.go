package store

import (
	"errors"
	"io"
	"strings"
	"syscall"
	"testing"
	"time"
)

func openFault(t *testing.T, dir string, ffs *FaultFS, policy SyncPolicy) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Policy: policy, FlushInterval: time.Hour, FS: ffs})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestIntervalCrashWindow is the fsync-interval durability contract:
// with -fsync interval, a machine crash loses at most the records
// appended since the last sync — and the survivors are exactly a prefix
// of the append order, never reordered, never duplicated.
func TestIntervalCrashWindow(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s := openFault(t, dir, ffs, SyncInterval)

	appendAll(t, s, "a", "b", "c")
	if err := s.Sync(); err != nil { // the interval flusher fires here
		t.Fatalf("Sync: %v", err)
	}
	appendAll(t, s, "d", "e") // acknowledged but inside the sync window
	if ffs.UnsyncedBytes() == 0 {
		t.Fatal("window records unexpectedly reached disk")
	}

	ffs.Crash()

	s2 := openFault(t, dir, ffs, SyncInterval)
	defer s2.Close()
	got := recordsAsStrings(s2)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want exactly the synced prefix %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered %v, want exactly the synced prefix %v", got, want)
		}
	}
	if s2.Recovery().Truncated {
		t.Error("a lost sync window is not a torn tail; Truncated should be false")
	}
}

// TestIntervalFsyncFaultCrashWindow injects an fsync failure between
// the appends and the crash: the failed sync must not extend the
// durable prefix, and recovery still sees a clean prefix with no
// reordering or duplication.
func TestIntervalFsyncFaultCrashWindow(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s := openFault(t, dir, ffs, SyncInterval)

	appendAll(t, s, "a", "b")
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	appendAll(t, s, "c", "d")

	ffs.FailFsync(1)
	if err := s.Sync(); !errors.Is(err, ErrInjectedFsync) {
		t.Fatalf("faulted Sync: got %v, want ErrInjectedFsync", err)
	}
	// The error is sticky: the store refuses further appends rather than
	// acknowledging records it may not be able to make durable.
	if _, err := s.Append([]byte("e")); err == nil {
		t.Fatal("append after failed fsync succeeded; sticky error expected")
	}

	ffs.Crash()
	s2 := openFault(t, dir, ffs, SyncInterval)
	defer s2.Close()
	got := recordsAsStrings(s2)
	want := []string{"a", "b"}
	if len(got) != len(want) || got[0] != "a" || got[1] != "b" {
		t.Fatalf("recovered %v, want exactly the pre-fault synced prefix %v", got, want)
	}
}

func TestFsyncFaultSurfacesOnCommit(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s := openFault(t, dir, ffs, SyncAlways)

	appendAll(t, s, "durable")
	ffs.FailFsync(1)
	h, err := s.Append([]byte("doomed"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Commit(h); !errors.Is(err, ErrInjectedFsync) {
		t.Fatalf("Commit under fsync fault: got %v, want ErrInjectedFsync", err)
	}

	ffs.Crash()
	s2 := openFault(t, dir, ffs, SyncAlways)
	defer s2.Close()
	got := recordsAsStrings(s2)
	if len(got) != 1 || got[0] != "durable" {
		t.Fatalf("recovered %v, want [durable]", got)
	}
}

func TestShortWriteLeavesTruncatableTail(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s := openFault(t, dir, ffs, SyncAlways)

	appendAll(t, s, "good-1", "good-2")
	ffs.ShortWrites(1)
	if _, err := s.Append([]byte("half-written-record")); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: got %v, want io.ErrShortWrite", err)
	}
	// Closing flushes the half frame to disk — the torn tail a real
	// short write leaves behind.
	_ = s.Close()

	s2 := openFault(t, dir, ffs, SyncAlways)
	defer s2.Close()
	got := recordsAsStrings(s2)
	if len(got) != 2 || got[0] != "good-1" || got[1] != "good-2" {
		t.Fatalf("recovered %v, want the intact prefix [good-1 good-2]", got)
	}
	if !s2.Recovery().Truncated || s2.Recovery().TruncatedBytes == 0 {
		t.Errorf("short-write tail not truncated: %+v", s2.Recovery())
	}
}

func TestENOSPCSurfacesAndPreservesPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s := openFault(t, dir, ffs, SyncAlways)

	appendAll(t, s, "kept-1", "kept-2")
	ffs.FailENOSPC(1)
	if _, err := s.Append([]byte("no-space")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("full-disk append: got %v, want ENOSPC", err)
	}
	_ = s.Close()

	s2 := openFault(t, dir, ffs, SyncAlways)
	defer s2.Close()
	got := recordsAsStrings(s2)
	if len(got) != 2 || got[0] != "kept-1" || got[1] != "kept-2" {
		t.Fatalf("recovered %v, want [kept-1 kept-2]", got)
	}
}

func TestCorruptReadTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s := openFault(t, dir, ffs, SyncAlways)
	appendAll(t, s, "one", "two", "three", "four")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A bit flip in the middle of the WAL read: recovery keeps the clean
	// prefix and truncates the rest rather than replaying garbage.
	ffs.CorruptReads(1)
	s2 := openFault(t, dir, ffs, SyncAlways)
	got := recordsAsStrings(s2)
	if len(got) >= 4 {
		t.Fatalf("recovered %v despite corrupt read", got)
	}
	for i, want := range []string{"one", "two", "three", "four"}[:len(got)] {
		if got[i] != want {
			t.Fatalf("recovered %v is not a prefix of the original records", got)
		}
	}
	if !s2.Recovery().Truncated {
		t.Errorf("corrupt read did not mark truncation: %+v", s2.Recovery())
	}
	s2.Close()
}

func TestCorruptSnapshotReadFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS()
	s := openFault(t, dir, ffs, SyncAlways)
	appendAll(t, s, "a")
	if err := s.WriteSnapshot([]byte("STATE")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The only snapshot generation reads corrupt: recovery must refuse to
	// continue from the empty state and must preserve the files.
	ffs.CorruptReads(1)
	if _, err := Open(Options{Dir: dir, FS: ffs}); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("corrupt-snapshot open: got %v, want loud refusal", err)
	}
	// With the fault cleared the directory is still fully recoverable.
	s2 := openFault(t, dir, ffs, SyncAlways)
	defer s2.Close()
	if string(s2.RecoveredSnapshot()) != "STATE" {
		t.Fatalf("snapshot %q, want STATE", s2.RecoveredSnapshot())
	}
}

// TestFollowerIngestFaults exercises the fault knobs on the follower
// ingest path: a failed batch fsync and a full disk both surface to the
// replicator, and after reopening the follower store shipping resumes
// from the durable watermark and converges.
func TestFollowerIngestFaults(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := open(t, pdir, SyncAlways)
	defer primary.Close()
	ffs := NewFaultFS()
	follower := openFault(t, fdir, ffs, SyncAlways)

	appendAll(t, primary, "a", "b", "c")
	batch, err := primary.ShipFrom(follower.Watermark(), 0)
	if err != nil {
		t.Fatalf("ShipFrom: %v", err)
	}
	ffs.FailFsync(1)
	if _, _, err := follower.Ingest(batch); !errors.Is(err, ErrInjectedFsync) {
		t.Fatalf("ingest under fsync fault: got %v, want ErrInjectedFsync", err)
	}

	// The follower recovers by reopening its store; the watermark it
	// reports never includes the unsynced batch.
	ffs.Crash()
	f2 := openFault(t, fdir, ffs, SyncAlways)
	if wm := f2.Watermark(); wm.Records != 0 {
		t.Fatalf("post-crash watermark %v, want 0 records", wm)
	}

	// A full disk mid-ingest surfaces too, then shipping converges once
	// the fault clears.
	batch, err = primary.ShipFrom(f2.Watermark(), 0)
	if err != nil {
		t.Fatalf("ShipFrom: %v", err)
	}
	ffs.FailENOSPC(1)
	if _, _, err := f2.Ingest(batch); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ingest under ENOSPC: got %v, want ENOSPC", err)
	}
	_ = f2.Close()
	f3 := openFault(t, fdir, ffs, SyncAlways)
	defer f3.Close()
	pump(t, primary, f3, 0)
	if got, want := f3.Watermark(), primary.Watermark(); got != want {
		t.Fatalf("follower watermark %v, want %v", got, want)
	}
}
