package store

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Options parameterizes Open.
type Options struct {
	// Dir is the state directory; created if absent. Required.
	Dir string
	// Policy selects the fsync discipline (default SyncAlways).
	Policy SyncPolicy
	// FlushInterval paces the background fsync under SyncInterval
	// (default 5ms; ignored otherwise).
	FlushInterval time.Duration
	// FS is the filesystem the store runs on (default OSFS). Tests
	// substitute a FaultFS to exercise disk-fault paths.
	FS FS
}

// RecoveryInfo describes what Open found in the state directory.
type RecoveryInfo struct {
	// Generation is the snapshot/WAL generation recovery resumed from.
	Generation int64
	// SnapshotBytes is the size of the recovered snapshot payload; zero
	// means recovery started from the empty state.
	SnapshotBytes int
	// Records is the number of valid WAL records recovered for replay.
	Records int
	// TruncatedBytes is how many torn/corrupt trailing bytes were cut
	// from the WAL before appends resumed; Truncated is its flag.
	TruncatedBytes int64
	Truncated      bool
	// StaleFilesRemoved counts leftovers from older generations or
	// interrupted rotations that Open cleaned up.
	StaleFilesRemoved int
	// Elapsed is how long Open spent scanning, validating, and
	// truncating (excludes the caller's replay of the records).
	Elapsed time.Duration
}

// Stats is a point-in-time view of the store's I/O counters,
// cumulative across rotations since Open.
type Stats struct {
	Generation  int64
	WALRecords  int64 // records appended since Open
	WALBytes    int64 // framed bytes appended since Open
	Fsyncs      int64
	FsyncTotal  time.Duration
	FsyncMax    time.Duration
	Snapshots   int64 // snapshots written since Open
	LastSnapLen int   // payload size of the newest snapshot
}

// Store manages one state directory: the active WAL segment, the
// snapshot files, and generation rotation. All methods are safe for
// concurrent use. Exactly one process may own a directory at a time;
// the store does not lock the directory.
type Store struct {
	dir    string
	policy SyncPolicy
	fs     FS

	mu  sync.Mutex
	gen int64
	w   *wal
	// carried counters from rotated-out segments, so Stats stays
	// cumulative.
	prevRecords, prevBytes, prevFsyncs int64
	prevFsyncTotal, prevFsyncMax       time.Duration
	snapshots                          int64
	lastSnapLen                        int
	closed                             bool

	samples *latencyRing

	recovered     []byte
	recoveredRecs [][]byte
	recovery      RecoveryInfo

	stopFlush chan struct{}
	flushDone chan struct{}
}

func snapPath(dir string, gen int64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%012d.snap", gen))
}

func walPath(dir string, gen int64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%012d.log", gen))
}

// Open attaches to (or initializes) a state directory and performs the
// file-level half of recovery: it picks the newest generation with a
// valid snapshot (falling back past corrupt ones), loads that snapshot,
// scans the matching WAL segment — truncating a torn or corrupt tail —
// and removes leftovers from interrupted rotations. If snapshot files
// exist but none of them loads cleanly, Open fails and preserves the
// files rather than silently recovering from the empty state. The
// recovered snapshot and records are exposed via RecoveredSnapshot and
// RecoveredRecords for the owner to replay.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: empty state directory")
	}
	if opts.FS == nil {
		opts.FS = OSFS
	}
	if err := opts.FS.MkdirAll(opts.Dir); err != nil {
		return nil, err
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = 5 * time.Millisecond
	}
	start := time.Now()
	s := &Store{
		dir:     opts.Dir,
		policy:  opts.Policy,
		fs:      opts.FS,
		samples: newLatencyRing(512),
	}

	snaps, wals, tmps, err := scanDir(s.fs, opts.Dir)
	if err != nil {
		return nil, err
	}

	// Choose the recovery generation: the highest generation whose
	// snapshot loads cleanly, or generation 0 (empty state, no snapshot
	// required). Generations above the chosen one can only be artifacts
	// of an interrupted rotation or corruption; their files are removed.
	gens := map[int64]bool{0: true}
	for g := range snaps {
		gens[g] = true
	}
	for g := range wals {
		gens[g] = true
	}
	ordered := make([]int64, 0, len(gens))
	for g := range gens {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] > ordered[j] })

	chosen := int64(0)
	var snapshot []byte
	var snapErr error
	for _, g := range ordered {
		if g == 0 {
			break
		}
		if !snaps[g] {
			continue // WAL without its snapshot: an interrupted rotation
		}
		payload, err := readSnapshotFile(s.fs, snapPath(opts.Dir, g))
		if err != nil {
			snapErr = fmt.Errorf("snap gen %d: %w", g, err)
			continue // corrupt snapshot: fall back to an older generation
		}
		chosen, snapshot = g, payload
		break
	}
	// Snapshot files exist but none loads cleanly: the directory holds
	// acknowledged-durable state we cannot read. Silently recovering from
	// the empty state would discard it, so fail loudly and leave every
	// file in place for forensics; the operator resets by moving the
	// directory aside.
	if chosen == 0 && snapErr != nil {
		return nil, fmt.Errorf("store: snapshot present in %s but none loads cleanly (%v); refusing to recover from empty state — move the directory aside to reset", opts.Dir, snapErr)
	}
	s.gen = chosen
	s.recovered = snapshot
	s.recovery.Generation = chosen
	s.recovery.SnapshotBytes = len(snapshot)

	// Scan the active WAL segment, truncating any torn/corrupt tail so
	// appends resume from a clean prefix.
	wp := walPath(opts.Dir, chosen)
	var walBase, walBaseBytes int64
	if raw, err := s.fs.ReadFile(wp); err == nil {
		payloads, good, derr := DecodeAll(raw)
		s.recoveredRecs = payloads
		s.recovery.Records = len(payloads)
		walBase, walBaseBytes = int64(len(payloads)), int64(good)
		if derr != nil {
			s.recovery.Truncated = true
			s.recovery.TruncatedBytes = int64(len(raw) - good)
			if err := s.fs.Truncate(wp, int64(good)); err != nil {
				return nil, fmt.Errorf("store: truncate torn wal tail: %w", err)
			}
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return nil, err
	}

	// Clean up every file that is not this generation's pair.
	for g := range snaps {
		if g != chosen {
			if s.fs.Remove(snapPath(opts.Dir, g)) == nil {
				s.recovery.StaleFilesRemoved++
			}
		}
	}
	for g := range wals {
		if g != chosen {
			if s.fs.Remove(walPath(opts.Dir, g)) == nil {
				s.recovery.StaleFilesRemoved++
			}
		}
	}
	for _, t := range tmps {
		if s.fs.Remove(filepath.Join(opts.Dir, t)) == nil {
			s.recovery.StaleFilesRemoved++
		}
	}

	s.w, err = openWAL(s.fs, wp, s.samples)
	if err != nil {
		return nil, err
	}
	s.w.base, s.w.baseBytes = walBase, walBaseBytes
	s.recovery.Elapsed = time.Since(start)

	if s.policy == SyncInterval {
		s.stopFlush = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flushLoop(opts.FlushInterval)
	}
	return s, nil
}

// scanDir inventories snapshot, WAL, and leftover temp files by name.
func scanDir(fsys FS, dir string) (snaps, wals map[int64]bool, tmps []string, err error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	snaps, wals = map[int64]bool{}, map[int64]bool{}
	for _, name := range names {
		var g int64
		switch {
		case matchGen(name, "snap-", ".snap", &g):
			snaps[g] = true
		case matchGen(name, "wal-", ".log", &g):
			wals[g] = true
		case strings.HasSuffix(name, ".tmp"):
			tmps = append(tmps, name)
		}
	}
	return snaps, wals, tmps, nil
}

func matchGen(name, prefix, suffix string, g *int64) bool {
	if len(name) != len(prefix)+12+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	var v int64
	for _, c := range name[len(prefix) : len(name)-len(suffix)] {
		if c < '0' || c > '9' {
			return false
		}
		v = v*10 + int64(c-'0')
	}
	*g = v
	return true
}

// RecoveredSnapshot returns the snapshot payload Open found, or nil
// when recovery started from the empty state.
func (s *Store) RecoveredSnapshot() []byte { return s.recovered }

// RecoveredRecords returns the WAL payloads that follow the recovered
// snapshot, in append order, for the owner to replay.
func (s *Store) RecoveredRecords() [][]byte { return s.recoveredRecs }

// Recovery reports what Open found and repaired.
func (s *Store) Recovery() RecoveryInfo { return s.recovery }

// Handle identifies one appended record for Commit: the WAL segment it
// was written to plus its sequence within that segment. Binding the
// segment into the handle is what makes Commit safe across rotation — a
// handle from a rotated-out segment resolves against that segment's
// final synced state instead of waiting on the new, empty one. The zero
// Handle commits as a no-op.
type Handle struct {
	w   *wal
	seq int64
}

// Append journals one record payload, returning its commit handle. The
// record is ordered but not yet durable; pass the handle to Commit
// before acknowledging the mutation to a client.
func (s *Store) Append(payload []byte) (Handle, error) {
	s.mu.Lock()
	w := s.w
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return Handle{}, errors.New("store: closed")
	}
	seq, err := w.append(payload)
	if err != nil {
		return Handle{}, err
	}
	return Handle{w: w, seq: seq}, nil
}

// Commit makes the record behind the handle durable per the sync
// policy: under SyncAlways it group-commits and waits; under
// SyncInterval and SyncNever it returns immediately. If the handle's
// segment has been rotated out by WriteSnapshot, the record is already
// durable (rotation syncs the outgoing segment before swapping) and
// Commit returns without touching the new segment.
func (s *Store) Commit(h Handle) error {
	if h.seq <= 0 || s.policy != SyncAlways {
		return nil
	}
	return h.w.waitSynced(h.seq)
}

// Sync forces everything appended so far to stable storage regardless
// of policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	w := s.w
	s.mu.Unlock()
	return w.syncNow()
}

// WriteSnapshot persists a full-state snapshot and rotates the WAL: the
// snapshot is written atomically under the next generation, a fresh WAL
// segment is opened, and the previous generation's files are removed.
// After WriteSnapshot returns, recovery will load this snapshot and
// replay only records appended after it. The caller must guarantee no
// Append races a WriteSnapshot (the RM calls both under its own state
// lock); Commit is rotation-safe on its own — handles are bound to
// their segment, and the pre-rotation sync makes every record in the
// outgoing segment durable before the swap.
func (s *Store) WriteSnapshot(payload []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	// Make the outgoing segment durable so its commit waiters resolve
	// before the files move out from under them.
	if err := s.w.syncNow(); err != nil {
		return err
	}
	next := s.gen + 1
	if err := writeSnapshotFile(s.fs, snapPath(s.dir, next), payload); err != nil {
		return err
	}
	nw, err := openWAL(s.fs, walPath(s.dir, next), s.samples)
	if err != nil {
		// The new snapshot is durable but we cannot journal against it;
		// keep running on the old generation (its snapshot/WAL pair is
		// still intact on disk) and surface the error.
		_ = s.fs.Remove(snapPath(s.dir, next))
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		_ = nw.close()
		_ = s.fs.Remove(walPath(s.dir, next))
		_ = s.fs.Remove(snapPath(s.dir, next))
		return err
	}

	old, oldGen := s.w, s.gen
	s.w, s.gen = nw, next
	s.snapshots++
	s.lastSnapLen = len(payload)

	old.mu.Lock()
	s.prevRecords += old.records
	s.prevBytes += old.bytes
	s.prevFsyncs += old.fsyncs
	s.prevFsyncTotal += old.fsyncTotal
	if old.fsyncMax > s.prevFsyncMax {
		s.prevFsyncMax = old.fsyncMax
	}
	old.mu.Unlock()
	// Best effort: the new generation is already durable, so a failure
	// here only leaves stale files for the next Open to clean up.
	_ = old.close()
	_ = s.fs.Remove(walPath(s.dir, oldGen))
	_ = s.fs.Remove(snapPath(s.dir, oldGen))
	return nil
}

// Stats returns cumulative I/O counters since Open.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Generation:  s.gen,
		WALRecords:  s.prevRecords,
		WALBytes:    s.prevBytes,
		Fsyncs:      s.prevFsyncs,
		FsyncTotal:  s.prevFsyncTotal,
		FsyncMax:    s.prevFsyncMax,
		Snapshots:   s.snapshots,
		LastSnapLen: s.lastSnapLen,
	}
	s.w.mu.Lock()
	st.WALRecords += s.w.records
	st.WALBytes += s.w.bytes
	st.Fsyncs += s.w.fsyncs
	st.FsyncTotal += s.w.fsyncTotal
	if s.w.fsyncMax > st.FsyncMax {
		st.FsyncMax = s.w.fsyncMax
	}
	s.w.mu.Unlock()
	return st
}

// FsyncLatencies returns up to the last 512 fsync latencies, for
// percentile reporting.
func (s *Store) FsyncLatencies() []time.Duration { return s.samples.snapshot() }

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Policy returns the store's sync policy.
func (s *Store) Policy() SyncPolicy { return s.policy }

func (s *Store) flushLoop(every time.Duration) {
	defer close(s.flushDone)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stopFlush:
			return
		case <-t.C:
			s.mu.Lock()
			w := s.w
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			// Best effort: a sticky WAL error surfaces on Close and on
			// the next Append.
			_ = w.syncNow()
		}
	}
}

// Close syncs and closes the active segment. The store is unusable
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	w := s.w
	s.mu.Unlock()
	if s.stopFlush != nil {
		close(s.stopFlush)
		<-s.flushDone
	}
	err := w.syncNow()
	if cerr := w.close(); err == nil {
		err = cerr
	}
	return err
}
