package store

import (
	"fmt"
	"sync"
	"time"
)

// SyncPolicy selects when WAL appends are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways makes Commit wait until the record is fsynced before
	// returning. Concurrent committers share one fsync (group commit):
	// the first waiter syncs the file and releases everyone whose record
	// was already written, so the per-record cost amortizes under load.
	SyncAlways SyncPolicy = iota
	// SyncInterval appends without waiting; a background flusher fsyncs
	// on a fixed interval. A crash can lose up to one interval of
	// acknowledged records (never more), in exchange for submit/confirm
	// latency independent of disk sync cost.
	SyncInterval
	// SyncNever leaves all syncing to the OS. For tests and benchmarks.
	SyncNever
)

// String returns the policy's flag spelling.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy parses a -fsync flag value.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never", "none":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// wal is one open WAL segment. Appends establish a total order under
// wal.mu; durability is provided separately by waitSynced so that the
// caller can release its own locks between writing and committing.
type wal struct {
	mu   sync.Mutex
	cond *sync.Cond
	f    File
	path string

	writtenSeq int64 // sequence of the last record handed to the OS
	syncedSeq  int64 // sequence known to be on stable storage
	syncing    bool  // a group-commit leader is inside Sync
	err        error // sticky write/sync error

	records int64
	bytes   int64
	// base/baseBytes count the records already in the segment file when
	// it was opened (recovery replays them before appends resume), so the
	// segment's replication watermark is base+records / baseBytes+bytes.
	base      int64
	baseBytes int64

	// fsync accounting, reported up through Store.Stats.
	fsyncs     int64
	fsyncTotal time.Duration
	fsyncMax   time.Duration
	samples    *latencyRing
}

func openWAL(fsys FS, path string, samples *latencyRing) (*wal, error) {
	f, err := fsys.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	w := &wal{f: f, path: path, samples: samples}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// watermark returns the segment's total record and byte counts,
// including records present before it was opened.
func (w *wal) watermark() (records, bytes int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.base + w.records, w.baseBytes + w.bytes
}

// append frames and writes one record, returning its sequence number.
// The record is in the OS page cache when append returns; use waitSynced
// to wait for stable storage.
func (w *wal) append(payload []byte) (int64, error) {
	frame, err := EncodeRecord(payload)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("store: wal append: %w", err)
		w.cond.Broadcast()
		return 0, w.err
	}
	w.writtenSeq++
	w.records++
	w.bytes += int64(len(frame))
	return w.writtenSeq, nil
}

// waitSynced blocks until the record with the given sequence is on
// stable storage (group commit): whichever waiter arrives while no sync
// is running becomes the leader, fsyncs once for every record written so
// far, and wakes the cohort.
func (w *wal) waitSynced(seq int64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncedSeq < seq && w.err == nil {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		target := w.writtenSeq
		w.mu.Unlock()
		start := time.Now()
		err := w.f.Sync()
		lat := time.Since(start)
		w.mu.Lock()
		w.syncing = false
		w.fsyncs++
		w.fsyncTotal += lat
		if lat > w.fsyncMax {
			w.fsyncMax = lat
		}
		if w.samples != nil {
			w.samples.add(lat)
		}
		if err != nil && w.err == nil {
			w.err = fmt.Errorf("store: wal fsync: %w", err)
		}
		if target > w.syncedSeq {
			w.syncedSeq = target
		}
		w.cond.Broadcast()
	}
	return w.err
}

// syncNow fsyncs everything written so far (interval flusher, rotation).
func (w *wal) syncNow() error {
	w.mu.Lock()
	seq := w.writtenSeq
	w.mu.Unlock()
	if seq == 0 {
		return nil
	}
	return w.waitSynced(seq)
}

func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		// Still release the descriptor; the sticky error already told
		// callers their records may not be durable.
		_ = w.f.Close()
		return w.err
	}
	return w.f.Close()
}

// latencyRing is a fixed-size ring of recent fsync latencies, so callers
// (ftperf, /v1/status consumers) can compute percentiles without the
// store retaining unbounded samples.
type latencyRing struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	full bool
}

func newLatencyRing(n int) *latencyRing {
	return &latencyRing{buf: make([]time.Duration, n)}
}

func (r *latencyRing) add(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the retained samples, oldest-first not guaranteed.
func (r *latencyRing) snapshot() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]time.Duration, n)
	copy(out, r.buf[:n])
	return out
}
