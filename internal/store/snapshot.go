package store

import (
	"bytes"
	"fmt"
	"path/filepath"
)

// snapMagic heads every snapshot file; a file without it (empty, torn
// before the header, or foreign) is rejected as corrupt.
var snapMagic = []byte("FTSNAP1\n")

// writeSnapshotFile writes a snapshot atomically: the framed payload
// goes to a temp file in the same directory, is fsynced, and is then
// renamed into place, followed by a directory fsync. A crash at any
// point leaves either the old snapshot set or the new one — never a
// half-written file under the final name.
func writeSnapshotFile(fsys FS, path string, payload []byte) error {
	frame, err := EncodeRecord(payload)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(snapMagic); err == nil {
		_, err = f.Write(frame)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("store: rename snapshot: %w", err)
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(fsys FS, path string) ([]byte, error) {
	b, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(b, snapMagic) {
		return nil, fmt.Errorf("%w: snapshot %s: bad magic", ErrCorruptRecord, filepath.Base(path))
	}
	payload, n, err := DecodeRecord(b[len(snapMagic):])
	if err != nil {
		return nil, fmt.Errorf("snapshot %s: %w", filepath.Base(path), err)
	}
	if len(snapMagic)+n != len(b) {
		return nil, fmt.Errorf("%w: snapshot %s: %d trailing bytes", ErrCorruptRecord, filepath.Base(path), len(b)-len(snapMagic)-n)
	}
	return payload, nil
}
