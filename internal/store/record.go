// Package store is the durability layer of the resource manager: an
// append-only, length-prefixed, CRC-checked write-ahead log plus
// periodic full-state snapshots, organized in generations. The RM
// journals every state mutation to the WAL (group-commit fsync keeps the
// hot submit/confirm path fast), periodically snapshots its full state,
// and on startup recovers by loading the latest valid snapshot and
// replaying the WAL records that follow it. A torn or corrupt WAL tail
// — the expected artifact of a crash mid-append — is truncated, never
// fatal; only a missing/corrupt snapshot with no older generation to
// fall back to aborts recovery.
//
// The package is payload-agnostic: records and snapshots are opaque byte
// slices (the RM uses JSON). internal/rmserver owns the record schema
// and replay semantics.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing: a 4-byte little-endian payload length, a 4-byte
// CRC-32C (Castagnoli) of the payload, then the payload itself. The
// frame carries no sequence number — ordering is positional — so the
// fixed cost per record is 8 bytes.
const frameHeaderLen = 8

// MaxRecordLen bounds a single record payload. A length prefix above it
// is treated as corruption (a torn or bit-flipped header would otherwise
// ask the reader to allocate gigabytes).
const MaxRecordLen = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record decode failures. ErrTornRecord means the input ended inside a
// record (crash mid-append); ErrCorruptRecord means the input is
// structurally complete but fails validation (bad length or CRC).
// Recovery treats both the same way: the record and everything after it
// are discarded.
var (
	ErrTornRecord    = errors.New("store: torn record (short input)")
	ErrCorruptRecord = errors.New("store: corrupt record")
)

// EncodeRecord frames a payload for appending to a WAL.
func EncodeRecord(payload []byte) ([]byte, error) {
	if len(payload) > MaxRecordLen {
		return nil, fmt.Errorf("store: record payload %d bytes exceeds max %d", len(payload), MaxRecordLen)
	}
	buf := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[frameHeaderLen:], payload)
	return buf, nil
}

// DecodeRecord parses one framed record from the front of b. It returns
// the payload (aliasing b) and the number of bytes consumed. A short
// input yields ErrTornRecord; a bad length or CRC yields
// ErrCorruptRecord. It never panics, whatever the input.
func DecodeRecord(b []byte) (payload []byte, n int, err error) {
	if len(b) < frameHeaderLen {
		return nil, 0, ErrTornRecord
	}
	plen := binary.LittleEndian.Uint32(b[0:4])
	if plen > MaxRecordLen {
		return nil, 0, fmt.Errorf("%w: length %d exceeds max %d", ErrCorruptRecord, plen, MaxRecordLen)
	}
	if len(b) < frameHeaderLen+int(plen) {
		return nil, 0, ErrTornRecord
	}
	payload = b[frameHeaderLen : frameHeaderLen+int(plen)]
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, 0, fmt.Errorf("%w: CRC mismatch", ErrCorruptRecord)
	}
	return payload, frameHeaderLen + int(plen), nil
}

// DecodeAll parses every record in b in order, stopping at the first
// torn or corrupt record. It returns the decoded payloads and the byte
// offset of the clean prefix — the truncation point recovery uses. err
// is nil when b is consumed exactly; otherwise it describes why decoding
// stopped (the payloads before the bad record are still returned).
func DecodeAll(b []byte) (payloads [][]byte, good int, err error) {
	for good < len(b) {
		payload, n, derr := DecodeRecord(b[good:])
		if derr != nil {
			return payloads, good, derr
		}
		payloads = append(payloads, payload)
		good += n
	}
	return payloads, good, nil
}
