package store

import (
	"errors"
	"testing"
)

// pump replicates primary → follower until the follower is caught up,
// returning how many batches carried data. Fails the test if shipping
// does not converge.
func pump(t *testing.T, primary, follower *Store, maxBytes int) int {
	t.Helper()
	carried := 0
	for i := 0; i < 1000; i++ {
		batch, err := primary.ShipFrom(follower.Watermark(), maxBytes)
		if err != nil {
			t.Fatalf("ShipFrom: %v", err)
		}
		if batch.Empty() {
			return carried
		}
		carried++
		if _, _, err := follower.Ingest(batch); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
	t.Fatal("shipping did not converge in 1000 batches")
	return carried
}

func TestShipRoundTrip(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := open(t, pdir, SyncAlways)
	defer primary.Close()
	follower := open(t, fdir, SyncAlways)
	appendAll(t, primary, "a", "b", "c", "d")

	pump(t, primary, follower, 0)
	if got, want := follower.Watermark(), primary.Watermark(); got != want {
		t.Fatalf("follower watermark %v, want %v", got, want)
	}
	if err := follower.Close(); err != nil {
		t.Fatalf("close follower: %v", err)
	}

	// The shipped records are durable and recoverable on the follower.
	f2 := open(t, fdir, SyncAlways)
	defer f2.Close()
	got := recordsAsStrings(f2)
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("follower recovered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("follower recovered %v, want %v", got, want)
		}
	}
}

func TestShipSnapshotInstallAfterRotation(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := open(t, pdir, SyncAlways)
	defer primary.Close()
	appendAll(t, primary, "pre-1", "pre-2")
	if err := primary.WriteSnapshot([]byte("SNAP-STATE")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendAll(t, primary, "post-1", "post-2")

	// A follower starting from nothing must get a snapshot install: the
	// pre-rotation records no longer exist as WAL frames anywhere.
	follower := open(t, fdir, SyncAlways)
	batch, err := primary.ShipFrom(follower.Watermark(), 0)
	if err != nil {
		t.Fatalf("ShipFrom: %v", err)
	}
	if !batch.SnapInstall || batch.Gen != 1 || string(batch.Snapshot) != "SNAP-STATE" {
		t.Fatalf("want snapshot install at gen 1, got %+v", batch)
	}
	if _, _, err := follower.Ingest(batch); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	pump(t, primary, follower, 0)
	follower.Close()

	f2 := open(t, fdir, SyncAlways)
	defer f2.Close()
	if string(f2.RecoveredSnapshot()) != "SNAP-STATE" {
		t.Fatalf("follower snapshot %q, want SNAP-STATE", f2.RecoveredSnapshot())
	}
	got := recordsAsStrings(f2)
	if len(got) != 2 || got[0] != "post-1" || got[1] != "post-2" {
		t.Fatalf("follower records %v, want [post-1 post-2]", got)
	}
}

func TestShipWatermarkSurvivesReopen(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := open(t, pdir, SyncAlways)
	defer primary.Close()
	follower := open(t, fdir, SyncAlways)
	appendAll(t, primary, "a", "b", "c")
	pump(t, primary, follower, 0)

	before := follower.Watermark()
	follower.Close()

	// More records land on the primary while the follower is down.
	appendAll(t, primary, "d", "e")

	f2 := open(t, fdir, SyncAlways)
	defer f2.Close()
	if got := f2.Watermark(); got != before {
		t.Fatalf("watermark after reopen %v, want %v", got, before)
	}
	// Resumption is incremental — no snapshot install needed.
	batch, err := primary.ShipFrom(f2.Watermark(), 0)
	if err != nil {
		t.Fatalf("ShipFrom: %v", err)
	}
	if batch.SnapInstall {
		t.Fatalf("mid-stream resume forced a snapshot install: %+v", batch)
	}
	if len(batch.Records) != 2 {
		t.Fatalf("resume batch carried %d records, want 2", len(batch.Records))
	}
	pump(t, primary, f2, 0)
	if got, want := f2.Watermark(), primary.Watermark(); got != want {
		t.Fatalf("follower watermark %v, want %v", got, want)
	}
}

func TestShipFollowerAheadResyncs(t *testing.T) {
	// A primary that crashed and lost an unsynced tail can restart
	// *behind* its own follower. The follower must be reset to the
	// primary's stream, not left holding records the primary never had.
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := open(t, pdir, SyncAlways)
	defer primary.Close()
	follower := open(t, fdir, SyncAlways)
	defer follower.Close()
	appendAll(t, primary, "a", "b")
	pump(t, primary, follower, 0)

	// Simulate the lost tail by handing the follower records directly.
	extra, _ := follower.Append([]byte("ghost"))
	if err := follower.Commit(extra); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	batch, err := primary.ShipFrom(follower.Watermark(), 0)
	if err != nil {
		t.Fatalf("ShipFrom: %v", err)
	}
	if !batch.SnapInstall {
		t.Fatalf("follower-ahead did not trigger snapshot install: %+v", batch)
	}
	if _, _, err := follower.Ingest(batch); err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	pump(t, primary, follower, 0)
	if got, want := follower.Watermark(), primary.Watermark(); got != want {
		t.Fatalf("follower watermark %v, want %v", got, want)
	}
}

func TestShipBatchesAreCapped(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary := open(t, pdir, SyncAlways)
	defer primary.Close()
	follower := open(t, fdir, SyncAlways)
	defer follower.Close()
	for i := 0; i < 20; i++ {
		appendAll(t, primary, "payload-payload-payload")
	}
	// A cap far below the total forces multiple batches, each making
	// progress.
	if batches := pump(t, primary, follower, 64); batches < 2 {
		t.Fatalf("expected multiple capped batches, got %d", batches)
	}
	if got, want := follower.Watermark(), primary.Watermark(); got != want {
		t.Fatalf("follower watermark %v, want %v", got, want)
	}
}

func TestIngestRejectsMisalignedBatch(t *testing.T) {
	fdir := t.TempDir()
	follower := open(t, fdir, SyncAlways)
	defer follower.Close()
	if _, _, err := follower.Ingest(ShipBatch{Gen: 3, FromSeq: 0}); !errors.Is(err, ErrShipMismatch) {
		t.Fatalf("gen mismatch: got %v, want ErrShipMismatch", err)
	}
	if _, _, err := follower.Ingest(ShipBatch{Gen: 0, FromSeq: 7, Records: [][]byte{[]byte("x")}}); !errors.Is(err, ErrShipMismatch) {
		t.Fatalf("sequence gap: got %v, want ErrShipMismatch", err)
	}
	// Overlapping records are skipped, not duplicated.
	appendAll(t, follower, "a", "b")
	fresh, wm, err := follower.Ingest(ShipBatch{Gen: 0, FromSeq: 0, Records: [][]byte{[]byte("a"), []byte("b"), []byte("c")}})
	if err != nil {
		t.Fatalf("overlapping ingest: %v", err)
	}
	if len(fresh) != 1 || string(fresh[0]) != "c" || wm.Records != 3 {
		t.Fatalf("overlapping ingest: fresh=%q wm=%v, want [c] and 3 records", fresh, wm)
	}
}
