package store

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"syscall"
)

// FaultFS wraps a base FS (the real OS by default) with on-demand disk
// faults: failed fsyncs, short writes, ENOSPC, and corrupt reads. It
// also models the page cache: bytes written through a FaultFS file are
// buffered until the file is fsynced (or cleanly closed), and Crash()
// discards every unsynced buffer — so tests observe exactly what a
// machine loss, not just a process kill, would leave on disk.
//
// The durability model it implements:
//
//   - Write appends to an in-memory buffer for the path. The base file
//     is created at open (metadata reaches the disk) but holds no new
//     bytes yet.
//   - Sync flushes the buffer to the base file and fsyncs it. An
//     injected fsync failure keeps the buffer in the "page cache".
//   - Close flushes without claiming durability — a cleanly exiting
//     process leaves its page cache behind, and only a machine crash
//     (Crash) loses it.
//   - Crash discards every unsynced buffer and poisons open handles, so
//     the base files hold exactly the synced prefix. Reopening the same
//     directory afterwards (through this FS or the OS) recovers from
//     that prefix.
//
// Reads see base + buffered bytes, like the page cache would serve
// them. All methods are safe for concurrent use.
type FaultFS struct {
	mu   sync.Mutex
	base FS
	bufs map[string][]byte // unsynced bytes per open path
	gen  int               // bumped by Crash; stale handles fail

	failFsync   int // countdown of syncs to fail; -1 = all
	shortWrites int // countdown of writes to cut in half
	failWrites  int // countdown of writes to fail outright
	writeErr    error
	corruptRead int // countdown of reads to bit-flip
}

// errCrashed poisons file handles that survived a simulated machine
// crash: any further use is a test bug, not a store bug.
var errCrashed = errors.New("store: faultfs: file handle from before the crash")

// ErrInjectedFsync is the error injected fsync failures return (wrapped).
var ErrInjectedFsync = errors.New("store: faultfs: injected fsync failure")

// NewFaultFS returns a FaultFS over the real OS filesystem.
func NewFaultFS() *FaultFS { return &FaultFS{base: OSFS, bufs: map[string][]byte{}} }

// FailFsync arms the next n fsyncs to fail (n < 0: every fsync fails
// until rearmed with 0). The unsynced buffer is kept, mirroring a disk
// that reports the error without persisting the data.
func (f *FaultFS) FailFsync(n int) { f.mu.Lock(); f.failFsync = n; f.mu.Unlock() }

// ShortWrites arms the next n writes to persist only half their bytes
// and return io.ErrShortWrite.
func (f *FaultFS) ShortWrites(n int) { f.mu.Lock(); f.shortWrites = n; f.mu.Unlock() }

// FailENOSPC arms the next n writes to fail with ENOSPC, persisting
// nothing.
func (f *FaultFS) FailENOSPC(n int) {
	f.mu.Lock()
	f.failWrites, f.writeErr = n, syscall.ENOSPC
	f.mu.Unlock()
}

// CorruptReads arms the next n ReadFile calls to flip one bit in the
// middle of the returned data.
func (f *FaultFS) CorruptReads(n int) { f.mu.Lock(); f.corruptRead = n; f.mu.Unlock() }

// Crash simulates a machine loss: every unsynced buffer is discarded
// and every open handle is poisoned. The base files are left holding
// exactly what had been fsynced.
func (f *FaultFS) Crash() {
	f.mu.Lock()
	f.bufs = map[string][]byte{}
	f.gen++
	f.mu.Unlock()
}

// UnsyncedBytes reports how many written-but-unsynced bytes a Crash
// would lose right now, for test assertions.
func (f *FaultFS) UnsyncedBytes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, b := range f.bufs {
		n += len(b)
	}
	return n
}

type faultFile struct {
	fs   *FaultFS
	path string
	base File
	gen  int
}

func (f *FaultFS) open(path string, base File, err error) (File, error) {
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return &faultFile{fs: f, path: path, base: base, gen: f.gen}, nil
}

// OpenAppend opens a WAL segment. The base file is created immediately
// (like the OS would), but writes buffer until Sync.
func (f *FaultFS) OpenAppend(path string) (File, error) {
	base, err := f.base.OpenAppend(path)
	return f.open(path, base, err)
}

// Create opens a snapshot temp file; same buffering as OpenAppend.
func (f *FaultFS) Create(path string) (File, error) {
	f.mu.Lock()
	delete(f.bufs, path) // O_TRUNC discards any buffered bytes too
	f.mu.Unlock()
	base, err := f.base.Create(path)
	return f.open(path, base, err)
}

func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.gen != w.fs.gen {
		return 0, errCrashed
	}
	if w.fs.failWrites != 0 {
		if w.fs.failWrites > 0 {
			w.fs.failWrites--
		}
		return 0, fmt.Errorf("write %s: %w", w.path, w.fs.writeErr)
	}
	if w.fs.shortWrites != 0 {
		if w.fs.shortWrites > 0 {
			w.fs.shortWrites--
		}
		n := len(p) / 2
		w.fs.bufs[w.path] = append(w.fs.bufs[w.path], p[:n]...)
		return n, io.ErrShortWrite
	}
	w.fs.bufs[w.path] = append(w.fs.bufs[w.path], p...)
	return len(p), nil
}

// flushLocked moves the path's buffer into the base file. Caller holds
// fs.mu.
func (w *faultFile) flushLocked() error {
	buf := w.fs.bufs[w.path]
	if len(buf) == 0 {
		return nil
	}
	if _, err := w.base.Write(buf); err != nil {
		return err
	}
	delete(w.fs.bufs, w.path)
	return nil
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.gen != w.fs.gen {
		return errCrashed
	}
	if w.fs.failFsync != 0 {
		if w.fs.failFsync > 0 {
			w.fs.failFsync--
		}
		return fmt.Errorf("sync %s: %w", w.path, ErrInjectedFsync)
	}
	if err := w.flushLocked(); err != nil {
		return err
	}
	return w.base.Sync()
}

func (w *faultFile) Close() error {
	w.fs.mu.Lock()
	if w.gen != w.fs.gen {
		w.fs.mu.Unlock()
		return w.base.Close() // release the descriptor regardless
	}
	err := w.flushLocked()
	w.fs.mu.Unlock()
	if cerr := w.base.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile serves base + unsynced buffer, like the page cache, with the
// corrupt-read fault applied if armed.
func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	b, err := f.base.ReadFile(path)
	f.mu.Lock()
	defer f.mu.Unlock()
	buf := f.bufs[path]
	if err != nil {
		if len(buf) == 0 {
			return nil, err
		}
		b = nil // file exists only as buffered bytes
	}
	out := make([]byte, 0, len(b)+len(buf))
	out = append(out, b...)
	out = append(out, buf...)
	if f.corruptRead != 0 && len(out) > 0 {
		if f.corruptRead > 0 {
			f.corruptRead--
		}
		out[len(out)/2] ^= 0x40
	}
	return out, nil
}

func (f *FaultFS) MkdirAll(dir string) error { return f.base.MkdirAll(dir) }

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.base.ReadDir(dir) }

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	delete(f.bufs, newpath) // the clobbered target's unsynced bytes die with it
	if buf, ok := f.bufs[oldpath]; ok {
		f.bufs[newpath] = buf
		delete(f.bufs, oldpath)
	}
	f.mu.Unlock()
	return f.base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	f.mu.Lock()
	delete(f.bufs, path)
	f.mu.Unlock()
	return f.base.Remove(path)
}

// Truncate repairs a torn tail during recovery; by then the buffer is
// empty (the crash discarded it), so it cuts the base file directly.
func (f *FaultFS) Truncate(path string, size int64) error {
	f.mu.Lock()
	delete(f.bufs, path)
	f.mu.Unlock()
	return f.base.Truncate(path, size)
}

func (f *FaultFS) SyncDir(dir string) error { return f.base.SyncDir(dir) }
