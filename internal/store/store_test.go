package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func open(t *testing.T, dir string, policy SyncPolicy) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Policy: policy})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func appendAll(t *testing.T, s *Store, payloads ...string) {
	t.Helper()
	for _, p := range payloads {
		seq, err := s.Append([]byte(p))
		if err != nil {
			t.Fatalf("Append(%q): %v", p, err)
		}
		if err := s.Commit(seq); err != nil {
			t.Fatalf("Commit(%q): %v", p, err)
		}
	}
}

func recordsAsStrings(s *Store) []string {
	out := make([]string, 0, len(s.RecoveredRecords()))
	for _, r := range s.RecoveredRecords() {
		out = append(out, string(r))
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 1000)} {
		frame, err := EncodeRecord(payload)
		if err != nil {
			t.Fatalf("EncodeRecord: %v", err)
		}
		got, n, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("DecodeRecord: %v", err)
		}
		if n != len(frame) || !bytes.Equal(got, payload) {
			t.Errorf("round trip mismatch: n=%d payload=%q want %q", n, got, payload)
		}
	}
}

func TestDecodeRecordCorruption(t *testing.T) {
	frame, _ := EncodeRecord([]byte("hello durable world"))

	// Truncations at every length are torn, never panic, never succeed.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeRecord(frame[:cut]); err == nil {
			t.Errorf("truncated to %d bytes: decode succeeded", cut)
		}
	}
	// A flip in any byte is detected (length bytes produce torn/corrupt,
	// CRC and payload bytes produce CRC mismatch).
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, err := DecodeRecord(bad); err == nil {
			t.Errorf("bit flip at byte %d: decode succeeded", i)
		}
	}
}

func TestOpenEmptyAndPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, SyncAlways)
	if s.RecoveredSnapshot() != nil || len(s.RecoveredRecords()) != 0 {
		t.Fatalf("fresh dir recovered state: snap=%v recs=%d", s.RecoveredSnapshot(), len(s.RecoveredRecords()))
	}
	appendAll(t, s, "a", "b", "c")
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := open(t, dir, SyncAlways)
	defer s2.Close()
	got := recordsAsStrings(s2)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered %v, want %v", got, want)
		}
	}
	if s2.Recovery().Truncated {
		t.Error("clean WAL reported as truncated")
	}
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, SyncAlways)
	appendAll(t, s, "good-1", "good-2")
	s.Close()

	// Simulate a crash mid-append: a partial frame at the tail.
	wp := walPath(dir, 0)
	f, err := os.OpenFile(wp, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	frame, _ := EncodeRecord([]byte("torn-record-payload"))
	if _, err := f.Write(frame[:len(frame)-5]); err != nil {
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	s2 := open(t, dir, SyncAlways)
	got := recordsAsStrings(s2)
	if len(got) != 2 || got[0] != "good-1" || got[1] != "good-2" {
		t.Fatalf("recovered %v, want the two clean records", got)
	}
	ri := s2.Recovery()
	if !ri.Truncated || ri.TruncatedBytes != int64(len(frame)-5) {
		t.Errorf("recovery info %+v, want truncated %d bytes", ri, len(frame)-5)
	}
	// Appends resume cleanly after the truncation point.
	appendAll(t, s2, "after-crash")
	s2.Close()
	s3 := open(t, dir, SyncAlways)
	defer s3.Close()
	if got := recordsAsStrings(s3); len(got) != 3 || got[2] != "after-crash" {
		t.Fatalf("after truncate+append recovered %v", got)
	}
	if s3.Recovery().Truncated {
		t.Error("second recovery still reports truncation")
	}
}

func TestCorruptMiddleRecordTruncatesRest(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, SyncAlways)
	appendAll(t, s, "keep", "flip-me", "lost")
	s.Close()

	raw, err := os.ReadFile(walPath(dir, 0))
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	frame0, _ := EncodeRecord([]byte("keep"))
	raw[len(frame0)+frameHeaderLen] ^= 0xff // flip first payload byte of record 2
	if err := os.WriteFile(walPath(dir, 0), raw, 0o644); err != nil {
		t.Fatalf("write wal: %v", err)
	}

	s2 := open(t, dir, SyncAlways)
	defer s2.Close()
	got := recordsAsStrings(s2)
	if len(got) != 1 || got[0] != "keep" {
		t.Fatalf("recovered %v, want only the record before the corruption", got)
	}
	if !s2.Recovery().Truncated {
		t.Error("corruption not reported as truncation")
	}
}

func TestSnapshotRotationAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, SyncAlways)
	appendAll(t, s, "pre-1", "pre-2")
	if err := s.WriteSnapshot([]byte("STATE@2")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendAll(t, s, "post-1")
	if st := s.Stats(); st.Generation != 1 || st.Snapshots != 1 {
		t.Errorf("stats after rotation: %+v", st)
	}
	s.Close()

	// Old generation's files are gone; recovery sees snapshot + tail.
	if _, err := os.Stat(walPath(dir, 0)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("wal gen 0 still present after rotation")
	}
	s2 := open(t, dir, SyncAlways)
	defer s2.Close()
	if string(s2.RecoveredSnapshot()) != "STATE@2" {
		t.Errorf("recovered snapshot %q", s2.RecoveredSnapshot())
	}
	if got := recordsAsStrings(s2); len(got) != 1 || got[0] != "post-1" {
		t.Errorf("recovered tail %v, want [post-1]", got)
	}
	if g := s2.Recovery().Generation; g != 1 {
		t.Errorf("recovered generation %d, want 1", g)
	}
}

func TestCorruptSnapshotFallsBackToOlderGeneration(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, SyncAlways)
	appendAll(t, s, "a")
	if err := s.WriteSnapshot([]byte("GEN1")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendAll(t, s, "b")
	if err := s.WriteSnapshot([]byte("GEN2")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	s.Close()

	// Rotation deleted gen 1's files; restore a valid gen-1 snapshot by
	// hand and corrupt gen 2: recovery must fall back to gen 1, then
	// clean up the unusable gen-2 files.
	if err := writeSnapshotFile(OSFS, snapPath(dir, 1), []byte("GEN1")); err != nil {
		t.Fatalf("restore gen-1 snapshot: %v", err)
	}
	if err := os.WriteFile(snapPath(dir, 2), []byte("garbage"), 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}
	s2 := open(t, dir, SyncAlways)
	defer s2.Close()
	if string(s2.RecoveredSnapshot()) != "GEN1" {
		t.Errorf("recovered snapshot %q, want GEN1", s2.RecoveredSnapshot())
	}
	if g := s2.Recovery().Generation; g != 1 {
		t.Errorf("recovered generation %d, want 1", g)
	}
	if s2.Recovery().StaleFilesRemoved == 0 {
		t.Error("corrupt generation files not cleaned up")
	}
}

// TestAllSnapshotsCorruptAbortsRecovery: when snapshot files exist but
// none loads cleanly there is acknowledged-durable state on disk that
// cannot be read. Open must fail loudly — not fall through to the empty
// state — and must preserve the files for forensics.
func TestAllSnapshotsCorruptAbortsRecovery(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, SyncAlways)
	appendAll(t, s, "a")
	if err := s.WriteSnapshot([]byte("GEN1")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendAll(t, s, "b")
	s.Close()

	if err := os.WriteFile(snapPath(dir, 1), []byte("garbage"), 0o644); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}
	if _, err := Open(Options{Dir: dir, Policy: SyncAlways}); err == nil {
		t.Fatal("Open recovered from empty state despite an unreadable snapshot")
	}
	for _, p := range []string{snapPath(dir, 1), walPath(dir, 1)} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("%s not preserved after refused recovery: %v", p, err)
		}
	}
}

// TestCommitAfterRotationDoesNotBlock: a handle appended before a
// snapshot rotation must commit promptly afterwards — the pre-rotation
// sync already made its record durable. A commit that resolved against
// the post-rotation segment instead would wait (hot-spinning fsyncs)
// for records that may never arrive.
func TestCommitAfterRotationDoesNotBlock(t *testing.T) {
	s := open(t, t.TempDir(), SyncAlways)
	defer s.Close()
	h, err := s.Append([]byte("pre-rotation"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.WriteSnapshot([]byte("S")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Commit(h) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Commit after rotation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit after rotation blocked on the new segment")
	}
}

// TestInterruptedRotationIgnoresOrphanWAL covers the crash window where
// a new WAL segment exists but its snapshot never landed: the orphan
// segment must be discarded, not replayed against the older snapshot.
func TestInterruptedRotationIgnoresOrphanWAL(t *testing.T) {
	dir := t.TempDir()
	s := open(t, dir, SyncAlways)
	appendAll(t, s, "real")
	s.Close()
	if err := os.WriteFile(walPath(dir, 7), []byte("orphan"), 0o644); err != nil {
		t.Fatalf("write orphan wal: %v", err)
	}
	s2 := open(t, dir, SyncAlways)
	defer s2.Close()
	if got := recordsAsStrings(s2); len(got) != 1 || got[0] != "real" {
		t.Fatalf("recovered %v, want [real]", got)
	}
	if _, err := os.Stat(walPath(dir, 7)); !errors.Is(err, os.ErrNotExist) {
		t.Error("orphan wal segment not removed")
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	s := open(t, t.TempDir(), SyncAlways)
	defer s.Close()
	const writers, each = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				seq, err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err == nil {
					err = s.Commit(seq)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append/commit: %v", err)
	}
	st := s.Stats()
	if st.WALRecords != writers*each {
		t.Errorf("wal records = %d, want %d", st.WALRecords, writers*each)
	}
	// Group commit must have amortized fsyncs below one per record (the
	// whole point); allow full slack for a serial scheduler but verify
	// the counter is sane.
	if st.Fsyncs == 0 || st.Fsyncs > st.WALRecords {
		t.Errorf("fsyncs = %d for %d records", st.Fsyncs, st.WALRecords)
	}
}

func TestIntervalPolicyFlushesInBackground(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Policy: SyncInterval, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	seq, err := s.Append([]byte("lazy"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Commit(seq); err != nil { // must not block
		t.Fatalf("Commit: %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Fsyncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background flusher never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"always": SyncAlways, "interval": SyncInterval, "never": SyncNever, "none": SyncNever,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestStatsCumulativeAcrossRotation(t *testing.T) {
	s := open(t, t.TempDir(), SyncAlways)
	defer s.Close()
	appendAll(t, s, "one", "two")
	before := s.Stats()
	if err := s.WriteSnapshot([]byte("S")); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	appendAll(t, s, "three")
	after := s.Stats()
	if after.WALRecords != before.WALRecords+1 {
		t.Errorf("records not cumulative: before=%d after=%d", before.WALRecords, after.WALRecords)
	}
	if after.WALBytes <= before.WALBytes {
		t.Errorf("bytes not cumulative: before=%d after=%d", before.WALBytes, after.WALBytes)
	}
	if after.Fsyncs < before.Fsyncs {
		t.Errorf("fsyncs went backwards: before=%d after=%d", before.Fsyncs, after.Fsyncs)
	}
}

func TestSnapshotFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap-000000000001.snap")
	if err := writeSnapshotFile(OSFS, path, []byte("payload")); err != nil {
		t.Fatalf("writeSnapshotFile: %v", err)
	}
	got, err := readSnapshotFile(OSFS, path)
	if err != nil || string(got) != "payload" {
		t.Fatalf("readSnapshotFile = %q, %v", got, err)
	}
	// Every prefix of the file (a torn write under a non-atomic rename)
	// must be rejected, not half-loaded.
	raw, _ := os.ReadFile(path)
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		if _, err := readSnapshotFile(OSFS, path); err == nil {
			t.Fatalf("snapshot truncated to %d bytes loaded successfully", cut)
		}
	}
}
