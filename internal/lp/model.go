// Package lp implements a linear-programming solver sufficient to solve
// FlowTime's scheduling formulation exactly, replacing the IBM CPLEX
// dependency of the paper (ICDCS 2018, §V).
//
// The solver is a bounded-variable primal simplex (revised form over a
// sparse LU factorization of the basis with Markowitz pivot selection,
// Forrest–Tomlin eta updates, periodic and drift-triggered
// refactorization, a presolve/postsolve pass for cold starts, and
// Bland's rule as an anti-cycling fallback; the legacy dense inverse
// remains available via SolveOptions.DenseBasis as a differential
// reference). Variables carry individual [lower, upper] bounds so
// per-variable caps — such as a job's parallelism limit — cost nothing
// at solve time. The package also provides:
//
//   - dual values and reduced costs, used by tests to certify optimality
//     through complementary slackness rather than trusting the solver;
//   - a lexicographic min-max driver (LexMinMax) realizing the paper's
//     Lemma 1 objective in the numerically stable iterative form;
//   - the λ-representation construction from the paper's Eq. (8)–(9)
//     (see lambda.go) for separable convex objectives.
package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Inf is the bound value representing "no upper bound".
var Inf = math.Inf(1)

// Sentinel errors returned by Solve.
var (
	// ErrInfeasible is returned when no point satisfies all constraints.
	ErrInfeasible = errors.New("lp: infeasible")
	// ErrUnbounded is returned when the objective can decrease forever.
	ErrUnbounded = errors.New("lp: unbounded")
	// ErrIterationLimit is returned when the simplex exceeds its pivot
	// budget, which indicates a modeling bug, numerical trouble, or a
	// deliberately tight SolveOptions.MaxIter.
	ErrIterationLimit = errors.New("lp: iteration limit exceeded")
	// ErrTimeLimit is returned when a solve exceeds its wall-clock budget
	// (SolveOptions.MaxTime).
	ErrTimeLimit = errors.New("lp: time limit exceeded")
	// ErrNumerical is returned when the final basis fails the numeric
	// sanity check: NaN/Inf basic values, or basic values grossly outside
	// their bounds. Such a "solution" must not be trusted.
	ErrNumerical = errors.New("lp: numerical instability")
)

// SolveOptions bounds one Solve call so callers can guarantee the solver
// returns control instead of grinding on a pathological instance. The
// zero value reproduces the solver's historical defaults.
type SolveOptions struct {
	// MaxIter caps the number of simplex pivots per phase. Zero means the
	// default formula 200*(rows+cols) + 20000.
	MaxIter int
	// MaxTime caps the wall-clock duration of the whole solve (both
	// phases). Zero means no wall-clock limit.
	MaxTime time.Duration
	// Workspace, when non-nil, carries the optimal basis between solves.
	// A successful solve records its basis into the workspace; a later
	// solve of the same model (same variables; constraints appended, RHS
	// retuned via SetRHS, or the objective changed) warm-starts from it —
	// a dual-simplex phase restores feasibility, then the primal finishes
	// — instead of cold-starting phase 1 with artificials. Any stall or
	// numerical trouble on the warm path falls back to the cold start, so
	// results are identical within tolerance. See Workspace.
	Workspace *Workspace
	// DenseBasis selects the legacy dense basis-inverse representation
	// (explicit Binv updated with product-form row operations) instead of
	// the default sparse LU factorization with Forrest–Tomlin updates.
	// It exists as the differential reference for the sparse core — slow
	// at scale but numerically independent.
	DenseBasis bool
	// DisablePresolve skips the presolve/postsolve pass on cold starts.
	// Warm starts (Workspace set) never presolve: the reductions would
	// invalidate the kept basis mapping.
	DisablePresolve bool
}

// SolveStats reports what a solve cost, whether or not it succeeded.
// Callers degrading on a tripped budget use it to decide how much budget
// the failed attempt consumed.
type SolveStats struct {
	// Pivots is the number of basis changes performed (both primal phases
	// plus any dual-simplex repair pivots).
	Pivots int
	// DualPivots is the subset of Pivots performed by the dual-simplex
	// feasibility repair on warm starts.
	DualPivots int
	// WarmStarts counts solves that reused a workspace basis end to end.
	WarmStarts int
	// ColdStarts counts solves built from scratch (including the cold
	// retries behind WarmFallbacks).
	ColdStarts int
	// WarmFallbacks counts warm-start attempts abandoned for a cold
	// restart (stall or numerical trouble on the warm path).
	WarmFallbacks int
	// BlandPivots is the subset of Pivots performed under an anti-cycling
	// guard (Bland's rule in the primal, lowest-index tie-breaking in the
	// dual) after a degenerate stall.
	BlandPivots int
	// Refactors counts full basis refactorizations (periodic, drift-
	// triggered, and update-rejection recoveries).
	Refactors int
	// MaxEta is the peak Forrest–Tomlin eta-file length reached between
	// refactorizations (0 on the dense path).
	MaxEta int
	// FillIn is the peak nnz(L+U)/nnz(B) ratio observed across
	// factorizations (0 on the dense path).
	FillIn float64
	// Duration is the wall-clock time the solve took.
	Duration time.Duration
}

// Add folds another solve's counters into s (Duration included). It is
// the exported form of accumulate for callers aggregating stats across
// LexMinMax calls (e.g. the scheduler's replan telemetry).
func (s *SolveStats) Add(o SolveStats) { s.accumulate(o) }

// accumulate folds another solve's counters into s (Duration included).
func (s *SolveStats) accumulate(o SolveStats) {
	s.Pivots += o.Pivots
	s.DualPivots += o.DualPivots
	s.WarmStarts += o.WarmStarts
	s.ColdStarts += o.ColdStarts
	s.WarmFallbacks += o.WarmFallbacks
	s.BlandPivots += o.BlandPivots
	s.Refactors += o.Refactors
	if o.MaxEta > s.MaxEta {
		s.MaxEta = o.MaxEta
	}
	if o.FillIn > s.FillIn {
		s.FillIn = o.FillIn
	}
	s.Duration += o.Duration
}

// Sense is the direction of a linear constraint.
type Sense int

// Constraint senses. Enums start at one so the zero value is invalid.
const (
	// LE is "less than or equal".
	LE Sense = iota + 1
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

// String returns the mathematical symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("sense(%d)", int(s))
	}
}

// Var identifies a decision variable within one Model.
type Var int

// Term is a coefficient applied to a variable.
type Term struct {
	Var  Var
	Coef float64
}

// Model is a linear program under construction: minimize c·x subject to
// linear constraints and per-variable bounds. The zero value is not usable;
// construct with NewModel.
type Model struct {
	lo, hi []float64 // per-variable bounds
	obj    []float64 // objective coefficients (minimization)
	names  []string

	rows []row
	// rev counts coefficient revisions (SetCoef calls). A warm-start
	// workspace compares it against the revision it captured to know the
	// constraint matrix changed shape-preservingly and the kept basis
	// inverse must be refactorized before reuse.
	rev int
}

type row struct {
	terms []Term
	sense Sense
	rhs   float64
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{}
}

// NumVars returns the number of variables added so far.
func (m *Model) NumVars() int { return len(m.lo) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.rows) }

// NewVar adds a variable with bounds [lo, hi] and zero objective
// coefficient. lo must be finite and hi >= lo (hi may be Inf). The name is
// used only in diagnostics and may be empty.
func (m *Model) NewVar(name string, lo, hi float64) (Var, error) {
	if math.IsInf(lo, 0) || math.IsNaN(lo) {
		return 0, fmt.Errorf("lp: variable %q: lower bound must be finite, got %v", name, lo)
	}
	if math.IsNaN(hi) || hi < lo {
		return 0, fmt.Errorf("lp: variable %q: invalid bounds [%v, %v]", name, lo, hi)
	}
	m.lo = append(m.lo, lo)
	m.hi = append(m.hi, hi)
	m.obj = append(m.obj, 0)
	m.names = append(m.names, name)
	return Var(len(m.lo) - 1), nil
}

// MustVar is NewVar for statically valid bounds; it panics on error and is
// intended for construction code where bounds are known constants.
func (m *Model) MustVar(name string, lo, hi float64) Var {
	v, err := m.NewVar(name, lo, hi)
	if err != nil {
		panic(err)
	}
	return v
}

// SetObjective sets the minimization objective to the given terms. Terms for
// the same variable accumulate. Variables not mentioned have coefficient 0.
func (m *Model) SetObjective(terms []Term) error {
	for i := range m.obj {
		m.obj[i] = 0
	}
	return m.addTerms(m.obj, terms)
}

// AddObjectiveTerm adds coef*v to the objective.
func (m *Model) AddObjectiveTerm(v Var, coef float64) error {
	if err := m.checkVar(v); err != nil {
		return err
	}
	m.obj[v] += coef
	return nil
}

// AddConstraint appends the constraint terms (sense) rhs. Terms referencing
// the same variable accumulate. An empty term list is rejected.
func (m *Model) AddConstraint(terms []Term, sense Sense, rhs float64) error {
	if len(terms) == 0 {
		return errors.New("lp: constraint with no terms")
	}
	if sense != LE && sense != GE && sense != EQ {
		return fmt.Errorf("lp: invalid sense %v", sense)
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: invalid rhs %v", rhs)
	}
	for _, t := range terms {
		if err := m.checkVar(t.Var); err != nil {
			return err
		}
		if math.IsNaN(t.Coef) || math.IsInf(t.Coef, 0) {
			return fmt.Errorf("lp: invalid coefficient %v for variable %q", t.Coef, m.names[t.Var])
		}
	}
	// Copy the terms at the boundary so later caller mutations cannot
	// corrupt the model.
	own := make([]Term, len(terms))
	copy(own, terms)
	m.rows = append(m.rows, row{terms: own, sense: sense, rhs: rhs})
	return nil
}

// SetRHS replaces the right-hand side of constraint i (in insertion
// order), leaving its terms and sense untouched. Retuning an RHS is the
// incremental-solve primitive: tightening or relaxing a bound changes
// only b, so a kept basis stays structurally valid and a warm-started
// solve needs just a dual-simplex repair instead of a cold start.
func (m *Model) SetRHS(i int, rhs float64) error {
	if i < 0 || i >= len(m.rows) {
		return fmt.Errorf("lp: unknown constraint index %d", i)
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		return fmt.Errorf("lp: invalid rhs %v", rhs)
	}
	m.rows[i].rhs = rhs
	return nil
}

// RHS returns the right-hand side of constraint i (in insertion order).
func (m *Model) RHS(i int) float64 { return m.rows[i].rhs }

// SetCoef replaces the coefficient of variable v in constraint i, adding
// the term if the row does not mention v yet. Unlike SetRHS this changes
// the constraint matrix, so a warm-started solve must refactorize the
// kept basis (handled automatically via the model's revision counter);
// the basis itself — which variables are basic — usually survives, which
// is what makes coefficient toggling (e.g. detaching a shared variable
// from one row) far cheaper than rebuilding the model.
func (m *Model) SetCoef(i int, v Var, coef float64) error {
	if i < 0 || i >= len(m.rows) {
		return fmt.Errorf("lp: unknown constraint index %d", i)
	}
	if err := m.checkVar(v); err != nil {
		return err
	}
	if math.IsNaN(coef) || math.IsInf(coef, 0) {
		return fmt.Errorf("lp: invalid coefficient %v for variable %q", coef, m.names[v])
	}
	r := &m.rows[i]
	for k := range r.terms {
		if r.terms[k].Var == v {
			if r.terms[k].Coef == coef {
				return nil
			}
			r.terms[k].Coef = coef
			m.rev++
			return nil
		}
	}
	r.terms = append(r.terms, Term{Var: v, Coef: coef})
	m.rev++
	return nil
}

// SetVarBounds replaces the bounds of variable v, with the same validity
// rules as NewVar. Bound changes are warm-start friendly: a kept basis
// stays structurally valid, tightened bounds are repaired by the dual
// phase and relaxed bounds free the variable without any repair.
func (m *Model) SetVarBounds(v Var, lo, hi float64) error {
	if err := m.checkVar(v); err != nil {
		return err
	}
	if math.IsInf(lo, 0) || math.IsNaN(lo) {
		return fmt.Errorf("lp: variable %q: lower bound must be finite, got %v", m.names[v], lo)
	}
	if math.IsNaN(hi) || hi < lo {
		return fmt.Errorf("lp: variable %q: invalid bounds [%v, %v]", m.names[v], lo, hi)
	}
	m.lo[v] = lo
	m.hi[v] = hi
	return nil
}

// MustConstraint is AddConstraint that panics on error, for construction
// code with statically valid inputs.
func (m *Model) MustConstraint(terms []Term, sense Sense, rhs float64) {
	if err := m.AddConstraint(terms, sense, rhs); err != nil {
		panic(err)
	}
}

func (m *Model) checkVar(v Var) error {
	if v < 0 || int(v) >= len(m.lo) {
		return fmt.Errorf("lp: unknown variable index %d", v)
	}
	return nil
}

func (m *Model) addTerms(dst []float64, terms []Term) error {
	for _, t := range terms {
		if err := m.checkVar(t.Var); err != nil {
			return err
		}
		dst[t.Var] += t.Coef
	}
	return nil
}

// Solution holds the result of a successful Solve.
type Solution struct {
	// Objective is the optimal value of the minimization objective.
	Objective float64

	values []float64
	// duals[i] is the dual multiplier of constraint i (sign follows the
	// convention: for a minimization with <= rows, duals are <= 0 ... we
	// report y such that c - yA has the optimality signs checked in tests).
	duals []float64
	// reduced[j] is the reduced cost of variable j at optimality.
	reduced []float64
}

// Value returns the optimal value of variable v.
func (s *Solution) Value(v Var) float64 { return s.values[v] }

// Values returns a copy of all variable values, indexed by Var.
func (s *Solution) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Dual returns the dual multiplier of constraint i (in insertion order).
func (s *Solution) Dual(i int) float64 { return s.duals[i] }

// ReducedCost returns the reduced cost of variable v at optimality.
func (s *Solution) ReducedCost(v Var) float64 { return s.reduced[v] }
