package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func mustVar(t *testing.T, m *Model, name string, lo, hi float64) Var {
	t.Helper()
	v, err := m.NewVar(name, lo, hi)
	if err != nil {
		t.Fatalf("NewVar(%s): %v", name, err)
	}
	return v
}

func mustConstraint(t *testing.T, m *Model, terms []Term, s Sense, rhs float64) {
	t.Helper()
	if err := m.AddConstraint(terms, s, rhs); err != nil {
		t.Fatalf("AddConstraint: %v", err)
	}
}

func mustObjective(t *testing.T, m *Model, terms []Term) {
	t.Helper()
	if err := m.SetObjective(terms); err != nil {
		t.Fatalf("SetObjective: %v", err)
	}
}

func mustSolve(t *testing.T, m *Model) *Solution {
	t.Helper()
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSimpleMaximizationViaNegation(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic Dantzig
	// example) has optimum x=2, y=6, obj=36. Minimize the negation.
	m := NewModel()
	x := mustVar(t, m, "x", 0, Inf)
	y := mustVar(t, m, "y", 0, Inf)
	mustConstraint(t, m, []Term{{x, 1}}, LE, 4)
	mustConstraint(t, m, []Term{{y, 2}}, LE, 12)
	mustConstraint(t, m, []Term{{x, 3}, {y, 2}}, LE, 18)
	mustObjective(t, m, []Term{{x, -3}, {y, -5}})

	sol := mustSolve(t, m)
	if !approx(sol.Objective, -36, 1e-6) {
		t.Errorf("objective = %g, want -36", sol.Objective)
	}
	if !approx(sol.Value(x), 2, 1e-6) || !approx(sol.Value(y), 6, 1e-6) {
		t.Errorf("solution = (%g, %g), want (2, 6)", sol.Value(x), sol.Value(y))
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min 2x + 3y s.t. x + y = 10, x >= 4  ->  x=10? No: y free down to 0.
	// With x+y=10, minimize 2x+3y = 20 + y, so y=0, x=10. GE x >= 4 holds.
	m := NewModel()
	x := mustVar(t, m, "x", 0, Inf)
	y := mustVar(t, m, "y", 0, Inf)
	mustConstraint(t, m, []Term{{x, 1}, {y, 1}}, EQ, 10)
	mustConstraint(t, m, []Term{{x, 1}}, GE, 4)
	mustObjective(t, m, []Term{{x, 2}, {y, 3}})

	sol := mustSolve(t, m)
	if !approx(sol.Value(x), 10, 1e-6) || !approx(sol.Value(y), 0, 1e-6) {
		t.Errorf("solution = (%g, %g), want (10, 0)", sol.Value(x), sol.Value(y))
	}
	if !approx(sol.Objective, 20, 1e-6) {
		t.Errorf("objective = %g, want 20", sol.Objective)
	}
}

func TestUpperBoundsBind(t *testing.T) {
	// min -(x+y) with x in [0,3], y in [0,2], x + y <= 4 -> x=3? x+y<=4
	// binds with both bounds reachable: best is x=3,y=1 or x=2,y=2; both
	// give obj -4.
	m := NewModel()
	x := mustVar(t, m, "x", 0, 3)
	y := mustVar(t, m, "y", 0, 2)
	mustConstraint(t, m, []Term{{x, 1}, {y, 1}}, LE, 4)
	mustObjective(t, m, []Term{{x, -1}, {y, -1}})

	sol := mustSolve(t, m)
	if !approx(sol.Objective, -4, 1e-6) {
		t.Errorf("objective = %g, want -4", sol.Objective)
	}
	if sol.Value(x) > 3+1e-9 || sol.Value(y) > 2+1e-9 {
		t.Errorf("bounds violated: (%g, %g)", sol.Value(x), sol.Value(y))
	}
}

func TestBoundFlipOnly(t *testing.T) {
	// min -x with x in [0, 5] and a vacuous constraint. The optimum x=5 is
	// reachable only via a bound flip (no basis exchange can move x).
	m := NewModel()
	x := mustVar(t, m, "x", 0, 5)
	y := mustVar(t, m, "y", 0, 1)
	mustConstraint(t, m, []Term{{y, 1}}, LE, 1)
	mustObjective(t, m, []Term{{x, -1}})

	sol := mustSolve(t, m)
	if !approx(sol.Value(x), 5, 1e-9) {
		t.Errorf("x = %g, want 5", sol.Value(x))
	}
}

func TestFixedVariable(t *testing.T) {
	m := NewModel()
	x := mustVar(t, m, "x", 2, 2)
	y := mustVar(t, m, "y", 0, Inf)
	mustConstraint(t, m, []Term{{x, 1}, {y, 1}}, GE, 5)
	mustObjective(t, m, []Term{{y, 1}})

	sol := mustSolve(t, m)
	if !approx(sol.Value(x), 2, 1e-9) {
		t.Errorf("x = %g, want 2 (fixed)", sol.Value(x))
	}
	if !approx(sol.Value(y), 3, 1e-6) {
		t.Errorf("y = %g, want 3", sol.Value(y))
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := mustVar(t, m, "x", 0, 1)
	mustConstraint(t, m, []Term{{x, 1}}, GE, 2)
	mustObjective(t, m, []Term{{x, 1}})

	_, err := m.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("Solve = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleEqualitySystem(t *testing.T) {
	m := NewModel()
	x := mustVar(t, m, "x", 0, Inf)
	y := mustVar(t, m, "y", 0, Inf)
	mustConstraint(t, m, []Term{{x, 1}, {y, 1}}, EQ, 1)
	mustConstraint(t, m, []Term{{x, 1}, {y, 1}}, EQ, 2)
	mustObjective(t, m, []Term{{x, 1}})

	_, err := m.Solve()
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("Solve = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel()
	x := mustVar(t, m, "x", 0, Inf)
	y := mustVar(t, m, "y", 0, Inf)
	mustConstraint(t, m, []Term{{x, 1}, {y, -1}}, LE, 1)
	mustObjective(t, m, []Term{{x, -1}})

	_, err := m.Solve()
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("Solve = %v, want ErrUnbounded", err)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classically degenerate vertex: multiple constraints meet at the
	// optimum. Beale's cycling example adapted; Bland's rule must finish.
	m := NewModel()
	x1 := mustVar(t, m, "x1", 0, Inf)
	x2 := mustVar(t, m, "x2", 0, Inf)
	x3 := mustVar(t, m, "x3", 0, Inf)
	x4 := mustVar(t, m, "x4", 0, Inf)
	mustConstraint(t, m, []Term{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, LE, 0)
	mustConstraint(t, m, []Term{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, LE, 0)
	mustConstraint(t, m, []Term{{x3, 1}}, LE, 1)
	mustObjective(t, m, []Term{{x1, -0.75}, {x2, 150}, {x3, -0.02}, {x4, 6}})

	sol := mustSolve(t, m)
	if !approx(sol.Objective, -0.05, 1e-6) {
		t.Errorf("objective = %g, want -0.05", sol.Objective)
	}
	verifyOptimal(t, m, sol)
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	m := NewModel()
	x := mustVar(t, m, "x", 0, Inf)
	mustConstraint(t, m, []Term{{x, 1}, {x, 1}}, LE, 4) // 2x <= 4
	mustObjective(t, m, []Term{{x, -1}})

	sol := mustSolve(t, m)
	if !approx(sol.Value(x), 2, 1e-6) {
		t.Errorf("x = %g, want 2", sol.Value(x))
	}
}

func TestTransportationIntegrality(t *testing.T) {
	// A 3x3 transportation problem (TU constraint matrix, integral data)
	// must yield an integral optimal basic solution — the property the
	// paper's Lemma 2 relies on.
	supply := []float64{10, 15, 5}
	demand := []float64{12, 8, 10}
	cost := [][]float64{{4, 8, 8}, {16, 24, 16}, {8, 16, 24}}

	m := NewModel()
	x := make([][]Var, 3)
	for i := range x {
		x[i] = make([]Var, 3)
		for j := range x[i] {
			x[i][j] = mustVar(t, m, "", 0, Inf)
		}
	}
	for i := 0; i < 3; i++ {
		terms := make([]Term, 3)
		for j := 0; j < 3; j++ {
			terms[j] = Term{x[i][j], 1}
		}
		mustConstraint(t, m, terms, EQ, supply[i])
	}
	for j := 0; j < 3; j++ {
		terms := make([]Term, 3)
		for i := 0; i < 3; i++ {
			terms[i] = Term{x[i][j], 1}
		}
		mustConstraint(t, m, terms, EQ, demand[j])
	}
	var obj []Term
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			obj = append(obj, Term{x[i][j], cost[i][j]})
		}
	}
	mustObjective(t, m, obj)

	sol := mustSolve(t, m)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			v := sol.Value(x[i][j])
			if !approx(v, math.Round(v), 1e-6) {
				t.Errorf("x[%d][%d] = %g is not integral", i, j, v)
			}
		}
	}
	verifyOptimal(t, m, sol)
}

func TestValidationErrors(t *testing.T) {
	m := NewModel()
	if _, err := m.NewVar("bad", math.Inf(-1), 0); err == nil {
		t.Error("NewVar with -Inf lower bound: want error")
	}
	if _, err := m.NewVar("bad", 3, 2); err == nil {
		t.Error("NewVar with hi < lo: want error")
	}
	x := mustVar(t, m, "x", 0, 1)
	if err := m.AddConstraint(nil, LE, 1); err == nil {
		t.Error("empty constraint: want error")
	}
	if err := m.AddConstraint([]Term{{x, 1}}, Sense(0), 1); err == nil {
		t.Error("invalid sense: want error")
	}
	if err := m.AddConstraint([]Term{{x, math.NaN()}}, LE, 1); err == nil {
		t.Error("NaN coefficient: want error")
	}
	if err := m.AddConstraint([]Term{{x, 1}}, LE, math.Inf(1)); err == nil {
		t.Error("Inf rhs: want error")
	}
	if err := m.AddConstraint([]Term{{Var(99), 1}}, LE, 1); err == nil {
		t.Error("unknown var: want error")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := NewModel()
	x := mustVar(t, m, "x", 0, 10)
	mustConstraint(t, m, []Term{{x, 1}}, LE, 4)
	mustObjective(t, m, []Term{{x, -1}})

	c := m.Clone()
	mustConstraint(t, c, []Term{{x, 1}}, LE, 2) // tighter only in the clone

	solM := mustSolve(t, m)
	solC := mustSolve(t, c)
	if !approx(solM.Value(x), 4, 1e-6) {
		t.Errorf("original x = %g, want 4", solM.Value(x))
	}
	if !approx(solC.Value(x), 2, 1e-6) {
		t.Errorf("clone x = %g, want 2", solC.Value(x))
	}
}

// verifyOptimal checks the full KKT optimality certificate: primal
// feasibility, dual sign conditions, reduced-cost sign conditions, and
// complementary slackness. Passing this check proves optimality of the
// returned point without trusting the solver's internals.
func verifyOptimal(t *testing.T, m *Model, sol *Solution) {
	t.Helper()
	const tol = 1e-5

	// Primal feasibility: bounds and rows.
	for j := 0; j < m.NumVars(); j++ {
		v := sol.Value(Var(j))
		if v < m.lo[j]-tol || v > m.hi[j]+tol {
			t.Errorf("variable %d = %g outside [%g, %g]", j, v, m.lo[j], m.hi[j])
		}
	}
	activity := make([]float64, len(m.rows))
	for i, r := range m.rows {
		a := 0.0
		for _, tm := range r.terms {
			a += tm.Coef * sol.Value(tm.Var)
		}
		activity[i] = a
		switch r.sense {
		case LE:
			if a > r.rhs+tol {
				t.Errorf("row %d: %g > %g (LE violated)", i, a, r.rhs)
			}
		case GE:
			if a < r.rhs-tol {
				t.Errorf("row %d: %g < %g (GE violated)", i, a, r.rhs)
			}
		case EQ:
			if !approx(a, r.rhs, tol) {
				t.Errorf("row %d: %g != %g (EQ violated)", i, a, r.rhs)
			}
		}
	}

	// Dual signs and complementary slackness. For minimization:
	// LE rows need y <= 0, GE rows y >= 0; slack rows need y = 0.
	for i, r := range m.rows {
		y := sol.Dual(i)
		switch r.sense {
		case LE:
			if y > tol {
				t.Errorf("row %d (LE): dual %g > 0", i, y)
			}
			if r.rhs-activity[i] > tol && math.Abs(y) > tol {
				t.Errorf("row %d (LE): slack %g with dual %g", i, r.rhs-activity[i], y)
			}
		case GE:
			if y < -tol {
				t.Errorf("row %d (GE): dual %g < 0", i, y)
			}
			if activity[i]-r.rhs > tol && math.Abs(y) > tol {
				t.Errorf("row %d (GE): slack %g with dual %g", i, activity[i]-r.rhs, y)
			}
		}
	}

	// Reduced-cost conditions: at lower bound d >= 0, at upper d <= 0,
	// interior d = 0.
	for j := 0; j < m.NumVars(); j++ {
		v, d := sol.Value(Var(j)), sol.ReducedCost(Var(j))
		atLo := approx(v, m.lo[j], tol)
		atHi := !math.IsInf(m.hi[j], 1) && approx(v, m.hi[j], tol)
		switch {
		case atLo && atHi: // fixed: any sign
		case atLo:
			if d < -tol {
				t.Errorf("var %d at lower bound with reduced cost %g < 0", j, d)
			}
		case atHi:
			if d > tol {
				t.Errorf("var %d at upper bound with reduced cost %g > 0", j, d)
			}
		default:
			if math.Abs(d) > tol {
				t.Errorf("var %d interior with reduced cost %g != 0", j, d)
			}
		}
	}
}

// TestRandomLPsOptimalityCertificate fuzzes the solver with random small
// LPs and checks the full KKT certificate on every solved instance.
func TestRandomLPsOptimalityCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(20180611)) // ICDCS 2018 presentation-ish seed
	solved, infeasible, unbounded := 0, 0, 0
	for trial := 0; trial < 400; trial++ {
		m := NewModel()
		nv := 1 + rng.Intn(6)
		nc := 1 + rng.Intn(5)
		vars := make([]Var, nv)
		for j := 0; j < nv; j++ {
			hi := Inf
			if rng.Intn(2) == 0 {
				hi = float64(rng.Intn(8))
			}
			vars[j] = mustVar(t, m, "", 0, hi)
		}
		for i := 0; i < nc; i++ {
			var terms []Term
			for j := 0; j < nv; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{vars[j], float64(rng.Intn(7) - 3)})
				}
			}
			if len(terms) == 0 {
				terms = append(terms, Term{vars[rng.Intn(nv)], 1})
			}
			sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
			mustConstraint(t, m, terms, sense, float64(rng.Intn(21)-5))
		}
		obj := make([]Term, nv)
		for j := 0; j < nv; j++ {
			obj[j] = Term{vars[j], float64(rng.Intn(11) - 5)}
		}
		mustObjective(t, m, obj)

		sol, err := m.Solve()
		switch {
		case errors.Is(err, ErrInfeasible):
			infeasible++
		case errors.Is(err, ErrUnbounded):
			unbounded++
		case err != nil:
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		default:
			solved++
			verifyOptimal(t, m, sol)
		}
	}
	if solved < 50 {
		t.Errorf("only %d/400 random LPs solved (infeasible=%d unbounded=%d); generator too hostile", solved, infeasible, unbounded)
	}
}
