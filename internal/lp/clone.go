package lp

// Clone returns a deep copy of the model. Solving or mutating the clone
// never affects the original, which makes Clone the building block for
// iterative schemes (LexMinMax re-solves a growing family of models derived
// from one base).
func (m *Model) Clone() *Model {
	c := &Model{
		lo:    append([]float64(nil), m.lo...),
		hi:    append([]float64(nil), m.hi...),
		obj:   append([]float64(nil), m.obj...),
		names: append([]string(nil), m.names...),
		rows:  make([]row, len(m.rows)),
	}
	for i, r := range m.rows {
		c.rows[i] = row{
			terms: append([]Term(nil), r.terms...),
			sense: r.sense,
			rhs:   r.rhs,
		}
	}
	return c
}
