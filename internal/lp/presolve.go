package lp

import (
	"fmt"
	"math"
)

// This file implements the presolve/postsolve pass run on cold,
// workspace-free solves. Presolve shrinks the model before the simplex
// sees it — empty, singleton, and redundant rows are dropped, fixed and
// empty columns removed, and implied-free column singletons on equality
// rows substituted out — and postsolve maps the reduced solution back to
// the original model, reconstructing primal values exactly and dual
// values/reduced costs so that the full KKT certificate
// (verifyOptimal's conditions) still holds on the original model.
//
// Every reduction strictly decreases #active rows + #active columns, so
// the fixpoint loop terminates without an iteration cap. Reductions are
// recorded on a stack and replayed in reverse by postsolve:
//
//   - psFix: a column fixed at a value (fixed bounds, empty column, or
//     an equality singleton row). Value replay is direct; the dual story
//     is handled by the singleton-row transfer below.
//   - psDropRow: a row dropped as vacuous or redundant (implied by the
//     column bounds). Its dual is 0, which satisfies complementary
//     slackness whether or not the row is tight, and stationarity is
//     untouched by a zero multiplier.
//   - psSingletonRow: a one-term row folded into the column's bounds.
//     If at the solution the column presses against the folded bound —
//     nonzero reduced cost at a point strictly inside its original
//     bounds — the multiplier belongs to the dropped row, not the
//     bound, and postsolve transfers it: y_row = d/a zeroes the
//     column's reduced cost and carries the right sign for the row
//     sense by construction of the fold direction.
//   - psFreeSingleton: an implied-free column singleton on an EQ row,
//     substituted out Gaussian-style. The recorded working objective
//     coefficient cj already folds the multipliers of previously
//     substituted rows, so y_row = cj/a restores stationarity of the
//     eliminated column exactly; the other columns' stationarity was
//     preserved by the objective update obj_k -= cj*a_k/a.
type psKind uint8

const (
	psFix psKind = iota + 1
	psDropRow
	psSingletonRow
	psFreeSingleton
)

const (
	// psTol is the relative feasibility/redundancy tolerance.
	psTol = 1e-9
	// psFixTol decides when a column's bounds have collapsed to a point.
	psFixTol = 1e-12
	// psDualTol is the reduced-cost tolerance of the postsolve dual
	// transfer (below verifyOptimal's certificate tolerance).
	psDualTol = 1e-7
	// psPivTol is the minimum coefficient magnitude presolve will divide
	// by; smaller pivots amplify error and are left to the simplex.
	psPivTol = 1e-7
)

type psAction struct {
	kind  psKind
	v     int     // column (psFix, psFreeSingleton)
	row   int     // row (psDropRow, psSingletonRow, psFreeSingleton)
	val   float64 // fixed value (psFix)
	a     float64 // coefficient of v in row
	rhs   float64 // row rhs at processing time
	cj    float64 // working objective coefficient of v (psFreeSingleton)
	sense Sense
	terms []Term // the row's other terms at processing time (psFreeSingleton)
}

type presolveResult struct {
	infeasible bool
	infeasMsg  string
	reduced    *Model
	varMap     []int // original var -> reduced var, or -1 if eliminated
	rowMap     []int // original row -> reduced row, or -1 if dropped
	stack      []psAction
}

// psState is the mutable working copy presolve reduces.
type psState struct {
	lo, hi   []float64
	obj      []float64
	rowTerms [][]Term // merged per row; fixed columns removed in place
	rhs      []float64
	sense    []Sense
	rowAct   []bool
	varAct   []bool
	colRows  [][]int // static: rows whose ORIGINAL merged form mentions the var
	varCnt   []int   // live count of active rows with a nonzero term on the var
	stack    []psAction
}

// presolveModel reduces m and returns the mapping bundle, or nil when no
// reduction applies (the caller then solves m directly). A non-nil
// result with infeasible set proves the model infeasible outright.
func presolveModel(m *Model) *presolveResult {
	nv, nr := m.NumVars(), m.NumConstraints()
	st := &psState{
		lo:       append([]float64(nil), m.lo...),
		hi:       append([]float64(nil), m.hi...),
		obj:      append([]float64(nil), m.obj...),
		rowTerms: make([][]Term, nr),
		rhs:      make([]float64, nr),
		sense:    make([]Sense, nr),
		rowAct:   make([]bool, nr),
		varAct:   make([]bool, nv),
		colRows:  make([][]int, nv),
		varCnt:   make([]int, nv),
	}
	for j := range st.varAct {
		st.varAct[j] = true
	}
	for i := range m.rows {
		terms := mergeRowTerms(&m.rows[i])
		kept := terms[:0]
		for _, t := range terms {
			if t.Coef != 0 {
				kept = append(kept, t)
			}
		}
		st.rowTerms[i] = kept
		st.rhs[i] = m.rows[i].rhs
		st.sense[i] = m.rows[i].sense
		st.rowAct[i] = true
		for _, t := range kept {
			st.colRows[t.Var] = append(st.colRows[t.Var], i)
			st.varCnt[t.Var]++
		}
	}

	if msg := st.reduce(); msg != "" {
		return &presolveResult{infeasible: true, infeasMsg: msg}
	}
	if len(st.stack) == 0 {
		return nil
	}
	return st.build(m)
}

// dropRow deactivates row i and releases its columns' counts.
func (st *psState) dropRow(i int) {
	st.rowAct[i] = false
	for _, t := range st.rowTerms[i] {
		st.varCnt[t.Var]--
	}
}

// removeTerm deletes column v's term from row i (order-preserving, so
// the reduced model is deterministic) and returns its coefficient.
func (st *psState) removeTerm(i, v int) (float64, bool) {
	terms := st.rowTerms[i]
	for k := range terms {
		if int(terms[k].Var) == v {
			coef := terms[k].Coef
			st.rowTerms[i] = append(terms[:k], terms[k+1:]...)
			st.varCnt[v]--
			return coef, true
		}
	}
	return 0, false
}

// reduce runs the reduction passes to fixpoint. It returns a non-empty
// message when the model is proven infeasible.
func (st *psState) reduce() string {
	for changed := true; changed; {
		changed = false

		// Empty and singleton rows.
		for i := range st.rowAct {
			if !st.rowAct[i] {
				continue
			}
			switch len(st.rowTerms[i]) {
			case 0:
				if msg := st.checkVacuous(i); msg != "" {
					return msg
				}
				st.dropRow(i)
				st.stack = append(st.stack, psAction{kind: psDropRow, row: i})
				changed = true
			case 1:
				t := st.rowTerms[i][0]
				if math.Abs(t.Coef) < psPivTol {
					continue // too small to divide by; leave to the simplex
				}
				if msg := st.foldSingletonRow(i, int(t.Var), t.Coef); msg != "" {
					return msg
				}
				changed = true
			}
		}

		// Fixed columns: substitute the point value into every row.
		for v := range st.varAct {
			if !st.varAct[v] || st.hi[v]-st.lo[v] > psFixTol*(1+math.Abs(st.lo[v])) {
				continue
			}
			val := st.lo[v]
			if st.hi[v] != st.lo[v] {
				val = 0.5 * (st.lo[v] + st.hi[v])
			}
			for _, i := range st.colRows[v] {
				if !st.rowAct[i] {
					continue
				}
				if coef, ok := st.removeTerm(i, v); ok {
					st.rhs[i] -= coef * val
				}
			}
			st.varAct[v] = false
			st.stack = append(st.stack, psAction{kind: psFix, v: v, val: val})
			changed = true
		}

		// Empty columns: fixed by objective sign. A column with negative
		// cost and no upper bound witnesses unboundedness; it is left in
		// the model so the simplex reports ErrUnbounded through the normal
		// path.
		for v := range st.varAct {
			if !st.varAct[v] || st.varCnt[v] != 0 {
				continue
			}
			c := st.obj[v]
			val := st.lo[v]
			if c < 0 {
				if math.IsInf(st.hi[v], 1) {
					continue
				}
				val = st.hi[v]
			}
			st.varAct[v] = false
			st.stack = append(st.stack, psAction{kind: psFix, v: v, val: val})
			changed = true
		}

		// Redundant rows: activity bounds from the column bounds.
		for i := range st.rowAct {
			if !st.rowAct[i] || len(st.rowTerms[i]) < 2 {
				continue
			}
			minAct, maxAct, minInf, maxInf := st.activityBounds(i)
			tol := psTol * (1 + math.Abs(st.rhs[i]))
			switch st.sense[i] {
			case LE:
				if !minInf && minAct > st.rhs[i]+tol {
					return fmt.Sprintf("row %d: minimum activity %g exceeds <= %g", i, minAct, st.rhs[i])
				}
				if !maxInf && maxAct <= st.rhs[i]+tol {
					st.dropRow(i)
					st.stack = append(st.stack, psAction{kind: psDropRow, row: i})
					changed = true
				}
			case GE:
				if !maxInf && maxAct < st.rhs[i]-tol {
					return fmt.Sprintf("row %d: maximum activity %g below >= %g", i, maxAct, st.rhs[i])
				}
				if !minInf && minAct >= st.rhs[i]-tol {
					st.dropRow(i)
					st.stack = append(st.stack, psAction{kind: psDropRow, row: i})
					changed = true
				}
			case EQ:
				if !minInf && minAct > st.rhs[i]+tol {
					return fmt.Sprintf("row %d: minimum activity %g exceeds = %g", i, minAct, st.rhs[i])
				}
				if !maxInf && maxAct < st.rhs[i]-tol {
					return fmt.Sprintf("row %d: maximum activity %g below = %g", i, maxAct, st.rhs[i])
				}
			}
		}

		// Implied-free column singletons on EQ rows: substitute out.
		for v := range st.varAct {
			if !st.varAct[v] || st.varCnt[v] != 1 {
				continue
			}
			if st.freeSingleton(v) {
				changed = true
			}
		}
	}
	return ""
}

// checkVacuous validates a termless row's constant constraint.
func (st *psState) checkVacuous(i int) string {
	tol := psTol * (1 + math.Abs(st.rhs[i]))
	switch st.sense[i] {
	case LE:
		if st.rhs[i] < -tol {
			return fmt.Sprintf("row %d reduced to 0 <= %g", i, st.rhs[i])
		}
	case GE:
		if st.rhs[i] > tol {
			return fmt.Sprintf("row %d reduced to 0 >= %g", i, st.rhs[i])
		}
	case EQ:
		if math.Abs(st.rhs[i]) > tol {
			return fmt.Sprintf("row %d reduced to 0 = %g", i, st.rhs[i])
		}
	}
	return ""
}

// foldSingletonRow folds the one-term row a*x (sense) rhs into x's
// bounds and drops the row, recording the action for the postsolve dual
// transfer. Returns an infeasibility message if the fold empties x's
// domain.
func (st *psState) foldSingletonRow(i, v int, a float64) string {
	ratio := st.rhs[i] / a
	st.stack = append(st.stack, psAction{
		kind: psSingletonRow, row: i, v: v, a: a, rhs: st.rhs[i], sense: st.sense[i],
	})
	tightenHi := false
	tightenLo := false
	switch st.sense[i] {
	case LE:
		if a > 0 {
			tightenHi = true
		} else {
			tightenLo = true
		}
	case GE:
		if a > 0 {
			tightenLo = true
		} else {
			tightenHi = true
		}
	case EQ:
		tightenLo, tightenHi = true, true
	}
	if tightenHi && ratio < st.hi[v] {
		st.hi[v] = ratio
	}
	if tightenLo && ratio > st.lo[v] {
		st.lo[v] = ratio
	}
	if st.lo[v] > st.hi[v] {
		if st.lo[v]-st.hi[v] > psTol*(1+math.Abs(st.lo[v])) {
			return fmt.Sprintf("row %d forces variable %d into empty domain [%g, %g]", i, v, st.lo[v], st.hi[v])
		}
		st.hi[v] = st.lo[v] // collapse a tolerance-level inversion
	}
	st.dropRow(i)
	return ""
}

// activityBounds returns the row's [min, max] activity over the column
// bounds, with infinity flags.
func (st *psState) activityBounds(i int) (minAct, maxAct float64, minInf, maxInf bool) {
	for _, t := range st.rowTerms[i] {
		v := int(t.Var)
		if t.Coef > 0 {
			minAct += t.Coef * st.lo[v]
			if math.IsInf(st.hi[v], 1) {
				maxInf = true
			} else {
				maxAct += t.Coef * st.hi[v]
			}
		} else {
			maxAct += t.Coef * st.lo[v]
			if math.IsInf(st.hi[v], 1) {
				minInf = true
			} else {
				minAct += t.Coef * st.hi[v]
			}
		}
	}
	return minAct, maxAct, minInf, maxInf
}

// freeSingleton substitutes out column v when it appears in exactly one
// active row, that row is an equality, and the row implies bounds on v
// at least as tight as its own (so v's bounds can never bind). Reports
// whether a substitution happened.
func (st *psState) freeSingleton(v int) bool {
	rowI := -1
	for _, i := range st.colRows[v] {
		if !st.rowAct[i] {
			continue
		}
		for _, t := range st.rowTerms[i] {
			if int(t.Var) == v {
				rowI = i
				break
			}
		}
		if rowI >= 0 {
			break
		}
	}
	if rowI < 0 || st.sense[rowI] != EQ || len(st.rowTerms[rowI]) < 2 {
		return false
	}
	var a float64
	others := make([]Term, 0, len(st.rowTerms[rowI])-1)
	for _, t := range st.rowTerms[rowI] {
		if int(t.Var) == v {
			a = t.Coef
		} else {
			others = append(others, t)
		}
	}
	if math.Abs(a) < psPivTol {
		return false
	}

	// Implied bounds for v from the row: v = (rhs - other)/a with the
	// other terms ranging over their activity interval.
	minO, maxO, minInf, maxInf := st.activityBoundsOf(others)
	var impLo, impHi float64
	var impLoInf, impHiInf bool
	if a > 0 {
		impLo, impLoInf = (st.rhs[rowI]-maxO)/a, maxInf
		impHi, impHiInf = (st.rhs[rowI]-minO)/a, minInf
	} else {
		impLo, impLoInf = (st.rhs[rowI]-minO)/a, minInf
		impHi, impHiInf = (st.rhs[rowI]-maxO)/a, maxInf
	}
	tol := psTol * (1 + math.Abs(st.lo[v]) + math.Abs(st.rhs[rowI]))
	if impLoInf || impLo < st.lo[v]-tol {
		return false // lower bound could bind (model lo is always finite)
	}
	if !math.IsInf(st.hi[v], 1) && (impHiInf || impHi > st.hi[v]+tol) {
		return false
	}

	cj := st.obj[v]
	st.stack = append(st.stack, psAction{
		kind: psFreeSingleton, row: rowI, v: v, a: a, rhs: st.rhs[rowI], cj: cj,
		terms: append([]Term(nil), others...),
	})
	for _, t := range others {
		st.obj[t.Var] -= cj * t.Coef / a
	}
	st.dropRow(rowI)
	st.varAct[v] = false
	return true
}

// activityBoundsOf is activityBounds over an explicit term list.
func (st *psState) activityBoundsOf(terms []Term) (minAct, maxAct float64, minInf, maxInf bool) {
	for _, t := range terms {
		v := int(t.Var)
		if t.Coef > 0 {
			minAct += t.Coef * st.lo[v]
			if math.IsInf(st.hi[v], 1) {
				maxInf = true
			} else {
				maxAct += t.Coef * st.hi[v]
			}
		} else {
			maxAct += t.Coef * st.lo[v]
			if math.IsInf(st.hi[v], 1) {
				minInf = true
			} else {
				minAct += t.Coef * st.hi[v]
			}
		}
	}
	return minAct, maxAct, minInf, maxInf
}

// build assembles the reduced model and the index maps. A nil return
// means assembly failed validation and the caller should solve the
// original model unreduced (never expected; purely defensive).
func (st *psState) build(m *Model) *presolveResult {
	pr := &presolveResult{
		reduced: NewModel(),
		varMap:  make([]int, m.NumVars()),
		rowMap:  make([]int, m.NumConstraints()),
		stack:   st.stack,
	}
	for j := range pr.varMap {
		pr.varMap[j] = -1
		if !st.varAct[j] {
			continue
		}
		rv, err := pr.reduced.NewVar(m.names[j], st.lo[j], st.hi[j])
		if err != nil {
			return nil
		}
		pr.varMap[j] = int(rv)
		pr.reduced.obj[rv] = st.obj[j]
	}
	terms := make([]Term, 0, 16)
	for i := range pr.rowMap {
		pr.rowMap[i] = -1
		if !st.rowAct[i] {
			continue
		}
		terms = terms[:0]
		for _, t := range st.rowTerms[i] {
			terms = append(terms, Term{Var: Var(pr.varMap[t.Var]), Coef: t.Coef})
		}
		if err := pr.reduced.AddConstraint(terms, st.sense[i], st.rhs[i]); err != nil {
			return nil
		}
		pr.rowMap[i] = pr.reduced.NumConstraints() - 1
	}
	return pr
}

// postsolve maps the reduced model's solution back onto the original
// model: surviving entries copy through the index maps, the reduction
// stack replays in reverse for eliminated values and substituted-row
// duals, folded singleton-row multipliers are transferred where the
// certificate needs them, and reduced costs plus the objective are
// recomputed from the original matrix so the returned Solution is
// indistinguishable from an unreduced solve.
func (pr *presolveResult) postsolve(m *Model, rsol *Solution) *Solution {
	nv, nr := m.NumVars(), m.NumConstraints()
	sol := &Solution{
		values:  make([]float64, nv),
		duals:   make([]float64, nr),
		reduced: make([]float64, nv),
	}
	for j, rj := range pr.varMap {
		if rj >= 0 {
			sol.values[j] = rsol.values[rj]
		}
	}
	for i, ri := range pr.rowMap {
		if ri >= 0 {
			sol.duals[i] = rsol.duals[ri]
		}
	}

	// Reverse replay: each action's inputs were recorded at processing
	// time, so later-eliminated entities are already restored when an
	// earlier action needs them.
	for k := len(pr.stack) - 1; k >= 0; k-- {
		act := &pr.stack[k]
		switch act.kind {
		case psFix:
			sol.values[act.v] = act.val
		case psDropRow, psSingletonRow:
			sol.duals[act.row] = 0
		case psFreeSingleton:
			sum := 0.0
			for _, t := range act.terms {
				sum += t.Coef * sol.values[t.Var]
			}
			sol.values[act.v] = (act.rhs - sum) / act.a
			sol.duals[act.row] = act.cj / act.a
		}
	}

	// Columns of the original matrix (merged), for reduced costs and the
	// singleton-row dual transfer.
	cols := make([][]Term, nv)
	for i := range m.rows {
		for _, t := range mergeRowTerms(&m.rows[i]) {
			if t.Coef != 0 {
				cols[t.Var] = append(cols[t.Var], Term{Var: Var(i), Coef: t.Coef})
			}
		}
	}
	redCost := func(v int) float64 {
		d := m.obj[v]
		for _, t := range cols[v] {
			d -= sol.duals[t.Var] * t.Coef
		}
		return d
	}

	// Singleton-row dual transfer: when the eliminated row's fold left
	// its column pressing a bound that is not an original bound, the
	// multiplier belongs to the row. Transferring y = d/a zeroes the
	// column's reduced cost; the fold direction guarantees the sign is
	// valid for the row sense, checked anyway for safety.
	for k := len(pr.stack) - 1; k >= 0; k-- {
		act := &pr.stack[k]
		if act.kind != psSingletonRow {
			continue
		}
		x := sol.values[act.v]
		if math.Abs(act.a*x-act.rhs) > psDualTol*(1+math.Abs(act.rhs)) {
			continue // row is slack at the solution: y = 0 is right
		}
		d := redCost(act.v)
		atLo := math.Abs(x-m.lo[act.v]) <= psDualTol*(1+math.Abs(x))
		atHi := !math.IsInf(m.hi[act.v], 1) && math.Abs(x-m.hi[act.v]) <= psDualTol*(1+math.Abs(x))
		switch {
		case atLo && atHi:
			continue // fixed column: any reduced-cost sign is valid
		case atLo && d >= -psDualTol:
			continue
		case atHi && d <= psDualTol:
			continue
		case !atLo && !atHi && math.Abs(d) <= psDualTol:
			continue
		}
		y := d / act.a
		if act.sense == LE && y > psDualTol {
			continue
		}
		if act.sense == GE && y < -psDualTol {
			continue
		}
		sol.duals[act.row] = y
	}

	// Final assembly against the original model: snap values into the
	// original bounds (implied-free reconstruction can sit a rounding
	// error outside) and recompute reduced costs and the objective.
	for j := 0; j < nv; j++ {
		if sol.values[j] < m.lo[j] {
			sol.values[j] = m.lo[j]
		}
		if sol.values[j] > m.hi[j] {
			sol.values[j] = m.hi[j]
		}
	}
	for j := 0; j < nv; j++ {
		sol.reduced[j] = redCost(j)
		sol.Objective += m.obj[j] * sol.values[j]
	}
	return sol
}
