package lp

import (
	"fmt"
	"math"
)

// basisFactor abstracts the representation of the basis inverse. Two
// implementations exist: denseFactor keeps the explicit inverse updated
// with Gauss-Jordan product-form row operations (the legacy path, kept
// as the differential reference behind SolveOptions.DenseBasis), and
// luFactor keeps a sparse LU factorization maintained across pivots
// with Forrest-Tomlin-style eta updates (the default).
//
// All dense vectors are indexed by basis row/position 0..m-1.
type basisFactor interface {
	// install initializes the factor for the trivial starting basis
	// B = diag(diag) produced by newSimplex (artificial columns ±1).
	install(s *simplex, diag []float64)
	// ftranCol sets out = B^-1 A_j for the sparse column c (FTRAN).
	ftranCol(c *sparseCol, out []float64)
	// ftranIn solves B x = v in place.
	ftranIn(v []float64)
	// btranIn solves B^T y = v in place (BTRAN).
	btranIn(v []float64)
	// rowInv fills out with row r of B^-1 (equivalently B^-T e_r).
	rowInv(r int, out []float64)
	// update folds the basis change at row leave into the factors, where
	// w = B^-1 A_enter as produced by ftranCol. It returns false — and
	// leaves the factors unchanged — when the update cannot be absorbed
	// (unstable pivot or a full eta file); the caller must refactorize.
	update(leave int, w []float64) bool
	// refactor rebuilds the factors from s.basicVar. With repair set,
	// dependent basis positions are evicted for per-row unit columns
	// instead of failing (see refactorizeRepair).
	refactor(s *simplex, repair bool) error
	// grow extends the factors after appendRows added model rows
	// [oldM, s.m) with basic unit columns; s bookkeeping is already
	// updated when grow is called.
	grow(s *simplex, m *Model, oldM int) error
	// isSparse reports whether this is the sparse LU representation
	// (callers use it to pick incremental-vs-recomputed dual updates).
	isSparse() bool
	// stats returns the factor's lifetime counters.
	stats() factorStats
}

// factorStats are counters a factor maintains about itself.
type factorStats struct {
	refactors int     // full refactorizations performed
	maxEta    int     // peak eta-file length between refactorizations
	fillIn    float64 // peak nnz(L+U)/nnz(B) ratio (sparse only)
}

func newBasisFactor(dense bool) basisFactor {
	if dense {
		return &denseFactor{}
	}
	return &luFactor{}
}

// denseFactor is the explicit dense inverse, flattened row-major into a
// single backing slice (row r is binv[r*m : (r+1)*m]). One allocation
// instead of m row slices keeps pivot row operations on contiguous
// memory. This is the pre-sparse-LU representation, kept verbatim as
// the differential reference.
type denseFactor struct {
	m    int
	binv []float64
	// scratch holds the augmented [B|I] working matrix during
	// refactorization (stride 2m); tmp is the solve buffer. Both are
	// reused so the hot path does not allocate.
	scratch []float64
	tmp     []float64
	st      factorStats
}

func (d *denseFactor) row(r int) []float64 { return d.binv[r*d.m : (r+1)*d.m] }

func (d *denseFactor) solveBuf() []float64 {
	if cap(d.tmp) < d.m {
		d.tmp = make([]float64, d.m)
	}
	return d.tmp[:d.m]
}

func (d *denseFactor) install(s *simplex, diag []float64) {
	d.m = s.m
	d.binv = make([]float64, s.m*s.m)
	for i, v := range diag {
		d.binv[i*s.m+i] = v // inverse of diag(±1) is itself
	}
}

func (d *denseFactor) isSparse() bool     { return false }
func (d *denseFactor) stats() factorStats { return d.st }

func (d *denseFactor) ftranCol(c *sparseCol, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for k, r := range c.rows {
		v := c.vals[k]
		for i := 0; i < d.m; i++ {
			out[i] += d.binv[i*d.m+r] * v
		}
	}
}

func (d *denseFactor) ftranIn(v []float64) {
	t := d.solveBuf()
	for r := 0; r < d.m; r++ {
		acc := 0.0
		row := d.row(r)
		for i := 0; i < d.m; i++ {
			acc += row[i] * v[i]
		}
		t[r] = acc
	}
	copy(v, t)
}

func (d *denseFactor) btranIn(v []float64) {
	t := d.solveBuf()
	for i := range t {
		t[i] = 0
	}
	for r := 0; r < d.m; r++ {
		cb := v[r]
		if cb == 0 {
			continue
		}
		row := d.row(r)
		for i := 0; i < d.m; i++ {
			t[i] += cb * row[i]
		}
	}
	copy(v, t)
}

func (d *denseFactor) rowInv(r int, out []float64) {
	copy(out[:d.m], d.row(r))
}

// update applies the product-form update to the inverse: row `leave`
// scaled by the pivot element, other rows eliminated. The dense update
// never rejects.
func (d *denseFactor) update(leave int, w []float64) bool {
	rowL := d.row(leave)
	inv := 1 / w[leave]
	for i := range rowL {
		rowL[i] *= inv
	}
	for r := 0; r < d.m; r++ {
		if r == leave {
			continue
		}
		f := w[r]
		if f == 0 {
			continue
		}
		rowR := d.row(r)
		for i := range rowR {
			rowR[i] -= f * rowL[i]
		}
	}
	return true
}

// refactor rebuilds the inverse from the basis columns by Gauss-Jordan
// with partial pivoting, clearing accumulated floating-point drift.
func (d *denseFactor) refactor(s *simplex, repair bool) error {
	m := s.m
	d.m = m
	if len(d.binv) != m*m {
		d.binv = make([]float64, m*m)
	}
	// Assemble the basis matrix augmented with the identity, row-major
	// with stride 2m in the reusable scratch buffer.
	if cap(d.scratch) < m*2*m {
		d.scratch = make([]float64, m*2*m)
	}
	a := d.scratch[:m*2*m]
	for i := range a {
		a[i] = 0
	}
	row := func(r int) []float64 { return a[r*2*m : (r+1)*2*m] }
	for i := 0; i < m; i++ {
		row(i)[m+i] = 1
	}
	for r := 0; r < m; r++ {
		c := &s.cols[s.basicVar[r]]
		for k, ri := range c.rows {
			row(ri)[r] = c.vals[k]
		}
	}
	for col := 0; col < m; col++ {
		// Partial pivot.
		p, best := -1, 1e-12
		for r := col; r < m; r++ {
			if v := math.Abs(row(r)[col]); v > best {
				p, best = r, v
			}
		}
		if p < 0 {
			if !repair || !d.repairBasisColumn(s, a, col) {
				return fmt.Errorf("lp: internal: singular basis during refactorization (col %d)", col)
			}
			for r := col; r < m; r++ {
				if v := math.Abs(row(r)[col]); v > best {
					p, best = r, v
				}
			}
			if p < 0 {
				return fmt.Errorf("lp: internal: singular basis during refactorization (col %d)", col)
			}
		}
		if p != col {
			rc, rp := row(col), row(p)
			for k := 0; k < 2*m; k++ {
				rc[k], rp[k] = rp[k], rc[k]
			}
		}
		rc := row(col)
		inv := 1 / rc[col]
		for k := col; k < 2*m; k++ {
			rc[k] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			rr := row(r)
			f := rr[col]
			if f == 0 {
				continue
			}
			for k := col; k < 2*m; k++ {
				rr[k] -= f * rc[k]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(d.row(i), row(i)[m:])
	}
	d.st.refactors++
	return nil
}

// repairBasisColumn handles a dependent basis column discovered mid
// Gauss-Jordan at position col: the basic variable there is evicted to its
// lower bound and replaced by a nonbasic per-row unit column (slack or
// artificial). The augmented right half of the working matrix holds the
// accumulated row operations E, so column m+orig is E*e_orig — the
// transformed image of row orig's unit vector — which lets the replacement
// column be installed without restarting the factorization. Returns false
// if no unit column has a usable pivot in the remaining working rows.
func (d *denseFactor) repairBasisColumn(s *simplex, a []float64, col int) bool {
	m := s.m
	row := func(r int) []float64 { return a[r*2*m : (r+1)*2*m] }
	bestOrig, bestV := -1, 1e-9
	for orig := 0; orig < m; orig++ {
		u := s.rowUnit[orig]
		if u < 0 || s.status[u] == inBasis {
			continue
		}
		for r := col; r < m; r++ {
			if v := math.Abs(row(r)[m+orig]); v > bestV {
				bestOrig, bestV = orig, v
			}
		}
	}
	if bestOrig < 0 {
		return false
	}
	u := s.rowUnit[bestOrig]
	sigma := s.cols[u].vals[0]
	for r := 0; r < m; r++ {
		row(r)[col] = sigma * row(r)[m+bestOrig]
	}
	s.evictBasic(col, u)
	return true
}

// grow extends the inverse after appendRows: the basis grows
// block-triangularly with unit columns D = diag(±1) on the new rows, so
//
//	[B 0; C D]^-1 = [Binv 0; -D^-1 C Binv, D^-1]
//
// and the kept inverse stays exact without refactorization. The new
// rows' structural coefficients are re-read (merged) from the model.
func (d *denseFactor) grow(s *simplex, m *Model, oldM int) error {
	newM := s.m
	nb := make([]float64, newM*newM)
	for r := 0; r < oldM; r++ {
		copy(nb[r*newM:r*newM+oldM], d.binv[r*oldM:(r+1)*oldM])
	}
	oldBinv := d.binv
	d.binv = nb
	d.m = newM
	for i := oldM; i < newM; i++ {
		// New Binv row: -sigma * (a_B · Binv) over the old block, sigma at
		// its own diagonal. Structural variables can only be basic in old
		// rows here (every new row's basic is its own unit column), so the
		// products read exclusively from the pre-append inverse.
		sigma := s.cols[s.basicVar[i]].vals[0]
		rowI := nb[i*newM : (i+1)*newM]
		for _, t := range mergeRowTerms(&m.rows[i]) {
			rv := s.rowOf[t.Var]
			if rv < 0 || rv >= oldM {
				continue // nonbasic: contributes to xB only, not to Binv
			}
			f := sigma * t.Coef
			src := oldBinv[rv*oldM : (rv+1)*oldM]
			for k := 0; k < oldM; k++ {
				rowI[k] -= f * src[k]
			}
		}
		rowI[i] = sigma
	}
	return nil
}

// mergeRowTerms merges duplicate variables within a model row
// deterministically (first occurrence keeps the slot).
func mergeRowTerms(r *row) []Term {
	merged := make([]Term, 0, len(r.terms))
	for _, t := range r.terms {
		found := false
		for k := range merged {
			if merged[k].Var == t.Var {
				merged[k].Coef += t.Coef
				found = true
				break
			}
		}
		if !found {
			merged = append(merged, t)
		}
	}
	return merged
}
