package lp

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// LoadGroup is one component of a lexicographic min-max objective: a linear
// load expression normalized by a positive capacity. In FlowTime's
// formulation (Eq. 1 of the paper) there is one group per (time slot,
// resource kind) pair, the load is the total allocation z[t][r], and the
// capacity is C[t][r].
type LoadGroup struct {
	// Name is used in diagnostics only.
	Name string
	// Terms is the linear load expression.
	Terms []Term
	// Cap is the normalizing capacity; must be > 0.
	Cap float64
}

// MinMaxResult is the outcome of LexMinMax.
type MinMaxResult struct {
	// Solution is the final variable assignment.
	Solution *Solution
	// Levels[g] is the normalized load of group g in the final solution.
	Levels []float64
	// Rounds is the number of min-θ LPs solved.
	Rounds int
	// Stats aggregates solver work across every LP solved by the call
	// (min-θ rounds, saturation probes, and the final tie-break solve).
	Stats SolveStats
}

// LexMinMax lexicographically minimizes the descending-sorted vector of
// normalized group loads subject to the constraints already present in
// base. This is the numerically stable realization of the paper's Lemma 1
// scalarization min Σ k^(z/C): rather than exponentiating (which overflows
// for k = |T||R|), it repeatedly solves
//
//	min θ  s.t.  base constraints, load_g ≤ θ·cap_g for active g,
//	             load_g ≤ level_g·cap_g for frozen g,
//
// then freezes the groups that are saturated in every optimal solution
// (detected through positive duals on their capacity rows, with an exact
// minimization probe as a fallback for degenerate bases) and recurses on
// the rest. The two forms have the same optimum: Lemma 1 states g(u) ≤ g(v)
// ⟺ u ⪯ v lexicographically, and the iterative scheme computes exactly the
// ⪯-minimal achievable vector.
//
// base is not mutated. Every group must have Cap > 0.
func LexMinMax(base *Model, groups []LoadGroup) (*MinMaxResult, error) {
	return LexMinMaxWithOptions(base, groups, MinMaxOptions{})
}

// MinMaxOptions tunes LexMinMaxWithOptions.
type MinMaxOptions struct {
	// MaxRounds caps the number of min-θ LPs. Zero means no cap (exact
	// lexicographic optimum). When the cap is reached, all still-active
	// groups are frozen at the last level: the result is feasible, has the
	// exact optimal maximum level, and is lexicographically optimal down
	// to the level reached. FlowTime uses a cap to bound event-handling
	// latency (paper §III: scheduling efficiency).
	MaxRounds int
	// Solve bounds the solver work. MaxIter applies per inner LP solve;
	// MaxTime budgets the WHOLE LexMinMax call — elapsed time is tracked
	// across rounds and the remainder passed to each inner solve, so the
	// call as a whole returns within roughly MaxTime.
	Solve SolveOptions
}

// LexMinMaxWithOptions is LexMinMax with tuning options.
func LexMinMaxWithOptions(base *Model, groups []LoadGroup, opts MinMaxOptions) (*MinMaxResult, error) {
	for gi, g := range groups {
		if g.Cap <= 0 {
			return nil, fmt.Errorf("lp: lexminmax: group %d (%s) has non-positive capacity %g", gi, g.Name, g.Cap)
		}
		if len(g.Terms) == 0 {
			return nil, fmt.Errorf("lp: lexminmax: group %d (%s) has no terms", gi, g.Name)
		}
	}

	const levelTol = 1e-6

	// solve runs one inner LP under the caller's budget, charging elapsed
	// wall-clock time against the whole-call MaxTime and aggregating stats.
	start := time.Now()
	var agg SolveStats
	solve := func(m *Model) (*Solution, error) {
		o := opts.Solve
		if o.MaxTime > 0 {
			rem := o.MaxTime - time.Since(start)
			if rem <= 0 {
				return nil, fmt.Errorf("%w after %d pivots (lexminmax budget)", ErrTimeLimit, agg.Pivots)
			}
			o.MaxTime = rem
		}
		sol, st, err := m.SolveWithOptions(o)
		agg.Pivots += st.Pivots
		return sol, err
	}

	active := make([]int, 0, len(groups))
	for gi := range groups {
		active = append(active, gi)
	}
	frozen := make(map[int]float64, len(groups))

	var (
		lastSol *Solution
		rounds  int
	)
	for len(active) > 0 {
		rounds++
		if rounds > len(groups)+1 {
			return nil, fmt.Errorf("lp: lexminmax: failed to converge after %d rounds", rounds)
		}
		lastRound := opts.MaxRounds > 0 && rounds >= opts.MaxRounds

		m := base.Clone()
		theta, err := m.NewVar("theta", 0, Inf)
		if err != nil {
			return nil, err
		}
		if err := m.SetObjective([]Term{{Var: theta, Coef: 1}}); err != nil {
			return nil, err
		}
		// Row index of each group's cap constraint, for dual lookup.
		capRow := make(map[int]int, len(groups))
		for _, gi := range active {
			g := groups[gi]
			terms := append(append(make([]Term, 0, len(g.Terms)+1), g.Terms...),
				Term{Var: theta, Coef: -g.Cap})
			capRow[gi] = m.NumConstraints()
			if err := m.AddConstraint(terms, LE, 0); err != nil {
				return nil, err
			}
		}
		for gi, level := range frozen {
			if err := m.AddConstraint(groups[gi].Terms, LE, level*groups[gi].Cap); err != nil {
				return nil, err
			}
		}

		sol, err := solve(m)
		if err != nil {
			return nil, fmt.Errorf("lp: lexminmax round %d: %w", rounds, err)
		}
		lastSol = sol
		level := sol.Value(theta)

		if level <= levelTol {
			// Nothing left to flatten: remaining groups are all at ~zero.
			for _, gi := range active {
				frozen[gi] = 0
			}
			break
		}
		if lastRound {
			for _, gi := range active {
				frozen[gi] = level
			}
			break
		}

		// Saturated candidates: groups whose load reaches θ·cap.
		var binding []int
		for _, gi := range active {
			load := evalTerms(groups[gi].Terms, sol)
			if load >= (level-levelTol)*groups[gi].Cap {
				binding = append(binding, gi)
			}
		}
		if len(binding) == 0 {
			return nil, fmt.Errorf("lp: lexminmax: no binding group at level %g (internal error)", level)
		}

		// Freeze groups that must be saturated in every optimum. A nonzero
		// dual on the cap row certifies that (LE-row duals are <= 0 for a
		// minimization under this solver's sign convention); for fully
		// degenerate bases fall back to an exact probe.
		newFrozen := 0
		for _, gi := range binding {
			if sol.Dual(capRow[gi]) < -1e-7 {
				frozen[gi] = level
				newFrozen++
			}
		}
		if newFrozen == 0 {
			for _, gi := range binding {
				sat, err := probeSaturated(base, groups, frozen, active, gi, level, levelTol, solve)
				if err != nil {
					return nil, err
				}
				if sat {
					frozen[gi] = level
					newFrozen++
					break
				}
			}
		}
		if newFrozen == 0 {
			// Mathematically at least one binding group is saturated in every
			// optimum; if numerics hid it, freeze all binding groups. This
			// may slightly over-constrain deeper levels but guarantees
			// termination with a feasible, near-lexmin plan.
			for _, gi := range binding {
				frozen[gi] = level
				newFrozen++
			}
		}

		next := active[:0]
		for _, gi := range active {
			if _, ok := frozen[gi]; !ok {
				next = append(next, gi)
			}
		}
		active = next
	}

	// One final solve pinning every group to its freeze level, minimizing
	// the total load as a tie-break so the plan does not carry slack
	// allocations that frozen caps would permit.
	final := base.Clone()
	for gi, level := range frozen {
		if err := final.AddConstraint(groups[gi].Terms, LE, level*groups[gi].Cap+1e-9); err != nil {
			return nil, err
		}
	}
	var objTerms []Term
	for gi := range groups {
		objTerms = append(objTerms, groups[gi].Terms...)
	}
	if err := final.SetObjective(objTerms); err != nil {
		return nil, err
	}
	sol, err := solve(final)
	if err != nil {
		// The pinned model should always be feasible; fall back to the last
		// round's solution if tolerances (or a budget tripping mid-tie-break)
		// made it fail.
		if lastSol == nil {
			return nil, fmt.Errorf("lp: lexminmax final solve: %w", err)
		}
		sol = lastSol
	}

	levels := make([]float64, len(groups))
	for gi := range groups {
		levels[gi] = evalTerms(groups[gi].Terms, sol) / groups[gi].Cap
	}
	agg.Duration = time.Since(start)
	return &MinMaxResult{Solution: sol, Levels: levels, Rounds: rounds, Stats: agg}, nil
}

// probeSaturated reports whether group target is saturated (load = θ·cap) in
// every optimal solution of the current round, by minimizing its load
// subject to all other groups staying within level. solve carries the
// caller's budget.
func probeSaturated(base *Model, groups []LoadGroup, frozen map[int]float64, active []int, target int, level, tol float64, solve func(*Model) (*Solution, error)) (bool, error) {
	m := base.Clone()
	for _, gi := range active {
		if gi == target {
			continue
		}
		if err := m.AddConstraint(groups[gi].Terms, LE, level*groups[gi].Cap+tol); err != nil {
			return false, err
		}
	}
	for gi, lvl := range frozen {
		if err := m.AddConstraint(groups[gi].Terms, LE, lvl*groups[gi].Cap+tol); err != nil {
			return false, err
		}
	}
	if err := m.SetObjective(groups[target].Terms); err != nil {
		return false, err
	}
	sol, err := solve(m)
	if err != nil {
		return false, fmt.Errorf("lp: lexminmax probe: %w", err)
	}
	minLoad := evalTerms(groups[target].Terms, sol)
	return minLoad >= (level-10*tol)*groups[target].Cap, nil
}

func evalTerms(terms []Term, sol *Solution) float64 {
	v := 0.0
	for _, t := range terms {
		v += t.Coef * sol.Value(t.Var)
	}
	return v
}

// SortedDescending returns a copy of levels sorted high-to-low, the vector
// the lexicographic objective compares.
func SortedDescending(levels []float64) []float64 {
	out := append([]float64(nil), levels...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// LexLess compares two descending-sorted vectors lexicographically with
// tolerance eps: it reports whether a ⪯ b strictly (a is better).
func LexLess(a, b []float64, eps float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]-eps:
			return true
		case a[i] > b[i]+eps:
			return false
		}
	}
	return false
}

// MaxLevel returns the largest element of levels, or 0 if empty.
func MaxLevel(levels []float64) float64 {
	maxL := 0.0
	for _, l := range levels {
		maxL = math.Max(maxL, l)
	}
	return maxL
}
