package lp

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// LoadGroup is one component of a lexicographic min-max objective: a linear
// load expression normalized by a positive capacity. In FlowTime's
// formulation (Eq. 1 of the paper) there is one group per (time slot,
// resource kind) pair, the load is the total allocation z[t][r], and the
// capacity is C[t][r].
type LoadGroup struct {
	// Name is used in diagnostics only.
	Name string
	// Terms is the linear load expression.
	Terms []Term
	// Cap is the normalizing capacity; must be > 0.
	Cap float64
}

// MinMaxResult is the outcome of LexMinMax.
type MinMaxResult struct {
	// Solution is the final variable assignment.
	Solution *Solution
	// Levels[g] is the normalized load of group g in the final solution.
	Levels []float64
	// Rounds is the number of min-θ LPs solved.
	Rounds int
	// Stats aggregates solver work across every LP solved by the call
	// (min-θ rounds, saturation probes, and the final tie-break solve),
	// including the warm/cold start counters.
	Stats SolveStats
}

// LexMinMax lexicographically minimizes the descending-sorted vector of
// normalized group loads subject to the constraints already present in
// base. This is the numerically stable realization of the paper's Lemma 1
// scalarization min Σ k^(z/C): rather than exponentiating (which overflows
// for k = |T||R|), it repeatedly solves
//
//	min θ  s.t.  base constraints, load_g ≤ θ·cap_g for active g,
//	             load_g ≤ level_g·cap_g for frozen g,
//
// then freezes the groups that are saturated in every optimal solution
// (detected through positive duals on their capacity rows, with an exact
// minimization probe as a fallback for degenerate bases) and recurses on
// the rest. The two forms have the same optimum: Lemma 1 states g(u) ≤ g(v)
// ⟺ u ⪯ v lexicographically, and the iterative scheme computes exactly the
// ⪯-minimal achievable vector.
//
// base is not mutated. Every group must have Cap > 0.
func LexMinMax(base *Model, groups []LoadGroup) (*MinMaxResult, error) {
	return LexMinMaxWithOptions(base, groups, MinMaxOptions{})
}

// MinMaxOptions tunes LexMinMaxWithOptions.
type MinMaxOptions struct {
	// MaxRounds caps the number of min-θ LPs. Zero means no cap (exact
	// lexicographic optimum). When the cap is reached, all still-active
	// groups are frozen at the last level: the result is feasible, has the
	// exact optimal maximum level, and is lexicographically optimal down
	// to the level reached. FlowTime uses a cap to bound event-handling
	// latency (paper §III: scheduling efficiency).
	MaxRounds int
	// Solve bounds the solver work. MaxIter applies per inner LP solve;
	// MaxTime budgets the WHOLE LexMinMax call — elapsed time is tracked
	// across rounds and the remainder passed to each inner solve, so the
	// call as a whole returns within roughly MaxTime.
	Solve SolveOptions
	// DisableWarmStart forces the legacy clone-per-round path: every round
	// and probe clones base and cold-starts. The default incremental path
	// builds one θ-model, toggles row activity via SetRHS, and re-solves
	// against the kept basis (dual-simplex repair). The two paths produce
	// the same levels within tolerance; the legacy path exists as the
	// reference for equivalence tests and benchmarks.
	DisableWarmStart bool
	// Workspace, when non-nil, carries the incremental θ-model and its
	// simplex basis across LexMinMax calls on the SAME base model and
	// group list (e.g. the degradation ladder retrying with a smaller
	// round budget). Group capacities may change between calls — the
	// reset pass reapplies them as coefficient deltas the warm solver
	// repairs — but the load terms must stay fixed and the caller must
	// not mutate base between calls sharing a workspace. The zero value
	// is ready to use.
	Workspace *LexWorkspace
}

// levelTol is the normalized-level tolerance used for binding detection,
// saturation probes, and warm-vs-cold equivalence.
const levelTol = 1e-6

// LexMinMaxWithOptions is LexMinMax with tuning options.
func LexMinMaxWithOptions(base *Model, groups []LoadGroup, opts MinMaxOptions) (*MinMaxResult, error) {
	for gi, g := range groups {
		if g.Cap <= 0 {
			return nil, fmt.Errorf("lp: lexminmax: group %d (%s) has non-positive capacity %g", gi, g.Name, g.Cap)
		}
		if len(g.Terms) == 0 {
			return nil, fmt.Errorf("lp: lexminmax: group %d (%s) has no terms", gi, g.Name)
		}
	}

	r := &lexRun{base: base, groups: groups, opts: opts, start: time.Now()}
	if !opts.DisableWarmStart {
		lw := opts.Workspace
		if lw == nil {
			lw = &LexWorkspace{}
		}
		if lw.prepare(base, groups) {
			return r.runIncremental(lw)
		}
		// Model construction failed (defensive; clone + append cannot
		// normally fail) — fall through to the legacy path.
	}
	return r.runLegacy()
}

// lexRun is the shared state of one LexMinMax call (either path).
type lexRun struct {
	base   *Model
	groups []LoadGroup
	opts   MinMaxOptions
	start  time.Time
	agg    SolveStats
}

// solve runs one inner LP under the caller's budget, charging elapsed
// wall-clock time against the whole-call MaxTime and aggregating stats.
// ws may be nil (cold path).
func (r *lexRun) solve(m *Model, ws *Workspace) (*Solution, error) {
	o := r.opts.Solve
	o.Workspace = ws
	if o.MaxTime > 0 {
		rem := o.MaxTime - time.Since(r.start)
		if rem <= 0 {
			return nil, fmt.Errorf("%w after %d pivots (lexminmax budget)", ErrTimeLimit, r.agg.Pivots)
		}
		o.MaxTime = rem
	}
	sol, st, err := m.SolveWithOptions(o)
	r.agg.accumulate(st)
	return sol, err
}

// convergenceError reports the active/frozen split so a stuck instance can
// be debugged from the error alone.
func (r *lexRun) convergenceError(rounds int, active []int, frozen map[int]float64) error {
	frozenIdx := make([]int, 0, len(frozen))
	for gi := range frozen {
		frozenIdx = append(frozenIdx, gi)
	}
	sort.Ints(frozenIdx)
	return fmt.Errorf("lp: lexminmax: failed to converge after %d rounds: %d of %d groups active %v, %d frozen %v",
		rounds, len(active), len(r.groups), active, len(frozenIdx), frozenIdx)
}

// result assembles the MinMaxResult from the final (or fallback) solution.
func (r *lexRun) result(sol *Solution, rounds int) *MinMaxResult {
	levels := make([]float64, len(r.groups))
	for gi := range r.groups {
		levels[gi] = evalTerms(r.groups[gi].Terms, sol) / r.groups[gi].Cap
	}
	r.agg.Duration = time.Since(r.start)
	return &MinMaxResult{Solution: sol, Levels: levels, Rounds: rounds, Stats: r.agg}
}

// LexWorkspace carries the incremental θ-model of LexMinMaxWithOptions and
// the simplex basis it is solved against. One workspace serves repeated
// calls on the same (base, groups) pair — within one call it makes every
// round, probe, and the final tie-break a warm re-solve of a single model;
// across calls (the fallback ladder's retries) it additionally reuses the
// model build and the last basis. The zero value is ready to use. Not safe
// for concurrent use.
type LexWorkspace struct {
	base     *Model
	baseVars int
	baseRows int
	nGroups  int
	model    *Model
	theta    Var
	// capRow[gi] is group gi's single capacity row. Active form:
	// load_gi − cap_gi·θ ≤ 0. Frozen form (θ detached via SetCoef):
	// load_gi ≤ level·cap_gi. One row per group keeps the shared model the
	// same size as each legacy per-round model, so warm pivots cost the
	// same O(m²) basis update as cold ones.
	capRow   []int
	detached []bool // detached[gi]: capRow[gi] is currently in frozen form
	// appliedCap[gi] is the capacity currently wired into capRow[gi]'s θ
	// coefficient. Capacities MAY differ between calls sharing a
	// workspace (e.g. ad-hoc reservations shaving slot capacity between
	// replans): the reset pass reconciles each changed cap with one
	// SetCoef, which reaches the warm solver as a coefficient/RHS delta
	// repaired by dual pivots instead of invalidating the kept basis.
	appliedCap []float64
	allTerms   []Term // concatenated group terms (final tie-break objective)
	thetaTerm  []Term // {θ, 1} (round objective)
	ws         Workspace
}

// Reset discards the kept model and basis.
func (lw *LexWorkspace) Reset() {
	*lw = LexWorkspace{}
}

// matches reports whether the kept model was built for this (base, groups)
// pair. The group check is shallow (count only): callers sharing a
// workspace across calls keep the same load terms, while capacities may
// change freely — the reset pass in runIncremental reapplies them.
func (lw *LexWorkspace) matches(base *Model, groups []LoadGroup) bool {
	if lw.model == nil || lw.base != base || lw.nGroups != len(groups) {
		return false
	}
	if lw.baseVars != base.NumVars() || lw.baseRows != base.NumConstraints() {
		return false
	}
	return true
}

// prepare builds (or reuses) the shared θ-model: the cloned base plus one
// capacity row per group in active form. It returns false only on a
// construction failure (defensive; the caller then takes the legacy
// clone-per-round path).
func (lw *LexWorkspace) prepare(base *Model, groups []LoadGroup) bool {
	if lw.matches(base, groups) {
		return true
	}
	lw.Reset()

	m := base.Clone()
	theta, err := m.NewVar("theta", 0, Inf)
	if err != nil {
		return false
	}
	capRow := make([]int, len(groups))
	appliedCap := make([]float64, len(groups))
	var allTerms []Term
	for gi, g := range groups {
		terms := append(append(make([]Term, 0, len(g.Terms)+1), g.Terms...),
			Term{Var: theta, Coef: -g.Cap})
		capRow[gi] = m.NumConstraints()
		if err := m.AddConstraint(terms, LE, 0); err != nil {
			return false
		}
		appliedCap[gi] = g.Cap
		allTerms = append(allTerms, g.Terms...)
	}

	lw.base = base
	lw.baseVars = base.NumVars()
	lw.baseRows = base.NumConstraints()
	lw.nGroups = len(groups)
	lw.model = m
	lw.theta = theta
	lw.capRow = capRow
	lw.detached = make([]bool, len(groups))
	lw.appliedCap = appliedCap
	lw.allTerms = allTerms
	lw.thetaTerm = []Term{{Var: theta, Coef: 1}}
	return true
}

// runIncremental is the warm-started path: one shared θ-model with a
// single capacity row per group, every solve starting from the kept
// basis. A group freezes by detaching θ from its row (SetCoef, one
// refactorization per round) and fixing the RHS at level·cap, so the
// model never grows and a warm pivot costs the same basis update as a
// cold one. Saturation-probe bands and the final tie-break pin the still
// θ-attached groups through θ's upper bound instead of extra rows.
func (r *lexRun) runIncremental(lw *LexWorkspace) (*MinMaxResult, error) {
	groups := r.groups
	m := lw.model

	active := make([]int, 0, len(groups))
	for gi := range groups {
		active = append(active, gi)
	}
	frozen := make(map[int]float64, len(groups))

	// Reset the shared model to the all-active state, whatever a previous
	// call left in it: θ reattached to every row, caps at 0, θ free. The
	// warm solver absorbs the matrix edits with one refactorization and a
	// best-effort dual repair; if the old basis is too far gone it falls
	// back to a cold start on its own.
	for gi := range groups {
		if lw.detached[gi] || lw.appliedCap[gi] != groups[gi].Cap {
			if err := m.SetCoef(lw.capRow[gi], lw.theta, -groups[gi].Cap); err != nil {
				return nil, err
			}
			lw.detached[gi] = false
			lw.appliedCap[gi] = groups[gi].Cap
		}
		if err := m.SetRHS(lw.capRow[gi], 0); err != nil {
			return nil, err
		}
	}
	if err := m.SetVarBounds(lw.theta, 0, Inf); err != nil {
		return nil, err
	}
	var (
		lastSol    *Solution
		rounds     int
		thetaLevel float64 // level the final θ-attached batch froze at
	)
	for len(active) > 0 {
		rounds++
		if rounds > len(groups)+1 {
			return nil, r.convergenceError(rounds, active, frozen)
		}
		lastRound := r.opts.MaxRounds > 0 && rounds >= r.opts.MaxRounds

		if err := m.SetObjective(lw.thetaTerm); err != nil {
			return nil, err
		}
		sol, err := r.solve(m, &lw.ws)
		if err != nil {
			return nil, fmt.Errorf("lp: lexminmax round %d: %w", rounds, err)
		}
		lastSol = sol
		level := sol.Value(lw.theta)

		if level <= levelTol {
			for _, gi := range active {
				frozen[gi] = 0
			}
			thetaLevel = 0
			active = active[:0]
			break
		}
		if lastRound {
			for _, gi := range active {
				frozen[gi] = level
			}
			thetaLevel = level
			active = active[:0]
			break
		}

		// Saturated candidates: groups whose load reaches θ·cap.
		var binding []int
		for _, gi := range active {
			load := evalTerms(groups[gi].Terms, sol)
			if load >= (level-levelTol)*groups[gi].Cap {
				binding = append(binding, gi)
			}
		}
		if len(binding) == 0 {
			return nil, fmt.Errorf("lp: lexminmax: no binding group at level %g (internal error)", level)
		}

		// Freeze groups that must be saturated in every optimum. A nonzero
		// dual on the cap row certifies that (LE-row duals are <= 0 for a
		// minimization under this solver's sign convention); for fully
		// degenerate bases fall back to an exact probe.
		var toFreeze []int
		for _, gi := range binding {
			if sol.Dual(lw.capRow[gi]) < -1e-7 {
				toFreeze = append(toFreeze, gi)
			}
		}
		if len(toFreeze) == 0 {
			// Probe on the SAME model: pin every group into its current
			// level band — actives through θ's upper bound, frozen rows by
			// relaxing their RHS one band-width — then minimize each
			// candidate's own load. Pinning the candidate too is harmless:
			// an upper bound at the band cannot raise a minimum that is
			// already below it.
			if err := m.SetVarBounds(lw.theta, 0, level+levelTol); err != nil {
				return nil, err
			}
			for gi, lvl := range frozen {
				if err := m.SetRHS(lw.capRow[gi], (lvl+levelTol)*groups[gi].Cap); err != nil {
					return nil, err
				}
			}
			for _, gi := range binding {
				if err := m.SetObjective(groups[gi].Terms); err != nil {
					return nil, err
				}
				psol, err := r.solve(m, &lw.ws)
				if err != nil {
					return nil, fmt.Errorf("lp: lexminmax probe: %w", err)
				}
				minLoad := evalTerms(groups[gi].Terms, psol)
				if minLoad >= (level-10*levelTol)*groups[gi].Cap {
					toFreeze = append(toFreeze, gi)
					break
				}
			}
			// Restore the frozen pins. θ's ratcheted bound can stay — the
			// next round's optimum is ≤ this level anyway.
			for gi, lvl := range frozen {
				if err := m.SetRHS(lw.capRow[gi], lvl*groups[gi].Cap); err != nil {
					return nil, err
				}
			}
		}
		if len(toFreeze) == 0 {
			// Mathematically at least one binding group is saturated in every
			// optimum; if numerics hid it, freeze all binding groups. This
			// may slightly over-constrain deeper levels but guarantees
			// termination with a feasible, near-lexmin plan.
			toFreeze = binding
		}

		if len(toFreeze) == len(active) {
			// Final batch: keep θ attached — detaching every remaining row
			// would zero θ's column and leave the kept basis singular. The
			// tie-break pins these groups through θ's upper bound instead.
			for _, gi := range toFreeze {
				frozen[gi] = level
			}
			thetaLevel = level
			active = active[:0]
			break
		}
		for _, gi := range toFreeze {
			frozen[gi] = level
			if err := m.SetCoef(lw.capRow[gi], lw.theta, 0); err != nil {
				return nil, err
			}
			if err := m.SetRHS(lw.capRow[gi], level*groups[gi].Cap); err != nil {
				return nil, err
			}
			lw.detached[gi] = true
		}
		next := active[:0]
		for _, gi := range active {
			if _, ok := frozen[gi]; !ok {
				next = append(next, gi)
			}
		}
		active = next
	}

	// Final tie-break on the same model: θ-detached rows pinned at their
	// freeze level, the θ-attached batch pinned through θ's upper bound,
	// total load minimized so the plan does not carry slack allocations
	// that the frozen bands would permit.
	for gi := range groups {
		if !lw.detached[gi] {
			continue
		}
		if err := m.SetRHS(lw.capRow[gi], frozen[gi]*groups[gi].Cap+1e-9); err != nil {
			return nil, err
		}
	}
	if err := m.SetVarBounds(lw.theta, 0, thetaLevel+1e-9); err != nil {
		return nil, err
	}
	if err := m.SetObjective(lw.allTerms); err != nil {
		return nil, err
	}
	sol, err := r.solve(m, &lw.ws)
	if err != nil {
		// The pinned model should always be feasible; fall back to the last
		// round's solution if tolerances (or a budget tripping mid-tie-break)
		// made it fail.
		if lastSol == nil {
			return nil, fmt.Errorf("lp: lexminmax final solve: %w", err)
		}
		sol = lastSol
	}
	return r.result(sol, rounds), nil
}

// runLegacy is the clone-per-round reference path (DisableWarmStart, or no
// finite big-M available for the incremental model).
func (r *lexRun) runLegacy() (*MinMaxResult, error) {
	base, groups := r.base, r.groups

	active := make([]int, 0, len(groups))
	for gi := range groups {
		active = append(active, gi)
	}
	frozen := make(map[int]float64, len(groups))

	var (
		lastSol *Solution
		rounds  int
	)
	for len(active) > 0 {
		rounds++
		if rounds > len(groups)+1 {
			return nil, r.convergenceError(rounds, active, frozen)
		}
		lastRound := r.opts.MaxRounds > 0 && rounds >= r.opts.MaxRounds

		m := base.Clone()
		theta, err := m.NewVar("theta", 0, Inf)
		if err != nil {
			return nil, err
		}
		if err := m.SetObjective([]Term{{Var: theta, Coef: 1}}); err != nil {
			return nil, err
		}
		// Row index of each group's cap constraint, for dual lookup.
		capRow := make(map[int]int, len(groups))
		for _, gi := range active {
			g := groups[gi]
			terms := append(append(make([]Term, 0, len(g.Terms)+1), g.Terms...),
				Term{Var: theta, Coef: -g.Cap})
			capRow[gi] = m.NumConstraints()
			if err := m.AddConstraint(terms, LE, 0); err != nil {
				return nil, err
			}
		}
		for _, gi := range sortedGroupKeys(frozen) {
			if err := m.AddConstraint(groups[gi].Terms, LE, frozen[gi]*groups[gi].Cap); err != nil {
				return nil, err
			}
		}

		sol, err := r.solve(m, nil)
		if err != nil {
			return nil, fmt.Errorf("lp: lexminmax round %d: %w", rounds, err)
		}
		lastSol = sol
		level := sol.Value(theta)

		if level <= levelTol {
			// Nothing left to flatten: remaining groups are all at ~zero.
			for _, gi := range active {
				frozen[gi] = 0
			}
			break
		}
		if lastRound {
			for _, gi := range active {
				frozen[gi] = level
			}
			break
		}

		// Saturated candidates: groups whose load reaches θ·cap.
		var binding []int
		for _, gi := range active {
			load := evalTerms(groups[gi].Terms, sol)
			if load >= (level-levelTol)*groups[gi].Cap {
				binding = append(binding, gi)
			}
		}
		if len(binding) == 0 {
			return nil, fmt.Errorf("lp: lexminmax: no binding group at level %g (internal error)", level)
		}

		// Freeze via duals first, exact probes as the degenerate fallback
		// (see runIncremental; identical logic on cloned models).
		newFrozen := 0
		for _, gi := range binding {
			if sol.Dual(capRow[gi]) < -1e-7 {
				frozen[gi] = level
				newFrozen++
			}
		}
		if newFrozen == 0 {
			// One shared probe model per round: all active groups pinned
			// into the level band (pinning the candidate itself is harmless
			// — an upper bound at level·cap+tol cannot raise a minimum that
			// is already below it), frozen groups pinned at their levels;
			// only the objective changes between candidates.
			pm := base.Clone()
			for _, gi := range active {
				if err := pm.AddConstraint(groups[gi].Terms, LE, level*groups[gi].Cap+levelTol); err != nil {
					return nil, err
				}
			}
			for _, gi := range sortedGroupKeys(frozen) {
				if err := pm.AddConstraint(groups[gi].Terms, LE, frozen[gi]*groups[gi].Cap+levelTol); err != nil {
					return nil, err
				}
			}
			for _, gi := range binding {
				if err := pm.SetObjective(groups[gi].Terms); err != nil {
					return nil, err
				}
				psol, err := r.solve(pm, nil)
				if err != nil {
					return nil, fmt.Errorf("lp: lexminmax probe: %w", err)
				}
				minLoad := evalTerms(groups[gi].Terms, psol)
				if minLoad >= (level-10*levelTol)*groups[gi].Cap {
					frozen[gi] = level
					newFrozen++
					break
				}
			}
		}
		if newFrozen == 0 {
			// Termination fallback: freeze all binding groups (see
			// runIncremental).
			for _, gi := range binding {
				frozen[gi] = level
				newFrozen++
			}
		}

		next := active[:0]
		for _, gi := range active {
			if _, ok := frozen[gi]; !ok {
				next = append(next, gi)
			}
		}
		active = next
	}

	// One final solve pinning every group to its freeze level, minimizing
	// the total load as a tie-break so the plan does not carry slack
	// allocations that frozen caps would permit.
	final := base.Clone()
	for _, gi := range sortedGroupKeys(frozen) {
		if err := final.AddConstraint(groups[gi].Terms, LE, frozen[gi]*groups[gi].Cap+1e-9); err != nil {
			return nil, err
		}
	}
	var objTerms []Term
	for gi := range groups {
		objTerms = append(objTerms, groups[gi].Terms...)
	}
	if err := final.SetObjective(objTerms); err != nil {
		return nil, err
	}
	sol, err := r.solve(final, nil)
	if err != nil {
		if lastSol == nil {
			return nil, fmt.Errorf("lp: lexminmax final solve: %w", err)
		}
		sol = lastSol
	}
	return r.result(sol, rounds), nil
}

// sortedGroupKeys returns the frozen map's group indices in ascending
// order. Constraint rows must be added in a deterministic order: row
// order steers simplex pivot selection and summation order, and the
// plan-diff equivalence oracle compares θ between two instances bitwise.
func sortedGroupKeys(frozen map[int]float64) []int {
	keys := make([]int, 0, len(frozen))
	for gi := range frozen {
		keys = append(keys, gi)
	}
	sort.Ints(keys)
	return keys
}

func evalTerms(terms []Term, sol *Solution) float64 {
	v := 0.0
	for _, t := range terms {
		v += t.Coef * sol.Value(t.Var)
	}
	return v
}

// SortedDescending returns a copy of levels sorted high-to-low, the vector
// the lexicographic objective compares.
func SortedDescending(levels []float64) []float64 {
	out := append([]float64(nil), levels...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// LexLess compares two descending-sorted vectors lexicographically with
// tolerance eps: it reports whether a ⪯ b strictly (a is better).
func LexLess(a, b []float64, eps float64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]-eps:
			return true
		case a[i] > b[i]+eps:
			return false
		}
	}
	return false
}

// MaxLevel returns the largest element of levels, or 0 if empty.
func MaxLevel(levels []float64) float64 {
	maxL := 0.0
	for _, l := range levels {
		maxL = math.Max(maxL, l)
	}
	return maxL
}
