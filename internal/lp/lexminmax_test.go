package lp

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// buildScheduling builds the paper's scheduling LP skeleton for a single
// resource: job i must receive demand[i] units within slots
// [win[i][0], win[i][1]] (inclusive), at most maxPerSlot[i] per slot. It
// returns the variable grid x[i][t] (Var(-1) outside the window) and the
// per-slot load groups with capacity cap.
func buildScheduling(t *testing.T, demand []float64, win [][2]int, maxPerSlot []float64, slots int, capacity float64) (*Model, [][]Var, []LoadGroup) {
	t.Helper()
	m := NewModel()
	x := make([][]Var, len(demand))
	for i := range demand {
		x[i] = make([]Var, slots)
		for s := range x[i] {
			x[i][s] = Var(-1)
		}
		var terms []Term
		for s := win[i][0]; s <= win[i][1]; s++ {
			v := mustVar(t, m, "", 0, maxPerSlot[i])
			x[i][s] = v
			terms = append(terms, Term{v, 1})
		}
		mustConstraint(t, m, terms, EQ, demand[i])
	}
	groups := make([]LoadGroup, slots)
	for s := 0; s < slots; s++ {
		var terms []Term
		for i := range demand {
			if x[i][s] >= 0 {
				terms = append(terms, Term{x[i][s], 1})
			}
		}
		if len(terms) == 0 {
			// Keep the group well-formed with a dummy zero-load variable.
			v := mustVar(t, m, "", 0, 0)
			terms = []Term{{v, 1}}
		}
		groups[s] = LoadGroup{Terms: terms, Cap: capacity}
	}
	return m, x, groups
}

func TestLexMinMaxFlattensSingleJob(t *testing.T) {
	// One job, demand 6 over 3 slots, cap 10: a flat 2/2/2 allocation is
	// the unique lexmin (levels 0.2 everywhere).
	m, _, groups := buildScheduling(t,
		[]float64{6}, [][2]int{{0, 2}}, []float64{10}, 3, 10)
	res, err := LexMinMax(m, groups)
	if err != nil {
		t.Fatalf("LexMinMax: %v", err)
	}
	for s, lvl := range res.Levels {
		if !approx(lvl, 0.2, 1e-6) {
			t.Errorf("slot %d level = %g, want 0.2", s, lvl)
		}
	}
}

func TestLexMinMaxRespectsWindows(t *testing.T) {
	// Job 0 is pinned to slot 0 (window [0,0], demand 8); job 1 can spread
	// across [0,2] with demand 6. Lexmin keeps job 1 out of the loaded
	// slot 0: slot 0 = 8, slots 1-2 = 3 each.
	m, x, groups := buildScheduling(t,
		[]float64{8, 6}, [][2]int{{0, 0}, {0, 2}}, []float64{10, 10}, 3, 10)
	res, err := LexMinMax(m, groups)
	if err != nil {
		t.Fatalf("LexMinMax: %v", err)
	}
	want := []float64{0.8, 0.3, 0.3}
	for s, lvl := range res.Levels {
		if !approx(lvl, want[s], 1e-6) {
			t.Errorf("slot %d level = %g, want %g", s, lvl, want[s])
		}
	}
	if v := res.Solution.Value(x[1][0]); !approx(v, 0, 1e-6) {
		t.Errorf("job 1 uses %g in the saturated slot, want 0", v)
	}
}

func TestLexMinMaxSecondLevelMatters(t *testing.T) {
	// Two saturation levels: job 0 pinned in slot 0 with demand 10 (level
	// 1.0); job 1 (demand 4, window [1,2], cap 10) must still be flattened
	// to 2/2 at the second level, which a plain min-max would not enforce.
	m, _, groups := buildScheduling(t,
		[]float64{10, 4}, [][2]int{{0, 0}, {1, 2}}, []float64{10, 10}, 3, 10)
	res, err := LexMinMax(m, groups)
	if err != nil {
		t.Fatalf("LexMinMax: %v", err)
	}
	want := []float64{1.0, 0.2, 0.2}
	for s, lvl := range res.Levels {
		if !approx(lvl, want[s], 1e-6) {
			t.Errorf("slot %d level = %g, want %g", s, lvl, want[s])
		}
	}
	if res.Rounds < 2 {
		t.Errorf("Rounds = %d, want >= 2 (two saturation levels)", res.Rounds)
	}
}

func TestLexMinMaxMotivatingExample(t *testing.T) {
	// The paper's Fig. 1: workflow W1 = two chained jobs, each needing the
	// full resource cap for 50 slots within a 200-slot horizon (deadline
	// 200). After FlowTime's decomposition job 1 gets window [0,100) and
	// job 2 [100,200). Each job's demand is cap*50; lexmin flattens each to
	// cap/2 across its window, leaving half the cluster free for ad-hoc
	// jobs at all times — matching Fig. 1(b).
	const (
		slots = 20 // scaled: 1 slot = 10 time units
		c     = 10.0
	)
	demand := []float64{c * 5, c * 5} // 50 time units at full cap, scaled
	win := [][2]int{{0, 9}, {10, 19}}
	maxPerSlot := []float64{c, c}
	m, _, groups := buildScheduling(t, demand, win, maxPerSlot, slots, c)
	res, err := LexMinMax(m, groups)
	if err != nil {
		t.Fatalf("LexMinMax: %v", err)
	}
	for s, lvl := range res.Levels {
		if !approx(lvl, 0.5, 1e-6) {
			t.Errorf("slot %d level = %g, want 0.5 (half the cluster left for ad-hoc)", s, lvl)
		}
	}
}

func TestLexMinMaxInfeasible(t *testing.T) {
	m, _, groups := buildScheduling(t,
		[]float64{30}, [][2]int{{0, 1}}, []float64{10}, 2, 10)
	// Demand 30 cannot fit in 2 slots at <= 10/slot regardless of theta.
	if _, err := LexMinMax(m, groups); err == nil {
		t.Fatal("LexMinMax on infeasible instance: want error")
	}
}

func TestLexMinMaxValidation(t *testing.T) {
	m := NewModel()
	v := mustVar(t, m, "v", 0, 1)
	if _, err := LexMinMax(m, []LoadGroup{{Terms: []Term{{v, 1}}, Cap: 0}}); err == nil {
		t.Error("zero capacity: want error")
	}
	if _, err := LexMinMax(m, []LoadGroup{{Cap: 1}}); err == nil {
		t.Error("empty terms: want error")
	}
}

// TestLexMinMaxDominatesRandomFeasible property: the solver's sorted level
// vector is lexicographically <= that of any feasible allocation we can
// construct, on random small instances.
func TestLexMinMaxDominatesRandomFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		slots := 2 + rng.Intn(3)
		jobs := 1 + rng.Intn(3)
		capacity := float64(4 + rng.Intn(4))
		demand := make([]float64, jobs)
		win := make([][2]int, jobs)
		maxPerSlot := make([]float64, jobs)
		for i := range demand {
			a := rng.Intn(slots)
			b := a + rng.Intn(slots-a)
			win[i] = [2]int{a, b}
			maxPerSlot[i] = float64(1 + rng.Intn(int(capacity)))
			// Keep demand individually feasible within the window and cap.
			maxD := maxPerSlot[i] * float64(b-a+1)
			demand[i] = float64(1 + rng.Intn(int(maxD)))
		}

		m, x, groups := buildScheduling(t, demand, win, maxPerSlot, slots, capacity)
		res, err := LexMinMax(m, groups)
		if err != nil {
			continue // jointly infeasible random instance
		}
		got := SortedDescending(res.Levels)

		// Construct 30 random feasible integral allocations greedily and
		// compare.
		for alt := 0; alt < 30; alt++ {
			loads := make([]float64, slots)
			ok := true
			for i := 0; i < jobs && ok; i++ {
				left := demand[i]
				order := rng.Perm(win[i][1] - win[i][0] + 1)
				for _, ds := range order {
					s := win[i][0] + ds
					amt := math.Min(left, maxPerSlot[i])
					loads[s] += amt
					left -= amt
					if left <= 0 {
						break
					}
				}
				if left > 1e-9 {
					ok = false
				}
			}
			if !ok {
				continue
			}
			// Skip alternatives that exceed capacity (infeasible ones do
			// not bound the solver).
			feasible := true
			for _, l := range loads {
				if l > capacity+1e-9 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			altLevels := make([]float64, slots)
			for s, l := range loads {
				altLevels[s] = l / capacity
			}
			altSorted := SortedDescending(altLevels)
			if LexLess(altSorted, got, 1e-6) {
				t.Fatalf("trial %d: random feasible allocation %v beats solver %v (x grid %v)",
					trial, altSorted, got, x)
			}
		}
	}
}

func TestLemma1PowerScalarization(t *testing.T) {
	// Lemma 1: g(u) <= g(v) iff sorted(u) lexicographically <= sorted(v),
	// for integer vectors. Verify on random small vectors.
	f := func(a, b [4]uint8) bool {
		u := make([]int, 4)
		v := make([]int, 4)
		for i := 0; i < 4; i++ {
			u[i] = int(a[i] % 8)
			v[i] = int(b[i] % 8)
		}
		us := append([]int(nil), u...)
		vs := append([]int(nil), v...)
		sort.Sort(sort.Reverse(sort.IntSlice(us)))
		sort.Sort(sort.Reverse(sort.IntSlice(vs)))
		lex := 0 // -1: u < v, 0: equal, 1: u > v
		for i := range us {
			if us[i] != vs[i] {
				if us[i] < vs[i] {
					lex = -1
				} else {
					lex = 1
				}
				break
			}
		}
		gu, gv := PowerScalarization(u), PowerScalarization(v)
		switch lex {
		case -1:
			return gu < gv
		case 1:
			return gu > gv
		default:
			return math.Abs(gu-gv) < 1e-9
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLambdaRepresentationMatchesDirectConvexMin(t *testing.T) {
	// min (y-3)^2-ish convex cost via lambda-representation: f(j) = (j-3)^2
	// over D = {0..6} with y >= 5 forces y = 5, cost 4.
	m := NewModel()
	y := mustVar(t, m, "y", 0, 6)
	mustConstraint(t, m, []Term{{y, 1}}, GE, 5)
	if err := AddConvexCost(m, y, 0, 6, func(j int) float64 {
		return float64((j - 3) * (j - 3))
	}); err != nil {
		t.Fatalf("AddConvexCost: %v", err)
	}
	sol := mustSolve(t, m)
	if !approx(sol.Value(y), 5, 1e-6) {
		t.Errorf("y = %g, want 5", sol.Value(y))
	}
	if !approx(sol.Objective, 4, 1e-6) {
		t.Errorf("objective = %g, want 4", sol.Objective)
	}
}

func TestLambdaScalarizationReproducesMinMax(t *testing.T) {
	// Reproduce the paper's exact objective min sum k^(z_t/C) on a tiny
	// instance via the lambda-representation, and check it lands on the
	// same max level as LexMinMax: 2 jobs, demands {2,2}, windows spanning
	// both of 2 slots, cap 4 -> flat loads (2, 2), level 0.5.
	const slots, capacity = 2, 4.0
	build := func() (*Model, [][]Var, []LoadGroup) {
		return buildScheduling(t,
			[]float64{2, 2}, [][2]int{{0, 1}, {0, 1}}, []float64{4, 4}, slots, capacity)
	}

	m1, _, groups := build()
	res, err := LexMinMax(m1, groups)
	if err != nil {
		t.Fatalf("LexMinMax: %v", err)
	}

	m2, x2, _ := build()
	k := float64(slots)
	for s := 0; s < slots; s++ {
		z := mustVar(t, m2, "z", 0, capacity)
		terms := []Term{{z, -1}}
		for i := range x2 {
			if x2[i][s] >= 0 {
				terms = append(terms, Term{x2[i][s], 1})
			}
		}
		mustConstraint(t, m2, terms, EQ, 0)
		if err := AddConvexCost(m2, z, 0, int(capacity), func(j int) float64 {
			return math.Pow(k, float64(j)/capacity)
		}); err != nil {
			t.Fatalf("AddConvexCost: %v", err)
		}
	}
	sol := mustSolve(t, m2)

	// Loads under the lambda formulation.
	for s := 0; s < slots; s++ {
		load := 0.0
		for i := range x2 {
			load += sol.Value(x2[i][s])
		}
		if !approx(load/capacity, res.Levels[s], 1e-5) {
			t.Errorf("slot %d: lambda load %g, lexminmax %g", s, load/capacity, res.Levels[s])
		}
	}
}
