package lp

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestLexMinMaxWarmMatchesCold asserts the incremental warm path and the
// legacy clone-per-round path produce the same level vector (within
// levelTol) on scheduling-shaped instances, and that the warm path
// actually warm-starts and does less pivot work.
func TestLexMinMaxWarmMatchesCold(t *testing.T) {
	for _, size := range []struct{ jobs, slots int }{
		{5, 20}, {10, 50}, {25, 60}, {50, 100},
	} {
		t.Run(fmt.Sprintf("jobs=%d_slots=%d", size.jobs, size.slots), func(t *testing.T) {
			base, groups := benchScheduling(t, size.jobs, size.slots)

			warm, err := LexMinMaxWithOptions(base, groups, MinMaxOptions{})
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			cold, err := LexMinMaxWithOptions(base, groups, MinMaxOptions{DisableWarmStart: true})
			if err != nil {
				t.Fatalf("cold: %v", err)
			}

			ws, cs := SortedDescending(warm.Levels), SortedDescending(cold.Levels)
			for i := range ws {
				if math.Abs(ws[i]-cs[i]) > 10*levelTol {
					t.Fatalf("sorted level %d: warm %.9g, cold %.9g\nwarm %v\ncold %v",
						i, ws[i], cs[i], ws, cs)
				}
			}
			if warm.Stats.WarmStarts == 0 {
				t.Fatalf("warm path never warm-started: %+v", warm.Stats)
			}
			if cold.Stats.WarmStarts != 0 {
				t.Fatalf("cold path warm-started: %+v", cold.Stats)
			}
			if warm.Stats.Pivots >= cold.Stats.Pivots {
				t.Logf("warning: warm pivots %d >= cold pivots %d", warm.Stats.Pivots, cold.Stats.Pivots)
			}
			t.Logf("warm: %+v rounds=%d", warm.Stats, warm.Rounds)
			t.Logf("cold: %+v rounds=%d", cold.Stats, cold.Rounds)
		})
	}
}

// TestLexMinMaxWorkspaceReuse drives the fallback-ladder pattern: repeated
// LexMinMax calls on the same base/groups through one LexWorkspace. The
// second and third calls must reuse the shared model (warm starts, no cold
// start) and agree with a fresh cold run.
func TestLexMinMaxWorkspaceReuse(t *testing.T) {
	base, groups := benchScheduling(t, 10, 50)
	lw := &LexWorkspace{}

	first, err := LexMinMaxWithOptions(base, groups, MinMaxOptions{Workspace: lw})
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	if first.Stats.ColdStarts == 0 {
		t.Fatalf("first call should cold-start once: %+v", first.Stats)
	}

	for attempt, rounds := range []int{0, 1} {
		res, err := LexMinMaxWithOptions(base, groups, MinMaxOptions{MaxRounds: rounds, Workspace: lw})
		if err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		if res.Stats.ColdStarts != 0 {
			t.Fatalf("attempt %d cold-started despite kept workspace: %+v", attempt, res.Stats)
		}
		if res.Stats.WarmStarts == 0 {
			t.Fatalf("attempt %d never warm-started: %+v", attempt, res.Stats)
		}
		ref, err := LexMinMaxWithOptions(base, groups, MinMaxOptions{MaxRounds: rounds, DisableWarmStart: true})
		if err != nil {
			t.Fatalf("attempt %d reference: %v", attempt, err)
		}
		if rounds == 0 {
			// Exact lexmin: the sorted level vector is unique.
			rs, cs := SortedDescending(res.Levels), SortedDescending(ref.Levels)
			for i := range rs {
				if math.Abs(rs[i]-cs[i]) > 10*levelTol {
					t.Fatalf("attempt %d sorted level %d: workspace %.9g, reference %.9g", attempt, i, rs[i], cs[i])
				}
			}
		} else {
			// Capped run: only the max level and the tie-break's total load
			// are pinned; the distribution below the cap is not unique.
			if got, want := MaxLevel(res.Levels), MaxLevel(ref.Levels); math.Abs(got-want) > 10*levelTol {
				t.Fatalf("attempt %d max level: workspace %.9g, reference %.9g", attempt, got, want)
			}
			var gotLoad, wantLoad float64
			for gi := range groups {
				gotLoad += res.Levels[gi] * groups[gi].Cap
				wantLoad += ref.Levels[gi] * groups[gi].Cap
			}
			if math.Abs(gotLoad-wantLoad) > 1e-4*(1+math.Abs(wantLoad)) {
				t.Fatalf("attempt %d total load: workspace %.9g, reference %.9g", attempt, gotLoad, wantLoad)
			}
		}
	}

	// A different base model must not reuse the kept θ-model.
	base2, groups2 := benchScheduling(t, 5, 20)
	res, err := LexMinMaxWithOptions(base2, groups2, MinMaxOptions{Workspace: lw})
	if err != nil {
		t.Fatalf("different base: %v", err)
	}
	if res.Stats.ColdStarts == 0 {
		t.Fatalf("different base should have rebuilt and cold-started: %+v", res.Stats)
	}
}

// TestLexMinMaxWorkspaceCapChange reuses one LexWorkspace across calls
// whose group CAPACITIES changed in between — the shape of the ad-hoc
// drain fold, where gate admissions shave per-slot capacity between
// replans. The kept θ-model must absorb the change as coefficient/RHS
// deltas against the kept basis (warm starts, no rebuild) and still agree
// with a cold reference solved directly on the shaved instance.
func TestLexMinMaxWorkspaceCapChange(t *testing.T) {
	base, groups := benchScheduling(t, 10, 50)
	lw := &LexWorkspace{}
	if _, err := LexMinMaxWithOptions(base, groups, MinMaxOptions{Workspace: lw}); err != nil {
		t.Fatalf("first: %v", err)
	}

	shaved := append([]LoadGroup(nil), groups...)
	for gi := range shaved {
		if gi%3 == 0 {
			shaved[gi].Cap *= 0.7
		}
	}
	res, err := LexMinMaxWithOptions(base, shaved, MinMaxOptions{Workspace: lw})
	if err != nil {
		t.Fatalf("shaved: %v", err)
	}
	if res.Stats.ColdStarts != 0 {
		t.Fatalf("cap change cold-started despite kept workspace: %+v", res.Stats)
	}
	if res.Stats.WarmStarts == 0 {
		t.Fatalf("cap change never warm-started: %+v", res.Stats)
	}

	ref, err := LexMinMaxWithOptions(base, shaved, MinMaxOptions{DisableWarmStart: true})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	rs, cs := SortedDescending(res.Levels), SortedDescending(ref.Levels)
	for i := range rs {
		if math.Abs(rs[i]-cs[i]) > 10*levelTol {
			t.Fatalf("sorted level %d: workspace %.9g, reference %.9g\nworkspace %v\nreference %v",
				i, rs[i], cs[i], rs, cs)
		}
	}
}

// TestLexMinMaxWarmStatsSurface checks that the new SolveStats counters
// reach MinMaxResult.Stats so telemetry above the solver can report them.
func TestLexMinMaxWarmStatsSurface(t *testing.T) {
	base, groups := benchScheduling(t, 10, 50)
	res, err := LexMinMax(base, groups)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.WarmStarts+st.ColdStarts == 0 {
		t.Fatalf("no solves recorded: %+v", st)
	}
	if st.ColdStarts < 1 {
		t.Fatalf("first solve of the shared model must be cold: %+v", st)
	}
	if st.Pivots < st.DualPivots {
		t.Fatalf("dual pivots must be a subset of pivots: %+v", st)
	}
}

// TestConvergenceErrorReportsSplit pins the convergence-guard error format:
// it must name the active/frozen group split (the satellite fix this PR
// ships) so a stuck instance is debuggable from the error alone.
func TestConvergenceErrorReportsSplit(t *testing.T) {
	r := &lexRun{groups: make([]LoadGroup, 5)}
	err := r.convergenceError(7, []int{1, 4}, map[int]float64{0: 1.5, 2: 0.5, 3: 0.25})
	msg := err.Error()
	for _, want := range []string{
		"failed to converge after 7 rounds",
		"2 of 5 groups active [1 4]",
		"3 frozen [0 2 3]",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
