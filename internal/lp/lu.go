package lp

import (
	"fmt"
	"math"
)

// luFactor is the sparse basis representation: B = L·U computed by a
// Markowitz-ordered elimination with threshold partial pivoting, plus a
// file of Forrest-Tomlin-style product-form eta updates appended one
// per pivot between refactorizations.
//
// FlowTime's scheduling LPs are extremely sparse and block-structured
// (one capacity row per slot, each job touching only its window
// interval; most basis columns have one or two nonzeros), so the
// factorization is driven by a structural singleton peel — repeatedly
// pivoting singleton columns and singleton rows, which provably perform
// no arithmetic on the remaining submatrix — and only the small
// irreducible "bump" that survives the peel pays for Markowitz pivot
// selection with numeric elimination. FTRAN/BTRAN then run in
// O(nnz(L+U+etas)) instead of the dense O(m²).
const (
	// luPivTol is the absolute floor below which an entry cannot pivot.
	luPivTol = 1e-12
	// luThreshold is the relative threshold for partial pivoting: a bump
	// pivot must satisfy |a| >= luThreshold * max|column|.
	luThreshold = 0.1
	// etaMax caps the eta-file length; update refuses past it and the
	// caller refactorizes (bounding solve cost and drift between
	// refactorizations).
	etaMax = 128
	// etaPivAbsTol / etaPivRelTol reject unstable Forrest-Tomlin updates:
	// the spike's pivot element must clear both an absolute floor and a
	// fraction of the spike's largest entry.
	etaPivAbsTol = 1e-9
	etaPivRelTol = 1e-8
	// etaDropTol drops negligible spike entries from the eta file.
	etaDropTol = 1e-14
)

type luFactor struct {
	m int

	// Pivot sequence of the last factorization: pivot k eliminated
	// matrix row pRow[k] and basis position (column) pPos[k] with pivot
	// value pVal[k]; orderOfPos inverts pPos.
	pRow, pPos []int32
	pVal       []float64
	orderOfPos []int32

	// L multipliers, CSR over pivot order: applying pivot k subtracts
	// lVal[i]*v[pRow[k]] from v[lRow[i]].
	lPtr []int32
	lRow []int32
	lVal []float64

	// U off-diagonals stored twice: by pivot row (entries at later pivot
	// orders, for the FTRAN backsolve) and transposed by pivot column
	// (entries at earlier orders, for the BTRAN forward solve).
	uRowPtr []int32
	uRowOrd []int32
	uRowVal []float64
	uColPtr []int32
	uColOrd []int32
	uColVal []float64

	// Eta file: update e replaced basis position etaPos[e]; the spike
	// w = B^-1 a_enter has pivot element etaPiv[e] and off-pivot entries
	// etaRow/etaVal[etaPtr[e]:etaPtr[e+1]].
	etaPos []int32
	etaPiv []float64
	etaPtr []int32
	etaRow []int32
	etaVal []float64

	sol []float64 // order-indexed solve scratch
	st  factorStats

	// Factorization working state, reused across refactorizations.
	colRows [][]int32
	colVals [][]float64
	rowCols [][]int32
	rowCnt  []int32
	colCnt  []int32
	rowDone []bool
	colDone []bool
	colQ    []int32
	rowQ    []int32
	mark    []int32 // scatter index for bump elimination (0 = absent)
	uPosTmp []int32 // U entry positions before order mapping
	cnt     []int32 // counting-sort scratch for the U transpose
}

func (f *luFactor) isSparse() bool     { return true }
func (f *luFactor) stats() factorStats { return f.st }

// install builds the trivial factorization of B = diag(diag) directly.
func (f *luFactor) install(s *simplex, diag []float64) {
	m := s.m
	f.m = m
	f.sizeOutputs(m)
	f.lPtr[0], f.uRowPtr[0], f.uColPtr[0] = 0, 0, 0
	for k := 0; k < m; k++ {
		f.pRow[k] = int32(k)
		f.pPos[k] = int32(k)
		f.pVal[k] = diag[k]
		f.orderOfPos[k] = int32(k)
		f.lPtr[k+1] = 0
		f.uRowPtr[k+1] = 0
		f.uColPtr[k+1] = 0
	}
	f.lRow, f.lVal = f.lRow[:0], f.lVal[:0]
	f.uRowOrd, f.uRowVal = f.uRowOrd[:0], f.uRowVal[:0]
	f.uColOrd, f.uColVal = f.uColOrd[:0], f.uColVal[:0]
	f.clearEtas()
}

func (f *luFactor) sizeOutputs(m int) {
	if cap(f.pRow) < m {
		f.pRow = make([]int32, m)
		f.pPos = make([]int32, m)
		f.pVal = make([]float64, m)
		f.orderOfPos = make([]int32, m)
		f.sol = make([]float64, m)
	}
	f.pRow, f.pPos, f.pVal = f.pRow[:m], f.pPos[:m], f.pVal[:m]
	f.orderOfPos, f.sol = f.orderOfPos[:m], f.sol[:m]
	if cap(f.lPtr) < m+1 {
		f.lPtr = make([]int32, m+1)
		f.uRowPtr = make([]int32, m+1)
		f.uColPtr = make([]int32, m+1)
	}
	f.lPtr, f.uRowPtr, f.uColPtr = f.lPtr[:m+1], f.uRowPtr[:m+1], f.uColPtr[:m+1]
}

func (f *luFactor) clearEtas() {
	f.etaPos = f.etaPos[:0]
	f.etaPiv = f.etaPiv[:0]
	f.etaPtr = append(f.etaPtr[:0], 0)
	f.etaRow = f.etaRow[:0]
	f.etaVal = f.etaVal[:0]
}

func (f *luFactor) grow(s *simplex, m *Model, oldM int) error {
	// Appended rows carry basic unit columns, so the extended basis is
	// block-triangular over the old one; the singleton peel consumes the
	// whole border in O(nnz), so a fresh factorization replaces the
	// dense path's O(m²) inverse copy.
	return f.refactor(s, false)
}

// refactor rebuilds L, U and the pivot order from s.basicVar and clears
// the eta file. With repair set, a structurally or numerically singular
// basis evicts stuck positions for nonbasic per-row unit columns and
// restarts (bounded by m+1 evictions).
func (f *luFactor) refactor(s *simplex, repair bool) error {
	f.m = s.m
	for attempt := 0; attempt <= s.m+1; attempt++ {
		done, err := f.tryFactorize(s, repair)
		if err != nil {
			return err
		}
		if done {
			f.st.refactors++
			return nil
		}
	}
	return fmt.Errorf("lp: internal: basis repair did not converge")
}

func (f *luFactor) sizeWork(m int) {
	if cap(f.rowCnt) < m {
		f.rowCnt = make([]int32, m)
		f.colCnt = make([]int32, m)
		f.rowDone = make([]bool, m)
		f.colDone = make([]bool, m)
		f.mark = make([]int32, m)
	}
	f.rowCnt, f.colCnt = f.rowCnt[:m], f.colCnt[:m]
	f.rowDone, f.colDone = f.rowDone[:m], f.colDone[:m]
	f.mark = f.mark[:m]
	for i := 0; i < m; i++ {
		f.rowDone[i], f.colDone[i] = false, false
		f.mark[i] = 0
	}
	for len(f.colRows) < m {
		f.colRows = append(f.colRows, nil)
		f.colVals = append(f.colVals, nil)
		f.rowCols = append(f.rowCols, nil)
	}
	f.colQ, f.rowQ = f.colQ[:0], f.rowQ[:0]
}

// tryFactorize runs one elimination attempt. It returns done=false with
// a nil error when repair evicted a basis column and the caller should
// retry from the modified basis.
func (f *luFactor) tryFactorize(s *simplex, repair bool) (bool, error) {
	m := s.m
	f.sizeOutputs(m)
	f.sizeWork(m)
	f.lPtr[0], f.uRowPtr[0], f.uColPtr[0] = 0, 0, 0

	// Load the basis columns and mirror them row-wise. The two adjacency
	// lists stay exact mirrors throughout (entries are only appended,
	// never individually deleted; retired rows/columns are skipped via
	// the done flags), so membership never needs a lookup.
	nnzB := 0
	for p := 0; p < m; p++ {
		c := &s.cols[s.basicVar[p]]
		cr, cv := f.colRows[p][:0], f.colVals[p][:0]
		for k, r := range c.rows {
			if c.vals[k] == 0 {
				continue
			}
			cr = append(cr, int32(r))
			cv = append(cv, c.vals[k])
		}
		f.colRows[p], f.colVals[p] = cr, cv
		nnzB += len(cr)
	}
	for r := 0; r < m; r++ {
		f.rowCols[r] = f.rowCols[r][:0]
	}
	for p := 0; p < m; p++ {
		for _, r := range f.colRows[p] {
			f.rowCols[r] = append(f.rowCols[r], int32(p))
		}
	}
	for p := 0; p < m; p++ {
		f.colCnt[p] = int32(len(f.colRows[p]))
		if f.colCnt[p] == 1 {
			f.colQ = append(f.colQ, int32(p))
		}
	}
	for r := 0; r < m; r++ {
		f.rowCnt[r] = int32(len(f.rowCols[r]))
		if f.rowCnt[r] == 1 {
			f.rowQ = append(f.rowQ, int32(r))
		}
	}

	f.lRow, f.lVal = f.lRow[:0], f.lVal[:0]
	f.uRowOrd, f.uRowVal = f.uRowOrd[:0], f.uRowVal[:0]
	f.uPosTmp = f.uPosTmp[:0]

	for nPiv := 0; nPiv < m; nPiv++ {
		if !f.pivotOnce(nPiv) {
			// No acceptable pivot among the active submatrix: singular.
			if !repair {
				return false, fmt.Errorf("lp: internal: singular basis during sparse refactorization (pivot %d)", nPiv)
			}
			if !f.evictForRepair(s) {
				return false, fmt.Errorf("lp: internal: singular basis during sparse refactorization (pivot %d, no unit column available)", nPiv)
			}
			return false, nil // retry from the repaired basis
		}
		f.lPtr[nPiv+1] = int32(len(f.lRow))
		f.uRowPtr[nPiv+1] = int32(len(f.uPosTmp))
	}

	f.finishFactors()
	f.clearEtas()
	if nnzB < 1 {
		nnzB = 1
	}
	fill := float64(m+len(f.lRow)+len(f.uPosTmp)) / float64(nnzB)
	if fill > f.st.fillIn {
		f.st.fillIn = fill
	}
	return true, nil
}

// pivotOnce performs elimination pivot k: a structural singleton when
// one is available (no arithmetic — a singleton column has nothing to
// eliminate, a singleton row has no off-pivot entries to spread), else
// a Markowitz-selected bump pivot with threshold partial pivoting.
func (f *luFactor) pivotOnce(k int) bool {
	// Singleton columns first: they generate no L entries and no fill.
	for len(f.colQ) > 0 {
		p := f.colQ[len(f.colQ)-1]
		f.colQ = f.colQ[:len(f.colQ)-1]
		if f.colDone[p] || f.colCnt[p] != 1 {
			continue
		}
		r, v := f.singleActiveRow(p)
		if r < 0 || math.Abs(v) <= luPivTol {
			continue // lost to staleness or numerically unusable: bump decides
		}
		f.recordPivot(k, r, p, v)
		f.collectURow(k, r, p)
		f.retire(r, p, nil)
		return true
	}
	// Singleton rows: no U off-diagonals, multipliers only.
	for len(f.rowQ) > 0 {
		r := f.rowQ[len(f.rowQ)-1]
		f.rowQ = f.rowQ[:len(f.rowQ)-1]
		if f.rowDone[r] || f.rowCnt[r] != 1 {
			continue
		}
		p, v := f.singleActiveCol(r)
		if p < 0 || math.Abs(v) <= luPivTol {
			continue
		}
		f.recordPivot(k, r, p, v)
		lents := f.collectL(r, p, v)
		f.retire(r, p, lents)
		return true
	}
	return f.bumpPivot(k)
}

func (f *luFactor) singleActiveRow(p int32) (int32, float64) {
	for i, r := range f.colRows[p] {
		if !f.rowDone[r] {
			return r, f.colVals[p][i]
		}
	}
	return -1, 0
}

func (f *luFactor) singleActiveCol(r int32) (int32, float64) {
	for _, p := range f.rowCols[r] {
		if f.colDone[p] {
			continue
		}
		for i, rr := range f.colRows[p] {
			if rr == r {
				return p, f.colVals[p][i]
			}
		}
	}
	return -1, 0
}

func (f *luFactor) recordPivot(k int, r, p int32, v float64) {
	f.pRow[k] = r
	f.pPos[k] = p
	f.pVal[k] = v
	f.orderOfPos[p] = int32(k)
}

// collectURow records the off-pivot entries of pivot row r as U entries
// of order k (their positions map to later orders once known).
func (f *luFactor) collectURow(k int, r, p int32) {
	for _, pp := range f.rowCols[r] {
		if pp == p || f.colDone[pp] {
			continue
		}
		for i, rr := range f.colRows[pp] {
			if rr == r {
				f.uPosTmp = append(f.uPosTmp, pp)
				f.uRowVal = append(f.uRowVal, f.colVals[pp][i])
				break
			}
		}
	}
}

// collectL records the multipliers eliminating pivot column p below
// pivot value v at row r, and returns the rows they touched.
func (f *luFactor) collectL(r, p int32, v float64) []int32 {
	start := len(f.lRow)
	for i, rr := range f.colRows[p] {
		if rr == r || f.rowDone[rr] {
			continue
		}
		f.lRow = append(f.lRow, rr)
		f.lVal = append(f.lVal, f.colVals[p][i]/v)
	}
	return f.lRow[start:]
}

// retire marks pivot row r and column p eliminated and updates the
// active counts. lents lists the rows whose column-p entry was just
// eliminated into L (nil for a singleton-column pivot, which has none).
func (f *luFactor) retire(r, p int32, lents []int32) {
	f.rowDone[r] = true
	f.colDone[p] = true
	for _, pp := range f.rowCols[r] {
		if f.colDone[pp] {
			continue
		}
		f.colCnt[pp]--
		if f.colCnt[pp] == 1 {
			f.colQ = append(f.colQ, pp)
		}
	}
	for _, rr := range lents {
		f.rowCnt[rr]--
		if f.rowCnt[rr] == 1 {
			f.rowQ = append(f.rowQ, rr)
		}
	}
}

// bumpPivot eliminates one pivot of the irreducible bump: Markowitz
// cost (rowCnt-1)*(colCnt-1) minimized over entries passing threshold
// partial pivoting, then a right-looking sparse elimination with fill
// tracked in both adjacency mirrors.
func (f *luFactor) bumpPivot(k int) bool {
	m := f.m
	bestCost := int64(math.MaxInt64)
	bestAbs := 0.0
	var br, bp int32 = -1, -1
	for p := 0; p < m; p++ {
		if f.colDone[p] {
			continue
		}
		colmax := 0.0
		for i, r := range f.colRows[p] {
			if f.rowDone[r] {
				continue
			}
			if a := math.Abs(f.colVals[p][i]); a > colmax {
				colmax = a
			}
		}
		if colmax <= luPivTol {
			continue // no usable pivot in this column
		}
		floor := luThreshold * colmax
		for i, r := range f.colRows[p] {
			if f.rowDone[r] {
				continue
			}
			a := math.Abs(f.colVals[p][i])
			if a < floor || a <= luPivTol {
				continue
			}
			cost := int64(f.rowCnt[r]-1) * int64(f.colCnt[p]-1)
			if cost < bestCost || (cost == bestCost && a > bestAbs) {
				bestCost, bestAbs, br, bp = cost, a, r, int32(p)
			}
		}
		if bestCost == 0 {
			break // cannot do better than fill-free
		}
	}
	if bp < 0 {
		return false
	}
	f.eliminate(k, br, bp)
	return true
}

func (f *luFactor) eliminate(k int, r, p int32) {
	var pv float64
	for i, rr := range f.colRows[p] {
		if rr == r {
			pv = f.colVals[p][i]
			break
		}
	}
	f.recordPivot(k, r, p, pv)
	uStart := len(f.uPosTmp)
	f.collectURow(k, r, p)
	lents := f.collectL(r, p, pv)
	lVals := f.lVal[len(f.lVal)-len(lents):]

	// Right-looking update: for each U column, scatter its rows and fold
	// a_{r',p'} -= mult * u into existing entries or append fill.
	for ui := uStart; ui < len(f.uPosTmp); ui++ {
		pp := f.uPosTmp[ui]
		uval := f.uRowVal[ui]
		cr, cv := f.colRows[pp], f.colVals[pp]
		for i, rr := range cr {
			f.mark[rr] = int32(i) + 1
		}
		for li, rr := range lents {
			mult := lVals[li]
			if mult == 0 {
				continue
			}
			if idx := f.mark[rr]; idx > 0 {
				cv[idx-1] -= mult * uval
			} else {
				cr = append(cr, rr)
				cv = append(cv, -mult*uval)
				f.rowCols[rr] = append(f.rowCols[rr], pp)
				f.colCnt[pp]++
				f.rowCnt[rr]++
			}
		}
		for _, rr := range cr {
			f.mark[rr] = 0
		}
		f.colRows[pp], f.colVals[pp] = cr, cv
	}
	f.retire(r, p, lents)
}

// evictForRepair swaps a stuck basis position for a nonbasic per-row
// unit column covering a still-active row, mirroring the dense path's
// repairBasisColumn, then asks the caller to refactorize from scratch.
func (f *luFactor) evictForRepair(s *simplex) bool {
	unit := -1
	for r := 0; r < f.m; r++ {
		if f.rowDone[r] {
			continue
		}
		u := s.rowUnit[r]
		if u >= 0 && s.status[u] != inBasis {
			unit = u
			break
		}
	}
	if unit < 0 {
		return false
	}
	// Prefer the emptiest active column as the evictee: it is the one
	// the elimination could not use.
	pos, best := -1, int32(math.MaxInt32)
	for p := 0; p < f.m; p++ {
		if f.colDone[p] {
			continue
		}
		if f.colCnt[p] < best {
			pos, best = p, f.colCnt[p]
		}
	}
	if pos < 0 {
		return false
	}
	s.evictBasic(pos, unit)
	return true
}

// finishFactors maps the recorded U positions to pivot orders and
// builds the column-wise transpose for BTRAN.
func (f *luFactor) finishFactors() {
	m := f.m
	f.uRowOrd = f.uRowOrd[:0]
	for _, p := range f.uPosTmp {
		f.uRowOrd = append(f.uRowOrd, f.orderOfPos[p])
	}
	if cap(f.cnt) < m+1 {
		f.cnt = make([]int32, m+1)
	}
	cnt := f.cnt[:m+1]
	for i := range cnt {
		cnt[i] = 0
	}
	for _, j := range f.uRowOrd {
		cnt[j+1]++
	}
	for j := 0; j < m; j++ {
		cnt[j+1] += cnt[j]
		f.uColPtr[j+1] = cnt[j+1]
	}
	nu := len(f.uRowOrd)
	if cap(f.uColOrd) < nu {
		f.uColOrd = make([]int32, nu)
		f.uColVal = make([]float64, nu)
	}
	f.uColOrd, f.uColVal = f.uColOrd[:nu], f.uColVal[:nu]
	for k := 0; k < m; k++ {
		for i := f.uRowPtr[k]; i < f.uRowPtr[k+1]; i++ {
			j := f.uRowOrd[i]
			slot := cnt[j]
			cnt[j]++
			f.uColOrd[slot] = int32(k)
			f.uColVal[slot] = f.uRowVal[i]
		}
	}
}

// ftranIn solves B x = v in place: apply the L operations in pivot
// order, backsolve U, then apply the eta file oldest-first.
func (f *luFactor) ftranIn(v []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		t := v[f.pRow[k]]
		if t == 0 {
			continue
		}
		for i := f.lPtr[k]; i < f.lPtr[k+1]; i++ {
			v[f.lRow[i]] -= f.lVal[i] * t
		}
	}
	z := f.sol[:m]
	for k := m - 1; k >= 0; k-- {
		t := v[f.pRow[k]]
		for i := f.uRowPtr[k]; i < f.uRowPtr[k+1]; i++ {
			t -= f.uRowVal[i] * z[f.uRowOrd[i]]
		}
		z[k] = t / f.pVal[k]
	}
	for k := 0; k < m; k++ {
		v[f.pPos[k]] = z[k]
	}
	for e := 0; e < len(f.etaPos); e++ {
		p := f.etaPos[e]
		t := v[p] / f.etaPiv[e]
		if t != 0 {
			for i := f.etaPtr[e]; i < f.etaPtr[e+1]; i++ {
				v[f.etaRow[i]] -= f.etaVal[i] * t
			}
		}
		v[p] = t
	}
}

func (f *luFactor) ftranCol(c *sparseCol, out []float64) {
	for i := 0; i < f.m; i++ {
		out[i] = 0
	}
	for k, r := range c.rows {
		out[r] += c.vals[k]
	}
	f.ftranIn(out[:f.m])
}

// btranIn solves B^T y = v in place: apply the eta transposes
// newest-first, forward-solve U^T in pivot order, then apply the L
// transposes newest-first.
func (f *luFactor) btranIn(v []float64) {
	m := f.m
	for e := len(f.etaPos) - 1; e >= 0; e-- {
		p := f.etaPos[e]
		t := v[p]
		for i := f.etaPtr[e]; i < f.etaPtr[e+1]; i++ {
			t -= f.etaVal[i] * v[f.etaRow[i]]
		}
		v[p] = t / f.etaPiv[e]
	}
	z := f.sol[:m]
	for k := 0; k < m; k++ {
		t := v[f.pPos[k]]
		for i := f.uColPtr[k]; i < f.uColPtr[k+1]; i++ {
			t -= f.uColVal[i] * z[f.uColOrd[i]]
		}
		z[k] = t / f.pVal[k]
	}
	for k := 0; k < m; k++ {
		v[f.pRow[k]] = z[k]
	}
	for k := m - 1; k >= 0; k-- {
		acc := 0.0
		for i := f.lPtr[k]; i < f.lPtr[k+1]; i++ {
			acc += f.lVal[i] * v[f.lRow[i]]
		}
		if acc != 0 {
			v[f.pRow[k]] -= acc
		}
	}
}

func (f *luFactor) rowInv(r int, out []float64) {
	for i := 0; i < f.m; i++ {
		out[i] = 0
	}
	out[r] = 1
	f.btranIn(out[:f.m])
}

// update appends a Forrest-Tomlin product-form eta for the basis change
// at row leave, with w = B^-1 a_enter. It refuses — asking the caller
// to refactorize — when the eta file is full or the spike's pivot
// element is too small for a stable update.
func (f *luFactor) update(leave int, w []float64) bool {
	if len(f.etaPos) >= etaMax {
		return false
	}
	piv := w[leave]
	start := len(f.etaRow)
	wmax := 0.0
	for r := 0; r < f.m; r++ {
		if r == leave {
			continue
		}
		x := w[r]
		if x > -etaDropTol && x < etaDropTol {
			continue
		}
		if a := math.Abs(x); a > wmax {
			wmax = a
		}
		f.etaRow = append(f.etaRow, int32(r))
		f.etaVal = append(f.etaVal, x)
	}
	if a := math.Abs(piv); a < etaPivAbsTol || a < etaPivRelTol*wmax {
		f.etaRow = f.etaRow[:start]
		f.etaVal = f.etaVal[:start]
		return false
	}
	f.etaPos = append(f.etaPos, int32(leave))
	f.etaPiv = append(f.etaPiv, piv)
	f.etaPtr = append(f.etaPtr, int32(len(f.etaRow)))
	if l := len(f.etaPos); l > f.st.maxEta {
		f.st.maxEta = l
	}
	return true
}
