package lp

import (
	"fmt"
	"math"
)

// AddConvexCost encodes the paper's λ-representation (Eq. 8–9) of a
// separable convex cost f applied to variable y over the discrete domain
// {lo, lo+1, …, hi}:
//
//	f(y) = Σ_{j∈D} f(j)·λ_j,  Σ_j j·λ_j = y,  Σ_j λ_j = 1,  λ_j ≥ 0.
//
// Because f is convex, every optimal basic solution places weight only on
// two adjacent breakpoints, so the piecewise-linear interpolation is exact
// on integers and convex in between. The f(j)·λ_j terms are added to the
// model's objective.
//
// This is the construction the paper uses (together with total
// unimodularity) to reduce its ILP to an LP; FlowTime's production path
// uses the equivalent iterative LexMinMax, but this helper lets tests and
// examples reproduce the paper's exact formulation on small instances.
func AddConvexCost(m *Model, y Var, lo, hi int, f func(int) float64) error {
	if hi < lo {
		return fmt.Errorf("lp: convex cost: empty domain [%d, %d]", lo, hi)
	}
	n := hi - lo + 1
	lambdas := make([]Var, n)
	for i := 0; i < n; i++ {
		v, err := m.NewVar(fmt.Sprintf("lambda(%d)", lo+i), 0, 1)
		if err != nil {
			return err
		}
		lambdas[i] = v
		fv := f(lo + i)
		if math.IsNaN(fv) || math.IsInf(fv, 0) {
			return fmt.Errorf("lp: convex cost: f(%d) = %v is not finite", lo+i, fv)
		}
		if err := m.AddObjectiveTerm(v, fv); err != nil {
			return err
		}
	}

	// Σ λ_j = 1.
	sum := make([]Term, n)
	for i, v := range lambdas {
		sum[i] = Term{Var: v, Coef: 1}
	}
	if err := m.AddConstraint(sum, EQ, 1); err != nil {
		return err
	}

	// Σ j·λ_j − y = 0.
	link := make([]Term, 0, n+1)
	for i, v := range lambdas {
		if j := lo + i; j != 0 {
			link = append(link, Term{Var: v, Coef: float64(j)})
		}
	}
	link = append(link, Term{Var: y, Coef: -1})
	return m.AddConstraint(link, EQ, 0)
}

// PowerScalarization returns the paper's Lemma-1 scalarizer g(u) = Σ k^{u_i}
// for an integer vector u, where k = len(u). Lemma 1: for integer vectors
// u, v of dimension k, g(u) ≤ g(v) ⟺ sorted(u) ⪯ sorted(v)
// lexicographically. Exposed for the property tests that validate the
// LexMinMax driver against the paper's original objective.
func PowerScalarization(u []int) float64 {
	k := float64(len(u))
	g := 0.0
	for _, ui := range u {
		g += math.Pow(k, float64(ui))
	}
	return g
}
