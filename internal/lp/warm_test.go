package lp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// checkFeasible asserts that sol satisfies every constraint and bound of m
// within a loose tolerance.
func checkFeasible(t *testing.T, m *Model, sol *Solution) {
	t.Helper()
	const tol = 1e-6
	for j := 0; j < m.NumVars(); j++ {
		v := sol.Value(Var(j))
		if v < m.lo[j]-tol || v > m.hi[j]+tol {
			t.Fatalf("var %d value %g outside bounds [%g, %g]", j, v, m.lo[j], m.hi[j])
		}
	}
	for i, r := range m.rows {
		lhs := 0.0
		for _, tm := range r.terms {
			lhs += tm.Coef * sol.Value(tm.Var)
		}
		switch r.sense {
		case LE:
			if lhs > r.rhs+tol {
				t.Fatalf("row %d: %g > %g", i, lhs, r.rhs)
			}
		case GE:
			if lhs < r.rhs-tol {
				t.Fatalf("row %d: %g < %g", i, lhs, r.rhs)
			}
		case EQ:
			if math.Abs(lhs-r.rhs) > tol {
				t.Fatalf("row %d: %g != %g", i, lhs, r.rhs)
			}
		}
	}
}

// coldObjective solves m from scratch (no workspace) and returns the
// optimal objective.
func coldObjective(t *testing.T, m *Model) float64 {
	t.Helper()
	sol, err := m.Solve()
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	return sol.Objective
}

func TestWarmStartRHSRetune(t *testing.T) {
	m := NewModel()
	x := m.MustVar("x", 0, 10)
	y := m.MustVar("y", 0, 10)
	m.MustConstraint([]Term{{x, 1}, {y, 1}}, LE, 8)
	m.MustConstraint([]Term{{x, 1}, {y, -1}}, LE, 4)
	if err := m.SetObjective([]Term{{x, -1}, {y, -1}}); err != nil {
		t.Fatal(err)
	}

	ws := &Workspace{}
	sol, stats, err := m.SolveWithOptions(SolveOptions{Workspace: ws})
	if err != nil {
		t.Fatalf("initial solve: %v", err)
	}
	if stats.ColdStarts != 1 || stats.WarmStarts != 0 {
		t.Fatalf("initial solve stats = %+v, want one cold start", stats)
	}
	if math.Abs(sol.Objective-(-8)) > 1e-9 {
		t.Fatalf("initial objective = %g, want -8", sol.Objective)
	}

	// Tighten: the kept basis becomes primal infeasible, the dual phase
	// must repair it.
	if err := m.SetRHS(0, 5); err != nil {
		t.Fatal(err)
	}
	sol, stats, err = m.SolveWithOptions(SolveOptions{Workspace: ws})
	if err != nil {
		t.Fatalf("warm solve after tighten: %v", err)
	}
	if stats.WarmStarts != 1 || stats.ColdStarts != 0 {
		t.Fatalf("tightened solve stats = %+v, want one warm start", stats)
	}
	if math.Abs(sol.Objective-(-5)) > 1e-9 {
		t.Fatalf("tightened objective = %g, want -5", sol.Objective)
	}
	checkFeasible(t, m, sol)

	// Relax: the kept basis stays feasible; zero dual pivots needed.
	if err := m.SetRHS(0, 12); err != nil {
		t.Fatal(err)
	}
	sol, stats, err = m.SolveWithOptions(SolveOptions{Workspace: ws})
	if err != nil {
		t.Fatalf("warm solve after relax: %v", err)
	}
	if stats.WarmStarts != 1 {
		t.Fatalf("relaxed solve stats = %+v, want warm start", stats)
	}
	if math.Abs(sol.Objective-(-12)) > 1e-9 {
		t.Fatalf("relaxed objective = %g, want -12", sol.Objective)
	}
	checkFeasible(t, m, sol)
}

func TestWarmStartAppendRows(t *testing.T) {
	m := NewModel()
	vars := make([]Var, 4)
	for i := range vars {
		vars[i] = m.MustVar(fmt.Sprintf("x%d", i), 0, 100)
	}
	terms := make([]Term, len(vars))
	for i, v := range vars {
		terms[i] = Term{v, 1}
	}
	m.MustConstraint(terms, LE, 50)
	if err := m.SetObjective([]Term{{vars[0], -3}, {vars[1], -2}, {vars[2], -1}, {vars[3], -1}}); err != nil {
		t.Fatal(err)
	}

	ws := &Workspace{}
	if _, _, err := m.SolveWithOptions(SolveOptions{Workspace: ws}); err != nil {
		t.Fatalf("initial solve: %v", err)
	}

	// Append constraints one at a time, warm-solving after each, and
	// compare against a from-scratch solve of the same model.
	appends := []struct {
		terms []Term
		sense Sense
		rhs   float64
	}{
		{[]Term{{vars[0], 1}}, LE, 10},
		{[]Term{{vars[1], 1}, {vars[2], 1}}, LE, 25},
		{[]Term{{vars[0], 1}, {vars[3], 1}}, GE, 5},
		{[]Term{{vars[2], 1}, {vars[3], -1}}, EQ, 3},
	}
	for i, a := range appends {
		if err := m.AddConstraint(a.terms, a.sense, a.rhs); err != nil {
			t.Fatal(err)
		}
		sol, stats, err := m.SolveWithOptions(SolveOptions{Workspace: ws})
		if err != nil {
			t.Fatalf("warm solve after append %d: %v", i, err)
		}
		if stats.WarmStarts != 1 {
			t.Fatalf("append %d stats = %+v, want warm start", i, stats)
		}
		checkFeasible(t, m, sol)
		want := coldObjective(t, m)
		if math.Abs(sol.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("append %d: warm objective %g, cold %g", i, sol.Objective, want)
		}
	}
}

func TestWarmStartObjectiveChange(t *testing.T) {
	m := NewModel()
	x := m.MustVar("x", 0, 10)
	y := m.MustVar("y", 0, 10)
	m.MustConstraint([]Term{{x, 1}, {y, 2}}, LE, 14)
	if err := m.SetObjective([]Term{{x, -1}}); err != nil {
		t.Fatal(err)
	}

	ws := &Workspace{}
	if _, _, err := m.SolveWithOptions(SolveOptions{Workspace: ws}); err != nil {
		t.Fatalf("initial solve: %v", err)
	}

	if err := m.SetObjective([]Term{{y, -1}}); err != nil {
		t.Fatal(err)
	}
	sol, stats, err := m.SolveWithOptions(SolveOptions{Workspace: ws})
	if err != nil {
		t.Fatalf("warm solve after objective change: %v", err)
	}
	if stats.WarmStarts != 1 || stats.DualPivots != 0 {
		t.Fatalf("stats = %+v, want pure-primal warm start", stats)
	}
	if math.Abs(sol.Objective-(-7)) > 1e-9 {
		t.Fatalf("objective = %g, want -7", sol.Objective)
	}
	checkFeasible(t, m, sol)
}

func TestWarmStartInfeasibleFallsBack(t *testing.T) {
	m := NewModel()
	x := m.MustVar("x", 0, 10)
	y := m.MustVar("y", 0, 10)
	m.MustConstraint([]Term{{x, 1}, {y, 1}}, LE, 8)
	m.MustConstraint([]Term{{x, 1}}, GE, 2)
	if err := m.SetObjective([]Term{{x, 1}, {y, 1}}); err != nil {
		t.Fatal(err)
	}

	ws := &Workspace{}
	if _, _, err := m.SolveWithOptions(SolveOptions{Workspace: ws}); err != nil {
		t.Fatalf("initial solve: %v", err)
	}

	// x + y <= -1 with x, y >= 0 is infeasible. The dual phase goes
	// unbounded, the solver falls back cold, and the cold start gives the
	// authoritative ErrInfeasible.
	if err := m.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, -1); err != nil {
		t.Fatal(err)
	}
	_, stats, err := m.SolveWithOptions(SolveOptions{Workspace: ws})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if stats.WarmFallbacks != 1 || stats.ColdStarts != 1 {
		t.Fatalf("stats = %+v, want a warm fallback and a cold confirm", stats)
	}

	// The workspace was reset by the fallback and the cold solve failed, so
	// nothing was captured; fixing the model solves cold again.
	if err := m.SetRHS(2, 8); err != nil {
		t.Fatal(err)
	}
	sol, stats, err := m.SolveWithOptions(SolveOptions{Workspace: ws})
	if err != nil {
		t.Fatalf("solve after repair: %v", err)
	}
	if stats.ColdStarts != 1 || stats.WarmStarts != 0 {
		t.Fatalf("post-repair stats = %+v, want cold start", stats)
	}
	checkFeasible(t, m, sol)
}

func TestWarmStartDifferentModelIgnoresWorkspace(t *testing.T) {
	m1 := NewModel()
	x := m1.MustVar("x", 0, 5)
	m1.MustConstraint([]Term{{x, 1}}, LE, 4)
	if err := m1.SetObjective([]Term{{x, -1}}); err != nil {
		t.Fatal(err)
	}
	ws := &Workspace{}
	if _, _, err := m1.SolveWithOptions(SolveOptions{Workspace: ws}); err != nil {
		t.Fatal(err)
	}

	m2 := NewModel()
	z := m2.MustVar("z", 0, 7)
	m2.MustConstraint([]Term{{z, 1}}, LE, 6)
	if err := m2.SetObjective([]Term{{z, -1}}); err != nil {
		t.Fatal(err)
	}
	sol, stats, err := m2.SolveWithOptions(SolveOptions{Workspace: ws})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ColdStarts != 1 || stats.WarmStarts != 0 {
		t.Fatalf("stats = %+v, want cold start on a different model", stats)
	}
	if math.Abs(sol.Objective-(-6)) > 1e-9 {
		t.Fatalf("objective = %g, want -6", sol.Objective)
	}

	// The workspace now tracks m2; m1 would cold-start again.
	if ws.model != m2 {
		t.Fatal("workspace should have re-bound to the most recent model")
	}
}

// TestWarmVsColdRandomized drives a seeded sequence of mutations
// (RHS retunes, constraint appends, objective changes) through a shared
// workspace and asserts that every warm solve matches a from-scratch cold
// solve of the identical model: same objective within tolerance and a
// feasible point.
func TestWarmVsColdRandomized(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nVars := 4 + rng.Intn(5)
			m := NewModel()
			vars := make([]Var, nVars)
			for i := range vars {
				vars[i] = m.MustVar(fmt.Sprintf("x%d", i), 0, 10+rng.Float64()*40)
			}
			// Start with a generous packing constraint so the model begins
			// feasible.
			terms := make([]Term, nVars)
			for i, v := range vars {
				terms[i] = Term{v, 1 + rng.Float64()}
			}
			m.MustConstraint(terms, LE, 40+rng.Float64()*40)
			obj := make([]Term, nVars)
			for i, v := range vars {
				obj[i] = Term{v, -rng.Float64()}
			}
			if err := m.SetObjective(obj); err != nil {
				t.Fatal(err)
			}

			ws := &Workspace{}
			warmStats := SolveStats{}
			for step := 0; step < 30; step++ {
				switch rng.Intn(3) {
				case 0: // retune a random RHS within a safe band
					i := rng.Intn(m.NumConstraints())
					delta := (rng.Float64() - 0.45) * 10
					rhs := m.RHS(i) + delta
					if m.rows[i].sense == LE && rhs < 1 {
						rhs = 1 // keep the instance mostly feasible
					}
					if err := m.SetRHS(i, rhs); err != nil {
						t.Fatal(err)
					}
				case 1: // append a sparse constraint
					k := 1 + rng.Intn(3)
					ct := make([]Term, 0, k)
					seen := map[int]bool{}
					for len(ct) < k {
						vi := rng.Intn(nVars)
						if seen[vi] {
							continue
						}
						seen[vi] = true
						ct = append(ct, Term{vars[vi], 0.5 + rng.Float64()})
					}
					sense := LE
					rhs := 5 + rng.Float64()*30
					if rng.Intn(4) == 0 {
						sense = GE
						rhs = rng.Float64() * 3
					}
					if err := m.AddConstraint(ct, sense, rhs); err != nil {
						t.Fatal(err)
					}
				case 2: // new random objective
					for i, v := range vars {
						obj[i] = Term{v, rng.Float64()*2 - 1.5}
					}
					if err := m.SetObjective(obj); err != nil {
						t.Fatal(err)
					}
				}

				warmSol, stats, warmErr := m.SolveWithOptions(SolveOptions{Workspace: ws})
				warmStats.accumulate(stats)
				coldSol, coldErr := m.Solve()
				if (warmErr == nil) != (coldErr == nil) {
					t.Fatalf("step %d: warm err %v, cold err %v", step, warmErr, coldErr)
				}
				if warmErr != nil {
					if !errors.Is(warmErr, ErrInfeasible) || !errors.Is(coldErr, ErrInfeasible) {
						t.Fatalf("step %d: unexpected errors warm=%v cold=%v", step, warmErr, coldErr)
					}
					continue
				}
				checkFeasible(t, m, warmSol)
				tol := 1e-6 * (1 + math.Abs(coldSol.Objective))
				if math.Abs(warmSol.Objective-coldSol.Objective) > tol {
					t.Fatalf("step %d: warm objective %.12g != cold %.12g", step, warmSol.Objective, coldSol.Objective)
				}
			}
			if warmStats.WarmStarts == 0 {
				t.Fatal("randomized sweep never warm-started")
			}
			t.Logf("stats: %+v", warmStats)
		})
	}
}
