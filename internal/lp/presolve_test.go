package lp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestPresolveReductionsFire builds one model exercising every reduction
// class and checks (a) presolve actually shrinks it, (b) the reduced
// solve plus postsolve yields the same optimum as solving the original
// directly, and (c) the postsolved point carries a full KKT certificate
// on the ORIGINAL model — values, duals, and reduced costs included.
func TestPresolveReductionsFire(t *testing.T) {
	m := NewModel()
	fixed := m.MustVar("fixed", 3, 3) // collapsed bounds -> psFix
	x := m.MustVar("x", 0, 10)
	y := m.MustVar("y", 0, 10)
	s := m.MustVar("s", -50, 50) // implied-free singleton on the EQ row

	m.MustConstraint([]Term{{fixed, 1}}, LE, 5)             // vacuous once fixed -> drop
	m.MustConstraint([]Term{{x, 2}}, LE, 8)                 // singleton row -> x <= 4
	m.MustConstraint([]Term{{x, 1}, {y, 1}}, LE, 100)       // redundant (max activity 20)
	m.MustConstraint([]Term{{x, 1}, {y, 1}}, GE, 5)         // binding row, survives
	m.MustConstraint([]Term{{s, 1}, {x, 1}, {y, 1}}, EQ, 9) // free singleton -> substitute s
	if err := m.SetObjective([]Term{{x, 1}, {y, 2}, {s, 0.5}, {fixed, 1}}); err != nil {
		t.Fatal(err)
	}

	pr := presolveModel(m)
	if pr == nil {
		t.Fatal("presolve found nothing to reduce on a model built from reducible parts")
	}
	if pr.infeasible {
		t.Fatalf("presolve declared a feasible model infeasible: %s", pr.infeasMsg)
	}
	if got, want := pr.reduced.NumVars(), m.NumVars(); got >= want {
		t.Errorf("reduced vars = %d, want < %d", got, want)
	}
	if got, want := pr.reduced.NumConstraints(), m.NumConstraints(); got >= want {
		t.Errorf("reduced rows = %d, want < %d", got, want)
	}
	kinds := map[psKind]bool{}
	for _, a := range pr.stack {
		kinds[a.kind] = true
	}
	for _, want := range []struct {
		k    psKind
		name string
	}{
		{psFix, "psFix"},
		{psDropRow, "psDropRow"},
		{psSingletonRow, "psSingletonRow"},
		{psFreeSingleton, "psFreeSingleton"},
	} {
		if !kinds[want.k] {
			t.Errorf("reduction %s never fired (stack %v)", want.name, kinds)
		}
	}

	with, _, err := m.SolveWithOptions(SolveOptions{})
	if err != nil {
		t.Fatalf("solve with presolve: %v", err)
	}
	without, _, err := m.SolveWithOptions(SolveOptions{DisablePresolve: true})
	if err != nil {
		t.Fatalf("solve without presolve: %v", err)
	}
	if math.Abs(with.Objective-without.Objective) > 1e-7*(1+math.Abs(without.Objective)) {
		t.Fatalf("objective with presolve %.12g != without %.12g", with.Objective, without.Objective)
	}
	verifyOptimal(t, m, with)
	if v := with.Value(fixed); !approx(v, 3, 1e-9) {
		t.Errorf("fixed var = %g, want 3", v)
	}
	// s was eliminated by substitution; its restored value must satisfy
	// the EQ row exactly.
	if got := with.Value(s) + with.Value(x) + with.Value(y); !approx(got, 9, 1e-7) {
		t.Errorf("substituted row activity = %g, want 9", got)
	}
}

// TestPresolveDetectsInfeasible: contradictory singleton rows collapse a
// column's domain; presolve must prove infeasibility without a simplex
// run, and agree with the no-presolve solver.
func TestPresolveDetectsInfeasible(t *testing.T) {
	m := NewModel()
	x := m.MustVar("x", 0, 10)
	m.MustConstraint([]Term{{x, 1}}, GE, 8)
	m.MustConstraint([]Term{{x, 1}}, LE, 2)
	if err := m.SetObjective([]Term{{x, 1}}); err != nil {
		t.Fatal(err)
	}

	pr := presolveModel(m)
	if pr == nil || !pr.infeasible {
		t.Fatalf("presolve did not prove infeasibility: %+v", pr)
	}
	_, _, errWith := m.SolveWithOptions(SolveOptions{})
	_, _, errWithout := m.SolveWithOptions(SolveOptions{DisablePresolve: true})
	if !errors.Is(errWith, ErrInfeasible) || !errors.Is(errWithout, ErrInfeasible) {
		t.Fatalf("with=%v without=%v, want ErrInfeasible from both", errWith, errWithout)
	}
}

// TestPresolvePreservesUnbounded: an empty column with negative cost and
// no upper bound makes the instance unbounded; presolve must leave that
// for the solver to report rather than silently fixing the column.
func TestPresolvePreservesUnbounded(t *testing.T) {
	m := NewModel()
	x := m.MustVar("x", 0, 5)
	u := m.MustVar("u", 0, Inf) // in no constraint, cost < 0
	m.MustConstraint([]Term{{x, 1}}, LE, 5)
	if err := m.SetObjective([]Term{{x, -1}, {u, -1}}); err != nil {
		t.Fatal(err)
	}
	_, _, errWith := m.SolveWithOptions(SolveOptions{})
	_, _, errWithout := m.SolveWithOptions(SolveOptions{DisablePresolve: true})
	if !errors.Is(errWith, ErrUnbounded) || !errors.Is(errWithout, ErrUnbounded) {
		t.Fatalf("with=%v without=%v, want ErrUnbounded from both", errWith, errWithout)
	}
}

// TestPresolveRoundTripRandomized sweeps seeded random models with
// reducible structure injected (fixed columns, singleton rows, loose
// rows) and checks presolve+postsolve against the direct solve: same
// feasibility verdict, same objective, and a full KKT certificate on the
// original model for the postsolved point.
func TestPresolveRoundTripRandomized(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m := NewModel()
			nVars := 3 + rng.Intn(6)
			vars := make([]Var, nVars)
			for i := range vars {
				lo := 0.0
				hi := 5 + rng.Float64()*20
				if rng.Intn(5) == 0 { // fixed column
					lo = math.Round(rng.Float64() * 5)
					hi = lo
				}
				vars[i] = m.MustVar(fmt.Sprintf("x%d", i), lo, hi)
			}
			nRows := 2 + rng.Intn(5)
			for r := 0; r < nRows; r++ {
				switch rng.Intn(4) {
				case 0: // singleton row
					m.MustConstraint([]Term{{vars[rng.Intn(nVars)], 0.5 + rng.Float64()}},
						LE, 1+rng.Float64()*20)
				case 1: // likely-redundant loose row
					ts := make([]Term, 0, nVars)
					for _, v := range vars {
						ts = append(ts, Term{v, rng.Float64()})
					}
					m.MustConstraint(ts, LE, 200+rng.Float64()*100)
				default: // general row
					k := 2 + rng.Intn(nVars-1)
					ts := make([]Term, 0, k)
					seen := map[int]bool{}
					for len(ts) < k {
						vi := rng.Intn(nVars)
						if seen[vi] {
							continue
						}
						seen[vi] = true
						ts = append(ts, Term{vars[vi], 0.2 + rng.Float64()})
					}
					if rng.Intn(3) == 0 {
						m.MustConstraint(ts, GE, rng.Float64()*4)
					} else {
						m.MustConstraint(ts, LE, 3+rng.Float64()*25)
					}
				}
			}
			obj := make([]Term, nVars)
			for i, v := range vars {
				obj[i] = Term{v, rng.Float64()*3 - 1.5}
			}
			if err := m.SetObjective(obj); err != nil {
				t.Fatal(err)
			}

			with, _, errWith := m.SolveWithOptions(SolveOptions{})
			without, _, errWithout := m.SolveWithOptions(SolveOptions{DisablePresolve: true})
			if (errWith == nil) != (errWithout == nil) {
				t.Fatalf("with presolve err %v, without %v", errWith, errWithout)
			}
			if errWith != nil {
				if !errors.Is(errWith, ErrInfeasible) {
					t.Fatalf("unexpected error: %v", errWith)
				}
				return
			}
			if math.Abs(with.Objective-without.Objective) > 1e-6*(1+math.Abs(without.Objective)) {
				t.Fatalf("objective with presolve %.12g != without %.12g", with.Objective, without.Objective)
			}
			verifyOptimal(t, m, with)
		})
	}
}
