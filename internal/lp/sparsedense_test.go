package lp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// mutateStep applies one seeded mutation (RHS retune, sparse constraint
// append, or objective change) to m — the same mutation family as
// TestWarmVsColdRandomized, shared with the sparse-vs-dense sweep and the
// Forrest–Tomlin fuzz target.
func mutateStep(t testing.TB, m *Model, vars []Var, obj []Term, rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		i := rng.Intn(m.NumConstraints())
		delta := (rng.Float64() - 0.45) * 10
		rhs := m.RHS(i) + delta
		if m.rows[i].sense == LE && rhs < 1 {
			rhs = 1
		}
		if err := m.SetRHS(i, rhs); err != nil {
			t.Fatal(err)
		}
	case 1:
		k := 1 + rng.Intn(3)
		ct := make([]Term, 0, k)
		seen := map[int]bool{}
		for len(ct) < k {
			vi := rng.Intn(len(vars))
			if seen[vi] {
				continue
			}
			seen[vi] = true
			ct = append(ct, Term{vars[vi], 0.5 + rng.Float64()})
		}
		sense := LE
		rhs := 5 + rng.Float64()*30
		if rng.Intn(4) == 0 {
			sense = GE
			rhs = rng.Float64() * 3
		}
		if err := m.AddConstraint(ct, sense, rhs); err != nil {
			t.Fatal(err)
		}
	case 2:
		for i, v := range vars {
			obj[i] = Term{v, rng.Float64()*2 - 1.5}
		}
		if err := m.SetObjective(obj); err != nil {
			t.Fatal(err)
		}
	}
}

// randomMutableModel builds the sweep's starting model: bounded vars, one
// generous packing row, a random objective.
func randomMutableModel(t testing.TB, rng *rand.Rand) (*Model, []Var, []Term) {
	nVars := 4 + rng.Intn(5)
	m := NewModel()
	vars := make([]Var, nVars)
	for i := range vars {
		vars[i] = m.MustVar(fmt.Sprintf("x%d", i), 0, 10+rng.Float64()*40)
	}
	terms := make([]Term, nVars)
	for i, v := range vars {
		terms[i] = Term{v, 1 + rng.Float64()}
	}
	m.MustConstraint(terms, LE, 40+rng.Float64()*40)
	obj := make([]Term, nVars)
	for i, v := range vars {
		obj[i] = Term{v, -rng.Float64()}
	}
	if err := m.SetObjective(obj); err != nil {
		t.Fatal(err)
	}
	return m, vars, obj
}

// TestSparseVsDenseRandomized runs randomized mutation sequences through
// TWO shared workspaces — the default sparse LU basis and the legacy
// dense inverse (DenseBasis) — plus a cold reference, asserting all three
// agree at every step. This is the differential gate for the
// Forrest–Tomlin update machinery: an eta-update bug that drifts the
// factors off the true basis inverse cannot agree with the dense
// product-form path across 30 mutations.
func TestSparseVsDenseRandomized(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			m, vars, obj := randomMutableModel(t, rng)

			wsSparse, wsDense := &Workspace{}, &Workspace{}
			var sparseStats SolveStats
			for step := 0; step < 30; step++ {
				mutateStep(t, m, vars, obj, rng)

				sparseSol, st, sparseErr := m.SolveWithOptions(SolveOptions{Workspace: wsSparse})
				sparseStats.accumulate(st)
				denseSol, _, denseErr := m.SolveWithOptions(SolveOptions{Workspace: wsDense, DenseBasis: true})
				coldSol, coldErr := m.Solve()
				if (sparseErr == nil) != (coldErr == nil) || (denseErr == nil) != (coldErr == nil) {
					t.Fatalf("step %d: sparse err %v, dense err %v, cold err %v", step, sparseErr, denseErr, coldErr)
				}
				if sparseErr != nil {
					if !errors.Is(sparseErr, ErrInfeasible) || !errors.Is(denseErr, ErrInfeasible) {
						t.Fatalf("step %d: unexpected errors sparse=%v dense=%v", step, sparseErr, denseErr)
					}
					continue
				}
				if wsSparse.s != nil && !wsSparse.s.factor.isSparse() {
					t.Fatalf("step %d: default workspace is not on the sparse LU factor", step)
				}
				if wsDense.s != nil && wsDense.s.factor.isSparse() {
					t.Fatalf("step %d: DenseBasis workspace is not on the dense factor", step)
				}
				checkFeasible(t, m, sparseSol)
				checkFeasible(t, m, denseSol)
				tol := 1e-6 * (1 + math.Abs(coldSol.Objective))
				if math.Abs(sparseSol.Objective-coldSol.Objective) > tol {
					t.Fatalf("step %d: sparse objective %.12g != cold %.12g", step, sparseSol.Objective, coldSol.Objective)
				}
				if math.Abs(denseSol.Objective-coldSol.Objective) > tol {
					t.Fatalf("step %d: dense objective %.12g != cold %.12g", step, denseSol.Objective, coldSol.Objective)
				}
			}
			if sparseStats.WarmStarts == 0 {
				t.Fatal("sparse sweep never warm-started")
			}
			t.Logf("sparse stats: %+v", sparseStats)
		})
	}
}

// FuzzForrestTomlin compares the Forrest–Tomlin eta-updated factors
// against a refactorization from scratch of the same basis: after every
// warm solve on a fuzz-chosen mutation sequence, the basic solution xB
// computed through the (possibly long) eta file must match the xB
// recomputed from a fresh LU of the final basis, and the per-step
// objective must match the dense reference. Run via
// `go test -fuzz FuzzForrestTomlin ./internal/lp/`.
func FuzzForrestTomlin(f *testing.F) {
	f.Add(int64(1), uint8(12))
	f.Add(int64(42), uint8(30))
	f.Add(int64(7), uint8(5))
	f.Add(int64(-3), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, steps uint8) {
		nSteps := int(steps%40) + 1
		rng := rand.New(rand.NewSource(seed))
		m, vars, obj := randomMutableModel(t, rng)
		ws := &Workspace{}
		for step := 0; step < nSteps; step++ {
			mutateStep(t, m, vars, obj, rng)
			sol, _, err := m.SolveWithOptions(SolveOptions{Workspace: ws})
			dense, _, denseErr := m.SolveWithOptions(SolveOptions{DenseBasis: true, DisablePresolve: true})
			if (err == nil) != (denseErr == nil) {
				t.Fatalf("step %d: sparse err %v, dense err %v", step, err, denseErr)
			}
			if err != nil {
				continue
			}
			tol := 1e-6 * (1 + math.Abs(dense.Objective))
			if math.Abs(sol.Objective-dense.Objective) > tol {
				t.Fatalf("step %d: sparse objective %.12g != dense %.12g", step, sol.Objective, dense.Objective)
			}

			// FT-vs-scratch: snapshot xB as produced through the eta file,
			// force a from-scratch refactorization of the SAME basis, and
			// require the recomputed xB to agree.
			s := ws.s
			if s == nil || !s.factor.isSparse() {
				t.Fatal("workspace did not keep a sparse simplex")
			}
			before := append([]float64(nil), s.xB...)
			if err := s.refactorize(); err != nil {
				t.Fatalf("step %d: scratch refactorization of an FT-accepted basis failed: %v", step, err)
			}
			for i := range before {
				if d := math.Abs(s.xB[i] - before[i]); d > 1e-6*(1+math.Abs(before[i])) {
					t.Fatalf("step %d: xB[%d] drifted %.3g between eta-updated factors (%.12g) and scratch LU (%.12g)",
						step, i, d, before[i], s.xB[i])
				}
			}
		}
	})
}
