package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestKleeMintyCube solves the classic worst case for Dantzig pricing: the
// Klee-Minty cube in d dimensions,
//
//	max 2^{d-1} x_1 + 2^{d-2} x_2 + ... + x_d
//	s.t. x_1 <= 5
//	     4 x_1 + x_2 <= 25
//	     8 x_1 + 4 x_2 + x_3 <= 125
//	     ...
//
// whose optimum is x = (0, ..., 0, 5^d) with value 5^d. The solver must
// reach it (possibly through many pivots) without cycling.
func TestKleeMintyCube(t *testing.T) {
	for _, d := range []int{3, 6, 9} {
		m := NewModel()
		xs := make([]Var, d)
		for i := range xs {
			xs[i] = mustVar(t, m, "", 0, Inf)
		}
		for i := 0; i < d; i++ {
			terms := make([]Term, 0, i+1)
			for j := 0; j < i; j++ {
				coef := math.Pow(2, float64(i-j+1))
				terms = append(terms, Term{xs[j], coef})
			}
			terms = append(terms, Term{xs[i], 1})
			mustConstraint(t, m, terms, LE, math.Pow(5, float64(i+1)))
		}
		obj := make([]Term, d)
		for j := 0; j < d; j++ {
			obj[j] = Term{xs[j], -math.Pow(2, float64(d-1-j))} // maximize via negation
		}
		mustObjective(t, m, obj)

		sol := mustSolve(t, m)
		want := -math.Pow(5, float64(d))
		if math.Abs(sol.Objective-want) > 1e-6*math.Abs(want) {
			t.Errorf("d=%d: objective = %g, want %g", d, sol.Objective, want)
		}
		verifyOptimal(t, m, sol)
	}
}

// TestIntervalSchedulingIntegrality is the Lemma-2 property at package
// level: random scheduling LPs whose constraint matrices are interval
// matrices (consecutive-ones columns — demand rows over a window, slot cap
// rows) with integral data must have integral optimal basic solutions.
func TestIntervalSchedulingIntegrality(t *testing.T) {
	rng := rand.New(rand.NewSource(1862))
	for trial := 0; trial < 60; trial++ {
		slots := 3 + rng.Intn(6)
		jobs := 1 + rng.Intn(5)
		m := NewModel()
		slotTerms := make([][]Term, slots)
		var obj []Term
		for i := 0; i < jobs; i++ {
			rel := rng.Intn(slots - 1)
			win := 1 + rng.Intn(slots-rel)
			capPerSlot := float64(1 + rng.Intn(5))
			demand := float64(1 + rng.Intn(int(capPerSlot)*win))
			terms := make([]Term, 0, win)
			for s := rel; s < rel+win; s++ {
				v := mustVar(t, m, "", 0, capPerSlot)
				terms = append(terms, Term{v, 1})
				slotTerms[s] = append(slotTerms[s], Term{v, 1})
				// Integral objective coefficients keep the optimum at a
				// vertex with integral coordinates.
				obj = append(obj, Term{v, float64(rng.Intn(7) - 3)})
			}
			mustConstraint(t, m, terms, EQ, demand)
		}
		for s := 0; s < slots; s++ {
			if len(slotTerms[s]) == 0 {
				continue
			}
			mustConstraint(t, m, slotTerms[s], LE, float64(3+rng.Intn(10)))
		}
		mustObjective(t, m, obj)

		sol, err := m.Solve()
		if err != nil {
			continue // randomly infeasible instance
		}
		for j := 0; j < m.NumVars(); j++ {
			v := sol.Value(Var(j))
			if math.Abs(v-math.Round(v)) > 1e-6 {
				t.Fatalf("trial %d: variable %d = %g not integral (TU violated?)", trial, j, v)
			}
		}
		verifyOptimal(t, m, sol)
	}
}
