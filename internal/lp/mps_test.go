package lp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// afiro-like toy problem in MPS form.
const sampleMPS = `* test problem
NAME TESTPROB
ROWS
 N COST
 L LIM1
 G LIM2
 E MYEQN
COLUMNS
 X1 COST 1 LIM1 1
 X1 LIM2 1
 X2 COST 2 LIM1 1
 X2 MYEQN -1
 X3 COST -1 MYEQN 1
RHS
 RHS LIM1 4 LIM2 1
 RHS MYEQN 7
BOUNDS
 UP BND X1 4
 LO BND X2 -1
ENDATA
`

func TestReadMPSSolvesKnownProblem(t *testing.T) {
	mm, err := ReadMPS(strings.NewReader(sampleMPS))
	if err != nil {
		t.Fatalf("ReadMPS: %v", err)
	}
	if mm.Name != "TESTPROB" || mm.ObjName != "COST" {
		t.Errorf("Name/Obj = %q/%q", mm.Name, mm.ObjName)
	}
	if len(mm.RowNames) != 3 || mm.Model.NumVars() != 3 {
		t.Fatalf("rows %v vars %d", mm.RowNames, mm.Model.NumVars())
	}
	sol, err := mm.Model.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// min x1 + 2 x2 - x3
	// s.t. x1 + x2 <= 4; x1 >= 1; -x2 + x3 = 7; x1 in [0,4]; x2 >= -1.
	// Optimal: x1 = 1, x2 = -1, x3 = 6 -> objective 1 - 2 - 6 = -7.
	if !approx(sol.Objective, -7, 1e-6) {
		t.Errorf("objective = %g, want -7", sol.Objective)
	}
	if got := sol.Value(mm.VarNames["X2"]); !approx(got, -1, 1e-6) {
		t.Errorf("X2 = %g, want -1 (negative lower bound honoured)", got)
	}
	verifyOptimal(t, mm.Model, sol)
}

func TestMPSRoundTrip(t *testing.T) {
	mm, err := ReadMPS(strings.NewReader(sampleMPS))
	if err != nil {
		t.Fatalf("ReadMPS: %v", err)
	}
	var buf bytes.Buffer
	if err := mm.WriteMPS(&buf); err != nil {
		t.Fatalf("WriteMPS: %v", err)
	}
	back, err := ReadMPS(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadMPS(round trip): %v\n%s", err, buf.String())
	}
	s1, err := mm.Model.Solve()
	if err != nil {
		t.Fatalf("Solve original: %v", err)
	}
	s2, err := back.Model.Solve()
	if err != nil {
		t.Fatalf("Solve round-tripped: %v", err)
	}
	if !approx(s1.Objective, s2.Objective, 1e-9) {
		t.Errorf("objective changed across round trip: %g vs %g", s1.Objective, s2.Objective)
	}
}

func TestReadMPSErrors(t *testing.T) {
	tests := []struct {
		name string
		body string
	}{
		{"no objective", "ROWS\n L R1\nCOLUMNS\n X R1 1\nRHS\nENDATA\n"},
		{"ranges", "RANGES\n"},
		{"unknown section", "FOO\n"},
		{"unknown row type", "ROWS\n Z R1\n"},
		{"duplicate row", "ROWS\n N C\n L R1\n L R1\n"},
		{"bad value", "ROWS\n N C\n L R1\nCOLUMNS\n X R1 nope\n"},
		{"unknown row in columns", "ROWS\n N C\nCOLUMNS\n X R9 1\n"},
		{"integer marker", "ROWS\n N C\nCOLUMNS\n M1 'MARKER' 'INTORG'\n"},
		{"bound on unknown column", "ROWS\n N C\n L R1\nCOLUMNS\n X R1 1\nBOUNDS\n UP BND Y 3\n"},
		{"bad bound type", "ROWS\n N C\n L R1\nCOLUMNS\n X R1 1\nBOUNDS\n ZZ BND X 3\n"},
		{"row without coefficients", "ROWS\n N C\n L R1\nCOLUMNS\n X C 1\nENDATA\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadMPS(strings.NewReader(tt.body)); err == nil {
				t.Error("ReadMPS accepted malformed input")
			}
		})
	}
}

func TestReadMPSFreeVariable(t *testing.T) {
	body := `NAME FREE
ROWS
 N OBJ
 E EQ1
COLUMNS
 X OBJ 1 EQ1 1
RHS
 RHS EQ1 -5
BOUNDS
 FR BND X
ENDATA
`
	mm, err := ReadMPS(strings.NewReader(body))
	if err != nil {
		t.Fatalf("ReadMPS: %v", err)
	}
	sol, err := mm.Model.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if got := sol.Value(mm.VarNames["X"]); math.Abs(got+5) > 1e-6 {
		t.Errorf("X = %g, want -5 (free variable below zero)", got)
	}
}

func TestSetBounds(t *testing.T) {
	m := NewModel()
	v := mustVar(t, m, "v", 0, 10)
	if err := m.SetBounds(v, -3, 3); err != nil {
		t.Fatalf("SetBounds: %v", err)
	}
	if err := m.SetBounds(v, 5, 1); err == nil {
		t.Error("inverted bounds accepted")
	}
	if err := m.SetBounds(Var(99), 0, 1); err == nil {
		t.Error("unknown var accepted")
	}
}
