package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// This file implements warm-started re-optimization: a Workspace keeps
// the optimal basis of a solved model so the next solve of the same model
// — after constraints were appended, right-hand sides retuned via SetRHS,
// or the objective replaced — starts from that basis instead of
// cold-starting phase 1 with artificials. The repair sequence is the
// classical one:
//
//  1. refresh b and the basic values against the mutated model;
//  2. dual simplex under the cost vector the basis was last optimal for
//     (dual feasible by construction) until primal feasibility returns;
//  3. primal simplex under the new objective to optimality.
//
// Appended rows extend the basis block-triangularly: each new row gets a
// unit column (slack for LE/GE, a bound-pinned artificial for EQ) that
// starts basic, so the kept inverse stays exact and any violation of the
// new row surfaces as a basic variable out of bounds for step 2.
//
// Any stall or numerical breakdown on this path is reported as
// errWarmStart, which SolveWithOptions converts into a cold restart — the
// warm path can therefore never change results, only the work needed to
// reach them.

// errWarmStart tags warm-path failures that must fall back to a cold
// start rather than surface to the caller. Budget trips (ErrIterationLimit,
// ErrTimeLimit) and genuine outcomes (ErrUnbounded) are never wrapped:
// those surface directly so the caller does not pay a consumed budget
// twice.
var errWarmStart = errors.New("lp: warm start failed")

// Workspace carries a simplex basis between solves of one model. Pass it
// via SolveOptions.Workspace: a successful solve records its basis, and a
// later solve of the same *Model warm-starts from it when only
// constraints were appended, RHS values retuned, or the objective
// changed. The zero value is ready to use. A Workspace is bound to one
// model at a time (a solve of a different model resets it) and is not
// safe for concurrent use.
type Workspace struct {
	s     *simplex
	model *Model
	nRows int // model rows incorporated into s
	rev   int // model coefficient revision incorporated into s
	// valid records that the basis ended a solve optimal, which the
	// dual-simplex repair needs (it requires dual feasibility). A basis
	// left behind by a failed solve may still seed a primal-only warm
	// start when it happens to be feasible.
	valid bool
}

// Reset discards the kept basis; the next solve cold-starts.
func (ws *Workspace) Reset() {
	ws.s = nil
	ws.model = nil
	ws.nRows = 0
	ws.rev = 0
	ws.valid = false
}

// compatible reports whether the kept basis can seed a solve of m: same
// model object, no variables added since capture, and no rows removed
// (the Model API cannot remove rows; appended rows are incorporated).
func (ws *Workspace) compatible(m *Model) bool {
	return ws.s != nil && ws.model == m && m.NumVars() == ws.s.nStruct && len(m.rows) >= ws.nRows
}

// capture records a successfully solved basis.
func (ws *Workspace) capture(m *Model, s *simplex) {
	ws.s = s
	ws.model = m
	ws.nRows = len(m.rows)
	ws.rev = m.rev
	ws.valid = true
}

// warmSolve re-optimizes m from the workspace basis. Errors wrapped in
// errWarmStart ask the caller to retry cold; budget errors and
// ErrUnbounded are final.
func (ws *Workspace) warmSolve(m *Model, opts SolveOptions, start time.Time) (*Solution, error) {
	s := ws.s
	wasOptimal := ws.valid
	ws.valid = false // not optimal again until this solve succeeds
	s.maxIter = opts.MaxIter
	s.deadline = time.Time{}
	if opts.MaxTime > 0 {
		s.deadline = start.Add(opts.MaxTime)
	}

	if len(m.rows) > ws.nRows {
		if err := s.appendRows(m, ws.nRows); err != nil {
			return nil, fmt.Errorf("%w: %v", errWarmStart, err)
		}
		ws.nRows = len(m.rows)
	}

	// Coefficient edits (SetCoef) keep the shape of the model but change
	// the matrix, so the kept inverse is stale: refresh b to match the new
	// matrix, reload the structural columns, and refactorize against the
	// same basis (which recomputes xB consistently). The basis can have
	// gone singular (e.g. a basic variable's column zeroed out); the
	// repairing refactorization swaps dependent positions for per-row unit
	// columns, and only if that also fails does the solve fall back cold.
	// Direction-aware RHS handling is
	// meaningless across a matrix change, so the split-relax path below is
	// skipped.
	coefChanged := m.rev != ws.rev
	if coefChanged {
		for i := range s.b {
			s.b[i] = m.rows[i].rhs
		}
		s.reloadCoefs(m)
		if err := s.refactorizeRepair(); err != nil {
			return nil, fmt.Errorf("%w: %v", errWarmStart, err)
		}
		s.yValid = false
		ws.rev = m.rev
	}

	// Variable-bound edits (SetVarBounds): tightened bounds snap the
	// nonbasic value and leave any violation to the dual phase; relaxed
	// bounds first try to pivot the pinned variable into the basis so it
	// is not forced to jump to the surviving bound.
	boundsChanged, err := s.refreshBounds(m)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errWarmStart, err)
	}

	// The RHS refresh is split by direction. Tightenings (and EQ moves)
	// are applied first and repaired by the dual phase under the old cost
	// vector, which is dual feasible by construction. Relaxations are
	// deferred: a row relaxed while its slack is nonbasic stays pinned
	// tight at the new, unreachable RHS and the dual phase would thrash
	// undoing that — so those slacks first get one legal primal pivot back
	// into the basis (slackReentry), after which a basic slack absorbs its
	// row's relax for free.
	anyRelax := false
	if !coefChanged {
		for i := range s.b {
			newRHS := m.rows[i].rhs
			if newRHS == s.b[i] {
				continue
			}
			isRelax := false
			if s.rowSlack[i] >= 0 {
				if m.rows[i].sense == LE {
					isRelax = newRHS > s.b[i]
				} else {
					isRelax = newRHS < s.b[i]
				}
			}
			if isRelax {
				anyRelax = true
				continue
			}
			s.b[i] = newRHS
		}
	}
	if !coefChanged || boundsChanged {
		s.recomputeXB()
	}

	// Dual phase: restore primal feasibility under the cost vector the
	// basis was last optimal for (dual feasible by construction — except
	// after coefficient edits or re-entry pivots, where the repair is best
	// effort and failure falls back to the cold start).
	if leave, _, _ := s.primalInfeas(); leave >= 0 {
		if !wasOptimal {
			return nil, fmt.Errorf("%w: kept basis is neither optimal nor feasible", errWarmStart)
		}
		if err := s.iterateDual(); err != nil {
			return nil, err
		}
	}

	if anyRelax {
		if err := s.slackReentry(m); err != nil {
			return nil, fmt.Errorf("%w: %v", errWarmStart, err)
		}
		for i := range s.b {
			s.b[i] = m.rows[i].rhs
		}
		s.recomputeXB()
		if leave, _, _ := s.primalInfeas(); leave >= 0 {
			// Rows whose relax edge was unbounded stayed pinned; one more
			// repair pass.
			if err := s.iterateDual(); err != nil {
				return nil, err
			}
		}
	}

	// Primal phase under the new objective from the now-feasible basis.
	for j := 0; j < s.n; j++ {
		if j < s.nStruct {
			s.cost[j] = m.obj[j]
		} else {
			s.cost[j] = 0
		}
	}
	s.bland = false
	s.degen = 0
	if err := s.iterate(false); err != nil {
		if errors.Is(err, ErrIterationLimit) || errors.Is(err, ErrTimeLimit) || errors.Is(err, ErrUnbounded) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %v", errWarmStart, err)
	}
	if err := s.checkNumerics(); err != nil {
		return nil, fmt.Errorf("%w: %v", errWarmStart, err)
	}
	ws.valid = true
	return s.solution(m), nil
}

// slackReentry walks the rows whose RHS is about to be relaxed (m holds
// the new values, s.b the old) and whose slack is nonbasic. Such a slack
// pins the row tight, so after the relax the row would be forced to the
// new, unreachable RHS and the dual phase would thrash undoing it. A
// single primal ratio-test pivot moves each such slack into the basis
// while the old RHS is still in effect — a legal feasible step — after
// which the relax is absorbed by the basic slack for free. Rows whose
// relax edge is unbounded are left for the dual phase.
func (s *simplex) slackReentry(m *Model) error {
	for i := 0; i < s.m; i++ {
		j := s.rowSlack[i]
		if j < 0 || s.status[j] == inBasis {
			continue
		}
		delta := m.rows[i].rhs - s.b[i]
		relaxed := false
		switch m.rows[i].sense {
		case LE:
			relaxed = delta > feasTol
		case GE:
			relaxed = delta < -feasTol
		}
		if !relaxed {
			continue
		}
		// The slack sits at its lower bound 0 (hi is +inf, so nonbasic
		// means at-lower) and a relax always wants it to increase. Rows
		// where pivotIn finds no limiting row are left for the dual phase.
		if err := s.pivotIn(j, 1); err != nil {
			return err
		}
	}
	return nil
}

// pivotIn tries to bring nonbasic variable j into the basis with a single
// primal ratio-test pivot in direction dir (+1 increasing, -1 decreasing),
// which is feasibility-preserving by construction. It changes nothing
// when no row limits the move before j's own opposite bound would (a
// bound flip is not an entry) or the pivot element is numerically
// unusable; a non-nil error means the factor update forced a
// refactorization that failed.
func (s *simplex) pivotIn(j, dir int) error {
	s.computeDirection(j)
	limit := math.Inf(1)
	leave := -1
	leaveToUpper := false
	for r := 0; r < s.m; r++ {
		delta := -float64(dir) * s.w[r]
		bv := s.basicVar[r]
		var t float64
		var toUpper bool
		switch {
		case delta < -feasTol:
			t = (s.xB[r] - s.lo[bv]) / (-delta)
		case delta > feasTol:
			if math.IsInf(s.hi[bv], 1) {
				continue
			}
			t = (s.hi[bv] - s.xB[r]) / delta
			toUpper = true
		default:
			continue
		}
		if t < 0 {
			t = 0
		}
		if t < limit-feasTol || (t < limit+feasTol && leave >= 0 && math.Abs(s.w[r]) > math.Abs(s.w[leave])) {
			if t < limit {
				limit = t
			}
			leave, leaveToUpper = r, toUpper
		}
	}
	if leave < 0 || math.Abs(s.w[leave]) < 1e-12 {
		return nil
	}
	if span := s.hi[j] - s.lo[j]; limit > span {
		return nil
	}
	enterVal := s.xN[j] + float64(dir)*limit
	s.applyStep(dir, limit)
	out := s.basicVar[leave]
	s.rowOf[out] = -1
	if leaveToUpper {
		s.status[out] = atUpper
		s.xN[out] = s.hi[out]
	} else {
		s.status[out] = atLower
		s.xN[out] = s.lo[out]
	}
	if err := s.updateBasis(j, leave, enterVal); err != nil {
		return err
	}
	s.pivots++
	s.yValid = false
	return nil
}

// refreshBounds folds SetVarBounds edits into the simplex and reports
// whether anything changed (the caller then recomputes xB). A variable
// nonbasic on a bound that is being relaxed would otherwise be dragged
// along with it, so it first gets one feasible pivot into the basis; a
// tightened bound just snaps the nonbasic value and leaves any induced
// violation to the dual phase (which bound changes keep dual feasible).
func (s *simplex) refreshBounds(m *Model) (bool, error) {
	changed := false
	for j := 0; j < s.nStruct; j++ {
		lo, hi := m.lo[j], m.hi[j]
		if lo == s.lo[j] && hi == s.hi[j] {
			continue
		}
		changed = true
		switch s.status[j] {
		case atLower:
			if lo < s.lo[j] {
				if err := s.pivotIn(j, 1); err != nil {
					return changed, err
				}
			}
		case atUpper:
			if hi > s.hi[j] {
				if err := s.pivotIn(j, -1); err != nil {
					return changed, err
				}
			}
		}
		s.lo[j], s.hi[j] = lo, hi
		switch s.status[j] {
		case atLower:
			s.xN[j] = lo
		case atUpper:
			if math.IsInf(hi, 1) {
				s.status[j] = atLower
				s.xN[j] = lo
			} else {
				s.xN[j] = hi
			}
		}
	}
	return changed, nil
}

// reloadCoefs rebuilds the structural columns from the model rows after
// SetCoef edits. Slack and artificial columns are untouched; zero
// coefficients are dropped so a detached variable really leaves the row.
// The caller must refactorize afterwards — the kept inverse no longer
// matches the reloaded matrix.
func (s *simplex) reloadCoefs(m *Model) {
	for j := 0; j < s.nStruct; j++ {
		s.cols[j].rows = s.cols[j].rows[:0]
		s.cols[j].vals = s.cols[j].vals[:0]
	}
	for i := range m.rows {
		for _, t := range m.rows[i].terms {
			if t.Coef == 0 {
				continue
			}
			c := &s.cols[t.Var]
			if k := len(c.rows); k > 0 && c.rows[k-1] == i {
				c.vals[k-1] += t.Coef
				continue
			}
			c.rows = append(c.rows, i)
			c.vals = append(c.vals, t.Coef)
		}
	}
}

// primalInfeas returns the row of the worst basic bound violation, or
// leave = -1 when the basis is primal feasible within tolerance. below
// reports which bound is violated and worst the violation magnitude
// (the dual phase's anti-stall guard watches it for progress). The
// tolerance is scale-aware and sits above refresh rounding but far
// below any meaningful RHS change.
func (s *simplex) primalInfeas() (leave int, below bool, worst float64) {
	leave = -1
	for r := 0; r < s.m; r++ {
		bv := s.basicVar[r]
		tol := 1e-8 * (1 + math.Abs(s.xB[r]))
		if d := s.lo[bv] - s.xB[r]; d > tol && d > worst {
			worst, leave, below = d, r, true
		}
		if hi := s.hi[bv]; !math.IsInf(hi, 1) {
			if d := s.xB[r] - hi; d > tol && d > worst {
				worst, leave, below = d, r, false
			}
		}
	}
	return leave, below, worst
}

// iterateDual runs bounded-variable dual-simplex pivots until every basic
// variable is back within its bounds. It must start dual feasible (the
// basis was optimal for s.cost); each pivot preserves dual feasibility by
// the usual ratio test on reduced costs. Dual unboundedness — no entering
// candidate — proves primal infeasibility, but is reported as a warm-start
// failure so the authoritative answer comes from a cold start.
//
// Anti-stall guard: when the worst infeasibility fails to shrink for
// degenerateLimit consecutive pivots (a degenerate plateau where cycling
// is possible), the entering tie-break switches to Bland-style
// lowest-index selection until progress resumes; those pivots are counted
// in SolveStats.BlandPivots alongside the primal guard's.
func (s *simplex) iterateDual() error {
	maxIter := s.maxIter
	if maxIter <= 0 {
		maxIter = 200*(s.m+s.n) + 20000
	}
	stall := 0
	dualBland := false
	prevWorst := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		if iter&15 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return fmt.Errorf("%w after %d pivots (dual phase)", ErrTimeLimit, s.pivots)
		}
		if s.pivots > 0 && s.pivots%refactorEvery == 0 {
			if err := s.refactorize(); err != nil {
				return fmt.Errorf("%w: %v", errWarmStart, err)
			}
			s.pivots++ // avoid immediate re-refactorization
			s.yValid = false
			continue // re-scan infeasibility against the cleaned values
		}

		leave, below, worst := s.primalInfeas()
		if leave < 0 {
			return nil // primal feasible again
		}
		if worst < prevWorst-feasTol*(1+prevWorst) {
			stall = 0
			dualBland = false
		} else if stall++; stall >= degenerateLimit {
			dualBland = true
		}
		prevWorst = worst

		// Duals are maintained incrementally across dual pivots (same O(m)
		// update as the primal pivot), so the full recomputation happens
		// only on entry and after refactorization.
		if !s.yValid {
			s.computeDuals()
			s.yValid = true
		}
		s.factor.rowInv(leave, s.rowBuf)
		row := s.rowBuf

		// Entering choice: among nonbasic columns whose pivot moves the
		// leaving variable toward its bound, take the smallest dual ratio
		// |d_j|/|alpha_j| (preserves dual feasibility), breaking near-ties
		// by pivot magnitude for numerical stability — or, under the
		// anti-stall guard, by lowest index (ascending scan keeps the
		// first minimal-ratio candidate).
		enter := -1
		bestRatio, bestAlpha, bestD := math.Inf(1), 0.0, 0.0
		for j := 0; j < s.n; j++ {
			st := s.status[j]
			if st == inBasis || s.lo[j] == s.hi[j] {
				continue
			}
			c := &s.cols[j]
			alpha := 0.0
			for k, r := range c.rows {
				alpha += row[r] * c.vals[k]
			}
			if math.Abs(alpha) < 1e-9 {
				continue
			}
			var ok bool
			if below {
				// xB[leave] must increase.
				ok = (st == atLower && alpha < 0) || (st == atUpper && alpha > 0)
			} else {
				ok = (st == atLower && alpha > 0) || (st == atUpper && alpha < 0)
			}
			if !ok {
				continue
			}
			d := s.reducedCost(j)
			ratio := math.Abs(d) / math.Abs(alpha)
			switch {
			case ratio < bestRatio-costTol:
				bestRatio, enter, bestAlpha, bestD = ratio, j, alpha, d
			case !dualBland && ratio < bestRatio+costTol && math.Abs(alpha) > math.Abs(bestAlpha):
				if ratio < bestRatio {
					bestRatio = ratio
				}
				enter, bestAlpha, bestD = j, alpha, d
			}
		}
		if enter < 0 {
			return fmt.Errorf("%w: dual unbounded in row %d (primal likely infeasible)", errWarmStart, leave)
		}

		// Pivot: the entering variable moves exactly enough to land the
		// leaving variable on its violated bound.
		bv := s.basicVar[leave]
		target := s.lo[bv]
		if !below {
			target = s.hi[bv]
		}
		delta := s.xB[leave] - target
		s.computeDirection(enter) // w = Binv * A_enter; w[leave] = alpha
		piv := s.w[leave]
		if math.Abs(piv) < 1e-12 {
			// Collapsed numerically since the alpha scan; clean up and
			// rescan rather than dividing by ~0.
			if err := s.refactorize(); err != nil {
				return fmt.Errorf("%w: %v", errWarmStart, err)
			}
			s.yValid = false
			continue
		}
		step := delta / piv
		for r := 0; r < s.m; r++ {
			s.xB[r] -= step * s.w[r]
		}
		enterVal := s.xN[enter] + step
		s.rowOf[bv] = -1
		if below {
			s.status[bv] = atLower
		} else {
			s.status[bv] = atUpper
		}
		s.xN[bv] = target
		// Incremental dual update before the factors change (same identity
		// as the primal pivot: zero the entering column's reduced cost).
		// rowBuf still holds row `leave` of Binv from the alpha scan.
		thetaY := bestD / piv
		for i := range s.y {
			s.y[i] += thetaY * s.rowBuf[i]
		}
		if err := s.updateBasis(enter, leave, enterVal); err != nil {
			return fmt.Errorf("%w: %v", errWarmStart, err)
		}
		s.pivots++
		s.dualPivots++
		if dualBland {
			s.blandPivots++
		}
	}
	return fmt.Errorf("%w after %d pivots (dual phase)", ErrIterationLimit, s.pivots)
}

// appendRows extends the simplex with model rows [from, len(m.rows)).
// Each new row contributes its coefficients to the structural columns and
// receives a basic unit column, so the basis grows block-triangularly:
//
//	B' = [B 0; C D],  D = diag(±1) of the unit columns.
//
// The simplex bookkeeping is extended here; how the factor absorbs the
// growth is delegated to it. The dense reference materializes the
// block-inverse identity (an O(m²) copy); the sparse LU refactorizes,
// whose singleton peel consumes the block-triangular border in O(nnz) —
// growth no longer touches a dense m×m matrix on the default path. The
// caller recomputes xB afterwards.
func (s *simplex) appendRows(m *Model, from int) error {
	old := s.m
	newM := len(m.rows)
	add := newM - old

	s.m = newM
	s.b = append(s.b, make([]float64, add)...)
	s.xB = append(s.xB, make([]float64, add)...)
	s.basicVar = append(s.basicVar, make([]int, add)...)
	s.y = make([]float64, newM)
	s.w = make([]float64, newM)
	s.rowBuf = make([]float64, newM)

	for i := from; i < newM; i++ {
		r := m.rows[i]
		s.b[i] = r.rhs

		// Merge duplicate variables within the row, then splice the merged
		// coefficients into the structural columns. Row indices only grow,
		// so each column's row list stays sorted.
		for _, t := range mergeRowTerms(&m.rows[i]) {
			col := &s.cols[t.Var]
			col.rows = append(col.rows, i)
			col.vals = append(col.vals, t.Coef)
		}

		// Unit column: slack for inequalities, a bound-pinned artificial
		// for equalities (it must be driven back to zero by the dual
		// phase if the new row is violated).
		sigma := 1.0
		hi := Inf
		switch r.sense {
		case GE:
			sigma = -1
		case EQ:
			hi = 0
		}
		s.cols = append(s.cols, sparseCol{rows: []int{i}, vals: []float64{sigma}})
		s.lo = append(s.lo, 0)
		s.hi = append(s.hi, hi)
		s.cost = append(s.cost, 0)
		s.status = append(s.status, inBasis)
		s.xN = append(s.xN, 0)
		j := len(s.cols) - 1
		s.rowOf = append(s.rowOf, i)
		s.basicVar[i] = j
		if r.sense == EQ {
			s.rowSlack = append(s.rowSlack, -1)
		} else {
			s.rowSlack = append(s.rowSlack, j)
		}
		s.rowUnit = append(s.rowUnit, j)
	}
	s.n = len(s.cols)
	s.yValid = false
	return s.factor.grow(s, m, old)
}
