package lp

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements a practical subset of the MPS linear-program
// interchange format (the lingua franca of LP solvers, including the
// CPLEX this package replaces): sections NAME, ROWS (N/L/G/E), COLUMNS,
// RHS, and BOUNDS (UP, LO, FX, FR, MI, PL). Free-form (whitespace-
// separated) input is accepted. RANGES, integer markers, and objective
// constants are not supported and are reported as errors rather than
// silently ignored.

// MPSModel couples a parsed model with its symbol tables.
type MPSModel struct {
	// Name is the NAME record (may be empty).
	Name string
	// Model is the materialized LP (minimization).
	Model *Model
	// VarNames maps variable names to model variables.
	VarNames map[string]Var
	// RowNames lists constraint names in model order.
	RowNames []string
	// ObjName is the objective row's name.
	ObjName string
}

// ReadMPS parses an MPS document.
func ReadMPS(r io.Reader) (*MPSModel, error) {
	out := &MPSModel{
		Model:    NewModel(),
		VarNames: make(map[string]Var),
	}
	type rowInfo struct {
		sense Sense
		terms []Term
		rhs   float64
	}
	var (
		section  string
		objTerms = map[Var]float64{}
		rowOrder []string
		rows     = map[string]*rowInfo{}
		// Bounds are applied after COLUMNS; defaults are [0, +inf).
		loBound = map[string]float64{}
		hiBound = map[string]float64{}
		freeVar = map[string]bool{}
	)

	getVar := func(name string) Var {
		if v, ok := out.VarNames[name]; ok {
			return v
		}
		// Bounds are rewritten at the end; start permissive on the upper
		// side and at the conventional 0 lower bound.
		v := out.Model.MustVar(name, 0, Inf)
		out.VarNames[name] = v
		return v
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if trimmed := strings.TrimSpace(line); trimmed == "" || strings.HasPrefix(trimmed, "*") {
			continue
		}
		fields := strings.Fields(line)
		// Section headers start in column 1 (no leading whitespace).
		if !strings.HasPrefix(line, " ") && !strings.HasPrefix(line, "\t") {
			section = strings.ToUpper(fields[0])
			switch section {
			case "NAME":
				if len(fields) > 1 {
					out.Name = fields[1]
				}
			case "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA", "OBJSENSE":
				// handled below / ignored payload
			case "RANGES":
				return nil, fmt.Errorf("lp: mps line %d: RANGES section not supported", lineNo)
			default:
				return nil, fmt.Errorf("lp: mps line %d: unknown section %q", lineNo, section)
			}
			if section == "ENDATA" {
				break
			}
			continue
		}

		switch section {
		case "ROWS":
			if len(fields) != 2 {
				return nil, fmt.Errorf("lp: mps line %d: malformed ROWS record", lineNo)
			}
			kind, name := strings.ToUpper(fields[0]), fields[1]
			switch kind {
			case "N":
				if out.ObjName != "" {
					return nil, fmt.Errorf("lp: mps line %d: multiple objective rows", lineNo)
				}
				out.ObjName = name
			case "L", "G", "E":
				if _, dup := rows[name]; dup {
					return nil, fmt.Errorf("lp: mps line %d: duplicate row %q", lineNo, name)
				}
				sense := map[string]Sense{"L": LE, "G": GE, "E": EQ}[kind]
				rows[name] = &rowInfo{sense: sense}
				rowOrder = append(rowOrder, name)
			default:
				return nil, fmt.Errorf("lp: mps line %d: unknown row type %q", lineNo, kind)
			}
		case "COLUMNS":
			// Pairs: column row value [row value].
			if len(fields) == 3 && strings.EqualFold(fields[1], "'MARKER'") {
				return nil, fmt.Errorf("lp: mps line %d: integer markers not supported", lineNo)
			}
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("lp: mps line %d: malformed COLUMNS record", lineNo)
			}
			col := getVar(fields[0])
			for i := 1; i+1 < len(fields); i += 2 {
				rowName := fields[i]
				val, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: bad value %q", lineNo, fields[i+1])
				}
				if rowName == out.ObjName {
					objTerms[col] += val
					continue
				}
				ri, ok := rows[rowName]
				if !ok {
					return nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, rowName)
				}
				ri.terms = append(ri.terms, Term{Var: col, Coef: val})
			}
		case "RHS":
			// Pairs: rhsname row value [row value].
			if len(fields) != 3 && len(fields) != 5 {
				return nil, fmt.Errorf("lp: mps line %d: malformed RHS record", lineNo)
			}
			for i := 1; i+1 < len(fields); i += 2 {
				ri, ok := rows[fields[i]]
				if !ok {
					return nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, fields[i])
				}
				val, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: bad value %q", lineNo, fields[i+1])
				}
				ri.rhs = val
			}
		case "BOUNDS":
			// kind boundname column [value]
			if len(fields) != 3 && len(fields) != 4 {
				return nil, fmt.Errorf("lp: mps line %d: malformed BOUNDS record", lineNo)
			}
			kind := strings.ToUpper(fields[0])
			colName := fields[2]
			if _, ok := out.VarNames[colName]; !ok {
				return nil, fmt.Errorf("lp: mps line %d: bound on unknown column %q", lineNo, colName)
			}
			var val float64
			if len(fields) == 4 {
				v, err := strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fmt.Errorf("lp: mps line %d: bad bound %q", lineNo, fields[3])
				}
				val = v
			}
			switch kind {
			case "UP":
				hiBound[colName] = val
			case "LO":
				loBound[colName] = val
			case "FX":
				loBound[colName] = val
				hiBound[colName] = val
			case "FR":
				freeVar[colName] = true
			case "MI":
				freeVar[colName] = true // lower unbounded; approximated below
			case "PL":
				// default upper bound: nothing to do
			default:
				return nil, fmt.Errorf("lp: mps line %d: bound type %q not supported", lineNo, kind)
			}
		case "", "NAME", "OBJSENSE":
			// stray continuation lines for sections with no payload
		default:
			return nil, fmt.Errorf("lp: mps line %d: data outside a known section", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lp: mps: %w", err)
	}
	if out.ObjName == "" {
		return nil, fmt.Errorf("lp: mps: no objective (N) row")
	}

	// Apply bounds. Free / MI variables get a large negative lower bound:
	// the simplex requires finite lower bounds, and the paper's scheduling
	// models never need truly free variables.
	const freeLow = -1e12
	for name, v := range out.VarNames {
		lo, hasLo := loBound[name]
		hi, hasHi := hiBound[name]
		switch {
		case freeVar[name]:
			if !hasLo {
				lo = freeLow
			}
			if !hasHi {
				hi = Inf
			}
		default:
			if !hasLo {
				lo = 0
			}
			if !hasHi {
				hi = Inf
			}
		}
		if err := out.Model.SetBounds(v, lo, hi); err != nil {
			return nil, fmt.Errorf("lp: mps: column %q: %w", name, err)
		}
	}

	// Materialize rows in declaration order.
	for _, name := range rowOrder {
		ri := rows[name]
		if len(ri.terms) == 0 {
			return nil, fmt.Errorf("lp: mps: row %q has no coefficients", name)
		}
		if err := out.Model.AddConstraint(ri.terms, ri.sense, ri.rhs); err != nil {
			return nil, fmt.Errorf("lp: mps: row %q: %w", name, err)
		}
		out.RowNames = append(out.RowNames, name)
	}
	terms := make([]Term, 0, len(objTerms))
	for v, c := range objTerms {
		terms = append(terms, Term{Var: v, Coef: c})
	}
	sort.Slice(terms, func(a, b int) bool { return terms[a].Var < terms[b].Var })
	if err := out.Model.SetObjective(terms); err != nil {
		return nil, fmt.Errorf("lp: mps: objective: %w", err)
	}
	return out, nil
}

// WriteMPS serializes the model as fixed-section MPS. Variable and row
// names must have been assigned (ReadMPS round-trips; models built in
// code need non-empty names for stable output — unnamed entities get
// positional names).
func (m *MPSModel) WriteMPS(w io.Writer) error {
	bw := bufio.NewWriter(w)
	name := m.Name
	if name == "" {
		name = "FLOWTIME"
	}
	obj := m.ObjName
	if obj == "" {
		obj = "COST"
	}
	fmt.Fprintf(bw, "NAME %s\n", name)
	fmt.Fprintln(bw, "ROWS")
	fmt.Fprintf(bw, " N %s\n", obj)
	md := m.Model
	for i, rn := range m.RowNames {
		kind := map[Sense]string{LE: "L", GE: "G", EQ: "E"}[md.rows[i].sense]
		fmt.Fprintf(bw, " %s %s\n", kind, rn)
	}

	// Column-major emission.
	varName := make([]string, md.NumVars())
	for n, v := range m.VarNames {
		varName[v] = n
	}
	for j := range varName {
		if varName[j] == "" {
			varName[j] = fmt.Sprintf("X%06d", j)
		}
	}
	fmt.Fprintln(bw, "COLUMNS")
	for j := 0; j < md.NumVars(); j++ {
		if c := md.obj[j]; c != 0 {
			fmt.Fprintf(bw, " %s %s %g\n", varName[j], obj, c)
		}
		for i, row := range md.rows {
			coef := 0.0
			for _, t := range row.terms {
				if int(t.Var) == j {
					coef += t.Coef
				}
			}
			if coef != 0 {
				fmt.Fprintf(bw, " %s %s %g\n", varName[j], m.RowNames[i], coef)
			}
		}
	}
	fmt.Fprintln(bw, "RHS")
	for i, row := range md.rows {
		if row.rhs != 0 {
			fmt.Fprintf(bw, " RHS %s %g\n", m.RowNames[i], row.rhs)
		}
	}
	fmt.Fprintln(bw, "BOUNDS")
	for j := 0; j < md.NumVars(); j++ {
		lo, hi := md.lo[j], md.hi[j]
		switch {
		case lo == hi:
			fmt.Fprintf(bw, " FX BND %s %g\n", varName[j], lo)
		default:
			if lo != 0 {
				fmt.Fprintf(bw, " LO BND %s %g\n", varName[j], lo)
			}
			if hi != Inf {
				fmt.Fprintf(bw, " UP BND %s %g\n", varName[j], hi)
			}
		}
	}
	fmt.Fprintln(bw, "ENDATA")
	return bw.Flush()
}

// SetBounds rewrites a variable's bounds.
func (m *Model) SetBounds(v Var, lo, hi float64) error {
	if err := m.checkVar(v); err != nil {
		return err
	}
	if hi < lo {
		return fmt.Errorf("lp: invalid bounds [%g, %g]", lo, hi)
	}
	m.lo[v] = lo
	m.hi[v] = hi
	return nil
}
