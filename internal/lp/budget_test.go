package lp

import (
	"errors"
	"testing"
	"time"
)

// multiPivotModel needs several simplex pivots: maximize the sum of four
// bounded variables under a shared capacity row. The optimum packs
// variables one at a time, so a 1-pivot budget cannot finish.
func multiPivotModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel()
	var obj []Term
	var row []Term
	for i := 0; i < 4; i++ {
		v, err := m.NewVar("", 0, 6)
		if err != nil {
			t.Fatalf("NewVar: %v", err)
		}
		obj = append(obj, Term{Var: v, Coef: -1})
		row = append(row, Term{Var: v, Coef: 1})
	}
	if err := m.SetObjective(obj); err != nil {
		t.Fatalf("SetObjective: %v", err)
	}
	if err := m.AddConstraint(row, LE, 10); err != nil {
		t.Fatalf("AddConstraint: %v", err)
	}
	return m
}

func TestSolveMaxIterTrips(t *testing.T) {
	m := multiPivotModel(t)
	sol, stats, err := m.SolveWithOptions(SolveOptions{MaxIter: 1})
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("err = %v, want ErrIterationLimit", err)
	}
	if sol != nil {
		t.Error("tripped solve returned a non-nil solution")
	}
	if stats.Pivots < 1 {
		t.Errorf("stats.Pivots = %d, want >= 1 (budget was consumed)", stats.Pivots)
	}
	if stats.Duration <= 0 {
		t.Errorf("stats.Duration = %v, want > 0", stats.Duration)
	}
}

func TestSolveMaxTimeTrips(t *testing.T) {
	m := multiPivotModel(t)
	// A 1ns budget is already expired at the iter-0 deadline check, so the
	// trip is deterministic regardless of machine speed.
	_, _, err := m.SolveWithOptions(SolveOptions{MaxTime: time.Nanosecond})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}

func TestSolveWithOptionsZeroValueMatchesSolve(t *testing.T) {
	a := multiPivotModel(t)
	want, err := a.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	got, stats, err := a.SolveWithOptions(SolveOptions{})
	if err != nil {
		t.Fatalf("SolveWithOptions: %v", err)
	}
	if got.Objective != want.Objective {
		t.Errorf("objective = %g, want %g (zero options must match Solve)", got.Objective, want.Objective)
	}
	if want.Objective != -10 {
		t.Errorf("objective = %g, want -10", want.Objective)
	}
	if stats.Pivots < 2 {
		t.Errorf("stats.Pivots = %d, want >= 2 on a multi-pivot model", stats.Pivots)
	}
}

func TestGenerousBudgetsDoNotTrip(t *testing.T) {
	m := multiPivotModel(t)
	sol, _, err := m.SolveWithOptions(SolveOptions{MaxIter: 1 << 20, MaxTime: time.Minute})
	if err != nil {
		t.Fatalf("SolveWithOptions: %v", err)
	}
	if sol.Objective != -10 {
		t.Errorf("objective = %g, want -10", sol.Objective)
	}
}

// minMaxInstance is a two-variable load-balancing instance: both loads can
// be equalized at level 0.5.
func minMaxInstance(t *testing.T) (*Model, []LoadGroup) {
	t.Helper()
	m := NewModel()
	x := m.MustVar("x", 0, 10)
	y := m.MustVar("y", 0, 10)
	m.MustConstraint([]Term{{Var: x, Coef: 1}, {Var: y, Coef: 1}}, EQ, 10)
	groups := []LoadGroup{
		{Name: "s0", Terms: []Term{{Var: x, Coef: 1}}, Cap: 10},
		{Name: "s1", Terms: []Term{{Var: y, Coef: 1}}, Cap: 10},
	}
	return m, groups
}

func TestLexMinMaxPropagatesBudget(t *testing.T) {
	m, groups := minMaxInstance(t)
	_, err := LexMinMaxWithOptions(m, groups, MinMaxOptions{Solve: SolveOptions{MaxTime: time.Nanosecond}})
	if !errors.Is(err, ErrTimeLimit) {
		t.Fatalf("err = %v, want ErrTimeLimit", err)
	}
}

func TestLexMinMaxAggregatesStats(t *testing.T) {
	m, groups := minMaxInstance(t)
	res, err := LexMinMaxWithOptions(m, groups, MinMaxOptions{})
	if err != nil {
		t.Fatalf("LexMinMax: %v", err)
	}
	if res.Stats.Pivots < 1 {
		t.Errorf("Stats.Pivots = %d, want >= 1", res.Stats.Pivots)
	}
	if res.Stats.Duration <= 0 {
		t.Errorf("Stats.Duration = %v, want > 0", res.Stats.Duration)
	}
	for g, lv := range res.Levels {
		if lv > 0.5+1e-6 {
			t.Errorf("group %d level = %g, want <= 0.5 (balanced optimum)", g, lv)
		}
	}
}
