package lp

import (
	"errors"
	"fmt"
	"math"
	"time"
)

const (
	// costTol is the reduced-cost tolerance for optimality.
	costTol = 1e-9
	// feasTol is the bound/feasibility tolerance.
	feasTol = 1e-9
	// phase1Tol decides whether the phase-1 objective is "zero".
	phase1Tol = 1e-7
	// degenerateLimit is the number of consecutive degenerate pivots after
	// which the pricing rule switches to Bland's rule (anti-cycling).
	degenerateLimit = 64
	// refactorEvery is the pivot interval between basis refactorizations.
	refactorEvery = 256
	// driftCheckEvery is the pivot interval between accuracy probes of the
	// sparse factors: the residual ‖B·xB − (b − N·xN)‖∞ is measured in
	// O(nnz) and drift beyond driftTol (relative to the RHS scale)
	// triggers an early refactorization before the eta file poisons the
	// solve.
	driftCheckEvery = 64
	driftTol        = 1e-7
)

type varStatus uint8

const (
	atLower varStatus = iota + 1
	atUpper
	inBasis
)

// sparseCol is one column of the constraint matrix.
type sparseCol struct {
	rows []int
	vals []float64
}

// simplex is the computational state for one Solve call.
type simplex struct {
	m int // rows
	n int // total columns (structural + slack + artificial)

	nStruct int
	nArt    int // artificial count (placed at the end)

	cols []sparseCol
	lo   []float64
	hi   []float64
	b    []float64
	cost []float64 // phase-specific objective

	status   []varStatus
	xN       []float64 // value for nonbasic vars (their active bound)
	basicVar []int     // basicVar[r] = column basic in row r
	rowOf    []int     // rowOf[j] = row where j is basic, or -1
	rowSlack []int     // rowSlack[r] = slack column of inequality row r, or -1 (EQ)
	rowUnit  []int     // rowUnit[r] = a unit column for row r (artificial or slack), for basis repair
	// factor is the basis-inverse representation: sparse LU with
	// Forrest-Tomlin eta updates by default, the legacy dense explicit
	// inverse behind SolveOptions.DenseBasis.
	factor basisFactor
	xB     []float64

	y      []float64 // dual vector, maintained incrementally across pivots
	yValid bool
	w      []float64 // pivot column scratch
	rowBuf []float64 // scratch for one row of the basis inverse
	pivots int
	degen  int
	bland  bool
	// blandPivots counts pivots taken under the anti-cycling rule (see
	// SolveStats.BlandPivots).
	blandPivots int
	// maxIter caps pivots per phase (0 = default formula); deadline is the
	// wall-clock cutoff (zero time = none). Both come from SolveOptions.
	maxIter  int
	deadline time.Time
	// priceStart rotates the partial-pricing scan so successive iterations
	// do not always favour low-index columns.
	priceStart int
	// dualPivots counts the dual-simplex basis changes (warm restarts);
	// they are included in pivots as well.
	dualPivots int
	// resid is a reusable buffer for recomputeXB and the drift probe, so
	// neither allocates on the solve hot path.
	resid []float64
}

// evictBasic replaces the basic variable at basis position pos with the
// nonbasic unit column `unit`, sending the evicted variable to its lower
// bound. Shared by the dense and sparse singular-basis repair paths.
func (s *simplex) evictBasic(pos, unit int) {
	out := s.basicVar[pos]
	s.rowOf[out] = -1
	s.status[out] = atLower
	s.xN[out] = s.lo[out]
	s.basicVar[pos] = unit
	s.rowOf[unit] = pos
	s.status[unit] = inBasis
	s.xN[unit] = 0
	s.yValid = false
}

// Solve optimizes the model and returns the optimal solution.
// It returns ErrInfeasible, ErrUnbounded, or ErrIterationLimit on failure.
// Solve does not mutate the model and may be called repeatedly (e.g. after
// adding constraints).
func (m *Model) Solve() (*Solution, error) {
	sol, _, err := m.SolveWithOptions(SolveOptions{})
	return sol, err
}

// SolveWithOptions is Solve under explicit budgets. The returned stats
// are valid even when the solve fails (so callers can tell how much of a
// tripped budget was consumed). Besides Solve's errors it can return
// ErrTimeLimit (wall-clock budget) and ErrNumerical (final basis failed
// the sanity check).
func (m *Model) SolveWithOptions(opts SolveOptions) (*Solution, SolveStats, error) {
	start := time.Now()
	var stats SolveStats
	done := func(sol *Solution, s *simplex, err error) (*Solution, SolveStats, error) {
		if s != nil {
			stats.Pivots += s.pivots
			stats.BlandPivots += s.blandPivots
			fs := s.factor.stats()
			stats.Refactors += fs.refactors
			if fs.maxEta > stats.MaxEta {
				stats.MaxEta = fs.maxEta
			}
			if fs.fillIn > stats.FillIn {
				stats.FillIn = fs.fillIn
			}
		}
		stats.Duration = time.Since(start)
		return sol, stats, err
	}

	// Warm path: when the caller carries a compatible workspace, repair the
	// kept basis (dual simplex for feasibility, primal for the objective)
	// instead of cold-starting phase 1. Failure classified errWarmStart
	// falls through to the cold start below; consumed budgets and genuine
	// unboundedness surface directly so the budget is not paid twice.
	if ws := opts.Workspace; ws != nil && ws.compatible(m) {
		s := ws.s
		pivots0, dual0, bland0 := s.pivots, s.dualPivots, s.blandPivots
		refactor0 := s.factor.stats().refactors
		sol, err := ws.warmSolve(m, opts, start)
		stats.Pivots += s.pivots - pivots0
		stats.DualPivots += s.dualPivots - dual0
		stats.BlandPivots += s.blandPivots - bland0
		fs := s.factor.stats()
		stats.Refactors += fs.refactors - refactor0
		if fs.maxEta > stats.MaxEta {
			stats.MaxEta = fs.maxEta
		}
		if fs.fillIn > stats.FillIn {
			stats.FillIn = fs.fillIn
		}
		if err == nil {
			stats.WarmStarts++
			stats.Duration = time.Since(start)
			return sol, stats, nil
		}
		if !errors.Is(err, errWarmStart) {
			stats.Duration = time.Since(start)
			return nil, stats, err
		}
		stats.WarmFallbacks++
		ws.Reset()
	}

	// Presolve gate: cold, workspace-free solves run the reduction pass
	// first (fixed and implied-free columns, singleton and redundant
	// rows); the reduced model is solved recursively and the solution
	// mapped back through postsolve. Workspace-carrying solves skip it —
	// presolve changes the model shape, which would invalidate basis
	// reuse across calls.
	if opts.Workspace == nil && !opts.DisablePresolve {
		if pr := presolveModel(m); pr != nil {
			if pr.infeasible {
				stats.ColdStarts++
				stats.Duration = time.Since(start)
				return nil, stats, fmt.Errorf("%w (presolve: %s)", ErrInfeasible, pr.infeasMsg)
			}
			ropts := opts
			ropts.DisablePresolve = true
			rsol, rstats, err := pr.reduced.SolveWithOptions(ropts)
			stats.accumulate(rstats)
			stats.Duration = time.Since(start)
			if err != nil {
				return nil, stats, err
			}
			return pr.postsolve(m, rsol), stats, nil
		}
	}

	stats.ColdStarts++
	s, err := newSimplex(m, opts.DenseBasis)
	if err != nil {
		return done(nil, nil, err)
	}
	s.maxIter = opts.MaxIter
	if opts.MaxTime > 0 {
		s.deadline = start.Add(opts.MaxTime)
	}

	// Phase I: minimize the sum of artificial variables.
	if s.nArt > 0 {
		for j := s.n - s.nArt; j < s.n; j++ {
			s.cost[j] = 1
		}
		if err := s.iterate(true); err != nil {
			return done(nil, s, err)
		}
		if obj := s.objective(); obj > phase1Tol {
			return done(nil, s, fmt.Errorf("%w (phase-1 residual %g)", ErrInfeasible, obj))
		}
		// Freeze artificials at zero so they can never carry value again.
		for j := s.n - s.nArt; j < s.n; j++ {
			s.cost[j] = 0
			s.hi[j] = 0
			if s.status[j] != inBasis {
				s.status[j] = atLower
				s.xN[j] = 0
			}
		}
	}

	// Phase II: minimize the real objective.
	for j := 0; j < s.n; j++ {
		if j < s.nStruct {
			s.cost[j] = m.obj[j]
		} else {
			s.cost[j] = 0
		}
	}
	s.bland = false
	s.degen = 0
	if err := s.iterate(false); err != nil {
		return done(nil, s, err)
	}
	if err := s.checkNumerics(); err != nil {
		return done(nil, s, err)
	}
	if ws := opts.Workspace; ws != nil {
		ws.capture(m, s)
	}
	return done(s.solution(m), s, nil)
}

// checkNumerics guards the callers above the solver: a basis whose values
// went NaN/Inf or drifted grossly outside their bounds must not be handed
// out as an optimal solution. The tolerance is loose — relative, well
// above the pivot tolerances — so it only fires on genuine breakdown, not
// on the marginal drift that solution() already snaps back to bounds.
func (s *simplex) checkNumerics() error {
	for r := 0; r < s.m; r++ {
		v := s.xB[r]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: basic value %v in row %d", ErrNumerical, v, r)
		}
		bv := s.basicVar[r]
		tol := 1e-5 * (1 + math.Abs(v))
		if v < s.lo[bv]-tol {
			return fmt.Errorf("%w: basic value %g below lower bound %g", ErrNumerical, v, s.lo[bv])
		}
		if hi := s.hi[bv]; !math.IsInf(hi, 1) && v > hi+tol {
			return fmt.Errorf("%w: basic value %g above upper bound %g", ErrNumerical, v, hi)
		}
	}
	return nil
}

// newSimplex builds the computational form: one slack per inequality row,
// artificials forming the initial basis. dense selects the legacy dense
// basis-inverse representation instead of the sparse LU default.
func newSimplex(m *Model, dense bool) (*simplex, error) {
	nRows := len(m.rows)
	nStruct := len(m.lo)
	nSlack := 0
	for _, r := range m.rows {
		if r.sense != EQ {
			nSlack++
		}
	}
	n := nStruct + nSlack + nRows // artificials sized below; worst case one per row
	s := &simplex{
		m:       nRows,
		nStruct: nStruct,
		cols:    make([]sparseCol, 0, n),
		lo:      make([]float64, 0, n),
		hi:      make([]float64, 0, n),
		b:       make([]float64, nRows),
		status:  make([]varStatus, 0, n),
		xN:      make([]float64, 0, n),
	}

	// Structural columns.
	colTerms := make([][]Term, nStruct)
	for i, r := range m.rows {
		s.b[i] = r.rhs
		for _, t := range r.terms {
			colTerms[t.Var] = append(colTerms[t.Var], Term{Var: Var(i), Coef: t.Coef})
		}
	}
	for j := 0; j < nStruct; j++ {
		col := sparseCol{}
		// Merge duplicate row entries deterministically (terms were appended
		// in row order, so equal rows are adjacent).
		for _, t := range colTerms[j] {
			r := int(t.Var)
			if k := len(col.rows); k > 0 && col.rows[k-1] == r {
				col.vals[k-1] += t.Coef
				continue
			}
			col.rows = append(col.rows, r)
			col.vals = append(col.vals, t.Coef)
		}
		s.cols = append(s.cols, col)
		s.lo = append(s.lo, m.lo[j])
		s.hi = append(s.hi, m.hi[j])
	}

	// Slack columns: LE rows get +1 slack, GE rows get -1 slack; both slacks
	// live in [0, +inf).
	s.rowSlack = make([]int, nRows)
	for i, r := range m.rows {
		if r.sense == EQ {
			s.rowSlack[i] = -1
			continue
		}
		coef := 1.0
		if r.sense == GE {
			coef = -1.0
		}
		s.rowSlack[i] = len(s.cols)
		s.cols = append(s.cols, sparseCol{rows: []int{i}, vals: []float64{coef}})
		s.lo = append(s.lo, 0)
		s.hi = append(s.hi, Inf)
	}

	// Nonbasic start: everything at its lower bound.
	nNow := len(s.cols)
	s.status = s.status[:0]
	for j := 0; j < nNow; j++ {
		s.status = append(s.status, atLower)
		s.xN = append(s.xN, s.lo[j])
	}

	// Residual r = b - A x_N decides artificial signs.
	resid := make([]float64, nRows)
	copy(resid, s.b)
	for j := 0; j < nNow; j++ {
		if x := s.xN[j]; x != 0 {
			c := &s.cols[j]
			for k, r := range c.rows {
				resid[r] -= c.vals[k] * x
			}
		}
	}

	s.basicVar = make([]int, nRows)
	s.xB = make([]float64, nRows)
	s.rowUnit = make([]int, nRows)
	diag := make([]float64, nRows)
	for i := 0; i < nRows; i++ {
		coef := 1.0
		if resid[i] < 0 {
			coef = -1.0
		}
		s.cols = append(s.cols, sparseCol{rows: []int{i}, vals: []float64{coef}})
		s.lo = append(s.lo, 0)
		s.hi = append(s.hi, Inf)
		s.status = append(s.status, inBasis)
		s.xN = append(s.xN, 0)
		j := len(s.cols) - 1
		s.basicVar[i] = j
		s.rowUnit[i] = j
		s.xB[i] = math.Abs(resid[i])
		diag[i] = coef
	}
	s.nArt = nRows
	s.n = len(s.cols)
	s.cost = make([]float64, s.n)
	s.rowOf = make([]int, s.n)
	for j := range s.rowOf {
		s.rowOf[j] = -1
	}
	for i, j := range s.basicVar {
		s.rowOf[j] = i
	}
	s.y = make([]float64, nRows)
	s.w = make([]float64, nRows)
	s.rowBuf = make([]float64, nRows)
	s.factor = newBasisFactor(dense)
	s.factor.install(s, diag)
	return s, nil
}

// objective returns the current objective value under s.cost.
func (s *simplex) objective() float64 {
	obj := 0.0
	for j := 0; j < s.n; j++ {
		switch s.status[j] {
		case inBasis:
			obj += s.cost[j] * s.xB[s.rowOf[j]]
		default:
			obj += s.cost[j] * s.xN[j]
		}
	}
	return obj
}

// iterate runs primal simplex pivots until optimality under s.cost.
func (s *simplex) iterate(phase1 bool) error {
	maxIter := s.maxIter
	if maxIter <= 0 {
		maxIter = 200*(s.m+s.n) + 20000
	}
	s.yValid = false // the objective may have changed between phases
	for iter := 0; iter < maxIter; iter++ {
		// The deadline check includes iter 0 so even a 1ns budget trips
		// deterministically rather than depending on pivot count.
		if iter&63 == 0 && !s.deadline.IsZero() && time.Now().After(s.deadline) {
			return fmt.Errorf("%w after %d pivots", ErrTimeLimit, s.pivots)
		}
		if s.pivots > 0 && s.pivots%refactorEvery == 0 {
			if err := s.refactorize(); err != nil {
				return err
			}
			s.pivots++ // avoid immediate re-refactorization
			s.yValid = false
		} else if s.pivots > 0 && s.pivots%driftCheckEvery == 0 && s.driftExceeded() {
			if err := s.refactorize(); err != nil {
				return err
			}
			s.pivots++
			s.yValid = false
		}
		if !s.yValid {
			s.computeDuals()
			s.yValid = true
		}
		j, dir, dj := s.chooseEntering()
		if j < 0 {
			return nil // optimal
		}
		s.computeDirection(j)
		if err := s.pivot(j, dir, dj, phase1); err != nil {
			return err
		}
	}
	return fmt.Errorf("%w after %d pivots", ErrIterationLimit, s.pivots)
}

// computeDuals solves B^T y = c_B (BTRAN) against the factors.
func (s *simplex) computeDuals() {
	for r := 0; r < s.m; r++ {
		s.y[r] = s.cost[s.basicVar[r]]
	}
	s.factor.btranIn(s.y)
}

// reducedCost returns c_j - y·A_j.
func (s *simplex) reducedCost(j int) float64 {
	d := s.cost[j]
	c := &s.cols[j]
	for k, r := range c.rows {
		d -= s.y[r] * c.vals[k]
	}
	return d
}

// chooseEntering picks the entering variable. dir is +1 when the variable
// increases from its lower bound, -1 when it decreases from its upper
// bound; dj is the entering variable's reduced cost. Returns j = -1 at
// optimality.
//
// Pricing is Dantzig with cyclic partial pricing: the scan starts where
// the previous one left off and stops early once enough violating
// candidates have been seen. A scan that wraps the whole column range
// without finding a violation proves optimality. Under Bland's rule the
// scan is full and lowest-index-first (required for the anti-cycling
// guarantee).
func (s *simplex) chooseEntering() (j, dir int, dj float64) {
	// maxEligible trades scan cost against pivot quality.
	const maxEligible = 96
	j = -1
	best := 0.0
	eligible := 0
	start := s.priceStart
	if s.bland {
		start = 0
	}
	for k := 0; k < s.n; k++ {
		cand := start + k
		if cand >= s.n {
			cand -= s.n
		}
		st := s.status[cand]
		if st == inBasis {
			continue
		}
		if s.lo[cand] == s.hi[cand] {
			continue // fixed variable can never improve
		}
		d := s.reducedCost(cand)
		var viol float64
		var cdir int
		switch st {
		case atLower:
			if d < -costTol {
				viol, cdir = -d, 1
			}
		case atUpper:
			if d > costTol {
				viol, cdir = d, -1
			}
		}
		if cdir == 0 {
			continue
		}
		if s.bland {
			return cand, cdir, d // Bland: first eligible index
		}
		if viol > best {
			best, j, dir = viol, cand, cdir
			dj = d
		}
		eligible++
		if eligible >= maxEligible {
			break
		}
	}
	if j >= 0 {
		s.priceStart = j + 1
		if s.priceStart >= s.n {
			s.priceStart = 0
		}
	}
	return j, dir, dj
}

// computeDirection solves B w = A_j (FTRAN) against the factors.
func (s *simplex) computeDirection(j int) {
	s.factor.ftranCol(&s.cols[j], s.w)
}

// pivot performs the ratio test and basis change for entering variable j
// moving in direction dir; dj is j's reduced cost, used for the O(m)
// incremental dual update.
func (s *simplex) pivot(j, dir int, dj float64, phase1 bool) error {
	// Rate of change of basic variable in row r per unit step: -dir * w[r].
	limit := math.Inf(1)
	leave := -1           // row index of the leaving variable
	leaveToUpper := false // which bound the leaving variable hits

	span := s.hi[j] - s.lo[j] // bound-flip limit
	if span < limit {
		limit = span
		leave = -2 // sentinel: bound flip
	}

	for r := 0; r < s.m; r++ {
		delta := -float64(dir) * s.w[r]
		bv := s.basicVar[r]
		var t float64
		var toUpper bool
		switch {
		case delta < -feasTol:
			t = (s.xB[r] - s.lo[bv]) / (-delta)
		case delta > feasTol:
			if math.IsInf(s.hi[bv], 1) {
				continue
			}
			t = (s.hi[bv] - s.xB[r]) / delta
			toUpper = true
		default:
			continue
		}
		if t < 0 {
			t = 0
		}
		switch {
		case t < limit-feasTol:
			limit, leave, leaveToUpper = t, r, toUpper
		case t < limit+feasTol && leave >= 0 && shouldPreferLeaving(s, r, leave):
			if t < limit {
				limit = t
			}
			leave, leaveToUpper = r, toUpper
		}
	}

	if math.IsInf(limit, 1) {
		if phase1 {
			return fmt.Errorf("lp: internal: phase-1 unbounded (pivot %d)", s.pivots)
		}
		return ErrUnbounded
	}

	if limit < feasTol {
		s.degen++
		if s.degen >= degenerateLimit {
			s.bland = true
		}
	} else {
		s.degen = 0
		if s.bland {
			s.bland = false
		}
	}

	if leave == -2 {
		// Bound flip: j moves across its span without a basis change.
		s.applyStep(dir, limit)
		if s.status[j] == atLower {
			s.status[j] = atUpper
			s.xN[j] = s.hi[j]
		} else {
			s.status[j] = atLower
			s.xN[j] = s.lo[j]
		}
		s.pivots++
		if s.bland {
			s.blandPivots++
		}
		return nil
	}

	// Regular pivot: j enters the basis at value bound + dir*limit, the
	// variable in row `leave` exits to one of its bounds.
	enterVal := s.xN[j] + float64(dir)*limit
	s.applyStep(dir, limit)

	out := s.basicVar[leave]
	s.rowOf[out] = -1
	if leaveToUpper {
		s.status[out] = atUpper
		s.xN[out] = s.hi[out]
	} else {
		s.status[out] = atLower
		s.xN[out] = s.lo[out]
	}

	piv := s.w[leave]
	if math.Abs(piv) < 1e-12 {
		// The pivot element collapsed numerically; refactorize and retry on
		// the next iteration rather than dividing by ~0.
		s.status[out] = inBasis // undo
		s.rowOf[out] = leave
		s.yValid = false
		return s.refactorize()
	}

	if s.factor.isSparse() {
		// On the sparse path the duals are recomputed with one O(nnz)
		// BTRAN next iteration — extracting the old inverse row here
		// would itself cost a BTRAN, so incremental is not cheaper.
		s.yValid = false
	} else {
		// Incremental dual update: y' = y + (d_j / w_r) * (old row r of
		// Binv), which zeroes the entering column's reduced cost. O(m)
		// instead of the O(m^2) from-scratch recomputation.
		s.factor.rowInv(leave, s.rowBuf)
		theta := dj / piv
		for i := range s.y {
			s.y[i] += theta * s.rowBuf[i]
		}
	}

	if err := s.updateBasis(j, leave, enterVal); err != nil {
		return err
	}
	s.pivots++
	if s.bland {
		s.blandPivots++
	}
	return nil
}

// updateBasis makes column j basic in row leave at value enterVal,
// folding the basis change into the factors (product-form row
// operations on the dense inverse; a Forrest-Tomlin eta on the sparse
// factors). s.w must hold B^-1*A_j. When the factors refuse the update
// (unstable spike or full eta file) the basis bookkeeping still changes
// and the factors are rebuilt from it instead.
func (s *simplex) updateBasis(j, leave int, enterVal float64) error {
	accepted := s.factor.update(leave, s.w)
	s.basicVar[leave] = j
	s.rowOf[j] = leave
	s.status[j] = inBasis
	s.xB[leave] = enterVal
	if !accepted {
		s.yValid = false
		return s.refactorize()
	}
	return nil
}

// shouldPreferLeaving breaks ratio-test ties: under Bland's rule pick the
// lowest variable index; otherwise pick the larger pivot magnitude for
// numerical stability.
func shouldPreferLeaving(s *simplex, cand, incumbent int) bool {
	if s.bland {
		return s.basicVar[cand] < s.basicVar[incumbent]
	}
	return math.Abs(s.w[cand]) > math.Abs(s.w[incumbent])
}

// applyStep moves every basic variable by -dir*t*w.
func (s *simplex) applyStep(dir int, t float64) {
	if t == 0 {
		return
	}
	step := float64(dir) * t
	for r := 0; r < s.m; r++ {
		s.xB[r] -= step * s.w[r]
	}
}

// refactorize rebuilds the basis factors from the basis columns and
// recomputes the basic values, clearing accumulated floating-point
// drift (Gauss-Jordan on the dense path, a fresh sparse LU with the eta
// file emptied on the sparse path).
func (s *simplex) refactorize() error {
	if err := s.factor.refactor(s, false); err != nil {
		return err
	}
	s.recomputeXB()
	return nil
}

// refactorizeRepair is refactorize for a basis that may have gone
// genuinely singular after coefficient edits (a basic variable's column
// shrinking into the span of the others): instead of failing, a dependent
// basis position is evicted to a bound and replaced by a per-row unit
// column, and the factorization continues. The repaired basis is valid
// but not necessarily dual feasible; the caller treats the follow-up
// repair as best effort.
func (s *simplex) refactorizeRepair() error {
	if err := s.factor.refactor(s, true); err != nil {
		return err
	}
	s.recomputeXB()
	return nil
}

// nonbasicResidual fills the reusable residual buffer with b - N x_N
// (the RHS the basic variables must absorb) and returns it.
func (s *simplex) nonbasicResidual() []float64 {
	m := s.m
	if cap(s.resid) < m {
		s.resid = make([]float64, m)
	}
	resid := s.resid[:m]
	copy(resid, s.b)
	for j := 0; j < s.n; j++ {
		if s.status[j] == inBasis {
			continue
		}
		if x := s.xN[j]; x != 0 {
			c := &s.cols[j]
			for k, r := range c.rows {
				resid[r] -= c.vals[k] * x
			}
		}
	}
	return resid
}

// recomputeXB solves B xB = b - N x_N from scratch (one FTRAN).
func (s *simplex) recomputeXB() {
	resid := s.nonbasicResidual()
	s.factor.ftranIn(resid)
	copy(s.xB, resid[:s.m])
}

// driftExceeded probes factorization accuracy in O(nnz): it measures
// ‖B·xB − (b − N·x_N)‖∞ — which is zero in exact arithmetic whatever
// the basis — against the RHS scale. The sparse eta file accumulates
// error with every update, so the probe catches drift between the
// periodic refactorizations; the dense path skips it (its row
// operations are the historical behavior, refreshed every
// refactorEvery pivots).
func (s *simplex) driftExceeded() bool {
	if !s.factor.isSparse() {
		return false
	}
	resid := s.nonbasicResidual()
	scale := 1.0
	worst := 0.0
	for r := 0; r < s.m; r++ {
		if a := math.Abs(resid[r]); a > scale {
			scale = a
		}
	}
	for r := 0; r < s.m; r++ {
		c := &s.cols[s.basicVar[r]]
		if x := s.xB[r]; x != 0 {
			for k, ri := range c.rows {
				resid[ri] -= c.vals[k] * x
			}
		}
	}
	for r := 0; r < s.m; r++ {
		if a := math.Abs(resid[r]); a > worst {
			worst = a
		}
	}
	return worst > driftTol*scale
}

// solution extracts values, duals and reduced costs for the original model.
func (s *simplex) solution(m *Model) *Solution {
	sol := &Solution{
		values:  make([]float64, m.NumVars()),
		duals:   make([]float64, s.m),
		reduced: make([]float64, m.NumVars()),
	}
	for j := 0; j < m.NumVars(); j++ {
		if s.status[j] == inBasis {
			sol.values[j] = s.xB[s.rowOf[j]]
		} else {
			sol.values[j] = s.xN[j]
		}
		// Snap values that drifted marginally outside their bounds.
		if sol.values[j] < m.lo[j] {
			sol.values[j] = m.lo[j]
		}
		if sol.values[j] > m.hi[j] {
			sol.values[j] = m.hi[j]
		}
	}
	s.computeDuals()
	copy(sol.duals, s.y)
	for j := 0; j < m.NumVars(); j++ {
		sol.reduced[j] = s.reducedCost(j)
	}
	for j, c := range m.obj {
		sol.Objective += c * sol.values[j]
	}
	return sol
}
