package lp

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchScheduling builds a scheduling-shaped LP: jobs with interval
// windows and per-slot caps, min-theta objective.
func benchScheduling(b testing.TB, jobs, slots int) (*Model, []LoadGroup) {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(jobs*1000 + slots)))
	m := NewModel()
	groupTerms := make([][]Term, slots)
	for i := 0; i < jobs; i++ {
		rel := rng.Intn(slots - 1)
		win := 1 + rng.Intn(slots-rel-1) + 1
		if rel+win > slots {
			win = slots - rel
		}
		cap := float64(1 + rng.Intn(16))
		demand := float64(1+rng.Intn(win)) * cap / 2
		terms := make([]Term, 0, win)
		for s := rel; s < rel+win; s++ {
			v, err := m.NewVar("", 0, cap)
			if err != nil {
				b.Fatal(err)
			}
			terms = append(terms, Term{v, 1})
			groupTerms[s] = append(groupTerms[s], Term{v, 1})
		}
		if err := m.AddConstraint(terms, EQ, demand); err != nil {
			b.Fatal(err)
		}
	}
	groups := make([]LoadGroup, 0, slots)
	for s := 0; s < slots; s++ {
		if len(groupTerms[s]) == 0 {
			continue
		}
		groups = append(groups, LoadGroup{Terms: groupTerms[s], Cap: 500})
	}
	return m, groups
}

// BenchmarkSolveMinTheta measures one min-theta LP solve at several
// scheduling sizes — the unit operation behind the paper's Fig. 7.
func BenchmarkSolveMinTheta(b *testing.B) {
	for _, size := range []struct{ jobs, slots int }{
		{10, 50}, {50, 100}, {100, 100},
	} {
		b.Run(fmt.Sprintf("jobs=%d_slots=%d", size.jobs, size.slots), func(b *testing.B) {
			base, groups := benchScheduling(b, size.jobs, size.slots)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m := base.Clone()
				theta, err := m.NewVar("theta", 0, Inf)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.SetObjective([]Term{{theta, 1}}); err != nil {
					b.Fatal(err)
				}
				for _, g := range groups {
					terms := append(append([]Term{}, g.Terms...), Term{theta, -g.Cap})
					if err := m.AddConstraint(terms, LE, 0); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := m.Solve(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLexMinMax measures the full lexicographic driver, warm
// (incremental shared model, basis reuse) vs cold (legacy clone-per-round)
// on the same instances.
func BenchmarkLexMinMax(b *testing.B) {
	for _, size := range []struct{ jobs, slots int }{
		{10, 50}, {50, 100},
	} {
		for _, mode := range []struct {
			name string
			cold bool
		}{{"warm", false}, {"cold", true}} {
			b.Run(fmt.Sprintf("jobs=%d_slots=%d/%s", size.jobs, size.slots, mode.name), func(b *testing.B) {
				base, groups := benchScheduling(b, size.jobs, size.slots)
				opts := MinMaxOptions{MaxRounds: 4, DisableWarmStart: mode.cold}
				var pivots int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := LexMinMaxWithOptions(base, groups, opts)
					if err != nil {
						b.Fatal(err)
					}
					pivots += res.Stats.Pivots
				}
				b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
			})
		}
	}
}

// BenchmarkFig7SolverLatency reproduces the paper's Fig. 7 axis: full
// LexMinMax latency at event-handling scale (exact, no round cap), with a
// ladder-style workspace carried across iterations the way a replanning
// resource manager would carry it across events.
func BenchmarkFig7SolverLatency(b *testing.B) {
	for _, size := range []struct{ jobs, slots int }{
		{50, 100}, {100, 100}, {200, 150},
	} {
		for _, mode := range []struct {
			name string
			cold bool
		}{{"warm", false}, {"cold", true}} {
			b.Run(fmt.Sprintf("jobs=%d_slots=%d/%s", size.jobs, size.slots, mode.name), func(b *testing.B) {
				base, groups := benchScheduling(b, size.jobs, size.slots)
				opts := MinMaxOptions{MaxRounds: 6, DisableWarmStart: mode.cold}
				if !mode.cold {
					opts.Workspace = &LexWorkspace{}
				}
				var pivots int
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := LexMinMaxWithOptions(base, groups, opts)
					if err != nil {
						b.Fatal(err)
					}
					pivots += res.Stats.Pivots
				}
				b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
			})
		}
	}
}
