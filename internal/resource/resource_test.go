package resource

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{VCores, "vcores"},
		{MemoryMB, "memory-mb"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestNewAndGet(t *testing.T) {
	v := New(4, 8192)
	if got := v.Get(VCores); got != 4 {
		t.Errorf("Get(VCores) = %d, want 4", got)
	}
	if got := v.Get(MemoryMB); got != 8192 {
		t.Errorf("Get(MemoryMB) = %d, want 8192", got)
	}
}

func TestWith(t *testing.T) {
	v := New(4, 8192)
	w := v.With(VCores, 10)
	if got := w.Get(VCores); got != 10 {
		t.Errorf("With did not set vcores: got %d", got)
	}
	if got := v.Get(VCores); got != 4 {
		t.Errorf("With mutated receiver: got %d", got)
	}
}

func TestArithmetic(t *testing.T) {
	a := New(4, 100)
	b := New(1, 30)

	if got, want := a.Add(b), New(5, 130); got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := a.Sub(b), New(3, 70); got != want {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := b.Sub(a), New(-3, -70); got != want {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := b.SubClamped(a), New(0, 0); got != want {
		t.Errorf("SubClamped = %v, want %v", got, want)
	}
	if got, want := a.Scale(3), New(12, 300); got != want {
		t.Errorf("Scale = %v, want %v", got, want)
	}
	if got, want := a.Min(b), New(1, 30); got != want {
		t.Errorf("Min = %v, want %v", got, want)
	}
	if got, want := a.Max(b), New(4, 100); got != want {
		t.Errorf("Max = %v, want %v", got, want)
	}
}

func TestPredicates(t *testing.T) {
	if !(Vector{}).IsZero() {
		t.Error("zero Vector should be IsZero")
	}
	if New(0, 1).IsZero() {
		t.Error("non-zero Vector reported IsZero")
	}
	if !New(2, 50).FitsIn(New(2, 50)) {
		t.Error("equal vector should fit")
	}
	if New(3, 50).FitsIn(New(2, 100)) {
		t.Error("over-capacity vector should not fit")
	}
	if New(1, 1).AnyNegative() {
		t.Error("positive vector reported negative")
	}
	if !New(-1, 1).AnyNegative() {
		t.Error("negative vector not detected")
	}
}

func TestDominantShare(t *testing.T) {
	tests := []struct {
		name string
		v    Vector
		cap  Vector
		want float64
	}{
		{"cpu dominant", New(5, 10), New(10, 100), 0.5},
		{"mem dominant", New(1, 80), New(10, 100), 0.8},
		{"zero usage", New(0, 0), New(10, 100), 0},
		{"zero capacity skipped", New(5, 80), New(0, 100), 0.8},
		{"all zero capacity", New(5, 80), New(0, 0), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.v.DominantShare(tt.cap)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("DominantShare = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	if err := New(1, 2).Validate(); err != nil {
		t.Errorf("Validate(valid) = %v", err)
	}
	if err := New(-1, 2).Validate(); err == nil {
		t.Error("Validate(negative) = nil, want error")
	}
}

func TestString(t *testing.T) {
	got := New(4, 8192).String()
	want := "<vcores:4 memory-mb:8192>"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// Property: Add is commutative and Sub inverts Add.
func TestAddSubProperties(t *testing.T) {
	f := func(a0, a1, b0, b1 int32) bool {
		a := New(int64(a0), int64(a1))
		b := New(int64(b0), int64(b1))
		if a.Add(b) != b.Add(a) {
			return false
		}
		return a.Add(b).Sub(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Min/Max are element-wise bounds and SubClamped never goes
// negative.
func TestMinMaxClampProperties(t *testing.T) {
	f := func(a0, a1, b0, b1 int32) bool {
		a := New(int64(a0), int64(a1))
		b := New(int64(b0), int64(b1))
		lo, hi := a.Min(b), a.Max(b)
		if !lo.FitsIn(hi) {
			return false
		}
		return !a.SubClamped(b).AnyNegative()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
