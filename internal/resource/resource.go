// Package resource defines the multi-dimensional resource model shared by
// the cluster, the schedulers, and the LP formulation.
//
// FlowTime (ICDCS 2018) schedules two resource types, vcores and memory,
// mirroring YARN's container model. The package is written for an arbitrary
// fixed set of resource kinds so that additional dimensions (e.g. network,
// GPU) can be introduced without touching the schedulers.
package resource

import (
	"fmt"
	"strings"
)

// Kind identifies one resource dimension.
type Kind int

// Resource kinds. Enums start at one so the zero value is invalid and
// accidental zero-initialization is caught by Validate.
const (
	// VCores is the number of virtual CPU cores, YARN-style.
	VCores Kind = iota + 1
	// MemoryMB is main memory in mebibytes.
	MemoryMB
)

// NumKinds is the number of resource dimensions in a Vector.
const NumKinds = 2

// String returns the canonical lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case VCores:
		return "vcores"
	case MemoryMB:
		return "memory-mb"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists every resource kind in index order.
func Kinds() [NumKinds]Kind {
	return [NumKinds]Kind{VCores, MemoryMB}
}

// Vector is a fixed-size vector with one non-negative integer amount per
// resource kind. The zero value is the empty allocation and is valid.
type Vector [NumKinds]int64

// New returns a vector with the given vcores and memory amounts.
func New(vcores, memoryMB int64) Vector {
	var v Vector
	v[VCores.index()] = vcores
	v[MemoryMB.index()] = memoryMB
	return v
}

func (k Kind) index() int { return int(k) - 1 }

// Get returns the amount of kind k.
func (v Vector) Get(k Kind) int64 { return v[k.index()] }

// With returns a copy of v with kind k set to amount.
func (v Vector) With(k Kind, amount int64) Vector {
	v[k.index()] = amount
	return v
}

// Add returns v + o element-wise.
func (v Vector) Add(o Vector) Vector {
	for i := range v {
		v[i] += o[i]
	}
	return v
}

// Sub returns v - o element-wise. The result may be negative; callers that
// need clamping should use SubClamped.
func (v Vector) Sub(o Vector) Vector {
	for i := range v {
		v[i] -= o[i]
	}
	return v
}

// SubClamped returns max(v-o, 0) element-wise.
func (v Vector) SubClamped(o Vector) Vector {
	for i := range v {
		v[i] -= o[i]
		if v[i] < 0 {
			v[i] = 0
		}
	}
	return v
}

// Scale returns v scaled by the non-negative integer factor n.
func (v Vector) Scale(n int64) Vector {
	for i := range v {
		v[i] *= n
	}
	return v
}

// Min returns the element-wise minimum of v and o.
func (v Vector) Min(o Vector) Vector {
	for i := range v {
		if o[i] < v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// Max returns the element-wise maximum of v and o.
func (v Vector) Max(o Vector) Vector {
	for i := range v {
		if o[i] > v[i] {
			v[i] = o[i]
		}
	}
	return v
}

// IsZero reports whether every component is zero.
func (v Vector) IsZero() bool {
	for _, a := range v {
		if a != 0 {
			return false
		}
	}
	return true
}

// FitsIn reports whether v <= capacity element-wise.
func (v Vector) FitsIn(capacity Vector) bool {
	for i := range v {
		if v[i] > capacity[i] {
			return false
		}
	}
	return true
}

// AnyNegative reports whether any component is negative.
func (v Vector) AnyNegative() bool {
	for _, a := range v {
		if a < 0 {
			return true
		}
	}
	return false
}

// DominantShare returns the maximum over kinds of v[k]/capacity[k], the
// dominant resource share from DRF. Kinds with zero capacity are skipped;
// if every kind has zero capacity the share is 0.
func (v Vector) DominantShare(capacity Vector) float64 {
	share := 0.0
	for i := range v {
		if capacity[i] <= 0 {
			continue
		}
		if s := float64(v[i]) / float64(capacity[i]); s > share {
			share = s
		}
	}
	return share
}

// Validate returns an error if any component is negative.
func (v Vector) Validate() error {
	for i, a := range v {
		if a < 0 {
			return fmt.Errorf("resource: negative %s amount %d", Kind(i+1), a)
		}
	}
	return nil
}

// String renders the vector as "<vcores:4 memory-mb:8192>".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, k := range Kinds() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, v.Get(k))
	}
	b.WriteByte('>')
	return b.String()
}
