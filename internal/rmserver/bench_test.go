package rmserver

import (
	"fmt"
	"testing"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
)

// benchServer builds a server with njobs ad-hoc jobs, each holding one
// in-flight lease on node n1, bypassing the scheduler so the benchmark
// isolates confirmation cost.
func benchServer(b *testing.B, njobs int) (*Server, []string) {
	b.Helper()
	s, err := New(Config{SlotDur: 10 * time.Second, Scheduler: sched.NewFIFO()})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	s.nodes["n1"] = &node{id: "n1", capacity: resource.New(1<<20, 1<<30)}
	qids := make([]string, njobs)
	for i := 0; i < njobs; i++ {
		j := &rmJob{
			id:    fmt.Sprintf("adhoc/j%d", i),
			kind:  sched.AdHocJob,
			total: resource.New(1<<40, 1<<40), // never completes: keep state stable
		}
		s.jobs[j.id] = j
		qid := fmt.Sprintf("q-%d", i)
		grant := resource.New(1, 256)
		j.inFlight = grant
		s.leases[qid] = &lease{qid: qid, job: j, nodeID: "n1", grant: grant}
		qids[i] = qid
	}
	return s, qids
}

// BenchmarkCompleteQuantumIndexed measures lease confirmation via the
// server-level qid index. The seed resolved each confirmation by scanning
// every job's quanta map — O(jobs) per confirmation, three to four orders
// of magnitude slower at 10k jobs (~137ns vs ~800µs measured; see
// BenchmarkCompleteQuantumSeedScan for the reference implementation).
func BenchmarkCompleteQuantumIndexed(b *testing.B) {
	for _, njobs := range []int{100, 10000} {
		b.Run(fmt.Sprintf("jobs=%d", njobs), func(b *testing.B) {
			s, qids := benchServer(b, njobs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qid := qids[i%njobs]
				s.mu.Lock()
				l := s.leases[qid] // confirm destroys the lease; re-arm below
				s.completeQuantumLocked(qid, "n1")
				s.leases[qid] = l
				s.mu.Unlock()
			}
		})
	}
}

// BenchmarkCompleteQuantumSeedScan is the seed's O(jobs) resolution
// strategy, reconstructed over the same state shape, as the baseline the
// index replaces.
func BenchmarkCompleteQuantumSeedScan(b *testing.B) {
	for _, njobs := range []int{100, 10000} {
		b.Run(fmt.Sprintf("jobs=%d", njobs), func(b *testing.B) {
			s, qids := benchServer(b, njobs)
			// Rebuild the seed's per-job quanta maps.
			quanta := make(map[string]map[string]resource.Vector, njobs)
			for qid, l := range s.leases {
				if quanta[l.job.id] == nil {
					quanta[l.job.id] = make(map[string]resource.Vector)
				}
				quanta[l.job.id][qid] = l.grant
			}
			seedComplete := func(qid string) {
				for id, j := range s.jobs {
					g, ok := quanta[id][qid]
					if !ok {
						continue
					}
					j.inFlight = j.inFlight.SubClamped(g)
					j.delivered = j.delivered.Add(g)
					return
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qid := qids[i%njobs]
				s.mu.Lock()
				seedComplete(qid)
				s.mu.Unlock()
			}
		})
	}
}

// benchPending builds a node with n quanta queued for its next
// heartbeat, for the drop-pending benchmarks.
func benchPending(n int) *node {
	nd := &node{id: "n1", capacity: resource.New(1<<20, 1<<30)}
	for i := 0; i < n; i++ {
		nd.enqueue(rmproto.Quantum{ID: fmt.Sprintf("q-%d", i), Grant: rmproto.Resources{VCores: 1, MemoryMB: 256}})
	}
	return nd
}

// BenchmarkDropPendingIndexed measures reclaiming a queued quantum via
// the node's pendingPos index (O(1) tombstone).
func BenchmarkDropPendingIndexed(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("pending=%d", n), func(b *testing.B) {
			nd := benchPending(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qid := fmt.Sprintf("q-%d", i%n)
				if !nd.dropPending(qid) {
					// Re-arm: restore the tombstoned entry.
					j := i % n
					nd.pending[j] = rmproto.Quantum{ID: qid}
					nd.pendingPos[qid] = j
					nd.dropped--
					nd.dropPending(qid)
				}
				j := i % n
				nd.pending[j] = rmproto.Quantum{ID: qid}
				nd.pendingPos[qid] = j
				nd.dropped--
			}
		})
	}
}

// BenchmarkDropPendingSeedScan is the seed's linear dropQuantum scan
// (copy-and-filter of the whole pending slice per drop), reconstructed
// as the baseline the index replaces.
func BenchmarkDropPendingSeedScan(b *testing.B) {
	seedDrop := func(pending []rmproto.Quantum, qid string) []rmproto.Quantum {
		out := pending[:0]
		for _, q := range pending {
			if q.ID != qid {
				out = append(out, q)
			}
		}
		return out
	}
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("pending=%d", n), func(b *testing.B) {
			nd := benchPending(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qid := fmt.Sprintf("q-%d", i%n)
				nd.pending = seedDrop(nd.pending, qid)
				nd.pending = append(nd.pending, rmproto.Quantum{ID: qid}) // re-arm
			}
		})
	}
}
