package rmserver

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"flowtime/internal/rmproto"
)

// TestClientParsesRetryAfter proves the hint crosses the wire in both
// forms: the coarse Retry-After header and the millisecond-resolution
// retry_after_ms body field (which wins when both are present).
func TestClientParsesRetryAfter(t *testing.T) {
	var mode string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		switch mode {
		case "header":
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"code":"overloaded","message":"shed"}`))
		case "body":
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"code":"overloaded","message":"shed","retry_after_ms":1500}`))
		}
	}))
	defer srv.Close()

	c := NewClient(srv.URL, nil)
	mode = "header"
	_, err := c.Status(context.Background())
	if got := RetryAfterHint(err); got != 2*time.Second {
		t.Errorf("header-only hint = %v, want 2s (err=%v)", got, err)
	}
	mode = "body"
	_, err = c.Status(context.Background())
	if got := RetryAfterHint(err); got != 1500*time.Millisecond {
		t.Errorf("body hint = %v, want 1.5s (err=%v)", got, err)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Errorf("503 overloaded response = %v, want ErrOverloaded match", err)
	}
}

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := b.Delay(0)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 100ms]", d)
		}
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Base: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("Retry = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	calls := 0
	perm := &StatusError{StatusCode: http.StatusBadRequest, Message: "bad request"}
	err := Retry(context.Background(), Backoff{Base: time.Microsecond}, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, error(perm)) || calls != 1 {
		t.Errorf("Retry = %v after %d calls, want permanent error after 1", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Base: time.Microsecond, MaxAttempts: 3}, func() error {
		calls++
		return errors.New("transient")
	})
	if err == nil || calls != 3 {
		t.Errorf("Retry = %v after %d calls, want error after exactly 3", err, calls)
	}
}

func TestRetryHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	// Cancel from inside the retried op: deterministic (no timing race),
	// and the hour-long base delay guarantees that if cancellation did not
	// interrupt the backoff sleep the test would time out, not flake.
	err := Retry(ctx, Backoff{Base: time.Hour, MaxAttempts: -1}, func() error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Retry = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cancel must interrupt the backoff sleep)", calls)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"network", errors.New("connection refused"), true},
		{"5xx", &StatusError{StatusCode: http.StatusInternalServerError}, true},
		{"4xx", &StatusError{StatusCode: http.StatusBadRequest}, false},
		{"unknown-node 404", &StatusError{StatusCode: http.StatusNotFound, Code: rmproto.CodeUnknownNode}, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBackoffFullJitter(t *testing.T) {
	// Full jitter draws uniformly from [0, nominal]: every draw stays
	// under the cap, and across many draws the low half of the window is
	// actually used (equal-jitter and fractional-jitter schemes never
	// go below 50%, so hitting it distinguishes the modes).
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, FullJitter: true}
	nominal := 400 * time.Millisecond // attempt 2: 100ms * 2^2
	sawLowHalf := false
	for i := 0; i < 200; i++ {
		d := b.Delay(2)
		if d < 0 || d > nominal {
			t.Fatalf("full-jitter delay %v outside [0, %v]", d, nominal)
		}
		if d < nominal/2 {
			sawLowHalf = true
		}
	}
	if !sawLowHalf {
		t.Error("200 full-jitter draws never landed below nominal/2; distribution is not uniform over [0, d]")
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	// The server's Retry-After hint must stretch the sleep beyond the
	// (tiny) configured backoff. One retry with a 120ms hint on a 1µs
	// base: elapsed time proves which delay was used.
	hint := 120 * time.Millisecond
	calls := 0
	start := time.Now()
	err := Retry(context.Background(), Backoff{Base: time.Microsecond, MaxAttempts: 2}, func() error {
		calls++
		if calls == 1 {
			return &StatusError{StatusCode: http.StatusServiceUnavailable, Code: rmproto.CodeOverloaded, RetryAfter: hint}
		}
		return nil
	})
	elapsed := time.Since(start)
	if err != nil || calls != 2 {
		t.Fatalf("Retry = %v after %d calls, want nil after 2", err, calls)
	}
	if elapsed < hint {
		t.Errorf("retry slept only %v, want >= the server's Retry-After hint %v", elapsed, hint)
	}
}

func TestRetryAfterHintExtraction(t *testing.T) {
	if got := RetryAfterHint(&OverloadedError{Reason: "queue_full", RetryAfter: 250 * time.Millisecond}); got != 250*time.Millisecond {
		t.Errorf("hint from OverloadedError = %v, want 250ms", got)
	}
	if got := RetryAfterHint(&StatusError{StatusCode: 503, Code: rmproto.CodeOverloaded, RetryAfter: time.Second}); got != time.Second {
		t.Errorf("hint from StatusError = %v, want 1s", got)
	}
	if got := RetryAfterHint(errors.New("plain")); got != 0 {
		t.Errorf("hint from plain error = %v, want 0", got)
	}
}

func TestOverloadedErrorMatchesSentinel(t *testing.T) {
	local := error(&OverloadedError{Reason: "priority", RetryAfter: time.Second})
	wire := error(&StatusError{StatusCode: http.StatusServiceUnavailable, Code: rmproto.CodeOverloaded})
	for _, err := range []error{local, wire} {
		if !errors.Is(err, ErrOverloaded) {
			t.Errorf("%T does not match ErrOverloaded", err)
		}
	}
	if errors.Is(error(&StatusError{StatusCode: 503}), ErrOverloaded) {
		t.Error("plain 503 must not match ErrOverloaded")
	}
}

func TestRetryBudgetCapsAmplification(t *testing.T) {
	rb := NewRetryBudget(3)
	before := RetryBudgetExhaustedTotal()
	calls := 0
	err := RetryPolicy{
		Backoff: Backoff{Base: time.Microsecond, MaxAttempts: -1},
		Budget:  rb,
	}.Do(context.Background(), func() error {
		calls++
		return errors.New("transient")
	})
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("Do = %v, want ErrRetryBudgetExhausted", err)
	}
	// 1 initial attempt + 3 budgeted retries.
	if calls != 4 {
		t.Errorf("calls = %d, want 4 (initial + 3 budgeted retries)", calls)
	}
	if got := RetryBudgetExhaustedTotal() - before; got != 1 {
		t.Errorf("exhaustion counter advanced by %d, want 1", got)
	}
	// Successes refill the bucket a fraction at a time.
	for i := 0; i < 20; i++ {
		rb.Deposit()
	}
	if tok := rb.Tokens(); tok < 1.9 || tok > 2.1 {
		t.Errorf("tokens after 20 deposits = %v, want ~2 (0.1 per success)", tok)
	}
}

func TestBreakerTripsAndCoolsDown(t *testing.T) {
	br := &Breaker{Threshold: 3, Cooldown: 50 * time.Millisecond}
	fail := errors.New("boom")
	for i := 0; i < 3; i++ {
		if !br.Allow() {
			t.Fatalf("breaker open after only %d failures", i)
		}
		br.Record(fail)
	}
	if br.Allow() {
		t.Fatal("breaker still closed after hitting threshold")
	}
	if br.Trips() != 1 {
		t.Errorf("trips = %d, want 1", br.Trips())
	}
	time.Sleep(60 * time.Millisecond)
	if !br.Allow() {
		t.Fatal("breaker did not half-open after cooldown")
	}
	br.Record(nil) // probe succeeds: circuit closes, streak resets
	br.Record(fail)
	br.Record(fail)
	if !br.Allow() {
		t.Error("success did not reset the consecutive-failure streak")
	}
}

func TestRetryPolicyFailsFastWhenCircuitOpen(t *testing.T) {
	br := &Breaker{Threshold: 2, Cooldown: time.Hour}
	calls := 0
	err := RetryPolicy{
		Backoff: Backoff{Base: time.Microsecond, MaxAttempts: -1},
		Breaker: br,
	}.Do(context.Background(), func() error {
		calls++
		return errors.New("transient")
	})
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Do = %v, want ErrCircuitOpen", err)
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2 (threshold trips, then fail-fast)", calls)
	}
	// With the circuit open, no network attempt is made at all.
	calls = 0
	err = RetryPolicy{Backoff: Backoff{Base: time.Microsecond}, Breaker: br}.Do(context.Background(), func() error {
		calls++
		return nil
	})
	if !errors.Is(err, ErrCircuitOpen) || calls != 0 {
		t.Errorf("open circuit: err=%v calls=%d, want ErrCircuitOpen and 0 calls", err, calls)
	}
}

func TestStatusErrorUnknownNodeIs(t *testing.T) {
	err := error(&StatusError{StatusCode: http.StatusNotFound, Code: rmproto.CodeUnknownNode, Message: "unknown node"})
	if !errors.Is(err, ErrUnknownNode) {
		t.Error("StatusError with unknown_node code does not match ErrUnknownNode")
	}
	other := error(&StatusError{StatusCode: http.StatusNotFound, Message: "not found"})
	if errors.Is(other, ErrUnknownNode) {
		t.Error("plain 404 must not match ErrUnknownNode")
	}
}
