package rmserver

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"flowtime/internal/rmproto"
)

func TestBackoffDelayGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := b.Delay(0)
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 100ms]", d)
		}
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Base: time.Microsecond}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("Retry = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	calls := 0
	perm := &StatusError{StatusCode: http.StatusBadRequest, Message: "bad request"}
	err := Retry(context.Background(), Backoff{Base: time.Microsecond}, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, error(perm)) || calls != 1 {
		t.Errorf("Retry = %v after %d calls, want permanent error after 1", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), Backoff{Base: time.Microsecond, MaxAttempts: 3}, func() error {
		calls++
		return errors.New("transient")
	})
	if err == nil || calls != 3 {
		t.Errorf("Retry = %v after %d calls, want error after exactly 3", err, calls)
	}
}

func TestRetryHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	// Cancel from inside the retried op: deterministic (no timing race),
	// and the hour-long base delay guarantees that if cancellation did not
	// interrupt the backoff sleep the test would time out, not flake.
	err := Retry(ctx, Backoff{Base: time.Hour, MaxAttempts: -1}, func() error {
		calls++
		cancel()
		return errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Retry = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (cancel must interrupt the backoff sleep)", calls)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"network", errors.New("connection refused"), true},
		{"5xx", &StatusError{StatusCode: http.StatusInternalServerError}, true},
		{"4xx", &StatusError{StatusCode: http.StatusBadRequest}, false},
		{"unknown-node 404", &StatusError{StatusCode: http.StatusNotFound, Code: rmproto.CodeUnknownNode}, false},
		{"canceled", context.Canceled, false},
		{"deadline", context.DeadlineExceeded, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestStatusErrorUnknownNodeIs(t *testing.T) {
	err := error(&StatusError{StatusCode: http.StatusNotFound, Code: rmproto.CodeUnknownNode, Message: "unknown node"})
	if !errors.Is(err, ErrUnknownNode) {
		t.Error("StatusError with unknown_node code does not match ErrUnknownNode")
	}
	other := error(&StatusError{StatusCode: http.StatusNotFound, Message: "not found"})
	if errors.Is(other, ErrUnknownNode) {
		t.Error("plain 404 must not match ErrUnknownNode")
	}
}
