// Package rmserver implements a miniature YARN-like resource manager with
// a pluggable scheduler — the integration surface the paper used when it
// deployed FlowTime inside YARN's resource manager.
//
// Node managers register and heartbeat over HTTP/JSON (see
// internal/rmproto); clients submit deadline workflows and ad-hoc jobs in
// the trace schema. On every scheduling slot the RM invokes its
// sched.Scheduler over the live job set, converts grants into slot-sized
// work leases ("quanta"), and places them on nodes first-fit. Nodes
// execute leases for one slot and confirm them on the next heartbeat;
// confirmed volume drives job completion, workflow readiness, and
// deadline accounting.
//
// The RM treats submitted estimates as ground truth (nodes "execute"
// whatever they are leased); estimation-error studies belong to the
// simulator, which models actual-versus-estimated divergence.
package rmserver

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"flowtime/internal/deadline"
	"flowtime/internal/resource"
	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/trace"
	"flowtime/internal/workflow"
)

// Config parameterizes the resource manager.
type Config struct {
	// SlotDur is the scheduling slot; must be > 0.
	SlotDur time.Duration
	// Scheduler makes per-slot decisions; required.
	Scheduler sched.Scheduler
	// Horizon is the planning horizon in slots (default 100000).
	Horizon int64
	// NodeExpiry evicts nodes that have not heartbeaten for this long;
	// zero disables expiry (manual-tick test setups).
	NodeExpiry time.Duration
}

// Server is the resource manager. Create with New. All methods are safe
// for concurrent use.
type Server struct {
	cfg Config

	mu      sync.Mutex
	slot    int64
	nodes   map[string]*node
	jobs    map[string]*rmJob
	wfs     map[string]*wfState
	nextQID int64
}

type node struct {
	id       string
	capacity resource.Vector
	lastSeen time.Time
	pending  []rmproto.Quantum
}

type wfState struct {
	wf   *workflow.Workflow
	jobs []*rmJob // by node index
}

type rmJob struct {
	id      string
	kind    sched.JobKind
	wfID    string
	jobName string
	nodeIdx int

	arrived  time.Duration
	release  time.Duration
	deadline time.Duration

	total       resource.Vector // volume to deliver
	delivered   resource.Vector
	inFlight    resource.Vector
	parallelCap resource.Vector
	minSlots    int64

	done     bool
	doneSlot int64

	quanta map[string]resource.Vector // in-flight quantum ID -> grant
}

// New returns a resource manager.
func New(cfg Config) (*Server, error) {
	if cfg.SlotDur <= 0 {
		return nil, fmt.Errorf("rmserver: slot duration %v, want > 0", cfg.SlotDur)
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("rmserver: nil scheduler")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 100000
	}
	return &Server{
		cfg:   cfg,
		nodes: make(map[string]*node),
		jobs:  make(map[string]*rmJob),
		wfs:   make(map[string]*wfState),
	}, nil
}

// RegisterNode adds or refreshes a node manager.
func (s *Server) RegisterNode(req rmproto.RegisterNodeRequest, now time.Time) (rmproto.RegisterNodeResponse, error) {
	if req.NodeID == "" {
		return rmproto.RegisterNodeResponse{}, errors.New("rmserver: empty node ID")
	}
	if err := req.Capacity.Validate(); err != nil {
		return rmproto.RegisterNodeResponse{}, err
	}
	capV := req.Capacity.ToVector()
	if capV.IsZero() {
		return rmproto.RegisterNodeResponse{}, fmt.Errorf("rmserver: node %s has zero capacity", req.NodeID)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[req.NodeID] = &node{id: req.NodeID, capacity: capV, lastSeen: now}
	return rmproto.RegisterNodeResponse{HeartbeatMs: s.cfg.SlotDur.Milliseconds()}, nil
}

// Heartbeat processes a node's completion report and hands back queued
// work leases.
func (s *Server) Heartbeat(req rmproto.HeartbeatRequest, now time.Time) (rmproto.HeartbeatResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.nodes[req.NodeID]
	if !ok {
		return rmproto.HeartbeatResponse{}, fmt.Errorf("rmserver: unknown node %q (register first)", req.NodeID)
	}
	n.lastSeen = now
	for _, qid := range req.Completed {
		s.completeQuantum(qid)
	}
	launch := n.pending
	n.pending = nil
	return rmproto.HeartbeatResponse{Launch: launch}, nil
}

func (s *Server) completeQuantum(qid string) {
	for _, j := range s.jobs {
		g, ok := j.quanta[qid]
		if !ok {
			continue
		}
		delete(j.quanta, qid)
		j.inFlight = j.inFlight.SubClamped(g)
		j.delivered = j.delivered.Add(g)
		if !j.done && j.total.FitsIn(j.delivered) {
			j.done = true
			j.doneSlot = s.slot
		}
		return
	}
}

// SubmitWorkflow accepts a deadline workflow. The submit time is the
// current slot; the workflow's own submit offset is ignored in the live
// RM (clients submit when they want the workflow to start). Decomposition
// happens immediately against current cluster capacity, so at least one
// node must be registered.
func (s *Server) SubmitWorkflow(req rmproto.SubmitWorkflowRequest) (rmproto.SubmitResponse, error) {
	tr := trace.Trace{Version: trace.FormatVersion, Workflows: []trace.WorkflowRecord{req.Workflow}}
	wfs, _, err := tr.ToWorkload()
	if err != nil {
		return rmproto.SubmitResponse{}, err
	}
	wf := wfs[0]

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.wfs[wf.ID]; dup {
		return rmproto.SubmitResponse{}, fmt.Errorf("rmserver: duplicate workflow %q", wf.ID)
	}
	capacity := s.totalCapacityLocked()
	if capacity.IsZero() {
		return rmproto.SubmitResponse{}, errors.New("rmserver: no registered nodes; cannot decompose deadlines")
	}

	// Re-anchor the workflow window at the current slot.
	now := time.Duration(s.slot) * s.cfg.SlotDur
	span := wf.Deadline - wf.Submit
	wf.Submit = now
	wf.Deadline = now + span
	if err := wf.Validate(); err != nil {
		return rmproto.SubmitResponse{}, err
	}

	dec, err := deadline.Decompose(wf, deadline.Options{Slot: s.cfg.SlotDur, ClusterCap: capacity})
	if err != nil {
		return rmproto.SubmitResponse{}, err
	}

	st := &wfState{wf: wf, jobs: make([]*rmJob, wf.NumJobs())}
	for i := 0; i < wf.NumJobs(); i++ {
		job := wf.Job(i)
		j := &rmJob{
			id:          fmt.Sprintf("%s/%s#%d", wf.ID, job.Name, i),
			kind:        sched.DeadlineJob,
			wfID:        wf.ID,
			jobName:     job.Name,
			nodeIdx:     i,
			arrived:     now,
			release:     dec.Windows[i].Release,
			deadline:    dec.Windows[i].Deadline,
			total:       job.Volume(s.cfg.SlotDur),
			parallelCap: job.ParallelCap(),
			minSlots:    job.MinRuntimeSlots(s.cfg.SlotDur, capacity),
			quanta:      make(map[string]resource.Vector),
		}
		st.jobs[i] = j
		s.jobs[j.id] = j
	}
	s.wfs[wf.ID] = st
	return rmproto.SubmitResponse{Accepted: true, ID: wf.ID}, nil
}

// SubmitAdHoc accepts an ad-hoc job, effective immediately.
func (s *Server) SubmitAdHoc(req rmproto.SubmitAdHocRequest) (rmproto.SubmitResponse, error) {
	rec := req.Job
	a := workflow.AdHoc{
		ID:           rec.ID,
		Submit:       0,
		Tasks:        rec.Tasks,
		TaskDuration: time.Duration(rec.TaskDurSec) * time.Second,
		TaskDemand:   resource.New(rec.DemandVCores, rec.DemandMemMB),
	}
	if err := a.Validate(); err != nil {
		return rmproto.SubmitResponse{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id := "adhoc/" + a.ID
	if _, dup := s.jobs[id]; dup {
		return rmproto.SubmitResponse{}, fmt.Errorf("rmserver: duplicate ad-hoc job %q", a.ID)
	}
	j := &rmJob{
		id:          id,
		kind:        sched.AdHocJob,
		arrived:     time.Duration(s.slot) * s.cfg.SlotDur,
		total:       a.Volume(s.cfg.SlotDur),
		parallelCap: a.ParallelCap(),
		quanta:      make(map[string]resource.Vector),
	}
	s.jobs[id] = j
	return rmproto.SubmitResponse{Accepted: true, ID: id}, nil
}

// Tick advances one scheduling slot: expires silent nodes, invokes the
// scheduler over the live job set, and queues the resulting work leases
// on nodes (first-fit). It is called by the RM's run loop every SlotDur,
// or manually in tests and by the /v1/tick endpoint.
func (s *Server) Tick(now time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	if s.cfg.NodeExpiry > 0 {
		for id, n := range s.nodes {
			if now.Sub(n.lastSeen) > s.cfg.NodeExpiry {
				delete(s.nodes, id)
			}
		}
	}
	capacity := s.totalCapacityLocked()
	if capacity.IsZero() {
		s.slot++
		return nil
	}

	states := make([]sched.JobState, 0, len(s.jobs))
	byID := make(map[string]*rmJob, len(s.jobs))
	for _, j := range s.jobs {
		if j.done {
			continue
		}
		st := sched.JobState{
			ID:      j.id,
			Kind:    j.kind,
			Arrived: j.arrived,
			Ready:   s.readyLocked(j),
			Request: j.parallelCap.Min(j.total.SubClamped(j.delivered).SubClamped(j.inFlight)),
		}
		if j.kind == sched.DeadlineJob {
			st.WorkflowID = j.wfID
			st.JobName = j.jobName
			st.Release = j.release
			st.Deadline = j.deadline
			st.EstRemaining = j.total.SubClamped(j.delivered).SubClamped(j.inFlight)
			st.ParallelCap = j.parallelCap
			st.MinSlots = j.minSlots
		}
		states = append(states, st)
		byID[j.id] = j
	}
	sort.Slice(states, func(a, b int) bool {
		if states[a].Arrived != states[b].Arrived {
			return states[a].Arrived < states[b].Arrived
		}
		return states[a].ID < states[b].ID
	})

	grants, err := s.cfg.Scheduler.Assign(sched.AssignContext{
		Now:     s.slot,
		Changed: true, // schedulers with staleness detection replan as needed
		Jobs:    states,
		Cluster: sched.ClusterView{
			SlotDur: s.cfg.SlotDur,
			Horizon: s.cfg.Horizon,
			CapAt:   func(int64) resource.Vector { return capacity },
		},
	})
	if err != nil {
		s.slot++
		return fmt.Errorf("rmserver: scheduler: %w", err)
	}

	// Place grants on nodes first-fit, splitting across nodes as needed.
	free := make(map[string]resource.Vector, len(s.nodes))
	order := make([]string, 0, len(s.nodes))
	for id, n := range s.nodes {
		free[id] = n.capacity
		order = append(order, id)
	}
	sort.Strings(order)

	capLeft := capacity
	for _, st := range states {
		g, ok := grants[st.ID]
		if !ok || !st.Ready {
			continue
		}
		g = g.Min(st.Request).Min(capLeft)
		if g.IsZero() || g.AnyNegative() {
			continue
		}
		capLeft = capLeft.Sub(g)
		j := byID[st.ID]
		remaining := g
		for _, nid := range order {
			if remaining.IsZero() {
				break
			}
			chunk := remaining.Min(free[nid])
			if chunk.IsZero() {
				continue
			}
			free[nid] = free[nid].Sub(chunk)
			remaining = remaining.Sub(chunk)
			s.nextQID++
			qid := fmt.Sprintf("q-%d", s.nextQID)
			j.quanta[qid] = chunk
			j.inFlight = j.inFlight.Add(chunk)
			s.nodes[nid].pending = append(s.nodes[nid].pending, rmproto.Quantum{
				ID:    qid,
				JobID: j.id,
				Grant: rmproto.FromVector(chunk),
			})
		}
	}
	s.slot++
	return nil
}

func (s *Server) readyLocked(j *rmJob) bool {
	if j.kind != sched.DeadlineJob {
		return true
	}
	st := s.wfs[j.wfID]
	for _, p := range st.wf.DAG().Predecessors(j.nodeIdx) {
		if !st.jobs[p].done {
			return false
		}
	}
	return true
}

func (s *Server) totalCapacityLocked() resource.Vector {
	var total resource.Vector
	for _, n := range s.nodes {
		total = total.Add(n.capacity)
	}
	return total
}

// Status snapshots the cluster.
func (s *Server) Status() rmproto.StatusResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := rmproto.StatusResponse{
		Slot:     s.slot,
		Nodes:    len(s.nodes),
		Capacity: rmproto.FromVector(s.totalCapacityLocked()),
	}
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		st := rmproto.JobStatus{
			ID:         j.id,
			Kind:       j.kind.String(),
			WorkflowID: j.wfID,
		}
		switch {
		case j.done:
			st.State = "completed"
			st.CompletedSec = int64((time.Duration(j.doneSlot) * s.cfg.SlotDur) / time.Second)
		case !j.delivered.IsZero() || !j.inFlight.IsZero():
			st.State = "running"
		default:
			st.State = "pending"
		}
		if j.kind == sched.DeadlineJob {
			st.DeadlineSec = int64(j.deadline / time.Second)
			// Completion is observed at the confirmation heartbeat, one
			// slot after the work ran; grant that slot as grace so a job
			// finishing exactly at its deadline is not misreported.
			doneAt := time.Duration(j.doneSlot-1) * s.cfg.SlotDur
			if j.doneSlot == 0 {
				doneAt = 0
			}
			st.Missed = !j.done && time.Duration(s.slot)*s.cfg.SlotDur > j.deadline ||
				j.done && doneAt > j.deadline
		}
		resp.Jobs = append(resp.Jobs, st)
	}
	return resp
}

// Slot returns the current scheduling slot.
func (s *Server) Slot() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slot
}
