// Package rmserver implements a miniature YARN-like resource manager with
// a pluggable scheduler — the integration surface the paper used when it
// deployed FlowTime inside YARN's resource manager.
//
// Node managers register and heartbeat over HTTP/JSON (see
// internal/rmproto); clients submit deadline workflows and ad-hoc jobs in
// the trace schema. On every scheduling slot the RM invokes its
// sched.Scheduler over the live job set, converts grants into slot-sized
// work leases ("quanta"), and places them on nodes first-fit. Nodes
// execute leases for one slot and confirm them on the next heartbeat;
// confirmed volume drives job completion, workflow readiness, and
// deadline accounting.
//
// With a state store attached (Config.Store), every mutation is
// journaled to a write-ahead log and the full state is periodically
// snapshotted, so a crashed RM restarts with its jobs, workflows,
// decomposed windows, slot clock, and accounting intact; see persist.go
// for the durability model.
//
// The RM treats submitted estimates as ground truth (nodes "execute"
// whatever they are leased); estimation-error studies belong to the
// simulator, which models actual-versus-estimated divergence.
package rmserver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"flowtime/internal/adhoc"
	"flowtime/internal/deadline"
	"flowtime/internal/plan"
	"flowtime/internal/resource"
	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/store"
	"flowtime/internal/trace"
	"flowtime/internal/workflow"
)

// DefaultLeaseExpiry is the default per-lease confirmation budget in
// slots. Healthy nodes confirm a lease one slot after launch, so the
// default only fires on genuinely lost work (node crash, dropped
// heartbeat response, wedged node).
const DefaultLeaseExpiry = 16

// Config parameterizes the resource manager.
type Config struct {
	// SlotDur is the scheduling slot; must be > 0.
	SlotDur time.Duration
	// Scheduler makes per-slot decisions; required.
	Scheduler sched.Scheduler
	// Horizon is the planning horizon in slots (default 100000).
	Horizon int64
	// NodeExpiry evicts nodes that have not heartbeaten for this long;
	// zero disables expiry (manual-tick test setups). Evicting a node
	// requeues every lease it holds.
	NodeExpiry time.Duration
	// LeaseExpiry is the number of slots an issued lease may stay
	// unconfirmed before the RM reclaims it and returns its volume to the
	// job's remaining work. Zero means DefaultLeaseExpiry; negative
	// disables lease expiry.
	LeaseExpiry int64
	// Store, when non-nil, makes the RM durable: New recovers the state
	// the store holds (latest snapshot plus WAL replay) and every
	// subsequent mutation is journaled. The server does not close the
	// store; the owner does, after the server stops. A store written
	// under one SlotDur cannot be recovered under another.
	Store *store.Store
	// Follower starts the server as a warm standby: it rejects mutations
	// with not_leader, ingests the primary's shipped log (see repl.go),
	// and serves read-only status. Requires Store. Promote() turns it
	// into the primary.
	Follower bool
	// LeaderURL is the redirect hint handed to rejected clients while
	// this server is a follower (typically the primary's URL).
	LeaderURL string
	// AdHocGate, when true, gates ad-hoc admission on the streamed
	// plan's leftover capacity (see internal/adhoc and planstream.go):
	// a submission whose demand does not fit in the live plan's slack is
	// rejected (Accepted=false) instead of queued. Requires a Scheduler
	// that implements sched.PlanStreamer with streaming enabled; until
	// the first plan revision arrives every ad-hoc submission is
	// rejected, because no leftover profile exists yet.
	AdHocGate bool
	// Overload, when non-nil, bounds the HTTP front door with per-class
	// admission queues and load shedding (see overload.go). nil leaves
	// the API unguarded, as before.
	Overload *OverloadConfig
	// Watchdog enables the liveness detectors (see watchdog.go). The
	// zero value disables both.
	Watchdog WatchdogConfig
}

// Server is the resource manager. Create with New. All methods are safe
// for concurrent use.
type Server struct {
	cfg   Config
	store *store.Store

	mu       sync.Mutex
	cond     *sync.Cond // signalled when the last outstanding lease clears
	slot     int64
	nodes    map[string]*node
	jobs     map[string]*rmJob
	wfs      map[string]*wfState
	leases   map[string]*lease // quantum ID -> in-flight lease
	nextQID  int64
	draining bool
	faults   rmproto.FaultCounters
	recovery *rmproto.RecoveryStatus // non-nil after a store recovery

	// livePlan is the scheduler's streamed plan, reconstructed from
	// journaled diffs (see planstream.go). Nil until the first revision.
	livePlan *plan.Plan
	// adhocQ is the lock-free ad-hoc admission gate; nil unless
	// Config.AdHocGate is set.
	adhocQ *adhoc.Queue

	// Replication (see repl.go). epoch is durable and replicated; role,
	// fenced, and leaderURL are process-local.
	role      Role
	epoch     int64
	fenced    bool
	leaderURL string
	repl      replState

	// Overload and liveness protection (overload.go, watchdog.go).
	// admission is nil unless Config.Overload is set; watchdog is
	// always present (its detectors may be disabled).
	admission *admission
	watchdog  *watchdog
}

// node tracks one node manager. pending holds quanta queued for the next
// heartbeat; pendingPos indexes it by quantum ID so reclaiming a queued
// quantum (lease expiry racing launch) is O(1) instead of a scan.
// Reclaimed entries become tombstones (zero ID) and are skipped at
// flush.
type node struct {
	id         string
	capacity   resource.Vector
	lastSeen   time.Time
	pending    []rmproto.Quantum
	pendingPos map[string]int
	dropped    int
}

// enqueue queues a quantum for the node's next heartbeat.
func (n *node) enqueue(q rmproto.Quantum) {
	if n.pendingPos == nil {
		n.pendingPos = make(map[string]int)
	}
	n.pendingPos[q.ID] = len(n.pending)
	n.pending = append(n.pending, q)
}

// dropPending removes one queued quantum by ID in O(1), reporting
// whether it was present.
func (n *node) dropPending(qid string) bool {
	i, ok := n.pendingPos[qid]
	if !ok {
		return false
	}
	n.pending[i] = rmproto.Quantum{}
	delete(n.pendingPos, qid)
	n.dropped++
	return true
}

// takePending flushes the queue for a heartbeat response, compacting
// out tombstones.
func (n *node) takePending() []rmproto.Quantum {
	out := n.pending
	if n.dropped > 0 {
		out = make([]rmproto.Quantum, 0, len(n.pending)-n.dropped)
		for _, q := range n.pending {
			if q.ID != "" {
				out = append(out, q)
			}
		}
	}
	n.pending, n.pendingPos, n.dropped = nil, nil, 0
	return out
}

// clearPending discards the queue (node eviction or re-registration).
func (n *node) clearPending() {
	n.pending, n.pendingPos, n.dropped = nil, nil, 0
}

// lease tracks one issued quantum: which job it advances, which node
// holds it, and when the RM gives up waiting for its confirmation. The
// server-level index makes confirmation O(1) and is what lets the RM
// reclaim work from dead nodes instead of stranding it.
type lease struct {
	qid    string
	job    *rmJob
	nodeID string
	grant  resource.Vector
	issued int64 // slot the lease was created
	expiry int64 // slot at which the lease is reclaimed; 0 = never
}

type wfState struct {
	wf   *workflow.Workflow
	jobs []*rmJob // by node index
}

type rmJob struct {
	id      string
	kind    sched.JobKind
	wfID    string
	jobName string
	nodeIdx int

	arrived  time.Duration
	release  time.Duration
	deadline time.Duration

	total       resource.Vector // volume to deliver
	delivered   resource.Vector
	inFlight    resource.Vector
	parallelCap resource.Vector
	minSlots    int64
	bestEffort  bool

	done     bool
	doneSlot int64
}

// New returns a resource manager. With Config.Store set, New performs
// crash recovery before returning: the store's snapshot is restored,
// its WAL tail replayed, and every recovered in-flight lease requeued
// (their nodes died with the previous process). The recovery summary is
// reported in Status().Recovery.
func New(cfg Config) (*Server, error) {
	if cfg.SlotDur <= 0 {
		return nil, fmt.Errorf("rmserver: slot duration %v, want > 0", cfg.SlotDur)
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("rmserver: nil scheduler")
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 100000
	}
	if cfg.LeaseExpiry == 0 {
		cfg.LeaseExpiry = DefaultLeaseExpiry
	}
	if cfg.Follower && cfg.Store == nil {
		return nil, errors.New("rmserver: follower mode requires a state store")
	}
	if cfg.AdHocGate {
		if _, ok := cfg.Scheduler.(sched.PlanStreamer); !ok {
			return nil, fmt.Errorf("rmserver: ad-hoc gate requires a plan-streaming scheduler, %s does not stream", cfg.Scheduler.Name())
		}
	}
	s := &Server{
		cfg:       cfg,
		store:     cfg.Store,
		nodes:     make(map[string]*node),
		jobs:      make(map[string]*rmJob),
		wfs:       make(map[string]*wfState),
		leases:    make(map[string]*lease),
		role:      RolePrimary,
		leaderURL: cfg.LeaderURL,
	}
	if cfg.Follower {
		s.role = RoleFollower
	}
	if cfg.Overload != nil {
		s.admission = newAdmission(*cfg.Overload)
	}
	if cfg.AdHocGate {
		s.adhocQ = adhoc.New()
	}
	s.watchdog = newWatchdog(cfg.Watchdog)
	s.cond = sync.NewCond(&s.mu)
	if s.store != nil {
		if err := s.recoverLocked(); err != nil {
			return nil, fmt.Errorf("rmserver: recover from %s: %w", s.store.Dir(), err)
		}
	}
	// A primary starting fresh claims epoch 1 and makes the claim durable
	// before granting anything; a recovered epoch is kept as-is. Followers
	// adopt the primary's epoch from the shipped stream.
	if s.role == RolePrimary && s.epoch == 0 {
		s.epoch = 1
		h, err := s.journalLocked(walRecord{Epoch: &recEpoch{Epoch: s.epoch, Slot: s.slot}})
		if err == nil {
			err = s.commitRecord(h)
		}
		if err != nil {
			return nil, fmt.Errorf("rmserver: journal initial epoch: %w", err)
		}
	}
	return s, nil
}

// Recovery returns the summary of the crash recovery New performed, or
// nil when the server started without a store or from an empty one.
func (s *Server) Recovery() *rmproto.RecoveryStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// RegisterNode adds or refreshes a node manager. Re-registering an ID the
// RM already tracks means the node restarted: any leases the previous
// incarnation held will never be confirmed, so they are requeued
// immediately rather than waiting for lease expiry.
func (s *Server) RegisterNode(req rmproto.RegisterNodeRequest, now time.Time) (rmproto.RegisterNodeResponse, error) {
	if req.NodeID == "" {
		return rmproto.RegisterNodeResponse{}, errors.New("rmserver: empty node ID")
	}
	if err := req.Capacity.Validate(); err != nil {
		return rmproto.RegisterNodeResponse{}, err
	}
	capV := req.Capacity.ToVector()
	if capV.IsZero() {
		return rmproto.RegisterNodeResponse{}, fmt.Errorf("rmserver: node %s has zero capacity", req.NodeID)
	}
	s.mu.Lock()
	if err := s.leaderCheckLocked(); err != nil {
		s.mu.Unlock()
		return rmproto.RegisterNodeResponse{}, err
	}
	var h store.Handle
	var jerr error
	if _, exists := s.nodes[req.NodeID]; exists {
		if requeued := s.requeueNodeLeasesLocked(req.NodeID); len(requeued) > 0 {
			h, jerr = s.journalLocked(walRecord{Requeue: &recRequeue{QIDs: requeued, Faults: s.faults}})
		}
	}
	s.nodes[req.NodeID] = &node{id: req.NodeID, capacity: capV, lastSeen: now}
	s.mu.Unlock()
	if jerr != nil {
		return rmproto.RegisterNodeResponse{}, fmt.Errorf("rmserver: wal append: %w: %w", ErrCommitFailed, jerr)
	}
	if err := s.commitRecord(h); err != nil {
		return rmproto.RegisterNodeResponse{}, err
	}
	return rmproto.RegisterNodeResponse{HeartbeatMs: s.cfg.SlotDur.Milliseconds()}, nil
}

// Heartbeat processes a node's completion report and hands back queued
// work leases. An unknown node gets ErrUnknownNode so the agent knows to
// re-register instead of retrying a doomed heartbeat. Confirmations
// that applied are journaled (and, under the always-fsync policy,
// durable) before the response is released; the pending quanta are
// taken only after that commit succeeds, so a commit failure fails the
// heartbeat without silently dropping queued work.
func (s *Server) Heartbeat(req rmproto.HeartbeatRequest, now time.Time) (rmproto.HeartbeatResponse, error) {
	s.mu.Lock()
	if err := s.leaderCheckLocked(); err != nil {
		s.mu.Unlock()
		return rmproto.HeartbeatResponse{}, err
	}
	n, ok := s.nodes[req.NodeID]
	if !ok {
		s.mu.Unlock()
		return rmproto.HeartbeatResponse{}, fmt.Errorf("%w %q (register first)", ErrUnknownNode, req.NodeID)
	}
	n.lastSeen = now
	var applied []string
	for _, qid := range req.Completed {
		if s.completeQuantumLocked(qid, req.NodeID) {
			applied = append(applied, qid)
		}
	}
	var h store.Handle
	var jerr error
	if len(applied) > 0 {
		h, jerr = s.journalLocked(walRecord{Confirm: &recConfirm{Slot: s.slot, QIDs: applied, Faults: s.faults}})
	}
	s.mu.Unlock()
	if jerr != nil {
		return rmproto.HeartbeatResponse{}, fmt.Errorf("rmserver: wal append: %w: %w", ErrCommitFailed, jerr)
	}
	if err := s.commitRecord(h); err != nil {
		return rmproto.HeartbeatResponse{}, err
	}
	// Take the pending queue only now, after the confirm record is
	// durable. The node may have been evicted or re-registered while the
	// commit ran, so re-look it up; either way its old queue is gone and
	// there is nothing to launch.
	s.mu.Lock()
	var launch []rmproto.Quantum
	if n, ok := s.nodes[req.NodeID]; ok {
		launch = n.takePending()
	}
	s.mu.Unlock()
	return rmproto.HeartbeatResponse{Launch: launch}, nil
}

// completeQuantumLocked confirms one lease in O(1) via the server-level
// lease index (the seed scanned every job per confirmation). Confirms for
// quanta the RM no longer tracks — already confirmed, requeued after the
// node's eviction, or from before an RM restart — and confirms from a
// node that does not hold the lease are counted and ignored, so a
// re-registering node can never double-deliver stale work. Reports
// whether the confirm applied.
func (s *Server) completeQuantumLocked(qid, nodeID string) bool {
	l, ok := s.leases[qid]
	if !ok || l.nodeID != nodeID {
		s.faults.StaleConfirms++
		return false
	}
	s.confirmLeaseLocked(l, s.slot)
	return true
}

// confirmLeaseLocked applies one confirmed lease: its volume moves from
// in-flight to delivered, completing the job when the total is covered.
// atSlot is the slot the completion is accounted to (the live path
// passes the current slot; WAL replay passes the journaled one).
func (s *Server) confirmLeaseLocked(l *lease, atSlot int64) {
	delete(s.leases, l.qid)
	j := l.job
	j.inFlight = j.inFlight.SubClamped(l.grant)
	j.delivered = j.delivered.Add(l.grant)
	if !j.done && j.total.FitsIn(j.delivered) {
		j.done = true
		j.doneSlot = atSlot
	}
	if len(s.leases) == 0 {
		s.cond.Broadcast()
	}
}

// requeueLeaseLocked reclaims one lease: its volume returns to the job's
// schedulable remainder and the lease stops being awaited.
func (s *Server) requeueLeaseLocked(l *lease) {
	delete(s.leases, l.qid)
	l.job.inFlight = l.job.inFlight.SubClamped(l.grant)
	s.faults.RequeuedQuanta++
	if len(s.leases) == 0 {
		s.cond.Broadcast()
	}
}

// requeueNodeLeasesLocked reclaims every lease held by nodeID, both
// launched and still queued on the node's pending list, returning the
// reclaimed quantum IDs for journaling.
func (s *Server) requeueNodeLeasesLocked(nodeID string) []string {
	var requeued []string
	for _, l := range s.leases {
		if l.nodeID == nodeID {
			requeued = append(requeued, l.qid)
			s.requeueLeaseLocked(l)
		}
	}
	sort.Strings(requeued)
	if n, ok := s.nodes[nodeID]; ok {
		n.clearPending()
	}
	return requeued
}

// evictNodeLocked removes a silent node and requeues everything it held,
// so the scheduler can re-place the work on surviving nodes. The seed's
// silent delete(s.nodes, id) stranded in-flight volume forever.
func (s *Server) evictNodeLocked(nodeID string) []string {
	requeued := s.requeueNodeLeasesLocked(nodeID)
	delete(s.nodes, nodeID)
	s.faults.ExpiredNodes++
	return requeued
}

// SubmitWorkflow accepts a deadline workflow. The submit time is the
// current slot; the workflow's own submit offset is ignored in the live
// RM (clients submit when they want the workflow to start). Decomposition
// happens immediately against current cluster capacity, so at least one
// node must be registered. The admission — including its decomposed
// windows — is journaled before the state mutates and made durable
// before the acceptance is returned, so an acknowledged workflow
// survives an RM crash.
func (s *Server) SubmitWorkflow(req rmproto.SubmitWorkflowRequest) (rmproto.SubmitResponse, error) {
	tr := trace.Trace{Version: trace.FormatVersion, Workflows: []trace.WorkflowRecord{req.Workflow}}
	wfs, _, err := tr.ToWorkload()
	if err != nil {
		return rmproto.SubmitResponse{}, err
	}
	wf := wfs[0]

	resp, h, err := s.admitWorkflow(req.Workflow, wf)
	if err != nil {
		return rmproto.SubmitResponse{}, err
	}
	if err := s.commitRecord(h); err != nil {
		// The workflow is admitted in memory but its journal record may
		// not be durable; surface the store failure to the client.
		return rmproto.SubmitResponse{}, err
	}
	return resp, nil
}

func (s *Server) admitWorkflow(rec trace.WorkflowRecord, wf *workflow.Workflow) (rmproto.SubmitResponse, store.Handle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.leaderCheckLocked(); err != nil {
		return rmproto.SubmitResponse{}, store.Handle{}, err
	}
	if _, dup := s.wfs[wf.ID]; dup {
		return rmproto.SubmitResponse{}, store.Handle{}, fmt.Errorf("rmserver: duplicate workflow %q", wf.ID)
	}
	capacity := s.totalCapacityLocked()
	if capacity.IsZero() {
		return rmproto.SubmitResponse{}, store.Handle{}, errors.New("rmserver: no registered nodes; cannot decompose deadlines")
	}

	// Re-anchor the workflow window at the current slot.
	now := time.Duration(s.slot) * s.cfg.SlotDur
	span := wf.Deadline - wf.Submit
	wf.Submit = now
	wf.Deadline = now + span
	if err := wf.Validate(); err != nil {
		return rmproto.SubmitResponse{}, store.Handle{}, err
	}

	// Admission control: try the deadline decomposition, then the
	// critical-path fallback; a workflow infeasible under both is admitted
	// best-effort — every job gets the whole workflow span as its window
	// and planners exclude it from the joint LP — instead of rejected.
	opts := deadline.Options{Slot: s.cfg.SlotDur, ClusterCap: capacity}
	dec, derr := deadline.Decompose(wf, opts)
	if derr != nil {
		opts.ForceCriticalPath = true
		dec, derr = deadline.Decompose(wf, opts)
	}
	bestEffort := derr != nil
	if bestEffort {
		s.faults.BestEffortAdmissions++
	}

	wrec := recWorkflow{
		WF:         rec,
		SubmitNS:   int64(wf.Submit),
		DeadlineNS: int64(wf.Deadline),
		Slot:       s.slot,
		BestEffort: bestEffort,
		Windows:    make([]recWindow, wf.NumJobs()),
	}
	st := &wfState{wf: wf, jobs: make([]*rmJob, wf.NumJobs())}
	for i := 0; i < wf.NumJobs(); i++ {
		job := wf.Job(i)
		release, dl := wf.Submit, wf.Deadline
		if !bestEffort {
			release, dl = dec.Windows[i].Release, dec.Windows[i].Deadline
		}
		j := &rmJob{
			id:          fmt.Sprintf("%s/%s#%d", wf.ID, job.Name, i),
			kind:        sched.DeadlineJob,
			wfID:        wf.ID,
			jobName:     job.Name,
			nodeIdx:     i,
			arrived:     now,
			release:     release,
			deadline:    dl,
			total:       job.Volume(s.cfg.SlotDur),
			parallelCap: job.ParallelCap(),
			minSlots:    job.MinRuntimeSlots(s.cfg.SlotDur, capacity),
			bestEffort:  bestEffort,
		}
		wrec.Windows[i] = recWindow{ReleaseNS: int64(release), DeadlineNS: int64(dl), MinSlots: j.minSlots}
		st.jobs[i] = j
		s.jobs[j.id] = j
	}
	s.wfs[wf.ID] = st
	h, _ := s.journalLocked(walRecord{Workflow: &wrec})
	return rmproto.SubmitResponse{Accepted: true, ID: wf.ID, BestEffort: bestEffort}, h, nil
}

// SubmitAdHoc accepts an ad-hoc job, effective immediately. Like
// workflows, the admission is journaled and made durable before the
// acceptance is returned.
func (s *Server) SubmitAdHoc(req rmproto.SubmitAdHocRequest) (rmproto.SubmitResponse, error) {
	a := adHocFromRecord(req.Job)
	if err := a.Validate(); err != nil {
		return rmproto.SubmitResponse{}, err
	}
	s.mu.Lock()
	if err := s.leaderCheckLocked(); err != nil {
		s.mu.Unlock()
		return rmproto.SubmitResponse{}, err
	}
	id := "adhoc/" + a.ID
	if _, dup := s.jobs[id]; dup {
		s.mu.Unlock()
		return rmproto.SubmitResponse{}, fmt.Errorf("rmserver: duplicate ad-hoc job %q", a.ID)
	}
	if s.adhocQ != nil {
		// The admission gate: charge the job's volume against the live
		// plan's leftover profile. The window is open-ended — ad-hoc jobs
		// carry no deadline — so the queue clamps it to its epoch. A
		// rejection mutates nothing and journals nothing.
		ok := s.adhocQ.Submit(adhoc.Request{
			ID:      id,
			Rel:     s.slot,
			Dl:      math.MaxInt64,
			Demand:  a.Volume(s.cfg.SlotDur),
			PerSlot: a.ParallelCap(),
		})
		if !ok {
			s.mu.Unlock()
			return rmproto.SubmitResponse{Accepted: false, ID: id}, nil
		}
	}
	j := &rmJob{
		id:          id,
		kind:        sched.AdHocJob,
		arrived:     time.Duration(s.slot) * s.cfg.SlotDur,
		total:       a.Volume(s.cfg.SlotDur),
		parallelCap: a.ParallelCap(),
	}
	s.jobs[id] = j
	h, _ := s.journalLocked(walRecord{AdHoc: &recAdHoc{Job: req.Job, Slot: s.slot}})
	s.mu.Unlock()
	if err := s.commitRecord(h); err != nil {
		return rmproto.SubmitResponse{}, err
	}
	return rmproto.SubmitResponse{Accepted: true, ID: id}, nil
}

// adHocFromRecord builds the workload object for one ad-hoc submission.
func adHocFromRecord(rec trace.AdHocRecord) workflow.AdHoc {
	return workflow.AdHoc{
		ID:           rec.ID,
		Submit:       0,
		Tasks:        rec.Tasks,
		TaskDuration: time.Duration(rec.TaskDurSec) * time.Second,
		TaskDemand:   resource.New(rec.DemandVCores, rec.DemandMemMB),
	}
}

// Tick advances one scheduling slot: expires silent nodes (requeuing
// their leases), reclaims leases past their confirmation deadline,
// invokes the scheduler over the live job set, and queues the resulting
// work leases on nodes (first-fit). It is called by the RM's run loop
// every SlotDur, or manually in tests and by the /v1/tick endpoint. A
// panicking scheduler is converted into a no-grant slot: jobs stay
// queued, state stays consistent, and the RM keeps running. Each tick —
// slot advance, reclaimed leases, issued grants — is journaled as one
// WAL record, and the grants become fetchable by heartbeats only after
// that record is durable: a crash can then never leave a node executing
// work the recovered RM does not know it granted.
func (s *Server) Tick(now time.Time) error {
	s.mu.Lock()
	if err := s.leaderCheckLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	rec, planned, err := s.tickLocked(now)
	var h store.Handle
	if s.store != nil {
		var jerr error
		h, jerr = s.journalLocked(walRecord{Tick: rec})
		if jerr != nil && err == nil {
			err = fmt.Errorf("rmserver: wal append: %w", jerr)
		}
	}
	// Drain and journal the plan diffs this tick's replan emitted; the
	// commit below covers the tick record and every diff in one fsync.
	if serr := s.streamPlansLocked(&h); serr != nil && err == nil {
		err = serr
	}
	s.mu.Unlock()
	if cerr := s.commitRecord(h); cerr != nil && err == nil {
		err = cerr
	}
	// Enqueue the slot's grants now that the tick record is durable (or
	// the store has already failed and surfaced its error). A lease may
	// have been reclaimed while the commit ran — node re-registration
	// runs concurrently — so deliver only quanta whose lease is still
	// live on a node the RM still tracks.
	if len(planned) > 0 {
		s.mu.Lock()
		for _, p := range planned {
			if _, live := s.leases[p.q.ID]; !live {
				continue
			}
			if n, ok := s.nodes[p.nodeID]; ok {
				n.enqueue(p.q)
			}
		}
		s.mu.Unlock()
	}
	if err == nil {
		s.watchdog.noteTick(now)
	}
	return err
}

// plannedLaunch is a quantum a tick granted but has not yet queued on
// its node: delivery waits for the tick record to commit.
type plannedLaunch struct {
	nodeID string
	q      rmproto.Quantum
}

func (s *Server) tickLocked(now time.Time) (*recTick, []plannedLaunch, error) {
	rec := &recTick{}
	defer func() {
		rec.Slot = s.slot
		rec.Faults = s.faults
	}()

	if s.cfg.NodeExpiry > 0 {
		for id, n := range s.nodes {
			if now.Sub(n.lastSeen) > s.cfg.NodeExpiry {
				rec.Requeued = append(rec.Requeued, s.evictNodeLocked(id)...)
			}
		}
	}
	if s.cfg.LeaseExpiry > 0 {
		for _, l := range s.leases {
			if s.slot >= l.expiry {
				// If the quantum is still queued on a live node, scrub it so
				// the node does not burn a slot executing reclaimed work.
				if n, ok := s.nodes[l.nodeID]; ok {
					n.dropPending(l.qid)
				}
				rec.Requeued = append(rec.Requeued, l.qid)
				s.requeueLeaseLocked(l)
			}
		}
	}
	if s.draining {
		// Drain: no new leases; keep ticking so expiry still reclaims
		// whatever dead nodes hold.
		s.slot++
		return rec, nil, nil
	}
	capacity := s.totalCapacityLocked()
	if capacity.IsZero() {
		s.slot++
		return rec, nil, nil
	}

	states := make([]sched.JobState, 0, len(s.jobs))
	byID := make(map[string]*rmJob, len(s.jobs))
	for _, j := range s.jobs {
		if j.done {
			continue
		}
		st := sched.JobState{
			ID:         j.id,
			Kind:       j.kind,
			Arrived:    j.arrived,
			Ready:      s.readyLocked(j),
			Request:    j.parallelCap.Min(j.total.SubClamped(j.delivered).SubClamped(j.inFlight)),
			BestEffort: j.bestEffort,
		}
		if j.kind == sched.DeadlineJob {
			st.WorkflowID = j.wfID
			st.JobName = j.jobName
			st.Release = j.release
			st.Deadline = j.deadline
			st.EstRemaining = j.total.SubClamped(j.delivered).SubClamped(j.inFlight)
			st.ParallelCap = j.parallelCap
			st.MinSlots = j.minSlots
		}
		states = append(states, st)
		byID[j.id] = j
	}
	sort.Slice(states, func(a, b int) bool {
		if states[a].Arrived != states[b].Arrived {
			return states[a].Arrived < states[b].Arrived
		}
		return states[a].ID < states[b].ID
	})

	grants, err := s.safeAssign(sched.AssignContext{
		Now:     s.slot,
		Changed: true, // schedulers with staleness detection replan as needed
		Jobs:    states,
		Cluster: sched.ClusterView{
			SlotDur: s.cfg.SlotDur,
			Horizon: s.cfg.Horizon,
			CapAt:   func(int64) resource.Vector { return capacity },
		},
	})
	if err != nil {
		s.slot++
		return rec, nil, fmt.Errorf("rmserver: scheduler: %w", err)
	}

	// Place grants on nodes first-fit, splitting across nodes as needed.
	free := make(map[string]resource.Vector, len(s.nodes))
	order := make([]string, 0, len(s.nodes))
	for id, n := range s.nodes {
		free[id] = n.capacity
		order = append(order, id)
	}
	sort.Strings(order)

	capLeft := capacity
	var planned []plannedLaunch
	for _, st := range states {
		g, ok := grants[st.ID]
		if !ok || !st.Ready {
			continue
		}
		g = g.Min(st.Request).Min(capLeft)
		if g.IsZero() || g.AnyNegative() {
			continue
		}
		capLeft = capLeft.Sub(g)
		j := byID[st.ID]
		remaining := g
		for _, nid := range order {
			if remaining.IsZero() {
				break
			}
			chunk := remaining.Min(free[nid])
			if chunk.IsZero() {
				continue
			}
			free[nid] = free[nid].Sub(chunk)
			remaining = remaining.Sub(chunk)
			s.nextQID++
			qid := fmt.Sprintf("q-%d", s.nextQID)
			var deadline int64
			if s.cfg.LeaseExpiry > 0 {
				deadline = s.slot + s.cfg.LeaseExpiry
			}
			s.leases[qid] = &lease{
				qid:    qid,
				job:    j,
				nodeID: nid,
				grant:  chunk,
				issued: s.slot,
				expiry: deadline,
			}
			j.inFlight = j.inFlight.Add(chunk)
			planned = append(planned, plannedLaunch{nodeID: nid, q: rmproto.Quantum{
				ID:           qid,
				JobID:        j.id,
				Grant:        rmproto.FromVector(chunk),
				DeadlineSlot: deadline,
			}})
			rec.Grants = append(rec.Grants, recGrant{
				QID: qid, JobID: j.id, NodeID: nid, Grant: chunk, Expiry: deadline,
			})
		}
	}
	s.slot++
	return rec, planned, nil
}

// safeAssign invokes the scheduler with panic isolation: a panic becomes
// an error and a fault-counter bump instead of an RM crash. Quantum IDs
// are only allocated after a successful return, so a panic cannot leave
// the server state half-advanced.
func (s *Server) safeAssign(ctx sched.AssignContext) (grants map[string]resource.Vector, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.faults.SchedulerPanics++
			grants, err = nil, fmt.Errorf("scheduler %q panicked: %v (no grants this slot)", s.cfg.Scheduler.Name(), r)
		}
	}()
	return s.cfg.Scheduler.Assign(ctx)
}

func (s *Server) readyLocked(j *rmJob) bool {
	if j.kind != sched.DeadlineJob {
		return true
	}
	st := s.wfs[j.wfID]
	for _, p := range st.wf.DAG().Predecessors(j.nodeIdx) {
		if !st.jobs[p].done {
			return false
		}
	}
	return true
}

func (s *Server) totalCapacityLocked() resource.Vector {
	var total resource.Vector
	for _, n := range s.nodes {
		total = total.Add(n.capacity)
	}
	return total
}

// Status snapshots the cluster.
func (s *Server) Status() rmproto.StatusResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := rmproto.StatusResponse{
		Slot:              s.slot,
		Nodes:             len(s.nodes),
		Capacity:          rmproto.FromVector(s.totalCapacityLocked()),
		Draining:          s.draining,
		OutstandingLeases: len(s.leases),
		Faults:            s.faults,
		Recovery:          s.recovery,
	}
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := s.jobs[id]
		st := rmproto.JobStatus{
			ID:         j.id,
			Kind:       j.kind.String(),
			WorkflowID: j.wfID,
			Delivered:  rmproto.FromVector(j.delivered),
			Total:      rmproto.FromVector(j.total),
		}
		switch {
		case j.done:
			st.State = "completed"
			st.CompletedSec = int64((time.Duration(j.doneSlot) * s.cfg.SlotDur) / time.Second)
		case !j.delivered.IsZero() || !j.inFlight.IsZero():
			st.State = "running"
		default:
			st.State = "pending"
		}
		if j.kind == sched.DeadlineJob {
			st.DeadlineSec = int64(j.deadline / time.Second)
			st.Missed = missedDeadline(j.deadline, j.done, j.doneSlot, s.slot, s.cfg.SlotDur)
			st.BestEffort = j.bestEffort
		}
		resp.Jobs = append(resp.Jobs, st)
	}
	if _, ok := s.cfg.Scheduler.(sched.PlanStreamer); ok || s.livePlan != nil {
		lp := s.livePlanLocked()
		p := &rmproto.PlanStatus{
			Rev:          lp.Rev,
			From:         lp.From,
			NSlots:       lp.NSlots,
			Jobs:         len(lp.Jobs),
			DiffsApplied: s.faults.PlanDiffsApplied,
			Rebases:      s.faults.PlanRebases,
		}
		if s.adhocQ != nil {
			qs := s.adhocQ.Stats()
			p.AdHoc = &rmproto.AdHocQueueStatus{
				Admitted: qs.Admitted,
				Rejected: qs.Rejected,
				Rebases:  qs.Rebases,
				Rev:      s.adhocQ.Rev(),
			}
		}
		resp.Plan = p
	}
	if dr, ok := s.cfg.Scheduler.(sched.DegradationReporter); ok {
		d := dr.Degradation()
		resp.Degradation = &rmproto.DegradationStatus{
			Level:           d.Level.String(),
			LevelCode:       int(d.Level),
			Reason:          d.Reason,
			MinMaxFallbacks: d.MinMaxFallbacks,
			GreedyFallbacks: d.GreedyFallbacks,
			InvalidPlans:    d.InvalidPlans,
			LPWarmStarts:    d.LPWarmStarts,
			LPColdStarts:    d.LPColdStarts,
		}
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Durability = &rmproto.DurabilityStatus{
			FsyncPolicy:       s.store.Policy().String(),
			Generation:        st.Generation,
			WALRecords:        st.WALRecords,
			WALBytes:          st.WALBytes,
			Fsyncs:            st.Fsyncs,
			FsyncTotalMicros:  st.FsyncTotal.Microseconds(),
			FsyncMaxMicros:    st.FsyncMax.Microseconds(),
			Snapshots:         st.Snapshots,
			LastSnapshotBytes: st.LastSnapLen,
		}
	}
	if s.store != nil {
		wm := s.store.Watermark()
		r := &rmproto.ReplicationStatus{
			Role:      s.role.String(),
			RoleCode:  int(s.role),
			Epoch:     s.epoch,
			Fenced:    s.fenced,
			LeaderURL: s.leaderURL,
			Watermark: rmproto.ReplWatermark{Gen: wm.Gen, Records: wm.Records, Bytes: wm.Bytes},
		}
		if s.repl.hasFollower {
			f := s.repl.followerWM
			r.FollowerSeen = true
			r.FollowerWatermark = rmproto.ReplWatermark{Gen: f.Gen, Records: f.Records, Bytes: f.Bytes}
			if f.Gen == wm.Gen {
				r.LagRecords = wm.Records - f.Records
				r.LagBytes = wm.Bytes - f.Bytes
			} else {
				// Cross-generation lag is unbounded by subtraction (the
				// follower needs a snapshot install); report the whole head
				// segment as the bound.
				r.LagRecords = wm.Records
				r.LagBytes = wm.Bytes
			}
			if r.LagRecords < 0 {
				r.LagRecords = 0
			}
			if r.LagBytes < 0 {
				r.LagBytes = 0
			}
		}
		resp.Replication = r
	}
	if s.admission != nil {
		resp.Overload = s.admission.status()
	}
	// Every status poll re-evaluates the watchdogs, so a scraped RM
	// never reports stale liveness verdicts.
	now := time.Now()
	var lag int64
	var lagKnown bool
	if resp.Replication != nil && resp.Replication.FollowerSeen {
		lag, lagKnown = resp.Replication.LagRecords, true
	}
	s.watchdog.check(now, lag, lagKnown)
	if s.cfg.Watchdog.enabled() {
		resp.Watchdog = s.watchdog.status(now)
	}
	return resp
}

// missedDeadline decides whether a deadline job is (or will be reported
// as) past its deadline at slot nowSlot. Completion is observed at the
// confirmation heartbeat, one slot after the work actually ran, so a
// completed job is granted that slot as grace: work confirmed at doneSlot
// finished during slot doneSlot-1. A job confirmed at slot 0 or earlier
// (doneSlot <= 0, e.g. zero-volume work confirmed before the first tick)
// finished at time zero and can never have missed.
func missedDeadline(deadline time.Duration, done bool, doneSlot, nowSlot int64, slotDur time.Duration) bool {
	if !done {
		return time.Duration(nowSlot)*slotDur > deadline
	}
	if doneSlot <= 0 {
		return false
	}
	return time.Duration(doneSlot-1)*slotDur > deadline
}

// Slot returns the current scheduling slot.
func (s *Server) Slot() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.slot
}

// BeginDrain flips the RM into drain mode: Tick stops issuing new leases
// while heartbeats keep confirming (and expiry keeps reclaiming) the
// in-flight ones. Draining is one-way for the life of the process — and
// only the process: drain state is deliberately not journaled, so a
// restarted RM schedules again instead of coming up permanently refusing
// work.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining = true
	if len(s.leases) == 0 {
		s.cond.Broadcast()
	}
}

// Drain begins a drain and blocks until every outstanding lease has been
// confirmed or reclaimed, or ctx is done — whichever comes first. The
// caller must keep the RM ticking (run loop or /v1/tick) so lease expiry
// can reclaim work from nodes that died, otherwise a dead node's leases
// hold the drain open until ctx expires. The returned response reports
// whether the drain completed and which jobs a shutdown would strand.
// A drain that completes with a store attached writes a final snapshot,
// so a clean shutdown restarts with zero WAL records to replay.
func (s *Server) Drain(ctx context.Context) rmproto.DrainResponse {
	s.BeginDrain()
	s.mu.Lock()
	defer s.mu.Unlock()
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	for len(s.leases) > 0 && ctx.Err() == nil {
		s.cond.Wait()
	}
	if len(s.leases) == 0 {
		// Snapshot failures are non-fatal: the WAL already covers the
		// drained state, recovery just replays more records.
		_ = s.writeSnapshotLocked()
	}
	return s.drainStatusLocked()
}

// DrainStatus reports drain progress without blocking.
func (s *Server) DrainStatus() rmproto.DrainResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drainStatusLocked()
}

func (s *Server) drainStatusLocked() rmproto.DrainResponse {
	resp := rmproto.DrainResponse{
		Draining:          s.draining,
		Complete:          len(s.leases) == 0,
		OutstandingLeases: len(s.leases),
	}
	for id, j := range s.jobs {
		if !j.done {
			resp.UnfinishedJobs = append(resp.UnfinishedJobs, id)
		}
	}
	sort.Strings(resp.UnfinishedJobs)
	return resp
}
