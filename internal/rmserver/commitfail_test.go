package rmserver

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/store"
)

// newFaultyRM builds a durable RM whose store sits on a FaultFS, so
// tests can fail fsyncs out from under live mutations.
func newFaultyRM(t *testing.T, dir string) (*Server, *store.FaultFS) {
	t.Helper()
	ffs := store.NewFaultFS()
	st, err := store.Open(store.Options{Dir: dir, Policy: store.SyncAlways, FS: ffs})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), Store: st})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rm, ffs
}

// TestHeartbeatCommitFailureIsCoded: a heartbeat whose confirm record
// cannot be made durable must fail with ErrCommitFailed — the coded,
// retryable counterpart of unknown_node — not silently acknowledge work
// the WAL never captured.
func TestHeartbeatCommitFailureIsCoded(t *testing.T) {
	rm, ffs := newFaultyRM(t, t.TempDir())
	register(t, rm, "n1", 8, 16*1024)
	submitBoth(t, rm)
	pending := runSlots(t, rm, "n1", 1, nil)
	if len(pending) == 0 {
		t.Fatal("no leases launched; cannot exercise the confirm path")
	}

	ffs.FailFsync(1)
	_, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1", Completed: pending}, time.Now())
	if !errors.Is(err, ErrCommitFailed) {
		t.Fatalf("heartbeat under fsync fault = %v, want ErrCommitFailed", err)
	}
	if !errors.Is(err, store.ErrInjectedFsync) {
		t.Errorf("commit failure lost the underlying store error: %v", err)
	}
}

// TestCommitFailureOverHTTP pins the wire contract: 503 with code
// commit_failed, which the client maps back to ErrCommitFailed and
// treats as retryable.
func TestCommitFailureOverHTTP(t *testing.T) {
	rm, ffs := newFaultyRM(t, t.TempDir())
	srv := httptest.NewServer(rm.Handler())
	defer srv.Close()
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	register(t, rm, "n1", 8, 16*1024)
	submitBoth(t, rm)
	pending := runSlots(t, rm, "n1", 1, nil)

	ffs.FailFsync(1)
	_, err := client.Heartbeat(ctx, rmproto.HeartbeatRequest{NodeID: "n1", Completed: pending})
	if !errors.Is(err, ErrCommitFailed) {
		t.Fatalf("heartbeat over HTTP under fsync fault = %v, want ErrCommitFailed", err)
	}
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("error %v did not carry a StatusError", err)
	}
	if se.StatusCode != 503 || se.Code != rmproto.CodeCommitFailed {
		t.Errorf("wire error = %d/%s, want 503/%s", se.StatusCode, se.Code, rmproto.CodeCommitFailed)
	}
	if !Retryable(err) {
		t.Error("commit_failed must be retryable: the disk fault may clear")
	}
}
