package rmserver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"flowtime/internal/rmproto"
)

// ErrUnknownNode is reported when the RM rejects a heartbeat because it
// does not know the node (never registered, expired for silence, or the
// RM restarted and lost its in-memory state). Node agents should treat it
// as a signal to re-register, not as a transient failure to retry.
var ErrUnknownNode = errors.New("rmserver: unknown node")

// ErrNotLeader is reported when a mutation reaches an RM that is not
// the current primary (a follower, or a primary fenced by a higher
// epoch). Agents should redirect to the leader hint or rotate through
// their RM list and re-register.
var ErrNotLeader = errors.New("rmserver: not the leader")

// ErrCommitFailed is reported when the RM could not make a mutation's
// WAL record durable (disk fault). The mutation must not be assumed to
// have taken effect; callers back off and retry.
var ErrCommitFailed = errors.New("rmserver: wal commit failed")

// NotLeaderError is the server-side form of ErrNotLeader, carrying the
// redirect hint. errors.Is(err, ErrNotLeader) matches it.
type NotLeaderError struct {
	// Leader is the URL this node believes the leader is at; may be "".
	Leader string
	// Fenced is true when this node was the primary and has been deposed.
	Fenced bool
}

func (e *NotLeaderError) Error() string {
	role := "follower"
	if e.Fenced {
		role = "fenced ex-primary"
	}
	if e.Leader != "" {
		return fmt.Sprintf("rmserver: not the leader (%s); leader at %s", role, e.Leader)
	}
	return fmt.Sprintf("rmserver: not the leader (%s)", role)
}

// Is matches ErrNotLeader.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// StatusError is an RM API error that carries the HTTP status and the
// machine-readable code from the wire. It unwraps to the matching
// sentinel (ErrUnknownNode, ErrNotLeader, ErrCommitFailed) when the
// code says so, enabling errors.Is across the HTTP boundary.
type StatusError struct {
	StatusCode int
	Code       string
	Message    string
	// Leader is the leader hint from a not_leader response.
	Leader string
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("rmserver: %d: %s", e.StatusCode, e.Message)
	}
	return fmt.Sprintf("rmserver: unexpected status %d", e.StatusCode)
}

// Is maps wire codes back to their sentinel errors.
func (e *StatusError) Is(target error) bool {
	switch target {
	case ErrUnknownNode:
		return e.Code == rmproto.CodeUnknownNode
	case ErrNotLeader:
		return e.Code == rmproto.CodeNotLeader
	case ErrCommitFailed:
		return e.Code == rmproto.CodeCommitFailed
	}
	return false
}

// LeaderHint extracts the leader URL from a not-leader error, local or
// wire-form; "" when the error carries none.
func LeaderHint(err error) string {
	var nle *NotLeaderError
	if errors.As(err, &nle) {
		return nle.Leader
	}
	var se *StatusError
	if errors.As(err, &se) && se.Code == rmproto.CodeNotLeader {
		return se.Leader
	}
	return ""
}

// Backoff is a capped exponential backoff with jitter, shared by the RM
// client and the node agent for all idempotent control-plane calls.
// The zero value uses the defaults documented on each field.
type Backoff struct {
	// Base is the first retry delay (default 100ms).
	Base time.Duration
	// Max caps the delay growth (default 5s).
	Max time.Duration
	// Factor multiplies the delay each attempt (default 2).
	Factor float64
	// Jitter is the fraction of each delay drawn uniformly at random,
	// in [0,1] (default 0.2). Jitter desynchronizes agents that all lost
	// the RM at the same instant.
	Jitter float64
	// MaxAttempts bounds the total tries; 0 means 4, negative means
	// retry until the context is cancelled.
	MaxAttempts int
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	}
	if b.MaxAttempts == 0 {
		b.MaxAttempts = 4
	}
	return b
}

// Delay returns the backoff before retry number attempt (0-based), with
// jitter applied.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		d = d * (1 - b.Jitter + b.Jitter*rand.Float64())
	}
	return time.Duration(d)
}

// Retry runs op until it succeeds, returns a permanent error, exhausts
// MaxAttempts, or ctx is cancelled. Between attempts it sleeps the
// backoff delay, honoring ctx cancellation. The last error is returned.
func Retry(ctx context.Context, b Backoff, op func() error) error {
	b = b.withDefaults()
	var err error
	for attempt := 0; ; attempt++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		if err = op(); err == nil || !Retryable(err) {
			return err
		}
		if b.MaxAttempts > 0 && attempt+1 >= b.MaxAttempts {
			return err
		}
		t := time.NewTimer(b.Delay(attempt))
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Retryable reports whether err is worth retrying: network failures and
// server-side (5xx) errors are; client-side (4xx) rejections — bad
// requests, unknown node, duplicates — are permanent and need a different
// response than repetition.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.StatusCode >= http.StatusInternalServerError
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true // transport-level failure: connection refused, reset, EOF
}
