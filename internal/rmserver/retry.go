package rmserver

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"flowtime/internal/rmproto"
)

// ErrUnknownNode is reported when the RM rejects a heartbeat because it
// does not know the node (never registered, expired for silence, or the
// RM restarted and lost its in-memory state). Node agents should treat it
// as a signal to re-register, not as a transient failure to retry.
var ErrUnknownNode = errors.New("rmserver: unknown node")

// ErrNotLeader is reported when a mutation reaches an RM that is not
// the current primary (a follower, or a primary fenced by a higher
// epoch). Agents should redirect to the leader hint or rotate through
// their RM list and re-register.
var ErrNotLeader = errors.New("rmserver: not the leader")

// ErrCommitFailed is reported when the RM could not make a mutation's
// WAL record durable (disk fault). The mutation must not be assumed to
// have taken effect; callers back off and retry.
var ErrCommitFailed = errors.New("rmserver: wal commit failed")

// ErrOverloaded is reported when the RM sheds a request under overload
// (bounded admission queue full, deadline-aware wait exceeded, or
// priority shedding). The request did not take effect; clients honor
// the Retry-After hint and spend retry budget before trying again.
var ErrOverloaded = errors.New("rmserver: overloaded")

// ErrRetryBudgetExhausted is reported when a retry loop stops early
// because its shared retry budget ran dry — the anti-amplification
// guard: a fleet of clients retrying into an overloaded or failing RM
// must shed its own retries rather than multiply the load.
var ErrRetryBudgetExhausted = errors.New("rmserver: retry budget exhausted")

// ErrCircuitOpen is reported by a tripped circuit breaker: enough
// consecutive failures accumulated that calls fail fast, without
// touching the network, until the cooldown elapses.
var ErrCircuitOpen = errors.New("rmserver: circuit breaker open")

// OverloadedError is the server-side form of ErrOverloaded, carrying
// the shed reason and the backoff hint. errors.Is(err, ErrOverloaded)
// matches it.
type OverloadedError struct {
	// Reason is the shed class: "queue_full", "queue_timeout", "priority".
	Reason string
	// RetryAfter is how long the client should wait before retrying.
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("rmserver: overloaded (%s); retry after %v", e.Reason, e.RetryAfter)
}

// Is matches ErrOverloaded.
func (e *OverloadedError) Is(target error) bool { return target == ErrOverloaded }

// NotLeaderError is the server-side form of ErrNotLeader, carrying the
// redirect hint. errors.Is(err, ErrNotLeader) matches it.
type NotLeaderError struct {
	// Leader is the URL this node believes the leader is at; may be "".
	Leader string
	// Fenced is true when this node was the primary and has been deposed.
	Fenced bool
}

func (e *NotLeaderError) Error() string {
	role := "follower"
	if e.Fenced {
		role = "fenced ex-primary"
	}
	if e.Leader != "" {
		return fmt.Sprintf("rmserver: not the leader (%s); leader at %s", role, e.Leader)
	}
	return fmt.Sprintf("rmserver: not the leader (%s)", role)
}

// Is matches ErrNotLeader.
func (e *NotLeaderError) Is(target error) bool { return target == ErrNotLeader }

// StatusError is an RM API error that carries the HTTP status and the
// machine-readable code from the wire. It unwraps to the matching
// sentinel (ErrUnknownNode, ErrNotLeader, ErrCommitFailed) when the
// code says so, enabling errors.Is across the HTTP boundary.
type StatusError struct {
	StatusCode int
	Code       string
	Message    string
	// Leader is the leader hint from a not_leader response.
	Leader string
	// RetryAfter is the server's backoff hint, parsed from the
	// Retry-After header or the body's retry_after_ms (whichever the
	// transport preserved); 0 when the response carried none.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("rmserver: %d: %s", e.StatusCode, e.Message)
	}
	return fmt.Sprintf("rmserver: unexpected status %d", e.StatusCode)
}

// Is maps wire codes back to their sentinel errors.
func (e *StatusError) Is(target error) bool {
	switch target {
	case ErrUnknownNode:
		return e.Code == rmproto.CodeUnknownNode
	case ErrNotLeader:
		return e.Code == rmproto.CodeNotLeader
	case ErrCommitFailed:
		return e.Code == rmproto.CodeCommitFailed
	case ErrOverloaded:
		return e.Code == rmproto.CodeOverloaded
	}
	return false
}

// RetryAfterHint extracts the server's backoff hint from an error,
// local (OverloadedError) or wire-form (StatusError); 0 when the error
// carries none.
func RetryAfterHint(err error) time.Duration {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// LeaderHint extracts the leader URL from a not-leader error, local or
// wire-form; "" when the error carries none.
func LeaderHint(err error) string {
	var nle *NotLeaderError
	if errors.As(err, &nle) {
		return nle.Leader
	}
	var se *StatusError
	if errors.As(err, &se) && se.Code == rmproto.CodeNotLeader {
		return se.Leader
	}
	return ""
}

// Backoff is a capped exponential backoff with jitter, shared by the RM
// client and the node agent for all idempotent control-plane calls.
// The zero value uses the defaults documented on each field.
type Backoff struct {
	// Base is the first retry delay (default 100ms).
	Base time.Duration
	// Max caps the delay growth (default 5s).
	Max time.Duration
	// Factor multiplies the delay each attempt (default 2).
	Factor float64
	// Jitter is the fraction of each delay drawn uniformly at random,
	// in [0,1] (default 0.2). Jitter desynchronizes agents that all lost
	// the RM at the same instant.
	Jitter float64
	// MaxAttempts bounds the total tries; 0 means 4, negative means
	// retry until the context is cancelled.
	MaxAttempts int
	// FullJitter draws each delay uniformly from [0, d] instead of
	// applying the fractional Jitter around d. Full jitter is the
	// stronger desynchronizer for thundering herds recovering from an
	// outage: the expected extra wait is halved and the retry instants
	// spread across the whole window.
	FullJitter bool
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	}
	if b.MaxAttempts == 0 {
		b.MaxAttempts = 4
	}
	return b
}

// Delay returns the backoff before retry number attempt (0-based), with
// jitter applied.
func (b Backoff) Delay(attempt int) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.FullJitter {
		return time.Duration(d * rand.Float64())
	}
	if b.Jitter > 0 {
		d = d * (1 - b.Jitter + b.Jitter*rand.Float64())
	}
	return time.Duration(d)
}

// Retry runs op until it succeeds, returns a permanent error, exhausts
// MaxAttempts, or ctx is cancelled. Between attempts it sleeps the
// backoff delay (or the server's Retry-After hint if longer), honoring
// ctx cancellation. The last error is returned.
func Retry(ctx context.Context, b Backoff, op func() error) error {
	return RetryPolicy{Backoff: b}.Do(ctx, op)
}

// RetryBudget is a token bucket shared by the retry loops of one
// client (or one agent): each retry spends a token, each success earns
// a fraction back. When an RM is down or shedding, a budget-less fleet
// multiplies offered load by its retry count at the worst moment; the
// budget caps that amplification — sustained failure drains the bucket
// and further retries are refused until successes refill it.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	max    float64
	earn   float64
}

// NewRetryBudget returns a budget holding at most max tokens (and
// starting full); max <= 0 means 10. Each success deposits 0.1 tokens,
// so the steady-state retry rate is capped at ~10% of the success rate.
func NewRetryBudget(max float64) *RetryBudget {
	if max <= 0 {
		max = 10
	}
	return &RetryBudget{tokens: max, max: max, earn: 0.1}
}

// Spend takes one token for a retry, reporting false (and counting an
// exhaustion) when the bucket is dry.
func (rb *RetryBudget) Spend() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		retryBudgetExhausted.Add(1)
		return false
	}
	rb.tokens--
	return true
}

// Deposit credits a success, refilling the bucket toward its cap.
func (rb *RetryBudget) Deposit() {
	rb.mu.Lock()
	rb.tokens += rb.earn
	if rb.tokens > rb.max {
		rb.tokens = rb.max
	}
	rb.mu.Unlock()
}

// Tokens reports the current balance (tests and status pages).
func (rb *RetryBudget) Tokens() float64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.tokens
}

// retryBudgetExhausted counts, process-wide, retries refused for lack
// of budget. Any RM embedding this package (including a follower whose
// replicator client runs in-process) reports it via /metrics.
var retryBudgetExhausted atomic.Int64

// RetryBudgetExhaustedTotal returns the process-wide count of retries
// refused because a RetryBudget ran dry.
func RetryBudgetExhaustedTotal() int64 { return retryBudgetExhausted.Load() }

// Breaker is a consecutive-failure circuit breaker. After Threshold
// failures in a row it opens: calls fail fast with ErrCircuitOpen,
// without touching the network, until Cooldown elapses; the next call
// then probes (half-open) and a success closes the circuit.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// circuit; 0 means 8.
	Threshold int
	// Cooldown is how long the circuit stays open; 0 means 2s.
	Cooldown time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
	trips     int64
}

func (br *Breaker) limits() (int, time.Duration) {
	th, cd := br.Threshold, br.Cooldown
	if th <= 0 {
		th = 8
	}
	if cd <= 0 {
		cd = 2 * time.Second
	}
	return th, cd
}

// Allow reports whether a call may proceed (closed, or half-open probe).
func (br *Breaker) Allow() bool {
	br.mu.Lock()
	defer br.mu.Unlock()
	return time.Now().After(br.openUntil)
}

// Record feeds a call's outcome into the breaker.
func (br *Breaker) Record(err error) {
	br.mu.Lock()
	defer br.mu.Unlock()
	if err == nil {
		br.fails = 0
		return
	}
	br.fails++
	th, cd := br.limits()
	if br.fails >= th {
		br.openUntil = time.Now().Add(cd)
		br.fails = 0
		br.trips++
	}
}

// Trips returns how many times the circuit has opened.
func (br *Breaker) Trips() int64 {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.trips
}

// RetryPolicy bundles the client-side resilience stack: exponential
// backoff (optionally full-jitter), a shared retry budget, and a
// circuit breaker. The zero value behaves like plain Retry.
type RetryPolicy struct {
	Backoff Backoff
	// Budget, when non-nil, is consulted before every retry (not the
	// first attempt); exhaustion stops the loop with
	// ErrRetryBudgetExhausted joined onto the last error.
	Budget *RetryBudget
	// Breaker, when non-nil, gates every attempt; an open circuit
	// fails fast with ErrCircuitOpen.
	Breaker *Breaker
}

// Do runs op under the policy until it succeeds, returns a permanent
// error, exhausts MaxAttempts or the retry budget, trips the breaker,
// or ctx is cancelled. Between attempts it sleeps the larger of the
// backoff delay and the server's Retry-After hint.
func (p RetryPolicy) Do(ctx context.Context, op func() error) error {
	b := p.Backoff.withDefaults()
	var err error
	for attempt := 0; ; attempt++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		if p.Breaker != nil && !p.Breaker.Allow() {
			if err != nil {
				return errors.Join(ErrCircuitOpen, err)
			}
			return ErrCircuitOpen
		}
		err = op()
		if p.Breaker != nil {
			p.Breaker.Record(err)
		}
		if err == nil {
			if p.Budget != nil {
				p.Budget.Deposit()
			}
			return nil
		}
		if !Retryable(err) {
			return err
		}
		if b.MaxAttempts > 0 && attempt+1 >= b.MaxAttempts {
			return err
		}
		if p.Budget != nil && !p.Budget.Spend() {
			return errors.Join(ErrRetryBudgetExhausted, err)
		}
		d := b.Delay(attempt)
		if hint := RetryAfterHint(err); hint > d {
			d = hint
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// Retryable reports whether err is worth retrying: network failures and
// server-side (5xx) errors are; client-side (4xx) rejections — bad
// requests, unknown node, duplicates — are permanent and need a different
// response than repetition.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.StatusCode >= http.StatusInternalServerError
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true // transport-level failure: connection refused, reset, EOF
}
