package rmserver

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flowtime/internal/core"
	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/trace"
)

const slotDur = 10 * time.Second

func newRM(t *testing.T, s sched.Scheduler) *Server {
	t.Helper()
	rm, err := New(Config{SlotDur: slotDur, Scheduler: s})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rm
}

func register(t *testing.T, rm *Server, id string, cores, memMB int64) {
	t.Helper()
	_, err := rm.RegisterNode(rmproto.RegisterNodeRequest{
		NodeID:   id,
		Capacity: rmproto.Resources{VCores: cores, MemoryMB: memMB},
	}, time.Now())
	if err != nil {
		t.Fatalf("RegisterNode(%s): %v", id, err)
	}
}

func chainWorkflow(deadlineSec int64) trace.WorkflowRecord {
	return trace.WorkflowRecord{
		ID:          "wf-1",
		SubmitSec:   0,
		DeadlineSec: deadlineSec,
		Jobs: []trace.JobRecord{
			{Name: "a", Tasks: 4, TaskDurSec: 30, DemandVCores: 1, DemandMemMB: 1024},
			{Name: "b", Tasks: 4, TaskDurSec: 30, DemandVCores: 1, DemandMemMB: 1024},
		},
		Deps: [][2]int{{0, 1}},
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{SlotDur: 0, Scheduler: sched.NewFIFO()}); err == nil {
		t.Error("zero slot accepted")
	}
	if _, err := New(Config{SlotDur: time.Second}); err == nil {
		t.Error("nil scheduler accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	rm := newRM(t, sched.NewFIFO())
	if _, err := rm.RegisterNode(rmproto.RegisterNodeRequest{NodeID: ""}, time.Now()); err == nil {
		t.Error("empty node ID accepted")
	}
	if _, err := rm.RegisterNode(rmproto.RegisterNodeRequest{
		NodeID: "n", Capacity: rmproto.Resources{VCores: -1},
	}, time.Now()); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := rm.RegisterNode(rmproto.RegisterNodeRequest{NodeID: "n"}, time.Now()); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestSubmitRequiresNodes(t *testing.T) {
	rm := newRM(t, sched.NewFIFO())
	_, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)})
	if err == nil || !strings.Contains(err.Error(), "no registered nodes") {
		t.Errorf("SubmitWorkflow without nodes = %v, want no-nodes error", err)
	}
}

func TestHeartbeatUnknownNode(t *testing.T) {
	rm := newRM(t, sched.NewFIFO())
	if _, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "ghost"}, time.Now()); err == nil {
		t.Error("heartbeat from unregistered node accepted")
	}
}

// driveToCompletion ticks the RM and heartbeats all nodes until every job
// completes or maxSlots elapse. It returns the final status.
func driveToCompletion(t *testing.T, rm *Server, nodes []string, maxSlots int) rmproto.StatusResponse {
	t.Helper()
	pending := make(map[string][]string, len(nodes)) // node -> running lease IDs
	for slot := 0; slot < maxSlots; slot++ {
		if err := rm.Tick(time.Now()); err != nil {
			t.Fatalf("Tick: %v", err)
		}
		for _, n := range nodes {
			resp, err := rm.Heartbeat(rmproto.HeartbeatRequest{
				NodeID:    n,
				Completed: pending[n],
			}, time.Now())
			if err != nil {
				t.Fatalf("Heartbeat(%s): %v", n, err)
			}
			ids := make([]string, 0, len(resp.Launch))
			for _, q := range resp.Launch {
				ids = append(ids, q.ID)
			}
			pending[n] = ids
		}
		st := rm.Status()
		done := true
		for _, j := range st.Jobs {
			if j.State != "completed" {
				done = false
				break
			}
		}
		if done && len(st.Jobs) > 0 {
			return st
		}
	}
	return rm.Status()
}

func TestWorkflowRunsToCompletionUnderEDF(t *testing.T) {
	rm := newRM(t, sched.NewEDF())
	register(t, rm, "n1", 8, 16*1024)
	register(t, rm, "n2", 8, 16*1024)

	resp, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)})
	if err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	if !resp.Accepted || resp.ID != "wf-1" {
		t.Fatalf("SubmitWorkflow = %+v", resp)
	}
	if _, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)}); err == nil {
		t.Error("duplicate workflow accepted")
	}

	st := driveToCompletion(t, rm, []string{"n1", "n2"}, 100)
	if len(st.Jobs) != 2 {
		t.Fatalf("status has %d jobs, want 2", len(st.Jobs))
	}
	for _, j := range st.Jobs {
		if j.State != "completed" {
			t.Errorf("job %s state = %s, want completed", j.ID, j.State)
		}
		if j.Missed {
			t.Errorf("job %s missed its deadline", j.ID)
		}
	}
}

func TestWorkflowRunsToCompletionUnderFlowTime(t *testing.T) {
	rm := newRM(t, core.New(core.DefaultConfig()))
	register(t, rm, "n1", 16, 32*1024)

	if _, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(1200)}); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	if _, err := rm.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: "q1", Tasks: 2, TaskDurSec: 20, DemandVCores: 1, DemandMemMB: 512,
	}}); err != nil {
		t.Fatalf("SubmitAdHoc: %v", err)
	}

	st := driveToCompletion(t, rm, []string{"n1"}, 200)
	completed := 0
	for _, j := range st.Jobs {
		if j.State == "completed" {
			completed++
		}
		if j.Missed {
			t.Errorf("job %s missed", j.ID)
		}
	}
	if completed != 3 {
		t.Errorf("completed = %d jobs, want 3 (2 workflow + 1 ad-hoc)", completed)
	}
}

func TestDependencyOrderingEnforced(t *testing.T) {
	rm := newRM(t, sched.NewFIFO())
	register(t, rm, "n1", 64, 128*1024)
	if _, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)}); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}

	// Tick once and heartbeat: only job a may receive leases.
	if err := rm.Tick(time.Now()); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	resp, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1"}, time.Now())
	if err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	for _, q := range resp.Launch {
		if strings.Contains(q.JobID, "/b#") {
			t.Errorf("dependent job leased before predecessor completed: %+v", q)
		}
	}
}

func TestAdHocDuplicateRejected(t *testing.T) {
	rm := newRM(t, sched.NewFIFO())
	register(t, rm, "n1", 8, 16*1024)
	job := trace.AdHocRecord{ID: "q", Tasks: 1, TaskDurSec: 10, DemandVCores: 1, DemandMemMB: 256}
	if _, err := rm.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: job}); err != nil {
		t.Fatalf("SubmitAdHoc: %v", err)
	}
	if _, err := rm.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: job}); err == nil {
		t.Error("duplicate ad-hoc accepted")
	}
}

func TestNodeExpiry(t *testing.T) {
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), NodeExpiry: 25 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	base := time.Now()
	if _, err := rm.RegisterNode(rmproto.RegisterNodeRequest{
		NodeID: "n1", Capacity: rmproto.Resources{VCores: 4, MemoryMB: 4096},
	}, base); err != nil {
		t.Fatalf("RegisterNode: %v", err)
	}
	if err := rm.Tick(base.Add(10 * time.Second)); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if st := rm.Status(); st.Nodes != 1 {
		t.Fatalf("nodes = %d, want 1", st.Nodes)
	}
	if err := rm.Tick(base.Add(60 * time.Second)); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if st := rm.Status(); st.Nodes != 0 {
		t.Errorf("nodes = %d, want 0 after expiry", st.Nodes)
	}
}

// TestMissedDeadlineBoundaries pins the confirmation-grace semantics:
// work confirmed at doneSlot actually ran during slot doneSlot-1, so a
// job confirmed one slot after its deadline still made it, and a job
// with doneSlot <= 0 (never really ran, e.g. confirmed before the first
// tick) can never be reported missed.
func TestMissedDeadlineBoundaries(t *testing.T) {
	const slot = 10 * time.Second
	cases := []struct {
		name     string
		deadline time.Duration
		done     bool
		doneSlot int64
		nowSlot  int64
		want     bool
	}{
		{"pending before deadline", 30 * time.Second, false, 0, 3, false},
		{"pending past deadline", 30 * time.Second, false, 0, 4, true},
		{"never started at slot zero", 30 * time.Second, false, 0, 0, false},
		{"done at slot zero", 30 * time.Second, true, 0, 10, false},
		{"done at slot one ran during slot zero", 0, true, 1, 10, false},
		{"confirmed exactly one slot after deadline", 30 * time.Second, true, 4, 10, false},
		{"confirmed two slots after deadline", 30 * time.Second, true, 5, 10, true},
		{"zero deadline confirmed late", 0, true, 3, 10, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := missedDeadline(c.deadline, c.done, c.doneSlot, c.nowSlot, slot); got != c.want {
				t.Errorf("missedDeadline(%v, done=%v, doneSlot=%d, now=%d) = %v, want %v",
					c.deadline, c.done, c.doneSlot, c.nowSlot, got, c.want)
			}
		})
	}
}

// TestNodeExpiryRequeuesPendingWork checks that expiry of a node that
// still has quanta queued (never launched) returns that volume too.
func TestNodeExpiryRequeuesPendingWork(t *testing.T) {
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), NodeExpiry: 25 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	base := time.Now()
	if _, err := rm.RegisterNode(rmproto.RegisterNodeRequest{
		NodeID: "n1", Capacity: rmproto.Resources{VCores: 8, MemoryMB: 16 * 1024},
	}, base); err != nil {
		t.Fatalf("RegisterNode: %v", err)
	}
	if _, err := rm.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: "q", Tasks: 4, TaskDurSec: 20, DemandVCores: 1, DemandMemMB: 512,
	}}); err != nil {
		t.Fatalf("SubmitAdHoc: %v", err)
	}
	// Tick queues quanta on n1's pending list; the node never heartbeats
	// to pick them up and expires.
	if err := rm.Tick(base); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if st := rm.Status(); st.OutstandingLeases == 0 {
		t.Fatal("no leases queued")
	}
	if err := rm.Tick(base.Add(60 * time.Second)); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	st := rm.Status()
	if st.Nodes != 0 {
		t.Fatalf("nodes = %d, want 0", st.Nodes)
	}
	if st.OutstandingLeases != 0 {
		t.Errorf("outstanding leases = %d after eviction, want 0", st.OutstandingLeases)
	}
	if st.Faults.RequeuedQuanta == 0 {
		t.Error("pending quanta were not requeued on node expiry")
	}
}

// TestHTTPEndToEnd drives the whole HTTP surface — register, submit,
// manual ticks, heartbeats, status — through a real httptest server and
// the Client.
func TestHTTPEndToEnd(t *testing.T) {
	rm := newRM(t, sched.NewEDF())
	ts := httptest.NewServer(rm.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := NewClient(ts.URL, ts.Client())

	if _, err := client.RegisterNode(ctx, rmproto.RegisterNodeRequest{
		NodeID:   "n1",
		Capacity: rmproto.Resources{VCores: 16, MemoryMB: 32 * 1024},
	}); err != nil {
		t.Fatalf("RegisterNode: %v", err)
	}
	if _, err := client.SubmitWorkflow(ctx, rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)}); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	if _, err := client.SubmitAdHoc(ctx, rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: "q1", Tasks: 1, TaskDurSec: 10, DemandVCores: 1, DemandMemMB: 512,
	}}); err != nil {
		t.Fatalf("SubmitAdHoc: %v", err)
	}

	var running []string
	for slot := 0; slot < 100; slot++ {
		if err := client.Tick(ctx); err != nil {
			t.Fatalf("Tick: %v", err)
		}
		hb, err := client.Heartbeat(ctx, rmproto.HeartbeatRequest{NodeID: "n1", Completed: running})
		if err != nil {
			t.Fatalf("Heartbeat: %v", err)
		}
		running = running[:0]
		for _, q := range hb.Launch {
			running = append(running, q.ID)
		}
		st, err := client.Status(ctx)
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		done := len(st.Jobs) == 3
		for _, j := range st.Jobs {
			if j.State != "completed" {
				done = false
			}
		}
		if done {
			return
		}
	}
	t.Fatal("jobs did not complete within 100 slots")
}

func TestHTTPErrors(t *testing.T) {
	rm := newRM(t, sched.NewFIFO())
	ts := httptest.NewServer(rm.Handler())
	defer ts.Close()
	ctx := context.Background()
	client := NewClient(ts.URL, ts.Client())

	if _, err := client.Heartbeat(ctx, rmproto.HeartbeatRequest{NodeID: "ghost"}); err == nil {
		t.Error("heartbeat from unknown node succeeded over HTTP")
	}
	if _, err := client.SubmitWorkflow(ctx, rmproto.SubmitWorkflowRequest{}); err == nil {
		t.Error("empty workflow accepted over HTTP")
	}
}
