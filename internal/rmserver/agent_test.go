package rmserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/trace"
)

// testLogf collects agent log lines without racing test shutdown.
func testLogf(t *testing.T) func(string, ...any) {
	var mu sync.Mutex
	done := false
	t.Cleanup(func() { mu.Lock(); done = true; mu.Unlock() })
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Logf(format, args...)
		}
	}
}

// serveRM serves rm's handler on ln until the returned shutdown func runs.
func serveRM(t *testing.T, rm *Server, ln net.Listener) (shutdown func()) {
	t.Helper()
	srv := &http.Server{Handler: rm.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return func() {
		_ = srv.Close()
		<-done
	}
}

// TestAgentRecoversFromRMRestart is the end-to-end resilience test over
// the real HTTP layer: a node agent registers with one RM process, the RM
// dies and a brand-new RM (empty state) comes up on the same address, and
// the agent must re-register on its own — the fresh RM answers its next
// heartbeat with unknown_node — and then resume lease execution so work
// submitted to the new RM completes.
func TestAgentRecoversFromRMRestart(t *testing.T) {
	const agentSlot = 20 * time.Millisecond
	newServer := func() *Server {
		rm, err := New(Config{SlotDur: agentSlot, Scheduler: sched.NewFIFO()})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return rm
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()

	rm1 := newServer()
	stop1 := serveRM(t, rm1, ln)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	agentErr := make(chan error, 1)
	go func() {
		agentErr <- RunAgent(ctx, NewClient("http://"+addr, nil), AgentConfig{
			NodeID:   "n1",
			Capacity: rmproto.Resources{VCores: 8, MemoryMB: 16 * 1024},
			Backoff:  Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			Logf:     testLogf(t),
		})
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	waitFor("agent to register with RM1", func() bool { return rm1.Status().Nodes == 1 })

	// RM1 dies with the agent mid-flight.
	stop1()

	// A fresh RM — no node state, the restart case — on the same address.
	// The port may need a moment to free up.
	var ln2 net.Listener
	waitFor("address to be reusable", func() bool {
		var lerr error
		ln2, lerr = net.Listen("tcp", addr)
		return lerr == nil
	})
	rm2 := newServer()
	stop2 := serveRM(t, rm2, ln2)
	defer stop2()

	waitFor("agent to re-register with RM2", func() bool { return rm2.Status().Nodes == 1 })

	// Prove the agent resumed real work, not just registration: submit a
	// job to RM2 and tick; the agent's heartbeats must confirm its leases.
	if _, err := rm2.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: "post-restart", Tasks: 2, TaskDurSec: 1, DemandVCores: 1, DemandMemMB: 256,
	}}); err != nil {
		t.Fatalf("SubmitAdHoc: %v", err)
	}
	tickDone := make(chan struct{})
	defer close(tickDone)
	go func() {
		ticker := time.NewTicker(agentSlot)
		defer ticker.Stop()
		for {
			select {
			case <-tickDone:
				return
			case now := <-ticker.C:
				_ = rm2.Tick(now)
			}
		}
	}()
	waitFor("job submitted after restart to complete", func() bool { return allCompleted(rm2.Status()) })

	cancel()
	if err := <-agentErr; !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("agent exit = %v, want context cancellation", err)
	}
}

// TestAgentSurvivesEvictionByRM covers the in-process variant: the RM
// stays up but evicts the node for silence; the agent's next heartbeat
// gets unknown_node over HTTP and it re-registers.
func TestAgentSurvivesEvictionByRM(t *testing.T) {
	const agentSlot = 20 * time.Millisecond
	rm, err := New(Config{SlotDur: agentSlot, Scheduler: sched.NewFIFO()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	stop := serveRM(t, rm, ln)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	agentErr := make(chan error, 1)
	go func() {
		agentErr <- RunAgent(ctx, NewClient(fmt.Sprintf("http://%s", ln.Addr()), nil), AgentConfig{
			NodeID:   "n1",
			Capacity: rmproto.Resources{VCores: 4, MemoryMB: 8 * 1024},
			Backoff:  Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			Logf:     testLogf(t),
		})
	}()

	deadline := time.Now().Add(15 * time.Second)
	for rm.Status().Nodes != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Simulate the RM's view of a network partition: evict the node
	// directly, as Tick would after NodeExpiry silence.
	rm.mu.Lock()
	rm.evictNodeLocked("n1")
	rm.mu.Unlock()

	for time.Now().Before(deadline) {
		if st := rm.Status(); st.Nodes == 1 {
			cancel()
			<-agentErr
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("agent never re-registered after eviction")
}
