package rmserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/trace"
)

// testLogf collects agent log lines without racing test shutdown.
func testLogf(t *testing.T) func(string, ...any) {
	var mu sync.Mutex
	done := false
	t.Cleanup(func() { mu.Lock(); done = true; mu.Unlock() })
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Logf(format, args...)
		}
	}
}

// serveRM serves rm's handler on ln until the returned shutdown func runs.
func serveRM(t *testing.T, rm *Server, ln net.Listener) (shutdown func()) {
	t.Helper()
	srv := &http.Server{Handler: rm.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	return func() {
		_ = srv.Close()
		<-done
	}
}

// TestAgentRecoversFromRMRestart is the end-to-end resilience test over
// the real HTTP layer: a node agent registers with one RM process, the RM
// dies and a brand-new RM (empty state) comes up on the same address, and
// the agent must re-register on its own — the fresh RM answers its next
// heartbeat with unknown_node — and then resume lease execution so work
// submitted to the new RM completes.
func TestAgentRecoversFromRMRestart(t *testing.T) {
	const agentSlot = 20 * time.Millisecond
	newServer := func() *Server {
		rm, err := New(Config{SlotDur: agentSlot, Scheduler: sched.NewFIFO()})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return rm
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()

	rm1 := newServer()
	stop1 := serveRM(t, rm1, ln)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	agentErr := make(chan error, 1)
	go func() {
		agentErr <- RunAgent(ctx, NewClient("http://"+addr, nil), AgentConfig{
			NodeID:   "n1",
			Capacity: rmproto.Resources{VCores: 8, MemoryMB: 16 * 1024},
			Backoff:  Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			Logf:     testLogf(t),
		})
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	waitFor("agent to register with RM1", func() bool { return rm1.Status().Nodes == 1 })

	// RM1 dies with the agent mid-flight.
	stop1()

	// A fresh RM — no node state, the restart case — on the same address.
	// The port may need a moment to free up.
	var ln2 net.Listener
	waitFor("address to be reusable", func() bool {
		var lerr error
		ln2, lerr = net.Listen("tcp", addr)
		return lerr == nil
	})
	rm2 := newServer()
	stop2 := serveRM(t, rm2, ln2)
	defer stop2()

	waitFor("agent to re-register with RM2", func() bool { return rm2.Status().Nodes == 1 })

	// Prove the agent resumed real work, not just registration: submit a
	// job to RM2 and tick; the agent's heartbeats must confirm its leases.
	if _, err := rm2.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: "post-restart", Tasks: 2, TaskDurSec: 1, DemandVCores: 1, DemandMemMB: 256,
	}}); err != nil {
		t.Fatalf("SubmitAdHoc: %v", err)
	}
	tickDone := make(chan struct{})
	defer close(tickDone)
	go func() {
		ticker := time.NewTicker(agentSlot)
		defer ticker.Stop()
		for {
			select {
			case <-tickDone:
				return
			case now := <-ticker.C:
				_ = rm2.Tick(now)
			}
		}
	}()
	waitFor("job submitted after restart to complete", func() bool { return allCompleted(rm2.Status()) })

	cancel()
	if err := <-agentErr; !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("agent exit = %v, want context cancellation", err)
	}
}

// refusingRT fails every request without touching the network, counting
// attempts — a deterministic stand-in for "every RM unreachable".
type refusingRT struct{ attempts atomic.Int64 }

func (rt *refusingRT) RoundTrip(*http.Request) (*http.Response, error) {
	rt.attempts.Add(1)
	return nil, errors.New("dial tcp: connection refused")
}

// TestAgentAllRMsUnreachable is the regression test for the spin-hot
// bug: with every configured RM down, the agent used to nest the
// client's 4-attempt retry inside an unbounded registration loop and
// log every attempt. Now each round is a single attempt, the retry
// budget caps the rotation rate at the backoff ceiling once dry, and
// the log gets one line per target plus one ring-down summary — not a
// line per attempt.
func TestAgentAllRMsUnreachable(t *testing.T) {
	rt := &refusingRT{}
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	const window = 500 * time.Millisecond
	maxDelay := 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), window)
	defer cancel()
	err := RunAgent(ctx, NewClient("http://rm-a.invalid", &http.Client{Transport: rt}), AgentConfig{
		NodeID:   "n1",
		Capacity: rmproto.Resources{VCores: 4, MemoryMB: 8 * 1024},
		RMs:      []string{"http://rm-a.invalid", "http://rm-b.invalid"},
		Backoff:  Backoff{Base: 2 * time.Millisecond, Max: maxDelay},
		Budget:   NewRetryBudget(3),
		Logf:     logf,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunAgent = %v, want deadline exceeded (still trying at cutoff)", err)
	}

	// Rotation rate: 3 budgeted fast retries, then one probe per Max.
	// 500ms / 50ms = 10 paced probes; with the fast ones and slack the
	// ceiling is ~20. The old nested-retry loop made 4x the attempts
	// with no floor on the delay.
	attempts := rt.attempts.Load()
	if attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (the agent must keep probing)", attempts)
	}
	if ceiling := int64(3 + int64(window/maxDelay) + 8); attempts > ceiling {
		t.Errorf("attempts = %d, want <= %d: rotation rate not capped by the retry budget", attempts, ceiling)
	}

	// Logging: one line per distinct target plus one ring-down summary.
	mu.Lock()
	defer mu.Unlock()
	if len(lines) > 3 {
		t.Errorf("agent logged %d lines during the outage, want <= 3 (once per transition):\n%s",
			len(lines), strings.Join(lines, "\n"))
	}
	sawSummary := false
	for _, l := range lines {
		if strings.Contains(l, "unreachable") {
			sawSummary = true
		}
	}
	if !sawSummary {
		t.Errorf("no ring-down summary line logged; lines:\n%s", strings.Join(lines, "\n"))
	}
}

// TestAgentKeepsLeasesAcrossTransportFailover proves the agent does not
// abandon in-flight leases when its RM merely stops answering: the work
// keeps executing locally and the completions are re-reported to the RM
// it fails over to, which safely ignores them as stale confirms (it
// never issued those leases). Dropping them instead would waste the
// completed work and force a lease-expiry requeue.
func TestAgentKeepsLeasesAcrossTransportFailover(t *testing.T) {
	// A long slot gives the test a wide window between the agent picking
	// a lease up and confirming it, so stopping RM A inside that window
	// is not a race.
	const agentSlot = 200 * time.Millisecond
	newServer := func() *Server {
		rm, err := New(Config{SlotDur: agentSlot, Scheduler: sched.NewFIFO()})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return rm
	}
	rmA, rmB := newServer(), newServer()
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	stopA := serveRM(t, rmA, lnA)
	defer stopA()
	stopB := serveRM(t, rmB, lnB)
	defer stopB()
	urlA := fmt.Sprintf("http://%s", lnA.Addr())
	urlB := fmt.Sprintf("http://%s", lnB.Addr())

	var mu sync.Mutex
	executing := false
	logf := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		mu.Lock()
		if strings.Contains(line, "executing") {
			executing = true
		}
		mu.Unlock()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	agentErr := make(chan error, 1)
	go func() {
		agentErr <- RunAgent(ctx, NewClient(urlA, nil), AgentConfig{
			NodeID:   "n1",
			Capacity: rmproto.Resources{VCores: 8, MemoryMB: 16 * 1024},
			RMs:      []string{urlA, urlB},
			Backoff:  Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			Logf:     logf,
		})
	}()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	waitFor("agent to register with RM A", func() bool { return rmA.Status().Nodes == 1 })
	if _, err := rmA.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: "held", Tasks: 1, TaskDurSec: 1, DemandVCores: 1, DemandMemMB: 256,
	}}); err != nil {
		t.Fatalf("SubmitAdHoc: %v", err)
	}
	if err := rmA.Tick(time.Now()); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	waitFor("agent to pick the lease up", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return executing
	})

	// RM A vanishes while the agent holds the unconfirmed lease.
	stopA()

	// The agent fails over to RM B, re-registers, and re-reports the
	// completion of a lease B never issued — observed as a stale confirm.
	waitFor("agent to fail over to RM B", func() bool { return rmB.Status().Nodes == 1 })
	waitFor("retained lease to be re-reported to RM B", func() bool {
		return rmB.Status().Faults.StaleConfirms >= 1
	})

	cancel()
	<-agentErr
}

// TestAgentSurvivesEvictionByRM covers the in-process variant: the RM
// stays up but evicts the node for silence; the agent's next heartbeat
// gets unknown_node over HTTP and it re-registers.
func TestAgentSurvivesEvictionByRM(t *testing.T) {
	const agentSlot = 20 * time.Millisecond
	rm, err := New(Config{SlotDur: agentSlot, Scheduler: sched.NewFIFO()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	stop := serveRM(t, rm, ln)
	defer stop()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	agentErr := make(chan error, 1)
	go func() {
		agentErr <- RunAgent(ctx, NewClient(fmt.Sprintf("http://%s", ln.Addr()), nil), AgentConfig{
			NodeID:   "n1",
			Capacity: rmproto.Resources{VCores: 4, MemoryMB: 8 * 1024},
			Backoff:  Backoff{Base: 5 * time.Millisecond, Max: 50 * time.Millisecond},
			Logf:     testLogf(t),
		})
	}()

	deadline := time.Now().Add(15 * time.Second)
	for rm.Status().Nodes != 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	// Simulate the RM's view of a network partition: evict the node
	// directly, as Tick would after NodeExpiry silence.
	rm.mu.Lock()
	rm.evictNodeLocked("n1")
	rm.mu.Unlock()

	for time.Now().Before(deadline) {
		if st := rm.Status(); st.Nodes == 1 {
			cancel()
			<-agentErr
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("agent never re-registered after eviction")
}
