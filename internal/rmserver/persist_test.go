package rmserver

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"

	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/store"
	"flowtime/internal/trace"
)

// newDurableRM opens (or reopens) a state directory and builds an RM on
// it. The store is closed via t.Cleanup only when close is true — crash
// tests deliberately abandon the store without closing it, exactly like
// a SIGKILL would.
func newDurableRM(t *testing.T, dir string, closeStore bool) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Policy: store.SyncAlways})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	if closeStore {
		t.Cleanup(func() { st.Close() })
	}
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), Store: st})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rm, st
}

// runSlots drives n slots of tick+heartbeat against one node, confirming
// every launched quantum on the following heartbeat.
func runSlots(t *testing.T, rm *Server, nodeID string, n int, pending []string) []string {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := rm.Tick(time.Now()); err != nil {
			t.Fatalf("Tick: %v", err)
		}
		resp, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: nodeID, Completed: pending}, time.Now())
		if err != nil {
			t.Fatalf("Heartbeat: %v", err)
		}
		pending = pending[:0]
		for _, q := range resp.Launch {
			pending = append(pending, q.ID)
		}
	}
	return pending
}

func submitBoth(t *testing.T, rm *Server) {
	t.Helper()
	if _, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)}); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	if _, err := rm.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: "a1", Tasks: 2, TaskDurSec: 20, DemandVCores: 1, DemandMemMB: 512,
	}}); err != nil {
		t.Fatalf("SubmitAdHoc: %v", err)
	}
}

// TestCrashRecoveryResumesWork kills an RM mid-workload (the store is
// abandoned un-closed, like SIGKILL) and verifies the successor recovers
// the jobs, requeues the orphaned leases, and runs everything to
// completion with exactly the required volume delivered — no lost and no
// double-counted work.
func TestCrashRecoveryResumesWork(t *testing.T) {
	dir := t.TempDir()

	rm1, _ := newDurableRM(t, dir, false)
	register(t, rm1, "n1", 8, 32768)
	submitBoth(t, rm1)
	// A few slots in, with confirms applied and leases still in flight.
	pending := runSlots(t, rm1, "n1", 3, nil)
	if len(pending) == 0 {
		t.Fatal("expected in-flight leases at crash point")
	}
	crashSlot := rm1.Slot()
	// Crash: rm1 and its store are simply abandoned.

	rm2, _ := newDurableRM(t, dir, true)
	rec := rm2.Recovery()
	if rec == nil || !rec.Performed {
		t.Fatal("no recovery status after restart")
	}
	if rec.RecordsReplayed == 0 {
		t.Fatalf("recovery replayed 0 records: %+v", rec)
	}
	if rec.OrphanLeasesRequeued != len(pending) {
		t.Errorf("orphan leases requeued = %d, want %d", rec.OrphanLeasesRequeued, len(pending))
	}
	if rm2.Slot() != crashSlot {
		t.Errorf("recovered slot = %d, want %d", rm2.Slot(), crashSlot)
	}
	st := rm2.Status()
	if len(st.Jobs) != 3 { // 2 workflow jobs + 1 ad-hoc
		t.Fatalf("recovered %d jobs, want 3", len(st.Jobs))
	}
	if st.OutstandingLeases != 0 {
		t.Errorf("outstanding leases after recovery = %d, want 0 (all orphans requeued)", st.OutstandingLeases)
	}

	// The dead node's confirms must be rejected as stale, and the
	// re-registered node must carry the remaining work to completion.
	if _, err := rm2.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1", Completed: pending}, time.Now()); err == nil {
		t.Error("heartbeat from unregistered node accepted after recovery")
	}
	register(t, rm2, "n1", 8, 32768)
	final := driveToCompletion(t, rm2, []string{"n1"}, 200)
	for _, j := range final.Jobs {
		if j.State != "completed" {
			t.Errorf("job %s not completed after recovery: %s", j.ID, j.State)
		}
		if j.Delivered != j.Total {
			t.Errorf("job %s delivered %+v, want exactly %+v", j.ID, j.Delivered, j.Total)
		}
	}
}

// normalizeStatus zeroes the fields that legitimately differ between two
// recoveries of the same directory (timings and per-process I/O
// counters), leaving all scheduling state for comparison.
func normalizeStatus(st rmproto.StatusResponse) rmproto.StatusResponse {
	if st.Recovery != nil {
		r := *st.Recovery
		r.Micros = 0
		st.Recovery = &r
	}
	st.Durability = nil
	return st
}

// TestRecoveryIdempotent recovers the same state directory twice and
// requires bit-identical status: replaying the same WAL twice must
// converge to the same state, not double-apply anything.
func TestRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	rm1, _ := newDurableRM(t, dir, false)
	register(t, rm1, "n1", 8, 32768)
	submitBoth(t, rm1)
	runSlots(t, rm1, "n1", 4, nil)

	rmA, stA := newDurableRM(t, dir, false)
	a, _ := json.Marshal(normalizeStatus(rmA.Status()))
	stA.Close()

	rmB, _ := newDurableRM(t, dir, true)
	b, _ := json.Marshal(normalizeStatus(rmB.Status()))
	if string(a) != string(b) {
		t.Errorf("two recoveries of the same directory diverge:\n%s\n%s", a, b)
	}
}

// TestRecoveryFromSnapshotPlusTail snapshots mid-run, keeps mutating,
// crashes, and verifies recovery restores snapshot state plus the WAL
// tail written after it.
func TestRecoveryFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	rm1, _ := newDurableRM(t, dir, false)
	register(t, rm1, "n1", 8, 32768)
	submitBoth(t, rm1)
	pending := runSlots(t, rm1, "n1", 2, nil)
	if err := rm1.WriteSnapshot(); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	snapSlot := rm1.Slot()
	runSlots(t, rm1, "n1", 2, pending)
	wantSlot := rm1.Slot()

	rm2, _ := newDurableRM(t, dir, true)
	rec := rm2.Recovery()
	if !rec.FromSnapshot {
		t.Fatalf("recovery did not use the snapshot: %+v", rec)
	}
	if rec.SnapshotSlot != snapSlot {
		t.Errorf("snapshot slot = %d, want %d", rec.SnapshotSlot, snapSlot)
	}
	if rec.RecordsReplayed == 0 {
		t.Error("no WAL tail replayed on top of the snapshot")
	}
	if rm2.Slot() != wantSlot {
		t.Errorf("recovered slot = %d, want %d", rm2.Slot(), wantSlot)
	}
}

// TestRecoveryTruncatesTornTail appends garbage to the WAL (a torn write
// from a crash mid-append) and verifies startup truncates it instead of
// failing, recovering everything before the tear.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	rm1, _ := newDurableRM(t, dir, false)
	register(t, rm1, "n1", 8, 32768)
	submitBoth(t, rm1)
	runSlots(t, rm1, "n1", 3, nil)
	wantSlot := rm1.Slot()

	walFile := ""
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if len(e.Name()) > 4 && e.Name()[:4] == "wal-" {
			walFile = dir + "/" + e.Name()
		}
	}
	if walFile == "" {
		t.Fatal("no WAL file found")
	}
	f, err := os.OpenFile(walFile, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x13, 0x37, 0x00}) // torn partial frame
	f.Close()

	rm2, _ := newDurableRM(t, dir, true)
	rec := rm2.Recovery()
	if !rec.WALTruncated || rec.TruncatedBytes != 3 {
		t.Errorf("torn tail not truncated: %+v", rec)
	}
	if rm2.Slot() != wantSlot {
		t.Errorf("recovered slot = %d, want %d (torn tail must not cost valid records)", rm2.Slot(), wantSlot)
	}
	if len(rm2.Status().Jobs) != 3 {
		t.Errorf("recovered %d jobs, want 3", len(rm2.Status().Jobs))
	}
}

// TestDrainWritesFinalSnapshot verifies a completed drain rotates the
// WAL behind a final snapshot, so a clean shutdown restarts with zero
// records to replay.
func TestDrainWritesFinalSnapshot(t *testing.T) {
	dir := t.TempDir()
	rm1, st1 := newDurableRM(t, dir, false)
	register(t, rm1, "n1", 8, 32768)
	submitBoth(t, rm1)
	pending := runSlots(t, rm1, "n1", 3, nil)
	go func() {
		// Confirm the stragglers so the drain can complete.
		for len(pending) > 0 {
			rm1.Tick(time.Now())
			resp, err := rm1.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1", Completed: pending}, time.Now())
			if err != nil {
				return
			}
			pending = pending[:0]
			for _, q := range resp.Launch {
				pending = append(pending, q.ID)
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp := rm1.Drain(ctx)
	if !resp.Complete {
		t.Fatalf("drain did not complete: %+v", resp)
	}
	st1.Close()

	rm2, _ := newDurableRM(t, dir, true)
	rec := rm2.Recovery()
	if !rec.FromSnapshot {
		t.Fatalf("no final snapshot after drain: %+v", rec)
	}
	if rec.RecordsReplayed != 0 {
		t.Errorf("replayed %d records after a clean drain, want 0", rec.RecordsReplayed)
	}
	if rm2.Status().Draining {
		t.Error("drain flag survived restart; draining is per-process and must not persist")
	}
}

// TestRecoverySlotMismatchRejected: a state directory written under one
// slot duration must refuse to load under another, loudly.
func TestRecoverySlotMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	rm1, st1 := newDurableRM(t, dir, false)
	register(t, rm1, "n1", 8, 32768)
	submitBoth(t, rm1)
	runSlots(t, rm1, "n1", 1, nil)
	if err := rm1.WriteSnapshot(); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	st1.Close()

	st2, err := store.Open(store.Options{Dir: dir, Policy: store.SyncAlways})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	defer st2.Close()
	_, err = New(Config{SlotDur: slotDur * 2, Scheduler: sched.NewFIFO(), Store: st2})
	if err == nil {
		t.Fatal("snapshot written under a different slot duration was accepted")
	}
}

// TestEmptyDirRecovery: starting from a fresh directory performs a
// trivial recovery and reports it.
func TestEmptyDirRecovery(t *testing.T) {
	rm, _ := newDurableRM(t, t.TempDir(), true)
	rec := rm.Recovery()
	if rec == nil || !rec.Performed || rec.FromSnapshot || rec.RecordsReplayed != 0 {
		t.Errorf("empty-dir recovery = %+v, want trivial performed recovery", rec)
	}
	if st := rm.Status(); st.Durability == nil || st.Durability.FsyncPolicy != "always" {
		t.Errorf("status durability = %+v, want fsync policy reported", rm.Status().Durability)
	}
}
