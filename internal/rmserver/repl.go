// Replication: a primary RM ships its WAL (and snapshot generations) to
// one warm-standby follower, which ingests every record durably and
// applies it through the same idempotent replay path recovery uses — so
// the follower's in-memory state tracks the primary's and promotion is
// replay-to-watermark plus re-lease, not a cold rebuild.
//
// Leadership is an epoch number journaled as replicated state. Every
// promotion increments the epoch and journals the increment before the
// new primary grants anything. The epoch doubles as a fencing token:
//
//   - A ship request carries the follower's epoch; a primary that sees
//     a higher epoch knows a promotion happened behind its back and
//     fences itself (rejects all further mutations with not_leader).
//   - A ship response carries the primary's epoch; a follower rejects
//     batches below its own epoch, so a deposed primary's late writes
//     can never reach the replicated stream.
//   - The promoted primary best-effort fences its old primary by URL,
//     so agents that still talk to it get redirected promptly.
//
// Fencing, like drain, is volatile: a fenced primary stays fenced for
// the life of the process and must be restarted (as a replica) to
// rejoin. The epoch itself is durable and replicated; fenced status is
// not, because a restarted ex-primary must not come up believing it
// leads.
package rmserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"flowtime/internal/rmproto"
	"flowtime/internal/store"
)

// Role is an RM's position in a replicated pair.
type Role int

const (
	// RoleFollower ingests the shipped log and serves read-only status.
	RoleFollower Role = iota
	// RolePrimary grants leases and ships its log.
	RolePrimary
)

func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "follower"
}

// replState is the primary's view of its follower, updated by ship
// requests.
type replState struct {
	hasFollower bool
	followerWM  store.Watermark
	lastSeen    time.Time
}

// Role returns the server's current role.
func (s *Server) Role() Role {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.role
}

// Epoch returns the server's current leadership epoch.
func (s *Server) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// leaderCheckLocked rejects mutations on a server that is not the
// acting primary.
func (s *Server) leaderCheckLocked() error {
	if s.role != RolePrimary || s.fenced {
		return &NotLeaderError{Leader: s.leaderURL, Fenced: s.fenced}
	}
	return nil
}

// ShipLog serves one replication batch to a polling follower. The
// request's epoch is the fencing token: a higher epoch than our own
// means a promotion happened without us — we self-fence and reject.
func (s *Server) ShipLog(req rmproto.ShipRequest) (rmproto.ShipResponse, error) {
	s.mu.Lock()
	if s.store == nil {
		s.mu.Unlock()
		return rmproto.ShipResponse{}, errors.New("rmserver: replication requires a state store")
	}
	if req.Epoch > s.epoch {
		s.epoch = req.Epoch
		s.fenced = true
		if req.FollowerURL != "" {
			s.leaderURL = req.FollowerURL
		}
		leader := s.leaderURL
		s.mu.Unlock()
		return rmproto.ShipResponse{}, &NotLeaderError{Leader: leader, Fenced: true}
	}
	if err := s.leaderCheckLocked(); err != nil {
		s.mu.Unlock()
		return rmproto.ShipResponse{}, err
	}
	epoch := s.epoch
	from := store.Watermark{Gen: req.From.Gen, Records: req.From.Records, Bytes: req.From.Bytes}
	s.repl.hasFollower = true
	s.repl.followerWM = from
	s.repl.lastSeen = time.Now()
	s.mu.Unlock()

	batch, err := s.store.ShipFrom(from, req.MaxBytes)
	if err != nil {
		return rmproto.ShipResponse{}, fmt.Errorf("rmserver: ship from %v: %w", from, err)
	}
	return rmproto.ShipResponse{
		Epoch:       epoch,
		SnapInstall: batch.SnapInstall,
		Gen:         batch.Gen,
		Snapshot:    batch.Snapshot,
		FromSeq:     batch.FromSeq,
		Records:     batch.Records,
		Head:        rmproto.ReplWatermark{Gen: batch.Head.Gen, Records: batch.Head.Records, Bytes: batch.Head.Bytes},
	}, nil
}

// IngestShipment applies one shipped batch on a follower: the records
// are made durable in the follower's store first, then applied to the
// in-memory state through the idempotent replay path, so the follower
// stays hot. Batches from an epoch below ours are a deposed primary's
// late writes and are rejected. Returns the number of records applied.
func (s *Server) IngestShipment(resp rmproto.ShipResponse) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.role != RoleFollower {
		return 0, &NotLeaderError{Fenced: false}
	}
	if resp.Epoch < s.epoch {
		return 0, fmt.Errorf("rmserver: rejecting batch from deposed primary (epoch %d < ours %d): %w",
			resp.Epoch, s.epoch, ErrNotLeader)
	}
	if resp.Epoch > s.epoch {
		s.epoch = resp.Epoch
	}

	batch := store.ShipBatch{
		SnapInstall: resp.SnapInstall,
		Gen:         resp.Gen,
		Snapshot:    resp.Snapshot,
		FromSeq:     resp.FromSeq,
		Records:     resp.Records,
	}
	if batch.Empty() {
		return 0, nil
	}
	fresh, _, err := s.store.Ingest(batch)
	if err != nil {
		return 0, err
	}
	if resp.SnapInstall {
		s.resetStateLocked()
		if resp.Snapshot != nil {
			var st snapState
			if err := json.Unmarshal(resp.Snapshot, &st); err != nil {
				return 0, fmt.Errorf("rmserver: decode shipped snapshot: %w", err)
			}
			if err := s.restoreSnapshotLocked(&st); err != nil {
				return 0, fmt.Errorf("rmserver: restore shipped snapshot: %w", err)
			}
		}
	}
	for i, payload := range fresh {
		if err := s.applyRecordLocked(payload); err != nil {
			return i, fmt.Errorf("rmserver: apply shipped record %d/%d: %w", i+1, len(fresh), err)
		}
	}
	return len(fresh), nil
}

// resetStateLocked clears all workload state ahead of a shipped
// snapshot install. The epoch survives — it fences independently of the
// stream position.
func (s *Server) resetStateLocked() {
	s.slot = 0
	s.nextQID = 0
	s.jobs = make(map[string]*rmJob)
	s.wfs = make(map[string]*wfState)
	s.leases = make(map[string]*lease)
	s.faults = rmproto.FaultCounters{}
	s.livePlan = nil
	s.cond.Broadcast()
}

// Promote turns a follower into the primary: the epoch is incremented
// and journaled (fencing every lower epoch out of the stream), every
// recovered lease is requeued — their node bindings belonged to the old
// primary — and the server starts granting. Idempotent: promoting an
// acting primary is a no-op.
func (s *Server) Promote() (rmproto.PromoteResponse, error) {
	s.mu.Lock()
	if s.role == RolePrimary && !s.fenced {
		resp := rmproto.PromoteResponse{Role: s.role.String(), Epoch: s.epoch, Slot: s.slot}
		s.mu.Unlock()
		return resp, nil
	}
	s.epoch++
	eh, _ := s.journalLocked(walRecord{Epoch: &recEpoch{Epoch: s.epoch, Slot: s.slot}})
	qids := s.requeueAllLeasesLocked()
	var rh store.Handle
	if len(qids) > 0 {
		rh, _ = s.journalLocked(walRecord{Requeue: &recRequeue{QIDs: qids, Faults: s.faults}})
	}
	epoch, slot := s.epoch, s.slot
	s.mu.Unlock()

	// The epoch record must be durable before we grant anything under it.
	if err := s.commitRecord(eh); err != nil {
		return rmproto.PromoteResponse{}, err
	}
	if err := s.commitRecord(rh); err != nil {
		return rmproto.PromoteResponse{}, err
	}

	s.mu.Lock()
	s.role = RolePrimary
	s.fenced = false
	s.leaderURL = ""
	s.mu.Unlock()
	return rmproto.PromoteResponse{
		Role:                 RolePrimary.String(),
		Epoch:                epoch,
		Slot:                 slot,
		OrphanLeasesRequeued: len(qids),
	}, nil
}

// Fence tells this server a higher epoch exists: if it was the acting
// primary it stops accepting mutations and redirects to the new leader.
// A fence at or below our own epoch is stale and rejected.
func (s *Server) Fence(req rmproto.FenceRequest) (rmproto.FenceResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.Epoch <= s.epoch {
		return rmproto.FenceResponse{Fenced: false, Epoch: s.epoch},
			fmt.Errorf("rmserver: fence with stale epoch %d (ours is %d)", req.Epoch, s.epoch)
	}
	s.epoch = req.Epoch
	s.fenced = true
	if req.Leader != "" {
		s.leaderURL = req.Leader
	}
	return rmproto.FenceResponse{Fenced: true, Epoch: s.epoch}, nil
}

// ReplicatorConfig parameterizes RunReplicator.
type ReplicatorConfig struct {
	// Primary is the URL of the RM to replicate from; required.
	Primary string
	// Self is this server's own advertised URL, sent with ship requests
	// and used to fence the old primary after a promotion.
	Self string
	// Interval paces the poll loop when caught up (default 100ms).
	Interval time.Duration
	// MaxBytes caps each requested batch (0 = primary's default).
	MaxBytes int
	// HTTPClient performs the ship/fence calls; nil uses
	// http.DefaultClient. ftrm injects a fault-wrapped client here
	// (-chaos-net) so the replication link itself is chaos-testable.
	HTTPClient *http.Client
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// RunReplicator runs the follower's pull loop against the primary: poll
// for the next batch at the follower's durable watermark, ingest, and
// repeat — immediately while catching up, paced by Interval when
// caught up. It returns when ctx is done or the server is promoted; on
// promotion it best-effort fences the old primary so lingering agents
// get redirected. Transient primary failures (it may be down — that is
// the scenario replication exists for) are retried forever.
func (s *Server) RunReplicator(ctx context.Context, cfg ReplicatorConfig) error {
	if s.store == nil {
		return errors.New("rmserver: replication requires a state store")
	}
	if cfg.Primary == "" {
		return errors.New("rmserver: replicator needs a primary URL")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	client := NewClient(cfg.Primary, cfg.HTTPClient)

	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if s.Role() == RolePrimary {
			fctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			_, ferr := client.Fence(fctx, rmproto.FenceRequest{Epoch: s.Epoch(), Leader: cfg.Self})
			cancel()
			if ferr != nil {
				logf("ftrm replicator: promoted; fencing old primary %s failed: %v (it may be dead — that is fine)", cfg.Primary, ferr)
			} else {
				logf("ftrm replicator: promoted; old primary %s fenced", cfg.Primary)
			}
			return nil
		}

		wm := s.store.Watermark()
		resp, err := client.Ship(ctx, rmproto.ShipRequest{
			Epoch:       s.Epoch(),
			From:        rmproto.ReplWatermark{Gen: wm.Gen, Records: wm.Records, Bytes: wm.Bytes},
			MaxBytes:    cfg.MaxBytes,
			FollowerURL: cfg.Self,
		})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			logf("ftrm replicator: ship from %s: %v (will retry)", cfg.Primary, err)
			if !sleepCtx(ctx, interval) {
				return ctx.Err()
			}
			continue
		}
		n, err := s.IngestShipment(resp)
		if err != nil {
			// A mismatch self-heals on the next poll (the watermark is
			// re-read and the primary re-ships, with a snapshot install if
			// the streams diverged); anything else is logged and retried.
			logf("ftrm replicator: ingest: %v", err)
			if !sleepCtx(ctx, interval) {
				return ctx.Err()
			}
			continue
		}
		if n > 0 {
			continue // keep draining the backlog at full speed
		}
		if !sleepCtx(ctx, interval) {
			return ctx.Err()
		}
	}
}

// sleepCtx sleeps d, returning false if ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
