package rmserver

import (
	"context"
	"errors"
	"time"

	"flowtime/internal/rmproto"
)

// AgentConfig parameterizes a node-manager agent (see RunAgent).
type AgentConfig struct {
	// NodeID identifies the node to the RM; required.
	NodeID string
	// Capacity is the node's advertised capacity; required.
	Capacity rmproto.Resources
	// RMs lists candidate RM URLs for a replicated deployment. When a
	// mutation is rejected with not_leader, or the current RM stops
	// answering, the agent follows the leader hint (if any) or rotates to
	// the next URL and re-registers. Empty means the client's base URL is
	// the only RM.
	RMs []string
	// Backoff paces registration attempts and is also installed on the
	// client for idempotent-call retries. The zero value uses defaults.
	Backoff Backoff
	// Budget caps the agent's total retry amplification across
	// registration and heartbeat retries; nil creates a default
	// 10-token budget. When the budget runs dry — every configured RM
	// unreachable — rotation is paced at the backoff cap instead of
	// spinning the ring.
	Budget *RetryBudget
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// rmRotation tracks which RM the agent currently talks to, across the
// configured candidate list. Jumping to a leader hint re-aligns the
// rotation index when the hint is in the list, so a later blind rotate
// starts from the leader, not from a stale position.
type rmRotation struct {
	client *Client
	urls   []string
	idx    int
}

func newRotation(client *Client, urls []string) *rmRotation {
	r := &rmRotation{client: client, urls: urls}
	for i, u := range urls {
		if u == client.Base() {
			r.idx = i
			break
		}
	}
	return r
}

func (r *rmRotation) cur() *Client { return r.client }

// rotate advances to the next candidate RM; a single-RM rotation is a
// no-op. Reports whether the target actually changed.
func (r *rmRotation) rotate() bool {
	if len(r.urls) < 2 {
		return false
	}
	r.idx = (r.idx + 1) % len(r.urls)
	if r.urls[r.idx] == r.client.Base() {
		return false
	}
	r.client = r.client.WithBase(r.urls[r.idx])
	return true
}

// jump retargets to the hinted leader URL; "" or the current target is
// a no-op. Reports whether the target changed.
func (r *rmRotation) jump(url string) bool {
	if url == "" || url == r.client.Base() {
		return false
	}
	r.client = r.client.WithBase(url)
	for i, u := range r.urls {
		if u == url {
			r.idx = i
			break
		}
	}
	return true
}

// redirect follows a not-leader hint when the error carries one,
// otherwise rotates blindly. Reports whether the target changed.
func (r *rmRotation) redirect(err error) bool {
	if r.jump(LeaderHint(err)) {
		return true
	}
	return r.rotate()
}

// RunAgent runs the node-manager control loop used by cmd/ftnode: it
// registers with the RM, heartbeats on the interval the RM dictates,
// "executes" the slot-sized leases it receives by holding them for one
// heartbeat period, and confirms them on the next heartbeat.
//
// The loop is built to survive control-plane faults: registration and
// heartbeats retry transient failures with capped exponential backoff and
// jitter; an unknown-node rejection (RM restarted or evicted us for
// silence) triggers automatic re-registration with the in-flight lease
// set dropped — the RM has already requeued or will expire those quanta,
// and confirming them after eviction would be stale anyway; a not-leader
// rejection (the RM was deposed, or we were pointed at a follower)
// redirects to the leader hint or the next configured RM, again dropping
// the lease set — the new primary requeued our leases at promotion, and
// its quantum-ID sequence may reuse IDs we hold; and an RM that is down
// entirely is retried, rotating through the configured RM list, until
// ctx is cancelled. RunAgent returns only when ctx is done.
func RunAgent(ctx context.Context, client *Client, cfg AgentConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	budget := cfg.Budget
	if budget == nil {
		budget = NewRetryBudget(0)
	}
	// The budget is shared by reference across every WithBase copy the
	// rotation makes, so rotating RMs never resets the amplification cap.
	rot := newRotation(client.WithPolicy(RetryPolicy{Backoff: cfg.Backoff, Budget: budget}), cfg.RMs)

	interval, err := registerUntilAccepted(ctx, rot, cfg, budget, logf)
	if err != nil {
		return err
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	reRegister := func() (bool, error) {
		newInterval, rerr := registerUntilAccepted(ctx, rot, cfg, budget, logf)
		if rerr != nil {
			return false, rerr
		}
		if newInterval != interval {
			interval = newInterval
			ticker.Reset(interval)
		}
		return true, nil
	}

	// Leases received last heartbeat are "executed" during this interval
	// and confirmed on the next one.
	var running []string
	failures := 0   // consecutive non-coded heartbeat failures
	hbDown := false // logged the heartbeat outage already
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			resp, err := rot.cur().Heartbeat(ctx, rmproto.HeartbeatRequest{
				NodeID:    cfg.NodeID,
				Completed: running,
			})
			switch {
			case errors.Is(err, ErrUnknownNode):
				logf("ftnode %s: RM does not know us (restart or eviction); re-registering", cfg.NodeID)
				running = nil // our leases died with the old registration
				failures, hbDown = 0, false
				if _, rerr := reRegister(); rerr != nil {
					return rerr
				}
				continue
			case errors.Is(err, ErrNotLeader):
				rot.redirect(err)
				logf("ftnode %s: RM is not the leader; following to %s and re-registering", cfg.NodeID, rot.cur().Base())
				running = nil // the new primary requeued our leases at promotion
				failures, hbDown = 0, false
				if _, rerr := reRegister(); rerr != nil {
					return rerr
				}
				continue
			case err != nil:
				if ctx.Err() != nil {
					return ctx.Err()
				}
				failures++
				// Two straight failures past the client's own retries means
				// the RM is likely dead, not hiccuping: try the next one.
				// Registering fresh is mandatory — the standby has never
				// heard of us. The lease set is deliberately KEPT: the work
				// is already running on this node and finishing it costs
				// nothing, so the agent keeps executing and re-reports the
				// completions to whichever RM it lands on. A new primary
				// that requeued them counts the reports as stale confirms
				// and ignores them — safe either way, and when the same RM
				// comes back the confirms land and prevent a pointless
				// lease-expiry requeue.
				if failures >= 2 && len(cfg.RMs) > 1 {
					logf("ftnode %s: heartbeat failing (%v); failing over from %s", cfg.NodeID, err, rot.cur().Base())
					rot.rotate()
					failures, hbDown = 0, false
					if _, rerr := reRegister(); rerr != nil {
						return rerr
					}
					continue
				}
				// Log the outage once per transition down, not per tick.
				if !hbDown {
					hbDown = true
					logf("ftnode %s: heartbeat: %v (will keep retrying quietly)", cfg.NodeID, err)
				}
				continue
			}
			if hbDown {
				hbDown = false
				logf("ftnode %s: heartbeat recovered at %s", cfg.NodeID, rot.cur().Base())
			}
			failures = 0
			running = running[:0]
			for _, q := range resp.Launch {
				running = append(running, q.ID)
			}
			if len(running) > 0 {
				logf("ftnode %s: executing %d leases", cfg.NodeID, len(running))
			}
		}
	}
}

// registerUntilAccepted registers with the RM, retrying transient
// failures indefinitely (the RM may be restarting, or a failover may be
// in progress) and rotating through the configured RM list so it finds
// whichever replica currently leads; it gives up only on ctx
// cancellation or a permanent rejection (e.g. invalid capacity). It
// returns the heartbeat interval the RM dictated.
//
// Each round makes exactly ONE attempt per target (the loop does its
// own pacing; nesting the client's retries here would multiply offered
// load at the worst moment), spends the shared retry budget, and when
// the budget runs dry — every configured RM down — paces further
// rotation at the backoff cap instead of spinning the ring. Logging is
// once per failing target and once when the whole ring has been found
// down, not once per attempt: an agent riding out an hour-long outage
// produces a handful of lines, not thousands.
func registerUntilAccepted(ctx context.Context, rot *rmRotation, cfg AgentConfig, budget *RetryBudget, logf func(string, ...any)) (time.Duration, error) {
	b := cfg.Backoff.withDefaults()
	var reg rmproto.RegisterNodeResponse
	seenDown := make(map[string]bool) // targets already logged this outage
	ringDown := false                 // logged the whole-ring summary
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		var err error
		reg, err = rot.cur().bare().RegisterNode(ctx, rmproto.RegisterNodeRequest{
			NodeID:   cfg.NodeID,
			Capacity: cfg.Capacity,
		})
		if err == nil {
			break
		}
		if !Retryable(err) {
			return 0, err
		}
		base := rot.cur().Base()
		if !seenDown[base] {
			seenDown[base] = true
			logf("ftnode %s: cannot register at %s: %v (rotating)", cfg.NodeID, base, err)
		} else if !ringDown {
			// Second sighting of a target we already logged: the whole
			// ring has been tried and found down. Say so once, then stay
			// quiet until something changes.
			ringDown = true
			logf("ftnode %s: all %d RMs unreachable; pacing retries at %v", cfg.NodeID, max(len(cfg.RMs), 1), b.Max)
		}
		// not_leader carries a hint to jump to; anything else
		// round-robins. Either way the next attempt asks a different RM.
		rot.redirect(err)
		d := b.Delay(attempt)
		if budget != nil && !budget.Spend() {
			// Budget dry: every retry now waits the full cap. This is the
			// rotation-rate limiter — a dead ring is probed at most once
			// per Max per agent, not hammered.
			d = b.Max
		}
		if hint := RetryAfterHint(err); hint > d {
			d = hint
		}
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return 0, ctx.Err()
		case <-t.C:
		}
	}
	if budget != nil {
		budget.Deposit()
	}
	interval := time.Duration(reg.HeartbeatMs) * time.Millisecond
	if interval <= 0 {
		interval = rmproto.DefaultSlot
	}
	logf("ftnode %s: registered with %s (%d vcores, %d MB), heartbeating every %v",
		cfg.NodeID, rot.cur().Base(), cfg.Capacity.VCores, cfg.Capacity.MemoryMB, interval)
	return interval, nil
}
