package rmserver

import (
	"context"
	"errors"
	"time"

	"flowtime/internal/rmproto"
)

// AgentConfig parameterizes a node-manager agent (see RunAgent).
type AgentConfig struct {
	// NodeID identifies the node to the RM; required.
	NodeID string
	// Capacity is the node's advertised capacity; required.
	Capacity rmproto.Resources
	// Backoff paces registration attempts and is also installed on the
	// client for idempotent-call retries. The zero value uses defaults.
	Backoff Backoff
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

// RunAgent runs the node-manager control loop used by cmd/ftnode: it
// registers with the RM, heartbeats on the interval the RM dictates,
// "executes" the slot-sized leases it receives by holding them for one
// heartbeat period, and confirms them on the next heartbeat.
//
// The loop is built to survive control-plane faults: registration and
// heartbeats retry transient failures with capped exponential backoff and
// jitter, an unknown-node rejection (RM restarted or evicted us for
// silence) triggers automatic re-registration with the in-flight lease
// set dropped — the RM has already requeued or will expire those quanta,
// and confirming them after eviction would be stale anyway — and an RM
// that is down entirely is simply retried forever until ctx is
// cancelled. RunAgent returns only when ctx is done.
func RunAgent(ctx context.Context, client *Client, cfg AgentConfig) error {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client = client.WithRetry(cfg.Backoff)

	interval, err := registerUntilAccepted(ctx, client, cfg, logf)
	if err != nil {
		return err
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()

	// Leases received last heartbeat are "executed" during this interval
	// and confirmed on the next one.
	var running []string
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			resp, err := client.Heartbeat(ctx, rmproto.HeartbeatRequest{
				NodeID:    cfg.NodeID,
				Completed: running,
			})
			switch {
			case errors.Is(err, ErrUnknownNode):
				logf("ftnode %s: RM does not know us (restart or eviction); re-registering", cfg.NodeID)
				running = nil // our leases died with the old registration
				newInterval, rerr := registerUntilAccepted(ctx, client, cfg, logf)
				if rerr != nil {
					return rerr
				}
				if newInterval != interval {
					interval = newInterval
					ticker.Reset(interval)
				}
				continue
			case err != nil:
				if ctx.Err() != nil {
					return ctx.Err()
				}
				logf("ftnode %s: heartbeat: %v (will retry)", cfg.NodeID, err)
				continue
			}
			running = running[:0]
			for _, q := range resp.Launch {
				running = append(running, q.ID)
			}
			if len(running) > 0 {
				logf("ftnode %s: executing %d leases", cfg.NodeID, len(running))
			}
		}
	}
}

// registerUntilAccepted registers with the RM, retrying transient
// failures indefinitely (the RM may be restarting); it gives up only on
// ctx cancellation or a permanent rejection (e.g. invalid capacity).
// It returns the heartbeat interval the RM dictated.
func registerUntilAccepted(ctx context.Context, client *Client, cfg AgentConfig, logf func(string, ...any)) (time.Duration, error) {
	b := cfg.Backoff.withDefaults()
	b.MaxAttempts = -1 // outlive any RM outage
	var reg rmproto.RegisterNodeResponse
	attempt := 0
	err := Retry(ctx, b, func() error {
		var err error
		reg, err = client.RegisterNode(ctx, rmproto.RegisterNodeRequest{
			NodeID:   cfg.NodeID,
			Capacity: cfg.Capacity,
		})
		if err != nil && Retryable(err) {
			attempt++
			logf("ftnode %s: register attempt %d: %v (will retry)", cfg.NodeID, attempt, err)
		}
		return err
	})
	if err != nil {
		return 0, err
	}
	interval := time.Duration(reg.HeartbeatMs) * time.Millisecond
	if interval <= 0 {
		interval = rmproto.DefaultSlot
	}
	logf("ftnode %s: registered (%d vcores, %d MB), heartbeating every %v",
		cfg.NodeID, cfg.Capacity.VCores, cfg.Capacity.MemoryMB, interval)
	return interval, nil
}
