package rmserver

// Overload protection for the RM's HTTP front door. The RM is the
// single point every agent heartbeats through and every client submits
// to; under a demand spike or a recovering partition the arrival rate
// can exceed what the scheduler core sustains, and an unbounded server
// converts that into unbounded latency for everyone — including the
// confirm traffic that keeps leases from being falsely reclaimed.
//
// The admission layer bounds the damage with three mechanisms:
//
//   - per-class concurrency limits: submissions and confirm-path calls
//     (heartbeats, registrations) draw from separate slot pools, so a
//     submission flood cannot starve the heartbeat path;
//   - bounded queues with deadline-aware rejection: a request that
//     cannot get a slot waits at most MaxWait behind at most QueueDepth
//     peers, then is shed with a coded `overloaded` error and a
//     Retry-After hint instead of holding a connection open forever;
//   - priority shedding: when the confirm class itself has waiters,
//     new submissions are shed immediately ("priority") — confirms and
//     heartbeats stay ahead of submissions, because losing a confirm
//     costs a lease-expiry requeue while losing a submission costs only
//     a client retry.
//
// Shedding is applied at the HTTP handler layer, not inside Server
// methods, so in-process callers (tests, embedded sims) are never
// throttled.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"flowtime/internal/rmproto"
)

// OverloadConfig bounds the RM's admission queues. The zero value of
// each field picks the documented default; attach a *OverloadConfig to
// Config.Overload to enable protection (nil disables it entirely).
type OverloadConfig struct {
	// SubmitConcurrency caps in-flight submission requests (default 16).
	SubmitConcurrency int
	// ConfirmConcurrency caps in-flight heartbeat/register requests
	// (default 64). It is deliberately the larger pool: the confirm path
	// is what keeps leases alive.
	ConfirmConcurrency int
	// QueueDepth caps how many requests may wait for a slot per class
	// (default 64). Arrivals beyond it are shed immediately with reason
	// "queue_full".
	QueueDepth int
	// MaxWait bounds how long a queued request waits for a slot before
	// being shed with reason "queue_timeout" (default 200ms). This is
	// the deadline-aware part: a request that would wait longer than
	// the client's own retry timer is better shed now, with a hint,
	// than served late.
	MaxWait time.Duration
	// RetryAfter is the backoff hint handed to shed clients
	// (default 500ms).
	RetryAfter time.Duration
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.SubmitConcurrency <= 0 {
		c.SubmitConcurrency = 16
	}
	if c.ConfirmConcurrency <= 0 {
		c.ConfirmConcurrency = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 200 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	return c
}

// Admission classes. Submissions and confirm-path traffic are isolated
// so overload in one cannot queue behind the other.
const (
	classSubmit  = "submit"
	classConfirm = "confirm"
)

// classLimiter is one class's slot pool: a buffered channel holding the
// concurrency tokens plus a waiter count implementing the bounded queue.
type classLimiter struct {
	slots    chan struct{}
	waiters  atomic.Int64
	inflight atomic.Int64
}

func newClassLimiter(concurrency int) *classLimiter {
	l := &classLimiter{slots: make(chan struct{}, concurrency)}
	for i := 0; i < concurrency; i++ {
		l.slots <- struct{}{}
	}
	return l
}

// admission is the server's overload gate.
type admission struct {
	cfg     OverloadConfig
	submit  *classLimiter
	confirm *classLimiter

	shedTotal atomic.Int64
	mu        sync.Mutex
	shedBy    map[string]int64
}

func newAdmission(cfg OverloadConfig) *admission {
	cfg = cfg.withDefaults()
	return &admission{
		cfg:     cfg,
		submit:  newClassLimiter(cfg.SubmitConcurrency),
		confirm: newClassLimiter(cfg.ConfirmConcurrency),
		shedBy:  make(map[string]int64),
	}
}

func (a *admission) limiter(class string) *classLimiter {
	if class == classSubmit {
		return a.submit
	}
	return a.confirm
}

func (a *admission) shed(reason string) error {
	a.shedTotal.Add(1)
	a.mu.Lock()
	a.shedBy[reason]++
	a.mu.Unlock()
	return &OverloadedError{Reason: reason, RetryAfter: a.cfg.RetryAfter}
}

// acquire admits one request of the given class, returning the release
// func, or sheds it with an *OverloadedError. ctx cancellation while
// queued counts as a shed (the client gave up; the slot is not needed).
func (a *admission) acquire(ctx context.Context, class string) (func(), error) {
	l := a.limiter(class)

	// Priority shedding: a submission arriving while the confirm class
	// already has queued waiters is sacrificed outright. Serving it
	// would burn scheduler time the confirm path is visibly short of.
	if class == classSubmit && a.confirm.waiters.Load() > 0 {
		return nil, a.shed("priority")
	}

	// Fast path: a free slot admits without queueing.
	select {
	case <-l.slots:
		l.inflight.Add(1)
		return func() { l.inflight.Add(-1); l.slots <- struct{}{} }, nil
	default:
	}

	// Bounded queue: beyond QueueDepth waiters the request is shed
	// immediately — an unbounded queue is just latency with extra steps.
	if l.waiters.Add(1) > int64(a.cfg.QueueDepth) {
		l.waiters.Add(-1)
		return nil, a.shed("queue_full")
	}
	defer l.waiters.Add(-1)

	t := time.NewTimer(a.cfg.MaxWait)
	defer t.Stop()
	select {
	case <-l.slots:
		l.inflight.Add(1)
		return func() { l.inflight.Add(-1); l.slots <- struct{}{} }, nil
	case <-t.C:
		return nil, a.shed("queue_timeout")
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// status snapshots the shed counters for /v1/status and /metrics.
func (a *admission) status() *rmproto.OverloadStatus {
	a.mu.Lock()
	by := make(map[string]int64, len(a.shedBy))
	for k, v := range a.shedBy {
		by[k] = v
	}
	a.mu.Unlock()
	return &rmproto.OverloadStatus{
		ShedTotal:       a.shedTotal.Load(),
		ShedByReason:    by,
		QueueDepth:      a.submit.waiters.Load() + a.confirm.waiters.Load(),
		SubmitInflight:  a.submit.inflight.Load(),
		ConfirmInflight: a.confirm.inflight.Load(),
		RetryAfterMs:    a.cfg.RetryAfter.Milliseconds(),
	}
}
