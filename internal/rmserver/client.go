package rmserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"flowtime/internal/rmproto"
)

// Client is an HTTP client for the resource manager's API, used by the
// node-manager agent (cmd/ftnode), the submission tool (cmd/ftsubmit) and
// the integration tests.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the RM at base (e.g.
// "http://localhost:8030"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// RegisterNode announces a node manager.
func (c *Client) RegisterNode(ctx context.Context, req rmproto.RegisterNodeRequest) (rmproto.RegisterNodeResponse, error) {
	var resp rmproto.RegisterNodeResponse
	err := c.post(ctx, rmproto.PathRegister, req, &resp)
	return resp, err
}

// Heartbeat reports completions and fetches work.
func (c *Client) Heartbeat(ctx context.Context, req rmproto.HeartbeatRequest) (rmproto.HeartbeatResponse, error) {
	var resp rmproto.HeartbeatResponse
	err := c.post(ctx, rmproto.PathHeartbeat, req, &resp)
	return resp, err
}

// SubmitWorkflow submits a deadline workflow.
func (c *Client) SubmitWorkflow(ctx context.Context, req rmproto.SubmitWorkflowRequest) (rmproto.SubmitResponse, error) {
	var resp rmproto.SubmitResponse
	err := c.post(ctx, rmproto.PathWorkflows, req, &resp)
	return resp, err
}

// SubmitAdHoc submits an ad-hoc job.
func (c *Client) SubmitAdHoc(ctx context.Context, req rmproto.SubmitAdHocRequest) (rmproto.SubmitResponse, error) {
	var resp rmproto.SubmitResponse
	err := c.post(ctx, rmproto.PathAdHoc, req, &resp)
	return resp, err
}

// Tick advances the RM one slot (manual-tick deployments and tests).
func (c *Client) Tick(ctx context.Context) error {
	return c.post(ctx, rmproto.PathTick, struct{}{}, &struct {
		Slot int64 `json:"slot"`
	}{})
}

// Status fetches the cluster snapshot.
func (c *Client) Status(ctx context.Context) (rmproto.StatusResponse, error) {
	var resp rmproto.StatusResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+rmproto.PathStatus, nil)
	if err != nil {
		return resp, fmt.Errorf("rmserver: client: %w", err)
	}
	return resp, c.do(req, &resp)
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("rmserver: client: marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("rmserver: client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("rmserver: client: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e rmproto.Error
		if derr := json.NewDecoder(resp.Body).Decode(&e); derr == nil && e.Message != "" {
			return fmt.Errorf("rmserver: %s: %s", resp.Status, e.Message)
		}
		return fmt.Errorf("rmserver: unexpected status %s", resp.Status)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("rmserver: client: decode: %w", err)
	}
	return nil
}
