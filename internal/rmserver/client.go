package rmserver

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"flowtime/internal/rmproto"
)

// Client is an HTTP client for the resource manager's API, used by the
// node-manager agent (cmd/ftnode), the submission tool (cmd/ftsubmit) and
// the integration tests.
type Client struct {
	base   string
	hc     *http.Client
	retry  *Backoff     // nil = no retries
	policy *RetryPolicy // takes precedence over retry when non-nil
}

// NewClient returns a client for the RM at base (e.g.
// "http://localhost:8030"). A nil httpClient uses http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// WithRetry returns a copy of the client that retries idempotent calls
// (RegisterNode, Heartbeat, Status) with the given backoff on transient
// failures — connection errors and 5xx responses. Permanent rejections
// (4xx, including unknown-node) surface immediately. Non-idempotent
// calls (Tick, submissions) are never retried.
func (c *Client) WithRetry(b Backoff) *Client {
	cc := *c
	cc.retry = &b
	return &cc
}

// WithPolicy returns a copy of the client whose idempotent calls run
// under the full resilience stack — backoff with Retry-After honor,
// shared retry budget, circuit breaker. The budget and breaker inside
// p are shared by reference, so copies made with WithBase keep feeding
// the same bucket and circuit (an agent rotating RMs keeps one budget).
func (c *Client) WithPolicy(p RetryPolicy) *Client {
	cc := *c
	cc.policy = &p
	return &cc
}

// bare returns a copy of the client that performs exactly one attempt
// per call — no backoff, no policy. Loops that do their own pacing
// (registerUntilAccepted) use it to avoid nested-retry amplification:
// an outer loop wrapping a 4-attempt client multiplies offered load by
// 4 exactly when the RM is least able to take it.
func (c *Client) bare() *Client {
	cc := *c
	cc.retry, cc.policy = nil, nil
	return &cc
}

// WithBase returns a copy of the client pointed at a different RM URL,
// keeping the HTTP client and retry policy. Agents use it to follow a
// leader hint or rotate through their RM list.
func (c *Client) WithBase(base string) *Client {
	cc := *c
	cc.base = base
	return &cc
}

// Base returns the RM URL this client talks to.
func (c *Client) Base() string { return c.base }

func (c *Client) retrying(ctx context.Context, op func() error) error {
	if c.policy != nil {
		return c.policy.Do(ctx, op)
	}
	if c.retry == nil {
		return op()
	}
	return Retry(ctx, *c.retry, op)
}

// RegisterNode announces a node manager.
func (c *Client) RegisterNode(ctx context.Context, req rmproto.RegisterNodeRequest) (rmproto.RegisterNodeResponse, error) {
	var resp rmproto.RegisterNodeResponse
	err := c.retrying(ctx, func() error {
		return c.post(ctx, rmproto.PathRegister, req, &resp)
	})
	return resp, err
}

// Heartbeat reports completions and fetches work. Heartbeats are
// idempotent at the system level: if a retry re-reports a completion the
// RM already confirmed, the duplicate is counted as stale and ignored.
func (c *Client) Heartbeat(ctx context.Context, req rmproto.HeartbeatRequest) (rmproto.HeartbeatResponse, error) {
	var resp rmproto.HeartbeatResponse
	err := c.retrying(ctx, func() error {
		return c.post(ctx, rmproto.PathHeartbeat, req, &resp)
	})
	return resp, err
}

// SubmitWorkflow submits a deadline workflow.
func (c *Client) SubmitWorkflow(ctx context.Context, req rmproto.SubmitWorkflowRequest) (rmproto.SubmitResponse, error) {
	var resp rmproto.SubmitResponse
	err := c.post(ctx, rmproto.PathWorkflows, req, &resp)
	return resp, err
}

// SubmitAdHoc submits an ad-hoc job.
func (c *Client) SubmitAdHoc(ctx context.Context, req rmproto.SubmitAdHocRequest) (rmproto.SubmitResponse, error) {
	var resp rmproto.SubmitResponse
	err := c.post(ctx, rmproto.PathAdHoc, req, &resp)
	return resp, err
}

// Tick advances the RM one slot (manual-tick deployments and tests).
func (c *Client) Tick(ctx context.Context) error {
	return c.post(ctx, rmproto.PathTick, struct{}{}, &struct {
		Slot int64 `json:"slot"`
	}{})
}

// Drain asks the RM to stop issuing new leases. With req.WaitMs > 0 the
// RM blocks up to that long for outstanding leases to confirm or expire.
func (c *Client) Drain(ctx context.Context, req rmproto.DrainRequest) (rmproto.DrainResponse, error) {
	var resp rmproto.DrainResponse
	err := c.post(ctx, rmproto.PathDrain, req, &resp)
	return resp, err
}

// Status fetches the cluster snapshot.
func (c *Client) Status(ctx context.Context) (rmproto.StatusResponse, error) {
	var resp rmproto.StatusResponse
	err := c.retrying(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+rmproto.PathStatus, nil)
		if err != nil {
			return fmt.Errorf("rmserver: client: %w", err)
		}
		return c.do(req, &resp)
	})
	return resp, err
}

// Ship requests one replication batch from a primary (follower pull
// loop; see RunReplicator). Not retried — the loop is its own retry.
func (c *Client) Ship(ctx context.Context, req rmproto.ShipRequest) (rmproto.ShipResponse, error) {
	var resp rmproto.ShipResponse
	err := c.post(ctx, rmproto.PathShip, req, &resp)
	return resp, err
}

// Promote asks a follower to take over as primary.
func (c *Client) Promote(ctx context.Context) (rmproto.PromoteResponse, error) {
	var resp rmproto.PromoteResponse
	err := c.post(ctx, rmproto.PathPromote, rmproto.PromoteRequest{}, &resp)
	return resp, err
}

// Fence tells an RM that a higher leadership epoch exists, deposing it
// if it still believes it is the primary.
func (c *Client) Fence(ctx context.Context, req rmproto.FenceRequest) (rmproto.FenceResponse, error) {
	var resp rmproto.FenceResponse
	err := c.post(ctx, rmproto.PathFence, req, &resp)
	return resp, err
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("rmserver: client: marshal: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(buf))
	if err != nil {
		return fmt.Errorf("rmserver: client: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("rmserver: client: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var e rmproto.Error
		_ = json.NewDecoder(resp.Body).Decode(&e)
		se := &StatusError{StatusCode: resp.StatusCode, Code: e.Code, Message: e.Message, Leader: e.Leader}
		// The Retry-After header (whole seconds, per RFC 9110) and the
		// body's retry_after_ms carry the same hint at different
		// resolutions; prefer the finer-grained body when present.
		if e.RetryAfterMs > 0 {
			se.RetryAfter = time.Duration(e.RetryAfterMs) * time.Millisecond
		} else if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
				se.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return se
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("rmserver: client: decode: %w", err)
	}
	return nil
}
