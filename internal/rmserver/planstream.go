// Plan-diff streaming: when the configured scheduler implements
// sched.PlanStreamer, the RM maintains a durable *live plan* — the
// scheduler's multi-slot plan, reconstructed purely from the diffs the
// scheduler emits. Each diff is applied transactionally (plan.Apply is
// pure: the base plan is never mutated, a failed apply changes nothing)
// and journaled as one WAL record through the same log every other
// mutation uses, so the plan recovers after a crash and ships to the
// warm-standby follower with no extra machinery.
//
// Revision fencing: diffs chain BaseRev -> NewRev. When the chain breaks
// — typically the first replan after a recovery, when the restarted
// scheduler's revision counter restarts at zero while the recovered
// live plan is at the pre-crash revision — the RM refuses the diff and
// falls back to a wholesale *rebase*: it journals the scheduler's full
// live plan and counts the incident in FaultCounters.PlanRebases. A
// rebase is the loud, journaled escape hatch; a silently half-applied
// diff is impossible by construction.
//
// The live plan also feeds the lock-free ad-hoc admission gate
// (internal/adhoc): after every plan change the RM republishes the
// plan's leftover capacity profile to the queue, so ad-hoc submissions
// are admitted or rejected in O(window) against real slack without
// waking the LP.
package rmserver

import (
	"fmt"
	"sort"

	"flowtime/internal/plan"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/store"
)

// defaultGateWindow bounds the leftover profile published to the ad-hoc
// gate when the live plan is empty (no deadline jobs planned): the whole
// cluster is slack, but the queue still needs a finite window to charge.
const defaultGateWindow = 64

// livePlanLocked returns the server's live plan, never nil.
func (s *Server) livePlanLocked() *plan.Plan {
	if s.livePlan == nil {
		s.livePlan = plan.Empty()
	}
	return s.livePlan
}

// streamPlansLocked drains the scheduler's pending plan diffs, applies
// each to the live plan, and journals it. On a broken revision chain it
// rebases wholesale from the scheduler's live plan instead (see the
// package comment above). last is advanced to the newest journaled
// handle so the caller's single commit covers every appended record.
func (s *Server) streamPlansLocked(last *store.Handle) error {
	ps, ok := s.cfg.Scheduler.(sched.PlanStreamer)
	if !ok {
		return nil
	}
	var firstErr error
	note := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, d := range ps.TakePlanDiffs() {
		next, err := plan.Apply(s.livePlanLocked(), d)
		if err != nil {
			// Chain broken (stale base after a recovery, or a malformed
			// diff): refuse it loudly and rebase from the authoritative
			// plan. LivePlan already includes every pending diff, so the
			// rest of this batch is subsumed.
			note(s.rebasePlanLocked(ps.LivePlan(), last))
			break
		}
		s.livePlan = next
		s.faults.PlanDiffsApplied++
		payload, err := plan.EncodeDiff(d)
		if err != nil {
			note(fmt.Errorf("rmserver: encode plan diff %d->%d: %w", d.BaseRev, d.NewRev, err))
			continue
		}
		h, jerr := s.journalLocked(walRecord{PlanDiff: &recPlanDiff{Diff: payload}})
		if jerr != nil {
			note(fmt.Errorf("rmserver: wal append: %w", jerr))
			continue
		}
		if s.store != nil {
			*last = h
		}
	}
	s.rebaseAdHocLocked()
	return firstErr
}

// rebasePlanLocked replaces the live plan wholesale with the
// scheduler's, journaling the full plan as one record whose commit
// rides the caller's handle.
func (s *Server) rebasePlanLocked(lp *plan.Plan, last *store.Handle) error {
	s.livePlan = lp
	s.faults.PlanRebases++
	payload, err := plan.EncodePlan(lp)
	if err != nil {
		return fmt.Errorf("rmserver: encode plan rebase rev %d: %w", lp.Rev, err)
	}
	h, jerr := s.journalLocked(walRecord{PlanRebase: &recPlanRebase{Plan: payload}})
	if jerr != nil {
		return fmt.Errorf("rmserver: wal append: %w", jerr)
	}
	if s.store != nil {
		*last = h
	}
	return nil
}

// applyPlanDiffRecordLocked replays one journaled plan diff. Replay is
// idempotent — a diff at or below the live revision is skipped — but a
// revision gap is corrupt history and fails loudly rather than leaving
// a plan that silently diverges from what the primary journaled.
func (s *Server) applyPlanDiffRecordLocked(r *recPlanDiff) error {
	d, err := plan.DecodeDiff(r.Diff)
	if err != nil {
		return fmt.Errorf("plan diff: %w", err)
	}
	base := s.livePlanLocked()
	if d.NewRev <= base.Rev {
		return nil // idempotent replay
	}
	if d.BaseRev != base.Rev {
		return fmt.Errorf("plan diff %d->%d does not chain to live revision %d", d.BaseRev, d.NewRev, base.Rev)
	}
	next, err := plan.Apply(base, d)
	if err != nil {
		return fmt.Errorf("plan diff %d->%d: %w", d.BaseRev, d.NewRev, err)
	}
	s.livePlan = next
	s.faults.PlanDiffsApplied++
	return nil
}

// applyPlanRebaseRecordLocked replays one journaled wholesale rebase.
func (s *Server) applyPlanRebaseRecordLocked(r *recPlanRebase) error {
	p, err := plan.DecodePlan(r.Plan)
	if err != nil {
		return fmt.Errorf("plan rebase: %w", err)
	}
	s.livePlan = p
	s.faults.PlanRebases++
	return nil
}

// rebaseAdHocLocked republishes the live plan's leftover profile to the
// ad-hoc admission queue. A no-op without the gate, and when the queue
// already holds the current revision (the plan did not change).
func (s *Server) rebaseAdHocLocked() {
	if s.adhocQ == nil {
		return
	}
	lp := s.livePlanLocked()
	if lp.Rev == 0 || s.adhocQ.Rev() == lp.Rev {
		return
	}
	from, n := lp.From, lp.NSlots
	if n == 0 {
		// Empty plan (no deadline jobs): the whole cluster is leftover
		// over a default window anchored at the current slot.
		from, n = s.slot, defaultGateWindow
		if s.cfg.Horizon < n {
			n = s.cfg.Horizon
		}
	}
	drain := s.adhocQ.Rebase(lp.Rev, from, s.adhocLeftoverLocked(lp, from, n))
	// Hand the retired epoch's admitted volume back to the scheduler as
	// capacity reservations (sched.AdHocFolder): the next batched replan
	// folds it into its LP as shaved load-row capacities instead of the
	// plan double-booking capacity the gate already promised away.
	if folder, ok := s.cfg.Scheduler.(sched.AdHocFolder); ok {
		folder.FoldAdHocDrain(drain.From, drain.Consumed)
	}
}

// adhocLeftoverLocked computes the per-slot free capacity the ad-hoc
// gate may admit against over [from, from+n): cluster capacity minus the
// live plan's allocations minus the undelivered volume of already-
// admitted ad-hoc jobs. The plan covers only deadline jobs — admitted
// ad-hoc work holds no slots in it — so each live ad-hoc job's remaining
// demand is water-filled front-to-back (honoring its parallel cap) and
// subtracted, ensuring later admissions cannot double-book capacity an
// earlier admission still needs. Demand that fits nowhere in the window
// is simply unplaced: the profile is already exhausted there.
func (s *Server) adhocLeftoverLocked(lp *plan.Plan, from, n int64) []resource.Vector {
	capacity := s.totalCapacityLocked()
	leftover := make([]resource.Vector, n)
	for i := range leftover {
		leftover[i] = capacity
	}
	for id := range lp.Jobs {
		for i := int64(0); i < n; i++ {
			leftover[i] = leftover[i].SubClamped(lp.AllocAt(id, from+i))
		}
	}
	var adhocIDs []string
	for id, j := range s.jobs {
		if j.kind == sched.AdHocJob && !j.done {
			adhocIDs = append(adhocIDs, id)
		}
	}
	sort.Strings(adhocIDs)
	for _, id := range adhocIDs {
		j := s.jobs[id]
		rem := j.total.SubClamped(j.delivered)
		for ki := range resource.Kinds() {
			need := rem[ki]
			perSlot := j.parallelCap[ki]
			for i := int64(0); i < n && need > 0; i++ {
				take := need
				if perSlot > 0 && take > perSlot {
					take = perSlot
				}
				if free := leftover[i][ki]; take > free {
					take = free
				}
				leftover[i][ki] -= take
				need -= take
			}
		}
	}
	return leftover
}
