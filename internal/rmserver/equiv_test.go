package rmserver

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
)

// verifyEquiv runs the recovery-equivalence oracle against a fresh
// scratch directory and fails the test on any divergence.
func verifyEquiv(t *testing.T, rm *Server, tag string) {
	t.Helper()
	scratch := filepath.Join(t.TempDir(), "copy")
	if err := rm.VerifyRecoveryEquivalence(scratch); err != nil {
		t.Fatalf("%s: %v", tag, err)
	}
	if _, err := os.Stat(scratch); !os.IsNotExist(err) {
		t.Errorf("%s: scratch copy not cleaned up after success", tag)
	}
}

// TestRecoveryEquivalenceAcrossLifecycle checks the oracle at every
// interesting point of an RM's life: empty, after admission, with
// leases in flight (the mid-run SIGKILL point), after a snapshot
// rotation, and after all work completed.
func TestRecoveryEquivalenceAcrossLifecycle(t *testing.T) {
	dir := t.TempDir()
	rm, _ := newDurableRM(t, dir, true)
	verifyEquiv(t, rm, "empty")

	register(t, rm, "n1", 8, 32768)
	submitBoth(t, rm)
	verifyEquiv(t, rm, "after admission")

	pending := runSlots(t, rm, "n1", 3, nil)
	if len(pending) == 0 {
		t.Fatal("expected in-flight leases at the mid-run check")
	}
	verifyEquiv(t, rm, "mid-run with in-flight leases")

	if err := rm.WriteSnapshot(); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	verifyEquiv(t, rm, "after snapshot rotation")

	runSlots(t, rm, "n1", 2, pending)
	verifyEquiv(t, rm, "after confirms")

	driveToCompletion(t, rm, []string{"n1"}, 200)
	verifyEquiv(t, rm, "after completion")
}

// TestRecoveryEquivalenceConcurrent hammers the RM with ticks,
// heartbeats, and submissions while the equivalence oracle runs
// concurrently — the -race chaos configuration the acceptance criteria
// call for. Every verification must pass against whatever consistent
// instant it captures.
func TestRecoveryEquivalenceConcurrent(t *testing.T) {
	dir := t.TempDir()
	rm, _ := newDurableRM(t, dir, true)
	register(t, rm, "n1", 8, 32768)
	submitBoth(t, rm)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var pending []string
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := rm.Tick(time.Now()); err != nil {
				t.Errorf("Tick: %v", err)
				return
			}
			resp, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1", Completed: pending}, time.Now())
			if err != nil {
				t.Errorf("Heartbeat: %v", err)
				return
			}
			pending = pending[:0]
			for _, q := range resp.Launch {
				pending = append(pending, q.ID)
			}
			if i%7 == 0 {
				if err := rm.WriteSnapshot(); err != nil {
					t.Errorf("WriteSnapshot: %v", err)
					return
				}
			}
		}
	}()

	base := t.TempDir()
	for i := 0; i < 8; i++ {
		scratch := filepath.Join(base, fmt.Sprintf("copy-%d", i))
		if err := rm.VerifyRecoveryEquivalence(scratch); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("concurrent verification %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRecoveryEquivalenceRequiresStore(t *testing.T) {
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rm.VerifyRecoveryEquivalence(t.TempDir()); err == nil {
		t.Fatal("want error without a store")
	}
}
