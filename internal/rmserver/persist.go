// Durability: the RM journals every state mutation to a write-ahead log
// (internal/store) and periodically snapshots its full state. WAL
// records capture the *outcome* of a mutation (decomposed windows,
// issued lease IDs, confirmed quanta), not its input, so replay is
// deterministic without nodes, a scheduler, or the deadline decomposer
// — and idempotent, so replaying the same tail twice (or recovering the
// same directory twice) converges to the same state.
//
// What is journaled and what is not:
//
//   - Workflow and ad-hoc submissions, with their decomposed windows
//     and min-slot counts (capacity at submit time is not recoverable).
//   - Every tick: the new slot value, leases granted, leases requeued
//     by node eviction or lease expiry, and the fault counters.
//   - Heartbeat confirmations that actually applied (stale confirms
//     change nothing and are not journaled).
//   - Lease requeues triggered by node re-registration.
//   - Leadership-epoch claims (initial primary start and promotions),
//     so the fencing token survives crashes and ships to followers.
//   - Plan diffs, when the scheduler streams its plan (one record per
//     revision, applied transactionally; see planstream.go), and the
//     wholesale plan rebases that repair a broken diff chain.
//   - NOT journaled: node registrations and heartbeat liveness. Nodes
//     are soft state re-established by the agents' re-register loop;
//     accordingly, recovery requeues every in-flight lease (its node
//     binding died with the process) and re-grants the work.
//   - NOT journaled: drain state. Draining is a property of the process
//     ("for the life of the process"), not of the workload — a restarted
//     RM schedules again, otherwise a post-shutdown restart would come
//     up permanently refusing work.
//
// Durability ordering: under the always-fsync policy, no side effect of
// a mutation escapes the RM before its record is durable. Submissions
// are acknowledged only after commit; a tick's grants are enqueued onto
// nodes only after the tick record commits, so a heartbeat can never
// hand a node work that a post-crash recovery would not know was
// granted; and a heartbeat commits its confirm record before taking the
// node's pending quanta, so a commit failure fails the heartbeat
// without handing out (or losing) queued work. Under interval/never
// policies these windows reopen by design — that is the policy's
// documented trade.
package rmserver

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"flowtime/internal/plan"
	"flowtime/internal/resource"
	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/store"
	"flowtime/internal/trace"
	"flowtime/internal/workflow"
)

// snapVersion identifies the snapshot schema.
const snapVersion = 1

// walRecord is the one-of union journaled per mutation.
type walRecord struct {
	Workflow   *recWorkflow   `json:"wf,omitempty"`
	AdHoc      *recAdHoc      `json:"adhoc,omitempty"`
	Tick       *recTick       `json:"tick,omitempty"`
	Confirm    *recConfirm    `json:"confirm,omitempty"`
	Requeue    *recRequeue    `json:"requeue,omitempty"`
	Epoch      *recEpoch      `json:"epoch,omitempty"`
	PlanDiff   *recPlanDiff   `json:"plan_diff,omitempty"`
	PlanRebase *recPlanRebase `json:"plan_rebase,omitempty"`
}

// recWorkflow journals one admitted workflow: the original trace record
// (for the DAG and job specs) plus everything admission computed — the
// re-anchored window and the per-job decomposed windows.
type recWorkflow struct {
	WF         trace.WorkflowRecord `json:"wf"`
	SubmitNS   int64                `json:"submit_ns"`
	DeadlineNS int64                `json:"deadline_ns"`
	Slot       int64                `json:"slot"`
	BestEffort bool                 `json:"best_effort,omitempty"`
	Windows    []recWindow          `json:"windows"`
}

type recWindow struct {
	ReleaseNS  int64 `json:"release_ns"`
	DeadlineNS int64 `json:"deadline_ns"`
	MinSlots   int64 `json:"min_slots"`
}

type recAdHoc struct {
	Job  trace.AdHocRecord `json:"job"`
	Slot int64             `json:"slot"`
}

// recTick journals one slot advance: the post-advance slot value, the
// leases reclaimed by eviction/expiry during the tick, the leases
// granted, and the authoritative fault counters at tick end.
type recTick struct {
	Slot     int64                 `json:"slot"`
	Requeued []string              `json:"requeued,omitempty"`
	Grants   []recGrant            `json:"grants,omitempty"`
	Faults   rmproto.FaultCounters `json:"faults"`
}

type recGrant struct {
	QID    string          `json:"qid"`
	JobID  string          `json:"job"`
	NodeID string          `json:"node"`
	Grant  resource.Vector `json:"grant"`
	Expiry int64           `json:"expiry,omitempty"`
}

// recConfirm journals the quanta one heartbeat actually confirmed.
type recConfirm struct {
	Slot   int64                 `json:"slot"`
	QIDs   []string              `json:"qids"`
	Faults rmproto.FaultCounters `json:"faults"`
}

// recRequeue journals leases reclaimed outside a tick (node
// re-registration).
type recRequeue struct {
	QIDs   []string              `json:"qids"`
	Faults rmproto.FaultCounters `json:"faults"`
}

// recEpoch journals a leadership-epoch claim: the first epoch of a
// fresh primary, or the incremented epoch of a promotion. The epoch is
// replicated state — shipping it is what fences a deposed primary's
// stream (see repl.go).
type recEpoch struct {
	Epoch int64 `json:"epoch"`
	Slot  int64 `json:"slot"`
}

// recPlanDiff journals one plan diff in the strict plan codec's wire
// form (internal/plan). The diff is the transaction: it either chained
// onto the live plan's revision and was applied whole, or it was never
// journaled — a torn record at the WAL tail is truncated at recovery
// and the plan stays at its pre-diff revision.
type recPlanDiff struct {
	Diff json.RawMessage `json:"diff"`
}

// recPlanRebase journals a wholesale live-plan replacement — the escape
// hatch when the diff chain breaks (see planstream.go).
type recPlanRebase struct {
	Plan json.RawMessage `json:"plan"`
}

// snapState is the full-state snapshot payload.
type snapState struct {
	Version   int                   `json:"version"`
	SlotDurNS int64                 `json:"slot_dur_ns"`
	Slot      int64                 `json:"slot"`
	Epoch     int64                 `json:"epoch,omitempty"`
	NextQID   int64                 `json:"next_qid"`
	Faults    rmproto.FaultCounters `json:"faults"`
	Workflows []snapWorkflow        `json:"workflows,omitempty"`
	AdHoc     []snapJob             `json:"adhoc,omitempty"`
	Leases    []snapLease           `json:"leases,omitempty"`
	// Plan is the live plan in the strict plan codec's wire form; absent
	// when no plan revision has been applied.
	Plan json.RawMessage `json:"plan,omitempty"`
}

type snapWorkflow struct {
	WF         trace.WorkflowRecord `json:"wf"`
	SubmitNS   int64                `json:"submit_ns"`
	DeadlineNS int64                `json:"deadline_ns"`
	Jobs       []snapJob            `json:"jobs"` // in node-index order
}

type snapJob struct {
	ID          string          `json:"id"`
	Kind        int             `json:"kind"`
	JobName     string          `json:"job_name,omitempty"`
	NodeIdx     int             `json:"node_idx"`
	ArrivedNS   int64           `json:"arrived_ns"`
	ReleaseNS   int64           `json:"release_ns"`
	DeadlineNS  int64           `json:"deadline_ns"`
	Total       resource.Vector `json:"total"`
	Delivered   resource.Vector `json:"delivered"`
	InFlight    resource.Vector `json:"in_flight"`
	ParallelCap resource.Vector `json:"parallel_cap"`
	MinSlots    int64           `json:"min_slots"`
	BestEffort  bool            `json:"best_effort,omitempty"`
	Done        bool            `json:"done,omitempty"`
	DoneSlot    int64           `json:"done_slot,omitempty"`
}

type snapLease struct {
	QID    string          `json:"qid"`
	JobID  string          `json:"job"`
	NodeID string          `json:"node"`
	Grant  resource.Vector `json:"grant"`
	Issued int64           `json:"issued"`
	Expiry int64           `json:"expiry,omitempty"`
}

// journalLocked appends one record to the WAL, returning its commit
// handle (the zero handle with no store). Must be called with s.mu held
// so record order matches mutation order.
func (s *Server) journalLocked(rec walRecord) (store.Handle, error) {
	if s.store == nil {
		return store.Handle{}, nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return store.Handle{}, err
	}
	return s.store.Append(payload)
}

// commitRecord makes a journaled record durable per the store's fsync
// policy. Called WITHOUT s.mu so a slow fsync never blocks the control
// plane; concurrent committers group-commit. The handle is bound to its
// WAL segment, so committing is safe even if a snapshot rotation has
// since swapped in a fresh segment.
func (s *Server) commitRecord(h store.Handle) error {
	if s.store == nil {
		return nil
	}
	if err := s.store.Commit(h); err != nil {
		// Wrap both the coded sentinel (for the HTTP layer's 503 +
		// commit_failed mapping) and the store's error (for diagnostics).
		return fmt.Errorf("rmserver: wal commit: %w: %w", ErrCommitFailed, err)
	}
	return nil
}

// qidNum extracts the numeric suffix of a quantum ID ("q-42" -> 42).
func qidNum(qid string) int64 {
	n, err := strconv.ParseInt(strings.TrimPrefix(qid, "q-"), 10, 64)
	if err != nil {
		return -1
	}
	return n
}

// recoverLocked rebuilds state from the store: restore the recovered
// snapshot, replay the WAL tail, then reclaim every in-flight lease —
// the node bindings died with the previous process, and the agents will
// re-register with empty hands. Replay is idempotent: duplicate
// submissions are skipped, grants are gated on the quantum-ID
// watermark, and confirms/requeues of unknown leases are no-ops.
func (s *Server) recoverLocked() error {
	start := time.Now()
	info := s.store.Recovery()
	rec := rmproto.RecoveryStatus{
		Performed:         true,
		WALTruncated:      info.Truncated,
		TruncatedBytes:    info.TruncatedBytes,
		StaleFilesRemoved: info.StaleFilesRemoved,
	}
	if snap := s.store.RecoveredSnapshot(); snap != nil {
		var st snapState
		if err := json.Unmarshal(snap, &st); err != nil {
			return fmt.Errorf("decode snapshot: %w", err)
		}
		if err := s.restoreSnapshotLocked(&st); err != nil {
			return err
		}
		rec.FromSnapshot = true
		rec.SnapshotSlot = st.Slot
	}
	for i, payload := range s.store.RecoveredRecords() {
		if err := s.applyRecordLocked(payload); err != nil {
			return fmt.Errorf("replay record %d/%d: %w", i+1, info.Records, err)
		}
		rec.RecordsReplayed++
	}
	// Orphan leases belong to the dead process's nodes — but only an
	// acting primary may requeue them. A follower must keep replaying
	// exactly the primary's stream; its leases are requeued at promotion.
	if !s.cfg.Follower {
		rec.OrphanLeasesRequeued = len(s.requeueAllLeasesLocked())
	}
	rec.Slot = s.slot
	rec.Micros = (time.Since(start) + info.Elapsed).Microseconds()
	s.recovery = &rec
	return nil
}

// requeueAllLeasesLocked reclaims every in-flight lease (recovery or
// promotion: no node the server trusts holds them anymore) in
// deterministic order, returning the reclaimed quantum IDs.
func (s *Server) requeueAllLeasesLocked() []string {
	if len(s.leases) == 0 {
		return nil
	}
	qids := make([]string, 0, len(s.leases))
	for qid := range s.leases {
		qids = append(qids, qid)
	}
	sort.Strings(qids)
	for _, qid := range qids {
		s.requeueLeaseLocked(s.leases[qid])
	}
	return qids
}

func (s *Server) restoreSnapshotLocked(st *snapState) error {
	if st.Version != snapVersion {
		return fmt.Errorf("snapshot version %d, want %d", st.Version, snapVersion)
	}
	if got := time.Duration(st.SlotDurNS); got != s.cfg.SlotDur {
		return fmt.Errorf("state dir was written with slot=%v, server runs slot=%v", got, s.cfg.SlotDur)
	}
	s.slot = st.Slot
	if st.Epoch > s.epoch {
		s.epoch = st.Epoch
	}
	s.nextQID = st.NextQID
	s.faults = st.Faults
	for i := range st.Workflows {
		sw := &st.Workflows[i]
		wf, err := workflowFromRecord(sw.WF, sw.SubmitNS, sw.DeadlineNS)
		if err != nil {
			return fmt.Errorf("snapshot workflow %s: %w", sw.WF.ID, err)
		}
		ws := &wfState{wf: wf, jobs: make([]*rmJob, len(sw.Jobs))}
		for idx := range sw.Jobs {
			j := rmJobFromSnap(&sw.Jobs[idx], wf.ID)
			ws.jobs[idx] = j
			s.jobs[j.id] = j
		}
		s.wfs[wf.ID] = ws
	}
	for i := range st.AdHoc {
		j := rmJobFromSnap(&st.AdHoc[i], "")
		s.jobs[j.id] = j
	}
	for _, sl := range st.Leases {
		j, ok := s.jobs[sl.JobID]
		if !ok {
			return fmt.Errorf("snapshot lease %s references unknown job %s", sl.QID, sl.JobID)
		}
		s.leases[sl.QID] = &lease{
			qid: sl.QID, job: j, nodeID: sl.NodeID,
			grant: sl.Grant, issued: sl.Issued, expiry: sl.Expiry,
		}
	}
	if len(st.Plan) > 0 {
		p, err := plan.DecodePlan(st.Plan)
		if err != nil {
			return fmt.Errorf("snapshot plan: %w", err)
		}
		s.livePlan = p
	}
	return nil
}

func rmJobFromSnap(sj *snapJob, wfID string) *rmJob {
	return &rmJob{
		id:          sj.ID,
		kind:        sched.JobKind(sj.Kind),
		wfID:        wfID,
		jobName:     sj.JobName,
		nodeIdx:     sj.NodeIdx,
		arrived:     time.Duration(sj.ArrivedNS),
		release:     time.Duration(sj.ReleaseNS),
		deadline:    time.Duration(sj.DeadlineNS),
		total:       sj.Total,
		delivered:   sj.Delivered,
		inFlight:    sj.InFlight,
		parallelCap: sj.ParallelCap,
		minSlots:    sj.MinSlots,
		bestEffort:  sj.BestEffort,
		done:        sj.Done,
		doneSlot:    sj.DoneSlot,
	}
}

func snapFromRMJob(j *rmJob) snapJob {
	return snapJob{
		ID:          j.id,
		Kind:        int(j.kind),
		JobName:     j.jobName,
		NodeIdx:     j.nodeIdx,
		ArrivedNS:   int64(j.arrived),
		ReleaseNS:   int64(j.release),
		DeadlineNS:  int64(j.deadline),
		Total:       j.total,
		Delivered:   j.delivered,
		InFlight:    j.inFlight,
		ParallelCap: j.parallelCap,
		MinSlots:    j.minSlots,
		BestEffort:  j.bestEffort,
		Done:        j.done,
		DoneSlot:    j.doneSlot,
	}
}

// workflowFromRecord rebuilds a workflow object from its trace record
// and re-anchors its window to the journaled nanosecond offsets (the
// record's whole-second fields cannot express sub-second slot clocks).
func workflowFromRecord(rec trace.WorkflowRecord, submitNS, deadlineNS int64) (*workflow.Workflow, error) {
	tr := trace.Trace{Version: trace.FormatVersion, Workflows: []trace.WorkflowRecord{rec}}
	wfs, _, err := tr.ToWorkload()
	if err != nil {
		return nil, err
	}
	wf := wfs[0]
	wf.Submit = time.Duration(submitNS)
	wf.Deadline = time.Duration(deadlineNS)
	return wf, nil
}

func (s *Server) applyRecordLocked(payload []byte) error {
	var rec walRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	switch {
	case rec.Workflow != nil:
		return s.applyWorkflowLocked(rec.Workflow)
	case rec.AdHoc != nil:
		return s.applyAdHocLocked(rec.AdHoc)
	case rec.Tick != nil:
		s.applyTickLocked(rec.Tick)
	case rec.Confirm != nil:
		s.applyConfirmLocked(rec.Confirm)
	case rec.Requeue != nil:
		s.applyRequeueLocked(rec.Requeue)
	case rec.Epoch != nil:
		if rec.Epoch.Epoch > s.epoch {
			s.epoch = rec.Epoch.Epoch
		}
	case rec.PlanDiff != nil:
		return s.applyPlanDiffRecordLocked(rec.PlanDiff)
	case rec.PlanRebase != nil:
		return s.applyPlanRebaseRecordLocked(rec.PlanRebase)
	default:
		return fmt.Errorf("empty WAL record %q", payload)
	}
	return nil
}

func (s *Server) applyWorkflowLocked(r *recWorkflow) error {
	if _, dup := s.wfs[r.WF.ID]; dup {
		return nil // idempotent replay
	}
	if len(r.Windows) != len(r.WF.Jobs) {
		return fmt.Errorf("workflow %s: %d windows for %d jobs", r.WF.ID, len(r.Windows), len(r.WF.Jobs))
	}
	wf, err := workflowFromRecord(r.WF, r.SubmitNS, r.DeadlineNS)
	if err != nil {
		return fmt.Errorf("workflow %s: %w", r.WF.ID, err)
	}
	arrived := time.Duration(r.Slot) * s.cfg.SlotDur
	st := &wfState{wf: wf, jobs: make([]*rmJob, wf.NumJobs())}
	for i := 0; i < wf.NumJobs(); i++ {
		job := wf.Job(i)
		w := r.Windows[i]
		j := &rmJob{
			id:          fmt.Sprintf("%s/%s#%d", wf.ID, job.Name, i),
			kind:        sched.DeadlineJob,
			wfID:        wf.ID,
			jobName:     job.Name,
			nodeIdx:     i,
			arrived:     arrived,
			release:     time.Duration(w.ReleaseNS),
			deadline:    time.Duration(w.DeadlineNS),
			total:       job.Volume(s.cfg.SlotDur),
			parallelCap: job.ParallelCap(),
			minSlots:    w.MinSlots,
			bestEffort:  r.BestEffort,
		}
		st.jobs[i] = j
		s.jobs[j.id] = j
	}
	s.wfs[wf.ID] = st
	if r.BestEffort {
		s.faults.BestEffortAdmissions++
	}
	return nil
}

func (s *Server) applyAdHocLocked(r *recAdHoc) error {
	id := "adhoc/" + r.Job.ID
	if _, dup := s.jobs[id]; dup {
		return nil // idempotent replay
	}
	a := adHocFromRecord(r.Job)
	if err := a.Validate(); err != nil {
		return fmt.Errorf("ad-hoc %s: %w", r.Job.ID, err)
	}
	s.jobs[id] = &rmJob{
		id:          id,
		kind:        sched.AdHocJob,
		arrived:     time.Duration(r.Slot) * s.cfg.SlotDur,
		total:       a.Volume(s.cfg.SlotDur),
		parallelCap: a.ParallelCap(),
	}
	return nil
}

func (s *Server) applyTickLocked(r *recTick) {
	for _, qid := range r.Requeued {
		if l, ok := s.leases[qid]; ok {
			s.requeueLeaseLocked(l)
		}
	}
	for _, g := range r.Grants {
		n := qidNum(g.QID)
		if n <= s.nextQID {
			continue // already applied (prior replay pass or snapshot)
		}
		j, ok := s.jobs[g.JobID]
		if !ok {
			continue
		}
		s.nextQID = n
		s.leases[g.QID] = &lease{
			qid: g.QID, job: j, nodeID: g.NodeID,
			grant: g.Grant, issued: r.Slot - 1, expiry: g.Expiry,
		}
		j.inFlight = j.inFlight.Add(g.Grant)
	}
	if r.Slot > s.slot {
		s.slot = r.Slot
	}
	s.faults = r.Faults
}

func (s *Server) applyConfirmLocked(r *recConfirm) {
	for _, qid := range r.QIDs {
		if l, ok := s.leases[qid]; ok {
			s.confirmLeaseLocked(l, r.Slot)
		}
	}
	s.faults = r.Faults
}

func (s *Server) applyRequeueLocked(r *recRequeue) {
	for _, qid := range r.QIDs {
		if l, ok := s.leases[qid]; ok {
			s.requeueLeaseLocked(l)
		}
	}
	s.faults = r.Faults
}

// snapshotLocked serializes the full RM state, deterministically (map
// iteration order must not leak into the payload).
func (s *Server) snapshotLocked() ([]byte, error) {
	st := snapState{
		Version:   snapVersion,
		SlotDurNS: int64(s.cfg.SlotDur),
		Slot:      s.slot,
		Epoch:     s.epoch,
		NextQID:   s.nextQID,
		Faults:    s.faults,
	}
	wfIDs := make([]string, 0, len(s.wfs))
	for id := range s.wfs {
		wfIDs = append(wfIDs, id)
	}
	sort.Strings(wfIDs)
	for _, id := range wfIDs {
		ws := s.wfs[id]
		rec, err := workflowToRecord(ws.wf)
		if err != nil {
			return nil, fmt.Errorf("snapshot workflow %s: %w", id, err)
		}
		sw := snapWorkflow{
			WF:         rec,
			SubmitNS:   int64(ws.wf.Submit),
			DeadlineNS: int64(ws.wf.Deadline),
			Jobs:       make([]snapJob, len(ws.jobs)),
		}
		for i, j := range ws.jobs {
			sw.Jobs[i] = snapFromRMJob(j)
		}
		st.Workflows = append(st.Workflows, sw)
	}
	jobIDs := make([]string, 0, len(s.jobs))
	for id, j := range s.jobs {
		if j.kind == sched.AdHocJob {
			jobIDs = append(jobIDs, id)
		}
	}
	sort.Strings(jobIDs)
	for _, id := range jobIDs {
		st.AdHoc = append(st.AdHoc, snapFromRMJob(s.jobs[id]))
	}
	qids := make([]string, 0, len(s.leases))
	for qid := range s.leases {
		qids = append(qids, qid)
	}
	sort.Strings(qids)
	for _, qid := range qids {
		l := s.leases[qid]
		st.Leases = append(st.Leases, snapLease{
			QID: l.qid, JobID: l.job.id, NodeID: l.nodeID,
			Grant: l.grant, Issued: l.issued, Expiry: l.expiry,
		})
	}
	if s.livePlan != nil && s.livePlan.Rev > 0 {
		payload, err := plan.EncodePlan(s.livePlan)
		if err != nil {
			return nil, fmt.Errorf("snapshot plan rev %d: %w", s.livePlan.Rev, err)
		}
		st.Plan = payload
	}
	return json.Marshal(&st)
}

// writeSnapshotLocked snapshots the full state and rotates the WAL.
// Holding s.mu across the disk write is deliberate: it guarantees no
// record lands in the outgoing segment after the state it captures,
// which rotation is about to delete.
func (s *Server) writeSnapshotLocked() error {
	if s.store == nil {
		return nil
	}
	payload, err := s.snapshotLocked()
	if err != nil {
		return fmt.Errorf("rmserver: snapshot: %w", err)
	}
	if err := s.store.WriteSnapshot(payload); err != nil {
		return fmt.Errorf("rmserver: snapshot: %w", err)
	}
	return nil
}

// WriteSnapshot persists a full-state snapshot and rotates the WAL, so
// a subsequent recovery replays only records appended after this call.
// A no-op without a store. The RM's run loop calls it on a cadence and
// after a completed drain.
func (s *Server) WriteSnapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeSnapshotLocked()
}

// workflowToRecord serializes a workflow back into its trace record.
func workflowToRecord(wf *workflow.Workflow) (trace.WorkflowRecord, error) {
	tr, err := trace.FromWorkload([]*workflow.Workflow{wf}, nil)
	if err != nil {
		return trace.WorkflowRecord{}, err
	}
	return tr.Workflows[0], nil
}
