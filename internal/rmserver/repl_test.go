package rmserver

import (
	"context"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/store"
)

// newReplicaRM builds a follower RM over its own state directory.
func newReplicaRM(t *testing.T, dir, leaderURL string) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Policy: store.SyncAlways})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	rm, err := New(Config{
		SlotDur: slotDur, Scheduler: sched.NewFIFO(), Store: st,
		Follower: true, LeaderURL: leaderURL,
	})
	if err != nil {
		t.Fatalf("New(follower): %v", err)
	}
	return rm, st
}

// pumpRepl replicates primary → follower in-process until the follower's
// watermark matches the primary's.
func pumpRepl(t *testing.T, primary, follower *Server) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		wm := follower.store.Watermark()
		resp, err := primary.ShipLog(rmproto.ShipRequest{
			Epoch: follower.Epoch(),
			From:  rmproto.ReplWatermark{Gen: wm.Gen, Records: wm.Records, Bytes: wm.Bytes},
		})
		if err != nil {
			t.Fatalf("ShipLog: %v", err)
		}
		if _, err := follower.IngestShipment(resp); err != nil {
			t.Fatalf("IngestShipment: %v", err)
		}
		if follower.store.Watermark() == primary.store.Watermark() {
			return
		}
	}
	t.Fatal("replication did not converge in 1000 batches")
}

// TestFailoverPreservesWorkExactlyOnce is the core failover scenario: a
// primary runs a workload partway, replicates to a warm standby, and
// "dies" (its store abandoned un-closed, like SIGKILL). The standby is
// promoted, the node re-registers with it, and the workload runs to
// completion — with every job's delivered volume exactly its total, no
// lost and no double-counted work — and the promoted server passes the
// recovery-equivalence oracle.
func TestFailoverPreservesWorkExactlyOnce(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary, _ := newDurableRM(t, pdir, false)
	follower, _ := newReplicaRM(t, fdir, "")

	register(t, primary, "n1", 8, 16*1024)
	submitBoth(t, primary)
	pending := runSlots(t, primary, "n1", 3, nil)
	if len(pending) == 0 {
		t.Fatal("workload produced no in-flight leases before the crash")
	}
	pumpRepl(t, primary, follower)

	// Primary dies here: nothing more ships. Promote the standby.
	resp, err := follower.Promote()
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if resp.Role != "primary" || resp.Epoch != 2 {
		t.Fatalf("Promote = %+v, want primary at epoch 2", resp)
	}
	if resp.OrphanLeasesRequeued == 0 {
		t.Error("promotion requeued no orphan leases despite in-flight work")
	}

	register(t, follower, "n1", 8, 16*1024)
	st := driveToCompletion(t, follower, []string{"n1"}, 200)
	if len(st.Jobs) != 3 {
		t.Fatalf("promoted RM tracks %d jobs, want 3 (workflow a,b + adhoc)", len(st.Jobs))
	}
	for _, j := range st.Jobs {
		if j.State != "completed" {
			t.Errorf("job %s state %s, want completed", j.ID, j.State)
		}
		if j.Delivered != j.Total {
			t.Errorf("job %s delivered %+v, want exactly %+v", j.ID, j.Delivered, j.Total)
		}
	}
	if err := follower.VerifyRecoveryEquivalence(filepath.Join(t.TempDir(), "scratch")); err != nil {
		t.Fatalf("recovery equivalence on promoted RM: %v", err)
	}
}

// TestFencingRejectsDeposedPrimary covers both fencing directions: the
// follower rejects late batches from the deposed primary's old epoch,
// and the old primary self-fences the moment it sees the higher epoch.
func TestFencingRejectsDeposedPrimary(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary, _ := newDurableRM(t, pdir, true)
	follower, _ := newReplicaRM(t, fdir, "")

	register(t, primary, "n1", 4, 8*1024)
	submitBoth(t, primary)
	runSlots(t, primary, "n1", 2, nil)
	pumpRepl(t, primary, follower)

	// Capture a batch from the old epoch, then promote behind the
	// primary's back.
	staleResp, err := primary.ShipLog(rmproto.ShipRequest{Epoch: follower.Epoch()})
	if err != nil {
		t.Fatalf("ShipLog: %v", err)
	}
	if _, err := follower.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if _, err := follower.IngestShipment(staleResp); err == nil {
		t.Error("follower ingested a deposed primary's batch")
	}

	// The old primary sees the new epoch on the next ship request and
	// fences itself; every mutation is rejected from then on.
	if _, err := primary.ShipLog(rmproto.ShipRequest{Epoch: follower.Epoch()}); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("higher-epoch ship = %v, want ErrNotLeader (self-fence)", err)
	}
	if err := primary.Tick(time.Now()); !errors.Is(err, ErrNotLeader) {
		t.Errorf("fenced primary Tick = %v, want ErrNotLeader", err)
	}
	if _, err := primary.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1"}, time.Now()); !errors.Is(err, ErrNotLeader) {
		t.Errorf("fenced primary Heartbeat = %v, want ErrNotLeader", err)
	}
	if _, err := primary.RegisterNode(rmproto.RegisterNodeRequest{
		NodeID: "n2", Capacity: rmproto.Resources{VCores: 1, MemoryMB: 1024},
	}, time.Now()); !errors.Is(err, ErrNotLeader) {
		t.Errorf("fenced primary RegisterNode = %v, want ErrNotLeader", err)
	}

	// An explicit fence with a yet-higher epoch is also honored, and a
	// stale one is rejected.
	if _, err := primary.Fence(rmproto.FenceRequest{Epoch: 1}); err == nil {
		t.Error("stale fence accepted")
	}
	fr, err := primary.Fence(rmproto.FenceRequest{Epoch: follower.Epoch() + 1, Leader: "http://new"})
	if err != nil || !fr.Fenced {
		t.Errorf("Fence = %+v, %v; want fenced", fr, err)
	}
}

// TestFollowerRejectsMutationsOverHTTP drives the read-only contract
// through the HTTP surface: mutations get 503 + not_leader with the
// leader hint, status stays readable, and the client maps the response
// back to ErrNotLeader.
func TestFollowerRejectsMutationsOverHTTP(t *testing.T) {
	follower, _ := newReplicaRM(t, t.TempDir(), "http://leader.example:8030")
	srv := httptest.NewServer(follower.Handler())
	defer srv.Close()
	client := NewClient(srv.URL, nil)
	ctx := context.Background()

	_, err := client.RegisterNode(ctx, rmproto.RegisterNodeRequest{
		NodeID: "n1", Capacity: rmproto.Resources{VCores: 1, MemoryMB: 1024},
	})
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("register on follower = %v, want ErrNotLeader", err)
	}
	if hint := LeaderHint(err); hint != "http://leader.example:8030" {
		t.Errorf("leader hint %q, want the configured leader URL", hint)
	}
	if !Retryable(err) {
		t.Error("not_leader should be retryable (503) so rotation can find the leader")
	}
	if err := client.Tick(ctx); !errors.Is(err, ErrNotLeader) {
		t.Errorf("tick on follower = %v, want ErrNotLeader", err)
	}

	st, err := client.Status(ctx)
	if err != nil {
		t.Fatalf("Status on follower: %v", err)
	}
	if st.Replication == nil || st.Replication.Role != "follower" {
		t.Fatalf("follower status replication block = %+v, want role follower", st.Replication)
	}
}

// TestRunReplicatorEndToEnd runs the real pull loop over HTTP: the
// follower catches up and stays caught up while the primary works, and
// after a promotion the loop fences the old primary and exits.
func TestRunReplicatorEndToEnd(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary, _ := newDurableRM(t, pdir, true)
	psrv := httptest.NewServer(primary.Handler())
	defer psrv.Close()
	follower, _ := newReplicaRM(t, fdir, psrv.URL)
	fsrv := httptest.NewServer(follower.Handler())
	defer fsrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	replDone := make(chan error, 1)
	go func() {
		replDone <- follower.RunReplicator(ctx, ReplicatorConfig{
			Primary:  psrv.URL,
			Self:     fsrv.URL,
			Interval: 2 * time.Millisecond,
		})
	}()

	register(t, primary, "n1", 8, 16*1024)
	submitBoth(t, primary)
	runSlots(t, primary, "n1", 4, nil)

	deadline := time.Now().Add(10 * time.Second)
	for follower.store.Watermark() != primary.store.Watermark() {
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %v vs %v",
				follower.store.Watermark(), primary.store.Watermark())
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The primary has seen its follower: lag shows up in status.
	pst := primary.Status()
	if pst.Replication == nil || !pst.Replication.FollowerSeen {
		t.Fatalf("primary status %+v, want follower seen", pst.Replication)
	}

	if _, err := follower.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	select {
	case err := <-replDone:
		if err != nil {
			t.Fatalf("RunReplicator returned %v, want nil after promotion", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunReplicator did not exit after promotion")
	}
	// The loop's parting fence deposed the old primary.
	if err := primary.Tick(time.Now()); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("old primary Tick after fence = %v, want ErrNotLeader", err)
	}
	if hint := primary.Status().Replication.LeaderURL; hint != fsrv.URL {
		t.Errorf("old primary leader hint %q, want %q", hint, fsrv.URL)
	}
}

// TestAgentFollowsLeaderAcrossFailover runs the real node agent against
// a replicated pair: pointed at the primary first, it must re-register
// with the standby after promotion + fencing, with no manual help. The
// pair runs a small slot so the agent heartbeats fast enough to observe
// the fence within the test budget (the RM dictates SlotDur as the
// heartbeat interval).
func TestAgentFollowsLeaderAcrossFailover(t *testing.T) {
	const fastSlot = 50 * time.Millisecond
	newFastRM := func(dir string, followerOf string) *Server {
		st, err := store.Open(store.Options{Dir: dir, Policy: store.SyncAlways})
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		t.Cleanup(func() { st.Close() })
		rm, err := New(Config{
			SlotDur: fastSlot, Scheduler: sched.NewFIFO(), Store: st,
			Follower: followerOf != "", LeaderURL: followerOf,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return rm
	}
	primary := newFastRM(t.TempDir(), "")
	psrv := httptest.NewServer(primary.Handler())
	defer psrv.Close()
	follower := newFastRM(t.TempDir(), psrv.URL)
	fsrv := httptest.NewServer(follower.Handler())
	defer fsrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	agentDone := make(chan error, 1)
	go func() {
		agentDone <- RunAgent(ctx, NewClient(psrv.URL, nil), AgentConfig{
			NodeID:   "n1",
			Capacity: rmproto.Resources{VCores: 4, MemoryMB: 8 * 1024},
			RMs:      []string{psrv.URL, fsrv.URL},
			Backoff:  Backoff{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond, MaxAttempts: 2},
		})
	}()

	waitNodes := func(rm *Server, label string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for rm.Status().Nodes != 1 {
			if time.Now().After(deadline) {
				t.Fatalf("agent never registered with the %s", label)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitNodes(primary, "primary")

	pumpRepl(t, primary, follower)
	if _, err := follower.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if _, err := primary.Fence(rmproto.FenceRequest{Epoch: follower.Epoch(), Leader: fsrv.URL}); err != nil {
		t.Fatalf("Fence: %v", err)
	}
	// The agent's next heartbeat hits the fenced primary, gets not_leader
	// plus the leader hint, and re-registers with the promoted follower.
	waitNodes(follower, "promoted follower")

	cancel()
	if err := <-agentDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("RunAgent returned %v, want context.Canceled", err)
	}
}
