package rmserver

// Network chaos suites: the control plane under partitions, flaps, and
// asymmetric reachability, with every fault injected deterministically
// by internal/netchaos (fixed seeds, scripted windows). Each scenario
// ends at the recovery-equivalence oracle — the surviving RM's in-memory
// state must equal a cold recovery of its own store — plus the
// exactly-once check that every job's delivered volume equals its total.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flowtime/internal/netchaos"
	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/store"
	"flowtime/internal/trace"
)

// chaosClock is a virtual timeline for the injector (tests pin fault
// windows to it instead of racing the wall clock).
type chaosClock struct{ now atomic.Int64 }

func (c *chaosClock) set(d time.Duration) { c.now.Store(int64(d)) }
func (c *chaosClock) read() time.Duration { return time.Duration(c.now.Load()) }

func mustScript(t *testing.T, text string) netchaos.Script {
	t.Helper()
	sc, err := netchaos.ParseScript(text)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	return sc
}

// assertExactlyOnce checks the completed workload delivered every job's
// volume exactly once and the RM passes the recovery-equivalence oracle.
func assertExactlyOnce(t *testing.T, rm *Server, st rmproto.StatusResponse) {
	t.Helper()
	if len(st.Jobs) == 0 {
		t.Fatal("no jobs in final status")
	}
	for _, j := range st.Jobs {
		if j.State != "completed" {
			t.Errorf("job %s state %s, want completed", j.ID, j.State)
		}
		if j.Delivered != j.Total {
			t.Errorf("job %s delivered %+v, want exactly %+v (no lost, no double-counted work)",
				j.ID, j.Delivered, j.Total)
		}
	}
	if err := rm.VerifyRecoveryEquivalence(filepath.Join(t.TempDir(), "scratch")); err != nil {
		t.Fatalf("recovery equivalence: %v", err)
	}
}

// TestNetChaosReplicationPartitionMidShipment partitions the
// replication link in the middle of a shipment stream: records ship,
// the link dies while the primary keeps journaling, the link heals and
// the follower catches up, and the post-failover workload completes
// exactly once.
func TestNetChaosReplicationPartitionMidShipment(t *testing.T) {
	primary, _ := newDurableRM(t, t.TempDir(), true)
	psrv := httptest.NewServer(primary.Handler())
	defer psrv.Close()
	follower, _ := newReplicaRM(t, t.TempDir(), psrv.URL)

	// The partition window lives on a virtual clock the test advances.
	inj := netchaos.New(1001, mustScript(t, "1s-2s partition repl<->rm"))
	clk := &chaosClock{}
	inj.SetClock(clk.read)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	replDone := make(chan error, 1)
	go func() {
		replDone <- follower.RunReplicator(ctx, ReplicatorConfig{
			Primary:    psrv.URL,
			Interval:   2 * time.Millisecond,
			HTTPClient: &http.Client{Transport: &netchaos.Transport{Injector: inj, From: "repl", To: "rm"}},
		})
	}()
	waitConverged := func(what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for follower.store.Watermark() != primary.store.Watermark() {
			if time.Now().After(deadline) {
				t.Fatalf("follower never converged %s: %v vs %v", what,
					follower.store.Watermark(), primary.store.Watermark())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Phase 1 (link up): ship the first part of the stream.
	register(t, primary, "n1", 8, 16*1024)
	submitBoth(t, primary)
	pending := runSlots(t, primary, "n1", 2, nil)
	waitConverged("before the partition")

	// Phase 2 (partition): the primary keeps working; nothing ships.
	clk.set(1500 * time.Millisecond)
	behindWM := follower.store.Watermark()
	runSlots(t, primary, "n1", 2, pending)
	if primary.store.Watermark() == behindWM {
		t.Fatal("primary journaled nothing during the partition — scenario needs mid-stream state")
	}
	time.Sleep(50 * time.Millisecond) // give a broken replicator time to wrongly advance
	if follower.store.Watermark() != behindWM {
		t.Fatal("follower watermark advanced across an active partition")
	}

	// Phase 3 (heal): the backlog drains and the follower converges.
	clk.set(2500 * time.Millisecond)
	waitConverged("after healing")

	// Primary dies; the standby takes over and the workload finishes.
	if _, err := follower.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	select {
	case <-replDone:
	case <-time.After(10 * time.Second):
		t.Fatal("replicator did not exit after promotion")
	}
	register(t, follower, "n1", 8, 16*1024)
	st := driveToCompletion(t, follower, []string{"n1"}, 200)
	assertExactlyOnce(t, follower, st)
}

// TestNetChaosFlappingLinkDuringFailover runs the replication pull loop
// over a flapping link — including the duplicate-inducing case where a
// batch is delivered and only its acknowledgement is lost, forcing a
// re-ship the follower must deduplicate. The workload still completes
// exactly once after failover.
func TestNetChaosFlappingLinkDuringFailover(t *testing.T) {
	primary, _ := newDurableRM(t, t.TempDir(), true)
	psrv := httptest.NewServer(primary.Handler())
	defer psrv.Close()
	follower, _ := newReplicaRM(t, t.TempDir(), psrv.URL)

	// Real-clock flap: 30ms up, 30ms down, forever. Ship requests and
	// responses are judged independently, so response-only losses occur.
	inj := netchaos.New(77, mustScript(t, "0s+ flap repl<->rm period=60ms duty=0.5"))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	replDone := make(chan error, 1)
	go func() {
		replDone <- follower.RunReplicator(ctx, ReplicatorConfig{
			Primary:    psrv.URL,
			Interval:   2 * time.Millisecond,
			HTTPClient: &http.Client{Transport: &netchaos.Transport{Injector: inj, From: "repl", To: "rm"}},
		})
	}()

	register(t, primary, "n1", 8, 16*1024)
	submitBoth(t, primary)
	runSlots(t, primary, "n1", 4, nil)

	deadline := time.Now().Add(15 * time.Second)
	for follower.store.Watermark() != primary.store.Watermark() {
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged through the flapping link: %v vs %v",
				follower.store.Watermark(), primary.store.Watermark())
		}
		time.Sleep(5 * time.Millisecond)
	}

	if _, err := follower.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	select {
	case <-replDone:
	case <-time.After(10 * time.Second):
		t.Fatal("replicator did not exit after promotion")
	}
	register(t, follower, "n1", 8, 16*1024)
	st := driveToCompletion(t, follower, []string{"n1"}, 200)
	assertExactlyOnce(t, follower, st)
}

// hostChaosRT routes each request's fault link by target host, so one
// http.Client can reach several RMs over independently-scripted links.
type hostChaosRT struct {
	inj   *netchaos.Injector
	hosts map[string]string // URL host -> link label
}

func (rt *hostChaosRT) RoundTrip(req *http.Request) (*http.Response, error) {
	label, ok := rt.hosts[req.URL.Host]
	if !ok {
		label = req.URL.Host
	}
	return (&netchaos.Transport{Injector: rt.inj, From: "agent", To: label}).RoundTrip(req)
}

// TestNetChaosAsymmetricSplitBrain is the dueling-primaries scenario:
// the agent can reach the standby but not the primary (one-way
// partition), the standby is promoted while the old primary still
// believes it leads, and epoch fencing resolves the duel — the agent
// lands on exactly one leader and the workload completes exactly once.
func TestNetChaosAsymmetricSplitBrain(t *testing.T) {
	const fastSlot = 30 * time.Millisecond
	newFastRM := func(dir string, followerOf string) *Server {
		st, err := store.Open(store.Options{Dir: dir, Policy: store.SyncAlways})
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		t.Cleanup(func() { st.Close() })
		rm, err := New(Config{
			SlotDur: fastSlot, Scheduler: sched.NewFIFO(), Store: st,
			Follower: followerOf != "", LeaderURL: followerOf,
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return rm
	}
	primary := newFastRM(t.TempDir(), "")
	psrv := httptest.NewServer(primary.Handler())
	defer psrv.Close()
	follower := newFastRM(t.TempDir(), psrv.URL)
	fsrv := httptest.NewServer(follower.Handler())
	defer fsrv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Replication link is clean; only the agent's path to the primary is
	// cut — and only in the agent->primary direction.
	replDone := make(chan error, 1)
	go func() {
		replDone <- follower.RunReplicator(ctx, ReplicatorConfig{
			Primary: psrv.URL, Self: fsrv.URL, Interval: 2 * time.Millisecond,
		})
	}()

	inj := netchaos.New(42, mustScript(t, "0s+ partition agent->rmp"))
	agentHC := &http.Client{Transport: &hostChaosRT{
		inj: inj,
		hosts: map[string]string{
			strings.TrimPrefix(psrv.URL, "http://"): "rmp",
			strings.TrimPrefix(fsrv.URL, "http://"): "rmf",
		},
	}}
	agentDone := make(chan error, 1)
	go func() {
		agentDone <- RunAgent(ctx, NewClient(psrv.URL, agentHC), AgentConfig{
			NodeID:   "n1",
			Capacity: rmproto.Resources{VCores: 8, MemoryMB: 16 * 1024},
			RMs:      []string{psrv.URL, fsrv.URL},
			Backoff:  Backoff{Base: 2 * time.Millisecond, Max: 30 * time.Millisecond, MaxAttempts: 2},
			Logf:     testLogf(t),
		})
	}()

	// The agent churns: primary unreachable, standby answers not_leader.
	// It must not land anywhere yet.
	time.Sleep(150 * time.Millisecond)
	if n := primary.Status().Nodes; n != 0 {
		t.Fatalf("agent registered with the unreachable primary (%d nodes)", n)
	}
	if n := follower.Status().Nodes; n != 0 {
		t.Fatalf("agent registered with a non-promoted follower (%d nodes)", n)
	}

	// Operator promotes the standby. For a window, BOTH servers claim
	// the primary role — the duel fencing must resolve.
	if _, err := follower.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if follower.Role() != RolePrimary {
		t.Fatal("promoted follower does not claim primary")
	}
	select {
	case <-replDone: // replicator's parting shot fences the old primary
	case <-time.After(10 * time.Second):
		t.Fatal("replicator did not exit after promotion")
	}
	if err := primary.Tick(time.Now()); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("old primary Tick after fencing = %v, want ErrNotLeader (duel must resolve)", err)
	}

	// The agent finds the new leader on its own.
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}
	waitFor("agent to register with the new leader", func() bool { return follower.Status().Nodes == 1 })

	// Work submitted to the new leader completes via the real agent.
	if _, err := follower.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: "post-split", Tasks: 2, TaskDurSec: 1, DemandVCores: 1, DemandMemMB: 256,
	}}); err != nil {
		t.Fatalf("SubmitAdHoc: %v", err)
	}
	tickDone := make(chan struct{})
	defer close(tickDone)
	go func() {
		ticker := time.NewTicker(fastSlot)
		defer ticker.Stop()
		for {
			select {
			case <-tickDone:
				return
			case now := <-ticker.C:
				_ = follower.Tick(now)
			}
		}
	}()
	waitFor("workload to complete on the new leader", func() bool { return allCompleted(follower.Status()) })

	cancel()
	<-agentDone
	assertExactlyOnce(t, follower, follower.Status())
}

// TestNetChaosCodedErrorsThroughProxy is the plumbing test: coded
// errors are header/body-based, not connection-based, so they survive a
// degraded-but-connected network. Both netchaos seams are exercised —
// the TCP proxy and the wrapped server listener — each under latency
// and throttling.
func TestNetChaosCodedErrorsThroughProxy(t *testing.T) {
	ctx := context.Background()

	// not_leader through a throttled TCP proxy: the hint survives.
	follower, _ := newReplicaRM(t, t.TempDir(), "http://leader.example:8030")
	fsrv := httptest.NewServer(follower.Handler())
	defer fsrv.Close()
	inj := netchaos.New(9, mustScript(t, "0s+ throttle c<->s 65536\n0s+ latency c->s 2ms"))
	proxy, err := netchaos.NewProxy(inj, "c", "s", strings.TrimPrefix(fsrv.URL, "http://"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()
	_, err = NewClient(proxy.URL(), nil).RegisterNode(ctx, rmproto.RegisterNodeRequest{
		NodeID: "n1", Capacity: rmproto.Resources{VCores: 1, MemoryMB: 1024},
	})
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("register via proxy = %v, want ErrNotLeader", err)
	}
	if hint := LeaderHint(err); hint != "http://leader.example:8030" {
		t.Errorf("leader hint %q did not survive the TCP proxy", hint)
	}

	// overloaded + Retry-After through the same proxy seam.
	oc := OverloadConfig{ConfirmConcurrency: 1, QueueDepth: 1, MaxWait: 5 * time.Millisecond, RetryAfter: 1200 * time.Millisecond}
	overrm, osrv := newOverloadedRM(t, oc)
	release, err := overrm.admission.acquire(ctx, classConfirm)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()
	oproxy, err := netchaos.NewProxy(netchaos.New(10, mustScript(t, "0s+ throttle c<->s 65536")),
		"c", "s", strings.TrimPrefix(osrv.URL, "http://"))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer oproxy.Close()
	_, err = NewClient(oproxy.URL(), nil).RegisterNode(ctx, rmproto.RegisterNodeRequest{
		NodeID: "n1", Capacity: rmproto.Resources{VCores: 1, MemoryMB: 1024},
	})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("register via proxy during overload = %v, want ErrOverloaded", err)
	}
	if got := RetryAfterHint(err); got != 1200*time.Millisecond {
		t.Errorf("Retry-After hint via proxy = %v, want 1.2s (millisecond body field wins)", got)
	}

	// Same assertions through the wrapped-listener seam (the ftrm
	// -chaos-net path), plus the RoundTripper seam on the client side.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	wrapped := netchaos.WrapListener(ln, netchaos.New(11, mustScript(t, "0s+ latency c->s 1ms")), "c", "s")
	stop := serveRM(t, follower, wrapped)
	defer stop()
	chaosHC := &http.Client{Transport: &netchaos.Transport{
		Injector: netchaos.New(12, mustScript(t, "0s+ latency c->s 1ms")), From: "c", To: "s",
	}}
	_, err = NewClient("http://"+ln.Addr().String(), chaosHC).RegisterNode(ctx, rmproto.RegisterNodeRequest{
		NodeID: "n1", Capacity: rmproto.Resources{VCores: 1, MemoryMB: 1024},
	})
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("register via wrapped listener = %v, want ErrNotLeader", err)
	}
	if hint := LeaderHint(err); hint != "http://leader.example:8030" {
		t.Errorf("leader hint %q did not survive the wrapped listener", hint)
	}
}
