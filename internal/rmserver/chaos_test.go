package rmserver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/trace"
)

// Chaos suite: every test injects a control-plane fault (node kill,
// heartbeat loss, lease timeout, scheduler panic, drain under load) and
// asserts the invariant of the fault-tolerance layer — work is either
// completed or accounted for and requeued, never silently stranded.

// panicScheduler panics for the first `panics` Assign calls, then
// delegates to the wrapped scheduler.
type panicScheduler struct {
	inner  sched.Scheduler
	panics int32
}

func (p *panicScheduler) Name() string { return "panic(" + p.inner.Name() + ")" }

func (p *panicScheduler) Assign(ctx sched.AssignContext) (map[string]resource.Vector, error) {
	if atomic.AddInt32(&p.panics, -1) >= 0 {
		panic("injected scheduler fault")
	}
	return p.inner.Assign(ctx)
}

func submitAdHoc(t *testing.T, rm *Server, id string, tasks int, durSec int64) {
	t.Helper()
	if _, err := rm.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: id, Tasks: tasks, TaskDurSec: durSec, DemandVCores: 1, DemandMemMB: 512,
	}}); err != nil {
		t.Fatalf("SubmitAdHoc(%s): %v", id, err)
	}
}

func allCompleted(st rmproto.StatusResponse) bool {
	if len(st.Jobs) == 0 {
		return false
	}
	for _, j := range st.Jobs {
		if j.State != "completed" {
			return false
		}
	}
	return true
}

// TestNodeKillMidLeaseRequeues is the seed failure mode: a node dies
// while holding in-flight quanta. The seed silently deleted the node and
// the job's inFlight volume never returned — the workflow hung forever.
// Now eviction requeues the leased volume and the surviving node finishes
// the work.
func TestNodeKillMidLeaseRequeues(t *testing.T) {
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewEDF(), NodeExpiry: 25 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	base := time.Now()
	reg := func(id string) {
		t.Helper()
		if _, err := rm.RegisterNode(rmproto.RegisterNodeRequest{
			NodeID: id, Capacity: rmproto.Resources{VCores: 4, MemoryMB: 8 * 1024},
		}, base); err != nil {
			t.Fatalf("RegisterNode(%s): %v", id, err)
		}
	}
	reg("n1") // sorts first: receives leases first-fit
	reg("n2")

	if _, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(2000)}); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}

	// Slot 0: leases land on n1 (and possibly n2). n1 launches them and
	// is then killed — it never heartbeats again.
	now := base
	if err := rm.Tick(now); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	hb, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1"}, now)
	if err != nil {
		t.Fatalf("Heartbeat(n1): %v", err)
	}
	if len(hb.Launch) == 0 {
		t.Fatal("n1 received no leases; fault injection needs in-flight quanta on the victim")
	}
	if _, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n2"}, now); err != nil {
		t.Fatalf("Heartbeat(n2): %v", err)
	}

	// Drive only n2. Clock advances past NodeExpiry so n1 is evicted.
	var n2Running []string
	for slot := 0; slot < 200; slot++ {
		now = now.Add(slotDur)
		if err := rm.Tick(now); err != nil {
			t.Fatalf("Tick: %v", err)
		}
		resp, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n2", Completed: n2Running}, now)
		if err != nil {
			t.Fatalf("Heartbeat(n2): %v", err)
		}
		n2Running = n2Running[:0]
		for _, q := range resp.Launch {
			n2Running = append(n2Running, q.ID)
		}
		if st := rm.Status(); allCompleted(st) {
			if st.Faults.ExpiredNodes != 1 {
				t.Errorf("expired nodes = %d, want 1", st.Faults.ExpiredNodes)
			}
			if st.Faults.RequeuedQuanta == 0 {
				t.Error("no quanta requeued despite node death mid-lease")
			}
			if st.OutstandingLeases != 0 {
				t.Errorf("outstanding leases = %d at completion, want 0", st.OutstandingLeases)
			}
			return
		}
	}
	st := rm.Status()
	t.Fatalf("jobs hung after node kill (seed failure mode): %+v faults=%+v", st.Jobs, st.Faults)
}

// TestHeartbeatAfterExpiryReRegister covers the heartbeat-after-expiry
// path: an evicted node's heartbeat is rejected with ErrUnknownNode, and
// after re-registering, confirms for quanta issued before the eviction
// are counted stale and ignored — never double-delivered.
func TestHeartbeatAfterExpiryReRegister(t *testing.T) {
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), NodeExpiry: 25 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	base := time.Now()
	if _, err := rm.RegisterNode(rmproto.RegisterNodeRequest{
		NodeID: "n1", Capacity: rmproto.Resources{VCores: 8, MemoryMB: 16 * 1024},
	}, base); err != nil {
		t.Fatalf("RegisterNode: %v", err)
	}
	submitAdHoc(t, rm, "q1", 4, 20)

	if err := rm.Tick(base); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	hb, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1"}, base)
	if err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if len(hb.Launch) == 0 {
		t.Fatal("no leases launched")
	}
	staleIDs := make([]string, 0, len(hb.Launch))
	for _, q := range hb.Launch {
		staleIDs = append(staleIDs, q.ID)
	}

	// Node goes silent past expiry; Tick evicts it and requeues.
	now := base.Add(60 * time.Second)
	if err := rm.Tick(now); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if st := rm.Status(); st.Nodes != 0 || st.Faults.ExpiredNodes != 1 {
		t.Fatalf("after silence: nodes=%d expired=%d, want 0/1", st.Nodes, st.Faults.ExpiredNodes)
	}

	// Heartbeat after eviction is rejected with the re-register signal.
	if _, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1", Completed: staleIDs}, now); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("heartbeat after expiry = %v, want ErrUnknownNode", err)
	}

	// Node re-registers and tries to confirm its pre-eviction quanta.
	if _, err := rm.RegisterNode(rmproto.RegisterNodeRequest{
		NodeID: "n1", Capacity: rmproto.Resources{VCores: 8, MemoryMB: 16 * 1024},
	}, now); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	if _, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1", Completed: staleIDs}, now); err != nil {
		t.Fatalf("heartbeat after re-register: %v", err)
	}
	st := rm.Status()
	if got := st.Faults.StaleConfirms; got < int64(len(staleIDs)) {
		t.Errorf("stale confirms = %d, want >= %d (pre-eviction quanta must not double-confirm)", got, len(staleIDs))
	}
	for _, j := range st.Jobs {
		if j.State == "completed" {
			t.Errorf("job %s completed from stale confirms alone", j.ID)
		}
	}

	// The requeued work then completes for real through the live node.
	final := driveToCompletion(t, rm, []string{"n1"}, 100)
	if !allCompleted(final) {
		t.Fatalf("job did not complete after re-register: %+v", final.Jobs)
	}
}

// TestLeaseExpiryReclaims covers the RM-side lease timeout: a node whose
// heartbeat responses are lost (it stays alive but never confirms) has
// its leases reclaimed after LeaseExpiry slots, and once the fault heals
// the job still completes.
func TestLeaseExpiryReclaims(t *testing.T) {
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), LeaseExpiry: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	register(t, rm, "n1", 8, 16*1024)
	submitAdHoc(t, rm, "q1", 4, 20)

	now := time.Now()
	// Black-hole phase: the node heartbeats (stays live) but drops every
	// launch response, so nothing is ever confirmed.
	for slot := 0; slot < 8; slot++ {
		if err := rm.Tick(now); err != nil {
			t.Fatalf("Tick: %v", err)
		}
		if _, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1"}, now); err != nil {
			t.Fatalf("Heartbeat: %v", err)
		}
	}
	st := rm.Status()
	if st.Faults.RequeuedQuanta == 0 {
		t.Fatalf("lease expiry never fired: faults=%+v outstanding=%d", st.Faults, st.OutstandingLeases)
	}
	for _, j := range st.Jobs {
		if j.State == "completed" {
			t.Fatalf("job completed without any confirmation: %+v", j)
		}
	}

	// Fault heals: the node starts confirming; everything completes.
	final := driveToCompletion(t, rm, []string{"n1"}, 100)
	if !allCompleted(final) {
		t.Fatalf("job did not complete after lease-expiry requeue: %+v", final.Jobs)
	}
	if final.OutstandingLeases != 0 {
		t.Errorf("outstanding leases = %d at completion, want 0", final.OutstandingLeases)
	}
}

// TestLeaseDeadlineOnWire checks issued quanta carry their confirmation
// deadline so nodes can see the budget they are working against.
func TestLeaseDeadlineOnWire(t *testing.T) {
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), LeaseExpiry: 5})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	register(t, rm, "n1", 8, 16*1024)
	submitAdHoc(t, rm, "q1", 2, 20)
	if err := rm.Tick(time.Now()); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	hb, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1"}, time.Now())
	if err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if len(hb.Launch) == 0 {
		t.Fatal("no leases launched")
	}
	for _, q := range hb.Launch {
		if q.DeadlineSlot != 5 { // issued at slot 0, expiry 5 slots
			t.Errorf("lease %s deadline slot = %d, want 5", q.ID, q.DeadlineSlot)
		}
	}
}

// TestSchedulerPanicIsolated injects a panicking scheduler and checks the
// RM converts each panic into an errored, no-grant slot — state stays
// consistent, jobs stay queued, and scheduling resumes once the scheduler
// recovers.
func TestSchedulerPanicIsolated(t *testing.T) {
	ps := &panicScheduler{inner: sched.NewFIFO(), panics: 3}
	rm := newRM(t, ps)
	register(t, rm, "n1", 8, 16*1024)
	submitAdHoc(t, rm, "q1", 4, 20)

	panicked := 0
	for slot := 0; slot < 3; slot++ {
		if err := rm.Tick(time.Now()); err != nil {
			panicked++
		}
		if _, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1"}, time.Now()); err != nil {
			t.Fatalf("Heartbeat: %v", err)
		}
	}
	if panicked != 3 {
		t.Errorf("errored ticks = %d, want 3", panicked)
	}
	st := rm.Status()
	if st.Faults.SchedulerPanics != 3 {
		t.Errorf("scheduler panics = %d, want 3", st.Faults.SchedulerPanics)
	}
	if st.OutstandingLeases != 0 {
		t.Errorf("outstanding leases = %d during panic slots, want 0 (no grants)", st.OutstandingLeases)
	}
	if st.Slot != 3 {
		t.Errorf("slot = %d after 3 panicking ticks, want 3 (state must keep advancing)", st.Slot)
	}

	final := driveToCompletion(t, rm, []string{"n1"}, 100)
	if !allCompleted(final) {
		t.Fatalf("job did not complete after scheduler recovered: %+v", final.Jobs)
	}
}

// TestDrainUnderLoad starts a drain while leases are in flight and checks
// that no new leases are issued, outstanding work confirms, and the
// unfinished remainder is reported rather than silently dropped.
func TestDrainUnderLoad(t *testing.T) {
	rm := newRM(t, sched.NewFIFO())
	register(t, rm, "n1", 4, 8*1024)
	submitAdHoc(t, rm, "big", 40, 60) // far more work than one drain can finish

	now := time.Now()
	if err := rm.Tick(now); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	hb, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1"}, now)
	if err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	running := quantumIDs(hb.Launch)
	if len(running) == 0 {
		t.Fatal("no in-flight leases before drain")
	}

	// Drain from another goroutine while the node keeps heartbeating.
	done := make(chan rmproto.DrainResponse, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- rm.Drain(ctx)
	}()

	var resp rmproto.DrainResponse
	confirmLoop := func() {
		for i := 0; i < 50; i++ {
			if err := rm.Tick(now); err != nil {
				t.Errorf("Tick: %v", err)
				return
			}
			hb, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1", Completed: running}, now)
			if err != nil {
				t.Errorf("Heartbeat: %v", err)
				return
			}
			running = quantumIDs(hb.Launch)
			select {
			case resp = <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}
	confirmLoop()

	if !resp.Draining {
		t.Fatal("drain response not draining")
	}
	if !resp.Complete || resp.OutstandingLeases != 0 {
		t.Fatalf("drain incomplete: %+v", resp)
	}
	if len(resp.UnfinishedJobs) == 0 {
		t.Error("drain under load reported no unfinished jobs; the big job cannot have finished")
	}

	// After drain: ticking issues nothing new.
	if err := rm.Tick(now); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	hb, err = rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: "n1"}, now)
	if err != nil {
		t.Fatalf("Heartbeat: %v", err)
	}
	if len(hb.Launch) != 0 {
		t.Errorf("drained RM issued %d new leases", len(hb.Launch))
	}
	if st := rm.Status(); !st.Draining {
		t.Error("status does not report draining")
	}
}

func quantumIDs(qs []rmproto.Quantum) []string {
	ids := make([]string, 0, len(qs))
	for _, q := range qs {
		ids = append(ids, q.ID)
	}
	return ids
}

// TestConcurrentChaosStress hammers every mutating entry point from
// concurrent goroutines — heartbeats, submissions, ticks, status, a
// mid-flight node kill and a final drain — and relies on the race
// detector to catch locking mistakes. Run under go test -race.
func TestConcurrentChaosStress(t *testing.T) {
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), NodeExpiry: 40 * slotDur, LeaseExpiry: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	base := time.Now()
	nodes := []string{"n1", "n2", "n3"}
	for _, id := range nodes {
		register(t, rm, id, 8, 16*1024)
	}

	const iters = 150
	var wg sync.WaitGroup

	// Ticker: advances slots with a clock marching 1 slot per iteration.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = rm.Tick(base.Add(time.Duration(i) * slotDur))
		}
	}()

	// Nodes: heartbeat and confirm everything they launched. n3 dies
	// halfway (stops heartbeating) to mix eviction into the stress.
	for ni, id := range nodes {
		wg.Add(1)
		go func(ni int, id string) {
			defer wg.Done()
			var running []string
			for i := 0; i < iters; i++ {
				if id == "n3" && i > iters/2 {
					return
				}
				hb, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: id, Completed: running}, base.Add(time.Duration(i)*slotDur))
				if err != nil {
					running = nil
					continue // evicted under stress: acceptable, keep hammering
				}
				running = quantumIDs(hb.Launch)
			}
		}(ni, id)
	}

	// Submitter: a stream of small ad-hoc jobs plus duplicate rejections.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/3; i++ {
			_, _ = rm.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
				ID: fmt.Sprintf("s%d", i), Tasks: 1, TaskDurSec: 10, DemandVCores: 1, DemandMemMB: 256,
			}})
		}
	}()

	// Pollers: status and drain-status snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			_ = rm.Status()
			_ = rm.DrainStatus()
		}
	}()

	wg.Wait()

	// Final drain with the surviving nodes confirming.
	drained := make(chan rmproto.DrainResponse, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- rm.Drain(ctx)
	}()
	pending := map[string][]string{}
	now := base.Add(iters * slotDur)
	for i := 0; ; i++ {
		now = now.Add(slotDur)
		_ = rm.Tick(now)
		for _, id := range nodes[:2] {
			hb, err := rm.Heartbeat(rmproto.HeartbeatRequest{NodeID: id, Completed: pending[id]}, now)
			if err != nil {
				pending[id] = nil
				continue
			}
			pending[id] = quantumIDs(hb.Launch)
		}
		select {
		case resp := <-drained:
			if !resp.Complete {
				t.Fatalf("drain did not complete after stress: %+v", resp)
			}
			return
		case <-time.After(100 * time.Microsecond):
			// Yield so the drain goroutine can acquire the server lock
			// between our tick/heartbeat bursts.
		}
		if i > 10000 {
			st := rm.Status()
			t.Fatalf("drain never completed: outstanding=%d nodes=%d slot=%d faults=%+v draining=%v",
				st.OutstandingLeases, st.Nodes, st.Slot, st.Faults, st.Draining)
		}
	}
}
