package rmserver

import (
	"net/http/httptest"
	"strings"
	"testing"

	"flowtime/internal/core"
	"flowtime/internal/rmproto"
)

// infeasibleWorkflow has a deadline window shorter than one slot, so
// deadline decomposition fails under every strategy.
func infeasibleWorkflow() rmproto.SubmitWorkflowRequest {
	wf := chainWorkflow(5) // 5s window on a 10s slot
	wf.ID = "wf-best-effort"
	return rmproto.SubmitWorkflowRequest{Workflow: wf}
}

func TestBestEffortAdmission(t *testing.T) {
	rm := newRM(t, core.New(core.DefaultConfig()))
	register(t, rm, "n1", 8, 16*1024)

	resp, err := rm.SubmitWorkflow(infeasibleWorkflow())
	if err != nil {
		t.Fatalf("SubmitWorkflow: %v (infeasible decomposition must degrade, not reject)", err)
	}
	if !resp.Accepted || !resp.BestEffort {
		t.Fatalf("SubmitWorkflow = %+v, want accepted best-effort", resp)
	}

	st := rm.Status()
	if st.Faults.BestEffortAdmissions != 1 {
		t.Errorf("BestEffortAdmissions = %d, want 1", st.Faults.BestEffortAdmissions)
	}
	for _, j := range st.Jobs {
		if !j.BestEffort {
			t.Errorf("job %s not flagged best-effort", j.ID)
		}
	}

	// Best-effort jobs still run to completion from leftover capacity.
	st = driveToCompletion(t, rm, []string{"n1"}, 60)
	for _, j := range st.Jobs {
		if j.State != "completed" {
			t.Errorf("best-effort job %s state = %s, want completed", j.ID, j.State)
		}
	}
}

func TestFeasibleSubmissionIsNotBestEffort(t *testing.T) {
	rm := newRM(t, core.New(core.DefaultConfig()))
	register(t, rm, "n1", 8, 16*1024)
	resp, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)})
	if err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	if resp.BestEffort {
		t.Error("feasible workflow flagged best-effort")
	}
	if n := rm.Status().Faults.BestEffortAdmissions; n != 0 {
		t.Errorf("BestEffortAdmissions = %d, want 0", n)
	}
}

func TestMetricsExposeLadderAndAdmissions(t *testing.T) {
	rm := newRM(t, core.New(core.DefaultConfig()))
	register(t, rm, "n1", 8, 16*1024)
	if _, err := rm.SubmitWorkflow(infeasibleWorkflow()); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	driveToCompletion(t, rm, []string{"n1"}, 20)

	rec := httptest.NewRecorder()
	rm.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"flowtime_rm_best_effort_admissions 1",
		"flowtime_sched_degrade_level",
		"flowtime_sched_fallback_minmax_total",
		"flowtime_sched_fallback_greedy_total",
		"flowtime_sched_invalid_plans_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestStatusCarriesDegradation(t *testing.T) {
	rm := newRM(t, core.New(core.DefaultConfig()))
	register(t, rm, "n1", 8, 16*1024)
	if _, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)}); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	driveToCompletion(t, rm, []string{"n1"}, 80)
	st := rm.Status()
	if st.Degradation == nil {
		t.Fatal("Status().Degradation = nil, want ladder telemetry for FlowTime")
	}
	if st.Degradation.Level == "" {
		t.Error("Degradation.Level empty")
	}
}
