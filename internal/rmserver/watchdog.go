package rmserver

import (
	"context"
	"sync"
	"time"

	"flowtime/internal/rmproto"
)

// Liveness watchdogs. A wedged control plane is worse than a dead one:
// a dead RM fails fast and agents rotate, but an RM whose tick loop has
// stalled — or whose standby has silently stopped ingesting — keeps
// answering status probes while deadlines slip and the failover target
// goes stale. The watchdogs detect both conditions and surface them in
// /v1/status and /metrics, where an operator (or a chaos suite) can
// alert on them.
//
// Trips are latched once per excursion: a detector increments its trip
// counter when the condition first becomes true and not again until it
// has cleared, so flapping near the threshold reads as distinct
// incidents rather than a counter spinning per poll.

// WatchdogConfig enables the liveness detectors. Zero values disable
// each detector individually.
type WatchdogConfig struct {
	// StuckTickAfter trips the "stuck_tick" detector when no scheduling
	// tick has completed for this long. Set it to a small multiple of
	// SlotDur (3-5x); 0 disables.
	StuckTickAfter time.Duration
	// ReplLagRecords trips the "repl_lag" detector when the follower's
	// acknowledged watermark falls this many WAL records behind the
	// primary (or the follower spans an older generation). 0 disables.
	ReplLagRecords int64
}

func (c WatchdogConfig) enabled() bool {
	return c.StuckTickAfter > 0 || c.ReplLagRecords > 0
}

type watchdog struct {
	cfg WatchdogConfig

	mu          sync.Mutex
	lastTickAt  time.Time
	trips       map[string]int64
	stuckActive bool
	lagActive   bool
}

func newWatchdog(cfg WatchdogConfig) *watchdog {
	return &watchdog{cfg: cfg, trips: make(map[string]int64)}
}

// noteTick records a completed scheduling tick, clearing the stuck-tick
// excursion if one was active.
func (w *watchdog) noteTick(now time.Time) {
	w.mu.Lock()
	w.lastTickAt = now
	w.stuckActive = false
	w.mu.Unlock()
}

// check evaluates both detectors. lagRecords is the primary's view of
// follower lag; lagKnown is false when there is no follower to judge
// (standalone RM, or a follower that has never reported), which clears
// rather than trips the lag detector — absence of replication is a
// topology choice, not a liveness fault.
func (w *watchdog) check(now time.Time, lagRecords int64, lagKnown bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cfg.StuckTickAfter > 0 && !w.lastTickAt.IsZero() {
		stuck := now.Sub(w.lastTickAt) > w.cfg.StuckTickAfter
		if stuck && !w.stuckActive {
			w.trips["stuck_tick"]++
		}
		w.stuckActive = stuck
	}
	if w.cfg.ReplLagRecords > 0 {
		lagging := lagKnown && lagRecords > w.cfg.ReplLagRecords
		if lagging && !w.lagActive {
			w.trips["repl_lag"]++
		}
		w.lagActive = lagging
	}
}

// status snapshots the detectors for /v1/status and /metrics.
func (w *watchdog) status(now time.Time) *rmproto.WatchdogStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := &rmproto.WatchdogStatus{
		StuckTick:       w.stuckActive,
		ReplLagExceeded: w.lagActive,
	}
	if !w.lastTickAt.IsZero() {
		st.LastTickAgoMs = now.Sub(w.lastTickAt).Milliseconds()
	}
	if len(w.trips) > 0 {
		st.Trips = make(map[string]int64, len(w.trips))
		for k, v := range w.trips {
			st.Trips[k] = v
		}
	}
	return st
}

// CheckWatchdogs evaluates the liveness detectors once against now.
// Status() also evaluates them on every call, so polling /v1/status is
// enough to keep them fresh; RunWatchdogs adds an internal cadence for
// deployments nobody is polling.
func (s *Server) CheckWatchdogs(now time.Time) {
	lag, known := s.replLag()
	s.watchdog.check(now, lag, known)
}

// RunWatchdogs re-evaluates the detectors every interval until ctx is
// cancelled (interval <= 0 means 1s). Run it in a goroutine next to the
// tick loop.
func (s *Server) RunWatchdogs(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.CheckWatchdogs(now)
		}
	}
}

// replLag reports the primary's view of follower WAL lag in records,
// and whether a follower has reported at all. Cross-generation lag
// (follower needs a snapshot install) is reported as the whole head
// segment, matching Status().
func (s *Server) replLag() (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil || !s.repl.hasFollower {
		return 0, false
	}
	wm := s.store.Watermark()
	f := s.repl.followerWM
	lag := wm.Records
	if f.Gen == wm.Gen {
		lag = wm.Records - f.Records
	}
	if lag < 0 {
		lag = 0
	}
	return lag, true
}
