package rmserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"flowtime/internal/rmproto"
)

// Handler returns the RM's HTTP API (see rmproto for paths and types).
// With Config.Overload set, submission and confirm-path endpoints pass
// through the admission gate (overload.go) and may be shed with a coded
// 503 + Retry-After; control endpoints (tick, drain, replication,
// status, metrics) are never shed — operators must be able to inspect
// and drain an overloaded RM.
func (s *Server) Handler() http.Handler {
	// guard applies the admission gate for one traffic class; a nil
	// gate (no Config.Overload) passes everything through untouched.
	guard := func(class string, h http.HandlerFunc) http.HandlerFunc {
		if s.admission == nil {
			return h
		}
		return func(w http.ResponseWriter, r *http.Request) {
			release, err := s.admission.acquire(r.Context(), class)
			if err != nil {
				writeError(w, errorStatus(err), err)
				return
			}
			defer release()
			h(w, r)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/nodes/register", guard(classConfirm, func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req rmproto.RegisterNodeRequest) (rmproto.RegisterNodeResponse, error) {
			return s.RegisterNode(req, time.Now())
		})
	}))
	mux.HandleFunc("POST /v1/nodes/heartbeat", guard(classConfirm, func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req rmproto.HeartbeatRequest) (rmproto.HeartbeatResponse, error) {
			return s.Heartbeat(req, time.Now())
		})
	}))
	mux.HandleFunc("POST /v1/drain", func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(req rmproto.DrainRequest) (rmproto.DrainResponse, error) {
			if req.WaitMs <= 0 {
				s.BeginDrain()
				return s.DrainStatus(), nil
			}
			ctx, cancel := context.WithTimeout(r.Context(), time.Duration(req.WaitMs)*time.Millisecond)
			defer cancel()
			return s.Drain(ctx), nil
		})
	})
	mux.HandleFunc("POST /v1/workflows", guard(classSubmit, func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, s.SubmitWorkflow)
	}))
	mux.HandleFunc("POST /v1/adhoc", guard(classSubmit, func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, s.SubmitAdHoc)
	}))
	mux.HandleFunc("POST "+rmproto.PathShip, func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, s.ShipLog)
	})
	mux.HandleFunc("POST "+rmproto.PathPromote, func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, func(rmproto.PromoteRequest) (rmproto.PromoteResponse, error) {
			return s.Promote()
		})
	})
	mux.HandleFunc("POST "+rmproto.PathFence, func(w http.ResponseWriter, r *http.Request) {
		handleJSON(w, r, s.Fence)
	})
	mux.HandleFunc("POST /v1/tick", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Tick(time.Now()); err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrNotLeader) || errors.Is(err, ErrCommitFailed) {
				status = http.StatusServiceUnavailable
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Slot int64 `json:"slot"`
		}{Slot: s.Slot()})
	})
	mux.HandleFunc("GET /v1/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		st := s.Status()
		var pending, running, completed, missed int
		for _, j := range st.Jobs {
			switch j.State {
			case "pending":
				pending++
			case "running":
				running++
			case "completed":
				completed++
			}
			if j.Missed {
				missed++
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		fmt.Fprintf(w, "# TYPE flowtime_rm_slot counter\nflowtime_rm_slot %d\n", st.Slot)
		fmt.Fprintf(w, "# TYPE flowtime_rm_nodes gauge\nflowtime_rm_nodes %d\n", st.Nodes)
		fmt.Fprintf(w, "# TYPE flowtime_rm_capacity_vcores gauge\nflowtime_rm_capacity_vcores %d\n", st.Capacity.VCores)
		fmt.Fprintf(w, "# TYPE flowtime_rm_capacity_memory_mb gauge\nflowtime_rm_capacity_memory_mb %d\n", st.Capacity.MemoryMB)
		fmt.Fprintf(w, "# TYPE flowtime_rm_jobs_pending gauge\nflowtime_rm_jobs_pending %d\n", pending)
		fmt.Fprintf(w, "# TYPE flowtime_rm_jobs_running gauge\nflowtime_rm_jobs_running %d\n", running)
		fmt.Fprintf(w, "# TYPE flowtime_rm_jobs_completed counter\nflowtime_rm_jobs_completed %d\n", completed)
		fmt.Fprintf(w, "# TYPE flowtime_rm_jobs_missed counter\nflowtime_rm_jobs_missed %d\n", missed)
		fmt.Fprintf(w, "# TYPE flowtime_rm_leases_outstanding gauge\nflowtime_rm_leases_outstanding %d\n", st.OutstandingLeases)
		fmt.Fprintf(w, "# TYPE flowtime_rm_draining gauge\nflowtime_rm_draining %d\n", boolToInt(st.Draining))
		fmt.Fprintf(w, "# TYPE flowtime_rm_quanta_requeued counter\nflowtime_rm_quanta_requeued %d\n", st.Faults.RequeuedQuanta)
		fmt.Fprintf(w, "# TYPE flowtime_rm_nodes_expired counter\nflowtime_rm_nodes_expired %d\n", st.Faults.ExpiredNodes)
		fmt.Fprintf(w, "# TYPE flowtime_rm_scheduler_panics counter\nflowtime_rm_scheduler_panics %d\n", st.Faults.SchedulerPanics)
		fmt.Fprintf(w, "# TYPE flowtime_rm_confirms_stale counter\nflowtime_rm_confirms_stale %d\n", st.Faults.StaleConfirms)
		fmt.Fprintf(w, "# TYPE flowtime_rm_best_effort_admissions counter\nflowtime_rm_best_effort_admissions %d\n", st.Faults.BestEffortAdmissions)
		if d := st.Degradation; d != nil {
			fmt.Fprintf(w, "# TYPE flowtime_sched_degrade_level gauge\nflowtime_sched_degrade_level %d\n", d.LevelCode)
			fmt.Fprintf(w, "# TYPE flowtime_sched_fallback_minmax_total counter\nflowtime_sched_fallback_minmax_total %d\n", d.MinMaxFallbacks)
			fmt.Fprintf(w, "# TYPE flowtime_sched_fallback_greedy_total counter\nflowtime_sched_fallback_greedy_total %d\n", d.GreedyFallbacks)
			fmt.Fprintf(w, "# TYPE flowtime_sched_invalid_plans_total counter\nflowtime_sched_invalid_plans_total %d\n", d.InvalidPlans)
			fmt.Fprintf(w, "# TYPE flowtime_lp_warm_starts_total counter\nflowtime_lp_warm_starts_total %d\n", d.LPWarmStarts)
			fmt.Fprintf(w, "# TYPE flowtime_lp_cold_starts_total counter\nflowtime_lp_cold_starts_total %d\n", d.LPColdStarts)
		}
		if d := st.Durability; d != nil {
			fmt.Fprintf(w, "# TYPE flowtime_rm_wal_records_total counter\nflowtime_rm_wal_records_total %d\n", d.WALRecords)
			fmt.Fprintf(w, "# TYPE flowtime_rm_wal_bytes_total counter\nflowtime_rm_wal_bytes_total %d\n", d.WALBytes)
			fmt.Fprintf(w, "# TYPE flowtime_rm_wal_fsyncs_total counter\nflowtime_rm_wal_fsyncs_total %d\n", d.Fsyncs)
			fmt.Fprintf(w, "# TYPE flowtime_rm_wal_fsync_micros_total counter\nflowtime_rm_wal_fsync_micros_total %d\n", d.FsyncTotalMicros)
			fmt.Fprintf(w, "# TYPE flowtime_rm_wal_fsync_micros_max gauge\nflowtime_rm_wal_fsync_micros_max %d\n", d.FsyncMaxMicros)
			fmt.Fprintf(w, "# TYPE flowtime_rm_snapshots_total counter\nflowtime_rm_snapshots_total %d\n", d.Snapshots)
			fmt.Fprintf(w, "# TYPE flowtime_rm_snapshot_bytes gauge\nflowtime_rm_snapshot_bytes %d\n", d.LastSnapshotBytes)
			fmt.Fprintf(w, "# TYPE flowtime_rm_wal_generation gauge\nflowtime_rm_wal_generation %d\n", d.Generation)
		}
		if rp := st.Replication; rp != nil {
			fmt.Fprintf(w, "# TYPE flowtime_repl_role gauge\nflowtime_repl_role %d\n", rp.RoleCode)
			fmt.Fprintf(w, "# TYPE flowtime_repl_epoch counter\nflowtime_repl_epoch %d\n", rp.Epoch)
			fmt.Fprintf(w, "# TYPE flowtime_repl_fenced gauge\nflowtime_repl_fenced %d\n", boolToInt(rp.Fenced))
			fmt.Fprintf(w, "# TYPE flowtime_repl_lag_records gauge\nflowtime_repl_lag_records %d\n", rp.LagRecords)
			fmt.Fprintf(w, "# TYPE flowtime_repl_lag_bytes gauge\nflowtime_repl_lag_bytes %d\n", rp.LagBytes)
		}
		if p := st.Plan; p != nil {
			fmt.Fprintf(w, "# TYPE flowtime_plan_rev counter\nflowtime_plan_rev %d\n", p.Rev)
			fmt.Fprintf(w, "# TYPE flowtime_plan_jobs gauge\nflowtime_plan_jobs %d\n", p.Jobs)
			fmt.Fprintf(w, "# TYPE flowtime_plan_diffs_applied_total counter\nflowtime_plan_diffs_applied_total %d\n", p.DiffsApplied)
			fmt.Fprintf(w, "# TYPE flowtime_plan_rebases_total counter\nflowtime_plan_rebases_total %d\n", p.Rebases)
			if q := p.AdHoc; q != nil {
				fmt.Fprintf(w, "# TYPE flowtime_adhoc_admitted_total counter\nflowtime_adhoc_admitted_total %d\n", q.Admitted)
				fmt.Fprintf(w, "# TYPE flowtime_adhoc_rejected_total counter\nflowtime_adhoc_rejected_total %d\n", q.Rejected)
				fmt.Fprintf(w, "# TYPE flowtime_adhoc_gate_rev gauge\nflowtime_adhoc_gate_rev %d\n", q.Rev)
			}
		}
		if r := st.Recovery; r != nil {
			fmt.Fprintf(w, "# TYPE flowtime_rm_recovery_records_replayed gauge\nflowtime_rm_recovery_records_replayed %d\n", r.RecordsReplayed)
			fmt.Fprintf(w, "# TYPE flowtime_rm_recovery_micros gauge\nflowtime_rm_recovery_micros %d\n", r.Micros)
			fmt.Fprintf(w, "# TYPE flowtime_rm_recovery_wal_truncated gauge\nflowtime_rm_recovery_wal_truncated %d\n", boolToInt(r.WALTruncated))
			fmt.Fprintf(w, "# TYPE flowtime_rm_recovery_orphan_leases gauge\nflowtime_rm_recovery_orphan_leases %d\n", r.OrphanLeasesRequeued)
		}
		if o := st.Overload; o != nil {
			fmt.Fprintf(w, "# TYPE flowtime_shed_total counter\n")
			reasons := make([]string, 0, len(o.ShedByReason))
			for reason := range o.ShedByReason {
				reasons = append(reasons, reason)
			}
			sort.Strings(reasons)
			for _, reason := range reasons {
				fmt.Fprintf(w, "flowtime_shed_total{reason=%q} %d\n", reason, o.ShedByReason[reason])
			}
			if len(reasons) == 0 {
				fmt.Fprintf(w, "flowtime_shed_total{reason=\"none\"} 0\n")
			}
			fmt.Fprintf(w, "# TYPE flowtime_admission_queue_depth gauge\nflowtime_admission_queue_depth %d\n", o.QueueDepth)
		}
		fmt.Fprintf(w, "# TYPE flowtime_retry_budget_exhausted_total counter\nflowtime_retry_budget_exhausted_total %d\n", RetryBudgetExhaustedTotal())
		if wd := st.Watchdog; wd != nil {
			fmt.Fprintf(w, "# TYPE flowtime_watchdog_trips_total counter\n")
			kinds := make([]string, 0, len(wd.Trips))
			for kind := range wd.Trips {
				kinds = append(kinds, kind)
			}
			sort.Strings(kinds)
			for _, kind := range kinds {
				fmt.Fprintf(w, "flowtime_watchdog_trips_total{kind=%q} %d\n", kind, wd.Trips[kind])
			}
			if len(kinds) == 0 {
				fmt.Fprintf(w, "flowtime_watchdog_trips_total{kind=\"none\"} 0\n")
			}
			fmt.Fprintf(w, "# TYPE flowtime_watchdog_stuck_tick gauge\nflowtime_watchdog_stuck_tick %d\n", boolToInt(wd.StuckTick))
			fmt.Fprintf(w, "# TYPE flowtime_watchdog_repl_lag_exceeded gauge\nflowtime_watchdog_repl_lag_exceeded %d\n", boolToInt(wd.ReplLagExceeded))
		}
	})
	return mux
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func handleJSON[Req, Resp any](w http.ResponseWriter, r *http.Request, fn func(Req) (Resp, error)) {
	var req Req
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode: %w", err))
		return
	}
	resp, err := fn(req)
	if err != nil {
		writeError(w, errorStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func errorStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownNode):
		return http.StatusNotFound
	case errors.Is(err, ErrNotLeader), errors.Is(err, ErrCommitFailed), errors.Is(err, ErrOverloaded):
		// 503: retryable per the client's Retryable() — the caller should
		// back off (commit_failed, overloaded) or follow the leader hint
		// (not_leader).
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding errors after the header is written can only be logged by
	// the caller's middleware; the payload types here cannot fail to
	// marshal.
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	e := rmproto.Error{Message: err.Error()}
	switch {
	case errors.Is(err, ErrUnknownNode):
		e.Code = rmproto.CodeUnknownNode
	case errors.Is(err, ErrNotLeader):
		e.Code = rmproto.CodeNotLeader
		e.Leader = LeaderHint(err)
	case errors.Is(err, ErrCommitFailed):
		e.Code = rmproto.CodeCommitFailed
	case errors.Is(err, ErrOverloaded):
		e.Code = rmproto.CodeOverloaded
		if ra := RetryAfterHint(err); ra > 0 {
			// Both forms of the hint: the standard header (whole seconds,
			// rounded up — RFC 9110 allows no finer) and the body's
			// millisecond field for clients that parse the error.
			e.RetryAfterMs = ra.Milliseconds()
			secs := int64((ra + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
	}
	writeJSON(w, status, e)
}
