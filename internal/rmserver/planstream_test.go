package rmserver

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flowtime/internal/core"
	"flowtime/internal/plan"
	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
	"flowtime/internal/store"
	"flowtime/internal/trace"
)

// newStreamingRM builds a durable RM whose FlowTime scheduler streams
// plan diffs. Crash tests pass closeStore=false and abandon the store.
func newStreamingRM(t *testing.T, dir string, closeStore bool, gate bool) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, Policy: store.SyncAlways})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	if closeStore {
		t.Cleanup(func() { st.Close() })
	}
	cfg := core.DefaultConfig()
	cfg.StreamPlans = true
	rm, err := New(Config{SlotDur: slotDur, Scheduler: core.New(cfg), Store: st, AdHocGate: gate})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rm, st
}

// livePlanOf snapshots a server's live plan.
func livePlanOf(rm *Server) *plan.Plan {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.livePlanLocked().Clone()
}

// TestPlanDiffsJournaledAndRecovered: diffs journaled during normal
// operation rebuild the identical live plan after a crash, and the first
// post-restart replan repairs the broken diff chain with exactly one
// journaled rebase.
func TestPlanDiffsJournaledAndRecovered(t *testing.T) {
	dir := t.TempDir()
	rm1, _ := newStreamingRM(t, dir, false, false)
	register(t, rm1, "n1", 8, 32768)
	if _, err := rm1.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)}); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	runSlots(t, rm1, "n1", 3, nil)

	before := livePlanOf(rm1)
	if before.Rev == 0 {
		t.Fatal("no plan revision applied after 3 slots of a streaming scheduler")
	}
	st := rm1.Status()
	if st.Plan == nil || st.Plan.Rev != before.Rev {
		t.Fatalf("Status().Plan = %+v, want rev %d", st.Plan, before.Rev)
	}
	if st.Faults.PlanDiffsApplied == 0 {
		t.Fatal("PlanDiffsApplied counter never moved")
	}
	if err := rm1.VerifyRecoveryEquivalence(filepath.Join(t.TempDir(), "scratch")); err != nil {
		t.Fatalf("recovery equivalence with a live plan: %v", err)
	}
	// Crash: rm1 and its store are abandoned un-closed.

	rm2, _ := newStreamingRM(t, dir, true, false)
	after := livePlanOf(rm2)
	if after.Rev != before.Rev {
		t.Fatalf("recovered plan at rev %d, want %d", after.Rev, before.Rev)
	}
	if err := plan.Equal(after, before); err != nil {
		t.Fatalf("recovered plan diverges from pre-crash plan: %v", err)
	}

	// The restarted scheduler's revision counter restarts at zero, so its
	// first diff cannot chain onto the recovered revision: the RM must
	// rebase wholesale — once — and end up matching the scheduler again.
	// (The node must re-register first; without capacity no replan runs.)
	register(t, rm2, "n1", 8, 32768)
	if err := rm2.Tick(time.Now()); err != nil {
		t.Fatalf("Tick after recovery: %v", err)
	}
	if got := rm2.Status().Faults.PlanRebases; got != 1 {
		t.Fatalf("PlanRebases = %d after the post-recovery replan, want 1", got)
	}
	if err := rm2.VerifyRecoveryEquivalence(filepath.Join(t.TempDir(), "scratch2")); err != nil {
		t.Fatalf("recovery equivalence after rebase: %v", err)
	}
}

// TestPlanDiffReplayIdempotentAndFenced exercises the replay path
// directly: a duplicate diff is skipped, a diff that does not chain onto
// the live revision is refused loudly, and a malformed payload is
// refused before anything mutates.
func TestPlanDiffReplayIdempotentAndFenced(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.StreamPlans = true
	rm := newRM(t, core.New(cfg))

	mustRecord := func(d *plan.Diff) []byte {
		t.Helper()
		payload, err := plan.EncodeDiff(d)
		if err != nil {
			t.Fatalf("EncodeDiff: %v", err)
		}
		rec, err := json.Marshal(walRecord{PlanDiff: &recPlanDiff{Diff: payload}})
		if err != nil {
			t.Fatalf("marshal record: %v", err)
		}
		return rec
	}

	rm.mu.Lock()
	defer rm.mu.Unlock()
	first := mustRecord(&plan.Diff{BaseRev: 0, NewRev: 1, From: 5, NSlots: 2})
	if err := rm.applyRecordLocked(first); err != nil {
		t.Fatalf("apply first diff: %v", err)
	}
	if rm.livePlan.Rev != 1 || rm.faults.PlanDiffsApplied != 1 {
		t.Fatalf("rev %d, applied %d after first diff", rm.livePlan.Rev, rm.faults.PlanDiffsApplied)
	}
	// Idempotent: replaying the same record changes nothing.
	if err := rm.applyRecordLocked(first); err != nil {
		t.Fatalf("duplicate replay: %v", err)
	}
	if rm.livePlan.Rev != 1 || rm.faults.PlanDiffsApplied != 1 {
		t.Fatalf("duplicate replay mutated state: rev %d, applied %d", rm.livePlan.Rev, rm.faults.PlanDiffsApplied)
	}
	// A gap in the chain is corrupt history: refused loudly, nothing applied.
	gap := mustRecord(&plan.Diff{BaseRev: 4, NewRev: 5, From: 5, NSlots: 2})
	if err := rm.applyRecordLocked(gap); err == nil || !strings.Contains(err.Error(), "does not chain") {
		t.Fatalf("gap replay = %v, want chain error", err)
	}
	if rm.livePlan.Rev != 1 {
		t.Fatalf("gap replay moved the plan to rev %d", rm.livePlan.Rev)
	}
	// Malformed payload: refused by the strict codec.
	bad, _ := json.Marshal(walRecord{PlanDiff: &recPlanDiff{Diff: []byte(`{"nope":1}`)}})
	if err := rm.applyRecordLocked(bad); err == nil {
		t.Fatal("malformed diff payload replayed without error")
	}
}

// TestPlanReplicatesToFollower: journaled plan diffs ride the existing
// WAL shipping path, so a warm standby holds the primary's live plan —
// and still holds it after promotion.
func TestPlanReplicatesToFollower(t *testing.T) {
	pdir, fdir := t.TempDir(), t.TempDir()
	primary, _ := newStreamingRM(t, pdir, true, false)
	follower, _ := newReplicaRM(t, fdir, "")

	register(t, primary, "n1", 8, 32768)
	if _, err := primary.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)}); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	runSlots(t, primary, "n1", 3, nil)
	pumpRepl(t, primary, follower)

	want := livePlanOf(primary)
	if want.Rev == 0 {
		t.Fatal("primary never applied a plan revision")
	}
	got := livePlanOf(follower)
	if got.Rev != want.Rev {
		t.Fatalf("follower plan at rev %d, primary at %d", got.Rev, want.Rev)
	}
	if err := plan.Equal(got, want); err != nil {
		t.Fatalf("follower plan diverges from primary: %v", err)
	}

	if _, err := follower.Promote(); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	promoted := livePlanOf(follower)
	if err := plan.Equal(promoted, want); err != nil {
		t.Fatalf("promotion lost the replicated plan: %v", err)
	}
	if err := follower.VerifyRecoveryEquivalence(filepath.Join(t.TempDir(), "scratch")); err != nil {
		t.Fatalf("recovery equivalence on promoted RM with a plan: %v", err)
	}
}

// TestAdHocGateAdmitsAgainstLeftover: the lock-free gate rejects
// everything before the first plan revision, admits demand that fits the
// plan's leftover afterwards, rejects demand that cannot fit, and does
// not double-book capacity an earlier admission already holds.
func TestAdHocGateAdmitsAgainstLeftover(t *testing.T) {
	dir := t.TempDir()
	rm, _ := newStreamingRM(t, dir, true, true)
	register(t, rm, "n1", 8, 16384)

	submit := func(id string, tasks int, durSec, vcores, memMB int64) rmproto.SubmitResponse {
		t.Helper()
		resp, err := rm.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
			ID: id, Tasks: tasks, TaskDurSec: durSec, DemandVCores: vcores, DemandMemMB: memMB,
		}})
		if err != nil {
			t.Fatalf("SubmitAdHoc(%s): %v", id, err)
		}
		return resp
	}

	// No plan yet: no leftover profile exists, so the gate rejects.
	if resp := submit("early", 1, 10, 1, 128); resp.Accepted {
		t.Fatal("gate admitted before the first plan revision")
	}

	// One tick publishes a plan revision (empty: no deadline jobs), whose
	// leftover is the whole cluster over the default window.
	if err := rm.Tick(time.Now()); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if resp := submit("small", 2, 10, 1, 512); !resp.Accepted {
		t.Fatal("gate rejected a trivially feasible job")
	}
	// Demand beyond the whole window's capacity: 8 cores × 64 slots < the
	// volume of 64 tasks × 100 slots each.
	if resp := submit("huge", 64, 10*1000, 8, 16384); resp.Accepted {
		t.Fatal("gate admitted demand exceeding the entire leftover window")
	}

	st := rm.Status()
	if st.Plan == nil || st.Plan.AdHoc == nil {
		t.Fatalf("Status().Plan = %+v, want ad-hoc gate block", st.Plan)
	}
	if st.Plan.AdHoc.Admitted != 1 || st.Plan.AdHoc.Rejected != 2 {
		t.Fatalf("gate counters %+v, want 1 admitted / 2 rejected", st.Plan.AdHoc)
	}
	if st.Plan.AdHoc.Rev < 1 {
		t.Fatalf("gate never rebased onto a plan revision: %+v", st.Plan.AdHoc)
	}

	// The admitted jobs' remaining demand must stay charged across the
	// next rebase: nearly filling the window with admitted-but-
	// undelivered work leaves too little for a same-sized follow-up.
	if resp := submit("fill", 6, 10*64, 1, 2048); !resp.Accepted {
		t.Fatal("gate rejected a job that fits the remaining leftover")
	}
	if err := rm.Tick(time.Now()); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	if resp := submit("overflow", 6, 10*64, 1, 2048); resp.Accepted {
		t.Fatal("rebase forgot the admitted jobs' remaining demand and double-booked the leftover")
	}
}

// TestAdHocDrainFoldsIntoScheduler: when a plan rebase retires a gate
// epoch that carried admissions, the drained per-slot consumption must
// reach the scheduler through sched.AdHocFolder so the next plan reserves
// it instead of double-booking capacity the gate already promised away.
func TestAdHocDrainFoldsIntoScheduler(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir(), Policy: store.SyncAlways})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	cfg := core.DefaultConfig()
	cfg.StreamPlans = true
	ft := core.New(cfg)
	rm, err := New(Config{SlotDur: slotDur, Scheduler: ft, Store: st, AdHocGate: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	register(t, rm, "n1", 8, 16384)

	// First tick publishes the empty plan revision the gate admits against.
	if err := rm.Tick(time.Now()); err != nil {
		t.Fatalf("Tick: %v", err)
	}
	resp, err := rm.SubmitAdHoc(rmproto.SubmitAdHocRequest{Job: trace.AdHocRecord{
		ID: "burst", Tasks: 4, TaskDurSec: 10, DemandVCores: 2, DemandMemMB: 1024,
	}})
	if err != nil || !resp.Accepted {
		t.Fatalf("SubmitAdHoc: accepted=%v err=%v", resp.Accepted, err)
	}

	// A deadline workflow forces a new plan revision; the rebase that
	// follows retires the gate epoch holding the admission, and its drain
	// must be folded into the scheduler.
	if _, err := rm.SubmitWorkflow(rmproto.SubmitWorkflowRequest{Workflow: chainWorkflow(600)}); err != nil {
		t.Fatalf("SubmitWorkflow: %v", err)
	}
	runSlots(t, rm, "n1", 2, nil)

	if got := ft.Stats().AdHocFolds; got < 1 {
		t.Fatalf("AdHocFolds = %d, want >= 1: the gate's drain never reached the scheduler", got)
	}
}

// TestGateRequiresStreamingScheduler: the gate without a plan-streaming
// scheduler is a configuration error, not a silent always-reject queue.
func TestGateRequiresStreamingScheduler(t *testing.T) {
	_, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), AdHocGate: true})
	if err == nil || !strings.Contains(err.Error(), "plan-streaming") {
		t.Fatalf("New with gate on FIFO = %v, want plan-streaming error", err)
	}
}
