package rmserver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"flowtime/internal/resource"
	"flowtime/internal/rmproto"
	"flowtime/internal/store"
)

// VerifyRecoveryEquivalence is the durability oracle: it checks, on a
// live server, that the state a fresh process would rebuild from the
// store (snapshot + WAL replay) is equivalent to the state the running
// process holds in memory. Under the server's state lock it captures the
// in-memory snapshot and copies the store directory byte-for-byte —
// simulating a SIGKILL at this instant, with no graceful close — then
// opens the copy through the full recovery path and compares normalized
// states.
//
// Normalization removes exactly what recovery is specified to change:
// in-flight leases are requeued (their nodes died with the process), so
// leases are dropped, per-job in-flight volume is zeroed, and fault
// counters — which recovery legitimately bumps — are cleared. Everything
// else must match byte-for-byte.
//
// scratch must be an empty or nonexistent directory; the copy is left
// behind on failure for forensics and removed on success.
func (s *Server) VerifyRecoveryEquivalence(scratch string) error {
	if s.store == nil {
		return errors.New("rmserver: recovery equivalence requires a store")
	}

	s.mu.Lock()
	live, err := s.snapshotLocked()
	if err != nil {
		s.mu.Unlock()
		return fmt.Errorf("rmserver: live snapshot: %w", err)
	}
	err = copyDir(s.store.Dir(), scratch)
	s.mu.Unlock()
	if err != nil {
		return fmt.Errorf("rmserver: copy store dir: %w", err)
	}

	st, err := store.Open(store.Options{Dir: scratch, Policy: store.SyncNever})
	if err != nil {
		return fmt.Errorf("rmserver: open store copy: %w", err)
	}
	rebuilt, rebuildErr := func() ([]byte, error) {
		defer st.Close()
		// The rebuilt server must restart in the same role: a follower's
		// recovery leaves leases in place (promotion requeues them), and a
		// primary's epoch claim is already journaled so recovery rebuilds
		// the same epoch rather than claiming a new one.
		s2, err := New(Config{
			SlotDur:     s.cfg.SlotDur,
			Scheduler:   s.cfg.Scheduler,
			Horizon:     s.cfg.Horizon,
			LeaseExpiry: s.cfg.LeaseExpiry,
			Store:       st,
			Follower:    s.cfg.Follower,
			LeaderURL:   s.cfg.LeaderURL,
		})
		if err != nil {
			return nil, fmt.Errorf("rmserver: recover from copy: %w", err)
		}
		s2.mu.Lock()
		defer s2.mu.Unlock()
		return s2.snapshotLocked()
	}()
	if rebuildErr != nil {
		return rebuildErr
	}

	a, err := normalizeSnapshot(live)
	if err != nil {
		return fmt.Errorf("rmserver: normalize live state: %w", err)
	}
	b, err := normalizeSnapshot(rebuilt)
	if err != nil {
		return fmt.Errorf("rmserver: normalize recovered state: %w", err)
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("rmserver: recovery-equivalence violation (store copy kept at %s):\nlive:      %s\nrecovered: %s",
			scratch, a, b)
	}
	return os.RemoveAll(scratch)
}

// normalizeSnapshot strips the state recovery is allowed to change:
// leases (requeued wholesale), per-job in-flight volume (returned to the
// schedulable remainder by the requeue), and fault counters (bumped by
// the requeues).
func normalizeSnapshot(payload []byte) ([]byte, error) {
	var st snapState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, err
	}
	st.Leases = nil
	st.Faults = rmproto.FaultCounters{}
	for wi := range st.Workflows {
		for ji := range st.Workflows[wi].Jobs {
			st.Workflows[wi].Jobs[ji].InFlight = resource.Vector{}
		}
	}
	for ji := range st.AdHoc {
		st.AdHoc[ji].InFlight = resource.Vector{}
	}
	return json.Marshal(&st)
}

// copyDir copies the flat store directory (WAL segments + snapshots)
// into dst, creating it. Called with the server lock held so no append
// races the copy: the result is exactly what a crash at this instant
// would leave on disk.
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}
