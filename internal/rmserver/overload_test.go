package rmserver

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"flowtime/internal/rmproto"
	"flowtime/internal/sched"
)

func newOverloadedRM(t *testing.T, oc OverloadConfig) (*Server, *httptest.Server) {
	t.Helper()
	rm, err := New(Config{SlotDur: slotDur, Scheduler: sched.NewFIFO(), Overload: &oc})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(rm.Handler())
	t.Cleanup(srv.Close)
	return rm, srv
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

// TestOverloadShedsSubmissions saturates the submit class and asserts
// the full shed contract: 503, code "overloaded", Retry-After header,
// retry_after_ms body, and shed counters in /v1/status.
func TestOverloadShedsSubmissions(t *testing.T) {
	rm, srv := newOverloadedRM(t, OverloadConfig{
		SubmitConcurrency: 1,
		QueueDepth:        1,
		MaxWait:           30 * time.Millisecond,
		RetryAfter:        1500 * time.Millisecond,
	})

	// Occupy the single submit slot so HTTP submissions must queue.
	release, err := rm.admission.acquire(context.Background(), classSubmit)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()

	// First arrival queues (the only permitted waiter), times out after
	// MaxWait, and is shed with "queue_timeout".
	resp := postJSON(t, srv.URL+"/v1/workflows", `{"id":"wf1","jobs":[]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After header %q, want \"2\" (1.5s rounded up)", ra)
	}
	var e rmproto.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode error body: %v", err)
	}
	if e.Code != rmproto.CodeOverloaded {
		t.Errorf("code %q, want %q", e.Code, rmproto.CodeOverloaded)
	}
	if e.RetryAfterMs != 1500 {
		t.Errorf("retry_after_ms %d, want 1500", e.RetryAfterMs)
	}

	// Now hold a waiter in the queue and push one more arrival past
	// QueueDepth: shed immediately with "queue_full".
	waiterDone := make(chan error, 1)
	go func() {
		rel, err := rm.admission.acquire(context.Background(), classSubmit)
		if err == nil {
			rel()
		}
		waiterDone <- err
	}()
	deadline := time.Now().Add(time.Second)
	for rm.admission.submit.waiters.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp2 := postJSON(t, srv.URL+"/v1/workflows", `{"id":"wf2","jobs":[]}`)
	_, _ = io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("beyond-queue-depth status %d, want 503", resp2.StatusCode)
	}
	<-waiterDone

	st := rm.Status()
	if st.Overload == nil {
		t.Fatal("Status().Overload missing with Config.Overload set")
	}
	if st.Overload.ShedTotal < 2 {
		t.Errorf("ShedTotal = %d, want >= 2", st.Overload.ShedTotal)
	}
	if st.Overload.ShedByReason["queue_timeout"] == 0 || st.Overload.ShedByReason["queue_full"] == 0 {
		t.Errorf("ShedByReason = %v, want queue_timeout and queue_full entries", st.Overload.ShedByReason)
	}
}

// TestOverloadPriorityShedding proves confirms stay ahead: while the
// confirm class has queued waiters, new submissions are shed instantly
// with reason "priority", and heartbeats are still admitted once a
// confirm slot frees.
func TestOverloadPriorityShedding(t *testing.T) {
	rm, srv := newOverloadedRM(t, OverloadConfig{
		SubmitConcurrency:  4,
		ConfirmConcurrency: 1,
		QueueDepth:         4,
		MaxWait:            500 * time.Millisecond,
	})

	// Saturate the confirm class and park one waiter behind it.
	release, err := rm.admission.acquire(context.Background(), classConfirm)
	if err != nil {
		t.Fatalf("acquire confirm: %v", err)
	}
	waiterAdmitted := make(chan struct{})
	go func() {
		rel, err := rm.admission.acquire(context.Background(), classConfirm)
		if err == nil {
			rel()
		}
		close(waiterAdmitted)
	}()
	deadline := time.Now().Add(time.Second)
	for rm.admission.confirm.waiters.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("confirm waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// A submission now sheds immediately — no queueing, reason "priority"
	// — even though the submit class itself has free slots.
	start := time.Now()
	resp := postJSON(t, srv.URL+"/v1/adhoc", `{"id":"j1"}`)
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during confirm pressure: status %d, want 503", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("priority shed took %v, want immediate (no queue wait)", elapsed)
	}
	if got := rm.Status().Overload.ShedByReason["priority"]; got == 0 {
		t.Error("no \"priority\" shed recorded")
	}

	// Freeing the confirm slot admits the queued confirm waiter.
	release()
	select {
	case <-waiterAdmitted:
	case <-time.After(2 * time.Second):
		t.Fatal("confirm waiter starved after slot freed")
	}
}

// TestOverloadConfirmsFlowDuringSubmitFlood is the headline property:
// heartbeat traffic is isolated from a saturated submit class.
func TestOverloadConfirmsFlowDuringSubmitFlood(t *testing.T) {
	rm, srv := newOverloadedRM(t, OverloadConfig{
		SubmitConcurrency: 1,
		QueueDepth:        1,
		MaxWait:           20 * time.Millisecond,
	})
	// Saturate submit entirely.
	release, err := rm.admission.acquire(context.Background(), classSubmit)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	defer release()

	resp := postJSON(t, srv.URL+"/v1/nodes/register",
		`{"node_id":"n1","capacity":{"vcores":4,"memory_mb":1024}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("register during submit flood: status %d body %s, want 200", resp.StatusCode, body)
	}
	hb := postJSON(t, srv.URL+"/v1/nodes/heartbeat", `{"node_id":"n1"}`)
	_, _ = io.Copy(io.Discard, hb.Body)
	hb.Body.Close()
	if hb.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat during submit flood: status %d, want 200", hb.StatusCode)
	}
	if got := rm.Status().Nodes; got != 1 {
		t.Errorf("nodes = %d, want 1", got)
	}
}

// TestOverloadedCallsRetryable: a shed must be retryable so the
// client's policy backs off and retries rather than giving up.
func TestOverloadedCallsRetryable(t *testing.T) {
	err := error(&StatusError{StatusCode: http.StatusServiceUnavailable, Code: rmproto.CodeOverloaded})
	if !Retryable(err) {
		t.Error("overloaded 503 classified permanent")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Error("wire-form overloaded error does not match sentinel")
	}
}

// TestWatchdogStuckTick exercises trip latching: one trip per
// excursion, cleared by a tick, trippable again.
func TestWatchdogStuckTick(t *testing.T) {
	w := newWatchdog(WatchdogConfig{StuckTickAfter: 100 * time.Millisecond})
	t0 := time.Now()
	w.noteTick(t0)

	w.check(t0.Add(50*time.Millisecond), 0, false)
	if st := w.status(t0); st.StuckTick || st.Trips["stuck_tick"] != 0 {
		t.Fatalf("tripped early: %+v", st)
	}
	w.check(t0.Add(200*time.Millisecond), 0, false)
	w.check(t0.Add(300*time.Millisecond), 0, false) // same excursion
	if st := w.status(t0.Add(300 * time.Millisecond)); !st.StuckTick || st.Trips["stuck_tick"] != 1 {
		t.Fatalf("after stall: %+v, want active with exactly 1 trip", st)
	}
	// The tick clears the excursion; a second stall is a second trip.
	w.noteTick(t0.Add(310 * time.Millisecond))
	w.check(t0.Add(320*time.Millisecond), 0, false)
	if st := w.status(t0.Add(320 * time.Millisecond)); st.StuckTick {
		t.Fatalf("still active after tick: %+v", st)
	}
	w.check(t0.Add(600*time.Millisecond), 0, false)
	if st := w.status(t0.Add(600 * time.Millisecond)); st.Trips["stuck_tick"] != 2 {
		t.Fatalf("second excursion: %+v, want 2 trips", st)
	}
}

func TestWatchdogReplLag(t *testing.T) {
	w := newWatchdog(WatchdogConfig{ReplLagRecords: 3})
	now := time.Now()
	w.check(now, 10, false) // no follower: absence is not a fault
	if st := w.status(now); st.ReplLagExceeded {
		t.Fatal("lag detector tripped with no follower")
	}
	w.check(now, 5, true)
	w.check(now, 7, true) // same excursion
	if st := w.status(now); !st.ReplLagExceeded || st.Trips["repl_lag"] != 1 {
		t.Fatalf("lagging: %+v, want active with 1 trip", st)
	}
	w.check(now, 1, true) // caught up
	w.check(now, 9, true) // lags again
	if st := w.status(now); st.Trips["repl_lag"] != 2 {
		t.Fatalf("re-lag: %+v, want 2 trips", st)
	}
}

// TestMetricsExportOverloadAndWatchdog asserts the new series appear in
// /metrics with the documented names.
func TestMetricsExportOverloadAndWatchdog(t *testing.T) {
	rm, err := New(Config{
		SlotDur:   slotDur,
		Scheduler: sched.NewFIFO(),
		Overload:  &OverloadConfig{SubmitConcurrency: 1, QueueDepth: 1, MaxWait: 5 * time.Millisecond},
		Watchdog:  WatchdogConfig{StuckTickAfter: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(rm.Handler())
	defer srv.Close()

	// Provoke one shed and one stuck-tick trip so labeled series exist.
	release, _ := rm.admission.acquire(context.Background(), classSubmit)
	_, _ = rm.admission.acquire(context.Background(), classSubmit)
	release()
	rm.watchdog.noteTick(time.Now().Add(-time.Second))
	rm.CheckWatchdogs(time.Now())

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		`flowtime_shed_total{reason="queue_timeout"} 1`,
		"flowtime_admission_queue_depth 0",
		"flowtime_retry_budget_exhausted_total",
		`flowtime_watchdog_trips_total{kind="stuck_tick"} 1`,
		"flowtime_watchdog_stuck_tick 1",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	st := rm.Status()
	if st.Watchdog == nil || !st.Watchdog.StuckTick {
		t.Errorf("Status().Watchdog = %+v, want stuck tick reported", st.Watchdog)
	}
}
