// Package cluster models the simulated datacenter's capacity over time.
// The paper's formulation indexes capacity by slot (C[t][r], Eq. 4) and
// notes that "the resource cap could vary with time to provide more
// flexibility to different situations"; this package provides the profile
// machinery behind that: machine sets, scheduled joins/leaves (rolling
// maintenance, failures), and step-function caps, all compiled into the
// CapAt(slot) function the schedulers and simulator consume.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"flowtime/internal/resource"
)

// Machine is one node of the cluster.
type Machine struct {
	// ID identifies the machine.
	ID string
	// Capacity is the machine's resources.
	Capacity resource.Vector
	// From is the first slot the machine is available (inclusive).
	From int64
	// Until is the last slot the machine is available (exclusive);
	// 0 means forever.
	Until int64
}

// Validate checks the machine invariants.
func (m Machine) Validate() error {
	if m.ID == "" {
		return errors.New("cluster: machine with empty ID")
	}
	if err := m.Capacity.Validate(); err != nil {
		return fmt.Errorf("cluster: machine %s: %w", m.ID, err)
	}
	if m.Capacity.IsZero() {
		return fmt.Errorf("cluster: machine %s: zero capacity", m.ID)
	}
	if m.From < 0 {
		return fmt.Errorf("cluster: machine %s: negative From %d", m.ID, m.From)
	}
	if m.Until != 0 && m.Until <= m.From {
		return fmt.Errorf("cluster: machine %s: Until %d <= From %d", m.ID, m.Until, m.From)
	}
	return nil
}

// Profile is a compiled capacity-over-time function. The zero value is an
// empty cluster; build profiles with New or Constant.
type Profile struct {
	// breakpoints are slot indices where capacity changes; caps[i] applies
	// to slots in [breakpoints[i], breakpoints[i+1]).
	breakpoints []int64
	caps        []resource.Vector
}

// Constant returns a profile with fixed capacity at every slot.
func Constant(c resource.Vector) *Profile {
	return &Profile{breakpoints: []int64{0}, caps: []resource.Vector{c}}
}

// New compiles a machine set into a step-function profile.
func New(machines []Machine) (*Profile, error) {
	seen := make(map[string]bool, len(machines))
	type event struct {
		slot  int64
		delta resource.Vector
		neg   bool
	}
	var events []event
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			return nil, err
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate machine ID %q", m.ID)
		}
		seen[m.ID] = true
		events = append(events, event{slot: m.From, delta: m.Capacity})
		if m.Until > 0 {
			events = append(events, event{slot: m.Until, delta: m.Capacity, neg: true})
		}
	}
	sort.Slice(events, func(a, b int) bool { return events[a].slot < events[b].slot })

	p := &Profile{}
	var current resource.Vector
	push := func(slot int64) {
		n := len(p.breakpoints)
		if n > 0 && p.breakpoints[n-1] == slot {
			p.caps[n-1] = current
			return
		}
		p.breakpoints = append(p.breakpoints, slot)
		p.caps = append(p.caps, current)
	}
	if len(events) == 0 || events[0].slot > 0 {
		push(0) // empty until the first machine joins
	}
	for _, e := range events {
		if e.neg {
			current = current.SubClamped(e.delta)
		} else {
			current = current.Add(e.delta)
		}
		push(e.slot)
	}
	return p, nil
}

// CapAt returns the capacity at the given slot. Slots before 0 report the
// slot-0 capacity.
func (p *Profile) CapAt(slot int64) resource.Vector {
	if len(p.breakpoints) == 0 {
		return resource.Vector{}
	}
	// Binary search for the last breakpoint <= slot.
	i := sort.Search(len(p.breakpoints), func(k int) bool { return p.breakpoints[k] > slot })
	if i == 0 {
		return p.caps[0]
	}
	return p.caps[i-1]
}

// Func adapts the profile to the func(slot) capacity signature used by
// sim.Config and sched.ClusterView.
func (p *Profile) Func() func(int64) resource.Vector {
	return p.CapAt
}

// Peak returns the maximum capacity over all steps.
func (p *Profile) Peak() resource.Vector {
	var peak resource.Vector
	for _, c := range p.caps {
		peak = peak.Max(c)
	}
	return peak
}

// WithDip returns a copy of the profile with capacity multiplied by
// num/den during [from, until) — a convenient way to model partial
// outages and maintenance windows in experiments.
func (p *Profile) WithDip(from, until int64, num, den int64) (*Profile, error) {
	if until <= from {
		return nil, fmt.Errorf("cluster: dip window [%d, %d) empty", from, until)
	}
	if num < 0 || den <= 0 || num > den {
		return nil, fmt.Errorf("cluster: dip fraction %d/%d out of range", num, den)
	}
	out := &Profile{}
	addStep := func(slot int64, c resource.Vector) {
		n := len(out.breakpoints)
		if n > 0 && out.breakpoints[n-1] == slot {
			out.caps[n-1] = c
			return
		}
		if n > 0 && out.caps[n-1] == c {
			return
		}
		out.breakpoints = append(out.breakpoints, slot)
		out.caps = append(out.caps, c)
	}
	scale := func(c resource.Vector) resource.Vector {
		var s resource.Vector
		for _, k := range resource.Kinds() {
			s = s.With(k, c.Get(k)*num/den)
		}
		return s
	}
	// Merge the original breakpoints with the dip boundaries.
	slots := append([]int64(nil), p.breakpoints...)
	slots = append(slots, from, until)
	sort.Slice(slots, func(a, b int) bool { return slots[a] < slots[b] })
	prev := int64(-1)
	for _, s := range slots {
		if s == prev {
			continue
		}
		prev = s
		c := p.CapAt(s)
		if s >= from && s < until {
			c = scale(c)
		}
		addStep(s, c)
	}
	return out, nil
}
