package cluster

import (
	"testing"

	"flowtime/internal/resource"
)

func machine(id string, cores int64, from, until int64) Machine {
	return Machine{
		ID:       id,
		Capacity: resource.New(cores, cores*2048),
		From:     from,
		Until:    until,
	}
}

func TestMachineValidate(t *testing.T) {
	tests := []struct {
		name string
		m    Machine
		ok   bool
	}{
		{"valid", machine("a", 4, 0, 0), true},
		{"valid bounded", machine("a", 4, 5, 10), true},
		{"empty id", machine("", 4, 0, 0), false},
		{"zero capacity", Machine{ID: "a"}, false},
		{"negative from", machine("a", 4, -1, 0), false},
		{"until before from", machine("a", 4, 10, 5), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.m.Validate()
			if tt.ok && err != nil {
				t.Errorf("Validate = %v, want nil", err)
			}
			if !tt.ok && err == nil {
				t.Error("Validate = nil, want error")
			}
		})
	}
}

func TestConstant(t *testing.T) {
	p := Constant(resource.New(10, 100))
	for _, slot := range []int64{0, 1, 1000} {
		if got := p.CapAt(slot); got != resource.New(10, 100) {
			t.Errorf("CapAt(%d) = %v", slot, got)
		}
	}
}

func TestNewStepFunction(t *testing.T) {
	p, err := New([]Machine{
		machine("a", 10, 0, 0), // always
		machine("b", 6, 5, 20), // joins at 5, leaves at 20
		machine("c", 4, 10, 0), // joins at 10
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	tests := []struct {
		slot  int64
		cores int64
	}{
		{0, 10}, {4, 10}, {5, 16}, {9, 16}, {10, 20}, {19, 20}, {20, 14}, {100, 14},
	}
	for _, tt := range tests {
		if got := p.CapAt(tt.slot).Get(resource.VCores); got != tt.cores {
			t.Errorf("CapAt(%d) cores = %d, want %d", tt.slot, got, tt.cores)
		}
	}
	if got := p.Peak().Get(resource.VCores); got != 20 {
		t.Errorf("Peak cores = %d, want 20", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Machine{machine("a", 4, 0, 0), machine("a", 4, 0, 0)}); err == nil {
		t.Error("duplicate machine accepted")
	}
	if _, err := New([]Machine{{ID: "x"}}); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestEmptyCluster(t *testing.T) {
	p, err := New(nil)
	if err != nil {
		t.Fatalf("New(nil): %v", err)
	}
	if got := p.CapAt(5); !got.IsZero() {
		t.Errorf("empty cluster CapAt = %v, want zero", got)
	}
}

func TestDelayedFirstMachine(t *testing.T) {
	p, err := New([]Machine{machine("a", 8, 10, 0)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got := p.CapAt(0); !got.IsZero() {
		t.Errorf("CapAt(0) = %v, want zero before first join", got)
	}
	if got := p.CapAt(10).Get(resource.VCores); got != 8 {
		t.Errorf("CapAt(10) cores = %d, want 8", got)
	}
}

func TestWithDip(t *testing.T) {
	p := Constant(resource.New(100, 1000))
	dipped, err := p.WithDip(10, 20, 1, 2)
	if err != nil {
		t.Fatalf("WithDip: %v", err)
	}
	tests := []struct {
		slot  int64
		cores int64
	}{
		{0, 100}, {9, 100}, {10, 50}, {19, 50}, {20, 100},
	}
	for _, tt := range tests {
		if got := dipped.CapAt(tt.slot).Get(resource.VCores); got != tt.cores {
			t.Errorf("CapAt(%d) = %d, want %d", tt.slot, got, tt.cores)
		}
	}

	if _, err := p.WithDip(20, 10, 1, 2); err == nil {
		t.Error("empty dip window accepted")
	}
	if _, err := p.WithDip(0, 5, 3, 2); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := p.WithDip(0, 5, -1, 2); err == nil {
		t.Error("negative fraction accepted")
	}
}

func TestFuncAdapter(t *testing.T) {
	p := Constant(resource.New(7, 70))
	f := p.Func()
	if got := f(3); got != resource.New(7, 70) {
		t.Errorf("Func()(3) = %v", got)
	}
}
