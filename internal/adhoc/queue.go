// Package adhoc implements the lock-free batched ad-hoc admission queue:
// the fast path that admits or rejects an ad-hoc job in O(window) against
// the plan's leftover capacity without waking the LP.
//
// The paper's leftover policy makes this exact: FlowTime's lexicographic
// objective minimizes the planned deadline skyline precisely so that
// leftover := capacity − planned load is maximal at every slot, and an
// ad-hoc job is admissible iff its demand fits in that leftover. Because
// the LP's resource kinds share no variables or constraints, each kind
// can be charged independently — admission decomposes into per-(slot,
// kind) counters.
//
// Concurrency model: the queue holds an immutable *epoch* — the leftover
// profile of one plan revision as per-slot, per-kind atomic free
// counters — swapped wholesale on Rebase when the planner publishes a
// new revision. Submitters never take a lock: they charge the counters
// with an overdraft-and-repay fetch-add (decrement first, give back what
// overshot), which can transiently drive a counter negative but can
// never hand the same unit to two jobs; a rejected submission repays
// everything it took. Each admission appends one record to the epoch's
// lock-free charge log. Rebase publishes the next epoch, waits for
// in-flight submitters on the old epoch to finish (submitters never
// wait — only the planner does, briefly), then drains the old epoch's
// charge log and consumed totals for the planner to fold into the next
// replan.
package adhoc

import (
	"runtime"
	"sync/atomic"

	"flowtime/internal/resource"
)

// Request is one ad-hoc admission request: demand volume per kind, a
// per-slot parallelism ceiling, and the window of absolute slots the
// work may occupy.
type Request struct {
	ID string
	// Rel (inclusive) and Dl (exclusive) bound the window in absolute
	// slots. The effective window is the intersection with the current
	// epoch's slot range.
	Rel, Dl int64
	// Demand is the total volume to place, per kind.
	Demand resource.Vector
	// PerSlot caps the per-slot take, per kind (0 = no cap beyond the
	// slot's leftover).
	PerSlot resource.Vector
}

// Charge records one admitted request's exact per-slot takes, for the
// planner to drain at the next replan.
type Charge struct {
	ID string
	// From is the absolute slot of Taken[0].
	From int64
	// Taken[i] is the volume charged at slot From+i.
	Taken []resource.Vector
}

// Drain is the outcome of retiring one epoch: everything admitted
// against it since the previous Rebase.
type Drain struct {
	// Rev is the plan revision the retired epoch was built from (-1 when
	// there was no epoch yet).
	Rev int64
	// From is the absolute slot of Consumed[0].
	From int64
	// Charges lists every admission in this epoch, in no particular
	// order (the log is written lock-free from many goroutines).
	Charges []Charge
	// Consumed[i] is the total volume admitted at slot From+i — exactly
	// initial leftover minus remaining free.
	Consumed []resource.Vector
}

// Stats are the queue's monotonic admission counters.
type Stats struct {
	Admitted int64
	Rejected int64
	Rebases  int64
}

// kindCounters is the per-slot free-capacity cell: one atomic counter
// per resource kind.
type kindCounters [resource.NumKinds]atomic.Int64

const logChunkSize = 1024

// logChunk is one block of the epoch's lock-free charge log. Writers
// reserve a cell with a fetch-add on n and link overflow chunks with a
// CAS; the reader only walks the chain after the epoch has quiesced.
type logChunk struct {
	n       atomic.Int64
	entries [logChunkSize]Charge
	next    atomic.Pointer[logChunk]
}

// epoch is the leftover profile of one plan revision. Immutable except
// for the atomic counters and the charge log.
type epoch struct {
	rev     int64
	from    int64
	nSlots  int64
	initial []resource.Vector
	free    []kindCounters
	// writers counts in-flight Submit calls against this epoch; Rebase
	// waits for it to reach zero before draining.
	writers atomic.Int64
	log     logChunk
}

// Queue is the admission queue. The zero value is unusable; call New.
// Submit is safe for any number of concurrent callers; Rebase must be
// called from one goroutine at a time (the planner's replan path).
type Queue struct {
	epoch    atomic.Pointer[epoch]
	admitted atomic.Int64
	rejected atomic.Int64
	rebases  atomic.Int64
}

// New returns an empty queue. Until the first Rebase publishes a
// leftover profile every submission is rejected — with no plan there is
// no leftover to admit against.
func New() *Queue { return &Queue{} }

// Rev returns the plan revision of the current epoch (-1 before the
// first Rebase).
func (q *Queue) Rev() int64 {
	e := q.epoch.Load()
	if e == nil {
		return -1
	}
	return e.rev
}

// Stats returns the queue's admission counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Admitted: q.admitted.Load(),
		Rejected: q.rejected.Load(),
		Rebases:  q.rebases.Load(),
	}
}

// Submit admits or rejects one request in O(window): for each kind it
// walks the effective window charging free capacity with overdraft-and-
// repay fetch-adds, and either places the full demand (admit — the exact
// per-slot takes are appended to the charge log) or repays every unit it
// took (reject). Never blocks, never overcharges: a unit repaid was
// never observable as admitted, and a unit kept was subtracted from the
// shared counter exactly once.
func (q *Queue) Submit(req Request) bool {
	e := q.epoch.Load()
	if e == nil {
		q.rejected.Add(1)
		return false
	}
	e.writers.Add(1)
	ok := e.charge(req)
	e.writers.Add(-1)
	if ok {
		q.admitted.Add(1)
	} else {
		q.rejected.Add(1)
	}
	return ok
}

func (e *epoch) charge(req Request) bool {
	lo, hi := req.Rel, req.Dl
	if lo < e.from {
		lo = e.from
	}
	if end := e.from + e.nSlots; hi > end {
		hi = end
	}
	if lo >= hi {
		return req.Demand.IsZero()
	}
	n := hi - lo
	var taken []resource.Vector
	for ki := range resource.Kinds() {
		need := req.Demand[ki]
		if need < 0 {
			e.rollback(taken, lo)
			return false
		}
		if need == 0 {
			continue
		}
		perSlot := req.PerSlot[ki]
		for off := int64(0); off < n && need > 0; off++ {
			want := need
			if perSlot > 0 && want > perSlot {
				want = perSlot
			}
			c := &e.free[lo+off-e.from][ki]
			got := want
			if after := c.Add(-want); after < 0 {
				// Overdraft: repay what was not actually there.
				got = want + after
				if got < 0 {
					got = 0
				}
				c.Add(want - got)
			}
			if got == 0 {
				continue
			}
			if taken == nil {
				taken = make([]resource.Vector, n)
			}
			taken[off][ki] += got
			need -= got
		}
		if need > 0 {
			e.rollback(taken, lo)
			return false
		}
	}
	if req.Demand.IsZero() {
		return true
	}
	e.log.append(Charge{ID: req.ID, From: lo, Taken: taken})
	return true
}

// rollback repays every unit recorded in taken.
func (e *epoch) rollback(taken []resource.Vector, lo int64) {
	for off, v := range taken {
		for ki := range resource.Kinds() {
			if v[ki] > 0 {
				e.free[lo+int64(off)-e.from][ki].Add(v[ki])
			}
		}
	}
}

// append reserves a cell in the chunk chain and writes the charge. The
// final writers.Add(-1) in Submit orders the write before any reader
// that observed writers == 0.
func (c *logChunk) append(ch Charge) {
	for {
		idx := c.n.Add(1) - 1
		if idx < logChunkSize {
			c.entries[idx] = ch
			return
		}
		if c.next.Load() == nil {
			c.next.CompareAndSwap(nil, &logChunk{})
		}
		c = c.next.Load()
	}
}

// collect walks the chunk chain after quiescence.
func (c *logChunk) collect() []Charge {
	var out []Charge
	for c != nil {
		n := c.n.Load()
		if n > logChunkSize {
			n = logChunkSize
		}
		out = append(out, c.entries[:n]...)
		c = c.next.Load()
	}
	return out
}

// Rebase atomically publishes the leftover profile of a new plan
// revision — leftover[i] is the free capacity at absolute slot from+i —
// and retires the previous epoch, returning everything that was admitted
// against it. New submissions switch to the new profile immediately;
// Rebase then waits (spinning, typically nanoseconds) for submissions
// already in flight on the old epoch to finish, so the returned drain is
// complete and the consumed totals are final.
func (q *Queue) Rebase(rev, from int64, leftover []resource.Vector) Drain {
	next := &epoch{
		rev:     rev,
		from:    from,
		nSlots:  int64(len(leftover)),
		initial: make([]resource.Vector, len(leftover)),
		free:    make([]kindCounters, len(leftover)),
	}
	for i, v := range leftover {
		for ki := range resource.Kinds() {
			amt := v[ki]
			if amt < 0 {
				amt = 0 // a skyline above capacity yields no leftover, not debt
			}
			next.initial[i][ki] = amt
			next.free[i][ki].Store(amt)
		}
	}
	old := q.epoch.Swap(next)
	q.rebases.Add(1)
	if old == nil {
		return Drain{Rev: -1}
	}
	for old.writers.Load() != 0 {
		runtime.Gosched()
	}
	d := Drain{
		Rev:      old.rev,
		From:     old.from,
		Charges:  old.log.collect(),
		Consumed: make([]resource.Vector, old.nSlots),
	}
	for i := range d.Consumed {
		for ki := range resource.Kinds() {
			d.Consumed[i][ki] = old.initial[i][ki] - old.free[i][ki].Load()
		}
	}
	return d
}
