package adhoc

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"flowtime/internal/resource"
)

func flatLeftover(n int, vcores, mem int64) []resource.Vector {
	out := make([]resource.Vector, n)
	for i := range out {
		out[i] = resource.New(vcores, mem)
	}
	return out
}

func TestRejectBeforeFirstRebase(t *testing.T) {
	q := New()
	if q.Submit(Request{ID: "x", Rel: 0, Dl: 4, Demand: resource.New(1, 1)}) {
		t.Fatalf("admission with no epoch published")
	}
	if q.Rev() != -1 {
		t.Fatalf("Rev = %d before first rebase, want -1", q.Rev())
	}
	if s := q.Stats(); s.Rejected != 1 || s.Admitted != 0 {
		t.Fatalf("stats %+v, want 1 rejection", s)
	}
}

func TestAdmitChargesExactly(t *testing.T) {
	q := New()
	q.Rebase(1, 10, flatLeftover(4, 4, 400))
	// 6 vcores across [10,14) capped at 2/slot: slots 10,11,12 → 2+2+2.
	if !q.Submit(Request{ID: "j1", Rel: 10, Dl: 14, Demand: resource.New(6, 300), PerSlot: resource.New(2, 100)}) {
		t.Fatalf("feasible request rejected")
	}
	d := q.Rebase(2, 10, flatLeftover(4, 4, 400))
	if d.Rev != 1 || len(d.Charges) != 1 {
		t.Fatalf("drain rev %d with %d charges, want rev 1 with 1", d.Rev, len(d.Charges))
	}
	ch := d.Charges[0]
	if ch.ID != "j1" || ch.From != 10 {
		t.Fatalf("charge %+v", ch)
	}
	var total resource.Vector
	for _, v := range ch.Taken {
		total = total.Add(v)
	}
	if total != resource.New(6, 300) {
		t.Fatalf("charged %v, want <6,300>", total)
	}
	for i, v := range ch.Taken {
		if v.Get(resource.VCores) > 2 || v.Get(resource.MemoryMB) > 100 {
			t.Fatalf("slot %d take %v exceeds per-slot cap", i, v)
		}
	}
	var consumed resource.Vector
	for _, v := range d.Consumed {
		consumed = consumed.Add(v)
	}
	if consumed != total {
		t.Fatalf("consumed %v != charged %v", consumed, total)
	}
}

func TestRejectRollsBackFully(t *testing.T) {
	q := New()
	q.Rebase(1, 0, flatLeftover(2, 3, 300))
	// 10 vcores cannot fit in 2 slots × 3 free.
	if q.Submit(Request{ID: "big", Rel: 0, Dl: 2, Demand: resource.New(10, 10)}) {
		t.Fatalf("infeasible request admitted")
	}
	// The rollback must leave the full leftover available.
	if !q.Submit(Request{ID: "ok", Rel: 0, Dl: 2, Demand: resource.New(6, 300)}) {
		t.Fatalf("full leftover not available after rejection rollback")
	}
	d := q.Rebase(2, 0, flatLeftover(2, 3, 300))
	if len(d.Charges) != 1 || d.Charges[0].ID != "ok" {
		t.Fatalf("charge log %+v, want only job ok", d.Charges)
	}
}

func TestWindowOutsideEpochRejected(t *testing.T) {
	q := New()
	q.Rebase(1, 10, flatLeftover(4, 4, 400))
	if q.Submit(Request{ID: "past", Rel: 2, Dl: 8, Demand: resource.New(1, 1)}) {
		t.Fatalf("window entirely before the epoch admitted")
	}
	if q.Submit(Request{ID: "future", Rel: 20, Dl: 30, Demand: resource.New(1, 1)}) {
		t.Fatalf("window entirely after the epoch admitted")
	}
	// Zero demand is trivially admissible anywhere.
	if !q.Submit(Request{ID: "empty", Rel: 2, Dl: 8}) {
		t.Fatalf("zero-demand request rejected")
	}
}

func TestPartialWindowOverlapCharges(t *testing.T) {
	q := New()
	q.Rebase(1, 10, flatLeftover(4, 2, 200))
	// Window [8,12) overlaps epoch slots 10,11 only: 4 vcores at 2/slot fits.
	if !q.Submit(Request{ID: "edge", Rel: 8, Dl: 12, Demand: resource.New(4, 100), PerSlot: resource.New(2, 100)}) {
		t.Fatalf("overlapping request rejected")
	}
	d := q.Rebase(2, 10, flatLeftover(4, 2, 200))
	if d.Charges[0].From != 10 {
		t.Fatalf("charge From = %d, want clamped to 10", d.Charges[0].From)
	}
}

// TestConcurrentSubmitNoOvercharge is the deterministic -race workhorse:
// many goroutines submit while the planner rebases concurrently. The
// interleaving varies; the invariants may not:
//
//  1. No overcharge: per epoch, the drained consumed volume never
//     exceeds the leftover published for any slot/kind, and equals the
//     sum of the drained charges exactly.
//  2. Exactly-once accounting: every submission is admitted exactly once
//     (its ID appears in exactly one drain) or rejected exactly once;
//     admitted + rejected == submitted.
func TestConcurrentSubmitNoOvercharge(t *testing.T) {
	const (
		goroutines = 8
		perG       = 400
		slots      = 6
		vcores     = 16
		mem        = 16000
	)
	q := New()
	q.Rebase(1, 0, flatLeftover(slots, vcores, mem))

	var wg sync.WaitGroup
	admittedByID := make([]map[string]bool, goroutines)
	rejectedByID := make([]map[string]bool, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		adm, rej := map[string]bool{}, map[string]bool{}
		admittedByID[g], rejectedByID[g] = adm, rej
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				req := Request{
					ID:      id,
					Rel:     rng.Int63n(slots),
					Demand:  resource.New(1+rng.Int63n(4), 100*(1+rng.Int63n(4))),
					PerSlot: resource.New(2, 400),
				}
				req.Dl = req.Rel + 1 + rng.Int63n(slots-req.Rel)
				if q.Submit(req) {
					adm[id] = true
				} else {
					rej[id] = true
				}
			}
		}(g)
	}

	// The "planner": rebase concurrently with the submitters, collecting
	// every drain. Each rebase republishes the full leftover (as a replan
	// folding the charges back in would).
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	var drains []Drain
	rev := int64(2)
	for {
		select {
		case <-done:
			drains = append(drains, q.Rebase(rev, 0, flatLeftover(slots, vcores, mem)))
			goto check
		default:
			drains = append(drains, q.Rebase(rev, 0, flatLeftover(slots, vcores, mem)))
			rev++
		}
	}

check:
	seen := make(map[string]int)
	for _, d := range drains {
		var chargeTotal [slots]resource.Vector
		for _, ch := range d.Charges {
			seen[ch.ID]++
			for off, v := range ch.Taken {
				if v.AnyNegative() {
					t.Fatalf("negative charge %v for %s", v, ch.ID)
				}
				chargeTotal[ch.From+int64(off)] = chargeTotal[ch.From+int64(off)].Add(v)
			}
		}
		for s := 0; s < slots; s++ {
			if int64(len(d.Consumed)) <= int64(s) {
				break
			}
			if d.Consumed[s].AnyNegative() {
				t.Fatalf("epoch rev %d slot %d consumed %v negative", d.Rev, s, d.Consumed[s])
			}
			if !d.Consumed[s].FitsIn(resource.New(vcores, mem)) {
				t.Fatalf("OVERCHARGE: epoch rev %d slot %d consumed %v > leftover <%d,%d>",
					d.Rev, s, d.Consumed[s], vcores, mem)
			}
			if chargeTotal[s] != d.Consumed[s] {
				t.Fatalf("epoch rev %d slot %d: charge log total %v != consumed %v",
					d.Rev, s, chargeTotal[s], d.Consumed[s])
			}
		}
	}

	admitted, rejected := 0, 0
	for g := 0; g < goroutines; g++ {
		admitted += len(admittedByID[g])
		rejected += len(rejectedByID[g])
		for id := range admittedByID[g] {
			if seen[id] != 1 {
				t.Fatalf("admitted %s appears in %d drains, want exactly 1", id, seen[id])
			}
		}
		for id := range rejectedByID[g] {
			if seen[id] != 0 {
				t.Fatalf("rejected %s appears in a charge log", id)
			}
		}
	}
	if admitted+rejected != goroutines*perG {
		t.Fatalf("accounting: %d admitted + %d rejected != %d submitted", admitted, rejected, goroutines*perG)
	}
	if len(seen) != admitted {
		t.Fatalf("%d distinct charged IDs, %d admitted", len(seen), admitted)
	}
	s := q.Stats()
	if s.Admitted != int64(admitted) || s.Rejected != int64(rejected) {
		t.Fatalf("counter drift: stats %+v vs observed %d/%d", s, admitted, rejected)
	}
	if admitted == 0 {
		t.Fatalf("nothing admitted; the test exercised no contention")
	}
	t.Logf("admitted %d, rejected %d across %d rebases", admitted, rejected, len(drains))
}

// TestChargeLogOverflowsChunks fills more than one log chunk in a single
// epoch to cover the CAS-linked overflow path.
func TestChargeLogOverflowsChunks(t *testing.T) {
	q := New()
	n := logChunkSize*2 + 17
	q.Rebase(1, 0, flatLeftover(1, int64(n), int64(n)))
	for i := 0; i < n; i++ {
		if !q.Submit(Request{ID: fmt.Sprintf("c%d", i), Rel: 0, Dl: 1, Demand: resource.New(1, 1)}) {
			t.Fatalf("submission %d rejected with capacity left", i)
		}
	}
	d := q.Rebase(2, 0, flatLeftover(1, 1, 1))
	if len(d.Charges) != n {
		t.Fatalf("drained %d charges, want %d", len(d.Charges), n)
	}
	if d.Consumed[0] != resource.New(int64(n), int64(n)) {
		t.Fatalf("consumed %v, want <%d,%d>", d.Consumed[0], n, n)
	}
}
