package plan

import (
	"math/rand"
	"reflect"
	"testing"

	"flowtime/internal/resource"
)

// FuzzDecodeDiff feeds arbitrary bytes to the diff codec: it must never
// panic, and whenever it claims success the decoded diff must be
// structurally valid and re-encode/re-decode to an identical diff (a
// successful decode is always faithful; malformed input can only ever
// surface as an error).
func FuzzDecodeDiff(f *testing.F) {
	// Seeds: a realistic diff, an empty diff, and mutations a WAL
	// corruption or adversarial peer could produce.
	good, _ := EncodeDiff(&Diff{
		BaseRev: 2, NewRev: 3, From: 4, NSlots: 8,
		Remove: []string{"r1"},
		Update: []JobUpdate{
			{ID: "a", Window: Window{Rel: 4, Dl: 9}, Set: []SlotSet{{Slot: 5, Alloc: resource.New(2, 4096)}}},
			{ID: "z", Add: true, Window: Window{Rel: 6, Dl: 12}},
		},
		Theta: map[string][]float64{"vcores": {0.25, 0.5}},
	})
	f.Add(good)
	empty, _ := EncodeDiff(&Diff{BaseRev: 0, NewRev: 1})
	f.Add(empty)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"base_rev":1,"new_rev":9}`))
	f.Add([]byte(`{"base_rev":1,"new_rev":2,"from":0,"n_slots":4,"unknown":true}`))
	f.Add([]byte(`{"base_rev":1,"new_rev":2,"remove":["b","a"]}`))
	f.Add(append(append([]byte{}, good...), good...)) // trailing data
	f.Add(good[:len(good)/2])                         // torn encoding

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDiff(data)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("DecodeDiff accepted structurally invalid diff: %v", verr)
		}
		re, eerr := EncodeDiff(d)
		if eerr != nil {
			t.Fatalf("re-encode of decoded diff failed: %v", eerr)
		}
		d2, derr := DecodeDiff(re)
		if derr != nil {
			t.Fatalf("re-decode failed: %v", derr)
		}
		if !reflect.DeepEqual(d, d2) {
			t.Fatalf("decode/encode not faithful:\n%+v\n%+v", d, d2)
		}
	})
}

// FuzzApplyDiff decodes arbitrary bytes as a diff and applies it to a
// deterministically generated base plan: Apply must never panic, must
// refuse stale base revisions loudly, and on any error must leave the
// base bit-for-bit unchanged (never partially applied). On success the
// result must carry the diff's NewRev and pass plan validation.
func FuzzApplyDiff(f *testing.F) {
	// Seeds pair a base-plan generator seed with a diff encoding. The
	// interesting seeds are diffs that are valid in isolation but
	// mismatched against the base: stale revision, unknown jobs,
	// re-added jobs, out-of-window sets.
	mustEnc := func(d *Diff) []byte {
		data, err := EncodeDiff(d)
		if err != nil {
			panic(err)
		}
		return data
	}
	f.Add(int64(1), mustEnc(&Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 6}))
	f.Add(int64(1), mustEnc(&Diff{BaseRev: 7, NewRev: 8, From: 0, NSlots: 6})) // stale
	f.Add(int64(2), mustEnc(&Diff{BaseRev: 2, NewRev: 3, From: 2, NSlots: 4,
		Remove: []string{"a"},
		Update: []JobUpdate{{ID: "q", Add: true, Window: Window{Rel: 2, Dl: 6},
			Set: []SlotSet{{Slot: 3, Alloc: resource.New(1, 256)}}}}}))
	f.Add(int64(3), mustEnc(&Diff{BaseRev: 3, NewRev: 4, From: 0, NSlots: 6,
		Update: []JobUpdate{{ID: "a", Add: true, Window: Window{Rel: 0, Dl: 4}}}})) // re-add collision
	f.Add(int64(4), []byte(`{"base_rev":4,"new_rev":5,"from":0,"n_slots":6,"update":[{"id":"a","window":{"rel":0,"dl":2},"set":[{"slot":4,"alloc":[1,1]}]}]}`))

	f.Fuzz(func(t *testing.T, planSeed int64, data []byte) {
		d, err := DecodeDiff(data)
		if err != nil {
			return
		}
		rng := rand.New(rand.NewSource(planSeed))
		base := genRandomPlan(rng, d.BaseRev&0xff+planSeed&0xff, int64(rng.Intn(8)), int64(1+rng.Intn(8)))
		snapshot := base.Clone()
		got, err := Apply(base, d)
		// Transactionality: whatever happened, the base is untouched.
		if base.Rev != snapshot.Rev {
			t.Fatalf("Apply mutated base revision: %d -> %d", snapshot.Rev, base.Rev)
		}
		if e := Equal(base, snapshot); e != nil {
			t.Fatalf("Apply mutated base content: %v", e)
		}
		if err != nil {
			return
		}
		if d.BaseRev != base.Rev {
			t.Fatalf("Apply accepted a diff with stale base %d against live %d", d.BaseRev, base.Rev)
		}
		if got.Rev != d.NewRev {
			t.Fatalf("applied plan rev %d, want %d", got.Rev, d.NewRev)
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("applied plan invalid: %v", verr)
		}
	})
}
