// Package plan defines the versioned multi-slot plan that flows from the
// planner to the resource manager, and the diff protocol that replaces
// wholesale plan handover.
//
// A Plan is an immutable snapshot of the planner's output at one replan:
// a monotonically increasing revision, the absolute slot the allocations
// are anchored at, per-job effective windows and per-slot allocations,
// and the lexicographic θ levels the LP reached per resource kind. A
// Diff carries one revision step — jobs added or removed, windows that
// moved, and exactly the slots whose allocations changed — fenced by the
// base revision it was computed against.
//
// Apply is transactional: it either produces the complete successor plan
// or returns an error and leaves the base untouched. A diff against the
// wrong base revision is refused loudly (ErrStaleBase), never partially
// applied; so are overlapping slot ops, unsorted op lists, and windows
// or allocations that fail validation. The differential equivalence
// harness in internal/oracle holds the whole protocol to the invariant
// Apply(base, Compute(base, next)) ≡ next after every scheduling event.
package plan

import (
	"fmt"
	"sort"

	"flowtime/internal/resource"
)

// Window is a job's effective scheduling window in absolute slots;
// Dl is exclusive.
type Window struct {
	Rel int64 `json:"rel"`
	Dl  int64 `json:"dl"`
}

// Valid reports whether the window is non-empty and non-negative.
func (w Window) Valid() bool { return w.Rel >= 0 && w.Rel < w.Dl }

// Job is one job's share of a plan: its window and its per-slot
// allocation, indexed by offset from the owning plan's From.
type Job struct {
	Window Window `json:"window"`
	// Alloc has exactly the plan's NSlots entries; Alloc[off] is the
	// allocation at absolute slot From+off.
	Alloc []resource.Vector `json:"alloc"`
}

// Plan is one revision of the live multi-slot plan.
type Plan struct {
	// Rev is the plan revision; revisions increase by exactly one per
	// replan. The empty pre-genesis plan is revision 0.
	Rev int64 `json:"rev"`
	// From is the absolute slot Alloc offsets are anchored at.
	From int64 `json:"from"`
	// NSlots is the plan length; every job's Alloc has this length.
	NSlots int64 `json:"n_slots"`
	// Jobs maps job ID to its window and allocations.
	Jobs map[string]Job `json:"jobs,omitempty"`
	// Theta holds, per resource kind name, the lexicographic min-max
	// levels the LP reached for this plan (absent on degraded/greedy
	// plans, which have no θ).
	Theta map[string][]float64 `json:"theta,omitempty"`
}

// Empty returns the pre-genesis plan: revision 0, no jobs. Every diff
// stream starts from it.
func Empty() *Plan { return &Plan{} }

// Clone deep-copies the plan.
func (p *Plan) Clone() *Plan {
	out := &Plan{Rev: p.Rev, From: p.From, NSlots: p.NSlots}
	if p.Jobs != nil {
		out.Jobs = make(map[string]Job, len(p.Jobs))
		for id, j := range p.Jobs {
			out.Jobs[id] = Job{Window: j.Window, Alloc: append([]resource.Vector(nil), j.Alloc...)}
		}
	}
	out.Theta = cloneTheta(p.Theta)
	return out
}

func cloneTheta(t map[string][]float64) map[string][]float64 {
	if t == nil {
		return nil
	}
	out := make(map[string][]float64, len(t))
	for k, v := range t {
		out[k] = append([]float64(nil), v...)
	}
	return out
}

// AllocAt returns the job's allocation at an absolute slot (zero outside
// the plan range or for unknown jobs).
func (p *Plan) AllocAt(id string, abs int64) resource.Vector {
	j, ok := p.Jobs[id]
	if !ok {
		return resource.Vector{}
	}
	off := abs - p.From
	if off < 0 || off >= int64(len(j.Alloc)) {
		return resource.Vector{}
	}
	return j.Alloc[off]
}

// Load returns the per-slot total allocation across all jobs (length
// NSlots) — the planned deadline-work skyline.
func (p *Plan) Load() []resource.Vector {
	load := make([]resource.Vector, p.NSlots)
	for _, j := range p.Jobs {
		for off, g := range j.Alloc {
			load[off] = load[off].Add(g)
		}
	}
	return load
}

// JobIDs returns the plan's job IDs in sorted order.
func (p *Plan) JobIDs() []string {
	ids := make([]string, 0, len(p.Jobs))
	for id := range p.Jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Validate checks the plan's structural invariants: non-negative
// revision, anchor and length; every job's Alloc sized to NSlots with
// non-negative entries; nonzero allocation only inside the job's window.
func (p *Plan) Validate() error {
	if p.Rev < 0 || p.From < 0 || p.NSlots < 0 {
		return fmt.Errorf("plan: negative rev/from/nslots (%d/%d/%d)", p.Rev, p.From, p.NSlots)
	}
	for _, id := range p.JobIDs() {
		j := p.Jobs[id]
		if int64(len(j.Alloc)) != p.NSlots {
			return fmt.Errorf("plan: job %q has %d alloc slots, plan has %d", id, len(j.Alloc), p.NSlots)
		}
		if !j.Window.Valid() {
			return fmt.Errorf("plan: job %q window [%d, %d) invalid", id, j.Window.Rel, j.Window.Dl)
		}
		for off, g := range j.Alloc {
			if g.AnyNegative() {
				return fmt.Errorf("plan: job %q negative allocation %v at offset %d", id, g, off)
			}
			if g.IsZero() {
				continue
			}
			abs := p.From + int64(off)
			if abs < j.Window.Rel || abs >= j.Window.Dl {
				return fmt.Errorf("plan: job %q allocated %v at slot %d outside window [%d, %d)",
					id, g, abs, j.Window.Rel, j.Window.Dl)
			}
		}
	}
	return nil
}

// Equal compares two plans' content — anchor, length, job sets, windows,
// allocations, and θ levels — and returns nil or an error naming the
// first divergence. Revisions are not compared (callers that require
// revision agreement check Rev separately).
func Equal(a, b *Plan) error {
	if a == nil || b == nil {
		if a == b {
			return nil
		}
		return fmt.Errorf("plan: nil vs non-nil plan")
	}
	if a.From != b.From || a.NSlots != b.NSlots {
		return fmt.Errorf("plan: anchor/length differ: from %d/%d vs %d/%d", a.From, a.NSlots, b.From, b.NSlots)
	}
	if len(a.Jobs) != len(b.Jobs) {
		return fmt.Errorf("plan: job count differs: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for _, id := range a.JobIDs() {
		ja := a.Jobs[id]
		jb, ok := b.Jobs[id]
		if !ok {
			return fmt.Errorf("plan: job %q present in one plan only", id)
		}
		if ja.Window != jb.Window {
			return fmt.Errorf("plan: job %q window differs: [%d,%d) vs [%d,%d)",
				id, ja.Window.Rel, ja.Window.Dl, jb.Window.Rel, jb.Window.Dl)
		}
		for off := range ja.Alloc {
			if ja.Alloc[off] != jb.Alloc[off] {
				return fmt.Errorf("plan: job %q allocation differs at slot %d: %v vs %v",
					id, a.From+int64(off), ja.Alloc[off], jb.Alloc[off])
			}
		}
	}
	if len(a.Theta) != len(b.Theta) {
		return fmt.Errorf("plan: θ kind count differs: %d vs %d", len(a.Theta), len(b.Theta))
	}
	for kind, la := range a.Theta {
		lb, ok := b.Theta[kind]
		if !ok {
			return fmt.Errorf("plan: θ for kind %q present in one plan only", kind)
		}
		if len(la) != len(lb) {
			return fmt.Errorf("plan: θ level count for %q differs: %d vs %d", kind, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				return fmt.Errorf("plan: θ[%q][%d] differs: %g vs %g", kind, i, la[i], lb[i])
			}
		}
	}
	return nil
}
