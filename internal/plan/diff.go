package plan

import (
	"errors"
	"fmt"
	"sort"

	"flowtime/internal/resource"
)

// ErrStaleBase is returned (wrapped) by Apply when a diff's BaseRev does
// not match the base plan's revision. A stale diff is refused loudly and
// never partially applied; callers that own the live plan react by
// rebasing on a full plan snapshot from the planner.
var ErrStaleBase = errors.New("plan: diff base revision does not match live plan")

// SlotSet sets one job's allocation at one absolute slot.
type SlotSet struct {
	Slot  int64           `json:"slot"`
	Alloc resource.Vector `json:"alloc"`
}

// JobUpdate adds a job or updates an existing one. For an existing job
// the base allocation is first rebased into the diff's [From, From+NSlots)
// range (slots that fall outside are truncated, new slots start empty),
// then Set is applied on top. Set entries must be sorted by slot with no
// duplicates — a duplicate is an overlapping op and refused.
type JobUpdate struct {
	ID     string    `json:"id"`
	Add    bool      `json:"add,omitempty"`
	Window Window    `json:"window"`
	Set    []SlotSet `json:"set,omitempty"`
}

// Diff is one revision step of the live plan: BaseRev fences the plan it
// was computed against, NewRev = BaseRev+1 is the revision Apply
// produces. From/NSlots re-anchor the plan (replans advance the plan
// window); jobs absent from both Remove and Update carry over with their
// base allocation rebased into the new range.
type Diff struct {
	BaseRev int64       `json:"base_rev"`
	NewRev  int64       `json:"new_rev"`
	From    int64       `json:"from"`
	NSlots  int64       `json:"n_slots"`
	Remove  []string    `json:"remove,omitempty"`
	Update  []JobUpdate `json:"update,omitempty"`
	// Theta replaces the plan's θ levels wholesale (nil clears them —
	// θ is a property of one LP solve, not an incremental quantity).
	Theta map[string][]float64 `json:"theta,omitempty"`
}

// Validate checks the diff's structural invariants without reference to
// any base plan: revision step of exactly one, non-negative anchor and
// length, Remove and Update sorted with no duplicates and no overlap
// between them, windows valid, slot sets sorted, in range, unique, and
// non-negative.
func (d *Diff) Validate() error {
	if d.BaseRev < 0 {
		return fmt.Errorf("plan: diff base revision %d negative", d.BaseRev)
	}
	if d.NewRev != d.BaseRev+1 {
		return fmt.Errorf("plan: diff revision step %d -> %d is not +1", d.BaseRev, d.NewRev)
	}
	if d.From < 0 || d.NSlots < 0 {
		return fmt.Errorf("plan: diff negative from/nslots (%d/%d)", d.From, d.NSlots)
	}
	for i, id := range d.Remove {
		if id == "" {
			return fmt.Errorf("plan: diff remove[%d] empty job id", i)
		}
		if i > 0 && d.Remove[i-1] >= id {
			return fmt.Errorf("plan: diff remove list not strictly sorted at %q", id)
		}
	}
	removed := make(map[string]bool, len(d.Remove))
	for _, id := range d.Remove {
		removed[id] = true
	}
	for i, u := range d.Update {
		if u.ID == "" {
			return fmt.Errorf("plan: diff update[%d] empty job id", i)
		}
		if i > 0 && d.Update[i-1].ID >= u.ID {
			return fmt.Errorf("plan: diff update list not strictly sorted at %q", u.ID)
		}
		if removed[u.ID] {
			return fmt.Errorf("plan: job %q both removed and updated", u.ID)
		}
		if !u.Window.Valid() {
			return fmt.Errorf("plan: diff update %q window [%d, %d) invalid", u.ID, u.Window.Rel, u.Window.Dl)
		}
		for k, s := range u.Set {
			if s.Slot < d.From || s.Slot >= d.From+d.NSlots {
				return fmt.Errorf("plan: diff update %q sets slot %d outside plan range [%d, %d)",
					u.ID, s.Slot, d.From, d.From+d.NSlots)
			}
			if k > 0 && u.Set[k-1].Slot >= s.Slot {
				return fmt.Errorf("plan: diff update %q has overlapping slot ops at slot %d", u.ID, s.Slot)
			}
			if s.Alloc.AnyNegative() {
				return fmt.Errorf("plan: diff update %q negative allocation %v at slot %d", u.ID, s.Alloc, s.Slot)
			}
		}
	}
	for kind, levels := range d.Theta {
		if kind == "" {
			return fmt.Errorf("plan: diff θ entry with empty kind name")
		}
		for i, l := range levels {
			if l < 0 || l != l { // negative or NaN
				return fmt.Errorf("plan: diff θ[%q][%d] = %g invalid", kind, i, l)
			}
		}
	}
	return nil
}

// rebaseAlloc maps a job's per-slot allocation from one (from, n) range
// to another, truncating slots that fall outside the target range and
// zero-filling slots the source range did not cover.
func rebaseAlloc(alloc []resource.Vector, oldFrom, newFrom, n int64) []resource.Vector {
	out := make([]resource.Vector, n)
	for off := range out {
		abs := newFrom + int64(off)
		src := abs - oldFrom
		if src >= 0 && src < int64(len(alloc)) {
			out[off] = alloc[src]
		}
	}
	return out
}

// Apply transactionally produces the successor plan. The base plan is
// never mutated: on any error — stale base revision, structurally
// invalid diff, update referencing the wrong job state, or a result
// that fails plan validation — the caller's plan is exactly as before
// and the error says why. On success the returned plan has revision
// d.NewRev and validates.
func Apply(base *Plan, d *Diff) (*Plan, error) {
	if base == nil {
		return nil, fmt.Errorf("plan: apply on nil base")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.BaseRev != base.Rev {
		return nil, fmt.Errorf("%w: diff base %d, live %d", ErrStaleBase, d.BaseRev, base.Rev)
	}
	next := &Plan{
		Rev:    d.NewRev,
		From:   d.From,
		NSlots: d.NSlots,
		Jobs:   make(map[string]Job, len(base.Jobs)+len(d.Update)),
		Theta:  cloneTheta(d.Theta),
	}
	// Carry over base jobs that are neither removed nor updated,
	// rebasing their allocations into the new plan range.
	removed := make(map[string]bool, len(d.Remove))
	for _, id := range d.Remove {
		if _, ok := base.Jobs[id]; !ok {
			return nil, fmt.Errorf("plan: diff removes unknown job %q", id)
		}
		removed[id] = true
	}
	updated := make(map[string]bool, len(d.Update))
	for _, u := range d.Update {
		updated[u.ID] = true
	}
	for id, j := range base.Jobs {
		if removed[id] || updated[id] {
			continue
		}
		next.Jobs[id] = Job{
			Window: j.Window,
			Alloc:  rebaseAlloc(j.Alloc, base.From, d.From, d.NSlots),
		}
	}
	for _, u := range d.Update {
		var alloc []resource.Vector
		if u.Add {
			if _, ok := base.Jobs[u.ID]; ok {
				return nil, fmt.Errorf("plan: diff adds job %q that already exists", u.ID)
			}
			alloc = make([]resource.Vector, d.NSlots)
		} else {
			j, ok := base.Jobs[u.ID]
			if !ok {
				return nil, fmt.Errorf("plan: diff updates unknown job %q (not marked add)", u.ID)
			}
			alloc = rebaseAlloc(j.Alloc, base.From, d.From, d.NSlots)
		}
		for _, s := range u.Set {
			alloc[s.Slot-d.From] = s.Alloc
		}
		next.Jobs[u.ID] = Job{Window: u.Window, Alloc: alloc}
	}
	if err := next.Validate(); err != nil {
		return nil, fmt.Errorf("plan: diff application produced invalid plan: %w", err)
	}
	return next, nil
}

// Compute derives the minimal diff that transforms base into next. The
// inverse of Apply: Apply(base, Compute(base, next)) reproduces next
// exactly (content and revision). next.Rev must be base.Rev+1.
func Compute(base, next *Plan) *Diff {
	d := &Diff{
		BaseRev: base.Rev,
		NewRev:  next.Rev,
		From:    next.From,
		NSlots:  next.NSlots,
		Theta:   cloneTheta(next.Theta),
	}
	for _, id := range base.JobIDs() {
		if _, ok := next.Jobs[id]; !ok {
			d.Remove = append(d.Remove, id)
		}
	}
	ids := next.JobIDs()
	for _, id := range ids {
		nj := next.Jobs[id]
		bj, existed := base.Jobs[id]
		u := JobUpdate{ID: id, Window: nj.Window, Add: !existed}
		if existed {
			// Diff against the base allocation rebased into the new
			// range — exactly what Apply starts from.
			rebased := rebaseAlloc(bj.Alloc, base.From, next.From, next.NSlots)
			for off := range nj.Alloc {
				if nj.Alloc[off] != rebased[off] {
					u.Set = append(u.Set, SlotSet{Slot: next.From + int64(off), Alloc: nj.Alloc[off]})
				}
			}
			if len(u.Set) == 0 && bj.Window == nj.Window {
				continue // untouched job: carried over implicitly
			}
		} else {
			for off, g := range nj.Alloc {
				if !g.IsZero() {
					u.Set = append(u.Set, SlotSet{Slot: next.From + int64(off), Alloc: g})
				}
			}
		}
		d.Update = append(d.Update, u)
	}
	sort.Slice(d.Update, func(i, j int) bool { return d.Update[i].ID < d.Update[j].ID })
	return d
}

// Stats summarizes a diff for telemetry.
func (d *Diff) Stats() (removed, updated, added, slotOps int) {
	removed = len(d.Remove)
	for _, u := range d.Update {
		if u.Add {
			added++
		} else {
			updated++
		}
		slotOps += len(u.Set)
	}
	return
}
