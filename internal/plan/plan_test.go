package plan

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"flowtime/internal/resource"
)

func mkPlan(rev, from, nslots int64) *Plan {
	return &Plan{Rev: rev, From: from, NSlots: nslots, Jobs: map[string]Job{}}
}

func addJob(p *Plan, id string, rel, dl int64, allocs map[int64]resource.Vector) {
	j := Job{Window: Window{Rel: rel, Dl: dl}, Alloc: make([]resource.Vector, p.NSlots)}
	for abs, g := range allocs {
		j.Alloc[abs-p.From] = g
	}
	p.Jobs[id] = j
}

func TestComputeApplyRoundTrip(t *testing.T) {
	base := mkPlan(3, 10, 6)
	addJob(base, "a", 10, 14, map[int64]resource.Vector{10: resource.New(2, 4096), 11: resource.New(2, 4096)})
	addJob(base, "b", 12, 16, map[int64]resource.Vector{12: resource.New(1, 1024)})
	addJob(base, "gone", 10, 12, map[int64]resource.Vector{10: resource.New(4, 8192)})
	base.Theta = map[string][]float64{"vcores": {0.5, 0.25}}

	next := mkPlan(4, 12, 6) // plan window advanced by two slots
	addJob(next, "a", 12, 15, map[int64]resource.Vector{12: resource.New(3, 2048)})
	addJob(next, "b", 12, 16, map[int64]resource.Vector{12: resource.New(1, 1024)}) // unchanged content
	addJob(next, "new", 13, 17, map[int64]resource.Vector{13: resource.New(2, 2048), 14: resource.New(2, 2048)})
	next.Theta = map[string][]float64{"vcores": {0.75}, "memory-mb": {0.5}}

	d := Compute(base, next)
	if err := d.Validate(); err != nil {
		t.Fatalf("computed diff invalid: %v", err)
	}
	removed, updated, added, slotOps := d.Stats()
	if removed != 1 || added != 1 {
		t.Fatalf("stats: removed=%d added=%d, want 1/1", removed, added)
	}
	if updated == 0 || slotOps == 0 {
		t.Fatalf("stats: updated=%d slotOps=%d, want >0", updated, slotOps)
	}

	got, err := Apply(base, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got.Rev != next.Rev {
		t.Fatalf("applied rev %d, want %d", got.Rev, next.Rev)
	}
	if err := Equal(got, next); err != nil {
		t.Fatalf("applied plan diverges from next: %v", err)
	}
	// Transactionality: base untouched.
	if base.Rev != 3 || len(base.Jobs) != 3 {
		t.Fatalf("base mutated by Apply")
	}
	if g := base.AllocAt("a", 10); g != resource.New(2, 4096) {
		t.Fatalf("base job a alloc mutated: %v", g)
	}
}

func TestComputeUnchangedJobIsImplicit(t *testing.T) {
	base := mkPlan(1, 5, 4)
	addJob(base, "a", 5, 9, map[int64]resource.Vector{5: resource.New(1, 100)})
	next := base.Clone()
	next.Rev = 2
	d := Compute(base, next)
	if len(d.Remove) != 0 || len(d.Update) != 0 {
		t.Fatalf("no-op replan produced non-empty diff: %+v", d)
	}
	got, err := Apply(base, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := Equal(got, next); err != nil {
		t.Fatalf("no-op diff diverges: %v", err)
	}
}

func TestApplyStaleBaseRefused(t *testing.T) {
	base := mkPlan(5, 0, 4)
	d := &Diff{BaseRev: 3, NewRev: 4, From: 0, NSlots: 4}
	_, err := Apply(base, d)
	if !errors.Is(err, ErrStaleBase) {
		t.Fatalf("stale diff not refused with ErrStaleBase: %v", err)
	}
	// Future base too: only the exact live revision is acceptable.
	d = &Diff{BaseRev: 7, NewRev: 8, From: 0, NSlots: 4}
	if _, err := Apply(base, d); !errors.Is(err, ErrStaleBase) {
		t.Fatalf("future-base diff not refused with ErrStaleBase: %v", err)
	}
}

func TestApplyRefusesStructurallyInvalid(t *testing.T) {
	base := mkPlan(1, 0, 4)
	addJob(base, "a", 0, 4, map[int64]resource.Vector{0: resource.New(1, 1)})
	cases := []struct {
		name string
		d    *Diff
	}{
		{"rev step not one", &Diff{BaseRev: 1, NewRev: 3, From: 0, NSlots: 4}},
		{"negative nslots", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: -1}},
		{"remove unknown", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4, Remove: []string{"zzz"}}},
		{"remove unsorted", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4, Remove: []string{"b", "a"}}},
		{"remove dup", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4, Remove: []string{"a", "a"}}},
		{"remove and update overlap", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4,
			Remove: []string{"a"}, Update: []JobUpdate{{ID: "a", Window: Window{0, 4}}}}},
		{"update unknown not add", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4,
			Update: []JobUpdate{{ID: "x", Window: Window{0, 4}}}}},
		{"add existing", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4,
			Update: []JobUpdate{{ID: "a", Add: true, Window: Window{0, 4}}}}},
		{"slot out of range", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4,
			Update: []JobUpdate{{ID: "a", Window: Window{0, 4}, Set: []SlotSet{{Slot: 9, Alloc: resource.New(1, 1)}}}}}},
		{"overlapping slot ops", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4,
			Update: []JobUpdate{{ID: "a", Window: Window{0, 4}, Set: []SlotSet{
				{Slot: 2, Alloc: resource.New(1, 1)}, {Slot: 2, Alloc: resource.New(2, 2)}}}}}},
		{"negative alloc", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4,
			Update: []JobUpdate{{ID: "a", Window: Window{0, 4}, Set: []SlotSet{{Slot: 1, Alloc: resource.New(-1, 0)}}}}}},
		{"invalid window", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4,
			Update: []JobUpdate{{ID: "a", Window: Window{4, 4}}}}},
		{"alloc outside window", &Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 4,
			Update: []JobUpdate{{ID: "a", Window: Window{0, 2}, Set: []SlotSet{{Slot: 3, Alloc: resource.New(1, 1)}}}}}},
	}
	for _, tc := range cases {
		snapshot := base.Clone()
		_, err := Apply(base, tc.d)
		if err == nil {
			t.Errorf("%s: diff accepted, want refusal", tc.name)
		}
		if e := Equal(base, snapshot); e != nil || base.Rev != snapshot.Rev {
			t.Errorf("%s: base mutated by refused diff: %v", tc.name, e)
		}
	}
}

func TestApplyRebasesCarriedJobs(t *testing.T) {
	base := mkPlan(1, 10, 4)
	addJob(base, "carry", 10, 14, map[int64]resource.Vector{
		10: resource.New(1, 100), 13: resource.New(2, 200),
	})
	// Plan window advances by two slots: slot 10 falls off, slot 13 stays.
	d := &Diff{BaseRev: 1, NewRev: 2, From: 12, NSlots: 4}
	got, err := Apply(base, d)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if g := got.AllocAt("carry", 13); g != resource.New(2, 200) {
		t.Fatalf("carried slot 13 = %v, want <1,200>", g)
	}
	if g := got.AllocAt("carry", 10); !g.IsZero() {
		t.Fatalf("slot 10 should be outside the new plan: %v", g)
	}
	if g := got.AllocAt("carry", 15); !g.IsZero() {
		t.Fatalf("new slot 15 should start empty: %v", g)
	}
}

func TestPlanValidate(t *testing.T) {
	p := mkPlan(1, 0, 4)
	addJob(p, "a", 0, 2, map[int64]resource.Vector{0: resource.New(1, 1)})
	if err := p.Validate(); err != nil {
		t.Fatalf("valid plan refused: %v", err)
	}
	bad := p.Clone()
	j := bad.Jobs["a"]
	j.Alloc[3] = resource.New(1, 1) // slot 3 outside window [0,2)
	bad.Jobs["a"] = j
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "outside window") {
		t.Fatalf("out-of-window alloc not refused: %v", err)
	}
	bad2 := p.Clone()
	j2 := bad2.Jobs["a"]
	j2.Alloc = j2.Alloc[:2]
	bad2.Jobs["a"] = j2
	if err := bad2.Validate(); err == nil {
		t.Fatalf("short alloc slice not refused")
	}
}

func TestEqualReportsDivergence(t *testing.T) {
	a := mkPlan(1, 0, 2)
	addJob(a, "j", 0, 2, map[int64]resource.Vector{0: resource.New(1, 1)})
	b := a.Clone()
	if err := Equal(a, b); err != nil {
		t.Fatalf("clones unequal: %v", err)
	}
	jb := b.Jobs["j"]
	jb.Alloc[1] = resource.New(5, 5)
	b.Jobs["j"] = jb
	if err := Equal(a, b); err == nil {
		t.Fatalf("allocation divergence not reported")
	}
	c := a.Clone()
	c.Theta = map[string][]float64{"vcores": {0.5}}
	if err := Equal(a, c); err == nil {
		t.Fatalf("θ divergence not reported")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	d := &Diff{BaseRev: 2, NewRev: 3, From: 4, NSlots: 8,
		Remove: []string{"r1", "r2"},
		Update: []JobUpdate{
			{ID: "a", Window: Window{4, 9}, Set: []SlotSet{{Slot: 5, Alloc: resource.New(2, 4096)}}},
			{ID: "z", Add: true, Window: Window{6, 12}, Set: []SlotSet{{Slot: 6, Alloc: resource.New(1, 512)}}},
		},
		Theta: map[string][]float64{"vcores": {0.25}},
	}
	data, err := EncodeDiff(d)
	if err != nil {
		t.Fatalf("EncodeDiff: %v", err)
	}
	got, err := DecodeDiff(data)
	if err != nil {
		t.Fatalf("DecodeDiff: %v", err)
	}
	re, err := EncodeDiff(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(re) != string(data) {
		t.Fatalf("roundtrip not stable:\n%s\n%s", data, re)
	}
}

func TestCodecRefusesMalformed(t *testing.T) {
	cases := []string{
		``,
		`not json`,
		`{"base_rev": "three"}`,
		`{"base_rev":1,"new_rev":2,"from":0,"n_slots":4,"bogus_field":1}`,
		`{"base_rev":1,"new_rev":5,"from":0,"n_slots":4}`, // rev step != 1
		`{"base_rev":1,"new_rev":2,"from":0,"n_slots":4}{"trailing":1}`,
		`{"base_rev":1,"new_rev":2,"from":0,"n_slots":4,"update":[{"id":"a","window":{"rel":0,"dl":4},"set":[{"slot":1,"alloc":[1,1]},{"slot":1,"alloc":[2,2]}]}]}`,
	}
	for _, raw := range cases {
		if _, err := DecodeDiff([]byte(raw)); err == nil {
			t.Errorf("malformed diff accepted: %s", raw)
		}
	}
	if _, err := DecodePlan([]byte(`{"rev":-1}`)); err == nil {
		t.Errorf("negative-rev plan accepted")
	}
}

func TestEncodeRefusesInvalid(t *testing.T) {
	if _, err := EncodeDiff(&Diff{BaseRev: 1, NewRev: 9}); err == nil {
		t.Fatalf("invalid diff encoded")
	}
	if _, err := EncodePlan(&Plan{Rev: -2}); err == nil {
		t.Fatalf("invalid plan encoded")
	}
}

// genRandomPlan builds a random valid plan for the randomized
// Compute/Apply sweep (shared with the fuzz seed corpus).
func genRandomPlan(rng *rand.Rand, rev, from, nslots int64) *Plan {
	p := mkPlan(rev, from, nslots)
	njobs := rng.Intn(8)
	for i := 0; i < njobs; i++ {
		id := string(rune('a' + i))
		rel := from + int64(rng.Intn(int(nslots)))
		dl := rel + 1 + int64(rng.Intn(int(nslots)))
		j := Job{Window: Window{Rel: rel, Dl: dl}, Alloc: make([]resource.Vector, nslots)}
		for off := int64(0); off < nslots; off++ {
			abs := from + off
			if abs >= rel && abs < dl && rng.Intn(2) == 0 {
				j.Alloc[off] = resource.New(int64(rng.Intn(8)), int64(rng.Intn(4096)))
			}
		}
		p.Jobs[id] = j
	}
	if rng.Intn(2) == 0 {
		p.Theta = map[string][]float64{"vcores": {rng.Float64()}, "memory-mb": {rng.Float64(), rng.Float64()}}
	}
	return p
}

func TestComputeApplyRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 500; iter++ {
		from := int64(rng.Intn(20))
		n := int64(1 + rng.Intn(10))
		base := genRandomPlan(rng, int64(iter), from, n)
		// next advances the window by 0..3 slots and is otherwise
		// independent — the hardest case for the differ.
		next := genRandomPlan(rng, int64(iter)+1, from+int64(rng.Intn(4)), int64(1+rng.Intn(10)))
		d := Compute(base, next)
		if err := d.Validate(); err != nil {
			t.Fatalf("iter %d: computed diff invalid: %v\nbase=%+v\nnext=%+v", iter, err, base, next)
		}
		got, err := Apply(base, d)
		if err != nil {
			t.Fatalf("iter %d: Apply: %v", iter, err)
		}
		if got.Rev != next.Rev {
			t.Fatalf("iter %d: rev %d want %d", iter, got.Rev, next.Rev)
		}
		if err := Equal(got, next); err != nil {
			t.Fatalf("iter %d: Apply(base, Compute(base, next)) != next: %v", iter, err)
		}
	}
}
