package plan

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"flowtime/internal/resource"
)

// TestGenerateFuzzCorpus regenerates the checked-in seed corpora under
// testdata/fuzz/ for the diff-codec fuzz targets. No-op unless
// GEN_CORPUS=1 is set:
//
//	GEN_CORPUS=1 go test ./internal/plan -run TestGenerateFuzzCorpus
//
// The seeds cover the malformed-diff taxonomy the decoder must refuse
// (unknown fields, bad revision steps, unsorted/overlapping ops,
// negative allocations, torn encodings) plus valid diffs of several
// shapes so short CI bursts start from deep coverage.
func TestGenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("GEN_CORPUS") != "1" {
		t.Skip("set GEN_CORPUS=1 to regenerate testdata/fuzz seed corpora")
	}

	enc := func(d *Diff) []byte {
		data, err := EncodeDiff(d)
		if err != nil {
			t.Fatalf("EncodeDiff: %v", err)
		}
		return data
	}
	rich := enc(&Diff{
		BaseRev: 2, NewRev: 3, From: 4, NSlots: 8,
		Remove: []string{"r1", "r2"},
		Update: []JobUpdate{
			{ID: "a", Window: Window{Rel: 4, Dl: 9}, Set: []SlotSet{
				{Slot: 5, Alloc: resource.New(2, 4096)}, {Slot: 7, Alloc: resource.Vector{}}}},
			{ID: "z", Add: true, Window: Window{Rel: 6, Dl: 12}, Set: []SlotSet{{Slot: 6, Alloc: resource.New(1, 512)}}},
		},
		Theta: map[string][]float64{"vcores": {0.25, 0.5}, "memory-mb": {1}},
	})
	empty := enc(&Diff{BaseRev: 0, NewRev: 1})

	writeCorpus(t, "FuzzDecodeDiff", [][]interface{}{
		{rich},
		{empty},
		{[]byte(`{}`)},
		{[]byte(`{"base_rev":1,"new_rev":9}`)},
		{[]byte(`{"base_rev":1,"new_rev":2,"from":0,"n_slots":4,"unknown":true}`)},
		{[]byte(`{"base_rev":1,"new_rev":2,"remove":["b","a"]}`)},
		{[]byte(`{"base_rev":1,"new_rev":2,"remove":["a","a"]}`)},
		{[]byte(`{"base_rev":1,"new_rev":2,"from":0,"n_slots":4,"remove":["a"],"update":[{"id":"a","window":{"rel":0,"dl":4}}]}`)},
		{[]byte(`{"base_rev":1,"new_rev":2,"from":0,"n_slots":4,"update":[{"id":"a","window":{"rel":0,"dl":4},"set":[{"slot":1,"alloc":[1,1]},{"slot":1,"alloc":[2,2]}]}]}`)},
		{[]byte(`{"base_rev":1,"new_rev":2,"from":0,"n_slots":4,"update":[{"id":"a","window":{"rel":0,"dl":4},"set":[{"slot":1,"alloc":[-1,1]}]}]}`)},
		{[]byte(`{"base_rev":1,"new_rev":2,"from":0,"n_slots":4,"update":[{"id":"a","window":{"rel":4,"dl":4}}]}`)},
		{rich[:len(rich)/2]},
		{concat(rich, empty)},
	})

	staleVsBase := enc(&Diff{BaseRev: 7, NewRev: 8, From: 0, NSlots: 6})
	addCollision := enc(&Diff{BaseRev: 3, NewRev: 4, From: 0, NSlots: 6,
		Update: []JobUpdate{{ID: "a", Add: true, Window: Window{Rel: 0, Dl: 4}}}})
	reAnchor := enc(&Diff{BaseRev: 2, NewRev: 3, From: 2, NSlots: 4,
		Remove: []string{"a"},
		Update: []JobUpdate{{ID: "q", Add: true, Window: Window{Rel: 2, Dl: 6},
			Set: []SlotSet{{Slot: 3, Alloc: resource.New(1, 256)}}}}})

	writeCorpus(t, "FuzzApplyDiff", [][]interface{}{
		{int64(1), enc(&Diff{BaseRev: 1, NewRev: 2, From: 0, NSlots: 6})},
		{int64(1), staleVsBase},
		{int64(2), reAnchor},
		{int64(3), addCollision},
		{int64(4), []byte(`{"base_rev":4,"new_rev":5,"from":0,"n_slots":6,"update":[{"id":"a","window":{"rel":0,"dl":2},"set":[{"slot":4,"alloc":[1,1]}]}]}`)},
		{int64(5), rich},
	})
}

func concat(parts ...[]byte) []byte {
	var out []byte
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// writeCorpus writes one seed file per entry in the Go native fuzz
// corpus format ("go test fuzz v1"), one line per argument.
func writeCorpus(t *testing.T, target string, seeds [][]interface{}) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, args := range seeds {
		var buf bytes.Buffer
		buf.WriteString("go test fuzz v1\n")
		for _, a := range args {
			switch v := a.(type) {
			case []byte:
				fmt.Fprintf(&buf, "[]byte(%s)\n", strconv.Quote(string(v)))
			case int64:
				fmt.Fprintf(&buf, "int64(%d)\n", v)
			default:
				t.Fatalf("unsupported corpus arg type %T", a)
			}
		}
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d seeds to %s", len(seeds), dir)
}
