package plan

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// The diff codec is JSON with strict decoding: unknown fields are
// refused, and every decode is followed by structural validation so a
// malformed or adversarial encoding can never reach Apply. JSON keeps
// the records debuggable in the WAL dump and lets the follower ingest
// them through the same path as the primary.

// EncodeDiff serializes a diff. The diff is validated first so an
// invalid diff can never be journaled.
func EncodeDiff(d *Diff) ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("plan: refusing to encode invalid diff: %w", err)
	}
	return json.Marshal(d)
}

// DecodeDiff deserializes and validates a diff. Unknown fields, type
// mismatches, trailing garbage, and structurally invalid diffs are all
// refused with an error; a successfully decoded diff is safe to hand to
// Apply.
func DecodeDiff(data []byte) (*Diff, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d Diff
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("plan: diff decode: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("plan: diff decode: trailing data after diff")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	// Canonicalize: an explicit empty container decodes to the same form
	// its re-encoding (which omits empties) would — a successful decode
	// always round-trips bit-identically.
	if len(d.Remove) == 0 {
		d.Remove = nil
	}
	if len(d.Update) == 0 {
		d.Update = nil
	}
	for i := range d.Update {
		if len(d.Update[i].Set) == 0 {
			d.Update[i].Set = nil
		}
	}
	if len(d.Theta) == 0 {
		d.Theta = nil
	}
	return &d, nil
}

// EncodePlan serializes a full plan (used for snapshots and rebase
// records). Validated first, same as diffs.
func EncodePlan(p *Plan) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("plan: refusing to encode invalid plan: %w", err)
	}
	return json.Marshal(p)
}

// DecodePlan deserializes and validates a full plan.
func DecodePlan(data []byte) (*Plan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("plan: plan decode: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("plan: plan decode: trailing data after plan")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Same canonicalization as DecodeDiff: explicit empties become the
	// omitted form so decode∘encode is the identity.
	if len(p.Jobs) == 0 {
		p.Jobs = nil
	}
	if len(p.Theta) == 0 {
		p.Theta = nil
	}
	return &p, nil
}
