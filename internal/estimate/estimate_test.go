package estimate

import (
	"sync"
	"testing"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/workflow"
)

func obs(d time.Duration) Observation {
	return Observation{WorkflowID: "wf", JobName: "j", TaskDuration: d}
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0); err == nil {
		t.Error("maxRuns 0 accepted")
	}
}

func TestObservationValidate(t *testing.T) {
	if err := (Observation{JobName: "j", TaskDuration: time.Second}).Validate(); err == nil {
		t.Error("missing workflow ID accepted")
	}
	if err := (Observation{WorkflowID: "w", JobName: "j"}).Validate(); err == nil {
		t.Error("zero duration accepted")
	}
	if err := obs(time.Second).Validate(); err != nil {
		t.Errorf("valid observation rejected: %v", err)
	}
}

func TestMethodsOverKnownHistory(t *testing.T) {
	s, err := NewStore(100)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	for _, d := range []time.Duration{
		10 * time.Second, 20 * time.Second, 30 * time.Second,
		40 * time.Second, 100 * time.Second,
	} {
		if err := s.Record(obs(d)); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if got, ok := s.Estimate("wf", "j", Mean); !ok || got != 40*time.Second {
		t.Errorf("Mean = %v, %v; want 40s", got, ok)
	}
	if got, ok := s.Estimate("wf", "j", P95); !ok || got != 100*time.Second {
		t.Errorf("P95 = %v, %v; want 100s", got, ok)
	}
	if got, ok := s.Estimate("wf", "j", MaxSeen); !ok || got != 100*time.Second {
		t.Errorf("MaxSeen = %v, %v; want 100s", got, ok)
	}
	ewma, ok := s.Estimate("wf", "j", EWMA)
	if !ok || ewma <= 30*time.Second || ewma >= 100*time.Second {
		t.Errorf("EWMA = %v, want between the mean region and the max", ewma)
	}
	if _, ok := s.Estimate("wf", "missing", Mean); ok {
		t.Error("estimate for unknown job reported ok")
	}
	if _, ok := s.Estimate("wf", "j", Method(99)); ok {
		t.Error("unknown method reported ok")
	}
}

func TestEvictionKeepsNewest(t *testing.T) {
	s, err := NewStore(3)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 60 * time.Second} {
		if err := s.Record(obs(d)); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	if got := s.Runs("wf", "j"); got != 3 {
		t.Fatalf("Runs = %d, want 3 (bounded)", got)
	}
	// Oldest (1s) evicted: mean of {2, 3, 60} = 21.666s.
	got, _ := s.Estimate("wf", "j", Mean)
	if got < 21*time.Second || got > 22*time.Second {
		t.Errorf("Mean after eviction = %v, want ~21.7s", got)
	}
}

func buildWorkflow(t *testing.T) *workflow.Workflow {
	t.Helper()
	w := workflow.New("wf", 0, time.Hour)
	w.AddJob(workflow.Job{Name: "a", Tasks: 2, TaskDuration: 30 * time.Second, TaskDemand: resource.New(1, 1)})
	w.AddJob(workflow.Job{Name: "b", Tasks: 2, TaskDuration: 60 * time.Second, TaskDemand: resource.New(1, 1)})
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return w
}

func TestRecordRunAndApply(t *testing.T) {
	s, err := NewStore(10)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	run := buildWorkflow(t)
	// The run actually took longer than estimated.
	if err := run.SetActualTaskDuration(0, 45*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := run.SetActualTaskDuration(1, 90*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.RecordRun(run); err != nil {
		t.Fatalf("RecordRun: %v", err)
	}

	next := buildWorkflow(t)
	updated, err := s.Apply(next, Mean)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if updated != 2 {
		t.Errorf("updated = %d, want 2", updated)
	}
	if got := next.Job(0).TaskDuration; got != 45*time.Second {
		t.Errorf("job a estimate = %v, want 45s (learned)", got)
	}
	if got := next.Job(1).TaskDuration; got != 90*time.Second {
		t.Errorf("job b estimate = %v, want 90s (learned)", got)
	}

	// A workflow with unknown jobs is untouched.
	other := workflow.New("other", 0, time.Hour)
	other.AddJob(workflow.Job{Name: "x", Tasks: 1, TaskDuration: 5 * time.Second, TaskDemand: resource.New(1, 1)})
	if err := other.Validate(); err != nil {
		t.Fatal(err)
	}
	updated, err = s.Apply(other, Mean)
	if err != nil {
		t.Fatalf("Apply(other): %v", err)
	}
	if updated != 0 {
		t.Errorf("updated = %d, want 0 for unknown jobs", updated)
	}
}

func TestMeasureError(t *testing.T) {
	w := buildWorkflow(t)
	if err := w.SetActualTaskDuration(0, 36*time.Second); err != nil { // +20%
		t.Fatal(err)
	}
	if err := w.SetActualTaskDuration(1, 30*time.Second); err != nil { // -50%
		t.Fatal(err)
	}
	st, err := MeasureError(w)
	if err != nil {
		t.Fatalf("MeasureError: %v", err)
	}
	if st.MaxAbs < 0.49 || st.MaxAbs > 0.51 {
		t.Errorf("MaxAbs = %g, want 0.5", st.MaxAbs)
	}
	if st.MeanAbs < 0.34 || st.MeanAbs > 0.36 {
		t.Errorf("MeanAbs = %g, want 0.35", st.MeanAbs)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, err := NewStore(50)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := s.Record(obs(time.Duration(i+1) * time.Second)); err != nil {
					t.Error(err)
					return
				}
				s.Estimate("wf", "j", Mean)
			}
		}()
	}
	wg.Wait()
	if got := s.Runs("wf", "j"); got != 50 {
		t.Errorf("Runs = %d, want 50 (bounded)", got)
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		Mean: "mean", P95: "p95", EWMA: "ewma", MaxSeen: "max", Method(0): "method(0)",
	} {
		if got := m.String(); got != want {
			t.Errorf("Method(%d).String() = %q, want %q", m, got, want)
		}
	}
}
