// Package estimate maintains prior-run observations for recurring
// workflows and derives task-duration estimates from them — the knowledge
// the paper assumes for deadline-aware workflows ("we have rather complete
// knowledge of each workflow ... as well as the estimated running time of
// tasks in each job", §I) and the input the decomposition and the LP rely
// on. It also quantifies estimate error, feeding the robustness
// experiments (§III-A, Fig. 5).
package estimate

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"flowtime/internal/workflow"
)

// Observation is one measured execution of a recurring job.
type Observation struct {
	// WorkflowID and JobName identify the recurring job.
	WorkflowID string
	JobName    string
	// TaskDuration is the observed per-task runtime.
	TaskDuration time.Duration
}

// Validate checks the observation.
func (o Observation) Validate() error {
	if o.WorkflowID == "" || o.JobName == "" {
		return fmt.Errorf("estimate: observation missing identity: %+v", o)
	}
	if o.TaskDuration <= 0 {
		return fmt.Errorf("estimate: observation %s/%s: duration %v, want > 0",
			o.WorkflowID, o.JobName, o.TaskDuration)
	}
	return nil
}

// Method selects how estimates are derived from history.
type Method int

// Estimation methods. Enums start at one.
const (
	// Mean is the arithmetic mean of observations.
	Mean Method = iota + 1
	// P95 is the 95th percentile — conservative, Morpheus-style.
	P95
	// EWMA is an exponentially weighted moving average (alpha = 0.3),
	// tracking drift in recurring workloads.
	EWMA
	// MaxSeen is the maximum observation — maximally conservative.
	MaxSeen
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Mean:
		return "mean"
	case P95:
		return "p95"
	case EWMA:
		return "ewma"
	case MaxSeen:
		return "max"
	default:
		return fmt.Sprintf("method(%d)", int(m))
	}
}

// ewmaAlpha is the smoothing factor for the EWMA method.
const ewmaAlpha = 0.3

type key struct{ wf, job string }

// Store is a bounded per-job history of observations. The zero value is
// not usable; construct with NewStore. Store is safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	maxRuns int
	history map[key][]time.Duration
}

// NewStore returns a store keeping at most maxRuns observations per job
// (older observations are evicted first). maxRuns must be >= 1.
func NewStore(maxRuns int) (*Store, error) {
	if maxRuns < 1 {
		return nil, fmt.Errorf("estimate: maxRuns %d, want >= 1", maxRuns)
	}
	return &Store{maxRuns: maxRuns, history: make(map[key][]time.Duration)}, nil
}

// Record appends an observation.
func (s *Store) Record(o Observation) error {
	if err := o.Validate(); err != nil {
		return err
	}
	k := key{o.WorkflowID, o.JobName}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := append(s.history[k], o.TaskDuration)
	if len(h) > s.maxRuns {
		h = h[len(h)-s.maxRuns:]
	}
	s.history[k] = h
	return nil
}

// RecordRun records every job of a finished workflow run, using each job's
// effective (actual) task duration.
func (s *Store) RecordRun(w *workflow.Workflow) error {
	if err := w.Validate(); err != nil {
		return fmt.Errorf("estimate: %w", err)
	}
	for i := 0; i < w.NumJobs(); i++ {
		j := w.Job(i)
		if err := s.Record(Observation{
			WorkflowID:   w.ID,
			JobName:      j.Name,
			TaskDuration: j.EffectiveTaskDuration(),
		}); err != nil {
			return err
		}
	}
	return nil
}

// Runs returns how many observations exist for the job.
func (s *Store) Runs(workflowID, jobName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.history[key{workflowID, jobName}])
}

// Estimate derives a task-duration estimate; ok is false with no history.
func (s *Store) Estimate(workflowID, jobName string, m Method) (est time.Duration, ok bool) {
	s.mu.Lock()
	h := append([]time.Duration(nil), s.history[key{workflowID, jobName}]...)
	s.mu.Unlock()
	if len(h) == 0 {
		return 0, false
	}
	switch m {
	case Mean:
		var sum time.Duration
		for _, d := range h {
			sum += d
		}
		return sum / time.Duration(len(h)), true
	case P95:
		sorted := append([]time.Duration(nil), h...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		idx := int(math.Ceil(0.95*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return sorted[idx], true
	case EWMA:
		est := float64(h[0])
		for _, d := range h[1:] {
			est = ewmaAlpha*float64(d) + (1-ewmaAlpha)*est
		}
		return time.Duration(est), true
	case MaxSeen:
		maxD := h[0]
		for _, d := range h[1:] {
			if d > maxD {
				maxD = d
			}
		}
		return maxD, true
	default:
		return 0, false
	}
}

// Apply overwrites each job's TaskDuration estimate in w from the store
// (jobs without history keep their current estimate). Returns how many
// jobs were updated. Estimates are rounded up to whole seconds — the
// granularity of the trace format.
func (s *Store) Apply(w *workflow.Workflow, m Method) (int, error) {
	if err := w.Validate(); err != nil {
		return 0, fmt.Errorf("estimate: %w", err)
	}
	updated := 0
	for i := 0; i < w.NumJobs(); i++ {
		j := w.Job(i)
		est, ok := s.Estimate(w.ID, j.Name, m)
		if !ok {
			continue
		}
		est = est.Round(time.Second)
		if est <= 0 {
			est = time.Second
		}
		if err := w.SetEstimatedTaskDuration(i, est); err != nil {
			return updated, fmt.Errorf("estimate: %w", err)
		}
		updated++
	}
	return updated, nil
}

// ErrorStats quantifies estimate accuracy for a workflow whose actual
// durations are known: the mean and max of |actual-estimate|/estimate.
type ErrorStats struct {
	MeanAbs float64
	MaxAbs  float64
}

// MeasureError compares each job's estimate to its actual duration.
func MeasureError(w *workflow.Workflow) (ErrorStats, error) {
	if err := w.Validate(); err != nil {
		return ErrorStats{}, fmt.Errorf("estimate: %w", err)
	}
	var st ErrorStats
	n := 0
	for i := 0; i < w.NumJobs(); i++ {
		j := w.Job(i)
		if j.TaskDuration <= 0 {
			continue
		}
		rel := math.Abs(float64(j.EffectiveTaskDuration()-j.TaskDuration)) / float64(j.TaskDuration)
		st.MeanAbs += rel
		if rel > st.MaxAbs {
			st.MaxAbs = rel
		}
		n++
	}
	if n > 0 {
		st.MeanAbs /= float64(n)
	}
	return st, nil
}
