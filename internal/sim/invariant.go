package sim

import (
	"fmt"

	"flowtime/internal/machine"
	"flowtime/internal/resource"
)

// Observation is one job's state at the end of a slot, as seen by the
// InvariantChecker: the grant it received this slot, the request and
// readiness it advertised when the grant was made, and its cumulative
// accounting after the grant was applied.
type Observation struct {
	ID string
	// Granted is the clamped grant applied this slot (zero if none).
	Granted resource.Vector
	// Request and Ready are the values the scheduler saw this slot.
	Request resource.Vector
	Ready   bool
	// Consumed and Remaining are the job's cumulative consumption and
	// true remaining volume after the grant.
	Consumed  resource.Vector
	Remaining resource.Vector
	// Done reports completion as of the end of this slot.
	Done bool
}

// InvariantChecker asserts the simulator's per-slot safety invariants,
// independent of any scheduler:
//
//   - allocation never exceeds cluster capacity in any resource kind;
//   - a grant never exceeds the job's request, and only ready jobs
//     receive grants;
//   - consumption and remaining volume are never negative;
//   - work is conserved: consumed + remaining is constant per job;
//   - consumed work is monotone non-decreasing (confirmed work is never
//     un-confirmed);
//   - completion is permanent, implies zero remaining work, and no
//     grants flow to completed jobs.
//
// Create with NewInvariantChecker and feed it every simulated slot; it
// carries per-job history across slots, so one checker serves one run.
type InvariantChecker struct {
	consumed map[string]resource.Vector
	total    map[string]resource.Vector
	done     map[string]bool
	slots    int64
}

// NewInvariantChecker returns a checker with empty history.
func NewInvariantChecker() *InvariantChecker {
	return &InvariantChecker{
		consumed: make(map[string]resource.Vector),
		total:    make(map[string]resource.Vector),
		done:     make(map[string]bool),
	}
}

// Slots returns how many slots have been checked.
func (c *InvariantChecker) Slots() int64 { return c.slots }

// CheckSlot verifies one slot's observations against the invariants.
// The first error found is returned; nil means the slot is clean.
func (c *InvariantChecker) CheckSlot(slot int64, capacity resource.Vector, obs []Observation) error {
	var used resource.Vector
	seen := make(map[string]bool, len(obs))
	for _, o := range obs {
		if seen[o.ID] {
			return fmt.Errorf("invariant: job %s observed twice in slot %d", o.ID, slot)
		}
		seen[o.ID] = true
		if o.Granted.AnyNegative() {
			return fmt.Errorf("invariant: job %s negative grant %v", o.ID, o.Granted)
		}
		used = used.Add(o.Granted)
		if !o.Granted.FitsIn(o.Request) {
			return fmt.Errorf("invariant: job %s granted %v over request %v", o.ID, o.Granted, o.Request)
		}
		if !o.Ready && !o.Granted.IsZero() {
			return fmt.Errorf("invariant: job %s granted %v while not ready", o.ID, o.Granted)
		}
		if o.Consumed.AnyNegative() {
			return fmt.Errorf("invariant: job %s negative consumption %v", o.ID, o.Consumed)
		}
		if o.Remaining.AnyNegative() {
			return fmt.Errorf("invariant: job %s negative remaining volume %v", o.ID, o.Remaining)
		}
		if prev, ok := c.consumed[o.ID]; ok && !prev.FitsIn(o.Consumed) {
			return fmt.Errorf("invariant: job %s consumed work regressed: %v -> %v", o.ID, prev, o.Consumed)
		}
		c.consumed[o.ID] = o.Consumed
		total := o.Consumed.Add(o.Remaining)
		if t0, ok := c.total[o.ID]; !ok {
			c.total[o.ID] = total
		} else if total != t0 {
			return fmt.Errorf("invariant: job %s work not conserved: consumed+remaining %v, was %v", o.ID, total, t0)
		}
		if c.done[o.ID] {
			if !o.Done {
				return fmt.Errorf("invariant: job %s completion revoked", o.ID)
			}
			if !o.Granted.IsZero() {
				return fmt.Errorf("invariant: job %s granted %v after completion", o.ID, o.Granted)
			}
		}
		if o.Done {
			if !o.Remaining.IsZero() {
				return fmt.Errorf("invariant: job %s done with remaining volume %v", o.ID, o.Remaining)
			}
			c.done[o.ID] = true
		}
	}
	if !used.FitsIn(capacity) {
		return fmt.Errorf("invariant: slot %d allocation %v exceeds capacity %v", slot, used, capacity)
	}
	c.slots++
	return nil
}

// CheckMachines verifies the machine-mode per-node invariants for one
// slot: no machine is overcommitted beyond its effective capacity (the
// cluster guarantees by construction that only live machines carry
// work, so any usage row is a live machine), and the summed per-machine
// occupancy equals exactly the volume the simulator granted — every
// consumed quantum landed somewhere concrete, and nothing landed twice.
func (c *InvariantChecker) CheckMachines(slot int64, granted resource.Vector, usage []machine.Usage) error {
	var sum resource.Vector
	seen := make(map[string]bool, len(usage))
	for _, u := range usage {
		if seen[u.ID] {
			return fmt.Errorf("invariant: machine %s reported twice in slot %d", u.ID, slot)
		}
		seen[u.ID] = true
		if u.Used.AnyNegative() {
			return fmt.Errorf("invariant: machine %s negative occupancy %v", u.ID, u.Used)
		}
		if !u.Used.FitsIn(u.Capacity) {
			return fmt.Errorf("invariant: machine %s overcommitted: %v on capacity %v in slot %d",
				u.ID, u.Used, u.Capacity, slot)
		}
		sum = sum.Add(u.Used)
	}
	if sum != granted {
		return fmt.Errorf("invariant: slot %d placed volume %v != granted volume %v", slot, sum, granted)
	}
	return nil
}
