package sim_test

import (
	"math/rand"
	"testing"

	"flowtime/internal/core"
	"flowtime/internal/oracle"
	"flowtime/internal/resource"
	"flowtime/internal/sim"
	"flowtime/internal/workflow"
)

// scaleWorkflow rebuilds the workflow with every per-task demand
// multiplied by k (the DAG, durations, and deadline are unchanged).
func scaleWorkflow(t *testing.T, w *workflow.Workflow, k int64) *workflow.Workflow {
	t.Helper()
	out := workflow.New(w.ID, w.Submit, w.Deadline)
	for i := 0; i < w.NumJobs(); i++ {
		j := w.Job(i)
		j.TaskDemand = j.TaskDemand.Scale(k)
		out.AddJob(j)
	}
	for u := 0; u < w.NumJobs(); u++ {
		for _, v := range w.DAG().Successors(u) {
			out.AddDep(u, v)
		}
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("scaled workflow invalid: %v", err)
	}
	return out
}

func scenarioConfig(sc *oracle.Scenario) sim.Config {
	capacity := sc.Capacity
	return sim.Config{
		SlotDur:    sc.SlotDur,
		Horizon:    sc.Horizon,
		Capacity:   func(int64) resource.Vector { return capacity },
		Scheduler:  core.New(core.DefaultConfig()),
		Workflows:  sc.Workflows,
		AdHoc:      sc.AdHoc,
		Invariants: true,
	}
}

type verdict struct{ completed, missed bool }

func jobVerdicts(res *sim.Result) map[string]verdict {
	out := make(map[string]verdict, len(res.Jobs))
	for _, j := range res.Jobs {
		out[j.WorkflowID+"/"+j.JobName] = verdict{j.Completed, j.Missed()}
	}
	return out
}

// TestMetamorphicScaleVerdicts: multiplying the cluster capacity and
// every job's demand by k leaves the normalized LP instance unchanged,
// so deadline-miss verdicts must not change. (Completion times may shift
// by integral-repair rounding; verdicts are the invariant.)
func TestMetamorphicScaleVerdicts(t *testing.T) {
	const k = 2
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8; i++ {
		sc, err := oracle.GenScenario(rng)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sim.Run(scenarioConfig(sc))
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}

		scaled := *sc
		scaled.Capacity = sc.Capacity.Scale(k)
		scaled.Workflows = nil
		for _, w := range sc.Workflows {
			scaled.Workflows = append(scaled.Workflows, scaleWorkflow(t, w, k))
		}
		scaled.AdHoc = nil
		for _, ah := range sc.AdHoc {
			ah.TaskDemand = ah.TaskDemand.Scale(k)
			scaled.AdHoc = append(scaled.AdHoc, ah)
		}
		scaledRes, err := sim.Run(scenarioConfig(&scaled))
		if err != nil {
			t.Fatalf("scenario %d scaled: %v", i, err)
		}

		a, b := jobVerdicts(base), jobVerdicts(scaledRes)
		if len(a) != len(b) {
			t.Fatalf("scenario %d: job count changed %d -> %d", i, len(a), len(b))
		}
		for id, va := range a {
			if vb, ok := b[id]; !ok || va != vb {
				t.Errorf("scenario %d: job %s verdict changed under x%d scaling: %+v -> %+v",
					i, id, k, va, b[id])
			}
		}
	}
}

// TestMetamorphicPermuteSubmissionOrder: the simulator sorts jobs
// deterministically, so permuting the order workflows and ad-hoc jobs
// are listed in must not change any outcome (fault injection is off —
// it perturbs ground truth in listing order by design).
func TestMetamorphicPermuteSubmissionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 8; i++ {
		sc, err := oracle.GenScenario(rng)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sim.Run(scenarioConfig(sc))
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}

		perm := *sc
		perm.Workflows = append([]*workflow.Workflow(nil), sc.Workflows...)
		perm.AdHoc = append([]workflow.AdHoc(nil), sc.AdHoc...)
		rng.Shuffle(len(perm.Workflows), func(a, b int) {
			perm.Workflows[a], perm.Workflows[b] = perm.Workflows[b], perm.Workflows[a]
		})
		rng.Shuffle(len(perm.AdHoc), func(a, b int) {
			perm.AdHoc[a], perm.AdHoc[b] = perm.AdHoc[b], perm.AdHoc[a]
		})
		permRes, err := sim.Run(scenarioConfig(&perm))
		if err != nil {
			t.Fatalf("scenario %d permuted: %v", i, err)
		}

		if len(base.Jobs) != len(permRes.Jobs) {
			t.Fatalf("scenario %d: job count changed", i)
		}
		for j := range base.Jobs {
			if base.Jobs[j] != permRes.Jobs[j] {
				t.Errorf("scenario %d: outcome %d changed under permutation:\n%+v\n%+v",
					i, j, base.Jobs[j], permRes.Jobs[j])
			}
		}
		for j := range base.AdHoc {
			if base.AdHoc[j] != permRes.AdHoc[j] {
				t.Errorf("scenario %d: ad-hoc outcome %d changed under permutation", i, j)
			}
		}
	}
}

// TestMetamorphicCapacityScaleOnly is the sanity inverse: doubling
// capacity without touching demand must never turn a met deadline into
// a miss.
func TestMetamorphicCapacityScaleOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 6; i++ {
		sc, err := oracle.GenScenario(rng)
		if err != nil {
			t.Fatal(err)
		}
		base, err := sim.Run(scenarioConfig(sc))
		if err != nil {
			t.Fatalf("scenario %d: %v", i, err)
		}
		roomy := *sc
		roomy.Capacity = sc.Capacity.Scale(2)
		// Reuse requires fresh workflow clones: Run mutates nothing, but
		// the scheduler is stateful, so build a fresh config.
		cfg := scenarioConfig(&roomy)
		roomyRes, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("scenario %d roomy: %v", i, err)
		}
		a, b := jobVerdicts(base), jobVerdicts(roomyRes)
		for id, va := range a {
			if vb := b[id]; va.completed && !vb.completed {
				t.Errorf("scenario %d: job %s lost completion when capacity doubled", i, id)
			}
		}
	}
}
