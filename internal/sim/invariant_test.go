package sim

import (
	"strings"
	"testing"
	"time"

	"flowtime/internal/core"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/workflow"
)

func obsOK(id string) Observation {
	return Observation{
		ID:        id,
		Granted:   resource.New(2, 200),
		Request:   resource.New(4, 400),
		Ready:     true,
		Consumed:  resource.New(2, 200),
		Remaining: resource.New(6, 600),
	}
}

func TestInvariantCheckerViolations(t *testing.T) {
	capacity := resource.New(10, 1000)
	tests := []struct {
		name string
		obs  func() []Observation
		want string
	}{
		{"clean", func() []Observation { return []Observation{obsOK("a")} }, ""},
		{"duplicate observation", func() []Observation {
			return []Observation{obsOK("a"), obsOK("a")}
		}, "observed twice"},
		{"negative grant", func() []Observation {
			o := obsOK("a")
			o.Granted = o.Granted.Sub(resource.New(5, 0))
			return []Observation{o}
		}, "negative grant"},
		{"grant over request", func() []Observation {
			o := obsOK("a")
			o.Granted = resource.New(5, 500)
			return []Observation{o}
		}, "over request"},
		{"grant while blocked", func() []Observation {
			o := obsOK("a")
			o.Ready = false
			return []Observation{o}
		}, "not ready"},
		{"negative remaining", func() []Observation {
			o := obsOK("a")
			o.Remaining = o.Remaining.Sub(resource.New(100, 0))
			return []Observation{o}
		}, "negative remaining"},
		{"over capacity", func() []Observation {
			a, b, c := obsOK("a"), obsOK("b"), obsOK("c")
			a.Granted = resource.New(4, 400)
			a.Request = resource.New(4, 400)
			b.Granted, b.Request = a.Granted, a.Request
			c.Granted, c.Request = a.Granted, a.Request
			return []Observation{a, b, c}
		}, "exceeds capacity"},
		{"done with remaining", func() []Observation {
			o := obsOK("a")
			o.Done = true
			return []Observation{o}
		}, "done with remaining"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := NewInvariantChecker().CheckSlot(0, capacity, tt.obs())
			if tt.want == "" {
				if err != nil {
					t.Fatalf("CheckSlot = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("CheckSlot = %v, want error mentioning %q", err, tt.want)
			}
		})
	}
}

func TestInvariantCheckerCrossSlotHistory(t *testing.T) {
	capacity := resource.New(10, 1000)

	t.Run("consumed regression", func(t *testing.T) {
		c := NewInvariantChecker()
		if err := c.CheckSlot(0, capacity, []Observation{obsOK("a")}); err != nil {
			t.Fatal(err)
		}
		o := obsOK("a")
		o.Granted = resource.Vector{}
		o.Consumed = resource.New(1, 100) // below slot 0's consumption
		o.Remaining = resource.New(7, 700)
		if err := c.CheckSlot(1, capacity, []Observation{o}); err == nil ||
			!strings.Contains(err.Error(), "regressed") {
			t.Fatalf("CheckSlot = %v, want regression error", err)
		}
	})

	t.Run("work conservation", func(t *testing.T) {
		c := NewInvariantChecker()
		if err := c.CheckSlot(0, capacity, []Observation{obsOK("a")}); err != nil {
			t.Fatal(err)
		}
		o := obsOK("a")
		o.Granted = resource.Vector{}
		o.Remaining = o.Remaining.Add(resource.New(1, 0)) // work appeared from nowhere
		if err := c.CheckSlot(1, capacity, []Observation{o}); err == nil ||
			!strings.Contains(err.Error(), "not conserved") {
			t.Fatalf("CheckSlot = %v, want conservation error", err)
		}
	})

	t.Run("completion revoked", func(t *testing.T) {
		c := NewInvariantChecker()
		done := obsOK("a")
		done.Granted = resource.New(6, 600)
		done.Request = resource.New(6, 600)
		done.Consumed = resource.New(8, 800)
		done.Remaining = resource.Vector{}
		done.Done = true
		if err := c.CheckSlot(0, capacity, []Observation{done}); err != nil {
			t.Fatal(err)
		}
		undone := done
		undone.Granted = resource.Vector{}
		undone.Done = false
		if err := c.CheckSlot(1, capacity, []Observation{undone}); err == nil ||
			!strings.Contains(err.Error(), "revoked") {
			t.Fatalf("CheckSlot = %v, want revocation error", err)
		}
	})

	t.Run("grant after completion", func(t *testing.T) {
		c := NewInvariantChecker()
		done := obsOK("a")
		done.Granted = resource.Vector{}
		done.Consumed = resource.New(8, 800)
		done.Remaining = resource.Vector{}
		done.Done = true
		if err := c.CheckSlot(0, capacity, []Observation{done}); err != nil {
			t.Fatal(err)
		}
		again := done
		again.Granted = resource.New(1, 100)
		if err := c.CheckSlot(1, capacity, []Observation{again}); err == nil ||
			!strings.Contains(err.Error(), "after completion") {
			t.Fatalf("CheckSlot = %v, want grant-after-completion error", err)
		}
	})
}

// TestRunWithInvariantsFlowTime runs the full pipeline with the checker
// armed: a healthy run must verify every simulated slot and finish clean.
func TestRunWithInvariantsFlowTime(t *testing.T) {
	cfg := chaosConfig(t, core.New(core.DefaultConfig()))
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.InvariantSlots == 0 || res.InvariantSlots != res.Slots {
		t.Errorf("InvariantSlots = %d, Slots = %d; want every slot checked", res.InvariantSlots, res.Slots)
	}
}

// A hostile scheduler that demands far more than any job requested; the
// sim's clamping must keep the run invariant-clean anyway.
type overGranter struct{}

func (overGranter) Name() string { return "over-granter" }
func (overGranter) Assign(ctx sched.AssignContext) (map[string]resource.Vector, error) {
	out := make(map[string]resource.Vector, len(ctx.Jobs))
	for _, j := range ctx.Jobs {
		out[j.ID] = resource.New(1<<30, 1<<40)
	}
	return out, nil
}

func TestRunWithInvariantsHostileScheduler(t *testing.T) {
	cfg := baseConfig(overGranter{})
	cfg.Invariants = true
	cfg.Workflows = []*workflow.Workflow{twoJobChain(t)}
	cfg.AdHoc = []workflow.AdHoc{{
		ID: "a1", Submit: 0, Tasks: 3, TaskDuration: 40 * time.Second,
		TaskDemand: resource.New(2, 100),
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v (clamping must keep a hostile scheduler invariant-clean)", err)
	}
	if res.InvariantSlots != res.Slots {
		t.Errorf("InvariantSlots = %d, Slots = %d", res.InvariantSlots, res.Slots)
	}
}
