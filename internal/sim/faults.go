package sim

import (
	"fmt"
	"math"
	"math/rand"

	"flowtime/internal/resource"
)

// FaultInjection perturbs a run's ground truth for chaos tests of the
// scheduling pipeline: the scheduler still sees the clean estimates, but
// the actual work diverges, driving estimate revisions, replan storms,
// and — combined with tight core.Config.Solve budgets — the planner's
// degradation ladder. Perturbations are deterministic given Seed.
type FaultInjection struct {
	// Seed seeds the perturbation stream. Runs with equal configs and
	// seeds are identical.
	Seed int64
	// RuntimeJitter j scales each job's actual volume by an independent
	// factor uniform in [1-j, 1+j]. Must be in [0, 1).
	RuntimeJitter float64
	// StragglerFrac marks roughly that fraction of jobs as stragglers,
	// whose actual volume is further multiplied by StragglerFactor. Must
	// be in [0, 1].
	StragglerFrac float64
	// StragglerFactor is the straggler volume multiplier; 0 means 2.
	StragglerFactor float64
}

func (fi *FaultInjection) validate() error {
	if fi.RuntimeJitter < 0 || fi.RuntimeJitter >= 1 {
		return fmt.Errorf("fault injection: runtime jitter %v, want [0, 1)", fi.RuntimeJitter)
	}
	if fi.StragglerFrac < 0 || fi.StragglerFrac > 1 {
		return fmt.Errorf("fault injection: straggler fraction %v, want [0, 1]", fi.StragglerFrac)
	}
	if fi.StragglerFactor < 0 {
		return fmt.Errorf("fault injection: straggler factor %v, want >= 0", fi.StragglerFactor)
	}
	return nil
}

// newRand validates the config and returns the perturbation stream, or
// (nil, nil) when fault injection is disabled.
func (fi *FaultInjection) newRand() (*rand.Rand, error) {
	if fi == nil {
		return nil, nil
	}
	if err := fi.validate(); err != nil {
		return nil, err
	}
	return rand.New(rand.NewSource(fi.Seed)), nil
}

// perturb scales one job's actual volume by the configured jitter and
// straggler factors. Jobs are perturbed in construction order, so the
// mapping from seed to per-job factors is stable.
func (fi *FaultInjection) perturb(rng *rand.Rand, v resource.Vector) resource.Vector {
	if fi == nil || rng == nil {
		return v
	}
	factor := 1.0
	if fi.RuntimeJitter > 0 {
		factor = 1 - fi.RuntimeJitter + 2*fi.RuntimeJitter*rng.Float64()
	}
	if fi.StragglerFrac > 0 && rng.Float64() < fi.StragglerFrac {
		sf := fi.StragglerFactor
		if sf == 0 {
			sf = 2
		}
		factor *= sf
	}
	if factor == 1 {
		return v
	}
	out := v
	for _, k := range resource.Kinds() {
		if x := v.Get(k); x > 0 {
			scaled := int64(math.Round(float64(x) * factor))
			if scaled < 1 {
				scaled = 1 // a job never perturbs into zero work
			}
			out = out.With(k, scaled)
		}
	}
	return out
}
