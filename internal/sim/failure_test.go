package sim

import (
	"testing"
	"time"

	"flowtime/internal/cluster"
	"flowtime/internal/core"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/workflow"
)

// TestCapacityDipRecovery injects a 50% capacity outage in the middle of a
// run (DESIGN.md §8 failure injection) and checks that every scheduler
// still completes the work, never exceeds the reduced capacity during the
// dip, and that FlowTime replans around it.
func TestCapacityDipRecovery(t *testing.T) {
	full := resource.New(20, 2000)
	profile, err := cluster.Constant(full).WithDip(20, 40, 1, 2)
	if err != nil {
		t.Fatalf("WithDip: %v", err)
	}

	mkWorkload := func() []*workflow.Workflow {
		w := workflow.New("dip-wf", 0, 1500*time.Second)
		a := w.AddJob(workflow.Job{
			Name: "stage-a", Tasks: 10,
			TaskDuration: 200 * time.Second,
			TaskDemand:   resource.New(1, 100),
		})
		b := w.AddJob(workflow.Job{
			Name: "stage-b", Tasks: 10,
			TaskDuration: 200 * time.Second,
			TaskDemand:   resource.New(1, 100),
		})
		w.AddDep(a, b)
		return []*workflow.Workflow{w}
	}

	for _, s := range []sched.Scheduler{
		core.New(core.DefaultConfig()),
		sched.NewEDF(),
		sched.NewFair(),
		sched.NewFIFO(),
	} {
		t.Run(s.Name(), func(t *testing.T) {
			res, err := Run(Config{
				SlotDur:    slotDur,
				Horizon:    400,
				Capacity:   profile.Func(),
				Scheduler:  s,
				Workflows:  mkWorkload(),
				RecordLoad: true,
				AdHoc: []workflow.AdHoc{{
					ID: "probe", Submit: 250 * time.Second, Tasks: 4,
					TaskDuration: 60 * time.Second, TaskDemand: resource.New(1, 100),
				}},
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, j := range res.Jobs {
				if !j.Completed {
					t.Errorf("job %s/%s never completed after the dip", j.WorkflowID, j.JobName)
				}
			}
			for _, a := range res.AdHoc {
				if !a.Completed {
					t.Errorf("ad-hoc %s never completed", a.ID)
				}
			}
			for _, l := range res.Load {
				used := l.Deadline.Add(l.AdHoc)
				if !used.FitsIn(l.Capacity) {
					t.Errorf("slot %d: load %v exceeds dipped capacity %v", l.Slot, used, l.Capacity)
				}
				if l.Slot >= 20 && l.Slot < 40 {
					if got := l.Capacity.Get(resource.VCores); got != 10 {
						t.Fatalf("slot %d: capacity %d, want 10 during dip", l.Slot, got)
					}
				}
			}
		})
	}
}

// TestFlowTimeAnticipatesKnownDip verifies that a capacity dip encoded in
// the profile is handled within a single plan: FlowTime sees CapAt for
// future slots, so a *scheduled* outage needs no reactive replanning.
func TestFlowTimeAnticipatesKnownDip(t *testing.T) {
	full := resource.New(20, 2000)
	profile, err := cluster.Constant(full).WithDip(5, 10, 1, 4)
	if err != nil {
		t.Fatalf("WithDip: %v", err)
	}
	f := core.New(core.Config{Slack: 0, MaxLexRounds: 2})
	w := workflow.New("w", 0, 600*time.Second)
	w.AddJob(workflow.Job{
		Name: "j", Tasks: 10,
		TaskDuration: 100 * time.Second,
		TaskDemand:   resource.New(1, 100),
	})
	res, err := Run(Config{
		SlotDur:    slotDur,
		Horizon:    100,
		Capacity:   profile.Func(),
		Scheduler:  f,
		Workflows:  []*workflow.Workflow{w},
		RecordLoad: true,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := f.Stats().Replans; got != 1 {
		t.Errorf("Replans = %d, want 1 (the dip is known in advance)", got)
	}
	for _, l := range res.Load {
		if l.Slot >= 5 && l.Slot < 10 {
			if got := l.Deadline.Get(resource.VCores); got > 5 {
				t.Errorf("slot %d: deadline load %d exceeds dipped capacity 5", l.Slot, got)
			}
		}
	}
	if !res.Jobs[0].Completed || res.Jobs[0].Missed() {
		t.Errorf("job outcome %+v, want completed on time around the dip", res.Jobs[0])
	}
}
