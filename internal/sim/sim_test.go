package sim

import (
	"strings"
	"testing"
	"time"

	"flowtime/internal/core"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/workflow"
)

const slotDur = 10 * time.Second

func constCap(v resource.Vector) func(int64) resource.Vector {
	return func(int64) resource.Vector { return v }
}

func simpleJob(name string, tasks int, dur time.Duration) workflow.Job {
	return workflow.Job{
		Name:         name,
		Tasks:        tasks,
		TaskDuration: dur,
		TaskDemand:   resource.New(1, 100),
	}
}

// twoJobChain builds the Fig.1 workflow: two chained jobs, each needing the
// whole cluster for 500s, deadline 2000s.
func twoJobChain(t *testing.T) *workflow.Workflow {
	t.Helper()
	w := workflow.New("w1", 0, 2000*time.Second)
	a := w.AddJob(simpleJob("job1", 10, 500*time.Second))
	b := w.AddJob(simpleJob("job2", 10, 500*time.Second))
	w.AddDep(a, b)
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return w
}

func baseConfig(s sched.Scheduler) Config {
	return Config{
		SlotDur:   slotDur,
		Horizon:   400,
		Capacity:  constCap(resource.New(10, 1000)),
		Scheduler: s,
	}
}

func TestRunValidation(t *testing.T) {
	ok := baseConfig(sched.NewFIFO())
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero slot", func(c *Config) { c.SlotDur = 0 }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"nil capacity", func(c *Config) { c.Capacity = nil }},
		{"nil scheduler", func(c *Config) { c.Scheduler = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := ok
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("want error")
			}
		})
	}
}

func TestRunDuplicateIDsRejected(t *testing.T) {
	cfg := baseConfig(sched.NewFIFO())
	w1 := twoJobChain(t)
	w2 := twoJobChain(t) // same ID "w1"
	cfg.Workflows = []*workflow.Workflow{w1, w2}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Run = %v, want duplicate-ID error", err)
	}

	cfg = baseConfig(sched.NewFIFO())
	ah := workflow.AdHoc{ID: "a", Submit: 0, Tasks: 1, TaskDuration: time.Second, TaskDemand: resource.New(1, 1)}
	cfg.AdHoc = []workflow.AdHoc{ah, ah}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("Run = %v, want duplicate-ID error", err)
	}
}

func TestSingleAdHocJobRunsToCompletion(t *testing.T) {
	cfg := baseConfig(sched.NewFIFO())
	cfg.AdHoc = []workflow.AdHoc{{
		ID: "a1", Submit: 0, Tasks: 5, TaskDuration: 30 * time.Second,
		TaskDemand: resource.New(2, 200),
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.AdHoc) != 1 || !res.AdHoc[0].Completed {
		t.Fatalf("ad-hoc outcome = %+v, want completed", res.AdHoc)
	}
	// 5 tasks x 3 slots x <2, 200>; cluster fits all 5 tasks at once -> 3 slots.
	if got, want := res.AdHoc[0].Completion, 30*time.Second; got != want {
		t.Errorf("completion = %v, want %v", got, want)
	}
	if got := res.AdHoc[0].Turnaround(res.HorizonEnd); got != 30*time.Second {
		t.Errorf("turnaround = %v, want 30s", got)
	}
}

func TestChainRespectsDependencies(t *testing.T) {
	cfg := baseConfig(sched.NewEDF())
	cfg.Workflows = []*workflow.Workflow{twoJobChain(t)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("got %d job outcomes, want 2", len(res.Jobs))
	}
	var j1, j2 JobOutcome
	for _, j := range res.Jobs {
		if j.JobName == "job1" {
			j1 = j
		} else {
			j2 = j
		}
	}
	if !j1.Completed || !j2.Completed {
		t.Fatalf("jobs incomplete: %+v, %+v", j1, j2)
	}
	// Each job: 10 tasks x 50 slots volume 500 core-slots, cap 10/slot ->
	// 50 slots each; j2 cannot start before j1 completes.
	if j1.Completion != 500*time.Second {
		t.Errorf("job1 completion = %v, want 500s", j1.Completion)
	}
	if j2.Completion != 1000*time.Second {
		t.Errorf("job2 completion = %v, want 1000s (dependency)", j2.Completion)
	}
	if len(res.Workflows) != 1 || res.Workflows[0].Missed() {
		t.Errorf("workflow outcome = %+v, want met deadline", res.Workflows)
	}
}

func TestDeadlineMissDetected(t *testing.T) {
	// Impossible deadline: needs 1000s of work, deadline 300s.
	w := workflow.New("tight", 0, 300*time.Second)
	a := w.AddJob(simpleJob("j1", 10, 500*time.Second))
	b := w.AddJob(simpleJob("j2", 10, 500*time.Second))
	w.AddDep(a, b)
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cfg := baseConfig(sched.NewEDF())
	cfg.Workflows = []*workflow.Workflow{w}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Workflows[0].Missed() {
		t.Error("impossible deadline reported as met")
	}
	missed := 0
	for _, j := range res.Jobs {
		if j.Missed() {
			missed++
		}
	}
	if missed == 0 {
		t.Error("no job-level misses recorded for an impossible workflow")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	capacity := resource.New(10, 1000)
	for _, s := range []sched.Scheduler{
		sched.NewFIFO(), sched.NewFair(), sched.NewEDF(), sched.NewCORA(),
		sched.NewMorpheus(nil), core.New(core.DefaultConfig()),
	} {
		t.Run(s.Name(), func(t *testing.T) {
			cfg := baseConfig(s)
			cfg.RecordLoad = true
			cfg.Workflows = []*workflow.Workflow{twoJobChain(t)}
			cfg.AdHoc = []workflow.AdHoc{
				{ID: "a1", Submit: 0, Tasks: 8, TaskDuration: 40 * time.Second, TaskDemand: resource.New(1, 100)},
				{ID: "a2", Submit: 200 * time.Second, Tasks: 4, TaskDuration: 80 * time.Second, TaskDemand: resource.New(2, 150)},
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, l := range res.Load {
				if !l.Deadline.Add(l.AdHoc).FitsIn(capacity) {
					t.Fatalf("slot %d: load %v + %v exceeds capacity", l.Slot, l.Deadline, l.AdHoc)
				}
			}
			for _, j := range res.Jobs {
				if !j.Completed {
					t.Errorf("job %s/%s incomplete", j.WorkflowID, j.JobName)
				}
			}
			for _, a := range res.AdHoc {
				if !a.Completed {
					t.Errorf("ad-hoc %s incomplete", a.ID)
				}
			}
		})
	}
}

func TestFlowTimeReproducesFig1(t *testing.T) {
	// The paper's motivating example (Fig. 1): W1 = two chained jobs
	// needing the full cluster for 500s each, deadline 2000s; ad-hoc A1
	// (500s of cluster-halving work) at t=0 and A2 at t=1000s.
	//
	// EDF runs W1 flat out: A1 waits 1000s. FlowTime spreads W1 across its
	// loose window, so A1 and A2 run (nearly) immediately; both finish far
	// sooner, and W1 still meets its deadline.
	mk := func() Config {
		return Config{
			SlotDur:  slotDur,
			Horizon:  600,
			Capacity: constCap(resource.New(10, 1000)),
			Workflows: []*workflow.Workflow{func() *workflow.Workflow {
				w := workflow.New("w1", 0, 2000*time.Second)
				a := w.AddJob(simpleJob("job1", 10, 500*time.Second))
				b := w.AddJob(simpleJob("job2", 10, 500*time.Second))
				w.AddDep(a, b)
				return w
			}()},
			AdHoc: []workflow.AdHoc{
				{ID: "A1", Submit: 0, Tasks: 5, TaskDuration: 500 * time.Second, TaskDemand: resource.New(1, 100)},
				{ID: "A2", Submit: 1000 * time.Second, Tasks: 5, TaskDuration: 500 * time.Second, TaskDemand: resource.New(1, 100)},
			},
		}
	}

	edfCfg := mk()
	edfCfg.Scheduler = sched.NewEDF()
	edfRes, err := Run(edfCfg)
	if err != nil {
		t.Fatalf("Run(EDF): %v", err)
	}

	ftCfg := mk()
	ftCfg.Scheduler = core.New(core.DefaultConfig())
	ftRes, err := Run(ftCfg)
	if err != nil {
		t.Fatalf("Run(FlowTime): %v", err)
	}

	if ftRes.Workflows[0].Missed() {
		t.Fatalf("FlowTime missed the workflow deadline: %+v", ftRes.Workflows[0])
	}

	avg := func(res *Result) time.Duration {
		var sum time.Duration
		for _, a := range res.AdHoc {
			if !a.Completed {
				t.Fatalf("ad-hoc %s incomplete", a.ID)
			}
			sum += a.Turnaround(res.HorizonEnd)
		}
		return sum / time.Duration(len(res.AdHoc))
	}
	edfAvg, ftAvg := avg(edfRes), avg(ftRes)
	if ftAvg*3/2 >= edfAvg {
		t.Errorf("FlowTime avg turnaround %v not clearly better than EDF %v", ftAvg, edfAvg)
	}
}

func TestUnderestimationRecovery(t *testing.T) {
	// Job estimated at 300s actually takes 600s: the wave-revision path
	// must keep feeding it and it must still complete.
	w := workflow.New("w", 0, 3000*time.Second)
	j := simpleJob("long", 5, 300*time.Second)
	j.ActualTaskDuration = 600 * time.Second
	w.AddJob(j)
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cfg := Config{
		SlotDur:   slotDur,
		Horizon:   500,
		Capacity:  constCap(resource.New(10, 1000)),
		Scheduler: core.New(core.DefaultConfig()),
		Workflows: []*workflow.Workflow{w},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Jobs[0].Completed {
		t.Fatal("underestimated job never completed")
	}
}

func TestEarlyExitWhenAllWorkDone(t *testing.T) {
	cfg := baseConfig(sched.NewFIFO())
	cfg.AdHoc = []workflow.AdHoc{{
		ID: "a", Submit: 0, Tasks: 1, TaskDuration: 10 * time.Second,
		TaskDemand: resource.New(1, 100),
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Slots >= cfg.Horizon {
		t.Errorf("simulated %d slots, want early exit", res.Slots)
	}
}

func TestOutcomeHelpers(t *testing.T) {
	jo := JobOutcome{Deadline: 100 * time.Second, Completion: 90 * time.Second, Completed: true}
	if jo.Missed() {
		t.Error("early job reported missed")
	}
	if got := jo.Lateness(0); got != -10*time.Second {
		t.Errorf("Lateness = %v, want -10s", got)
	}
	jo.Completed = false
	if !jo.Missed() {
		t.Error("incomplete job reported met")
	}
	if got := jo.Lateness(500 * time.Second); got != 400*time.Second {
		t.Errorf("Lateness(incomplete) = %v, want 400s", got)
	}

	ao := AdHocOutcome{Submit: 50 * time.Second}
	if got := ao.Turnaround(300 * time.Second); got != 250*time.Second {
		t.Errorf("Turnaround(incomplete) = %v, want 250s", got)
	}
}
