package sim

import (
	"strings"
	"testing"
	"time"

	"flowtime/internal/machine"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/workflow"
)

func machineModeConfig(machines []machine.Spec, events []machine.Event, adhoc []workflow.AdHoc) Config {
	return Config{
		SlotDur:    10 * time.Second,
		Horizon:    50,
		Scheduler:  sched.NewFIFO(),
		AdHoc:      adhoc,
		Machines:   &MachineMode{Initial: machines, Events: events},
		Invariants: true,
	}
}

func TestMachineModeRejectsExplicitCapacity(t *testing.T) {
	cfg := machineModeConfig(machine.Homogeneous("m", 2, resource.New(4, 4096)), nil, nil)
	cfg.Capacity = func(int64) resource.Vector { return resource.New(1, 1) }
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "Capacity must be nil") {
		t.Fatalf("err = %v, want capacity-conflict error", err)
	}
}

func TestMachineModeRunsToCompletion(t *testing.T) {
	adhoc := []workflow.AdHoc{{
		ID: "a", Tasks: 4, TaskDuration: 20 * time.Second,
		TaskDemand: resource.New(1, 512),
	}}
	res, err := Run(machineModeConfig(machine.Homogeneous("m", 2, resource.New(2, 2048)), nil, adhoc))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.AdHoc) != 1 || !res.AdHoc[0].Completed {
		t.Fatalf("ad-hoc outcome = %+v", res.AdHoc)
	}
	if res.Machine == nil {
		t.Fatal("machine mode produced no MachineResult")
	}
	m := res.Machine
	if m.PeakLive != 2 || m.MinLive != 2 || m.FinalLive != 2 {
		t.Fatalf("live counts = %d/%d/%d, want 2/2/2", m.MinLive, m.PeakLive, m.FinalLive)
	}
	if m.Stats.PlacedUnits == 0 {
		t.Fatal("no units placed")
	}
	if !m.UnplacedVolume.IsZero() {
		t.Fatalf("unplaced volume %v on an uncontended cluster", m.UnplacedVolume)
	}
	if res.InvariantSlots == 0 {
		t.Fatal("invariants did not run")
	}
	if res.Events == 0 {
		t.Fatal("no events counted")
	}
}

func TestMachineModeEventsChangeCapacity(t *testing.T) {
	events := []machine.Event{
		{Slot: 3, Kind: machine.Fail, ID: "m-0"},
		{Slot: 6, Kind: machine.Join, Spec: machine.Spec{ID: "m-0", Capacity: resource.New(2, 2048)}},
	}
	adhoc := []workflow.AdHoc{{
		ID: "a", Tasks: 8, TaskDuration: 100 * time.Second,
		TaskDemand: resource.New(1, 512),
	}}
	res, err := Run(machineModeConfig(machine.Homogeneous("m", 2, resource.New(2, 2048)), events, adhoc))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m := res.Machine
	if m == nil {
		t.Fatal("no MachineResult")
	}
	if m.MachineEvents != 2 {
		t.Fatalf("MachineEvents = %d, want 2", m.MachineEvents)
	}
	if m.MinLive != 1 || m.PeakLive != 2 || m.FinalLive != 2 {
		t.Fatalf("live counts = %d/%d/%d, want 1/2/2", m.MinLive, m.PeakLive, m.FinalLive)
	}
	if m.Stats.Fails != 1 || m.Stats.Joins != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

// TestMachineModeFragmentationStarvesOversizedTasks: a task whose demand
// exceeds every machine can be granted by the fluid scheduler but never
// placed — the volume shows up as unplaced and the job cannot finish.
func TestMachineModeFragmentationStarvesOversizedTasks(t *testing.T) {
	adhoc := []workflow.AdHoc{{
		ID: "big", Tasks: 1, TaskDuration: 10 * time.Second,
		TaskDemand: resource.New(4, 512), // no single 2-core machine fits this
	}}
	res, err := Run(machineModeConfig(machine.Homogeneous("m", 2, resource.New(2, 2048)), nil, adhoc))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.AdHoc[0].Completed {
		t.Fatal("oversized task completed despite fitting no machine")
	}
	m := res.Machine
	if m.UnplacedVolume.IsZero() {
		t.Fatal("no unplaced volume reported")
	}
	if m.Stats.Failures == 0 {
		t.Fatal("no placement failures counted")
	}
}

// TestMachineModeMatchesAggregateWhenUnconstrained: with one huge
// machine, placement can never fail, so machine mode must reproduce the
// aggregate simulation's outcomes exactly.
func TestMachineModeMatchesAggregateWhenUnconstrained(t *testing.T) {
	adhoc := []workflow.AdHoc{
		{ID: "a", Tasks: 4, TaskDuration: 30 * time.Second, TaskDemand: resource.New(1, 512)},
		{ID: "b", Submit: 20 * time.Second, Tasks: 2, TaskDuration: 50 * time.Second, TaskDemand: resource.New(2, 256)},
	}
	big := resource.New(64, 65536)
	mres, err := Run(machineModeConfig([]machine.Spec{{ID: "jumbo", Capacity: big}}, nil, adhoc))
	if err != nil {
		t.Fatalf("machine-mode Run: %v", err)
	}
	ares, err := Run(Config{
		SlotDur:    10 * time.Second,
		Horizon:    50,
		Scheduler:  sched.NewFIFO(),
		AdHoc:      adhoc,
		Capacity:   func(int64) resource.Vector { return big },
		Invariants: true,
	})
	if err != nil {
		t.Fatalf("aggregate Run: %v", err)
	}
	if len(mres.AdHoc) != len(ares.AdHoc) {
		t.Fatalf("outcome counts differ: %d vs %d", len(mres.AdHoc), len(ares.AdHoc))
	}
	for i := range mres.AdHoc {
		if mres.AdHoc[i] != ares.AdHoc[i] {
			t.Fatalf("outcome %d diverged: machine %+v vs aggregate %+v", i, mres.AdHoc[i], ares.AdHoc[i])
		}
	}
	if !mres.Machine.UnplacedVolume.IsZero() {
		t.Fatalf("unplaced volume %v on a single huge machine", mres.Machine.UnplacedVolume)
	}
}

func TestCheckMachinesViolations(t *testing.T) {
	c := NewInvariantChecker()
	// Overcommitted machine.
	err := c.CheckMachines(0, resource.New(8, 512), []machine.Usage{
		{ID: "m", Used: resource.New(8, 512), Capacity: resource.New(4, 4096)},
	})
	if err == nil || !strings.Contains(err.Error(), "overcommitted") {
		t.Fatalf("err = %v, want overcommitted", err)
	}
	// Placement/grant accounting mismatch.
	err = c.CheckMachines(0, resource.New(4, 512), []machine.Usage{
		{ID: "m", Used: resource.New(2, 512), Capacity: resource.New(4, 4096)},
	})
	if err == nil || !strings.Contains(err.Error(), "granted volume") {
		t.Fatalf("err = %v, want granted-volume mismatch", err)
	}
	// Duplicate machine.
	err = c.CheckMachines(0, resource.New(2, 512), []machine.Usage{
		{ID: "m", Used: resource.New(1, 256), Capacity: resource.New(4, 4096)},
		{ID: "m", Used: resource.New(1, 256), Capacity: resource.New(4, 4096)},
	})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("err = %v, want reported-twice", err)
	}
	// Clean slot.
	if err := c.CheckMachines(0, resource.New(2, 512), []machine.Usage{
		{ID: "m", Used: resource.New(2, 512), Capacity: resource.New(4, 4096)},
	}); err != nil {
		t.Fatalf("clean slot rejected: %v", err)
	}
}
