package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"flowtime/internal/core"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/workflow"
	"flowtime/internal/workload"
)

// TestAllSchedulersRandomWorkloadsInvariants fuzzes every scheduler with
// random workloads and checks the simulator-level invariants that no
// scheduling policy may break:
//
//   - capacity is never exceeded in any slot;
//   - every job completes when the horizon is generous;
//   - completions respect DAG order;
//   - ad-hoc jobs never finish before submit + their minimum runtime.
func TestAllSchedulersRandomWorkloadsInvariants(t *testing.T) {
	scheds := func() []sched.Scheduler {
		return []sched.Scheduler{
			core.New(core.DefaultConfig()),
			sched.NewEDF(),
			sched.NewFair(),
			sched.NewFIFO(),
			sched.NewCORA(),
			sched.NewMorpheus(nil),
		}
	}
	capacity := resource.New(40, 80*1024)
	shapes := []workload.Shape{
		workload.ShapeChain, workload.ShapeDiamond, workload.ShapeMontage,
		workload.ShapeEpigenomics, workload.ShapeCyberShake, workload.ShapeSipht,
	}
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		var wfs []*workflow.Workflow
		for i := 0; i < 1+rng.Intn(2); i++ {
			w, err := workload.GenerateWorkflow(rng, workload.WorkflowSpec{
				ID:             fmt.Sprintf("wf-%d-%d", trial, i),
				Shape:          shapes[rng.Intn(len(shapes))],
				Jobs:           6 + rng.Intn(6),
				Submit:         time.Duration(rng.Intn(120)) * time.Second,
				DeadlineFactor: 3 + rng.Float64()*3,
			})
			if err != nil {
				t.Fatalf("trial %d: GenerateWorkflow: %v", trial, err)
			}
			wfs = append(wfs, w)
		}
		adhoc, err := workload.GenerateAdHoc(rng, workload.AdHocSpec{
			Count:            5 + rng.Intn(8),
			MeanInterarrival: 30 * time.Second,
			MinTasks:         1, MaxTasks: 12,
			MinTaskDur: 10 * time.Second, MaxTaskDur: 90 * time.Second,
			Demand: resource.New(1, 1024),
		})
		if err != nil {
			t.Fatalf("trial %d: GenerateAdHoc: %v", trial, err)
		}

		for _, s := range scheds() {
			res, err := Run(Config{
				SlotDur:    slotDur,
				Horizon:    6000,
				Capacity:   func(int64) resource.Vector { return capacity },
				Scheduler:  s,
				Workflows:  cloneWorkflows(t, wfs),
				AdHoc:      adhoc,
				RecordLoad: true,
			})
			if err != nil {
				t.Fatalf("trial %d %s: Run: %v", trial, s.Name(), err)
			}
			for _, l := range res.Load {
				if !l.Deadline.Add(l.AdHoc).FitsIn(l.Capacity) {
					t.Fatalf("trial %d %s: slot %d overcommitted", trial, s.Name(), l.Slot)
				}
			}
			completions := make(map[string]map[string]time.Duration)
			for _, j := range res.Jobs {
				if !j.Completed {
					t.Fatalf("trial %d %s: job %s/%s incomplete", trial, s.Name(), j.WorkflowID, j.JobName)
				}
				if completions[j.WorkflowID] == nil {
					completions[j.WorkflowID] = make(map[string]time.Duration)
				}
				completions[j.WorkflowID][j.JobName] = j.Completion
			}
			for _, w := range wfs {
				dag := w.DAG()
				for v := 0; v < w.NumJobs(); v++ {
					for _, p := range dag.Predecessors(v) {
						if completions[w.ID][w.Job(v).Name] < completions[w.ID][w.Job(p).Name] {
							t.Fatalf("trial %d %s: %s finished before predecessor %s",
								trial, s.Name(), w.Job(v).Name, w.Job(p).Name)
						}
					}
				}
			}
			for i, a := range res.AdHoc {
				if !a.Completed {
					t.Fatalf("trial %d %s: ad-hoc %s incomplete", trial, s.Name(), a.ID)
				}
				minRuntime := time.Duration(workflow.Job{
					Tasks:        adhoc[i].Tasks,
					TaskDuration: adhoc[i].TaskDuration,
					TaskDemand:   adhoc[i].TaskDemand,
				}.DurationSlots(slotDur)) * slotDur
				if a.Completion < a.Submit+minRuntime {
					t.Fatalf("trial %d %s: ad-hoc %s finished impossibly fast (%v < %v + %v)",
						trial, s.Name(), a.ID, a.Completion, a.Submit, minRuntime)
				}
			}
		}
	}
}

// cloneWorkflows hands each scheduler fresh workflow objects so runs
// cannot share state.
func cloneWorkflows(t *testing.T, wfs []*workflow.Workflow) []*workflow.Workflow {
	t.Helper()
	out := make([]*workflow.Workflow, 0, len(wfs))
	for _, w := range wfs {
		c := w.Clone()
		if err := c.Validate(); err != nil {
			t.Fatalf("clone: %v", err)
		}
		out = append(out, c)
	}
	return out
}
