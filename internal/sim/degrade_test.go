package sim

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"flowtime/internal/core"
	"flowtime/internal/lp"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/workflow"
)

// chaosWorkload is a Fig-4-style mix: several workflows with staggered
// deadlines plus an ad-hoc stream.
func chaosWorkload(t *testing.T) ([]*workflow.Workflow, []workflow.AdHoc) {
	t.Helper()
	var wfs []*workflow.Workflow
	for i, dl := range []time.Duration{1500 * time.Second, 2000 * time.Second, 2500 * time.Second} {
		w := workflow.New("w"+string(rune('a'+i)), time.Duration(i)*100*time.Second, dl)
		a := w.AddJob(simpleJob("j1", 6, 300*time.Second))
		b := w.AddJob(simpleJob("j2", 6, 300*time.Second))
		w.AddDep(a, b)
		if err := w.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		wfs = append(wfs, w)
	}
	adhoc := []workflow.AdHoc{
		{ID: "a1", Submit: 0, Tasks: 4, TaskDuration: 100 * time.Second, TaskDemand: resource.New(1, 100)},
		{ID: "a2", Submit: 800 * time.Second, Tasks: 4, TaskDuration: 100 * time.Second, TaskDemand: resource.New(1, 100)},
	}
	return wfs, adhoc
}

func chaosConfig(t *testing.T, s sched.Scheduler) Config {
	t.Helper()
	wfs, adhoc := chaosWorkload(t)
	return Config{
		SlotDur:    slotDur,
		Horizon:    600,
		Capacity:   constCap(resource.New(10, 1000)),
		Scheduler:  s,
		Workflows:  wfs,
		AdHoc:      adhoc,
		Invariants: true,
	}
}

// TestChaosTinyBudgetStillCompletes is the acceptance chaos test: with an
// injected solver budget of one pivot per solve, every LP attempt trips,
// the ladder lands on the greedy rung — and the run still completes every
// deadline job with zero stalled slots.
func TestChaosTinyBudgetStillCompletes(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Solve = lp.SolveOptions{MaxIter: 1}
	res, err := Run(chaosConfig(t, core.New(cfg)))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.StalledSlots != 0 {
		t.Errorf("StalledSlots = %d, want 0 (degraded planner must keep granting)", res.StalledSlots)
	}
	for _, j := range res.Jobs {
		if !j.Completed {
			t.Errorf("deadline job %s/%s never completed under the greedy rung", j.WorkflowID, j.JobName)
		}
	}
	d := res.Degradation
	if d == nil {
		t.Fatal("Degradation = nil, want ladder telemetry from FlowTime")
	}
	if d.GreedyFallbacks == 0 {
		t.Errorf("GreedyFallbacks = 0, want > 0 (every replan should trip to greedy)")
	}
	if !d.Degraded() {
		t.Error("Degraded() = false under a 1-pivot budget")
	}
}

// TestDefaultBudgetsAreInert verifies the other half of the acceptance
// criterion: with default budgets the ladder never trips and the outcome
// is identical to a run with effectively unlimited explicit budgets —
// i.e. the budget machinery does not perturb the solver's path.
func TestDefaultBudgetsAreInert(t *testing.T) {
	runWith := func(solve lp.SolveOptions) *Result {
		cfg := core.DefaultConfig()
		cfg.Solve = solve
		res, err := Run(chaosConfig(t, core.New(cfg)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	def := runWith(lp.SolveOptions{})
	huge := runWith(lp.SolveOptions{MaxIter: 1 << 30, MaxTime: time.Hour})

	if d := def.Degradation; d == nil || d.Degraded() {
		t.Fatalf("default budgets degraded: %+v", def.Degradation)
	}
	if d := def.Degradation; d.Level != sched.DegradeNone {
		t.Errorf("Level = %v, want full", d.Level)
	}
	if !reflect.DeepEqual(def, huge) {
		t.Error("default-budget run differs from unlimited-budget run; budgets must be inert when they do not trip")
	}
}

func TestFaultInjectionDeterministic(t *testing.T) {
	runOnce := func() *Result {
		cfg := chaosConfig(t, core.New(core.DefaultConfig()))
		cfg.Faults = &FaultInjection{Seed: 7, RuntimeJitter: 0.3, StragglerFrac: 0.25}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Error("two runs with the same fault seed diverged")
	}
}

func TestFaultInjectionPerturbsOutcomes(t *testing.T) {
	clean := chaosConfig(t, core.New(core.DefaultConfig()))
	cleanRes, err := Run(clean)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	perturbed := chaosConfig(t, core.New(core.DefaultConfig()))
	perturbed.Faults = &FaultInjection{Seed: 7, StragglerFrac: 1, StragglerFactor: 3}
	pRes, err := Run(perturbed)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Tripling every job's true volume must move completions.
	if reflect.DeepEqual(cleanRes.Jobs, pRes.Jobs) {
		t.Error("straggler injection left every deadline outcome unchanged")
	}
	for _, j := range pRes.Jobs {
		if !j.Completed {
			t.Errorf("job %s/%s never completed under stragglers", j.WorkflowID, j.JobName)
		}
	}
}

func TestFaultInjectionValidation(t *testing.T) {
	for name, fi := range map[string]*FaultInjection{
		"jitter too high": {RuntimeJitter: 1},
		"negative jitter": {RuntimeJitter: -0.1},
		"frac too high":   {StragglerFrac: 1.5},
		"negative factor": {StragglerFactor: -1},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := baseConfig(sched.NewFIFO())
			cfg.AdHoc = []workflow.AdHoc{{ID: "a", Submit: 0, Tasks: 1, TaskDuration: 10 * time.Second, TaskDemand: resource.New(1, 100)}}
			cfg.Faults = fi
			if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "fault injection") {
				t.Errorf("Run = %v, want fault-injection validation error", err)
			}
		})
	}
}

// TestBestEffortAdmission: a workflow whose deadline window is shorter
// than one slot has no feasible decomposition under any strategy. It must
// be admitted best-effort — the run proceeds, the job still completes —
// rather than aborting the simulation.
func TestBestEffortAdmission(t *testing.T) {
	w := workflow.New("impossible", 0, 5*time.Second) // < one 10s slot
	w.AddJob(simpleJob("j", 2, 20*time.Second))
	if err := w.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	cfg := baseConfig(core.New(core.DefaultConfig()))
	cfg.Workflows = []*workflow.Workflow{w}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v (infeasible decomposition must not abort the run)", err)
	}
	if res.BestEffortJobs != 1 {
		t.Errorf("BestEffortJobs = %d, want 1", res.BestEffortJobs)
	}
	if len(res.Jobs) != 1 || !res.Jobs[0].Completed {
		t.Fatalf("best-effort job outcome = %+v, want completed", res.Jobs)
	}
	if !res.Jobs[0].Missed() {
		t.Error("impossible deadline reported as met")
	}
	if res.StalledSlots != 0 {
		t.Errorf("StalledSlots = %d, want 0", res.StalledSlots)
	}
}
