// Package sim is a slot-quantized discrete-event simulator of a YARN-like
// multi-resource cluster, replacing the paper's 20-node testbed and
// trace-driven simulator. It executes deadline-aware workflows and ad-hoc
// jobs under any sched.Scheduler and records per-job and per-workflow
// outcomes plus the cluster load time series.
//
// Execution model (documented in DESIGN.md §3): a job carries a work
// volume per resource kind; a grant of x units of kind r in a slot
// consumes x resource-slots of that kind; the job completes at the end of
// the first slot where every kind's volume is covered. Grants are clamped
// to the job's current Request — the demand of its pending tasks — and to
// cluster capacity. Readiness follows the workflow DAG: a job can consume
// only after all its predecessors completed.
//
// The simulator is event-driven toward the scheduler: Assign sees
// Changed=true only when arrivals, completions, readiness flips, or
// estimate revisions occurred, matching the paper's event-driven
// rescheduling (§III).
package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"flowtime/internal/deadline"
	"flowtime/internal/machine"
	"flowtime/internal/resource"
	"flowtime/internal/sched"
	"flowtime/internal/workflow"
)

// Config describes one simulation run.
type Config struct {
	// SlotDur is the slot duration; must be > 0. The paper uses 10s.
	SlotDur time.Duration
	// Horizon is the number of slots to simulate; must be > 0.
	Horizon int64
	// Capacity returns cluster capacity for a slot. Required.
	Capacity func(slot int64) resource.Vector
	// Scheduler makes the per-slot decisions. Required.
	Scheduler sched.Scheduler
	// Workflows are the deadline-aware workflows to run.
	Workflows []*workflow.Workflow
	// AdHoc are the ad-hoc jobs to run.
	AdHoc []workflow.AdHoc
	// ForceCriticalPath selects the critical-path decomposition for all
	// workflows (ablation).
	ForceCriticalPath bool
	// RecordLoad enables per-slot load series capture.
	RecordLoad bool
	// Faults, when non-nil, perturbs the workload's ground truth (runtime
	// jitter, stragglers) for chaos-testing the scheduling pipeline; see
	// FaultInjection.
	Faults *FaultInjection
	// Invariants enables the per-slot InvariantChecker: every slot's
	// grants and accounting are verified against the simulator's safety
	// invariants, and the run fails loudly on the first violation. In
	// machine mode the per-machine invariants (no per-node overcommit, no
	// placement on a dead machine) are checked too.
	Invariants bool
	// Machines, when non-nil, switches the run to machine mode: the
	// cluster is modeled machine-granularly, capacity is the sum of live
	// machines (Capacity must be nil — the machine set defines it), and
	// every grant is placed on concrete machines in task-sized units.
	// Work that fits the aggregate but no single machine is refused —
	// fragmentation the fluid model cannot see — and reported in
	// Result.Machine.
	Machines *MachineMode
}

// MachineMode configures machine-granular simulation.
type MachineMode struct {
	// Initial is the machine set live at slot 0.
	Initial []machine.Spec
	// Events are the timed joins/leaves/failures/capacity-scalings,
	// sorted by slot (machine.SortEvents).
	Events []machine.Event
}

// JobOutcome records one deadline job's result.
type JobOutcome struct {
	WorkflowID string
	JobName    string
	Release    time.Duration
	Deadline   time.Duration
	// Completion is the completion time; Completed is false if the job
	// never finished within the horizon.
	Completion time.Duration
	Completed  bool
}

// Missed reports whether the job missed its (decomposed) deadline.
func (o JobOutcome) Missed() bool {
	return !o.Completed || o.Completion > o.Deadline
}

// Lateness is completion - deadline (negative when early); for jobs that
// never completed it is measured at the horizon end.
func (o JobOutcome) Lateness(horizonEnd time.Duration) time.Duration {
	if !o.Completed {
		return horizonEnd - o.Deadline
	}
	return o.Completion - o.Deadline
}

// WorkflowOutcome records one workflow's result.
type WorkflowOutcome struct {
	ID       string
	Deadline time.Duration
	// Completion is when the last job finished (zero if incomplete).
	Completion time.Duration
	Completed  bool
}

// Missed reports whether the workflow missed its deadline.
func (o WorkflowOutcome) Missed() bool {
	return !o.Completed || o.Completion > o.Deadline
}

// AdHocOutcome records one ad-hoc job's result.
type AdHocOutcome struct {
	ID     string
	Submit time.Duration
	// Completion is the completion time (zero if incomplete).
	Completion time.Duration
	Completed  bool
}

// Turnaround is completion - submission; incomplete jobs are measured at
// the horizon end (a pessimistic lower bound).
func (o AdHocOutcome) Turnaround(horizonEnd time.Duration) time.Duration {
	if !o.Completed {
		return horizonEnd - o.Submit
	}
	return o.Completion - o.Submit
}

// LoadSample is the cluster usage in one slot, split by workload class.
type LoadSample struct {
	Slot     int64
	Deadline resource.Vector
	AdHoc    resource.Vector
	Capacity resource.Vector
}

// Result is the outcome of a run.
type Result struct {
	Jobs       []JobOutcome
	Workflows  []WorkflowOutcome
	AdHoc      []AdHocOutcome
	Load       []LoadSample
	HorizonEnd time.Duration
	// Slots is how many slots were actually simulated (early exit when
	// all work completed).
	Slots int64
	// StalledSlots counts slots where nothing was granted although some
	// ready, past-release job had a nonzero request and the cluster had
	// capacity. A healthy scheduler keeps this at zero on greedy-style
	// plans; plan-flattening schedulers may legitimately idle slots they
	// have planned around, so this is a diagnostic, not an invariant.
	StalledSlots int64
	// BestEffortJobs counts deadline jobs admitted best-effort because
	// their workflow had no feasible decomposition (admission control).
	BestEffortJobs int
	// Degradation is the scheduler's final ladder telemetry, when the
	// scheduler reports one (sched.DegradationReporter); nil otherwise.
	Degradation *sched.DegradationStatus
	// InvariantSlots is how many slots the InvariantChecker verified
	// (zero unless Config.Invariants was set).
	InvariantSlots int64
	// Events counts scheduling-relevant events over the run: arrivals,
	// completions, estimate revisions, capacity steps, and machine
	// events — the denominator of the bench probe's events/s.
	Events int64
	// Machine holds machine-mode diagnostics (nil in aggregate mode).
	Machine *MachineResult
}

// MachineResult reports what the placement layer saw in machine mode.
type MachineResult struct {
	// MachineEvents is how many cluster events were applied.
	MachineEvents int64
	// PeakLive/MinLive/FinalLive track the live-machine count (MinLive
	// is measured over simulated slots).
	PeakLive, MinLive, FinalLive int
	// Stats are the cluster's placement counters: placements, units,
	// failures, and the fragmentation-only failure subset.
	Stats machine.Stats
	// UnplacedVolume is the total granted volume the placement layer had
	// to refuse (no single machine could hold it); the scheduler's fluid
	// plan overestimated the packable capacity by exactly this much.
	UnplacedVolume resource.Vector
}

type runJob struct {
	id      string
	kind    sched.JobKind
	wfIdx   int
	nodeIdx int

	arrived  time.Duration
	release  time.Duration
	deadline time.Duration

	estTotal    resource.Vector // estimated volume, revised upward on exhaustion
	origEst     resource.Vector // the original estimate (revision step size)
	actualLeft  resource.Vector // true remaining volume
	consumed    resource.Vector
	parallelCap resource.Vector
	taskDemand  resource.Vector // placement unit in machine mode
	minSlots    int64

	bestEffort bool

	arrivedYet bool
	done       bool
	doneAt     time.Duration
}

// Run executes the simulation.
func Run(cfg Config) (*Result, error) {
	if cfg.SlotDur <= 0 {
		return nil, fmt.Errorf("sim: slot duration %v, want > 0", cfg.SlotDur)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: horizon %d, want > 0", cfg.Horizon)
	}
	var cluster *machine.Cluster
	var mres *MachineResult
	var events []machine.Event
	if cfg.Machines != nil {
		if cfg.Capacity != nil {
			return nil, errors.New("sim: machine mode supplies its own capacity; Capacity must be nil")
		}
		// Compile the aggregate capacity profile the schedulers plan
		// against: the sum of live machines after each event.
		bps, caps, err := machine.Profile(cfg.Machines.Initial, cfg.Machines.Events)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		cfg.Capacity = func(slot int64) resource.Vector {
			i := sort.Search(len(bps), func(k int) bool { return bps[k] > slot })
			if i == 0 {
				return caps[0]
			}
			return caps[i-1]
		}
		if cluster, err = machine.NewCluster(cfg.Machines.Initial); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		events = cfg.Machines.Events
		mres = &MachineResult{PeakLive: cluster.Live(), MinLive: cluster.Live()}
	}
	if cfg.Capacity == nil {
		return nil, errors.New("sim: nil capacity function")
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("sim: nil scheduler")
	}

	jobs, wfDeadlines, err := buildJobs(cfg)
	if err != nil {
		return nil, err
	}

	view := sched.ClusterView{
		SlotDur: cfg.SlotDur,
		Horizon: cfg.Horizon,
		CapAt:   cfg.Capacity,
	}

	// Index deadline jobs by (workflow, node) for O(preds) readiness checks.
	byNode := make(map[[2]int]*runJob, len(jobs))
	for _, j := range jobs {
		if j.kind == sched.DeadlineJob {
			byNode[[2]int{j.wfIdx, j.nodeIdx}] = j
		}
	}

	res := &Result{HorizonEnd: time.Duration(cfg.Horizon) * cfg.SlotDur}
	changed := true
	pendingArrivals := len(jobs)
	prevCap := cfg.Capacity(0)
	var checker *InvariantChecker
	if cfg.Invariants {
		checker = NewInvariantChecker()
	}
	evIdx := 0

	for slot := int64(0); slot < cfg.Horizon; slot++ {
		now := time.Duration(slot) * cfg.SlotDur

		// Machine events are the ground truth behind capacity steps: apply
		// everything due this slot, then open the slot's occupancy window.
		if cluster != nil {
			for evIdx < len(events) && events[evIdx].Slot <= slot {
				if err := cluster.Apply(events[evIdx]); err != nil {
					return nil, fmt.Errorf("sim: slot %d: %w", slot, err)
				}
				mres.MachineEvents++
				res.Events++
				evIdx++
			}
			cluster.BeginSlot(slot)
			if l := cluster.Live(); l > mres.PeakLive {
				mres.PeakLive = l
			} else if l < mres.MinLive {
				mres.MinLive = l
			}
		}

		// Capacity-profile steps (node loss/recovery, maintenance dips)
		// are scheduling events.
		if c := cfg.Capacity(slot); c != prevCap {
			prevCap = c
			changed = true
			res.Events++
		}

		// Arrivals.
		for _, j := range jobs {
			if !j.arrivedYet && j.arrived <= now {
				j.arrivedYet = true
				pendingArrivals--
				changed = true
				res.Events++
			}
		}

		// Build the scheduler view.
		states := make([]sched.JobState, 0, len(jobs))
		idx := make(map[string]*runJob, len(jobs))
		liveWork := false
		demandNow := false
		for _, j := range jobs {
			if !j.arrivedYet || j.done {
				continue
			}
			liveWork = true
			st := sched.JobState{
				ID:         j.id,
				Kind:       j.kind,
				Arrived:    j.arrived,
				Ready:      jobReady(j, byNode, cfg),
				Request:    request(j),
				BestEffort: j.bestEffort,
			}
			if j.kind == sched.DeadlineJob {
				st.WorkflowID = cfg.Workflows[j.wfIdx].ID
				st.JobName = cfg.Workflows[j.wfIdx].Job(j.nodeIdx).Name
				st.Release = j.release
				st.Deadline = j.deadline
				st.EstRemaining = estRemaining(j)
				st.ParallelCap = j.parallelCap
				st.MinSlots = j.minSlots
			}
			if st.Ready && !st.Request.IsZero() &&
				(st.Kind != sched.DeadlineJob || int64(st.Release/cfg.SlotDur) <= slot) {
				demandNow = true
			}
			states = append(states, st)
			idx[j.id] = j
		}
		if !liveWork && pendingArrivals == 0 {
			res.Slots = slot
			break
		}
		res.Slots = slot + 1

		grants, err := cfg.Scheduler.Assign(sched.AssignContext{
			Now:     slot,
			Changed: changed,
			Jobs:    states,
			Cluster: view,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: slot %d: scheduler %s: %w", slot, cfg.Scheduler.Name(), err)
		}
		changed = false

		// Apply grants: clamp to request and to capacity, deterministically.
		capLeft := cfg.Capacity(slot)
		var dlUsed, ahUsed resource.Vector
		var applied map[string]resource.Vector
		if checker != nil {
			applied = make(map[string]resource.Vector, len(states))
		}
		for _, st := range states {
			g, ok := grants[st.ID]
			if !ok {
				continue
			}
			j := idx[st.ID]
			if !st.Ready {
				continue // defensive: scheduler granted a blocked job
			}
			g = g.Min(st.Request).Min(capLeft)
			if g.AnyNegative() || g.IsZero() {
				continue
			}
			if cluster != nil {
				// The fluid grant must land on concrete machines; what
				// doesn't fit anywhere is refused, not consumed.
				eff := placeGrant(cluster, j.taskDemand, g)
				mres.UnplacedVolume = mres.UnplacedVolume.Add(g.Sub(eff))
				g = eff
				if g.IsZero() {
					continue
				}
			}
			capLeft = capLeft.Sub(g)
			j.consumed = j.consumed.Add(g)
			j.actualLeft = j.actualLeft.SubClamped(g)
			if applied != nil {
				applied[st.ID] = g
			}
			if j.kind == sched.DeadlineJob {
				dlUsed = dlUsed.Add(g)
			} else {
				ahUsed = ahUsed.Add(g)
			}
		}

		if demandNow && dlUsed.IsZero() && ahUsed.IsZero() && !cfg.Capacity(slot).IsZero() {
			res.StalledSlots++
		}

		if cfg.RecordLoad {
			res.Load = append(res.Load, LoadSample{
				Slot: slot, Deadline: dlUsed, AdHoc: ahUsed, Capacity: cfg.Capacity(slot),
			})
		}

		// Completions and estimate revisions at slot end.
		endOfSlot := time.Duration(slot+1) * cfg.SlotDur
		for _, j := range jobs {
			if !j.arrivedYet || j.done {
				continue
			}
			if j.actualLeft.IsZero() {
				j.done = true
				j.doneAt = endOfSlot
				changed = true
				res.Events++
				continue
			}
			if j.kind == sched.DeadlineJob && estRemaining(j).IsZero() {
				// The job outlived its estimate: an observable event — the
				// expected completion time passed. Revise the estimate
				// upward by a chunk (20% of the original, at least one
				// full-parallelism wave) and replan (paper §III:
				// robustness to estimation errors).
				bump := j.origEst
				for i := range bump {
					bump[i] /= 5
				}
				bump = bump.Max(j.parallelCap)
				j.estTotal = j.estTotal.Add(bump)
				changed = true
				res.Events++
			}
		}

		if checker != nil {
			obs := make([]Observation, 0, len(states))
			for _, st := range states {
				j := idx[st.ID]
				obs = append(obs, Observation{
					ID:        j.id,
					Granted:   applied[st.ID],
					Request:   st.Request,
					Ready:     st.Ready,
					Consumed:  j.consumed,
					Remaining: j.actualLeft,
					Done:      j.done,
				})
			}
			if err := checker.CheckSlot(slot, cfg.Capacity(slot), obs); err != nil {
				return nil, fmt.Errorf("sim: slot %d: %w", slot, err)
			}
			if cluster != nil {
				// The compiled aggregate profile and the live replay must
				// agree — they are two views of the same event stream.
				if pc, lc := cfg.Capacity(slot), cluster.Capacity(); pc != lc {
					return nil, fmt.Errorf("sim: slot %d: capacity profile %v disagrees with live cluster %v", slot, pc, lc)
				}
				if err := checker.CheckMachines(slot, dlUsed.Add(ahUsed), cluster.SlotUsage()); err != nil {
					return nil, fmt.Errorf("sim: slot %d: %w", slot, err)
				}
			}
			res.InvariantSlots = checker.Slots()
		}
	}

	if cluster != nil {
		mres.FinalLive = cluster.Live()
		mres.Stats = cluster.Stats()
		res.Machine = mres
	}
	collectOutcomes(cfg, jobs, wfDeadlines, res)
	for _, j := range jobs {
		if j.bestEffort {
			res.BestEffortJobs++
		}
	}
	if dr, ok := cfg.Scheduler.(sched.DegradationReporter); ok {
		d := dr.Degradation()
		res.Degradation = &d
	}
	return res, nil
}

// buildJobs materializes run state: decomposes every workflow into job
// windows and registers ad-hoc jobs. Workflows with no feasible
// decomposition — even under the critical-path fallback — are admitted
// best-effort (every job gets the whole workflow span as its window)
// instead of rejected, so one impossible deadline cannot abort the run or
// poison the planners' joint LP.
func buildJobs(cfg Config) ([]*runJob, map[int]time.Duration, error) {
	var jobs []*runJob
	wfDeadlines := make(map[int]time.Duration, len(cfg.Workflows))
	seen := make(map[string]bool)
	frng, err := cfg.Faults.newRand()
	if err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}

	for wi, wf := range cfg.Workflows {
		if err := wf.Validate(); err != nil {
			return nil, nil, fmt.Errorf("sim: %w", err)
		}
		if seen[wf.ID] {
			return nil, nil, fmt.Errorf("sim: duplicate workflow ID %q", wf.ID)
		}
		seen[wf.ID] = true
		wfDeadlines[wi] = wf.Deadline

		opts := deadline.Options{
			Slot:              cfg.SlotDur,
			ClusterCap:        cfg.Capacity(int64(wf.Submit / cfg.SlotDur)),
			ForceCriticalPath: cfg.ForceCriticalPath,
		}
		dec, err := deadline.Decompose(wf, opts)
		if err != nil && !cfg.ForceCriticalPath {
			opts.ForceCriticalPath = true
			dec, err = deadline.Decompose(wf, opts)
		}
		bestEffort := err != nil
		for ni := 0; ni < wf.NumJobs(); ni++ {
			job := wf.Job(ni)
			est := job.Volume(cfg.SlotDur)
			actual := workflow.Job{
				Name:         job.Name,
				Tasks:        job.Tasks,
				TaskDuration: job.EffectiveTaskDuration(),
				TaskDemand:   job.TaskDemand,
			}.Volume(cfg.SlotDur)
			release, dl := wf.Submit, wf.Deadline
			if !bestEffort {
				release, dl = dec.Windows[ni].Release, dec.Windows[ni].Deadline
			}
			jobs = append(jobs, &runJob{
				id:          fmt.Sprintf("%s/%s#%d", wf.ID, job.Name, ni),
				kind:        sched.DeadlineJob,
				wfIdx:       wi,
				nodeIdx:     ni,
				arrived:     wf.Submit,
				release:     release,
				deadline:    dl,
				estTotal:    est,
				origEst:     est,
				actualLeft:  cfg.Faults.perturb(frng, actual),
				parallelCap: job.ParallelCap(),
				taskDemand:  job.TaskDemand,
				minSlots:    job.MinRuntimeSlots(cfg.SlotDur, cfg.Capacity(0)),
				bestEffort:  bestEffort,
			})
		}
	}
	for _, ah := range cfg.AdHoc {
		if err := ah.Validate(); err != nil {
			return nil, nil, fmt.Errorf("sim: %w", err)
		}
		id := "adhoc/" + ah.ID
		if seen[id] {
			return nil, nil, fmt.Errorf("sim: duplicate ad-hoc ID %q", ah.ID)
		}
		seen[id] = true
		jobs = append(jobs, &runJob{
			id:          id,
			kind:        sched.AdHocJob,
			wfIdx:       -1,
			arrived:     ah.Submit,
			actualLeft:  cfg.Faults.perturb(frng, ah.Volume(cfg.SlotDur)),
			parallelCap: ah.ParallelCap(),
			taskDemand:  ah.TaskDemand,
		})
	}
	// Deterministic order: arrival, then ID.
	sort.SliceStable(jobs, func(a, b int) bool {
		if jobs[a].arrived != jobs[b].arrived {
			return jobs[a].arrived < jobs[b].arrived
		}
		return jobs[a].id < jobs[b].id
	})
	return jobs, wfDeadlines, nil
}

// placeGrant lands a fluid grant on concrete machines in task-sized
// units. The sub-unit remainder is placed as one smaller piece so plan
// allocations below a single task still make progress (the fluid model
// the planners reason in allows fractional tasks; refusing them would
// starve thin allocations). Returns the volume that found a machine.
func placeGrant(c *machine.Cluster, unit, g resource.Vector) resource.Vector {
	if unit.IsZero() || !unit.FitsIn(g) {
		unit = g
	}
	want := unitCount(g, unit)
	placed, _ := c.Place(unit, want)
	eff := unit.Scale(placed)
	if placed == want {
		if rem := g.Sub(eff); !rem.IsZero() {
			if n, _ := c.Place(rem, 1); n == 1 {
				eff = eff.Add(rem)
			}
		}
	}
	return eff
}

// unitCount is how many whole units fit inside g (min over the kinds
// the unit actually demands).
func unitCount(g, unit resource.Vector) int64 {
	n := int64(-1)
	for i := range unit {
		if unit[i] <= 0 {
			continue
		}
		if k := g[i] / unit[i]; n < 0 || k < n {
			n = k
		}
	}
	if n < 0 {
		return 0
	}
	return n
}

// jobReady reports whether all DAG predecessors completed.
func jobReady(j *runJob, byNode map[[2]int]*runJob, cfg Config) bool {
	if j.kind != sched.DeadlineJob {
		return true
	}
	for _, p := range cfg.Workflows[j.wfIdx].DAG().Predecessors(j.nodeIdx) {
		if pj := byNode[[2]int{j.wfIdx, p}]; pj != nil && !pj.done {
			return false
		}
	}
	return true
}

// request is the largest grant the job can consume this slot.
func request(j *runJob) resource.Vector {
	return j.parallelCap.Min(j.actualLeft)
}

// estRemaining is the scheduler-visible remaining-work estimate: the
// (possibly revised) estimate minus consumption.
func estRemaining(j *runJob) resource.Vector {
	return j.estTotal.SubClamped(j.consumed)
}

func collectOutcomes(cfg Config, jobs []*runJob, wfDeadlines map[int]time.Duration, res *Result) {
	wfDone := make(map[int]time.Duration)
	wfAll := make(map[int]bool)
	for wi := range cfg.Workflows {
		wfAll[wi] = true
	}
	for _, j := range jobs {
		switch j.kind {
		case sched.DeadlineJob:
			wf := cfg.Workflows[j.wfIdx]
			res.Jobs = append(res.Jobs, JobOutcome{
				WorkflowID: wf.ID,
				JobName:    wf.Job(j.nodeIdx).Name,
				Release:    j.release,
				Deadline:   j.deadline,
				Completion: j.doneAt,
				Completed:  j.done,
			})
			if !j.done {
				wfAll[j.wfIdx] = false
			} else if j.doneAt > wfDone[j.wfIdx] {
				wfDone[j.wfIdx] = j.doneAt
			}
		case sched.AdHocJob:
			res.AdHoc = append(res.AdHoc, AdHocOutcome{
				ID:         j.id,
				Submit:     j.arrived,
				Completion: j.doneAt,
				Completed:  j.done,
			})
		}
	}
	for wi, wf := range cfg.Workflows {
		res.Workflows = append(res.Workflows, WorkflowOutcome{
			ID:         wf.ID,
			Deadline:   wfDeadlines[wi],
			Completion: wfDone[wi],
			Completed:  wfAll[wi],
		})
	}
}
