// Package metrics aggregates simulation outcomes into the quantities the
// paper reports: deadline-miss counts (Fig. 4b, 5b), completion-minus-
// deadline distributions (Fig. 4a, 5a), and average ad-hoc job turnaround
// times (Fig. 4c, 5c), plus generic summary statistics used by the
// benchmark harness.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"flowtime/internal/sim"
)

// Summary condenses one simulation run.
type Summary struct {
	// Algorithm is the scheduler name.
	Algorithm string

	// DeadlineJobs is the number of deadline-aware jobs.
	DeadlineJobs int
	// JobsMissed is the number of deadline jobs that missed their
	// (decomposed) deadline — the paper's Fig. 4b metric.
	JobsMissed int
	// Workflows and WorkflowsMissed are the workflow-level counts.
	Workflows       int
	WorkflowsMissed int
	// JobLateness holds completion-deadline per deadline job (Fig. 4a).
	JobLateness []time.Duration

	// AdHocJobs is the number of ad-hoc jobs.
	AdHocJobs int
	// BestEffortJobs counts deadline jobs admitted without a feasible
	// decomposition and served from leftover capacity.
	BestEffortJobs int
	// DegradeLevel is the scheduler's final degradation-ladder rung
	// ("full", "minmax", "greedy"); empty when the scheduler reports none.
	DegradeLevel string
	// DegradedReplans counts replans that stepped below the full
	// lexicographic pipeline (min-max or greedy fallbacks).
	DegradedReplans int64
	// AdHocIncomplete counts ad-hoc jobs that never finished in-horizon.
	AdHocIncomplete int
	// AvgTurnaround is the mean ad-hoc turnaround (Fig. 4c).
	AvgTurnaround time.Duration
	// Turnarounds holds each ad-hoc job's turnaround.
	Turnarounds []time.Duration
}

// Summarize computes a Summary from a run result.
func Summarize(algorithm string, res *sim.Result) Summary {
	s := Summary{Algorithm: algorithm}

	s.DeadlineJobs = len(res.Jobs)
	s.JobLateness = make([]time.Duration, 0, len(res.Jobs))
	for _, j := range res.Jobs {
		if j.Missed() {
			s.JobsMissed++
		}
		s.JobLateness = append(s.JobLateness, j.Lateness(res.HorizonEnd))
	}

	s.Workflows = len(res.Workflows)
	for _, w := range res.Workflows {
		if w.Missed() {
			s.WorkflowsMissed++
		}
	}

	s.AdHocJobs = len(res.AdHoc)
	s.Turnarounds = make([]time.Duration, 0, len(res.AdHoc))
	var sum time.Duration
	for _, a := range res.AdHoc {
		if !a.Completed {
			s.AdHocIncomplete++
		}
		ta := a.Turnaround(res.HorizonEnd)
		s.Turnarounds = append(s.Turnarounds, ta)
		sum += ta
	}
	if len(res.AdHoc) > 0 {
		s.AvgTurnaround = sum / time.Duration(len(res.AdHoc))
	}

	s.BestEffortJobs = res.BestEffortJobs
	if d := res.Degradation; d != nil {
		s.DegradeLevel = d.Level.String()
		s.DegradedReplans = d.MinMaxFallbacks + d.GreedyFallbacks
	}
	return s
}

// Stats holds order statistics of a duration sample.
type Stats struct {
	Min, Max, Mean time.Duration
	P50, P90, P99  time.Duration
}

// Describe computes order statistics. An empty sample yields zeros.
func Describe(sample []time.Duration) Stats {
	if len(sample) == 0 {
		return Stats{}
	}
	sorted := append([]time.Duration(nil), sample...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return Stats{
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		Mean: sum / time.Duration(len(sorted)),
		P50:  Percentile(sorted, 0.50),
		P90:  Percentile(sorted, 0.90),
		P99:  Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// Table renders aligned rows for terminal output. Rows is a list of cell
// slices; the first row is the header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0, 8)
	for _, r := range rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range r {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", widths[i]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Seconds formats a duration as whole-second text ("522.5s" style used in
// the paper's figures).
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.1fs", d.Seconds())
}
