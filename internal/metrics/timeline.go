package metrics

import (
	"fmt"
	"strings"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/sim"
)

// RenderTimeline renders a per-slot load series as an ASCII utilization
// chart for one resource kind — the terminal rendition of the paper's
// Fig. 1 load diagrams. Each row aggregates a bucket of slots:
//
//	0s     |##########++++++++++..............| dl 50% ah 25%
//
// '#' is deadline work, '+' is ad-hoc work, '.' is idle capacity. rows
// and width control the chart size.
func RenderTimeline(load []sim.LoadSample, slotDur time.Duration, kind resource.Kind, rows, width int) string {
	if len(load) == 0 || rows < 1 || width < 1 {
		return ""
	}
	if rows > len(load) {
		rows = len(load)
	}
	per := (len(load) + rows - 1) / rows

	var b strings.Builder
	for start := 0; start < len(load); start += per {
		end := start + per
		if end > len(load) {
			end = len(load)
		}
		var dl, ah, capSum int64
		for _, s := range load[start:end] {
			dl += s.Deadline.Get(kind)
			ah += s.AdHoc.Get(kind)
			capSum += s.Capacity.Get(kind)
		}
		if capSum == 0 {
			continue
		}
		dlCols := int(dl * int64(width) / capSum)
		ahCols := int(ah * int64(width) / capSum)
		if dlCols+ahCols > width {
			ahCols = width - dlCols
		}
		idle := width - dlCols - ahCols
		at := time.Duration(load[start].Slot) * slotDur
		fmt.Fprintf(&b, "%8s |%s%s%s| dl %3d%% ah %3d%%\n",
			at,
			strings.Repeat("#", dlCols),
			strings.Repeat("+", ahCols),
			strings.Repeat(".", idle),
			dl*100/capSum, ah*100/capSum)
	}
	return b.String()
}
