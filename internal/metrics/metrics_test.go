package metrics

import (
	"strings"
	"testing"
	"time"

	"flowtime/internal/resource"
	"flowtime/internal/sim"
)

func TestSummarize(t *testing.T) {
	res := &sim.Result{
		HorizonEnd: 1000 * time.Second,
		Jobs: []sim.JobOutcome{
			{WorkflowID: "w", JobName: "a", Deadline: 100 * time.Second, Completion: 90 * time.Second, Completed: true},
			{WorkflowID: "w", JobName: "b", Deadline: 100 * time.Second, Completion: 150 * time.Second, Completed: true},
			{WorkflowID: "w", JobName: "c", Deadline: 200 * time.Second, Completed: false},
		},
		Workflows: []sim.WorkflowOutcome{
			{ID: "w", Deadline: 200 * time.Second, Completed: false},
		},
		AdHoc: []sim.AdHocOutcome{
			{ID: "a1", Submit: 0, Completion: 100 * time.Second, Completed: true},
			{ID: "a2", Submit: 100 * time.Second, Completion: 400 * time.Second, Completed: true},
		},
	}
	s := Summarize("Test", res)
	if s.Algorithm != "Test" {
		t.Errorf("Algorithm = %q", s.Algorithm)
	}
	if s.DeadlineJobs != 3 || s.JobsMissed != 2 {
		t.Errorf("jobs = %d missed = %d, want 3, 2", s.DeadlineJobs, s.JobsMissed)
	}
	if s.Workflows != 1 || s.WorkflowsMissed != 1 {
		t.Errorf("workflows = %d missed = %d, want 1, 1", s.Workflows, s.WorkflowsMissed)
	}
	if s.AdHocJobs != 2 || s.AdHocIncomplete != 0 {
		t.Errorf("adhoc = %d incomplete = %d, want 2, 0", s.AdHocJobs, s.AdHocIncomplete)
	}
	if want := 200 * time.Second; s.AvgTurnaround != want {
		t.Errorf("AvgTurnaround = %v, want %v", s.AvgTurnaround, want)
	}
	if len(s.JobLateness) != 3 || s.JobLateness[0] != -10*time.Second {
		t.Errorf("JobLateness = %v", s.JobLateness)
	}
}

func TestDescribeAndPercentile(t *testing.T) {
	sample := []time.Duration{
		10 * time.Second, 20 * time.Second, 30 * time.Second,
		40 * time.Second, 50 * time.Second,
	}
	st := Describe(sample)
	if st.Min != 10*time.Second || st.Max != 50*time.Second {
		t.Errorf("Min/Max = %v/%v", st.Min, st.Max)
	}
	if st.Mean != 30*time.Second {
		t.Errorf("Mean = %v, want 30s", st.Mean)
	}
	if st.P50 != 30*time.Second {
		t.Errorf("P50 = %v, want 30s", st.P50)
	}
	if st.P90 != 46*time.Second {
		t.Errorf("P90 = %v, want 46s (interpolated)", st.P90)
	}

	if got := (Stats{}); Describe(nil) != got {
		t.Error("Describe(nil) not zero")
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	if Percentile(sample, 0) != 10*time.Second || Percentile(sample, 1) != 50*time.Second {
		t.Error("Percentile clamping broken")
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"alg", "missed"},
		{"FlowTime", "0"},
		{"FIFO", "13"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4 (header, rule, 2 rows):\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "alg") || !strings.Contains(lines[1], "---") {
		t.Errorf("header/rule malformed:\n%s", out)
	}
	if Table(nil) != "" {
		t.Error("Table(nil) != empty")
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(522500 * time.Millisecond); got != "522.5s" {
		t.Errorf("Seconds = %q, want 522.5s", got)
	}
}

func TestRenderTimeline(t *testing.T) {
	mk := func(slot, dl, ah, cap int64) sim.LoadSample {
		return sim.LoadSample{
			Slot:     slot,
			Deadline: resource.New(dl, dl*100),
			AdHoc:    resource.New(ah, ah*100),
			Capacity: resource.New(cap, cap*100),
		}
	}
	load := []sim.LoadSample{
		mk(0, 5, 0, 10), mk(1, 5, 0, 10),
		mk(2, 5, 5, 10), mk(3, 5, 5, 10),
	}
	out := RenderTimeline(load, 10*time.Second, resource.VCores, 2, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d rows, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "#####") || strings.Contains(lines[0], "+") {
		t.Errorf("row 0 = %q, want half deadline and no ad-hoc", lines[0])
	}
	if !strings.Contains(lines[1], "+++++") {
		t.Errorf("row 1 = %q, want half ad-hoc", lines[1])
	}
	if RenderTimeline(nil, time.Second, resource.VCores, 2, 10) != "" {
		t.Error("empty load should render empty")
	}
	// Zero capacity rows are skipped, not divided by.
	if got := RenderTimeline([]sim.LoadSample{mk(0, 0, 0, 0)}, time.Second, resource.VCores, 1, 10); got != "" {
		t.Errorf("zero-capacity render = %q, want empty", got)
	}
}
